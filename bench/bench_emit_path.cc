// Emit-path microbenchmark — the §5.2 jumbo-tuple hot path in
// isolation: a producer task emitting word_count-style tuples through
// shuffle/fields/broadcast routes into per-consumer jumbo-tuple
// buffers, drained (and recycled) by the consumer side.
//
// Reports tuples/s, ns/tuple and — via an interposing counting
// allocator compiled into this binary only — heap allocations per
// emitted tuple in steady state. Results go to stdout and to the
// machine-readable `BENCH_emit_path.json` (see README "Hot path &
// memory discipline" for how to read it).
//
// Flags: --quick (CI-sized round count), --out <path> (JSON location).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/channel.h"
#include "engine/config.h"
#include "engine/task.h"

// ---------------------------------------------------------------------------
// Interposing counting allocator. Linked into this binary only: every
// path to the heap (operator new / new[] and their aligned variants)
// bumps one relaxed atomic, so `allocs/tuple` counts real allocator
// round-trips, not estimates. The steady-state phase of the pooled
// emit path must report exactly zero.
// ---------------------------------------------------------------------------
namespace {
std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = align <= alignof(std::max_align_t)
                ? std::malloc(size)
                : std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace brisk {
namespace {

using engine::Channel;
using engine::EngineConfig;
using engine::Envelope;
using engine::OutRoute;
using engine::Task;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// word_count-style vocabulary: short syllable words like the
/// SentenceSpout dictionary (2–3 syllables + a distinguishing digit).
std::vector<std::string> MakeWords(size_t n) {
  static const char* kSyllables[] = {"ka", "lo", "mi", "ra", "tu", "ves",
                                     "zor", "pin", "qua", "sel", "dra",
                                     "fen", "gul", "hex", "jov", "wyn"};
  std::vector<std::string> words;
  words.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string w = kSyllables[i % 16];
    w += kSyllables[(i * 7 + 3) % 16];
    if (i % 3 != 0) w += kSyllables[(i * 5 + 1) % 16];
    w += std::to_string(i % 100);
    words.push_back(std::move(w));
  }
  return words;
}

struct EmitResult {
  double tuples_per_sec = 0.0;
  double ns_per_tuple = 0.0;
  double allocs_per_tuple = 0.0;
  uint64_t tuples = 0;
};

/// Pre-change reference, measured at commit 6ea6c69 (heap-allocated
/// `std::vector<Field>` tuple fields, copy-per-route EmitTo,
/// allocate-per-flush batches) with this same benchmark loop on the
/// same host. Committed so every later run records the trajectory
/// against the same origin.
constexpr double kBaselineShuffleTps = 13846768.0;
constexpr double kBaselineShuffleNsPerTuple = 72.2;
constexpr double kBaselineShuffleAllocsPerTuple = 2.125;

/// One producer task, `consumers` channels under `grouping`, drained
/// in the same thread every `consumers * batch` emits (this host is
/// single-core; interleaving producer and consumer measures the real
/// per-tuple path without scheduler noise). With `recycle` the drain
/// side hands empty batch shells back through the channel's return
/// queue (the engine's BatchPool protocol); without it, shells come
/// back through the ring slots themselves (reuse_ring_shells), so
/// both modes are allocation-free in steady state.
EmitResult RunEmitBench(api::GroupingType grouping, int consumers, int batch,
                        uint64_t rounds, bool recycle) {
  EngineConfig cfg = EngineConfig::Brisk();
  cfg.batch_size = batch;
  cfg.recycle_batches = recycle;
  const bool reuse = cfg.reuse_ring_shells && !cfg.recycle_batches;
  Task task(0, 0, cfg, nullptr);
  std::vector<std::unique_ptr<Channel>> channels;
  OutRoute route;
  route.stream_id = 0;
  route.grouping = grouping;
  route.key_field = 0;
  for (int c = 0; c < consumers; ++c) {
    channels.push_back(
        std::make_unique<Channel>(0, c + 1, cfg.queue_capacity, reuse));
    route.channels.push_back(channels.back().get());
    route.buffer_index.push_back(task.AddBuffer());
  }
  task.AddOutRoute(std::move(route));

  const std::vector<std::string> words = MakeWords(256);
  const uint64_t tuples_per_round =
      static_cast<uint64_t>(consumers) * static_cast<uint64_t>(batch);
  uint64_t consumed = 0;
  size_t next_word = 0;

  auto emit_round = [&] {
    for (uint64_t i = 0; i < tuples_per_round; ++i) {
      Tuple t;
      t.fields.emplace_back(words[next_word]);
      next_word = (next_word + 1) & 255;
      task.EmitTo(0, std::move(t));
    }
  };
  auto drain = [&] {
    Envelope env;
    for (auto& ch : channels) {
      while (ch->TryPop(&env)) {
        consumed += env.batch->tuples.size();
        if (recycle) {
          env.batch->Reset();
          ch->Recycle(std::move(env.batch));
        } else if (reuse) {
          env.batch->Reset();
          ch->ReturnShell(std::move(env.batch));  // back via the ring
        } else {
          env.batch.reset();  // consumer frees the batch (no pool)
        }
      }
    }
  };

  // Warm-up: reach steady-state capacities (staging buffers, queue
  // slots, pooled batches) before counting anything. The ring-reuse
  // mode needs one full ring lap — each push lands one slot further,
  // and a slot only yields a recovered shell after the consumer has
  // deposited into it once — so warm up past the ring size (the
  // rounded-up power of two above queue_capacity), one push per
  // channel per round.
  const int warmup = 2 * static_cast<int>(cfg.queue_capacity) + 64;
  for (int r = 0; r < warmup; ++r) {
    emit_round();
    drain();
  }

  const uint64_t allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
  const int64_t t0 = NowNs();
  for (uint64_t r = 0; r < rounds; ++r) {
    emit_round();
    drain();
  }
  const int64_t t1 = NowNs();
  const uint64_t allocs1 = g_heap_allocs.load(std::memory_order_relaxed);

  EmitResult res;
  res.tuples = rounds * tuples_per_round;
  const double secs = static_cast<double>(t1 - t0) * 1e-9;
  res.tuples_per_sec = static_cast<double>(res.tuples) / secs;
  res.ns_per_tuple =
      static_cast<double>(t1 - t0) / static_cast<double>(res.tuples);
  res.allocs_per_tuple = static_cast<double>(allocs1 - allocs0) /
                         static_cast<double>(res.tuples);
  if (consumed == 0) std::abort();  // keep the drain live
  return res;
}

bench::JsonObj ToJson(const EmitResult& r) {
  bench::JsonObj o;
  o.Add("tuples_per_sec", r.tuples_per_sec)
      .Add("ns_per_tuple", r.ns_per_tuple)
      .Add("allocs_per_tuple", r.allocs_per_tuple)
      .Add("tuples", r.tuples);
  return o;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_emit_path.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const uint64_t rounds = quick ? 2000 : 20000;
  constexpr int kConsumers = 4;
  constexpr int kBatch = 64;

  bench::Banner("emit path",
                "zero-allocation jumbo-tuple emit microbenchmark, WC");

  const EmitResult shuffle = RunEmitBench(api::GroupingType::kShuffle,
                                          kConsumers, kBatch, rounds,
                                          /*recycle=*/true);
  const EmitResult shuffle_nopool = RunEmitBench(
      api::GroupingType::kShuffle, kConsumers, kBatch, rounds,
      /*recycle=*/false);
  const EmitResult fields = RunEmitBench(api::GroupingType::kFields,
                                         kConsumers, kBatch, rounds,
                                         /*recycle=*/true);
  const EmitResult broadcast = RunEmitBench(api::GroupingType::kBroadcast,
                                            kConsumers, kBatch, rounds / 4,
                                            /*recycle=*/true);

  const std::vector<int> widths = {16, 14, 10, 12};
  bench::PrintRule(widths);
  bench::PrintRow({"config", "tuples/s", "ns/tuple", "allocs/tuple"},
                  widths);
  bench::PrintRule(widths);
  auto row = [&](const char* name, double tps, double nspt_v, double apt_v) {
    char tps_s[32], nspt[32], apt[32];
    std::snprintf(tps_s, sizeof(tps_s), "%.0f", tps);
    std::snprintf(nspt, sizeof(nspt), "%.1f", nspt_v);
    std::snprintf(apt, sizeof(apt), "%.3f", apt_v);
    bench::PrintRow({name, tps_s, nspt, apt}, widths);
  };
  row("baseline@6ea6c69", kBaselineShuffleTps, kBaselineShuffleNsPerTuple,
      kBaselineShuffleAllocsPerTuple);
  row("shuffle", shuffle.tuples_per_sec, shuffle.ns_per_tuple,
      shuffle.allocs_per_tuple);
  row("shuffle-nopool", shuffle_nopool.tuples_per_sec,
      shuffle_nopool.ns_per_tuple, shuffle_nopool.allocs_per_tuple);
  row("fields", fields.tuples_per_sec, fields.ns_per_tuple,
      fields.allocs_per_tuple);
  row("broadcast", broadcast.tuples_per_sec, broadcast.ns_per_tuple,
      broadcast.allocs_per_tuple);
  bench::PrintRule(widths);
  std::printf("speedup vs baseline (shuffle): %.2fx\n",
              shuffle.tuples_per_sec / kBaselineShuffleTps);

  bench::JsonObj baseline;
  baseline.Add("commit", "6ea6c69")
      .Add("tuples_per_sec", kBaselineShuffleTps)
      .Add("ns_per_tuple", kBaselineShuffleNsPerTuple)
      .Add("allocs_per_tuple", kBaselineShuffleAllocsPerTuple);
  bench::JsonObj doc;
  doc.Add("bench", "emit_path")
      .Add("workload",
           "word_count emit: 1 producer task, 4 consumer channels, batch 64")
      .Add("quick", quick)
      .Add("baseline_shuffle", baseline)
      .Add("shuffle", ToJson(shuffle))
      .Add("shuffle_nopool", ToJson(shuffle_nopool))
      .Add("fields", ToJson(fields))
      .Add("broadcast", ToJson(broadcast))
      .Add("speedup_vs_baseline",
           shuffle.tuples_per_sec / kBaselineShuffleTps);
  if (!bench::WriteJsonFile(out_path, doc)) return 1;
  std::printf("wrote %s\n", out_path.c_str());

  // CI gate: the emit path must not touch the allocator in steady
  // state — pooled (BatchPool) *and* unpooled (ring-shell reuse). A
  // single alloc per tuple (or per batch) is a regression of the
  // whole point of this data plane.
  if (shuffle.allocs_per_tuple != 0.0 || fields.allocs_per_tuple != 0.0 ||
      shuffle_nopool.allocs_per_tuple != 0.0) {
    std::fprintf(stderr,
                 "FAIL: steady-state allocs/tuple nonzero "
                 "(shuffle %.4f, fields %.4f, shuffle-nopool %.4f)\n",
                 shuffle.allocs_per_tuple, fields.allocs_per_tuple,
                 shuffle_nopool.allocs_per_tuple);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace brisk

int main(int argc, char** argv) { return brisk::Main(argc, argv); }
