// Figure 6 — Throughput speedup of BriskStream over Storm and Flink.
//
// Paper (Server A, 8 sockets): Brisk/Storm = 20.2 (WC), 4.6 (FD),
// 3.2 (SD), 18.7 (LR); Brisk/Flink = 11.2, 8.4, 2.8, 12.8.
// The legacy systems here are the engine's cost-model equivalents
// (serialization, per-tuple headers, bigger instruction footprints, no
// RLAS — DESIGN.md §1); the expected reproduction is the *shape*:
// order-of-magnitude wins on WC/LR, smaller wins on FD/SD where the
// operator function dominates per-tuple cost.
#include <cstdio>

#include "bench_util.h"
#include "optimizer/fusion.h"

using namespace brisk;

int main() {
  bench::Banner("Figure 6", "throughput speedup over Storm/Flink, Server A");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();

  const std::vector<int> widths = {22, 10, 10, 10, 10};
  bench::PrintRule(widths);
  bench::PrintRow({"K events/s", "WC", "FD", "SD", "LR"}, widths);
  bench::PrintRule(widths);

  std::vector<std::vector<std::string>> rows(7);
  rows[0] = {"BriskStream"};
  rows[1] = {"Brisk (compiled)"};
  rows[2] = {"Storm"};
  rows[3] = {"Flink"};
  rows[4] = {"BriskStream/Storm"};
  rows[5] = {"BriskStream/Flink"};
  rows[6] = {"Compiled/Storm"};

  for (const auto app : apps::kAllApps) {
    double tput[3] = {0, 0, 0};
    const apps::SystemKind kinds[] = {apps::SystemKind::kBrisk,
                                      apps::SystemKind::kStormLike,
                                      apps::SystemKind::kFlinkLike};
    for (int k = 0; k < 3; ++k) {
      auto run = bench::RunSystem(app, machine, kinds[k]);
      if (!run.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", apps::AppName(app),
                     apps::SystemName(kinds[k]),
                     run.status().ToString().c_str());
        return 1;
      }
      tput[k] = run->sim.throughput_tps;
    }
    auto compiled = bench::RunBriskCompiled(app, machine);
    if (!compiled.ok()) {
      std::fprintf(stderr, "%s/compiled: %s\n", apps::AppName(app),
                   compiled.status().ToString().c_str());
      return 1;
    }
    const double tput_compiled = compiled->sim.throughput_tps;
    rows[0].push_back(bench::Keps(tput[0]));
    rows[1].push_back(bench::Keps(tput_compiled));
    rows[2].push_back(bench::Keps(tput[1]));
    rows[3].push_back(bench::Keps(tput[2]));
    char s1[32], s2[32], s3[32];
    std::snprintf(s1, sizeof(s1), "%.1fx", tput[0] / tput[1]);
    std::snprintf(s2, sizeof(s2), "%.1fx", tput[0] / tput[2]);
    std::snprintf(s3, sizeof(s3), "%.1fx", tput_compiled / tput[1]);
    rows[4].push_back(s1);
    rows[5].push_back(s2);
    rows[6].push_back(s3);
  }
  for (const auto& row : rows) bench::PrintRow(row, widths);
  bench::PrintRule(widths);
  std::printf(
      "Paper (Fig. 6): Brisk/Storm 20.2 / 4.6 / 3.2 / 18.7; "
      "Brisk/Flink 11.2 / 8.4 / 2.8 / 12.8\n  (WC/LR an order of "
      "magnitude, FD/SD a few x).\n"
      "'Brisk (compiled)' adds auto-fusion with compiled pipelines "
      "(kernel-backed\n  chains priced at the measured x%.2f per-tuple "
      "ratio from bench_pipeline);\n  apps without kernel chains match "
      "plain BriskStream.\n",
      opt::kMeasuredCompiledTeDiscount);
  return 0;
}
