// Figure 10 — Gaps to ideal performance on 8 sockets.
//
// Three bars per app:
//   Measured — simulation of the RLAS plan on 8 sockets;
//   W/o rma  — the same plan with every remote-fetch cost substituted
//              by zero (the paper's theoretical bound);
//   Ideal    — the 1-socket measurement scaled linearly by 8.
//
// Paper: removing RMA recovers 89–95% of ideal — RMA growth is the
// main obstacle to linear scaling; the remainder is plan parallelism.
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

int main() {
  bench::Banner("Figure 10", "measured vs ideal vs W/o-RMA (K events/s)");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();

  const std::vector<int> widths = {6, 12, 12, 12, 12};
  bench::PrintRule(widths);
  bench::PrintRow({"app", "measured", "ideal", "w/o rma", "worma/ideal"},
                  widths);
  bench::PrintRule(widths);

  for (const auto app : apps::kAllApps) {
    auto optimized = bench::OptimizeApp(app, machine);
    if (!optimized.ok()) return 1;
    auto measured = bench::MeasureSim(machine, optimized->profiles,
                                      optimized->rlas.plan);
    if (!measured.ok()) return 1;

    // W/o RMA: identical plan, fetch costs erased.
    sim::SimConfig cfg = bench::DefaultSimConfig();
    cfg.zero_fetch = true;
    auto worma = sim::Simulate(machine, optimized->profiles,
                               optimized->rlas.plan, cfg);
    if (!worma.ok()) return 1;

    // Ideal: one socket, linearly scaled by 8.
    auto one = machine.Truncated(1);
    if (!one.ok()) return 1;
    auto opt1 = bench::OptimizeApp(app, *one);
    if (!opt1.ok()) return 1;
    auto meas1 = bench::MeasureSim(*one, opt1->profiles, opt1->rlas.plan);
    if (!meas1.ok()) return 1;
    const double ideal = meas1->throughput_tps * machine.num_sockets();

    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.0f%%",
                  100.0 * worma->throughput_tps / ideal);
    bench::PrintRow({apps::AppName(app),
                     bench::Keps(measured->throughput_tps),
                     bench::Keps(ideal), bench::Keps(worma->throughput_tps),
                     frac},
                    widths);
  }
  bench::PrintRule(widths);
  std::printf(
      "Paper (Fig. 10): W/o-rma reaches 89-95%% of ideal; measured sits "
      "well below both\n  on 8 sockets — confirming RMA growth as the "
      "scaling obstacle.\n");
  return 0;
}
