// Compiled-pipeline microbenchmark — the vectorized execution path in
// isolation: one fused filter+map chain over a 64-tuple JumboTuple,
// run batch-at-a-time (CompiledPipeline::RunBatch, the engine's
// compiled mode) and row-at-a-time (RunRow, the interpreted fallback)
// over identical data.
//
// Reports tuples/s and ns/tuple for both modes, the compiled:interpreted
// speedup, and — via the same interposing counting allocator the
// emit-path bench uses — heap allocations in the measured compiled
// loop, which must be exactly zero (selection vector and scratch
// batches retain capacity across calls).
//
// CI gates (exit code): compiled throughput >= 100M tuples/s, compiled
// >= 3x interpreted, zero allocs in the compiled loop.
//
// Flags: --quick (CI-sized round count), --out <path> (JSON location).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "api/kernels.h"
#include "api/pipeline.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/tuple.h"

// ---------------------------------------------------------------------------
// Interposing counting allocator (same contract as bench_emit_path):
// every path to the heap bumps one relaxed atomic, so the compiled
// loop's alloc count is a real allocator round-trip count.
// ---------------------------------------------------------------------------
namespace {
std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = align <= alignof(std::max_align_t)
                ? std::malloc(size)
                : std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace brisk {
namespace {

using api::CmpOp;
using api::CompiledPipeline;
using api::KernelDesc;
using api::NumOp;
using api::OutputCollector;
using api::PipelineSink;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Terminal for the compiled mode: folds survivors into a checksum
/// without moving tuples out, so the source batch can be replayed.
class ChecksumSink final : public PipelineSink {
 public:
  void ConsumeSelected(JumboTuple* batch, const SelectionVector& sel) override {
    sel.ForEachSet([&](size_t i) {
      sum += batch->tuples[i].GetInt(1);
      ++count;
    });
  }
  uint64_t count = 0;
  int64_t sum = 0;
};

/// Terminal for the interpreted mode: same fold, collector-shaped.
class ChecksumCollector final : public OutputCollector {
 public:
  void Emit(Tuple t) override {
    sum += t.GetInt(1);
    ++count;
  }
  void EmitTo(uint16_t, Tuple t) override { Emit(std::move(t)); }
  uint64_t count = 0;
  int64_t sum = 0;
};

/// The fused chain under test: `keep iff fields[0] > 31` (50%
/// selectivity over the 0..63 value pattern below) then
/// `fields[1] += 1`. Both stages carry dense batch loops, so the
/// compiled mode is two tight passes over the batch; the interpreted
/// mode pays one virtual Process-shaped call per tuple.
std::vector<KernelDesc> Chain() {
  return {api::FilterCmpConst(0, CmpOp::kGt, 31, 0.5),
          api::MapNumConst(1, NumOp::kAdd, 1)};
}

/// 64 two-int-field tuples, fields[0] = 0..63 (filter keeps the top
/// half every round — field 0 is never rewritten, so the selection is
/// identical across replays).
JumboTuple MakeBatch(size_t n) {
  JumboTuple batch;
  batch.tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    t.fields.push_back(Field(static_cast<int64_t>(i)));
    t.fields.push_back(Field(static_cast<int64_t>(0)));
    t.origin_ts_ns = 1;  // pre-stamped: the bench measures compute only
    batch.tuples.push_back(std::move(t));
  }
  return batch;
}

struct ModeResult {
  double tuples_per_sec = 0.0;
  double ns_per_tuple = 0.0;
  uint64_t tuples = 0;
  uint64_t survivors = 0;
  uint64_t allocs = 0;
};

ModeResult RunCompiled(uint64_t rounds, size_t batch_size) {
  auto pipe = CompiledPipeline::Compile(Chain());
  BRISK_CHECK(pipe.ok()) << pipe.status().ToString();
  JumboTuple batch = MakeBatch(batch_size);
  ChecksumSink sink;

  // Warm-up: first RunBatch sizes the selection vector's word array.
  for (int r = 0; r < 64; ++r) (*pipe)->RunBatch(&batch, &sink);
  sink.count = 0;
  sink.sum = 0;

  const uint64_t allocs_before = g_heap_allocs.load();
  const int64_t t0 = NowNs();
  for (uint64_t r = 0; r < rounds; ++r) (*pipe)->RunBatch(&batch, &sink);
  const int64_t t1 = NowNs();
  ModeResult res;
  res.tuples = rounds * batch_size;
  res.survivors = sink.count;
  res.allocs = g_heap_allocs.load() - allocs_before;
  res.ns_per_tuple = static_cast<double>(t1 - t0) /
                     static_cast<double>(res.tuples);
  res.tuples_per_sec = 1e9 * static_cast<double>(res.tuples) /
                       static_cast<double>(t1 - t0);
  BRISK_CHECK(sink.sum != 0) << "checksum sank to zero — dead-code risk";
  return res;
}

ModeResult RunInterpreted(uint64_t rounds, size_t batch_size) {
  auto pipe = CompiledPipeline::Compile(Chain());
  BRISK_CHECK(pipe.ok()) << pipe.status().ToString();
  JumboTuple batch = MakeBatch(batch_size);
  ChecksumCollector out;

  for (int r = 0; r < 64; ++r) {
    for (const Tuple& t : batch.tuples) (*pipe)->RunRow(t, &out);
  }
  out.count = 0;
  out.sum = 0;

  const uint64_t allocs_before = g_heap_allocs.load();
  const int64_t t0 = NowNs();
  for (uint64_t r = 0; r < rounds; ++r) {
    for (const Tuple& t : batch.tuples) (*pipe)->RunRow(t, &out);
  }
  const int64_t t1 = NowNs();
  ModeResult res;
  res.tuples = rounds * batch_size;
  res.survivors = out.count;
  res.allocs = g_heap_allocs.load() - allocs_before;
  res.ns_per_tuple = static_cast<double>(t1 - t0) /
                     static_cast<double>(res.tuples);
  res.tuples_per_sec = 1e9 * static_cast<double>(res.tuples) /
                       static_cast<double>(t1 - t0);
  BRISK_CHECK(out.sum != 0) << "checksum sank to zero — dead-code risk";
  return res;
}

std::string Mps(double tps) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fM", tps / 1e6);
  return buf;
}

}  // namespace
}  // namespace brisk

int main(int argc, char** argv) {
  using namespace brisk;

  bool quick = false;
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  constexpr size_t kBatch = 64;
  const uint64_t rounds = quick ? 400'000 : 4'000'000;

  bench::Banner("pipeline",
                "compiled (batch) vs interpreted (row) fused filter+map");

  const ModeResult compiled = RunCompiled(rounds, kBatch);
  const ModeResult interp = RunInterpreted(rounds, kBatch);
  const double speedup = compiled.tuples_per_sec / interp.tuples_per_sec;

  const std::vector<int> widths = {22, 14, 10, 8};
  bench::PrintRule(widths);
  bench::PrintRow({"mode", "tuples/s", "ns/tuple", "allocs"}, widths);
  bench::PrintRule(widths);
  char buf[64];
  auto row = [&](const char* name, const ModeResult& r) {
    std::snprintf(buf, sizeof(buf), "%.1f", r.ns_per_tuple);
    bench::PrintRow({name, Mps(r.tuples_per_sec), buf,
                     std::to_string(r.allocs)},
                    widths);
  };
  row("compiled (RunBatch)", compiled);
  row("interpreted (RunRow)", interp);
  bench::PrintRule(widths);
  std::printf("compiled vs interpreted speedup: %.2fx\n", speedup);

  bench::JsonObj workload;
  workload.Add("chain", "filter(f0 > 31) | map(f1 += 1)")
      .Add("batch_size", static_cast<int>(kBatch))
      .Add("rounds", rounds)
      .Add("selectivity", 0.5)
      .Add("quick", quick);
  auto mode_json = [](const ModeResult& r) {
    bench::JsonObj o;
    o.Add("tuples_per_sec", r.tuples_per_sec)
        .Add("ns_per_tuple", r.ns_per_tuple)
        .Add("tuples", r.tuples)
        .Add("survivors", r.survivors)
        .Add("allocs_in_measured_loop", r.allocs);
    return o;
  };
  bench::JsonObj doc;
  doc.Add("bench", "pipeline")
      .Add("workload", workload)
      .Add("compiled", mode_json(compiled))
      .Add("interpreted", mode_json(interp))
      .Add("speedup_compiled_vs_interpreted", speedup);
  bench::WriteJsonFile(out_path, doc);
  std::printf("wrote %s\n", out_path.c_str());

  // CI gates. The 100M tuples/s floor is the issue's acceptance bar
  // (~3x the 34M row-wise baseline); the zero-alloc gate pins the
  // steady-state property RunBatch is designed around.
  int rc = 0;
  if (compiled.tuples_per_sec < 100e6) {
    std::fprintf(stderr, "FAIL: compiled pipeline below 100M tuples/s (%.1fM)\n",
                 compiled.tuples_per_sec / 1e6);
    rc = 1;
  }
  if (speedup < 3.0) {
    std::fprintf(stderr, "FAIL: compiled speedup below 3x (%.2fx)\n", speedup);
    rc = 1;
  }
  if (compiled.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: compiled loop touched the allocator (%llu allocs)\n",
                 static_cast<unsigned long long>(compiled.allocs));
    rc = 1;
  }
  return rc;
}
