// Figure 16 — Factor analysis: which BriskStream ingredient buys what.
//
// Cumulative left-to-right, as in the paper:
//   simple           — Storm-era per-tuple costs, NUMA-oblivious
//                      placement (RLAS_fix(L) scheme);
//   -Instr.footprint — small instruction footprint / no temporary
//                      objects (§5.1), still per-tuple transfers,
//                      still fix(L);
//   +JumboTuple      — jumbo-tuple batching (§5.2), still fix(L);
//   +RLAS            — the NUMA-aware execution-plan optimization (§3).
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

namespace {

struct Step {
  const char* label;
  apps::SystemKind profiles;
  bool use_rlas;  // else fix(L)
  int batch_size;
};

}  // namespace

int main() {
  bench::Banner("Figure 16", "factor analysis (cumulative), Server A");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();

  const Step kSteps[] = {
      {"simple", apps::SystemKind::kStormLike, false, 8},
      {"-Instr.footprint", apps::SystemKind::kBriskNoJumbo, false, 8},
      {"+JumboTuple", apps::SystemKind::kBrisk, false, 64},
      {"+RLAS", apps::SystemKind::kBrisk, true, 64},
  };

  const std::vector<int> widths = {18, 11, 11, 11, 11};
  bench::PrintRule(widths);
  bench::PrintRow({"K events/s", "WC", "FD", "SD", "LR"}, widths);
  bench::PrintRule(widths);

  for (const auto& step : kSteps) {
    std::vector<std::string> row = {step.label};
    for (const auto app : apps::kAllApps) {
      auto bundle = apps::MakeApp(app);
      if (!bundle.ok()) return 1;
      auto profiles = apps::ProfilesFor(app, step.profiles);
      if (!profiles.ok()) return 1;

      opt::RlasOptions options;
      options.placement.compress_ratio = 5;
      StatusOr<opt::RlasResult> plan_result =
          step.use_rlas
              ? opt::RlasOptimizer(&machine, &*profiles, options)
                    .Optimize(bundle->topology())
              : opt::OptimizeRlasFixed(machine, *profiles,
                                       bundle->topology(),
                                       model::FetchCostMode::kAlwaysRemote,
                                       options);
      if (!plan_result.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", step.label, apps::AppName(app),
                     plan_result.status().ToString().c_str());
        return 1;
      }
      sim::SimConfig cfg = bench::DefaultSimConfig();
      cfg.batch_size = step.batch_size;
      auto sim = sim::Simulate(machine, *profiles, plan_result->plan, cfg);
      if (!sim.ok()) return 1;
      row.push_back(bench::Keps(sim->throughput_tps));
    }
    bench::PrintRow(row, widths);
  }
  bench::PrintRule(widths);
  std::printf(
      "Paper (Fig. 16): each factor adds cumulatively; the jumbo-tuple "
      "design and RLAS\n  are the critical steps (largest jumps), on "
      "every application.\n");
  return 0;
}
