// Figure 9 — Scalability with the number of CPU sockets.
//   (a) LR throughput for BriskStream / Storm / Flink on 1..8 sockets;
//   (b) normalized throughput of all four apps (BriskStream) at
//       1/2/4/8 sockets.
//
// Paper: BriskStream scales near-linearly to 4 sockets, then flattens
// when plans must cross the CPU-tray boundary (the max-hop RMA jump);
// Storm/Flink barely scale at all.
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

int main() {
  bench::Banner("Figure 9a", "LR throughput vs #sockets (K events/s)");
  const hw::MachineSpec full = hw::MachineSpec::ServerA();
  const int kSockets[] = {1, 2, 4, 8};

  {
    const std::vector<int> widths = {12, 12, 12, 12, 12};
    bench::PrintRule(widths);
    bench::PrintRow({"system", "1", "2", "4", "8"}, widths);
    bench::PrintRule(widths);
    const apps::SystemKind kinds[] = {apps::SystemKind::kBrisk,
                                      apps::SystemKind::kStormLike,
                                      apps::SystemKind::kFlinkLike};
    for (const auto kind : kinds) {
      std::vector<std::string> row = {apps::SystemName(kind)};
      for (const int s : kSockets) {
        auto m = full.Truncated(s);
        if (!m.ok()) return 1;
        auto run = bench::RunSystem(apps::AppId::kLinearRoad, *m, kind);
        if (!run.ok()) {
          std::fprintf(stderr, "%s@%d: %s\n", apps::SystemName(kind), s,
                       run.status().ToString().c_str());
          return 1;
        }
        row.push_back(bench::Keps(run->sim.throughput_tps));
      }
      bench::PrintRow(row, widths);
    }
    bench::PrintRule(widths);
  }

  bench::Banner("Figure 9b",
                "normalized throughput of all apps (BriskStream)");
  {
    const std::vector<int> widths = {6, 10, 10, 10, 10};
    bench::PrintRule(widths);
    bench::PrintRow({"app", "1 soc", "2 soc", "4 soc", "8 soc"}, widths);
    bench::PrintRule(widths);
    for (const auto app : apps::kAllApps) {
      std::vector<std::string> row = {apps::AppName(app)};
      double base = 0.0;
      for (const int s : kSockets) {
        auto m = full.Truncated(s);
        if (!m.ok()) return 1;
        auto run = bench::RunSystem(app, *m, apps::SystemKind::kBrisk);
        if (!run.ok()) {
          std::fprintf(stderr, "%s@%d: %s\n", apps::AppName(app), s,
                       run.status().ToString().c_str());
          return 1;
        }
        if (s == 1) base = run->sim.throughput_tps;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f%%",
                      100.0 * run->sim.throughput_tps / base);
        row.push_back(buf);
      }
      bench::PrintRow(row, widths);
    }
    bench::PrintRule(widths);
  }
  bench::Banner("Figure 9c",
                "WC vs #sockets, plain vs compiled-fusion BriskStream "
                "(K events/s)");
  {
    const std::vector<int> widths = {18, 12, 12, 12, 12};
    bench::PrintRule(widths);
    bench::PrintRow({"system", "1", "2", "4", "8"}, widths);
    bench::PrintRule(widths);
    std::vector<std::string> plain_row = {"BriskStream"};
    std::vector<std::string> compiled_row = {"Brisk (compiled)"};
    for (const int s : kSockets) {
      auto m = full.Truncated(s);
      if (!m.ok()) return 1;
      auto plain = bench::RunSystem(apps::AppId::kWordCount, *m,
                                    apps::SystemKind::kBrisk);
      auto compiled = bench::RunBriskCompiled(apps::AppId::kWordCount, *m);
      if (!plain.ok() || !compiled.ok()) {
        std::fprintf(stderr, "WC@%d: %s\n", s,
                     (plain.ok() ? compiled : plain)
                         .status()
                         .ToString()
                         .c_str());
        return 1;
      }
      plain_row.push_back(bench::Keps(plain->sim.throughput_tps));
      compiled_row.push_back(bench::Keps(compiled->sim.throughput_tps));
    }
    bench::PrintRow(plain_row, widths);
    bench::PrintRow(compiled_row, widths);
    bench::PrintRule(widths);
  }

  std::printf(
      "Paper (Fig. 9): near-linear 1->4 sockets (~100%%->~380%%), "
      "sub-linear 4->8\n  (the inter-tray RMA jump); Storm/Flink stay "
      "nearly flat. Compiled fusion\n  shifts the whole WC curve up — "
      "the chain's smaller T_e frees replica budget\n  at every socket "
      "count.\n");
  return 0;
}
