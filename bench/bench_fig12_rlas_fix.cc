// Figure 12 — RLAS with and without considering varying RMA cost.
//
// RLAS_fix(L) pessimistically assumes every operator always pays the
// worst-case remote fetch; RLAS_fix(U) ignores RMA altogether. Both
// optimize, then all three resulting plans are measured (simulated)
// under the true relative-location cost.
//
// Paper: RLAS beats fix(L) by 19–39% (fix(L) under-replicates and
// underutilizes) and fix(U) by 119–455% (fix(U) oversubscribes and
// interferes).
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

int main() {
  bench::Banner("Figure 12", "RLAS vs RLAS_fix(L) vs RLAS_fix(U), Server A");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();

  const std::vector<int> widths = {14, 12, 12, 12, 12};
  bench::PrintRule(widths);
  bench::PrintRow({"K events/s", "WC", "FD", "SD", "LR"}, widths);
  bench::PrintRule(widths);

  std::vector<std::string> rows[3] = {
      {"RLAS"}, {"RLAS_fix(L)"}, {"RLAS_fix(U)"}};
  std::vector<std::string> gains[2] = {{"RLAS/fix(L)"}, {"RLAS/fix(U)"}};

  for (const auto app : apps::kAllApps) {
    auto bundle = apps::MakeApp(app);
    if (!bundle.ok()) return 1;
    opt::RlasOptions options;
    options.placement.compress_ratio = 5;

    double tput[3] = {0, 0, 0};
    // RLAS proper.
    {
      opt::RlasOptimizer optimizer(&machine, &bundle->profiles, options);
      auto r = optimizer.Optimize(bundle->topology());
      if (!r.ok()) return 1;
      auto t = bench::MeasuredThroughput(machine, bundle->profiles, r->plan);
      if (!t.ok()) return 1;
      tput[0] = *t;
    }
    // Fixed-cost ablations, measured under the true cost model.
    const model::FetchCostMode modes[] = {
        model::FetchCostMode::kAlwaysRemote,   // fix(L)
        model::FetchCostMode::kAlwaysLocal};   // fix(U)
    for (int k = 0; k < 2; ++k) {
      auto r = opt::OptimizeRlasFixed(machine, bundle->profiles,
                                      bundle->topology(), modes[k], options);
      if (!r.ok()) {
        std::fprintf(stderr, "%s fix: %s\n", apps::AppName(app),
                     r.status().ToString().c_str());
        return 1;
      }
      auto t = bench::MeasuredThroughput(machine, bundle->profiles, r->plan);
      if (!t.ok()) return 1;
      tput[1 + k] = *t;
    }
    for (int k = 0; k < 3; ++k) rows[k].push_back(bench::Keps(tput[k]));
    for (int k = 0; k < 2; ++k) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+.0f%%",
                    100.0 * (tput[0] / tput[1 + k] - 1.0));
      gains[k].push_back(buf);
    }
  }
  for (const auto& row : rows) bench::PrintRow(row, widths);
  for (const auto& row : gains) bench::PrintRow(row, widths);
  bench::PrintRule(widths);
  std::printf(
      "Paper (Fig. 12): RLAS +19–39%% over fix(L), +119–455%% over "
      "fix(U).\n");
  return 0;
}
