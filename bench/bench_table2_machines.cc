// Table 2 — Characteristics of the two evaluation servers.
//
// Prints the modeled machines (DESIGN.md §1's hardware substitution):
// the latency/bandwidth matrices RLAS optimizes against, built from the
// paper's published numbers.
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

namespace {

void PrintMachine(const hw::MachineSpec& m) {
  std::printf("\n%s\n", m.ToString().c_str());
  std::printf("  1-hop latency  : %.1f ns\n", m.LatencyNs(0, 1));
  std::printf("  max-hop latency: %.1f ns\n", m.LatencyNs(0, 7));
  std::printf("  1-hop B/W      : %.1f GB/s\n", m.ChannelBandwidthGbps(0, 1));
  std::printf("  max-hop B/W    : %.1f GB/s\n", m.ChannelBandwidthGbps(0, 7));
  std::printf("  total local B/W: %.1f GB/s\n",
              m.local_bandwidth_gbps() * m.num_sockets());
}

}  // namespace

int main() {
  bench::Banner("Table 2", "modeled server characteristics");
  PrintMachine(hw::MachineSpec::ServerA());
  PrintMachine(hw::MachineSpec::ServerB());
  std::printf(
      "\nPaper (Table 2): Server A local 50 ns / 307.7 / 548.0; "
      "54.3 / 13.2 / 5.8 GB/s.\n  Server B local 50 ns / 185.2 / 349.6; "
      "24.2 / 10.6 / 10.8 GB/s.\n");
  return 0;
}
