// Figure 13 / Table 6 — Placement strategies under the same replication
// configuration, on Server A and Server B.
//
// Replication is fixed to the RLAS-optimized configuration; only the
// placement differs: RLAS (B&B), OS (kernel-style least-loaded), FF
// (topologically sorted first-fit), RR (round-robin). All plans are
// measured by simulation; throughput is normalized to RLAS.
//
// Paper: RLAS ≥ every alternative on both servers; FF traps itself in
// local optima ("not-able-to-progress" repacking), RR pays needless
// cross-socket traffic; Server B behaves more uniformly thanks to the
// XNC's flat remote bandwidth.
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

namespace {

int RunServer(const char* label, const hw::MachineSpec& machine) {
  std::printf("\n%s:\n", label);
  const std::vector<int> widths = {6, 10, 10, 10, 10};
  bench::PrintRule(widths);
  bench::PrintRow({"app", "RLAS", "OS", "FF", "RR"}, widths);
  bench::PrintRule(widths);

  for (const auto app : apps::kAllApps) {
    auto optimized = bench::OptimizeApp(app, machine);
    if (!optimized.ok()) {
      std::fprintf(stderr, "%s: %s\n", apps::AppName(app),
                   optimized.status().ToString().c_str());
      return 1;
    }
    model::PerfModel model(&machine, &optimized->profiles);

    auto rlas_tput = bench::MeasuredThroughput(machine, optimized->profiles,
                                               optimized->rlas.plan);
    if (!rlas_tput.ok()) return 1;

    auto os = opt::PlaceOsDefault(machine, optimized->rlas.plan);
    auto ff = opt::PlaceFirstFit(model, optimized->rlas.plan, 1e12);
    auto rr = opt::PlaceRoundRobin(machine, optimized->rlas.plan);
    if (!os.ok() || !ff.ok() || !rr.ok()) return 1;

    auto cell = [&](const model::ExecutionPlan& plan) -> std::string {
      auto t = bench::MeasuredThroughput(machine, optimized->profiles, plan);
      if (!t.ok()) return "err";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", *t / *rlas_tput);
      return buf;
    };
    bench::PrintRow(
        {apps::AppName(app), "1.00", cell(*os), cell(*ff), cell(*rr)},
        widths);
  }
  bench::PrintRule(widths);
  return 0;
}

}  // namespace

int main() {
  bench::Banner("Figure 13",
                "placement strategies, fixed replication (normalized)");
  if (RunServer("Server A", hw::MachineSpec::ServerA())) return 1;
  if (RunServer("Server B", hw::MachineSpec::ServerB())) return 1;
  std::printf(
      "\nPaper (Fig. 13): every strategy <= RLAS (1.0) on both servers; "
      "the gap is\n  smaller on Server B, whose XNC keeps remote "
      "bandwidth nearly uniform.\n");
  return 0;
}
