// Figure 8 — Per-tuple execution time breakdown (Execute / Others /
// RMA) for WC's non-source operators: Storm (local), Brisk (local),
// Brisk (remote).
//
// Measured single-threaded over the real code paths (this host has one
// core, so a pipelined multi-thread measurement would only measure the
// scheduler):
//   Execute — wall time of the operator's Process() on real tuples
//             (profiling harness);
//   Others  — wall time of the runtime path a tuple crosses between
//             operators: BriskStream = jumbo-tuple buffer append + SPSC
//             push/pop amortized over the batch; Storm-like = per-tuple
//             serialization + deserialization + duplicated header
//             allocation + condition-check work (all real work, §5.1/5.2);
//   RMA     — the Formula-2 remote-fetch stall for this operator's input
//             tuple size at max NUMA distance (S0 -> S7 on Server A),
//             the cost the NUMA emulator charges per tuple.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/serde.h"
#include "common/spsc_queue.h"
#include "engine/channel.h"
#include "profiler/profiler.h"

using namespace brisk;

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-tuple cost of the Brisk communication path: append into a jumbo
/// tuple, push/pop through an SPSC queue at batch granularity.
double BriskOthersNs(const std::vector<Tuple>& samples, int batch) {
  SpscQueue<engine::Envelope> queue(256);
  const int kRounds = 4000;
  const int64_t t0 = NowNs();
  uint64_t tuples = 0;
  for (int r = 0; r < kRounds; ++r) {
    auto jumbo = std::make_unique<JumboTuple>();
    jumbo->tuples.reserve(batch);
    for (int i = 0; i < batch; ++i) {
      jumbo->tuples.push_back(samples[i % samples.size()]);
    }
    engine::Envelope env;
    env.count = static_cast<uint32_t>(batch);
    env.batch = std::move(jumbo);
    while (!queue.TryPush(std::move(env))) {
    }
    engine::Envelope out;
    queue.TryPop(&out);
    tuples += out.count;
  }
  return static_cast<double>(NowNs() - t0) / static_cast<double>(tuples);
}

/// Per-tuple cost of the Storm-like path: serialize + deserialize each
/// tuple, allocate its duplicated header, run the condition-check walk.
double StormOthersNs(const std::vector<Tuple>& samples) {
  const int kRounds = 20000;
  const int64_t t0 = NowNs();
  uint64_t sink = 0;
  for (int r = 0; r < kRounds; ++r) {
    const Tuple& t = samples[r % samples.size()];
    // Duplicated per-tuple header (temporary object churn).
    auto header = std::make_unique<std::array<int64_t, 6>>();
    (*header)[0] = r;
    sink += static_cast<uint64_t>((*header)[0]);
    // Condition-check walk (exception scaffolding / ACK bookkeeping).
    uint64_t h = 1469598103934665603ULL;
    for (const auto& f : t.fields) {
      h = (h ^ static_cast<uint64_t>(f.index())) * 1099511628211ULL;
      h = (h ^ FieldSizeBytes(f)) * 1099511628211ULL;
    }
    sink += h & 1;
    // Wire codec.
    std::vector<uint8_t> bytes;
    SerializeTuple(t, &bytes);
    size_t off = 0;
    auto decoded = DeserializeTuple(bytes, &off);
    sink += decoded.ok() ? decoded->fields.size() : 0;
  }
  const double per_tuple =
      static_cast<double>(NowNs() - t0) / static_cast<double>(kRounds);
  return sink > 0 ? per_tuple : per_tuple;  // keep `sink` live
}

}  // namespace

int main() {
  bench::Banner("Figure 8",
                "per-tuple time breakdown (Execute/Others/RMA), WC");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();

  auto app = apps::MakeApp(apps::AppId::kWordCount);
  if (!app.ok()) return 1;
  profiler::ProfilerConfig pcfg;
  pcfg.samples = 8000;
  pcfg.reference_ghz = 1.0;  // report measured ns directly
  auto prof = profiler::ProfileApp(app->topology(), pcfg);
  if (!prof.ok()) {
    std::fprintf(stderr, "%s\n", prof.status().ToString().c_str());
    return 1;
  }

  // Representative input tuples per operator (for the Others/RMA
  // paths): sentence for parser/splitter, word for counter.
  Tuple sentence;
  sentence.fields.emplace_back(
      std::string("alpha bravo charlie delta echo fox golf hotel in ja"));
  Tuple word;
  word.fields.emplace_back(std::string("alpha"));
  Tuple count_pair = word;
  count_pair.fields.emplace_back(int64_t{42});

  struct OpRow {
    const char* name;
    Tuple input;
  };
  const OpRow kOps[] = {
      {"parser", sentence}, {"splitter", sentence}, {"counter", word}};

  const std::vector<int> widths = {10, 14, 10, 10, 10, 10};
  bench::PrintRule(widths);
  bench::PrintRow({"operator", "system", "execute", "others", "rma",
                   "total(ns)"},
                  widths);
  bench::PrintRule(widths);

  for (const auto& op : kOps) {
    const auto& m = prof->measurements.at(op.name);
    const double execute = m.te_cycles.Percentile(0.5);  // ns (1 GHz ref)
    const std::vector<Tuple> samples = {op.input};
    const double brisk_others = BriskOthersNs(samples, /*batch=*/64);
    const double storm_others = StormOthersNs(samples);
    const double rma = machine.FetchCostNs(
        0, 7, static_cast<double>(op.input.SizeBytes()));

    auto row = [&](const char* system, double ex, double others,
                   double rma_ns) {
      auto f = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return std::string(buf);
      };
      bench::PrintRow({op.name, system, f(ex), f(others), f(rma_ns),
                       f(ex + others + rma_ns)},
                      widths);
    };
    row("Storm(loc)", execute, storm_others, 0.0);
    row("Brisk(loc)", execute, brisk_others, 0.0);
    row("Brisk(rem)", execute, brisk_others, rma);
  }
  bench::PrintRule(widths);
  std::printf(
      "Notes: Execute is the measured operator function time (identical "
      "across systems\n  here — the paper's additional Storm Execute "
      "inflation comes from JVM instruction-\n  cache misses we cannot "
      "reproduce in native code; its serialization/header/check\n  "
      "overhead lands in Others). Paper (Fig. 8): Brisk cuts Others to "
      "~10%% of Storm's;\n  remote placement adds RMA up to several x "
      "the local round-trip, largest for\n  the cheap Parser "
      "(T_e << T_f).\n");
  return 0;
}
