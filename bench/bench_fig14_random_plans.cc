// Figure 14 — Monte-Carlo validation of the search heuristics: 1000
// random execution plans per application vs the RLAS plan.
//
// Random plans grow replication randomly to the scaling limit and
// place uniformly at random (§6.4). All plans — random and RLAS — are
// valued by the performance model (the paper measured real runs; the
// model is this repo's fast valuation, consistent across both sides).
//
// Paper: none of the 1000 random plans beats RLAS on any app.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

int main() {
  bench::Banner("Figure 14", "1000 random plans vs RLAS (model-valued)");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();
  constexpr int kPlans = 1000;

  for (const auto app : apps::kAllApps) {
    auto optimized = bench::OptimizeApp(app, machine);
    if (!optimized.ok()) return 1;
    model::PerfModel model(&machine, &optimized->profiles);

    auto rlas_eval =
        model.Evaluate(optimized->rlas.plan, 1e12);
    if (!rlas_eval.ok()) return 1;
    const double rlas_tput = rlas_eval->throughput;

    Rng rng(1234 + static_cast<uint64_t>(app));
    std::vector<double> values;
    values.reserve(kPlans);
    int better = 0;
    for (int i = 0; i < kPlans; ++i) {
      auto plan = opt::RandomPlan(optimized->bundle.topology(), machine,
                                  &rng);
      if (!plan.ok()) return 1;
      auto eval = model.Evaluate(*plan, 1e12);
      if (!eval.ok()) return 1;
      values.push_back(eval->throughput);
      if (eval->throughput > rlas_tput) ++better;
    }
    std::sort(values.begin(), values.end());
    auto q = [&](double f) {
      return values[static_cast<size_t>(f * (values.size() - 1))];
    };
    std::printf(
        "%s: RLAS %s K/s | random p10 %s, p50 %s, p90 %s, max %s K/s | "
        "%d/%d random plans beat RLAS\n",
        apps::AppName(app), bench::Keps(rlas_tput).c_str(),
        bench::Keps(q(0.10)).c_str(), bench::Keps(q(0.50)).c_str(),
        bench::Keps(q(0.90)).c_str(), bench::Keps(values.back()).c_str(),
        better, kPlans);
  }
  std::printf(
      "\nPaper (Fig. 14): zero random plans beat RLAS; the bulk of the "
      "random CDF sits\n  far left (random plans hurt with high "
      "probability).\n");
  return 0;
}
