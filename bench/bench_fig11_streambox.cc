// Figure 11 — BriskStream vs StreamBox on WC with growing core counts
// (2 .. 144 cores = up to 8 sockets of Server A).
//
// Paper: BriskStream wins at every core count; StreamBox — even with
// ordering disabled — flattens past one socket because of (1) its
// centralized locked scheduler and (2) remote misses from data
// shuffling. Reproduction strategy (DESIGN.md §1): BriskStream points
// come from RLAS + simulation at each core budget; StreamBox points
// come from its contention model calibrated against the real
// morsel-driven engine in src/streambox (which also runs here, on this
// host's cores, as a functional check).
#include <cstdio>

#include "bench_util.h"
#include "streambox/streambox.h"

using namespace brisk;

int main() {
  bench::Banner("Figure 11", "BriskStream vs StreamBox, WC (K events/s)");
  const hw::MachineSpec full = hw::MachineSpec::ServerA();

  // Calibrate the StreamBox model's per-record work from a real run of
  // the morsel-driven engine on this host (single worker: no
  // contention, no remote misses).
  streambox::StreamBoxConfig sb_cfg;
  sb_cfg.num_workers = 1;
  sb_cfg.ordered = true;
  auto calibration = streambox::MakeWordCountStreamBox(sb_cfg).Run(0.4);
  if (!calibration.ok()) {
    std::fprintf(stderr, "%s\n", calibration.status().ToString().c_str());
    return 1;
  }
  const double work_ns = 1e9 / calibration->throughput_tps;
  std::printf(
      "calibration: real StreamBox engine, 1 worker: %.0f K records/s "
      "(%.0f ns/record),\n  %llu scheduler lock acquisitions\n",
      calibration->throughput_tps / 1e3, work_ns,
      static_cast<unsigned long long>(calibration->scheduler_acquisitions));

  const std::vector<int> widths = {8, 14, 14, 16};
  bench::PrintRule(widths);
  bench::PrintRow({"cores", "BriskStream", "StreamBox", "StreamBox(ooo)"},
                  widths);
  bench::PrintRule(widths);

  const int kCores[] = {2, 4, 8, 16, 32, 72, 144};
  for (const int cores : kCores) {
    // BriskStream: RLAS with a replica budget of `cores` on however
    // many sockets that needs.
    const int sockets =
        std::min(8, (cores + full.cores_per_socket() - 1) /
                        full.cores_per_socket());
    auto m = full.Truncated(sockets);
    if (!m.ok()) return 1;
    auto bundle = apps::MakeApp(apps::AppId::kWordCount);
    if (!bundle.ok()) return 1;
    opt::RlasOptions options;
    options.placement.compress_ratio = 5;
    options.max_total_replicas = cores;
    opt::RlasOptimizer optimizer(&*m, &bundle->profiles, options);
    auto rlas = optimizer.Optimize(bundle->topology());
    if (!rlas.ok()) {
      std::fprintf(stderr, "rlas@%d: %s\n", cores,
                   rlas.status().ToString().c_str());
      return 1;
    }
    auto brisk = bench::MeasuredThroughput(*m, bundle->profiles, rlas->plan);
    if (!brisk.ok()) return 1;

    // StreamBox: contention model calibrated above. Scheduler critical
    // section ~600 ns (lock + queue scan); shuffle RMA ~ one max-hop
    // line fetch per record once sockets are spanned.
    const double sched_ns = 600.0;
    const double shuffle_rma = full.LatencyNs(0, 4);
    const double sb = streambox::StreamBoxModelThroughput(
        cores, full.cores_per_socket(), work_ns, sched_ns, shuffle_rma,
        sb_cfg.morsel_size, /*ordered=*/true);
    const double sb_ooo = streambox::StreamBoxModelThroughput(
        cores, full.cores_per_socket(), work_ns, sched_ns, shuffle_rma,
        sb_cfg.morsel_size, /*ordered=*/false);

    bench::PrintRow({std::to_string(cores), bench::Keps(*brisk),
                     bench::Keps(sb), bench::Keps(sb_ooo)},
                    widths);
  }
  bench::PrintRule(widths);
  std::printf(
      "Paper (Fig. 11): BriskStream above StreamBox at every core count "
      "(471.2 K/s for\n  StreamBox-ordered at 144 cores); the "
      "out-of-order variant is competitive at\n  small counts but "
      "flattens across sockets. Same shape expected here.\n");
  return 0;
}
