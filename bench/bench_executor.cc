// Executor A/B benchmark — the worker-pool tentpole measured against
// the legacy thread-per-task model on word_count at replication 1→64
// on fixed cores (ISSUE 4). Replication scales the splitter and
// counter ({1,1,r,r,1}); every instance is placed on socket 0 so both
// executors schedule the same plan on the same cores and only the
// execution model differs.
//
// The gated (primary) comparison holds the buffering budget equal and
// latency-bounded: both executors run the identical queue_capacity=16
// rings (31 usable slots after power-of-two rounding) with the pool's
// cooperative in-flight cap disabled, so the only difference is the
// execution model. This is the regime the tentpole targets — with
// deep rings, thread-per-task masks its FlushBuffer spin-waste and
// context switching behind megabytes of queued (cache-cold,
// high-latency) inventory; a default-config reference (deep rings +
// the pool's default in-flight cap) is recorded as a secondary,
// ungated sweep for transparency.
//
// Writes the human table to stdout and the machine-readable
// `BENCH_executor.json`, and exits nonzero when either gate fails:
//   - parity:  worker-pool >= 95% of thread-per-task at replication =
//     host cores (the pool must not tax the well-provisioned case);
//   - oversub: worker-pool >= 2x thread-per-task at >= 8x
//     oversubscription (the case thread-per-task collapses on).
//
// Flags: --quick (CI-sized points/durations), --out <path>,
// --budget/--qcap (experiment overrides).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/runtime.h"
#include "hardware/machine_spec.h"
#include "hardware/numa_emulator.h"
#include "model/execution_plan.h"

namespace brisk {
namespace {

using engine::EngineConfig;
using engine::ExecutorKind;
using model::ExecutionPlan;
using model::PlanInstance;

int HostCores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

struct RunResult {
  double sink_tps = 0.0;
  double p99_ms = 0.0;
  int tasks = 0;
  int threads = 0;
  uint64_t parks = 0;
};

int g_budget = 0;  // experiment override, 0 = default
int g_qcap = 0;    // experiment override, 0 = default

/// Requested ring capacity per edge in the gated comparison; both
/// executors get the identical ring (and the pool's soft cap is off),
/// so the buffering budget is exactly equal.
constexpr size_t kBoundedQueueBatches = 16;

RunResult RunOnce(ExecutorKind kind, int replication, double seconds,
                  size_t queue_capacity, bool equal_rings) {
  auto app = apps::MakeApp(apps::AppId::kWordCount);
  if (!app.ok()) std::abort();
  auto plan = ExecutionPlan::Create(app->topology_ptr.get(),
                                    {1, 1, replication, replication, 1});
  if (!plan.ok()) std::abort();
  plan->PlaceAllOn(0);
  EngineConfig cfg = EngineConfig::Brisk();
  cfg.executor = kind;
  cfg.queue_capacity = queue_capacity;
  // Equal budget: the pool's in-flight soft cap would otherwise bound
  // it tighter than the legacy ring (31 usable slots for capacity 16).
  if (equal_rings) cfg.pool_inflight_batches = 0;
  cfg.graceful_drain = false;
  if (g_budget > 0) cfg.poll_budget = g_budget;
  if (g_qcap > 0) cfg.queue_capacity = static_cast<size_t>(g_qcap);
  auto rt = engine::BriskRuntime::Create(app->topology_ptr.get(), *plan, cfg);
  if (!rt.ok()) std::abort();
  if (!(*rt)->Start().ok()) std::abort();
  const int64_t t0 = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  // Steady-state snapshot BEFORE Stop(): the shutdown epilogue drains
  // the queued backlog single-threaded, which would otherwise pollute
  // both throughput and the latency histogram.
  const uint64_t steady_tuples = app->telemetry->count();
  const Histogram steady_latency = app->telemetry->LatencySnapshot();
  const int64_t t1 = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
  const engine::RunStats stats = (*rt)->Stop();
  RunResult res;
  res.tasks = static_cast<int>(stats.tasks.size());
  res.threads = stats.executor.threads;
  res.parks = stats.executor.parks;
  res.sink_tps = static_cast<double>(steady_tuples) /
                 (static_cast<double>(t1 - t0) * 1e-9);
  res.p99_ms = steady_latency.Percentile(0.99) / 1e6;
  return res;
}

/// One run of the skewed-assignment arm (ISSUE 9): word_count at
/// replication 64 on an emulated two-socket machine where every heavy
/// instance (splitter + counter) is parked on socket 0 while socket 1
/// holds only the light spout/parser/sink chain. With stealing off the
/// heavy backlog is bound to socket 0's workers; with stealing on the
/// idle socket-1 workers should pull it over and lift throughput.
struct SkewResult {
  double sink_tps = 0.0;
  int workers = 0;
  uint64_t parks = 0;
  uint64_t wakes = 0;
  uint64_t steals_intra = 0;
  uint64_t steals_cross = 0;
  uint64_t steal_failures = 0;
  uint64_t repatriations = 0;
};

SkewResult RunSkew(bool steal_on, double seconds) {
  constexpr int kSkewReplication = 64;
  auto app = apps::MakeApp(apps::AppId::kWordCount);
  if (!app.ok()) std::abort();
  auto plan = ExecutionPlan::Create(
      app->topology_ptr.get(),
      {1, 1, kSkewReplication, kSkewReplication, 1});
  if (!plan.ok()) std::abort();
  // Ops are {spout, parser, splitter, counter, sink}; the two replicated
  // heavy ops (ids 2 and 3) all land on socket 0.
  for (int i = 0; i < plan->num_instances(); ++i) {
    const PlanInstance& pi = plan->instance(i);
    plan->SetSocket(i, (pi.op == 2 || pi.op == 3) ? 0 : 1);
  }
  // Emulated two-socket machine: drives worker grouping and pinning but
  // charges no remote-fetch stalls (enabled=false), so the measured
  // delta is pure scheduling.
  const int cores = HostCores();
  const hw::MachineSpec machine = hw::MachineSpec::Symmetric(
      2, std::max(1, cores / 2), 1.0, 50, 300, 50, 10);
  const hw::NumaEmulator numa(machine, /*enabled=*/false);
  EngineConfig cfg = EngineConfig::Brisk();
  cfg.executor = ExecutorKind::kWorkerPool;
  cfg.queue_capacity = kBoundedQueueBatches;
  cfg.pool_inflight_batches = 0;
  cfg.graceful_drain = false;
  cfg.pin_threads = true;
  cfg.steal_work = steal_on;
  // At least two workers per socket so intra-socket stealing is
  // structurally possible even on small hosts.
  cfg.workers_per_socket = std::max(2, cores / 2);
  if (g_budget > 0) cfg.poll_budget = g_budget;
  auto rt = engine::BriskRuntime::Create(app->topology_ptr.get(), *plan,
                                         cfg, &numa);
  if (!rt.ok()) std::abort();
  if (!(*rt)->Start().ok()) std::abort();
  const int64_t t0 = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  const uint64_t steady_tuples = app->telemetry->count();
  const int64_t t1 = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
  const engine::RunStats stats = (*rt)->Stop();
  SkewResult res;
  res.sink_tps = static_cast<double>(steady_tuples) /
                 (static_cast<double>(t1 - t0) * 1e-9);
  res.workers = stats.executor.threads;
  res.parks = stats.executor.parks;
  res.wakes = stats.executor.wakes;
  res.steals_intra = stats.executor.steals_intra;
  res.steals_cross = stats.executor.steals_cross;
  res.steal_failures = stats.executor.steal_failures;
  res.repatriations = stats.executor.repatriations;
  return res;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_executor.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      g_budget = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--qcap") == 0 && i + 1 < argc) {
      g_qcap = std::atoi(argv[++i]);
    }
  }
  const double seconds = quick ? 0.4 : 1.5;
  const int cores = HostCores();
  // Replication levels: the gate points (replication = cores, and the
  // first level putting total tasks >= 8x cores) plus, in full mode,
  // the paper-style 1 -> 64 doubling sweep.
  const int r_parity = std::max(1, cores);
  const int r_oversub =
      std::max(r_parity + 1, (8 * cores - 3 + 1) / 2 + 1);
  std::set<int> levels = {1, r_parity, r_oversub};
  if (!quick) {
    for (int r = 2; r <= 64; r *= 2) levels.insert(r);
  }

  bench::Banner("executor",
                "worker-pool vs thread-per-task, word_count replication "
                "sweep on fixed cores");
  std::printf("host cores: %d, run: %.1fs/point, identical capacity-%zu "
              "rings for both executors (equal buffering budget), gates "
              "at r=%d (parity) and r=%d (8x oversubscription)\n",
              cores, seconds, kBoundedQueueBatches, r_parity, r_oversub);

  const std::vector<int> widths = {6, 7, 8, 13, 13, 7, 10, 10};
  auto print_point = [&](int r, const RunResult& tpt,
                         const RunResult& pool, double ratio,
                         double oversub) {
    char rs[16], tasks_s[16], ov[16], tpt_s[32], pool_s[32], ratio_s[16],
        tpt_p99[16], pool_p99[16];
    std::snprintf(rs, sizeof(rs), "%d", r);
    std::snprintf(tasks_s, sizeof(tasks_s), "%d", tpt.tasks);
    std::snprintf(ov, sizeof(ov), "%.1fx", oversub);
    std::snprintf(tpt_s, sizeof(tpt_s), "%.0f", tpt.sink_tps);
    std::snprintf(pool_s, sizeof(pool_s), "%.0f", pool.sink_tps);
    std::snprintf(ratio_s, sizeof(ratio_s), "%.2fx", ratio);
    std::snprintf(tpt_p99, sizeof(tpt_p99), "%.1f", tpt.p99_ms);
    std::snprintf(pool_p99, sizeof(pool_p99), "%.1f", pool.p99_ms);
    bench::PrintRow({rs, tasks_s, ov, tpt_s, pool_s, ratio_s, tpt_p99,
                     pool_p99},
                    widths);
  };
  auto json_point = [](const RunResult& tpt, const RunResult& pool,
                       int r, double ratio, double oversub) {
    bench::JsonObj point;
    point.Add("replication", r)
        .Add("tasks", tpt.tasks)
        .Add("oversubscription", oversub)
        .Add("thread_per_task_tps", tpt.sink_tps)
        .Add("worker_pool_tps", pool.sink_tps)
        .Add("pool_vs_tpt", ratio)
        .Add("thread_per_task_p99_ms", tpt.p99_ms)
        .Add("worker_pool_p99_ms", pool.p99_ms)
        .Add("pool_workers", pool.threads)
        .Add("pool_parks", pool.parks);
    return point;
  };

  bench::PrintRule(widths);
  bench::PrintRow({"r", "tasks", "oversub", "tpt tup/s", "pool tup/s",
                   "ratio", "tpt p99ms", "pool p99ms"},
                  widths);
  bench::PrintRule(widths);

  bench::JsonObj points;
  double parity_ratio = 0.0;
  double oversub_ratio = 0.0;
  for (const int r : levels) {
    const RunResult tpt = RunOnce(ExecutorKind::kThreadPerTask, r, seconds,
                                  kBoundedQueueBatches,
                                  /*equal_rings=*/true);
    const RunResult pool = RunOnce(ExecutorKind::kWorkerPool, r, seconds,
                                   kBoundedQueueBatches,
                                   /*equal_rings=*/true);
    const double ratio =
        tpt.sink_tps > 0.0 ? pool.sink_tps / tpt.sink_tps : 0.0;
    const double oversub =
        static_cast<double>(tpt.tasks) / static_cast<double>(cores);
    if (r == r_parity) parity_ratio = ratio;
    if (r == r_oversub) oversub_ratio = ratio;
    print_point(r, tpt, pool, ratio, oversub);
    points.Add("r" + std::to_string(r), json_point(tpt, pool, r, ratio,
                                                   oversub));
  }
  bench::PrintRule(widths);

  // Secondary, ungated sweep at the engine defaults (deep rings, the
  // pool keeping its in-flight cap): the buffering that lets
  // thread-per-task hide its scheduler waste behind queueing latency
  // and cold inventory. Gate points only.
  const size_t deep_capacity = EngineConfig::Brisk().queue_capacity;
  std::printf("engine defaults (%zu-capacity rings, pool in-flight cap "
              "on; ungated reference):\n",
              deep_capacity);
  bench::PrintRule(widths);
  bench::JsonObj deep_points;
  for (const int r : {r_parity, r_oversub}) {
    const RunResult tpt =
        RunOnce(ExecutorKind::kThreadPerTask, r, seconds, deep_capacity,
                /*equal_rings=*/false);
    const RunResult pool =
        RunOnce(ExecutorKind::kWorkerPool, r, seconds, deep_capacity,
                /*equal_rings=*/false);
    const double ratio =
        tpt.sink_tps > 0.0 ? pool.sink_tps / tpt.sink_tps : 0.0;
    const double oversub =
        static_cast<double>(tpt.tasks) / static_cast<double>(cores);
    print_point(r, tpt, pool, ratio, oversub);
    deep_points.Add("r" + std::to_string(r),
                    json_point(tpt, pool, r, ratio, oversub));
  }
  bench::PrintRule(widths);

  // Skewed-assignment arm (ISSUE 9): every heavy instance on socket 0
  // of an emulated two-socket machine, stealing on vs off. The gate is
  // only meaningful with real parallelism, so it is recorded but not
  // enforced on single-core hosts.
  const bool steal_gate_enforced = cores >= 2;
  std::printf("skewed arm: word_count r=64, heavy ops pinned to socket 0 "
              "of an emulated 2-socket machine, steal on vs off "
              "(%s on this host)\n",
              steal_gate_enforced ? "gated" : "recorded, ungated: <2 cores");
  const SkewResult skew_off = RunSkew(/*steal_on=*/false, seconds);
  const SkewResult skew_on = RunSkew(/*steal_on=*/true, seconds);
  const double steal_ratio =
      skew_off.sink_tps > 0.0 ? skew_on.sink_tps / skew_off.sink_tps : 0.0;
  const std::vector<int> swidths = {7, 13, 8, 7, 7, 7, 7, 7, 7};
  bench::PrintRule(swidths);
  bench::PrintRow({"steal", "tup/s", "workers", "parks", "wakes", "intra",
                   "cross", "fail", "repat"},
                  swidths);
  bench::PrintRule(swidths);
  auto print_skew = [&](const char* label, const SkewResult& r) {
    char tps[32], wk[16], pk[16], wks[16], in[16], cr[16], fl[16], rp[16];
    std::snprintf(tps, sizeof(tps), "%.0f", r.sink_tps);
    std::snprintf(wk, sizeof(wk), "%d", r.workers);
    std::snprintf(pk, sizeof(pk), "%llu", (unsigned long long)r.parks);
    std::snprintf(wks, sizeof(wks), "%llu", (unsigned long long)r.wakes);
    std::snprintf(in, sizeof(in), "%llu",
                  (unsigned long long)r.steals_intra);
    std::snprintf(cr, sizeof(cr), "%llu",
                  (unsigned long long)r.steals_cross);
    std::snprintf(fl, sizeof(fl), "%llu",
                  (unsigned long long)r.steal_failures);
    std::snprintf(rp, sizeof(rp), "%llu",
                  (unsigned long long)r.repatriations);
    bench::PrintRow({label, tps, wk, pk, wks, in, cr, fl, rp}, swidths);
  };
  print_skew("off", skew_off);
  print_skew("on", skew_on);
  bench::PrintRule(swidths);
  const uint64_t steals_total =
      skew_on.steals_intra + skew_on.steals_cross;
  const bool steal_ratio_pass = steal_ratio >= 1.5;
  const bool steal_intra_pass = skew_on.steals_intra > 0;
  const bool steal_cross_minority =
      skew_on.steals_cross * 2 < steals_total || steals_total == 0;
  const bool steal_pass =
      !steal_gate_enforced ||
      (steal_ratio_pass && steal_intra_pass && steal_cross_minority);
  std::printf("steal gate: on/off = %.2f (min 1.50), intra=%llu "
              "cross=%llu (cross must stay a strict minority)%s\n",
              steal_ratio, (unsigned long long)skew_on.steals_intra,
              (unsigned long long)skew_on.steals_cross,
              steal_gate_enforced ? "" : " [not enforced: <2 cores]");

  std::printf("parity gate   (r=%d): pool/tpt = %.2f (min 0.95)\n",
              r_parity, parity_ratio);
  std::printf("oversub gate  (r=%d): pool/tpt = %.2f (min 2.00)\n",
              r_oversub, oversub_ratio);

  const bool parity_pass = parity_ratio >= 0.95;
  const bool oversub_pass = oversub_ratio >= 2.0;

  bench::JsonObj gate_parity;
  gate_parity.Add("replication", r_parity)
      .Add("ratio", parity_ratio)
      .Add("min", 0.95)
      .Add("pass", parity_pass);
  bench::JsonObj gate_oversub;
  gate_oversub.Add("replication", r_oversub)
      .Add("ratio", oversub_ratio)
      .Add("min", 2.0)
      .Add("pass", oversub_pass);
  auto skew_json = [](const SkewResult& r) {
    bench::JsonObj o;
    o.Add("sink_tps", r.sink_tps)
        .Add("workers", r.workers)
        .Add("parks", static_cast<double>(r.parks))
        .Add("wakes", static_cast<double>(r.wakes))
        .Add("steals_intra", static_cast<double>(r.steals_intra))
        .Add("steals_cross", static_cast<double>(r.steals_cross))
        .Add("steal_failures", static_cast<double>(r.steal_failures))
        .Add("repatriations", static_cast<double>(r.repatriations));
    return o;
  };
  bench::JsonObj gate_steal;
  gate_steal.Add("replication", 64)
      .Add("ratio", steal_ratio)
      .Add("min", 1.5)
      .Add("enforced", steal_gate_enforced)
      .Add("pass", steal_pass)
      .Add("steal_off", skew_json(skew_off))
      .Add("steal_on", skew_json(skew_on));
  bench::JsonObj doc;
  doc.Add("bench", "executor")
      .Add("workload",
           "word_count {1,1,r,r,1}, all instances on socket 0, sink "
           "throughput, identical capacity-16 rings for both executors "
           "(pool in-flight cap disabled)")
      .Add("quick", quick)
      .Add("host_cores", cores)
      .Add("seconds_per_point", seconds)
      .Add("bounded_queue_batches", static_cast<int>(kBoundedQueueBatches))
      .Add("points", points)
      .Add("deep_queue_points", deep_points)
      .Add("gate_parity", gate_parity)
      .Add("gate_oversub", gate_oversub)
      .Add("gate_steal", gate_steal);
  if (!bench::WriteJsonFile(out_path, doc)) return 1;
  std::printf("wrote %s\n", out_path.c_str());

  // CI gates: the pool must not regress the well-provisioned case and
  // must decisively win the oversubscribed one.
  if (!parity_pass) {
    std::fprintf(stderr,
                 "FAIL: worker-pool below thread-per-task at replication "
                 "= cores (ratio %.2f < 0.95)\n",
                 parity_ratio);
    return 1;
  }
  if (!oversub_pass) {
    std::fprintf(stderr,
                 "FAIL: worker-pool not >= 2x thread-per-task at 8x "
                 "oversubscription (ratio %.2f < 2.00)\n",
                 oversub_ratio);
    return 1;
  }
  if (!steal_pass) {
    std::fprintf(stderr,
                 "FAIL: skewed arm — steal-on/steal-off = %.2f (min "
                 "1.50), steals_intra=%llu (must be > 0), "
                 "steals_cross=%llu (must be a strict minority)\n",
                 steal_ratio, (unsigned long long)skew_on.steals_intra,
                 (unsigned long long)skew_on.steals_cross);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace brisk

int main(int argc, char** argv) { return brisk::Main(argc, argv); }
