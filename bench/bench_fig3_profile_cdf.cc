// Figure 3 — CDF of profiled per-tuple execution cycles of WC operators.
//
// Runs the profiling harness (§3.1 methodology: upstream operators are
// pre-executed to produce sample inputs, then each operator is timed in
// isolation) and prints per-operator T_e distributions. The paper's
// takeaway — operators show stable behaviour, so the 50th percentile is
// a usable model input — should hold here too.
#include <cstdio>

#include "bench_util.h"
#include "profiler/profiler.h"

using namespace brisk;

int main() {
  bench::Banner("Figure 3", "CDF of profiled execution cycles, WC operators");
  auto app = apps::MakeApp(apps::AppId::kWordCount);
  if (!app.ok()) {
    std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return 1;
  }

  profiler::ProfilerConfig cfg;
  cfg.samples = 20000;
  auto profile = profiler::ProfileApp(app->topology(), cfg);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }

  const std::vector<int> widths = {10, 10, 10, 10, 10, 10, 12};
  bench::PrintRule(widths);
  bench::PrintRow(
      {"operator", "p10", "p25", "p50", "p75", "p90", "samples"}, widths);
  bench::PrintRule(widths);
  for (const auto& [name, m] : profile->measurements) {
    auto cell = [&](double q) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", m.te_cycles.Percentile(q));
      return std::string(buf);
    };
    bench::PrintRow({name, cell(0.10), cell(0.25), cell(0.50), cell(0.75),
                     cell(0.90), std::to_string(m.tuples_processed)},
                    widths);
  }
  bench::PrintRule(widths);

  // Stability check mirroring the paper's takeaway.
  std::printf("\nCDF points (cycles, cumulative fraction), per operator:\n");
  for (const auto& [name, m] : profile->measurements) {
    std::printf("  %s:", name.c_str());
    int printed = 0;
    double last = -1.0;
    for (const auto& [value, frac] : m.te_cycles.Cdf()) {
      if (frac - last < 0.1 && frac < 0.999) continue;  // thin the curve
      std::printf(" (%.0f, %.2f)", value, frac);
      last = frac;
      if (++printed >= 12) break;
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper (Fig. 3): per-operator distributions are tight (stable "
      "behaviour);\n  the 50th percentile is used for model "
      "instantiation. Same conclusion applies.\n");
  return 0;
}
