// Ablation — operator fusion (the Appendix D extension): what greedy
// auto-fusion buys on each application, on both servers.
//
// Fusion trades the communication (and potential RMA) of an edge
// against pipeline parallelism; it should help chains of cheap
// operators (parser->splitter style) and do nothing where edges are
// stateful (fields-grouped) or operators are heavy.
#include <cstdio>

#include "bench_util.h"
#include "optimizer/fusion.h"

using namespace brisk;

int main() {
  bench::Banner("Ablation", "greedy operator fusion (model-valued)");

  const std::vector<int> widths = {10, 6, 14, 14, 10, 10};
  bench::PrintRule(widths);
  bench::PrintRow({"machine", "app", "unfused (K/s)", "fused (K/s)",
                   "gain", "fusions"},
                  widths);
  bench::PrintRule(widths);

  for (const bool server_a : {true, false}) {
    // Four sockets keep the candidate x round x RLAS loop affordable;
    // fusion benefits are placement-structural, not socket-count-bound.
    auto truncated = (server_a ? hw::MachineSpec::ServerA()
                               : hw::MachineSpec::ServerB())
                         .Truncated(4);
    if (!truncated.ok()) return 1;
    const hw::MachineSpec machine = *truncated;
    for (const auto id : apps::kAllApps) {
      auto app = apps::MakeApp(id);
      if (!app.ok()) return 1;
      opt::RlasOptions options;
      options.placement.compress_ratio = 5;
      options.placement.max_seconds = 0.5;
      options.placement.max_nodes = 20000;
      options.max_iterations = 20;
      auto result =
          opt::AutoFuse(app->topology(), app->profiles, machine, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", apps::AppName(id),
                     result.status().ToString().c_str());
        return 1;
      }
      char gain[32];
      std::snprintf(gain, sizeof(gain), "%+.1f%%",
                    100.0 * (result->fused_throughput /
                                 result->baseline_throughput -
                             1.0));
      bench::PrintRow({server_a ? "Server A" : "Server B",
                       apps::AppName(id),
                       bench::Keps(result->baseline_throughput),
                       bench::Keps(result->fused_throughput), gain,
                       std::to_string(result->fusions_applied)},
                      widths);
    }
  }
  bench::PrintRule(widths);
  std::printf(
      "Fusion never regresses (greedy applies only improving steps); "
      "gains concentrate\n  where cheap chains dominate and replica "
      "budget is the binding constraint.\n");
  return 0;
}
