// Ablation — operator fusion (the Appendix D extension): what greedy
// auto-fusion buys on each application, on both servers, split by
// execution mode:
//
//   * unfused           — the RLAS optimum on the original topology;
//   * fused-interpreted — chains execute member Process calls
//     back-to-back in one instance (compiled_te_discount = 1.0);
//   * fused-compiled    — kernel-backed chains lower to a compiled
//     pipeline, priced with the measured compiled:interpreted
//     per-tuple ratio from bench_pipeline.cc
//     (kMeasuredCompiledTeDiscount).
//
// Fusion trades the communication (and potential RMA) of an edge
// against pipeline parallelism; it should help chains of cheap
// operators (parser->splitter style) and do nothing where edges are
// stateful (fields-grouped) or operators are heavy. Compilation makes
// the trade strictly better: the combined T_e shrinks, so chains that
// were break-even interpreted become profitable compiled.
//
// Flags: --out <path> (JSON location, default BENCH_ablation_fusion.json).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "optimizer/fusion.h"

using namespace brisk;

int main(int argc, char** argv) {
  std::string out_path = "BENCH_ablation_fusion.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  bench::Banner("Ablation",
                "greedy operator fusion, interpreted vs compiled "
                "(model-valued)");

  const std::vector<int> widths = {10, 6, 12, 12, 12, 9, 9, 7};
  bench::PrintRule(widths);
  bench::PrintRow({"machine", "app", "unfused", "fused-int", "fused-comp",
                   "gain-int", "gain-comp", "chains"},
                  widths);
  bench::PrintRule(widths);

  bench::JsonObj doc;
  doc.Add("bench", "ablation_fusion");
  bench::JsonObj runs;

  for (const bool server_a : {true, false}) {
    // Four sockets keep the candidate x round x RLAS loop affordable;
    // fusion benefits are placement-structural, not socket-count-bound.
    auto truncated = (server_a ? hw::MachineSpec::ServerA()
                               : hw::MachineSpec::ServerB())
                         .Truncated(4);
    if (!truncated.ok()) return 1;
    const hw::MachineSpec machine = *truncated;
    for (const auto id : apps::kAllApps) {
      auto app = apps::MakeApp(id);
      if (!app.ok()) return 1;
      opt::RlasOptions options;
      options.placement.compress_ratio = 5;
      options.placement.max_seconds = 0.5;
      options.placement.max_nodes = 20000;
      options.max_iterations = 20;

      opt::FusionOptions interpreted;  // compiled_te_discount = 1.0
      opt::FusionOptions compiled;
      compiled.compiled_te_discount = opt::kMeasuredCompiledTeDiscount;

      auto run_int = opt::AutoFuse(app->topology(), app->profiles, machine,
                                   options, interpreted);
      auto run_comp = opt::AutoFuse(app->topology(), app->profiles, machine,
                                    options, compiled);
      if (!run_int.ok() || !run_comp.ok()) {
        std::fprintf(stderr, "%s: %s\n", apps::AppName(id),
                     (run_int.ok() ? run_comp : run_int)
                         .status()
                         .ToString()
                         .c_str());
        return 1;
      }
      const double base = run_int->baseline_throughput;
      char gain_int[32], gain_comp[32];
      std::snprintf(gain_int, sizeof(gain_int), "%+.1f%%",
                    100.0 * (run_int->fused_throughput / base - 1.0));
      std::snprintf(gain_comp, sizeof(gain_comp), "%+.1f%%",
                    100.0 * (run_comp->fused_throughput / base - 1.0));
      bench::PrintRow({server_a ? "Server A" : "Server B",
                       apps::AppName(id), bench::Keps(base),
                       bench::Keps(run_int->fused_throughput),
                       bench::Keps(run_comp->fused_throughput), gain_int,
                       gain_comp, std::to_string(run_comp->compiled_chains)},
                      widths);

      bench::JsonObj entry;
      entry.Add("unfused_tps", base)
          .Add("fused_interpreted_tps", run_int->fused_throughput)
          .Add("fused_compiled_tps", run_comp->fused_throughput)
          .Add("fusions_interpreted", run_int->fusions_applied)
          .Add("fusions_compiled", run_comp->fusions_applied)
          .Add("compiled_chains", run_comp->compiled_chains);
      runs.Add(std::string(server_a ? "serverA_" : "serverB_") +
                   apps::AppName(id),
               entry);
    }
  }
  bench::PrintRule(widths);
  std::printf(
      "Fusion never regresses (greedy applies only improving steps); "
      "compiling a chain\n  shrinks its combined T_e (x%.2f measured), so "
      "kernel-backed chains fuse more\n  aggressively and gain more.\n",
      opt::kMeasuredCompiledTeDiscount);

  doc.Add("compiled_te_discount", opt::kMeasuredCompiledTeDiscount);
  doc.Add("runs", runs);
  bench::WriteJsonFile(out_path, doc);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
