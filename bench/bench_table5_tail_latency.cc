// Table 5 — 99th-percentile end-to-end latency (ms) of all apps across
// the three systems.
//
// Paper: Brisk 21.9 / 12.5 / 13.5 / 204.8 ms for WC/FD/SD/LR; Storm is
// three orders of magnitude worse, Flink one to two.
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

int main() {
  bench::Banner("Table 5", "99th percentile end-to-end latency (ms)");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();

  const std::vector<int> widths = {6, 14, 14, 14};
  bench::PrintRule(widths);
  bench::PrintRow({"", "BriskStream", "Storm", "Flink"}, widths);
  bench::PrintRule(widths);

  const apps::SystemKind kinds[] = {apps::SystemKind::kBrisk,
                                    apps::SystemKind::kStormLike,
                                    apps::SystemKind::kFlinkLike};
  for (const auto app : apps::kAllApps) {
    std::vector<std::string> row = {apps::AppName(app)};
    for (const auto kind : kinds) {
      auto run = bench::RunSystem(app, machine, kind);
      if (!run.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", apps::AppName(app),
                     apps::SystemName(kind),
                     run.status().ToString().c_str());
        return 1;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f",
                    run->sim.latency_ns.Percentile(0.99) / 1e6);
      row.push_back(buf);
    }
    bench::PrintRow(row, widths);
  }
  bench::PrintRule(widths);
  std::printf(
      "Paper (Table 5): Brisk 21.9/12.5/13.5/204.8; Storm "
      "37881/14950/12734/16748;\n  Flink 5689/261/351/4886 — Brisk lowest "
      "by a wide margin on every app.\n");
  return 0;
}
