// Ablation — how much each B&B ingredient (§4's heuristics, the
// bounding function, Appendix D's first-fit seeding) contributes to
// search efficiency, on a fixed WC replication.
//
// Not a paper figure; this regenerates the *reasoning* behind §4's
// heuristic design and Appendix D's discussion.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "optimizer/placement_bb.h"

using namespace brisk;

int main() {
  bench::Banner("Ablation", "B&B heuristics, WC {2,2,10,20,4} on Server A");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();
  auto app = apps::MakeApp(apps::AppId::kWordCount);
  if (!app.ok()) return 1;
  auto plan =
      model::ExecutionPlan::Create(app->topology_ptr.get(), {2, 2, 10, 20, 4});
  if (!plan.ok()) return 1;
  model::PerfModel model(&machine, &app->profiles);

  struct Config {
    const char* label;
    opt::PlacementOptions opts;
  };
  opt::PlacementOptions base;
  base.compress_ratio = 2;
  base.max_seconds = 10.0;
  base.max_nodes = 200000;

  std::vector<Config> configs;
  configs.push_back({"full RLAS search", base});
  {
    auto o = base;
    o.use_best_fit = false;
    configs.push_back({"- best-fit", o});
  }
  {
    auto o = base;
    o.use_redundancy_elimination = false;
    configs.push_back({"- redundancy elim", o});
  }
  {
    auto o = base;
    o.use_best_fit = false;
    o.use_pruning = false;
    configs.push_back({"- best-fit & pruning", o});
  }
  {
    auto o = base;
    o.seed_with_first_fit = true;
    configs.push_back({"+ first-fit seed", o});
  }
  {
    auto o = base;
    o.compress_ratio = 1;
    configs.push_back({"compress r=1", o});
  }

  const std::vector<int> widths = {22, 10, 10, 12, 14, 10};
  bench::PrintRule(widths);
  bench::PrintRow({"configuration", "nodes", "pruned", "runtime(ms)",
                   "tput (K/s)", "complete"},
                  widths);
  bench::PrintRule(widths);
  for (const auto& cfg : configs) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = opt::OptimizePlacement(model, *plan, cfg.opts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!r.ok()) {
      bench::PrintRow({cfg.label, "-", "-", "-", r.status().ToString(), "-"},
                      widths);
      continue;
    }
    char ms_buf[32];
    std::snprintf(ms_buf, sizeof(ms_buf), "%.1f", ms);
    bench::PrintRow({cfg.label, std::to_string(r->nodes_explored),
                     std::to_string(r->nodes_pruned), ms_buf,
                     bench::Keps(r->model.throughput),
                     r->search_complete ? "yes" : "no"},
                    widths);
  }
  bench::PrintRule(widths);
  std::printf(
      "Expectation: removing best-fit or pruning inflates nodes by "
      "orders of magnitude\n  at equal-or-worse plan quality; the "
      "first-fit seed trims nodes further; r=1\n  explores the most "
      "nodes for (at best) marginal quality gain — §4's rationale.\n");
  return 0;
}
