// Table 7 — Optimization runtime vs compression ratio r (WC, Server A).
//
// r trades optimization granularity against search-space size
// (heuristic 3, §4): r=1 is the finest (slowest); very large r groups
// too coarsely and can cost throughput or fail placement.
//
// Paper: r=5 is the sweet spot (highest throughput, lowest runtime);
// r=1/3 run much longer; r=10/15 lose throughput.
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

int main() {
  bench::Banner("Table 7", "compression ratio r: throughput vs runtime, WC");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();

  const std::vector<int> widths = {4, 14, 14, 14};
  bench::PrintRule(widths);
  bench::PrintRow({"r", "tput (K/s)", "runtime (s)", "B&B nodes"}, widths);
  bench::PrintRule(widths);

  for (const int r : {1, 3, 5, 10, 15}) {
    auto optimized = bench::OptimizeApp(apps::AppId::kWordCount, machine, r);
    if (!optimized.ok()) {
      bench::PrintRow({std::to_string(r), "-", "-",
                       optimized.status().ToString()},
                      widths);
      continue;
    }
    char runtime[32];
    std::snprintf(runtime, sizeof(runtime), "%.3f",
                  optimized->rlas.optimize_seconds);
    bench::PrintRow({std::to_string(r),
                     bench::Keps(optimized->rlas.model.throughput), runtime,
                     std::to_string(optimized->rlas.nodes_explored)},
                    widths);
  }
  bench::PrintRule(widths);
  std::printf(
      "Paper (Table 7): r=1: 10140 K/s @93.4 s; r=3: 10080 @48.3; r=5: "
      "96391 @23.0;\n  r=10: 84956 @46.5; r=15: 77774 @45.3 — moderate "
      "compression is both faster and\n  better; too-coarse grouping "
      "loses throughput.\n");
  return 0;
}
