// Table 4 — Model accuracy evaluation of all applications.
//
// Paper: on Server A with all 8 sockets, the analytical model's
// estimated throughput is within 2–14% of the measured throughput
// (WC 0.08, FD 0.14, SD 0.02, LR 0.06).
//
// Here "measured" is the discrete-event simulation of the RLAS plan
// (the hardware substitution, DESIGN.md §1) and "estimated" the
// performance model — the same two quantities the paper compares.
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

int main() {
  bench::Banner("Table 4", "model accuracy (measured vs estimated), Server A");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();

  const std::vector<int> widths = {14, 12, 12, 12, 12};
  bench::PrintRule(widths);
  bench::PrintRow({"K events/s", "WC", "FD", "SD", "LR"}, widths);
  bench::PrintRule(widths);

  std::vector<std::string> measured_row = {"Measured"};
  std::vector<std::string> estimated_row = {"Estimated"};
  std::vector<std::string> error_row = {"Rel. error"};

  for (const auto app : apps::kAllApps) {
    auto optimized = bench::OptimizeApp(app, machine);
    if (!optimized.ok()) {
      std::fprintf(stderr, "%s: %s\n", apps::AppName(app),
                   optimized.status().ToString().c_str());
      return 1;
    }
    const double estimated = optimized->rlas.model.throughput;
    auto measured = bench::MeasuredThroughput(
        machine, optimized->profiles, optimized->rlas.plan);
    if (!measured.ok()) {
      std::fprintf(stderr, "%s: %s\n", apps::AppName(app),
                   measured.status().ToString().c_str());
      return 1;
    }
    const double rel_error = std::abs(*measured - estimated) / *measured;
    measured_row.push_back(bench::Keps(*measured));
    estimated_row.push_back(bench::Keps(estimated));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", rel_error);
    error_row.push_back(buf);
  }

  bench::PrintRow(measured_row, widths);
  bench::PrintRow(estimated_row, widths);
  bench::PrintRow(error_row, widths);
  bench::PrintRule(widths);
  std::printf(
      "Paper (Table 4): WC 96390.8/104843.3 (0.08), FD 7172.5/8193.9 "
      "(0.14),\n  SD 12767.6/12530.2 (0.02), LR 8738.3/9298.7 (0.06) — "
      "same shape: estimate tracks measurement within a few percent.\n");
  return 0;
}
