// Live-migration pause cost: how long does BriskRuntime::ApplyMigration
// stall the pipeline? The protocol is pause-and-migrate (quiesce at a
// batch boundary, residual sweep, rebuild, resume), so the pause is
// the price of zero tuple loss — this bench measures it end-to-end on
// a live word_count under each executor, for pure moves, replication
// growth (keyed-state re-partitioning included), and shrinkage.
//
//   $ ./bench/bench_migration [--out BENCH_migration.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/word_count.h"
#include "bench_util.h"
#include "common/logging.h"
#include "engine/runtime.h"
#include "model/execution_plan.h"
#include "optimizer/dynamic.h"

using namespace brisk;

namespace {

constexpr int kSpout = 0;
constexpr int kSplitter = 2;
constexpr int kCounter = 3;

struct PauseStats {
  double mean_ms = 0.0;
  double max_ms = 0.0;
  int migrations = 0;
  bool conserved = false;
};

double Ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Runs WC under `executor`, applies `rounds` alternating migrations
/// (move splitter, grow counter, shrink counter), and reports the
/// ApplyMigration wall time plus the end-of-run conservation audit.
PauseStats MeasurePauses(engine::ExecutorKind executor, int rounds) {
  auto telemetry = std::make_shared<SinkTelemetry>();
  apps::WordCountParams params;
  auto topo_or = apps::BuildWordCountDsl(telemetry, params);
  BRISK_CHECK(topo_or.ok()) << topo_or.status().ToString();
  const api::Topology topo = std::move(topo_or).value();
  auto plan_or = model::ExecutionPlan::Create(&topo, {1, 1, 2, 2, 1});
  BRISK_CHECK(plan_or.ok()) << plan_or.status().ToString();
  model::ExecutionPlan plan = std::move(plan_or).value();
  for (int i = 0; i < plan.num_instances(); ++i) plan.SetSocket(i, i % 2);

  engine::EngineConfig config;
  config.executor = executor;
  config.spout_rate_tps = 50000;
  config.seed = 0xbe9c;
  auto rt_or = engine::BriskRuntime::Create(&topo, plan, config);
  BRISK_CHECK(rt_or.ok()) << rt_or.status().ToString();
  auto rt = std::move(rt_or).value();
  BRISK_CHECK(rt->Start().ok());

  PauseStats out;
  std::vector<double> pauses_ms;
  for (int round = 0; round < rounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const model::ExecutionPlan& current = rt->plan();
    opt::MigrationPlan m;
    switch (round % 3) {
      case 0: {  // move one splitter replica to the other socket
        const int inst = current.InstanceId(kSplitter, 0);
        m.steps.push_back({opt::MigrationStep::kMove, kSplitter, 0,
                           current.SocketOf(inst),
                           1 - current.SocketOf(inst)});
        break;
      }
      case 1:  // grow the stateful counter (re-partitions keyed state)
        m.steps.push_back({opt::MigrationStep::kStart, kCounter,
                           current.replication(kCounter), -1, 1});
        break;
      default:  // shrink it back (merges keyed state)
        m.steps.push_back({opt::MigrationStep::kStop, kCounter,
                           current.replication(kCounter) - 1,
                           current.SocketOf(current.InstanceId(
                               kCounter, current.replication(kCounter) - 1)),
                           -1});
        break;
    }
    const auto t0 = std::chrono::steady_clock::now();
    BRISK_CHECK_OK(rt->ApplyMigration(m));
    pauses_ms.push_back(Ms(std::chrono::steady_clock::now() - t0));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const engine::RunStats stats = rt->Stop();

  out.migrations = stats.migrations;
  for (const double p : pauses_ms) {
    out.mean_ms += p;
    out.max_ms = std::max(out.max_ms, p);
  }
  if (!pauses_ms.empty()) out.mean_ms /= pauses_ms.size();
  const auto& ot = stats.op_totals;
  out.conserved = ot.size() == 5 && ot[1].tuples_in == ot[kSpout].tuples_out &&
                  ot[kSplitter].tuples_in == ot[1].tuples_out &&
                  ot[kCounter].tuples_in == ot[kSplitter].tuples_out &&
                  ot[4].tuples_in == ot[kCounter].tuples_out &&
                  telemetry->count() == ot[4].tuples_in;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_migration.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  bench::Banner("migration",
                "live pause-and-migrate cost (quiesce -> rebuild -> resume)");

  constexpr int kRounds = 15;
  const PauseStats pool =
      MeasurePauses(engine::ExecutorKind::kWorkerPool, kRounds);
  const PauseStats tpt =
      MeasurePauses(engine::ExecutorKind::kThreadPerTask, kRounds);

  bench::PrintRule({18, 12, 12, 12, 12});
  bench::PrintRow({"executor", "migrations", "mean ms", "max ms", "exact"},
                  {18, 12, 12, 12, 12});
  bench::PrintRule({18, 12, 12, 12, 12});
  auto row = [](const char* name, const PauseStats& s) {
    bench::PrintRow({name, std::to_string(s.migrations),
                     std::to_string(s.mean_ms), std::to_string(s.max_ms),
                     s.conserved ? "yes" : "NO"},
                    {18, 12, 12, 12, 12});
  };
  row("worker-pool", pool);
  row("thread-per-task", tpt);
  bench::PrintRule({18, 12, 12, 12, 12});

  bench::JsonObj pool_json, tpt_json, root;
  pool_json.Add("migrations", pool.migrations)
      .Add("pause_mean_ms", pool.mean_ms)
      .Add("pause_max_ms", pool.max_ms)
      .Add("tuples_conserved", pool.conserved);
  tpt_json.Add("migrations", tpt.migrations)
      .Add("pause_mean_ms", tpt.mean_ms)
      .Add("pause_max_ms", tpt.max_ms)
      .Add("tuples_conserved", tpt.conserved);
  root.Add("experiment", "migration")
      .Add("rounds", kRounds)
      .Add("worker_pool", pool_json)
      .Add("thread_per_task", tpt_json);
  bench::WriteJsonFile(out_path, root);

  // Zero-loss is the bench's gate too: a migration that drops tuples
  // is not a faster migration.
  return (pool.conserved && tpt.conserved) ? 0 : 1;
}
