#include "bench_util.h"

#include <cstdio>

#include "optimizer/fusion.h"

namespace brisk::bench {

StatusOr<OptimizedApp> OptimizeApp(apps::AppId app,
                                   const hw::MachineSpec& machine,
                                   int compress_ratio,
                                   apps::SystemKind system) {
  OptimizedApp out;
  BRISK_ASSIGN_OR_RETURN(out.bundle, apps::MakeApp(app));
  BRISK_ASSIGN_OR_RETURN(out.profiles, apps::ProfilesFor(app, system));
  opt::RlasOptions options;
  options.placement.compress_ratio = compress_ratio;
  opt::RlasOptimizer optimizer(&machine, &out.profiles, options);
  BRISK_ASSIGN_OR_RETURN(out.rlas, optimizer.Optimize(out.bundle.topology()));
  return out;
}

sim::SimConfig DefaultSimConfig() {
  sim::SimConfig cfg;
  cfg.duration_s = 0.06;
  cfg.warmup_s = 0.015;
  return cfg;
}

StatusOr<sim::SimResult> MeasureSim(const hw::MachineSpec& machine,
                                    const model::ProfileSet& profiles,
                                    const model::ExecutionPlan& plan) {
  return sim::Simulate(machine, profiles, plan, DefaultSimConfig());
}

StatusOr<double> MeasuredThroughput(const hw::MachineSpec& machine,
                                    const model::ProfileSet& profiles,
                                    const model::ExecutionPlan& plan) {
  BRISK_ASSIGN_OR_RETURN(sim::SimResult r,
                         MeasureSim(machine, profiles, plan));
  return r.throughput_tps;
}

StatusOr<SystemRun> RunSystem(apps::AppId app, const hw::MachineSpec& machine,
                              apps::SystemKind system) {
  SystemRun out;
  out.system = system;
  BRISK_ASSIGN_OR_RETURN(apps::AppBundle bundle, apps::MakeApp(app));
  BRISK_ASSIGN_OR_RETURN(out.profiles, apps::ProfilesFor(app, system));

  sim::SimConfig cfg = DefaultSimConfig();
  if (system == apps::SystemKind::kBrisk) {
    opt::RlasOptions options;
    options.placement.compress_ratio = 5;
    opt::RlasOptimizer optimizer(&machine, &out.profiles, options);
    BRISK_ASSIGN_OR_RETURN(opt::RlasResult r,
                           optimizer.Optimize(bundle.topology()));
    out.plan = r.plan;
  } else {
    // Legacy systems scale without NUMA knowledge (fix(U): T_f
    // ignored) and place obliviously: Storm leaves threads to the OS;
    // Flink's NUMA-aware config (one task manager per socket, §6.3)
    // behaves like round-robin across sockets.
    opt::RlasOptions options;
    options.placement.compress_ratio = 5;
    BRISK_ASSIGN_OR_RETURN(
        opt::RlasResult scaled,
        opt::OptimizeRlasFixed(machine, out.profiles, bundle.topology(),
                               model::FetchCostMode::kAlwaysLocal, options));
    if (system == apps::SystemKind::kFlinkLike) {
      BRISK_ASSIGN_OR_RETURN(out.plan,
                             opt::PlaceRoundRobin(machine, scaled.plan));
    } else {
      BRISK_ASSIGN_OR_RETURN(out.plan,
                             opt::PlaceOsDefault(machine, scaled.plan));
    }
    // Smaller transfer batches than jumbo tuples (§5.2) but far deeper
    // buffering (executor queues, network stacks) — the queueing that
    // drives the paper's Fig. 7 / Table 5 latency gap.
    cfg.batch_size = system == apps::SystemKind::kStormLike ? 8 : 16;
    cfg.queue_capacity_batches =
        system == apps::SystemKind::kStormLike ? 4096 : 1024;
  }
  BRISK_ASSIGN_OR_RETURN(out.sim,
                         sim::Simulate(machine, out.profiles, out.plan, cfg));
  out.topology_keepalive = bundle.topology_ptr;
  return out;
}

StatusOr<SystemRun> RunBriskCompiled(apps::AppId app,
                                     const hw::MachineSpec& machine) {
  SystemRun out;
  out.system = apps::SystemKind::kBrisk;
  BRISK_ASSIGN_OR_RETURN(apps::AppBundle bundle, apps::MakeApp(app));
  BRISK_ASSIGN_OR_RETURN(
      model::ProfileSet base_profiles,
      apps::ProfilesFor(app, apps::SystemKind::kBrisk));
  // Same bounded RLAS settings the fusion ablation uses: AutoFuse runs
  // one RLAS pass per candidate per round, so the inner loops must stay
  // short for the harness to finish in minutes.
  opt::RlasOptions options;
  options.placement.compress_ratio = 5;
  options.placement.max_seconds = 0.5;
  options.placement.max_nodes = 20000;
  options.max_iterations = 20;
  opt::FusionOptions fusion;
  fusion.compiled_te_discount = opt::kMeasuredCompiledTeDiscount;
  BRISK_ASSIGN_OR_RETURN(
      opt::AutoFuseResult fused,
      opt::AutoFuse(bundle.topology(), base_profiles, machine, options,
                    fusion));
  out.profiles = fused.profiles;
  // Final plan under the same (unbounded) RLAS settings RunSystem's
  // Brisk arm uses — the bounded options above only steer the
  // candidate search, and a weaker final pass would make the compiled
  // row an optimizer-budget comparison instead of a fusion one.
  opt::RlasOptions final_options;
  final_options.placement.compress_ratio = 5;
  opt::RlasOptimizer optimizer(&machine, &out.profiles, final_options);
  BRISK_ASSIGN_OR_RETURN(opt::RlasResult r,
                         optimizer.Optimize(*fused.topology));
  out.plan = r.plan;
  BRISK_ASSIGN_OR_RETURN(
      out.sim, sim::Simulate(machine, out.profiles, out.plan,
                             DefaultSimConfig()));
  out.topology_keepalive = fused.topology;
  return out;
}

std::string Keps(double tuples_per_sec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", tuples_per_sec / 1e3);
  return buf;
}

void PrintRule(const std::vector<int>& widths) {
  std::string line;
  for (const int w : widths) {
    line += "+";
    line.append(static_cast<size_t>(w) + 2, '-');
  }
  line += "+";
  std::printf("%s\n", line.c_str());
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  std::string line;
  for (size_t i = 0; i < widths.size(); ++i) {
    const std::string cell = i < cells.size() ? cells[i] : "";
    char buf[256];
    std::snprintf(buf, sizeof(buf), "| %*s ", widths[i], cell.c_str());
    line += buf;
  }
  line += "|";
  std::printf("%s\n", line.c_str());
}

void Banner(const std::string& experiment, const std::string& what) {
  std::printf("\n=== %s — %s ===\n", experiment.c_str(), what.c_str());
}

namespace {
std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}
}  // namespace

JsonObj& JsonObj::AddRaw(const std::string& key, std::string raw) {
  items_.push_back({key, std::move(raw), nullptr});
  return *this;
}

JsonObj& JsonObj::Add(const std::string& key, const std::string& v) {
  return AddRaw(key, JsonQuote(v));
}

JsonObj& JsonObj::Add(const std::string& key, const char* v) {
  return AddRaw(key, JsonQuote(v));
}

JsonObj& JsonObj::Add(const std::string& key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return AddRaw(key, buf);
}

JsonObj& JsonObj::Add(const std::string& key, uint64_t v) {
  return AddRaw(key, std::to_string(v));
}

JsonObj& JsonObj::Add(const std::string& key, int v) {
  return AddRaw(key, std::to_string(v));
}

JsonObj& JsonObj::Add(const std::string& key, bool v) {
  return AddRaw(key, v ? "true" : "false");
}

JsonObj& JsonObj::Add(const std::string& key, const JsonObj& v) {
  items_.push_back({key, "", std::make_shared<JsonObj>(v)});
  return *this;
}

std::string JsonObj::Str(int indent) const {
  const std::string pad(static_cast<size_t>(indent + 1) * 2, ' ');
  const std::string close_pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = "{";
  for (size_t i = 0; i < items_.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += pad + JsonQuote(items_[i].key) + ": ";
    out += items_[i].obj ? items_[i].obj->Str(indent + 1) : items_[i].raw;
  }
  out += "\n" + close_pad + "}";
  return out;
}

bool WriteJsonFile(const std::string& path, const JsonObj& obj) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = obj.Str();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
  return ok;
}

}  // namespace brisk::bench
