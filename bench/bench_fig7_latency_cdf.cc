// Figure 7 — CDF of end-to-end processing latency of WC across DSPSs.
//
// Paper: BriskStream's latency distribution sits orders of magnitude
// left of Storm's and well left of Flink's (Fig. 7; Table 5 quantifies
// the 99th percentiles). End-to-end latency = time from event entering
// the system until its result leaves (the definition of [24], §6.3).
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

int main() {
  bench::Banner("Figure 7", "end-to-end latency CDF of WC, Server A");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();

  const apps::SystemKind kinds[] = {apps::SystemKind::kBrisk,
                                    apps::SystemKind::kFlinkLike,
                                    apps::SystemKind::kStormLike};
  for (const auto kind : kinds) {
    auto run = bench::RunSystem(apps::AppId::kWordCount, machine, kind);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", apps::SystemName(kind),
                   run.status().ToString().c_str());
      return 1;
    }
    const Histogram& h = run->sim.latency_ns;
    std::printf("\n%s: median %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
                apps::SystemName(kind), h.Percentile(0.5) / 1e6,
                h.Percentile(0.95) / 1e6, h.Percentile(0.99) / 1e6);
    std::printf("  CDF (latency ms, cumulative): ");
    double last = -1.0;
    int printed = 0;
    for (const auto& [ns, frac] : h.Cdf()) {
      if (frac - last < 0.12 && frac < 0.999) continue;
      std::printf("(%.3f, %.2f) ", ns / 1e6, frac);
      last = frac;
      if (++printed >= 10) break;
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper (Fig. 7): Brisk's WC CDF is fully left of Flink's, which "
      "is left of\n  Storm's — the same ordering must hold above "
      "(Brisk < Flink < Storm).\n");
  return 0;
}
