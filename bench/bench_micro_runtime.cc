// Micro-benchmarks (google-benchmark) of the runtime primitives whose
// costs the paper's §5 design decisions hinge on: SPSC queue transfer,
// tuple (de)serialization, jumbo vs per-tuple queue insertion, hashing,
// and the NUMA-stall emulator's spin accuracy.
#include <benchmark/benchmark.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/spsc_queue.h"
#include "common/tuple.h"
#include "engine/channel.h"
#include "hardware/numa_emulator.h"

namespace brisk {
namespace {

Tuple MakeWordTuple() {
  Tuple t;
  t.fields.emplace_back(std::string("streaming"));
  t.fields.emplace_back(int64_t{42});
  return t;
}

void BM_SpscQueuePushPop(benchmark::State& state) {
  SpscQueue<int64_t> q(1024);
  int64_t v = 0;
  for (auto _ : state) {
    q.TryPush(v + 1);
    int64_t out = 0;
    q.TryPop(&out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SpscQueuePushPop);

void BM_SerializeTuple(benchmark::State& state) {
  const Tuple t = MakeWordTuple();
  std::vector<uint8_t> buf;
  for (auto _ : state) {
    buf.clear();
    SerializeTuple(t, &buf);
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_SerializeTuple);

void BM_SerializeDeserializeRoundTrip(benchmark::State& state) {
  const Tuple t = MakeWordTuple();
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    SerializeTuple(t, &buf);
    size_t off = 0;
    auto decoded = DeserializeTuple(buf, &off);
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_SerializeDeserializeRoundTrip);

/// Jumbo-tuple amortization (§5.2): queue cost per tuple at different
/// batch sizes. Larger batches should approach the per-tuple floor.
void BM_BatchedTransferPerTuple(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  SpscQueue<engine::Envelope> q(256);
  const Tuple t = MakeWordTuple();
  for (auto _ : state) {
    auto jumbo = std::make_unique<JumboTuple>();
    for (int i = 0; i < batch; ++i) jumbo->tuples.push_back(t);
    engine::Envelope env;
    env.count = static_cast<uint32_t>(batch);
    env.batch = std::move(jumbo);
    while (!q.TryPush(std::move(env))) {
    }
    engine::Envelope out;
    q.TryPop(&out);
    benchmark::DoNotOptimize(out.count);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedTransferPerTuple)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_HashField(benchmark::State& state) {
  const Field f = std::string("brontosaurus");
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashField(f));
  }
}
BENCHMARK(BM_HashField);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  Rng rng(3);
  for (auto _ : state) {
    h.Add(static_cast<double>(rng.NextBounded(100000)));
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramAdd);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextZipf(4096, 0.6));
  }
}
BENCHMARK(BM_ZipfSample);

/// The emulator's busy-wait should cost close to the requested stall.
void BM_NumaSpin500ns(benchmark::State& state) {
  for (auto _ : state) {
    hw::SpinForNs(500);
  }
}
BENCHMARK(BM_NumaSpin500ns);

}  // namespace
}  // namespace brisk

BENCHMARK_MAIN();
