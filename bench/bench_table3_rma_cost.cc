// Table 3 — Average processing time per tuple (T) under varying NUMA
// distance, measured vs estimated, for WC's Splitter and Counter.
//
// Methodology mirrors §6.1: the operator is placed on socket S_x while
// its producer stays on S0; the operator's per-tuple round-trip time is
// measured (here: simulated busy time / tuples, with the simulator's
// hardware-prefetch adjustment standing in for real prefetch effects)
// and compared against the model's T = T_e + ceil(N/S) * L(i,j).
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

namespace {

struct MicroOp {
  const char* name;
  double te_cycles;        // consumer T_e (Server A calibration)
  double input_bytes;      // producer output tuple size N
};

/// Builds src -> target micro chain and returns simulated per-tuple ns
/// of the target when placed on `socket` (producer on S0).
StatusOr<double> MeasurePerTupleNs(const hw::MachineSpec& machine,
                                   const MicroOp& op, int socket) {
  api::TopologyBuilder b("micro");
  b.AddSpout("src", [] { return std::unique_ptr<api::Spout>(); });
  b.AddBolt("target", [] { return std::unique_ptr<api::Operator>(); })
      .ShuffleFrom("src");
  BRISK_ASSIGN_OR_RETURN(api::Topology topo, std::move(b).Build());

  model::ProfileSet prof;
  prof.Set("src", model::OperatorProfile::Simple(/*te=*/120, 64,
                                                 op.input_bytes));
  prof.Set("target", model::OperatorProfile::Simple(op.te_cycles, 64, 16));

  BRISK_ASSIGN_OR_RETURN(model::ExecutionPlan plan,
                         model::ExecutionPlan::Create(&topo, {1, 1}));
  plan.SetSocket(0, 0);
  plan.SetSocket(1, socket);

  sim::SimConfig cfg;
  cfg.duration_s = 0.05;
  cfg.warmup_s = 0.01;
  BRISK_ASSIGN_OR_RETURN(sim::SimResult r,
                         sim::Simulate(machine, prof, plan, cfg));
  if (r.instances[1].tuples_in == 0) {
    return Status::Internal("no tuples reached the target");
  }
  return r.instances[1].busy_ns /
         static_cast<double>(r.instances[1].tuples_in);
}

}  // namespace

int main() {
  bench::Banner("Table 3",
                "per-tuple time T vs NUMA distance (measured/estimated), "
                "Server A");
  const hw::MachineSpec machine = hw::MachineSpec::ServerA();

  // T_e calibrated from the paper's local rows (1.2 GHz): Splitter
  // 1612.8 ns, Counter 612.3 ns. Splitter fetches whole sentences
  // (~2 cache lines); Counter fetches single words (1 line).
  const MicroOp kOps[] = {
      {"Splitter", 1935.4, 80.0},
      {"Counter", 734.8, 16.0},
  };
  const int kTargets[] = {0, 1, 3, 4, 7};

  for (const auto& op : kOps) {
    std::printf("\n%s (ns/tuple):\n", op.name);
    const std::vector<int> widths = {10, 12, 12};
    bench::PrintRule(widths);
    bench::PrintRow({"from-to", "measured", "estimated"}, widths);
    bench::PrintRule(widths);
    for (const int s : kTargets) {
      auto measured = MeasurePerTupleNs(machine, op, s);
      if (!measured.ok()) {
        std::fprintf(stderr, "%s\n", measured.status().ToString().c_str());
        return 1;
      }
      const double estimated =
          machine.CyclesToNs(op.te_cycles) +
          machine.FetchCostNs(0, s, op.input_bytes);
      char row[32], mcell[32], ecell[32];
      std::snprintf(row, sizeof(row), s == 0 ? "S0-S0" : "S0-S%d", s);
      std::snprintf(mcell, sizeof(mcell), "%.1f", *measured);
      std::snprintf(ecell, sizeof(ecell), "%.1f", estimated);
      bench::PrintRow({row, mcell, ecell}, widths);
    }
    bench::PrintRule(widths);
  }
  std::printf(
      "\nPaper (Table 3): Splitter 1612.8 -> 2371.3 measured vs 1612.8 -> "
      "3196.4 estimated\n  (estimate above measurement for large tuples: "
      "prefetching); Counter 612.3 -> 870.2\n  vs 612.3 -> 888.4 (tight for "
      "single-line tuples). Expect the same pattern: a\n  non-linear jump "
      "from intra-tray (S1, S3) to inter-tray (S4, S7), estimates\n  above "
      "measurements for the multi-line Splitter input.\n");
  return 0;
}
