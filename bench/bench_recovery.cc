// Fault-tolerance cost: what does a checkpoint pause, and how long is
// the crash→running-again window?
//
//   - Checkpoint pause vs interval: a supervised word_count runs with
//     periodic snapshots; the pause is the same quiesce a migration
//     pays (stop at a batch boundary, drain, sweep), plus the state
//     copy. Reported per checkpoint interval, per executor.
//   - Recovery latency: a counter replica is crashed mid-run; the
//     watchdog detects it, restores the last checkpoint, rewinds the
//     source, and the job finishes its bounded stream. Reported as
//     detect-to-restored latency, the replayed (duplicate) window,
//     and the post-recovery sink throughput.
//
// Zero-loss is the gate: every run must end with gap-free per-word
// counts whose maxima sum to the exact stream population, or the
// bench exits nonzero.
//
//   $ ./bench/bench_recovery [--quick] [--out BENCH_recovery.json]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/word_count.h"
#include "bench_util.h"
#include "common/logging.h"
#include "engine/runtime.h"
#include "engine/supervisor.h"
#include "model/execution_plan.h"

using namespace brisk;

namespace {

constexpr int kCounter = 3;

struct TapLog {
  std::mutex mu;
  std::vector<std::pair<std::string, int64_t>> entries;
};

struct Rig {
  std::shared_ptr<SinkTelemetry> telemetry;
  std::shared_ptr<TapLog> tap;
  std::shared_ptr<const api::Topology> topo;
  std::unique_ptr<engine::BriskRuntime> rt;
};

Rig MakeRig(engine::EngineConfig config, apps::WordCountParams params) {
  Rig rig;
  rig.telemetry = std::make_shared<SinkTelemetry>();
  rig.tap = std::make_shared<TapLog>();
  auto tap = rig.tap;
  auto topo_or = apps::BuildWordCountDsl(
      rig.telemetry, params, [tap](const Tuple& in) {
        std::lock_guard<std::mutex> lock(tap->mu);
        tap->entries.emplace_back(std::string(in.GetString(0)), in.GetInt(1));
      });
  BRISK_CHECK(topo_or.ok()) << topo_or.status().ToString();
  rig.topo =
      std::make_shared<const api::Topology>(std::move(topo_or).value());
  auto plan_or = model::ExecutionPlan::Create(rig.topo.get(), {1, 1, 2, 2, 1});
  BRISK_CHECK(plan_or.ok()) << plan_or.status().ToString();
  model::ExecutionPlan plan = std::move(plan_or).value();
  for (int i = 0; i < plan.num_instances(); ++i) plan.SetSocket(i, i % 2);
  auto rt_or = engine::BriskRuntime::Create(rig.topo.get(), plan, config);
  BRISK_CHECK(rt_or.ok()) << rt_or.status().ToString();
  rig.rt = std::move(rt_or).value();
  return rig;
}

engine::EngineConfig BaseConfig(engine::ExecutorKind executor) {
  engine::EngineConfig config;
  config.executor = executor;
  config.spout_rate_tps = 40000;
  config.seed = 0xfa17;
  config.drain_timeout_s = 2.0;
  return config;
}

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Gap-free dense counts + exact full-stream total (see file header).
bool Conserved(TapLog* tap, uint64_t expected_words) {
  std::lock_guard<std::mutex> lock(tap->mu);
  std::map<std::string, std::set<int64_t>> counts;
  for (const auto& [word, count] : tap->entries) counts[word].insert(count);
  uint64_t total = 0;
  for (const auto& [word, seen] : counts) {
    const int64_t max = *seen.rbegin();
    if (static_cast<int64_t>(seen.size()) != max || *seen.begin() != 1) {
      return false;
    }
    total += static_cast<uint64_t>(max);
  }
  return total == expected_words;
}

uint64_t SumOfMaxCounts(TapLog* tap) {
  std::lock_guard<std::mutex> lock(tap->mu);
  std::map<std::string, int64_t> max_count;
  for (const auto& [word, count] : tap->entries) {
    int64_t& m = max_count[word];
    if (count > m) m = count;
  }
  uint64_t sum = 0;
  for (const auto& [word, m] : max_count) sum += static_cast<uint64_t>(m);
  return sum;
}

struct CheckpointPoint {
  double interval_s = 0.0;
  int checkpoints = 0;
  double pause_mean_ms = 0.0;
  uint64_t entries = 0;  ///< keyed-state entries in the last snapshot
};

/// Supervised steady-state run: periodic checkpoints, no faults.
CheckpointPoint MeasureCheckpointPause(engine::ExecutorKind executor,
                                       double interval_s, double run_s) {
  Rig rig = MakeRig(BaseConfig(executor), apps::WordCountParams{});
  BRISK_CHECK(rig.rt->Start().ok());
  engine::SupervisorOptions opts;
  opts.heartbeat_interval_s = 0.02;
  opts.checkpoint_interval_s = interval_s;
  // No faults are injected here; a scheduling hiccup misread as a
  // stall would trigger a restore and pollute the pause numbers.
  opts.stall_probes = 1 << 20;
  engine::Supervisor sup(rig.rt.get(), opts);
  BRISK_CHECK(sup.Start().ok());
  SleepMs(static_cast<int>(run_s * 1000));
  // One direct snapshot for the payload-size column.
  auto cp = rig.rt->Checkpoint();
  const engine::SupervisionReport report = sup.Stop();
  (void)rig.rt->Stop();

  CheckpointPoint point;
  point.interval_s = interval_s;
  point.checkpoints = report.checkpoints;
  if (report.checkpoints > 0) {
    point.pause_mean_ms =
        1000.0 * report.checkpoint_pause_s / report.checkpoints;
  }
  if (cp.ok()) point.entries = cp.value().TotalEntries();
  return point;
}

struct RecoveryPoint {
  double detect_ms = 0.0;    ///< run start -> failure detected
  double restore_ms = 0.0;   ///< detect -> engine running again
  uint64_t replayed = 0;     ///< duplicate window, source tuples
  double resumed_tps = 0.0;  ///< sink throughput after the restore
  bool conserved = false;
};

/// Crash one counter replica mid-stream, recover, finish the bounded
/// run, audit conservation.
RecoveryPoint MeasureRecovery(engine::ExecutorKind executor) {
  apps::WordCountParams params;
  params.max_sentences = 20000;
  const uint64_t expected = params.max_sentences * params.words_per_sentence;
  engine::EngineConfig config = BaseConfig(executor);
  config.faults.Crash(kCounter, 0, /*after_tuples=*/40000);
  Rig rig = MakeRig(config, params);
  BRISK_CHECK(rig.rt->Start().ok());
  engine::SupervisorOptions opts;
  opts.heartbeat_interval_s = 0.02;
  opts.checkpoint_interval_s = 0.05;
  opts.backoff_initial_s = 0.01;
  // The 40 ms freeze threshold of the defaults is within reach of an
  // ordinary scheduling hiccup at this heartbeat; demand a longer
  // freeze and keep restart budget for the measured crash.
  opts.stall_probes = 5;
  opts.max_restarts = 8;
  engine::Supervisor sup(rig.rt.get(), opts);
  BRISK_CHECK(sup.Start().ok());

  // Wait out the restore, then sample the resumed throughput window.
  for (int waited = 0; waited < 20000 && sup.Snapshot().restarts < 1;
       waited += 5) {
    SleepMs(5);
  }
  const uint64_t sink_at_restore = rig.telemetry->count();
  const auto t_restore = std::chrono::steady_clock::now();
  for (int waited = 0;
       waited < 30000 && SumOfMaxCounts(rig.tap.get()) < expected;
       waited += 20) {
    SleepMs(20);
  }
  const double resumed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_restore)
          .count();
  const uint64_t sink_final = rig.telemetry->count();
  const engine::SupervisionReport report = sup.Stop();
  (void)rig.rt->Stop();

  RecoveryPoint point;
  for (const engine::RecoveryRecord& rec : report.recoveries) {
    if (rec.cause.find("injected crash") == std::string::npos) continue;
    point.detect_ms = 1000.0 * rec.at_seconds;
    point.restore_ms = 1000.0 * rec.recovery_seconds;
    break;
  }
  point.replayed = report.replayed_tuples;
  if (resumed_s > 0) {
    point.resumed_tps =
        static_cast<double>(sink_final - sink_at_restore) / resumed_s;
  }
  point.conserved = report.restarts >= 1 &&
                    Conserved(rig.tap.get(), expected);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_recovery.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  bench::Banner("recovery",
                "checkpoint pause and crash-recovery latency (supervised)");

  const std::vector<double> intervals =
      quick ? std::vector<double>{0.1} : std::vector<double>{0.05, 0.1, 0.25};
  const double run_s = quick ? 0.8 : 1.5;
  const std::vector<std::pair<const char*, engine::ExecutorKind>> executors =
      {{"worker-pool", engine::ExecutorKind::kWorkerPool},
       {"thread-per-task", engine::ExecutorKind::kThreadPerTask}};

  bench::PrintRule({18, 14, 12, 14, 12});
  bench::PrintRow(
      {"executor", "interval ms", "snapshots", "pause ms", "entries"},
      {18, 14, 12, 14, 12});
  bench::PrintRule({18, 14, 12, 14, 12});
  std::map<std::string, std::vector<CheckpointPoint>> pauses;
  for (const auto& [name, kind] : executors) {
    for (const double interval : intervals) {
      CheckpointPoint p = MeasureCheckpointPause(kind, interval, run_s);
      pauses[name].push_back(p);
      bench::PrintRow({name, std::to_string(interval * 1000),
                       std::to_string(p.checkpoints),
                       std::to_string(p.pause_mean_ms),
                       std::to_string(p.entries)},
                      {18, 14, 12, 14, 12});
    }
  }
  bench::PrintRule({18, 14, 12, 14, 12});

  bench::PrintRule({18, 12, 12, 12, 14, 10});
  bench::PrintRow({"executor", "detect ms", "restore ms", "replayed",
                   "resumed tps", "exact"},
                  {18, 12, 12, 12, 14, 10});
  bench::PrintRule({18, 12, 12, 12, 14, 10});
  std::map<std::string, RecoveryPoint> recoveries;
  bool all_conserved = true;
  for (const auto& [name, kind] : executors) {
    RecoveryPoint p = MeasureRecovery(kind);
    recoveries[name] = p;
    all_conserved = all_conserved && p.conserved;
    bench::PrintRow({name, std::to_string(p.detect_ms),
                     std::to_string(p.restore_ms), std::to_string(p.replayed),
                     std::to_string(p.resumed_tps),
                     p.conserved ? "yes" : "NO"},
                    {18, 12, 12, 12, 14, 10});
  }
  bench::PrintRule({18, 12, 12, 12, 14, 10});

  bench::JsonObj root;
  root.Add("experiment", "recovery").Add("quick", quick);
  for (const auto& [name, points] : pauses) {
    for (const CheckpointPoint& p : points) {
      bench::JsonObj obj;
      obj.Add("executor", name)
          .Add("interval_ms", p.interval_s * 1000)
          .Add("checkpoints", p.checkpoints)
          .Add("pause_mean_ms", p.pause_mean_ms)
          .Add("state_entries", static_cast<double>(p.entries));
      root.Add("checkpoint_" + std::string(name) + "_" +
                   std::to_string(static_cast<int>(p.interval_s * 1000)) +
                   "ms",
               obj);
    }
  }
  for (const auto& [name, p] : recoveries) {
    bench::JsonObj obj;
    obj.Add("detect_ms", p.detect_ms)
        .Add("restore_ms", p.restore_ms)
        .Add("replayed_tuples", static_cast<double>(p.replayed))
        .Add("resumed_sink_tps", p.resumed_tps)
        .Add("tuples_conserved", p.conserved);
    root.Add("recovery_" + std::string(name), obj);
  }
  bench::WriteJsonFile(out_path, root);

  // Zero-loss is the gate: a fast recovery that lost tuples is not a
  // recovery.
  return all_conserved ? 0 : 1;
}
