// Ingest/egress throughput: what does reading from the outside world
// cost, relative to the in-process spout the paper benchmarks with?
//
//   - File endpoint: the same kernelized word_count, fed once by the
//     synthetic SentenceSpout (baseline) and once by the shared-mmap
//     file source in loop mode (sustained read), at source replication
//     1 / 4 / 8. Reported as sink words/s, source sentences/s, and
//     file bytes/s. Gates: at replication 4 the file source must reach
//     at least 0.5x the spout baseline, and the whole run must cost
//     exactly ONE mmap call with ONE live mapping (the no-redundant-
//     copies claim, asserted via io::GetMappingCounters).
//   - TCP endpoint: a loopback producer writes newline-framed records
//     as fast as the socket accepts them; the engine pulls them
//     through a FromSocket -> Sink pipeline. Reported as records/s and
//     payload bytes/s; the gate is zero record loss once the producer
//     finishes (back-pressure parks the reader, it never drops).
//
//   $ ./bench/bench_ingest [--quick] [--out BENCH_ingest.json]
//
// Exits nonzero when any gate fails.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/word_count.h"
#include "bench_util.h"
#include "common/logging.h"
#include "engine/runtime.h"
#include "io/io.h"
#include "model/execution_plan.h"

using namespace brisk;

namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Synthetic corpus: `sentences` lines of ten dictionary words, the
/// SentenceSpout shape, so both feeds exercise identical downstream
/// work.
std::string WriteCorpus(const std::string& path, uint64_t sentences) {
  std::vector<std::string> lines;
  lines.reserve(sentences);
  uint64_t x = 88172645463325252ull;
  for (uint64_t i = 0; i < sentences; ++i) {
    std::string line;
    for (int w = 0; w < 10; ++w) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      if (w) line += ' ';
      line += "word" + std::to_string(x % 4096);
    }
    lines.push_back(std::move(line));
  }
  BRISK_CHECK_OK(io::WriteRecordFile(path, io::RecordCodec::kText, lines));
  return path;
}

uint64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  BRISK_CHECK(f != nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return static_cast<uint64_t>(size);
}

engine::EngineConfig BenchConfig() {
  engine::EngineConfig config;  // native Brisk defaults
  config.spout_rate_tps = 0.0;  // saturated
  config.drain_timeout_s = 0.5;
  return config;
}

/// Deploys `topo` at the given replication vector, runs it saturated,
/// and returns steady-state sink tuples/s (word emissions for WC).
/// `mid_run` is sampled between warmup and measurement.
double MeasureSinkTps(std::shared_ptr<const api::Topology> topo,
                      const std::shared_ptr<SinkTelemetry>& telemetry,
                      const std::vector<int>& replication, double seconds,
                      const std::function<void()>& mid_run = nullptr) {
  auto plan_or = model::ExecutionPlan::Create(topo.get(), replication);
  BRISK_CHECK(plan_or.ok()) << plan_or.status().ToString();
  model::ExecutionPlan plan = std::move(plan_or).value();
  for (int i = 0; i < plan.num_instances(); ++i) plan.SetSocket(i, 0);
  auto rt_or = engine::BriskRuntime::Create(topo.get(), plan, BenchConfig());
  BRISK_CHECK(rt_or.ok()) << rt_or.status().ToString();
  auto rt = std::move(rt_or).value();
  BRISK_CHECK(rt->Start().ok());
  SleepMs(static_cast<int>(seconds * 250));  // warmup
  if (mid_run) mid_run();
  const uint64_t c0 = telemetry->count();
  const auto t0 = std::chrono::steady_clock::now();
  SleepMs(static_cast<int>(seconds * 1000));
  const uint64_t c1 = telemetry->count();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  (void)rt->Stop();
  return static_cast<double>(c1 - c0) / dt;
}

struct FilePoint {
  int replication = 1;
  double file_words_tps = 0.0;
  double spout_words_tps = 0.0;
  double sentences_tps = 0.0;
  double bytes_per_s = 0.0;
  double ratio = 0.0;
  uint64_t map_calls = 0;       ///< mmap calls this run (must be 1)
  uint64_t active_mappings = 0; ///< live mappings mid-run (must be 1)
};

FilePoint MeasureFile(const std::string& corpus, uint64_t sentences,
                      int replication, double seconds) {
  const uint64_t corpus_bytes = FileBytes(corpus);
  const std::vector<int> reps = {replication, 2, 2, 2, 1};

  // Baseline: the in-process synthetic spout, same replication.
  auto spout_telemetry = std::make_shared<SinkTelemetry>();
  auto spout_topo_or = apps::BuildWordCountDsl(spout_telemetry, {});
  BRISK_CHECK(spout_topo_or.ok()) << spout_topo_or.status().ToString();
  auto spout_topo = std::make_shared<const api::Topology>(
      std::move(spout_topo_or).value());
  const double spout_tps =
      MeasureSinkTps(spout_topo, spout_telemetry, reps, seconds);

  // File source in loop mode: sustained mmap read of the same shape.
  io::FileSourceOptions src;
  src.path = corpus;
  src.codec = io::RecordCodec::kText;
  src.partition = io::FileSourceOptions::Partition::kRange;
  src.loop = true;
  auto file_telemetry = std::make_shared<SinkTelemetry>();
  auto file_pipe = apps::BuildFileWordCountDsl(file_telemetry, src);
  auto file_topo_or = std::move(file_pipe).Build();
  BRISK_CHECK(file_topo_or.ok()) << file_topo_or.status().ToString();
  auto file_topo = std::make_shared<const api::Topology>(
      std::move(file_topo_or).value());

  FilePoint point;
  const uint64_t maps_before = io::GetMappingCounters().map_calls;
  point.file_words_tps =
      MeasureSinkTps(file_topo, file_telemetry, reps, seconds, [&point] {
        point.active_mappings = io::GetMappingCounters().active;
      });
  point.map_calls = io::GetMappingCounters().map_calls - maps_before;

  point.replication = replication;
  point.spout_words_tps = spout_tps;
  point.sentences_tps = point.file_words_tps / 10.0;
  point.bytes_per_s = point.sentences_tps *
                      (static_cast<double>(corpus_bytes) /
                       static_cast<double>(sentences));
  point.ratio =
      spout_tps > 0 ? point.file_words_tps / spout_tps : 0.0;
  return point;
}

struct TcpPoint {
  double records_tps = 0.0;
  double bytes_per_s = 0.0;
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t max_buffered = 0;  ///< user-space back-pressure high-water
};

TcpPoint MeasureTcp(double seconds) {
  io::TcpSource::ResetMaxBufferedBytes();
  auto listener = std::make_shared<io::TcpListener>("127.0.0.1", 0);
  BRISK_CHECK_OK(listener->EnsureOpen());

  auto telemetry = std::make_shared<SinkTelemetry>();
  io::TcpSourceOptions opts;
  opts.codec = io::RecordCodec::kText;
  dsl::Pipeline p("tcp-ingest");
  p.FromSocket("spout", listener, opts).Sink("sink", [telemetry](
                                                         const Tuple& in) {
    telemetry->RecordTuple(in.origin_ts_ns, apps::NowNs());
  });
  auto topo_or = std::move(p).Build();
  BRISK_CHECK(topo_or.ok()) << topo_or.status().ToString();
  auto topo =
      std::make_shared<const api::Topology>(std::move(topo_or).value());
  auto plan_or = model::ExecutionPlan::Create(topo.get(), {1, 1});
  BRISK_CHECK(plan_or.ok()) << plan_or.status().ToString();
  model::ExecutionPlan plan = std::move(plan_or).value();
  for (int i = 0; i < plan.num_instances(); ++i) plan.SetSocket(i, 0);
  auto rt_or = engine::BriskRuntime::Create(topo.get(), plan, BenchConfig());
  BRISK_CHECK(rt_or.ok()) << rt_or.status().ToString();
  auto rt = std::move(rt_or).value();
  BRISK_CHECK(rt->Start().ok());

  // Loopback producer: one connection, framed records written as fast
  // as the receiver's back-pressure admits them.
  std::vector<uint8_t> chunk;
  constexpr uint64_t kRecordsPerChunk = 1024;
  for (uint64_t i = 0; i < kRecordsPerChunk; ++i) {
    io::AppendRecord(io::RecordCodec::kText,
                     "payload record number " + std::to_string(i), &chunk);
  }
  auto fd_or = io::TcpConnect("127.0.0.1", listener->port());
  BRISK_CHECK(fd_or.ok()) << fd_or.status().ToString();

  TcpPoint point;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < deadline) {
    size_t off = 0;
    while (off < chunk.size()) {
      const ssize_t n =
          ::write(fd_or.value(), chunk.data() + off, chunk.size() - off);
      BRISK_CHECK(n > 0) << "loopback write failed";
      off += static_cast<size_t>(n);
    }
    point.sent += kRecordsPerChunk;
  }
  const double send_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ::close(fd_or.value());

  // Drain: the producer is done; every record it pushed must arrive.
  for (int waited = 0; waited < 10000 && telemetry->count() < point.sent;
       waited += 10) {
    SleepMs(10);
  }
  point.received = telemetry->count();
  (void)rt->Stop();

  point.records_tps = static_cast<double>(point.sent) / send_s;
  point.bytes_per_s =
      static_cast<double>(point.sent) *
      (static_cast<double>(chunk.size()) / kRecordsPerChunk) / send_s;
  point.max_buffered = io::TcpSource::MaxBufferedBytes();
  return point;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_ingest.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  bench::Banner("ingest", "mmap file + TCP ingest vs in-process spout");

  const uint64_t sentences = quick ? 20000 : 100000;
  const double seconds = quick ? 0.4 : 1.2;
  const std::string corpus =
      WriteCorpus("/tmp/bench_ingest_corpus.txt", sentences);

  const std::vector<int> replications = {1, 4, 8};
  std::vector<FilePoint> file_points;
  bench::PrintRule({6, 14, 14, 14, 12, 8, 10});
  bench::PrintRow({"repl", "file words/s", "spout words/s", "file MB/s",
                   "ratio", "maps", "active"},
                  {6, 14, 14, 14, 12, 8, 10});
  bench::PrintRule({6, 14, 14, 14, 12, 8, 10});
  for (const int r : replications) {
    FilePoint p = MeasureFile(corpus, sentences, r, seconds);
    file_points.push_back(p);
    bench::PrintRow({std::to_string(r), Fmt(p.file_words_tps),
                     Fmt(p.spout_words_tps), Fmt(p.bytes_per_s / 1e6),
                     std::to_string(p.ratio), std::to_string(p.map_calls),
                     std::to_string(p.active_mappings)},
                    {6, 14, 14, 14, 12, 8, 10});
  }
  bench::PrintRule({6, 14, 14, 14, 12, 8, 10});

  TcpPoint tcp = MeasureTcp(quick ? 0.5 : 1.5);
  bench::PrintRule({16, 14, 14, 12, 14});
  bench::PrintRow({"tcp records/s", "tcp MB/s", "sent", "received",
                   "max buffered"},
                  {16, 14, 14, 12, 14});
  bench::PrintRow({Fmt(tcp.records_tps), Fmt(tcp.bytes_per_s / 1e6),
                   std::to_string(tcp.sent), std::to_string(tcp.received),
                   std::to_string(tcp.max_buffered)},
                  {16, 14, 14, 12, 14});
  bench::PrintRule({16, 14, 14, 12, 14});

  // Gates (see file header).
  bool ratio_gate = false, mapping_gate = true;
  for (const FilePoint& p : file_points) {
    if (p.replication == 4) ratio_gate = p.ratio >= 0.5;
    mapping_gate =
        mapping_gate && p.map_calls == 1 && p.active_mappings == 1;
  }
  const bool tcp_gate = tcp.sent > 0 && tcp.received == tcp.sent;

  bench::JsonObj root;
  root.Add("experiment", "ingest").Add("quick", quick);
  bench::JsonObj file_obj;
  for (const FilePoint& p : file_points) {
    bench::JsonObj obj;
    obj.Add("replication", p.replication)
        .Add("file_words_per_s", p.file_words_tps)
        .Add("spout_words_per_s", p.spout_words_tps)
        .Add("sentences_per_s", p.sentences_tps)
        .Add("file_bytes_per_s", p.bytes_per_s)
        .Add("ratio_vs_spout", p.ratio)
        .Add("mmap_calls", p.map_calls)
        .Add("active_mappings", p.active_mappings);
    file_obj.Add("replication_" + std::to_string(p.replication), obj);
  }
  root.Add("file", file_obj);
  bench::JsonObj tcp_obj;
  tcp_obj.Add("records_per_s", tcp.records_tps)
      .Add("bytes_per_s", tcp.bytes_per_s)
      .Add("records_sent", tcp.sent)
      .Add("records_received", tcp.received)
      .Add("max_buffered_bytes", tcp.max_buffered)
      .Add("loss_free", tcp_gate);
  root.Add("tcp", tcp_obj);
  bench::JsonObj gates;
  gates.Add("file_ratio_at_repl4_ge_0p5", ratio_gate)
      .Add("single_shared_mapping", mapping_gate)
      .Add("tcp_loss_free", tcp_gate);
  root.Add("gates", gates);
  bench::WriteJsonFile(out_path, root);

  if (!ratio_gate) {
    std::fprintf(stderr, "GATE FAILED: file source < 0.5x spout at repl 4\n");
  }
  if (!mapping_gate) {
    std::fprintf(stderr, "GATE FAILED: expected exactly one shared mapping\n");
  }
  if (!tcp_gate) {
    std::fprintf(stderr, "GATE FAILED: tcp ingest lost records\n");
  }
  return ratio_gate && mapping_gate && tcp_gate ? 0 : 1;
}
