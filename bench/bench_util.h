// Shared helpers for the experiment harness binaries (one per paper
// table/figure — see DESIGN.md §3 for the index).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "hardware/machine_spec.h"
#include "model/perf_model.h"
#include "optimizer/baselines.h"
#include "optimizer/rlas.h"
#include "sim/simulator.h"

namespace brisk::bench {

/// An application optimized by RLAS for one machine.
struct OptimizedApp {
  apps::AppBundle bundle;
  model::ProfileSet profiles;  ///< for the chosen SystemKind
  opt::RlasResult rlas;
};

/// Runs the full RLAS loop for `app` on `machine` under the given
/// system's cost profiles.
StatusOr<OptimizedApp> OptimizeApp(
    apps::AppId app, const hw::MachineSpec& machine, int compress_ratio = 5,
    apps::SystemKind system = apps::SystemKind::kBrisk);

/// Default simulation window used across benches (kept short so the
/// whole harness runs in minutes).
sim::SimConfig DefaultSimConfig();

/// Simulated ("measured") throughput of a placed plan, tuples/sec.
StatusOr<double> MeasuredThroughput(const hw::MachineSpec& machine,
                                    const model::ProfileSet& profiles,
                                    const model::ExecutionPlan& plan);

/// Full simulation with the default window.
StatusOr<sim::SimResult> MeasureSim(const hw::MachineSpec& machine,
                                    const model::ProfileSet& profiles,
                                    const model::ExecutionPlan& plan);

/// One system's deployment of an application (Fig. 6/7/9 comparisons):
/// BriskStream uses RLAS; Storm-like uses NUMA-oblivious scaling + OS
/// placement; Flink-like uses its NUMA-aware-config equivalent,
/// round-robin across sockets (one task manager per socket, §6.3).
struct SystemRun {
  apps::SystemKind system;
  model::ProfileSet profiles;
  model::ExecutionPlan plan;
  sim::SimResult sim;
  /// Keeps the topology the plan points into alive.
  std::shared_ptr<const api::Topology> topology_keepalive;
};

/// Plans and simulates `app` as deployed by `system` on `machine`.
StatusOr<SystemRun> RunSystem(apps::AppId app, const hw::MachineSpec& machine,
                              apps::SystemKind system);

/// BriskStream with compiled fusion: greedy AutoFuse prices
/// kernel-backed chains at the measured compiled:interpreted per-tuple
/// ratio (opt::kMeasuredCompiledTeDiscount, from bench_pipeline.cc),
/// then RLAS plans and the simulator measures the fused topology.
/// Apps whose chains are not kernel-backed degrade gracefully to plain
/// interpreted fusion (or no fusion where it never helps).
StatusOr<SystemRun> RunBriskCompiled(apps::AppId app,
                                     const hw::MachineSpec& machine);

/// Formats tuples/sec as the paper's "K events/s" unit.
std::string Keps(double tuples_per_sec);

/// Fixed-width table printing.
void PrintRule(const std::vector<int>& widths);
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

/// Prints the standard bench banner (experiment id + description).
void Banner(const std::string& experiment, const std::string& what);

/// Minimal ordered JSON writer for the machine-readable `BENCH_*.json`
/// files benches emit next to their human-readable tables (insertion
/// order preserved). Strings are fully escaped (quotes, backslashes,
/// control characters), and nested objects render at their true depth,
/// so arbitrarily deep structures stay valid JSON.
class JsonObj {
 public:
  JsonObj& Add(const std::string& key, const std::string& v);
  JsonObj& Add(const std::string& key, const char* v);
  JsonObj& Add(const std::string& key, double v);
  JsonObj& Add(const std::string& key, uint64_t v);
  JsonObj& Add(const std::string& key, int v);
  JsonObj& Add(const std::string& key, bool v);
  JsonObj& Add(const std::string& key, const JsonObj& v);  ///< nested object

  /// Serializes as a pretty-printed object at the given indent depth.
  std::string Str(int indent = 0) const;

 private:
  JsonObj& AddRaw(const std::string& key, std::string raw);

  /// Scalar items carry their rendered text; nested objects are kept
  /// as objects and rendered by Str at the actual depth (a pre-
  /// rendered nested string would bake in one fixed indent and
  /// mis-indent at any other depth).
  struct Item {
    std::string key;
    std::string raw;
    std::shared_ptr<const JsonObj> obj;
  };
  std::vector<Item> items_;
};

/// Writes `obj` to `path` with a trailing newline; returns false (and
/// prints to stderr) on I/O failure.
bool WriteJsonFile(const std::string& path, const JsonObj& obj);

}  // namespace brisk::bench
