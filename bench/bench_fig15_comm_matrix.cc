// Figure 15 — Communication pattern matrices of WC on the two servers.
//
// Each cell (i, j) is the simulated cross-socket fetch traffic from
// socket i to socket j under the RLAS-optimal plan.
//
// Paper: on Server A traffic concentrates out of a few sockets (the
// optimizer clusters producers and consumers to dodge the slow long
// hops); on Server B — whose XNC makes remote bandwidth nearly uniform
// — traffic spreads much more evenly.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace brisk;

namespace {

int PrintMatrix(const char* label, const hw::MachineSpec& machine) {
  auto optimized = bench::OptimizeApp(apps::AppId::kWordCount, machine);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }
  auto sim = bench::MeasureSim(machine, optimized->profiles,
                               optimized->rlas.plan);
  if (!sim.ok()) return 1;

  const int n = machine.num_sockets();
  std::printf("\n%s — fetch traffic (MB/s), row = from, col = to:\n    ",
              label);
  for (int j = 0; j < n; ++j) std::printf("%8s", ("S" + std::to_string(j)).c_str());
  std::printf("\n");
  double total = 0.0, offdiag_max = 0.0;
  for (int i = 0; i < n; ++i) {
    std::printf("  S%d", i);
    for (int j = 0; j < n; ++j) {
      const double mbps = sim->link_traffic_bps[i * n + j] / 1e6;
      total += mbps;
      offdiag_max = std::max(offdiag_max, mbps);
      std::printf("%8.1f", mbps);
    }
    std::printf("\n");
  }
  std::printf("  total cross-socket traffic: %.1f MB/s\n", total);
  return 0;
}

}  // namespace

int main() {
  bench::Banner("Figure 15", "communication pattern matrices, WC");
  if (PrintMatrix("Server A", hw::MachineSpec::ServerA())) return 1;
  if (PrintMatrix("Server B", hw::MachineSpec::ServerB())) return 1;
  std::printf(
      "\nPaper (Fig. 15): Server A's matrix is concentrated (a few hot "
      "source sockets);\n  Server B's is much more uniform thanks to "
      "flat XNC remote bandwidth.\n");
  return 0;
}
