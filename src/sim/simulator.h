// Discrete-event simulator of a placed execution plan.
//
// This is the measurement substrate that stands in for the paper's
// eight-socket servers (DESIGN.md §1): it executes a plan
// instance-by-instance with per-tuple service times from the profiles
// (T_e) plus relative-location fetch costs (Formula 2), jumbo-tuple
// batching, bounded queues with back-pressure, and spout rate control.
// Unlike the analytical model it captures queueing, batching and
// pipeline-stall effects, so simulated ("measured") throughput differs
// from the model's estimate the same way the paper's Table 4 does.
//
// The NUMA fetch cost is additionally modulated by a hardware-prefetch
// efficiency factor: multi-cache-line tuples fetch cheaper per line
// than Formula 2 predicts (the paper observes exactly this for the
// Splitter in Table 3), single-line tuples slightly dearer.
//
// Tuple-size convention: the per-tuple N feeding Formula 2 here (each
// edge's bytes_per_tuple, from the profiles' output_bytes, ultimately
// Tuple::SizeBytes()) is the *logical* payload size. It is invariant
// to the in-memory tuple layout — inline vs spilled fields report the
// same N — so the engine's zero-allocation representation
// (common/tuple.h) and this cost model cannot drift apart.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "hardware/machine_spec.h"
#include "model/execution_plan.h"
#include "model/operator_profile.h"

namespace brisk::sim {

/// Simulation knobs.
struct SimConfig {
  /// Simulated steady-state measurement window (seconds).
  double duration_s = 0.25;
  /// Simulated warm-up excluded from all statistics.
  double warmup_s = 0.05;
  /// Jumbo-tuple size: tuples per batch (§5.2).
  int batch_size = 64;
  /// Queue capacity between two instances, in batches.
  int queue_capacity_batches = 64;
  /// External ingress rate I in tuples/sec; <= 0 means saturated
  /// (spouts always have input — the §6.1 max-capacity setup).
  double input_rate_tps = 0.0;
  /// Partially filled output buffers are flushed at this simulated
  /// interval so low-rate streams still make progress.
  double flush_interval_s = 0.0005;
  /// Apply the prefetch-efficiency adjustment to fetch costs (leave on;
  /// off makes "measured" equal the analytical estimate for Table 3's
  /// estimated column sanity checks).
  bool prefetch_adjust = true;

  /// Substitute every remote-fetch cost with zero — the Fig. 10
  /// "W/o rma" bound (same plan, RMA erased).
  bool zero_fetch = false;
};

/// Per-instance simulation statistics (measurement window only).
struct SimInstanceStats {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  double busy_ns = 0.0;     ///< time spent processing
  double blocked_ns = 0.0;  ///< time stalled on full downstream queues
};

/// Simulation output.
struct SimResult {
  /// Sink tuples per second over the measurement window — the
  /// "measured" application throughput R.
  double throughput_tps = 0.0;
  /// End-to-end tuple latency (ns) sampled at sinks.
  Histogram latency_ns;
  std::vector<SimInstanceStats> instances;
  /// Inter-socket traffic in bytes/sec, row-major [from * n + to].
  std::vector<double> link_traffic_bps;
  /// Total simulated events processed (diagnostics).
  uint64_t events = 0;
};

/// Runs one simulation of `plan` (must be fully placed).
StatusOr<SimResult> Simulate(const hw::MachineSpec& machine,
                             const model::ProfileSet& profiles,
                             const model::ExecutionPlan& plan,
                             const SimConfig& config = {});

}  // namespace brisk::sim
