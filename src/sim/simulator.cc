#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <tuple>

#include "common/logging.h"
#include "engine/config.h"

namespace brisk::sim {

namespace {

constexpr double kNsPerSec = 1e9;
constexpr uint64_t kMaxEvents = 80'000'000;  // runaway guard

/// A jumbo tuple in flight between two instances.
struct Batch {
  uint32_t count = 0;
  double origin_sum_ns = 0.0;  ///< Σ per-tuple origin timestamps
};

/// Bounded FIFO on one producer-instance → consumer-instance edge.
struct EdgeQueue {
  int from_instance = -1;
  int to_instance = -1;
  size_t capacity = 0;
  double fetch_ns_per_tuple = 0.0;  ///< Formula 2 (+ prefetch factor)
  double bytes_per_tuple = 0.0;
  std::deque<Batch> batches;

  bool Full() const { return batches.size() >= capacity; }
};

/// Output accumulation buffer; becomes a Batch when it reaches the
/// jumbo-tuple size (§5.2).
struct OutBuffer {
  int queue_index = -1;
  double tuples = 0.0;  ///< fractional (selectivity carry)
  double origin_sum_ns = 0.0;
};

/// Routing of one topology edge at a producer instance: every
/// subscribing consumer operator receives the full stream; within one
/// edge the grouping decides the fan-out across consumer replicas.
struct EdgeRoute {
  uint16_t stream_id = 0;
  bool broadcast = false;           ///< copy to every replica
  std::vector<int> buffers;         ///< per consumer replica
  size_t rr_cursor = 0;             ///< shuffle/fields batch-level RR
};

struct Instance {
  int op = -1;
  int socket = -1;
  bool is_spout = false;
  bool is_sink = false;
  double te_ns = 0.0;

  std::vector<int> in_queues;
  size_t in_cursor = 0;
  std::vector<OutBuffer> buffers;
  std::vector<EdgeRoute> routes;
  std::vector<double> stream_selectivity;  ///< per output stream

  double free_at_ns = 0.0;
  bool scheduled = false;
  bool blocked = false;
  std::vector<std::pair<int, Batch>> stalled;  ///< (queue idx, batch)

  double spout_tokens = 0.0;
  double spout_last_refill_ns = 0.0;

  SimInstanceStats stats;
  double blocked_since_ns = -1.0;
};

struct Event {
  double time_ns;
  uint64_t seq;
  int instance;  ///< -1 = global flush tick
  bool operator>(const Event& other) const {
    return std::tie(time_ns, seq) > std::tie(other.time_ns, other.seq);
  }
};

/// Hardware-prefetch efficiency: Formula 2 charges one worst-case
/// latency per cache line, but adjacent-line streams pipeline on real
/// hardware (Table 3: measured Splitter RMA ≈ 1/3 of the estimate)
/// while single-line fetches slightly exceed idle latency under load
/// (Counter rows).
double PrefetchFactor(double lines) {
  if (lines <= 1.0) return 1.15;
  if (lines <= 2.0) return 0.65;
  return 0.45;
}

class SimEngine {
 public:
  SimEngine(const hw::MachineSpec& machine,
            const model::ProfileSet& profiles,
            const model::ExecutionPlan& plan, const SimConfig& cfg)
      : machine_(machine), profiles_(profiles), plan_(plan), cfg_(cfg) {}

  StatusOr<SimResult> Run();

 private:
  Status BuildNetwork();
  void Schedule(int inst, double at_ns);
  void TryWork(int inst, double now);
  void EmitOutputs(int inst, double count, double origin_sum, double now);
  void FlushFull(int inst, int buffer_idx, double now);
  void FlushPartial(int inst, int buffer_idx, double now);
  void PushOrStall(int inst, int queue_idx, Batch batch, double now);
  void WakeWaiters(int queue_idx, double now);
  void GlobalFlush(double now);

  double ClipToWindow(double start, double end) const {
    const double lo = std::max(start, warmup_ns_);
    const double hi = std::min(end, end_ns_);
    return std::max(0.0, hi - lo);
  }
  bool InWindow(double t) const { return t >= warmup_ns_ && t < end_ns_; }

  const hw::MachineSpec& machine_;
  const model::ProfileSet& profiles_;
  const model::ExecutionPlan& plan_;
  SimConfig cfg_;

  std::vector<Instance> instances_;
  std::vector<EdgeQueue> queues_;
  std::vector<std::vector<int>> queue_waiters_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events_;
  uint64_t event_seq_ = 0;
  uint64_t events_processed_ = 0;

  double warmup_ns_ = 0.0;
  double end_ns_ = 0.0;
  double spout_rate_per_instance_ = 0.0;  ///< 0 = saturated

  uint64_t sink_tuples_ = 0;
  Histogram latency_ns_;
  std::vector<double> link_traffic_bytes_;
};

Status SimEngine::BuildNetwork() {
  const api::Topology& topo = plan_.topology();
  const int n = plan_.num_instances();
  if (n == 0) return Status::InvalidArgument("empty plan");
  instances_.assign(n, Instance{});

  std::vector<model::OperatorProfile> prof(topo.num_operators());
  for (const auto& op : topo.ops()) {
    BRISK_ASSIGN_OR_RETURN(prof[op.id], profiles_.Get(op.name));
    if (prof[op.id].selectivity.size() < op.output_streams.size() ||
        prof[op.id].output_bytes.size() < op.output_streams.size()) {
      return Status::InvalidArgument("profile for '" + op.name +
                                     "' covers fewer streams than declared");
    }
  }

  for (int i = 0; i < n; ++i) {
    const auto& pi = plan_.instance(i);
    if (pi.socket < 0 || pi.socket >= machine_.num_sockets()) {
      return Status::FailedPrecondition(
          "cannot simulate: instance of '" + topo.op(pi.op).name +
          "' is unplaced or out of range");
    }
    Instance& inst = instances_[i];
    inst.op = pi.op;
    inst.socket = pi.socket;
    inst.is_spout = topo.op(pi.op).is_spout;
    inst.is_sink = topo.OutEdges(pi.op).empty();
    inst.te_ns = machine_.CyclesToNs(prof[pi.op].te_cycles);
    const size_t n_streams = topo.op(pi.op).output_streams.size();
    inst.stream_selectivity.resize(n_streams);
    for (size_t s = 0; s < n_streams; ++s) {
      inst.stream_selectivity[s] = prof[pi.op].selectivity[s];
    }
  }

  for (const auto& e : topo.edges()) {
    const double bytes = prof[e.producer_op].output_bytes[e.stream_id];
    for (int pr = 0; pr < plan_.replication(e.producer_op); ++pr) {
      const int pinst = plan_.InstanceId(e.producer_op, pr);
      Instance& producer = instances_[pinst];
      producer.routes.emplace_back();
      EdgeRoute& route = producer.routes.back();
      route.stream_id = e.stream_id;
      route.broadcast = e.grouping == api::GroupingType::kBroadcast;
      const int consumers = e.grouping == api::GroupingType::kGlobal
                                ? 1
                                : plan_.replication(e.consumer_op);
      for (int cr = 0; cr < consumers; ++cr) {
        const int cinst = plan_.InstanceId(e.consumer_op, cr);
        EdgeQueue q;
        q.from_instance = pinst;
        q.to_instance = cinst;
        q.capacity = static_cast<size_t>(cfg_.queue_capacity_batches);
        q.bytes_per_tuple = bytes;
        double fetch = cfg_.zero_fetch
                           ? 0.0
                           : machine_.FetchCostNs(instances_[pinst].socket,
                                                  instances_[cinst].socket,
                                                  bytes);
        if (cfg_.prefetch_adjust && fetch > 0.0) {
          fetch *=
              PrefetchFactor(std::ceil(bytes / machine_.cache_line_bytes()));
        }
        q.fetch_ns_per_tuple = fetch;
        const int qidx = static_cast<int>(queues_.size());
        queues_.push_back(std::move(q));
        instances_[cinst].in_queues.push_back(qidx);

        OutBuffer buf;
        buf.queue_index = qidx;
        const int bidx = static_cast<int>(producer.buffers.size());
        producer.buffers.push_back(buf);
        route.buffers.push_back(bidx);
      }
    }
  }
  queue_waiters_.assign(queues_.size(), {});
  link_traffic_bytes_.assign(
      static_cast<size_t>(machine_.num_sockets()) * machine_.num_sockets(),
      0.0);
  return Status::OK();
}

void SimEngine::Schedule(int inst, double at_ns) {
  Instance& in = instances_[inst];
  if (in.scheduled || in.blocked) return;
  in.scheduled = true;
  events_.push({at_ns, event_seq_++, inst});
}

void SimEngine::PushOrStall(int inst, int queue_idx, Batch batch,
                            double now) {
  Instance& in = instances_[inst];
  EdgeQueue& q = queues_[queue_idx];
  if (in.blocked || q.Full()) {
    in.stalled.emplace_back(queue_idx, std::move(batch));
    if (!in.blocked) {
      in.blocked = true;
      in.blocked_since_ns = now;
    }
    auto& waiters = queue_waiters_[queue_idx];
    if (std::find(waiters.begin(), waiters.end(), inst) == waiters.end()) {
      waiters.push_back(inst);
    }
    return;
  }
  q.batches.push_back(std::move(batch));
  // Wake an idle consumer.
  Instance& consumer = instances_[q.to_instance];
  if (!consumer.scheduled && !consumer.blocked) {
    Schedule(q.to_instance, std::max(now, consumer.free_at_ns));
  }
}

void SimEngine::WakeWaiters(int queue_idx, double now) {
  auto& waiters = queue_waiters_[queue_idx];
  if (waiters.empty()) return;
  std::vector<int> still_waiting;
  for (const int w : waiters) {
    Instance& in = instances_[w];
    // Retry every stalled push in order; stop at the first that is
    // still blocked (batch order per edge must be preserved).
    std::vector<std::pair<int, Batch>> remaining;
    for (auto& [qidx, batch] : in.stalled) {
      if (!queues_[qidx].Full()) {
        EdgeQueue& q = queues_[qidx];
        q.batches.push_back(std::move(batch));
        Instance& consumer = instances_[q.to_instance];
        if (!consumer.scheduled && !consumer.blocked) {
          Schedule(q.to_instance, std::max(now, consumer.free_at_ns));
        }
      } else {
        remaining.emplace_back(qidx, std::move(batch));
      }
    }
    in.stalled = std::move(remaining);
    if (in.stalled.empty()) {
      in.blocked = false;
      if (in.blocked_since_ns >= 0) {
        in.stats.blocked_ns += ClipToWindow(in.blocked_since_ns, now);
        in.blocked_since_ns = -1.0;
      }
      Schedule(w, std::max(now, in.free_at_ns));
    } else {
      if (std::find(still_waiting.begin(), still_waiting.end(), w) ==
          still_waiting.end()) {
        still_waiting.push_back(w);
      }
    }
  }
  waiters = std::move(still_waiting);
}

void SimEngine::FlushFull(int inst, int buffer_idx, double now) {
  Instance& in = instances_[inst];
  OutBuffer& buf = in.buffers[buffer_idx];
  while (buf.tuples >= cfg_.batch_size && !in.blocked) {
    const double avg_origin = buf.origin_sum_ns / buf.tuples;
    Batch b;
    b.count = static_cast<uint32_t>(cfg_.batch_size);
    b.origin_sum_ns = avg_origin * cfg_.batch_size;
    buf.tuples -= cfg_.batch_size;
    buf.origin_sum_ns -= b.origin_sum_ns;
    if (buf.tuples < 1e-9) {
      buf.tuples = 0.0;
      buf.origin_sum_ns = 0.0;
    }
    PushOrStall(inst, buf.queue_index, std::move(b), now);
  }
}

void SimEngine::FlushPartial(int inst, int buffer_idx, double now) {
  Instance& in = instances_[inst];
  OutBuffer& buf = in.buffers[buffer_idx];
  if (in.blocked || buf.tuples < 1.0) return;
  const auto count = static_cast<uint32_t>(buf.tuples);
  const double avg_origin = buf.origin_sum_ns / buf.tuples;
  Batch b;
  b.count = count;
  b.origin_sum_ns = avg_origin * count;
  buf.tuples -= count;
  buf.origin_sum_ns -= b.origin_sum_ns;
  if (buf.tuples < 1e-9) {
    buf.tuples = 0.0;
    buf.origin_sum_ns = 0.0;
  }
  PushOrStall(inst, buf.queue_index, std::move(b), now);
}

void SimEngine::EmitOutputs(int inst, double count, double origin_sum,
                            double now) {
  Instance& in = instances_[inst];
  const double avg_origin = count > 0 ? origin_sum / count : now;
  for (auto& route : in.routes) {
    const double out = count * in.stream_selectivity[route.stream_id];
    if (out <= 0.0 || route.buffers.empty()) continue;
    if (route.broadcast) {
      for (const int bidx : route.buffers) {
        in.buffers[bidx].tuples += out;
        in.buffers[bidx].origin_sum_ns += out * avg_origin;
        FlushFull(inst, bidx, now);
      }
    } else {
      // Batch-level round-robin across consumer replicas (the engine's
      // shuffle/fields partitioner is uniform at scale).
      const int bidx =
          route.buffers[route.rr_cursor % route.buffers.size()];
      ++route.rr_cursor;
      in.buffers[bidx].tuples += out;
      in.buffers[bidx].origin_sum_ns += out * avg_origin;
      FlushFull(inst, bidx, now);
    }
  }
}

void SimEngine::TryWork(int inst, double now) {
  Instance& in = instances_[inst];
  in.scheduled = false;
  if (in.blocked) return;
  now = std::max(now, in.free_at_ns);
  if (now >= end_ns_) return;

  if (in.is_spout) {
    double batch = cfg_.batch_size;
    if (spout_rate_per_instance_ > 0.0) {
      in.spout_tokens += (now - in.spout_last_refill_ns) / kNsPerSec *
                         spout_rate_per_instance_;
      in.spout_last_refill_ns = now;
      in.spout_tokens =
          std::min(in.spout_tokens,
                   engine::SpoutBurstCap(cfg_.batch_size,
                                         spout_rate_per_instance_));
      if (in.spout_tokens < batch) {
        const double wait_s =
            (batch - in.spout_tokens) / spout_rate_per_instance_;
        Schedule(inst, now + wait_s * kNsPerSec);
        return;
      }
      in.spout_tokens -= batch;
    }
    const double proc_ns = batch * in.te_ns;
    const double end = now + proc_ns;
    in.stats.busy_ns += ClipToWindow(now, end);
    if (InWindow(end)) {
      in.stats.tuples_in += static_cast<uint64_t>(batch);
      in.stats.tuples_out += static_cast<uint64_t>(batch);
    }
    in.free_at_ns = end;
    EmitOutputs(inst, batch, batch * now, end);
    if (!in.blocked) Schedule(inst, end);
    return;
  }

  // Bolt: round-robin over input queues for one non-empty queue.
  int qidx = -1;
  for (size_t k = 0; k < in.in_queues.size(); ++k) {
    const int candidate =
        in.in_queues[(in.in_cursor + k) % in.in_queues.size()];
    if (!queues_[candidate].batches.empty()) {
      qidx = candidate;
      in.in_cursor = (in.in_cursor + k + 1) % in.in_queues.size();
      break;
    }
  }
  if (qidx < 0) return;  // idle: a future push reschedules us

  EdgeQueue& q = queues_[qidx];
  Batch batch = std::move(q.batches.front());
  q.batches.pop_front();
  WakeWaiters(qidx, now);

  const double per_tuple_ns = in.te_ns + q.fetch_ns_per_tuple;
  const double proc_ns = batch.count * per_tuple_ns;
  const double end = now + proc_ns;
  in.stats.busy_ns += ClipToWindow(now, end);

  const int from_s = instances_[q.from_instance].socket;
  if (from_s != in.socket && InWindow(now)) {
    link_traffic_bytes_[static_cast<size_t>(from_s) *
                            machine_.num_sockets() +
                        in.socket] += batch.count * q.bytes_per_tuple;
  }
  if (InWindow(end)) in.stats.tuples_in += batch.count;

  if (in.is_sink) {
    if (InWindow(end)) {
      sink_tuples_ += batch.count;
      // Weighted by batch size so sparse slow paths do not dominate
      // the distribution.
      latency_ns_.AddN(end - batch.origin_sum_ns / batch.count,
                       batch.count);
    }
  } else {
    EmitOutputs(inst, batch.count, batch.origin_sum_ns, end);
    if (InWindow(end)) {
      // tuples_out tracked via per-edge selectivity and fan-out.
      double out = 0.0;
      for (const auto& r : in.routes) {
        out += batch.count * in.stream_selectivity[r.stream_id] *
               (r.broadcast ? static_cast<double>(r.buffers.size()) : 1.0);
      }
      in.stats.tuples_out += static_cast<uint64_t>(out);
    }
  }
  in.free_at_ns = end;
  if (!in.blocked) Schedule(inst, end);
}

void SimEngine::GlobalFlush(double now) {
  for (int i = 0; i < static_cast<int>(instances_.size()); ++i) {
    Instance& in = instances_[i];
    if (in.blocked) continue;
    for (int b = 0; b < static_cast<int>(in.buffers.size()); ++b) {
      FlushPartial(i, b, now);
      if (in.blocked) break;
    }
  }
}

StatusOr<SimResult> SimEngine::Run() {
  BRISK_RETURN_NOT_OK(BuildNetwork());
  warmup_ns_ = cfg_.warmup_s * kNsPerSec;
  end_ns_ = (cfg_.warmup_s + cfg_.duration_s) * kNsPerSec;
  if (cfg_.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }

  int spout_instances = 0;
  for (const auto& in : instances_) spout_instances += in.is_spout ? 1 : 0;
  if (spout_instances == 0) {
    return Status::InvalidArgument("plan has no spout instances");
  }
  spout_rate_per_instance_ =
      cfg_.input_rate_tps > 0 ? cfg_.input_rate_tps / spout_instances : 0.0;

  for (int i = 0; i < static_cast<int>(instances_.size()); ++i) {
    if (instances_[i].is_spout) Schedule(i, 0.0);
  }
  const double flush_step = cfg_.flush_interval_s * kNsPerSec;
  double next_flush = flush_step;
  events_.push({next_flush, event_seq_++, -1});

  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    if (ev.time_ns >= end_ns_) break;
    if (++events_processed_ > kMaxEvents) {
      return Status::Internal("simulation exceeded event budget");
    }
    if (ev.instance < 0) {
      GlobalFlush(ev.time_ns);
      next_flush = ev.time_ns + flush_step;
      events_.push({next_flush, event_seq_++, -1});
      continue;
    }
    TryWork(ev.instance, ev.time_ns);
  }

  SimResult result;
  result.throughput_tps = sink_tuples_ / cfg_.duration_s;
  result.latency_ns = latency_ns_;
  result.instances.reserve(instances_.size());
  for (auto& in : instances_) {
    if (in.blocked && in.blocked_since_ns >= 0) {
      in.stats.blocked_ns += ClipToWindow(in.blocked_since_ns, end_ns_);
    }
    result.instances.push_back(in.stats);
  }
  result.link_traffic_bps.reserve(link_traffic_bytes_.size());
  for (const double bytes : link_traffic_bytes_) {
    result.link_traffic_bps.push_back(bytes / cfg_.duration_s);
  }
  result.events = events_processed_;
  return result;
}

}  // namespace

StatusOr<SimResult> Simulate(const hw::MachineSpec& machine,
                             const model::ProfileSet& profiles,
                             const model::ExecutionPlan& plan,
                             const SimConfig& config) {
  SimEngine engine(machine, profiles, plan, config);
  return engine.Run();
}

}  // namespace brisk::sim
