// StreamBox-like morsel-driven comparator engine (Fig. 11, §6.3).
//
// StreamBox [Miao et al., ATC'17] executes a pipeline by having a pool
// of workers pull "morsels" (record batches tagged with their pipeline
// stage) from a centralized, lock-protected scheduler. That design
// trades pipeline parallelism for lower per-operator communication —
// and its two scaling limiters, which the paper measures, are exactly
// what this implementation reproduces for real:
//   1. the centralized task queue with locking primitives, which
//      serializes scheduling as core counts grow;
//   2. state shuffling (e.g. WC's word -> counter partitioning) through
//      lock-guarded containers, which adds contention (and, on real
//      NUMA hardware, remote misses).
// An optional epoch-ordering mode reproduces StreamBox's
// order-guaranteeing containers; disabling it gives the paper's
// "StreamBox (out-of-order)" variant.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"

namespace brisk::streambox {

/// A batch of records at a given pipeline stage.
struct Morsel {
  int stage = 0;
  uint64_t epoch = 0;  ///< ordering domain (ordered mode)
  std::vector<Tuple> records;
};

/// One pipeline stage: transforms a morsel's records into zero or more
/// output records (which the engine wraps into next-stage morsels).
/// Must be thread-safe: any worker may run any stage at any time, so
/// shared state needs its own locking (that contention is the point).
using StageFn =
    std::function<void(const Morsel& in, std::vector<Tuple>* out)>;

struct StreamBoxConfig {
  int num_workers = 4;
  int morsel_size = 256;
  /// Epoch-ordered processing (StreamBox's default): stage s admits
  /// epoch e only after e-1 completed at s. Off = out-of-order variant.
  bool ordered = true;
  /// Bound on pending morsels before the source throttles.
  size_t max_pending = 4096;
};

struct StreamBoxStats {
  uint64_t records_processed = 0;  ///< records through the final stage
  double duration_s = 0.0;
  double throughput_tps = 0.0;
  uint64_t scheduler_acquisitions = 0;
};

/// The engine: construct with a source + stages, then Run for a
/// wall-clock duration.
class StreamBoxEngine {
 public:
  /// `source` fills a morsel's records (stage 0 input); `stages[i]`
  /// processes stage i and feeds stage i+1; the last stage's output
  /// count is the measured throughput.
  StreamBoxEngine(std::function<void(std::vector<Tuple>*)> source,
                  std::vector<StageFn> stages, StreamBoxConfig config)
      : source_(std::move(source)),
        stages_(std::move(stages)),
        config_(config) {}

  StatusOr<StreamBoxStats> Run(double seconds);

 private:
  std::function<void(std::vector<Tuple>*)> source_;
  std::vector<StageFn> stages_;
  StreamBoxConfig config_;
};

/// Builds the WC pipeline used in Fig. 11: sentence generation ->
/// split -> hash-partitioned count (lock-guarded hash containers —
/// StreamBox's shuffle step).
StreamBoxEngine MakeWordCountStreamBox(const StreamBoxConfig& config,
                                       uint64_t seed = 11);

/// Analytic scaling curve for core counts beyond this host (DESIGN.md
/// §1 substitution): throughput under a centralized scheduler with
/// per-morsel critical section `sched_ns`, per-record work `work_ns`,
/// morsel size B, and per-record shuffle RMA `shuffle_rma_ns` charged
/// once workers span more than `cores_per_socket` cores.
double StreamBoxModelThroughput(int cores, int cores_per_socket,
                                double work_ns, double sched_ns,
                                double shuffle_rma_ns, int morsel_size,
                                bool ordered);

}  // namespace brisk::streambox
