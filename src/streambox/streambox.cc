#include "streambox/streambox.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"

namespace brisk::streambox {

namespace {

/// The centralized scheduler: a single lock-protected morsel queue —
/// deliberately the design StreamBox uses and the bottleneck §6.3
/// identifies at high core counts.
class CentralScheduler {
 public:
  explicit CentralScheduler(const StreamBoxConfig& config)
      : config_(config) {}

  void Push(Morsel m) {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquisitions_;
    queue_.push_back(std::move(m));
  }

  bool TryPop(Morsel* out) {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquisitions_;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (config_.ordered && it->stage > 0 &&
          it->epoch != next_epoch_admitted_[it->stage]) {
        continue;  // ordering container: epoch not yet admitted
      }
      *out = std::move(*it);
      queue_.erase(it);
      return true;
    }
    return false;
  }

  void CompleteEpoch(int stage, uint64_t epoch) {
    if (!config_.ordered) return;
    std::lock_guard<std::mutex> lock(mu_);
    ++acquisitions_;
    auto& next = next_epoch_admitted_[stage];
    if (epoch >= next) next = epoch + 1;
  }

  size_t SizeLocked() {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  uint64_t acquisitions() const { return acquisitions_; }

 private:
  const StreamBoxConfig& config_;
  std::mutex mu_;
  std::deque<Morsel> queue_;
  std::unordered_map<int, uint64_t> next_epoch_admitted_;
  uint64_t acquisitions_ = 0;
};

}  // namespace

StatusOr<StreamBoxStats> StreamBoxEngine::Run(double seconds) {
  if (config_.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (stages_.empty()) {
    return Status::InvalidArgument("pipeline has no stages");
  }

  CentralScheduler scheduler(config_);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> final_records{0};
  std::atomic<uint64_t> epoch_counter{0};

  auto worker = [&] {
    Morsel m;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!scheduler.TryPop(&m)) {
        // Idle worker generates source input if the backlog allows —
        // StreamBox's sources are just another task type.
        if (scheduler.SizeLocked() < config_.max_pending) {
          Morsel src;
          src.stage = 0;
          src.epoch = epoch_counter.fetch_add(1);
          src.records.reserve(config_.morsel_size);
          source_(&src.records);
          if (!src.records.empty()) scheduler.Push(std::move(src));
        } else {
          std::this_thread::yield();
        }
        continue;
      }
      std::vector<Tuple> out;
      stages_[m.stage](m, &out);
      scheduler.CompleteEpoch(m.stage, m.epoch);
      const int next_stage = m.stage + 1;
      if (next_stage >= static_cast<int>(stages_.size())) {
        final_records.fetch_add(out.empty() ? m.records.size()
                                            : out.size(),
                                std::memory_order_relaxed);
        continue;
      }
      // Chop output into next-stage morsels.
      size_t off = 0;
      while (off < out.size()) {
        Morsel next;
        next.stage = next_stage;
        next.epoch = m.epoch;
        const size_t take = std::min(
            static_cast<size_t>(config_.morsel_size), out.size() - off);
        next.records.assign(std::make_move_iterator(out.begin() + off),
                            std::make_move_iterator(out.begin() + off + take));
        off += take;
        scheduler.Push(std::move(next));
      }
      if (out.empty() && next_stage < static_cast<int>(stages_.size())) {
        // Stage produced nothing: nothing to forward.
      }
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(config_.num_workers);
  for (int i = 0; i < config_.num_workers; ++i) threads.emplace_back(worker);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& t : threads) t.join();

  StreamBoxStats stats;
  stats.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stats.records_processed = final_records.load();
  stats.throughput_tps = stats.records_processed / stats.duration_s;
  stats.scheduler_acquisitions = scheduler.acquisitions();
  return stats;
}

StreamBoxEngine MakeWordCountStreamBox(const StreamBoxConfig& config,
                                       uint64_t seed) {
  // Shared state for the shuffle/count stage: partitioned hash maps,
  // each behind its own lock — StreamBox's data shuffling step. Worker
  // threads contend here exactly as §6.3 describes.
  constexpr int kShards = 64;
  struct CountShards {
    std::mutex locks[kShards];
    std::unordered_map<std::string, int64_t> maps[kShards];
  };
  auto shards = std::make_shared<CountShards>();
  auto rng = std::make_shared<std::mutex>();  // source RNG guard
  auto gen = std::make_shared<Rng>(seed);

  auto source = [rng, gen, n = config.morsel_size](std::vector<Tuple>* out) {
    static const char* kWords[] = {"alpha", "bravo", "charlie", "delta",
                                   "echo",  "fox",   "golf",    "hotel"};
    std::lock_guard<std::mutex> lock(*rng);
    for (int i = 0; i < n; ++i) {
      std::string sentence;
      for (int w = 0; w < 10; ++w) {
        if (w) sentence += ' ';
        sentence += kWords[gen->NextBounded(std::size(kWords))];
        sentence += std::to_string(gen->NextBounded(97));
      }
      Tuple t;
      t.fields.emplace_back(std::move(sentence));
      out->push_back(std::move(t));
    }
  };

  StageFn split = [](const Morsel& in, std::vector<Tuple>* out) {
    for (const Tuple& t : in.records) {
      const std::string_view s = t.GetString(0);
      size_t start = 0;
      while (start < s.size()) {
        size_t end = s.find(' ', start);
        if (end == std::string_view::npos) end = s.size();
        if (end > start) {
          Tuple w;
          w.fields.emplace_back(s.substr(start, end - start));
          out->push_back(std::move(w));
        }
        start = end + 1;
      }
    }
  };

  StageFn count = [shards, kShards](const Morsel& in,
                                    std::vector<Tuple>* out) {
    for (const Tuple& t : in.records) {
      const std::string_view word = t.GetString(0);
      const size_t shard = HashField(t.fields[0]) % kShards;
      int64_t c;
      {
        std::lock_guard<std::mutex> lock(shards->locks[shard]);
        c = ++shards->maps[shard][std::string(word)];
      }
      Tuple r;
      r.fields.emplace_back(word);
      r.fields.emplace_back(c);
      out->push_back(std::move(r));
    }
  };

  return StreamBoxEngine(std::move(source), {split, count}, config);
}

double StreamBoxModelThroughput(int cores, int cores_per_socket,
                                double work_ns, double sched_ns,
                                double shuffle_rma_ns, int morsel_size,
                                bool ordered) {
  BRISK_CHECK(cores >= 1 && morsel_size >= 1);
  // Per-record cost: parallel work + shuffle RMA once the worker pool
  // spans sockets (shuffled state is remote for (k-1)/k of accesses
  // with k sockets in play — the 6 misses/k-events VTune observation
  // in §6.3).
  const int sockets_spanned = (cores + cores_per_socket - 1) /
                              cores_per_socket;
  const double remote_fraction =
      sockets_spanned <= 1
          ? 0.0
          : static_cast<double>(sockets_spanned - 1) / sockets_spanned;
  const double per_record = work_ns + remote_fraction * shuffle_rma_ns;
  const double parallel_tput = cores * 1e9 / per_record;

  // Centralized scheduler: every morsel crosses one global critical
  // section. Under contention the effective critical section grows
  // with the number of waiters (cache-line ping-pong on the lock +
  // queue scans over a longer backlog). Ordered mode pays the critical
  // section several times per morsel (admission scan + epoch
  // completion) and its scans extend over morsels it must skip —
  // the paper measures the ordered engine collapsing to ~471 K
  // records/s at 144 cores while out-of-order merely flattens.
  const double base_critical = sched_ns * (ordered ? 8.0 : 1.0);
  const double contention = 1.0 + (ordered ? 0.5 : 0.08) * cores;
  const double scheduler_cap =
      morsel_size * 1e9 / (base_critical * contention);
  return std::min(parallel_tput, scheduler_cap);
}

}  // namespace brisk::streambox
