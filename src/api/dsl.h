// brisk::dsl — a typed, fluent dataflow layer over the Storm-style API.
//
// A Pipeline is written as a chain of verbs on Stream handles and
// *lowers* onto the validated api::Topology (§2.2's operator/stream
// DAG), so the profiler, the RLAS optimizer, the simulator, and the
// engine consume DSL programs unchanged. Each verb maps onto a paper
// concept:
//
//   DSL verb                     | Topology lowering (paper anchor)
//   -----------------------------+------------------------------------
//   Pipeline::Source(...)        | spout vertex (§2.2 "Spout")
//   .Map / .Filter / .FlatMap    | bolt vertex, shuffle-grouped input
//                                | (§2.2 "shuffle grouping")
//   .KeyBy(f).Aggregate(init,fn) | stateful bolt, fields grouping
//                                | hashed on field f (§2.2 "fields
//                                | grouping" — state partitioning)
//   .Broadcast() / .Global()     | broadcast / global grouping on the
//                                | next attached consumer
//   .SideOutput("name")          | named output stream (App. A's
//                                | declareStream), id resolved by name
//   .Parallelism(n)              | base replication the optimizer's
//                                | Algorithm 1 scales from (§4)
//   .Sink(...)                   | terminal bolt; the throughput
//                                | measurement point (§2.2)
//
// User code is plain lambdas; the lowering synthesizes Spout/Operator
// adapters around them. Per-replica state is natural: every factory
// runs once per replica at Prepare time, and plain-function forms are
// copied per replica, so mutable captures are replica-local without
// any synchronization (the engine's one-thread-per-instance contract).
//
// The DSL covers single-input chains with fan-out (attach several
// consumers to one Stream handle) and named side outputs. Multi-input
// operators (Linear Road's toll_notify) remain the Storm-compatible
// layer's domain — build those with api::TopologyBuilder and run them
// through the same Job facade.
//
// Lifetime: Stream/KeyedStream handles borrow the Pipeline and are
// invalidated when it is moved (e.g. into Job::Of) or destroyed.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/kernels.h"
#include "api/operator.h"
#include "api/topology.h"
#include "common/status.h"
#include "common/tuple.h"
#include "io/egress.h"
#include "io/mmap_source.h"
#include "io/socket.h"

namespace brisk::dsl {

class Pipeline;
class Stream;
class KeyedStream;

/// Output sink handed to DSL lambdas: api::OutputCollector plus the
/// operator's declared stream names, so side outputs are addressed by
/// name instead of raw stream ids.
class Collector {
 public:
  Collector(api::OutputCollector* out, const std::vector<std::string>* streams)
      : out_(out), streams_(streams) {}

  /// Emits on the default stream.
  void Emit(Tuple t) { out_->Emit(std::move(t)); }

  /// Emits `fields` on the default stream, carrying `from`'s origin
  /// timestamp so end-to-end latency accounting survives the hop.
  void Emit(const Tuple& from, std::initializer_list<Field> fields) {
    out_->Emit(Derive(from, fields));
  }

  /// Emits on a named side-output stream (declared with
  /// Stream::SideOutput). Returns false — and drops the tuple — when
  /// this operator declares no such stream. Resolution is a linear
  /// scan over the (few) declared names per call; hot side-output
  /// paths should resolve once at Prepare (OperatorContext::StreamId
  /// inside a Process/Source factory) and use the id overload.
  bool EmitTo(const std::string& stream, Tuple t);
  bool EmitTo(const std::string& stream, const Tuple& from,
              std::initializer_list<Field> fields) {
    return EmitTo(stream, Derive(from, fields));
  }

  /// Emits on a stream id resolved earlier — no per-tuple name lookup.
  void EmitTo(uint16_t stream_id, Tuple t) {
    out_->EmitTo(stream_id, std::move(t));
  }

 private:
  static Tuple Derive(const Tuple& from, std::initializer_list<Field> fields) {
    Tuple t(fields);
    t.origin_ts_ns = from.origin_ts_ns;
    return t;
  }

  api::OutputCollector* out_;
  const std::vector<std::string>* streams_;
};

/// Source body: produce up to `max_tuples`, return how many (0 ends a
/// bounded source). The source stamps Tuple::origin_ts_ns itself.
using SourceFn = std::function<size_t(size_t max_tuples, Collector& out)>;
/// Builds one SourceFn per replica at Prepare time (per-replica
/// seeding via ctx.replica_index).
using SourceFactory = std::function<SourceFn(const api::OperatorContext&)>;

/// General bolt body: zero or more emits per input tuple.
using ProcessFn = std::function<void(const Tuple& in, Collector& out)>;
/// Builds one ProcessFn per replica at Prepare time.
using ProcessFactory = std::function<ProcessFn(const api::OperatorContext&)>;

/// One-to-one transform; the result inherits the input's origin
/// timestamp unless the lambda set one.
using MapFn = std::function<Tuple(const Tuple& in)>;
/// Keep-predicate: true forwards the tuple unchanged.
using FilterFn = std::function<bool(const Tuple& in)>;
/// Terminal consumer (telemetry, side effects); emits nothing.
using SinkFn = std::function<void(const Tuple& in)>;

/// Keyed-state hand-off hooks a replica body may expose for live plan
/// migration (api::Operator::{Export,Import}KeyedState forwarded to
/// lambda land). Both run on the migration thread while the engine is
/// quiesced, never concurrently with the body.
struct StateHooks {
  std::function<std::vector<api::KeyedStateEntry>()> export_state;
  std::function<void(std::vector<api::KeyedStateEntry>)> import_state;
  /// Checkpoint hooks (api::Operator::{Snapshot,Restore}KeyedState
  /// forwarded to lambda land). Snapshot copies without clearing;
  /// Restore installs into a fresh replica during crash recovery.
  std::function<std::vector<api::CheckpointEntry>()> snapshot_state;
  std::function<void(std::vector<api::CheckpointEntry>)> restore_state;
};

/// One prepared replica: the per-tuple body plus (optional) migration
/// hooks that share its state.
struct ReplicaBody {
  ProcessFn fn;
  StateHooks hooks;
};
/// Builds one ReplicaBody per replica at Prepare time. Aggregate uses
/// this form so its per-key map is reachable from both the body and
/// the hooks; plain ProcessFactory verbs lower onto it with empty
/// hooks.
using ReplicaFactory = std::function<ReplicaBody(const api::OperatorContext&)>;

namespace detail {
/// Canonical map key for a tuple field (type-tagged so int 0x73... and
/// a string of the same bytes never collide).
std::string KeyOf(const Field& f);
/// Inverse of KeyOf: reconstructs the Field (exact for all three
/// alternatives), so exported state re-hashes like the live tuples do.
Field FieldOf(const std::string& key);
}  // namespace detail

/// Handle to one operator's output stream plus the grouping the *next*
/// attached consumer subscribes with (shuffle unless overridden).
/// Cheap value type; borrows the Pipeline.
class Stream {
 public:
  /// The general verb: attaches a bolt built by `factory` (one
  /// ProcessFn per replica). Every other verb lowers onto this.
  Stream Process(const std::string& name, ProcessFactory factory) const;

  /// Attaches a bolt running `fn` per input tuple. The function object
  /// is copied per replica, so mutable captures are replica-local.
  Stream FlatMap(const std::string& name, ProcessFn fn) const;

  /// Attaches a one-to-one transform.
  Stream Map(const std::string& name, MapFn fn) const;

  /// Attaches a filter forwarding tuples `fn` accepts.
  Stream Filter(const std::string& name, FilterFn fn) const;

  // Kernel-descriptor verbs (api/kernels.h). The attached bolt is an
  // api::KernelBolt, so the engine can dispatch whole batches through
  // its compiled pipeline, and the fusion pass can concatenate
  // adjacent kernel chains into one. Row-wise lambda verbs remain the
  // fallback for anything a descriptor cannot express.

  /// Attaches a kernel-backed map (e.g. api::MapOf / MapNumConst).
  Stream Map(const std::string& name, api::KernelDesc kernel) const;
  /// Attaches a kernel-backed filter (api::FilterOf / FilterCmpConst).
  Stream Filter(const std::string& name, api::KernelDesc kernel) const;
  /// Attaches a kernel-backed expanding transform (api::FlatMapOf).
  Stream FlatMap(const std::string& name, api::KernelDesc kernel) const;

  /// Keys the stream by tuple field `field`: downstream state is
  /// partitioned with fields grouping (same key → same replica).
  KeyedStream KeyBy(size_t field) const;

  /// Next attached consumer receives every tuple on every replica.
  Stream Broadcast() const;
  /// Next attached consumer receives all tuples on replica 0.
  Stream Global() const;
  /// Back to round-robin (the default).
  Stream Shuffle() const;

  /// Attaches a terminal consumer.
  Stream Sink(const std::string& name, SinkFn fn) const;

  /// Interop: attaches a Storm-layer Operator implementation as a DSL
  /// bolt — the full virtual surface (Flush, keyed-state hooks) where
  /// lambda verbs only cover Process. The egress verbs lower onto this.
  Stream Operate(const std::string& name, api::OperatorFactory factory) const;

  // Egress verbs (src/io): terminal bolts writing every input tuple as
  // a framed record. Binary egress round-trips tuples exactly, so
  // ToFile output replays through Pipeline::FromFile.

  /// Writes this stream to a file (replicas > 1 write ".r<i>" parts).
  Stream ToFile(const std::string& name, io::EgressOptions options) const;
  Stream ToFile(const std::string& name, std::string path,
                io::RecordCodec codec = io::RecordCodec::kBinary) const;
  /// Writes this stream to a TCP endpoint (one connection per replica).
  Stream ToSocket(const std::string& name, std::string host, uint16_t port,
                  io::RecordCodec codec = io::RecordCodec::kBinary) const;

  /// Sets the base parallelism of the operator this stream leaves —
  /// the replication level the optimizer scales from.
  Stream Parallelism(int n) const;

  /// Declares a named side-output stream on this operator (id 1+, in
  /// declaration order) and returns a handle to it; tuples reach it
  /// via Collector::EmitTo(name, ...).
  Stream SideOutput(const std::string& stream) const;

 private:
  friend class Pipeline;
  friend class KeyedStream;

  Stream(Pipeline* pipe, int node, std::string stream)
      : pipe_(pipe), node_(node), stream_(std::move(stream)) {}

  Stream Attach(const std::string& name, ReplicaFactory factory,
                api::GroupingType grouping, size_t key_field) const;
  Stream Attach(const std::string& name, ProcessFactory factory,
                api::GroupingType grouping, size_t key_field) const;
  Stream AttachKernel(const std::string& name, api::KernelDesc kernel,
                      api::GroupingType grouping, size_t key_field) const;

  Pipeline* pipe_;
  int node_;
  std::string stream_;  ///< producer stream this handle refers to
  api::GroupingType grouping_ = api::GroupingType::kShuffle;
  size_t key_field_ = 0;
};

/// A Stream keyed by one tuple field; produced by Stream::KeyBy.
class KeyedStream {
 public:
  /// Attaches a stateful per-key aggregation: one `State` (copied from
  /// `init`) per distinct key per replica, updated by `fn`, which also
  /// decides what to emit. Fields grouping guarantees all tuples of a
  /// key meet the same replica's state.
  ///
  /// State lives in one map keyed by a type-tagged byte string
  /// (detail::KeyOf), built per input tuple. Int/double keys produce a
  /// 9-byte SSO string (no heap), so the per-tuple cost over a
  /// hand-keyed map is one small construction + hash; operators where
  /// that matters can drop to KeyedStream::Process and key their own
  /// state.
  ///
  /// Aggregate also wires the live-migration StateHooks: when a plan
  /// migration changes this operator's replication, the engine exports
  /// every (key, State) entry, re-buckets by the fields-grouping hash,
  /// and imports each bucket into its new owner replica — counts and
  /// windows survive the re-partitioning.
  template <typename State>
  Stream Aggregate(
      const std::string& name, State init,
      std::function<void(State&, const Tuple&, Collector&)> fn) const {
    const size_t key = key_field_;
    ReplicaFactory factory = [init = std::move(init), fn = std::move(fn),
                              key](const api::OperatorContext&) -> ReplicaBody {
      auto states =
          std::make_shared<std::unordered_map<std::string, State>>();
      ReplicaBody body;
      body.fn = [states, init, fn, key](const Tuple& in, Collector& out) {
        auto [it, fresh] =
            states->try_emplace(detail::KeyOf(in.fields[key]), init);
        (void)fresh;
        fn(it->second, in, out);
      };
      body.hooks.export_state = [states]() {
        std::vector<api::KeyedStateEntry> out;
        out.reserve(states->size());
        for (auto& [k, v] : *states) {
          out.push_back({detail::FieldOf(k),
                         std::make_shared<State>(std::move(v))});
        }
        states->clear();
        return out;
      };
      body.hooks.import_state =
          [states](std::vector<api::KeyedStateEntry> entries) {
            for (auto& e : entries) {
              (*states)[detail::KeyOf(e.key)] =
                  std::move(*std::static_pointer_cast<State>(e.state));
            }
          };
      // Checkpoint hooks come for free when State is arithmetic (one
      // Field round-trips it exactly); richer States stay
      // non-checkpointable in the lambda form — use the kernel
      // Aggregate overload with an explicit codec instead.
      if constexpr (std::is_arithmetic_v<State>) {
        body.hooks.snapshot_state = [states]() {
          std::vector<api::CheckpointEntry> out;
          out.reserve(states->size());
          for (const auto& [k, v] : *states) {
            Tuple t;
            if constexpr (std::is_floating_point_v<State>) {
              t.fields.emplace_back(static_cast<double>(v));
            } else {
              t.fields.emplace_back(static_cast<int64_t>(v));
            }
            out.push_back({detail::FieldOf(k), std::move(t)});
          }
          return out;
        };
        body.hooks.restore_state =
            [states](std::vector<api::CheckpointEntry> entries) {
              for (auto& e : entries) {
                if constexpr (std::is_floating_point_v<State>) {
                  (*states)[detail::KeyOf(e.key)] =
                      static_cast<State>(e.state.fields[0].AsDouble());
                } else {
                  (*states)[detail::KeyOf(e.key)] =
                      static_cast<State>(e.state.fields[0].AsInt());
                }
              }
            };
      }
      return body;
    };
    return base_.Attach(name, std::move(factory),
                        api::GroupingType::kFields, key);
  }

  /// Kernel-descriptor aggregate: same per-key state model and
  /// migration behavior as the lambda form above, but declared as an
  /// api::KernelDesc so the engine updates keyed state batch at a
  /// time and the fusion pass can chain it. `fn` emits through an
  /// api::RowEmitter (unset origin timestamps inherit the input's).
  template <typename State>
  Stream Aggregate(
      const std::string& name, State init,
      std::function<void(State&, const Tuple&, api::RowEmitter&)> fn) const {
    return base_.AttachKernel(
        name,
        api::AggregateOf<State>(key_field_, std::move(init), std::move(fn),
                                1.0, name),
        api::GroupingType::kFields, key_field_);
  }

  /// Kernel aggregate with an explicit checkpoint codec for States a
  /// single arithmetic Field cannot carry (windows, sketches). The
  /// codec must round-trip the state bit-exactly — recovery differen-
  /// tial tests hold restored replicas to never-crashed behavior.
  template <typename State>
  Stream Aggregate(
      const std::string& name, State init,
      std::function<void(State&, const Tuple&, api::RowEmitter&)> fn,
      std::function<Tuple(const State&)> encode,
      std::function<State(const Tuple&)> decode) const {
    return base_.AttachKernel(
        name,
        api::AggregateOf<State>(key_field_, std::move(init), std::move(fn),
                                std::move(encode), std::move(decode), 1.0,
                                name),
        api::GroupingType::kFields, key_field_);
  }

  /// General fields-grouped bolt (state partitioning without the
  /// per-key map Aggregate maintains).
  Stream Process(const std::string& name, ProcessFactory factory) const {
    return base_.Attach(name, std::move(factory),
                        api::GroupingType::kFields, key_field_);
  }

 private:
  friend class Stream;
  KeyedStream(Stream base, size_t key_field)
      : base_(base), key_field_(key_field) {}

  Stream base_;
  size_t key_field_;
};

/// A dataflow program under construction. Create, chain verbs from
/// Source(...), then Build() (or hand the whole Pipeline to Job::Of,
/// which builds it for you).
class Pipeline {
 public:
  explicit Pipeline(std::string name) : name_(std::move(name)) {}

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;
  /// Moving is allowed (Job::Of takes the Pipeline by value) but
  /// invalidates outstanding Stream handles.
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// Adds a lambda source; `factory` builds one SourceFn per replica.
  Stream Source(const std::string& name, SourceFactory factory);
  /// Adds a stateless-construction source (the function object is
  /// copied per replica).
  Stream Source(const std::string& name, SourceFn fn);
  /// Interop: mounts an existing Storm-layer Spout implementation as a
  /// DSL source.
  Stream Source(const std::string& name, api::SpoutFactory spout);

  // Ingest verbs (src/io): external data as DSL sources.

  /// Reads a record file through the shared mmap source: all replicas
  /// share one mapping and split the file by slice (io/mmap_source.h).
  /// Positions are byte offsets, so file jobs checkpoint/restore to
  /// exact record boundaries.
  Stream FromFile(const std::string& name, io::FileSourceOptions options);

  /// Accepts framed records on a TCP listener shared by all replicas.
  /// Not replayable (checkpoints are refused) unless
  /// TcpSourceOptions::journal_dir is set.
  Stream FromSocket(const std::string& name,
                    std::shared_ptr<io::TcpListener> listener,
                    io::TcpSourceOptions options);
  Stream FromSocket(const std::string& name, const std::string& bind_addr,
                    uint16_t port, io::TcpSourceOptions options);

  /// Lowers the pipeline onto a validated api::Topology. All builder
  /// misuse (duplicate names, empty pipeline, ...) surfaces here, with
  /// the same deferred-error contract as TopologyBuilder::Build.
  StatusOr<api::Topology> Build() &&;

  const std::string& name() const { return name_; }

 private:
  friend class Stream;

  struct Sub {
    int producer;
    std::string stream;
    api::GroupingType grouping;
    size_t key_field;
  };
  struct Node {
    std::string name;
    bool is_source = false;
    api::SpoutFactory spout;   // interop source
    SourceFactory source;      // lambda source
    api::OperatorFactory bolt; // interop bolt (Stream::Operate)
    ReplicaFactory process;    // bolts and sinks (body + state hooks)
    std::vector<api::KernelDesc> kernels;  // kernel-backed verbs
    int parallelism = 1;
    std::vector<std::string> streams{"default"};
    std::vector<Sub> subs;
  };

  int AddNode(Node node) {
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size()) - 1;
  }

  std::string name_;
  std::vector<Node> nodes_;
};

}  // namespace brisk::dsl
