// brisk::Job — the one-call driver over the whole BriskStream stack.
//
// Job::Of(pipeline_or_topology)
//     .WithMachine(spec)          // Table 2 server or a custom spec
//     .WithConfig(engine_config)  // §5 engine modes, NUMA emulation
//     .WithPlanner(Planner::kRlas)
//     .Run(seconds);              // profile → optimize → deploy → report
//
// Run()/Deploy() internally execute the pipeline every caller used to
// hand-wire: profile each operator in isolation (§3.1) unless profiles
// were supplied, construct an execution plan with the selected planner
// (RLAS, §4, or a §6.4 baseline), stand up the NUMA emulator when the
// engine config asks for it, and drive BriskRuntime. The JobReport
// bundles the plan, the model's prediction for it, the engine's
// RunStats, and sink telemetry — the quantities the paper's figures
// are built from.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/dsl.h"
#include "api/topology.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "engine/config.h"
#include "engine/fault.h"
#include "engine/observed_profiles.h"
#include "engine/runtime.h"
#include "engine/supervisor.h"
#include "hardware/machine_spec.h"
#include "hardware/numa_emulator.h"
#include "model/execution_plan.h"
#include "model/operator_profile.h"
#include "model/perf_model.h"
#include "optimizer/dynamic.h"
#include "optimizer/rlas.h"
#include "profiler/profiler.h"

namespace brisk {

/// Plan-construction strategy: RLAS (§4) or one of the §6.4 baselines.
enum class Planner { kRlas, kFirstFit, kRoundRobin, kOsDefault };

const char* PlannerName(Planner planner);

/// One autopilot observe → re-optimize → migrate decision that led to
/// a live plan switch (ReoptDecision outcomes that kept the current
/// plan are not recorded).
struct MigrationRecord {
  double at_seconds = 0.0;  ///< wall-clock offset from engine start
  double drift = 0.0;       ///< observed profile drift that triggered it
  double expected_gain = 0.0;  ///< modeled relative throughput gain
  int moves = 0;
  int starts = 0;
  int stops = 0;
  bool applied = false;  ///< ApplyMigration succeeded
  std::string error;     ///< nonempty when applying failed
};

/// Everything one run produced, in one object.
struct JobReport {
  std::string job_name;
  Planner planner = Planner::kRlas;

  /// Keeps the plan's topology pointer valid for the report's lifetime.
  std::shared_ptr<const api::Topology> topology;

  /// True when the §3.1 profiler ran (no profiles were supplied).
  bool profiled = false;
  model::ProfileSet profiles;  ///< profiles the planner consumed

  model::ExecutionPlan plan;
  model::ModelResult model;  ///< the model's prediction for `plan`
  int scaling_iterations = 0;  ///< RLAS Algorithm 1 rounds (0 = baseline)
  double optimize_seconds = 0.0;

  engine::RunStats stats;      ///< engine-side counters
  uint64_t sink_tuples = 0;    ///< observed at the sink (§2.2's counter)
  Histogram sink_latency_ns;   ///< sampled end-to-end latency

  /// OK unless some quiesce drain ran past the configured timeout
  /// (then DeadlineExceeded, mirroring RunStats::drain_timed_out).
  Status drain_status;
  /// Checkpoint/recovery counters (all zero without WithSupervision /
  /// WithCheckpointing). final_status is Unavailable when the restart
  /// circuit breaker opened.
  engine::SupervisionReport supervision;

  /// Live migrations the autopilot applied (empty without
  /// WithAutopilot); `plan` remains the *initial* plan — the plan the
  /// job ended on is stats-side (BriskRuntime::plan()) and recorded
  /// step-wise here.
  std::vector<MigrationRecord> migrations;

  double sink_throughput_tps() const {
    return stats.duration_s > 0 ? static_cast<double>(sink_tuples) /
                                      stats.duration_s
                                : 0.0;
  }

  /// Tuples that went through compiled-pipeline batch dispatch, and
  /// their share of all task ingress (spout production included, so
  /// the ratio is an indicator, not an exact bolt share). > 0 proves
  /// compiled execution engaged; 0 means fully interpreted (no
  /// kernel-backed operators, or a config that forces the row path).
  uint64_t vectorized_tuples() const {
    uint64_t n = 0;
    for (const auto& t : stats.tasks) n += t.tuples_vec;
    return n;
  }
  double vectorized_ratio() const {
    uint64_t vec = 0;
    uint64_t all = 0;
    for (size_t i = 0; i < stats.tasks.size(); ++i) {
      vec += stats.tasks[i].tuples_vec;
      all += stats.tasks[i].tuples_in;
    }
    return all > 0 ? static_cast<double>(vec) / static_cast<double>(all)
                   : 0.0;
  }

  std::string ToString() const;
};

/// Fluent facade owning the profile → optimize → deploy pipeline.
/// Every With* is optional; defaults are a CI-sized 2-socket machine,
/// BriskStream's native engine config, and the RLAS planner.
class Job {
 public:
  /// Lowers the DSL pipeline immediately; lowering errors surface from
  /// Run()/Deploy().
  static Job Of(dsl::Pipeline pipeline);
  static Job Of(api::Topology topology);
  static Job Of(std::shared_ptr<const api::Topology> topology);

  /// Hardware the planner optimizes for (and the NUMA emulator
  /// charges). Default: MachineSpec::Symmetric(2, 4, 2.0, 100, 300,
  /// 40, 12) — small enough that optimized plans run on CI hosts.
  Job& WithMachine(hw::MachineSpec machine);

  /// Engine execution mode (§5): batching, legacy overheads, NUMA
  /// emulation, ingress rate. Default: EngineConfig::Brisk().
  Job& WithConfig(engine::EngineConfig config);

  /// Execution model on top of the current config: the socket-aware
  /// worker pool (default) or legacy thread-per-task.
  Job& WithExecutor(engine::ExecutorKind executor);

  Job& WithPlanner(Planner planner);

  /// RLAS search knobs (replica ceiling, placement options). The
  /// placement input rate also feeds the baseline planners.
  Job& WithPlannerOptions(opt::RlasOptions options);

  /// Supplies operator cost profiles, skipping the profiler stage.
  Job& WithProfiles(model::ProfileSet profiles);

  /// Profiler knobs for the auto-profiling stage.
  Job& WithProfiler(profiler::ProfilerConfig config);

  /// Telemetry the application's sinks report into; the report reads
  /// tuple counts and latency from it. (DSL pipelines wire this into
  /// their Sink lambdas; reset happens right before the engine starts
  /// so profiler traffic is not counted.)
  Job& WithTelemetry(std::shared_ptr<SinkTelemetry> telemetry);

  /// Deterministic run seed: every operator replica gets a stable
  /// derived seed in OperatorContext::seed, which the DSL source
  /// factories and the benchmark spouts feed into common/rng — two
  /// runs of the same seeded job produce the same tuple population.
  Job& WithSeed(uint64_t seed);

  /// Budget for every quiesce drain (graceful stop, migration pause,
  /// checkpoint pause). A drain that runs past it is surfaced as
  /// RunStats::drain_timed_out and JobReport::drain_status =
  /// DeadlineExceeded — the job still completes via the residual
  /// sweep, but the timeout is a reportable soft failure.
  Job& WithDrainTimeout(double seconds);

  /// Deterministic fault injection (engine/fault.h): crash or stall a
  /// replica after K tuples, wedge a channel push, fail a migration
  /// mid-protocol. Combined with WithSeed, every fault fires at the
  /// same tuple on every run.
  Job& WithFaults(engine::FaultPlan faults);

  /// Fault tolerance: supervise the deployed job with periodic
  /// checkpoints every `interval_s` (plus the initial one) and
  /// automatic crash/stall recovery with default SupervisorOptions.
  Job& WithCheckpointing(double interval_s);

  /// Fault tolerance with explicit knobs (heartbeat cadence, restart
  /// budget, backoff).
  Job& WithSupervision(engine::SupervisorOptions options);

  /// Autopilot: closes the paper's §5.3 loop on the deployed job. A
  /// controller thread wakes every `interval_s`, derives observed
  /// operator profiles from the engine's counters over the last window
  /// (engine/observed_profiles), runs DynamicReoptimizer::Check
  /// against the plan the job is running, and — when drift and modeled
  /// gain clear their thresholds — applies the resulting MigrationPlan
  /// live via BriskRuntime::ApplyMigration. Each applied (or failed)
  /// switch is recorded in JobReport::migrations. This one-argument
  /// form inherits the job's RLAS planner options for re-optimization.
  Job& WithAutopilot(double interval_s);
  /// Autopilot with explicit policy knobs (drift threshold, minimum
  /// modeled gain, RLAS options for the re-plan).
  Job& WithAutopilot(double interval_s, opt::DynamicOptions options);

  /// A deployed, running job. Stop() joins the autopilot (if any) and
  /// the engine, then finalizes the report; the destructor stops
  /// implicitly.
  class Deployment {
   public:
    ~Deployment();
    Deployment(const Deployment&) = delete;
    Deployment& operator=(const Deployment&) = delete;

    /// Stops the autopilot and the engine (idempotent) and returns the
    /// full report.
    const JobReport& Stop();

    /// Report so far (plan + prediction; run stats and the migration
    /// log only after Stop).
    const JobReport& report() const { return report_; }

    engine::BriskRuntime& runtime() { return *runtime_; }

    /// The fault-tolerance supervisor, or nullptr when the job was not
    /// configured with WithSupervision/WithCheckpointing. Useful for
    /// polling recovery progress (Supervisor::Snapshot).
    engine::Supervisor* supervisor() { return supervisor_.get(); }

    /// Applied-migration count so far (racy read; exact after Stop).
    int migrations_applied() const {
      return runtime_ ? runtime_->epoch() : 0;
    }

   private:
    friend class Job;
    Deployment() = default;

    /// Spawns the controller thread (Deploy calls this when the job
    /// was configured WithAutopilot). `observation` must express
    /// observed T_e in the same reference clock as the profiles the
    /// plan was built from, or unit mismatch reads as drift.
    void StartAutopilot(double interval_s, opt::DynamicOptions options,
                        hw::MachineSpec machine,
                        engine::ObservationConfig observation);
    void AutopilotLoop();
    void StopAutopilot();

    std::shared_ptr<const api::Topology> topo_;
    std::shared_ptr<SinkTelemetry> telemetry_;
    std::unique_ptr<hw::NumaEmulator> numa_;
    std::unique_ptr<engine::BriskRuntime> runtime_;
    std::unique_ptr<engine::Supervisor> supervisor_;
    bool stopped_ = false;
    JobReport report_;

    // Autopilot state (all owned by the controller thread between
    // StartAutopilot and StopAutopilot).
    double autopilot_interval_s_ = 0.0;
    opt::DynamicOptions autopilot_options_;
    hw::MachineSpec autopilot_machine_;
    engine::ObservationConfig autopilot_observation_;
    model::ExecutionPlan autopilot_plan_;       ///< plan the engine runs
    model::ProfileSet autopilot_profiles_;      ///< what it was planned for
    std::thread autopilot_thread_;
    std::mutex autopilot_mu_;
    std::condition_variable autopilot_cv_;
    bool autopilot_stop_ = false;
    std::vector<MigrationRecord> autopilot_records_;
  };

  /// Profile → optimize → deploy, run `seconds` of wall-clock, stop,
  /// report.
  StatusOr<JobReport> Run(double seconds);

  /// Profile → optimize → create and *start* the runtime; the caller
  /// owns when to Stop().
  StatusOr<std::unique_ptr<Deployment>> Deploy();

 private:
  Job() = default;

  Status init_error_;  ///< deferred pipeline-lowering error
  std::string name_;
  std::shared_ptr<const api::Topology> topo_;
  hw::MachineSpec machine_ =
      hw::MachineSpec::Symmetric(2, 4, 2.0, 100, 300, 40, 12);
  engine::EngineConfig config_ = engine::EngineConfig::Brisk();
  Planner planner_ = Planner::kRlas;
  opt::RlasOptions options_;
  std::optional<model::ProfileSet> profiles_;
  profiler::ProfilerConfig profiler_config_;
  std::shared_ptr<SinkTelemetry> telemetry_;
  bool autopilot_enabled_ = false;
  double autopilot_interval_s_ = 0.5;
  /// Explicit autopilot policy; unset = inherit the job's RLAS options.
  std::optional<opt::DynamicOptions> autopilot_options_;
  bool supervision_enabled_ = false;
  engine::SupervisorOptions supervisor_options_;
};

}  // namespace brisk
