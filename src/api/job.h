// brisk::Job — the one-call driver over the whole BriskStream stack.
//
// Job::Of(pipeline_or_topology)
//     .WithMachine(spec)          // Table 2 server or a custom spec
//     .WithConfig(engine_config)  // §5 engine modes, NUMA emulation
//     .WithPlanner(Planner::kRlas)
//     .Run(seconds);              // profile → optimize → deploy → report
//
// Run()/Deploy() internally execute the pipeline every caller used to
// hand-wire: profile each operator in isolation (§3.1) unless profiles
// were supplied, construct an execution plan with the selected planner
// (RLAS, §4, or a §6.4 baseline), stand up the NUMA emulator when the
// engine config asks for it, and drive BriskRuntime. The JobReport
// bundles the plan, the model's prediction for it, the engine's
// RunStats, and sink telemetry — the quantities the paper's figures
// are built from.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "api/dsl.h"
#include "api/topology.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "engine/config.h"
#include "engine/runtime.h"
#include "hardware/machine_spec.h"
#include "hardware/numa_emulator.h"
#include "model/execution_plan.h"
#include "model/operator_profile.h"
#include "model/perf_model.h"
#include "optimizer/rlas.h"
#include "profiler/profiler.h"

namespace brisk {

/// Plan-construction strategy: RLAS (§4) or one of the §6.4 baselines.
enum class Planner { kRlas, kFirstFit, kRoundRobin, kOsDefault };

const char* PlannerName(Planner planner);

/// Everything one run produced, in one object.
struct JobReport {
  std::string job_name;
  Planner planner = Planner::kRlas;

  /// Keeps the plan's topology pointer valid for the report's lifetime.
  std::shared_ptr<const api::Topology> topology;

  /// True when the §3.1 profiler ran (no profiles were supplied).
  bool profiled = false;
  model::ProfileSet profiles;  ///< profiles the planner consumed

  model::ExecutionPlan plan;
  model::ModelResult model;  ///< the model's prediction for `plan`
  int scaling_iterations = 0;  ///< RLAS Algorithm 1 rounds (0 = baseline)
  double optimize_seconds = 0.0;

  engine::RunStats stats;      ///< engine-side counters
  uint64_t sink_tuples = 0;    ///< observed at the sink (§2.2's counter)
  Histogram sink_latency_ns;   ///< sampled end-to-end latency

  double sink_throughput_tps() const {
    return stats.duration_s > 0 ? static_cast<double>(sink_tuples) /
                                      stats.duration_s
                                : 0.0;
  }

  std::string ToString() const;
};

/// Fluent facade owning the profile → optimize → deploy pipeline.
/// Every With* is optional; defaults are a CI-sized 2-socket machine,
/// BriskStream's native engine config, and the RLAS planner.
class Job {
 public:
  /// Lowers the DSL pipeline immediately; lowering errors surface from
  /// Run()/Deploy().
  static Job Of(dsl::Pipeline pipeline);
  static Job Of(api::Topology topology);
  static Job Of(std::shared_ptr<const api::Topology> topology);

  /// Hardware the planner optimizes for (and the NUMA emulator
  /// charges). Default: MachineSpec::Symmetric(2, 4, 2.0, 100, 300,
  /// 40, 12) — small enough that optimized plans run on CI hosts.
  Job& WithMachine(hw::MachineSpec machine);

  /// Engine execution mode (§5): batching, legacy overheads, NUMA
  /// emulation, ingress rate. Default: EngineConfig::Brisk().
  Job& WithConfig(engine::EngineConfig config);

  /// Execution model on top of the current config: the socket-aware
  /// worker pool (default) or legacy thread-per-task.
  Job& WithExecutor(engine::ExecutorKind executor);

  Job& WithPlanner(Planner planner);

  /// RLAS search knobs (replica ceiling, placement options). The
  /// placement input rate also feeds the baseline planners.
  Job& WithPlannerOptions(opt::RlasOptions options);

  /// Supplies operator cost profiles, skipping the profiler stage.
  Job& WithProfiles(model::ProfileSet profiles);

  /// Profiler knobs for the auto-profiling stage.
  Job& WithProfiler(profiler::ProfilerConfig config);

  /// Telemetry the application's sinks report into; the report reads
  /// tuple counts and latency from it. (DSL pipelines wire this into
  /// their Sink lambdas; reset happens right before the engine starts
  /// so profiler traffic is not counted.)
  Job& WithTelemetry(std::shared_ptr<SinkTelemetry> telemetry);

  /// A deployed, running job. Stop() joins the engine and finalizes
  /// the report; the destructor stops implicitly.
  class Deployment {
   public:
    ~Deployment();
    Deployment(const Deployment&) = delete;
    Deployment& operator=(const Deployment&) = delete;

    /// Stops the engine (idempotent) and returns the full report.
    const JobReport& Stop();

    /// Report so far (plan + prediction; run stats only after Stop).
    const JobReport& report() const { return report_; }

    engine::BriskRuntime& runtime() { return *runtime_; }

   private:
    friend class Job;
    Deployment() = default;

    std::shared_ptr<const api::Topology> topo_;
    std::shared_ptr<SinkTelemetry> telemetry_;
    std::unique_ptr<hw::NumaEmulator> numa_;
    std::unique_ptr<engine::BriskRuntime> runtime_;
    bool stopped_ = false;
    JobReport report_;
  };

  /// Profile → optimize → deploy, run `seconds` of wall-clock, stop,
  /// report.
  StatusOr<JobReport> Run(double seconds);

  /// Profile → optimize → create and *start* the runtime; the caller
  /// owns when to Stop().
  StatusOr<std::unique_ptr<Deployment>> Deploy();

 private:
  Job() = default;

  Status init_error_;  ///< deferred pipeline-lowering error
  std::string name_;
  std::shared_ptr<const api::Topology> topo_;
  hw::MachineSpec machine_ =
      hw::MachineSpec::Symmetric(2, 4, 2.0, 100, 300, 40, 12);
  engine::EngineConfig config_ = engine::EngineConfig::Brisk();
  Planner planner_ = Planner::kRlas;
  opt::RlasOptions options_;
  std::optional<model::ProfileSet> profiles_;
  profiler::ProfilerConfig profiler_config_;
  std::shared_ptr<SinkTelemetry> telemetry_;
};

}  // namespace brisk
