// Logical application DAG (§2.2): vertices are operators, edges are
// streams. Built once with TopologyBuilder, consumed by the optimizer
// (structure + profiles), the simulator, and the real engine
// (factories).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/kernels.h"
#include "api/operator.h"
#include "common/status.h"

namespace brisk::api {

/// How a consumer partitions an input stream across its replicas.
enum class GroupingType {
  kShuffle,    ///< round-robin across consumer replicas
  kFields,     ///< hash of a key field → replica (stateful ops)
  kBroadcast,  ///< every replica receives every tuple
  kGlobal,     ///< all tuples to replica 0
};

const char* GroupingTypeName(GroupingType g);

/// A consumer's subscription to one producer output stream.
struct Subscription {
  int producer_op = -1;      ///< operator id within the topology
  uint16_t stream_id = 0;    ///< producer's output stream index
  GroupingType grouping = GroupingType::kShuffle;
  size_t key_field = 0;      ///< for kFields: tuple field to hash
};

/// One logical operator in the DAG.
struct OperatorDecl {
  int id = -1;
  std::string name;
  bool is_spout = false;
  SpoutFactory spout_factory;
  OperatorFactory bolt_factory;

  /// Declared output stream names; index is the stream id. Every
  /// operator has at least the "default" stream.
  std::vector<std::string> output_streams{"default"};

  /// Input subscriptions (empty for spouts).
  std::vector<Subscription> inputs;

  /// Initial replication level (the optimizer may raise it).
  int base_parallelism = 1;

  /// When non-empty, declares that this operator's behavior is exactly
  /// this kernel chain (see api/kernels.h). The factories stay
  /// authoritative for execution; the declaration lets the fusion pass
  /// concatenate chains into one compiled pipeline and lets the cost
  /// model price a compiled chain below its interpreted sum.
  std::vector<KernelDesc> kernels;

  /// Fusion bookkeeping. `chain_members` lists the logical operators a
  /// fused vertex stands for, in chain order (empty == not fused).
  /// For interpreted chains, `chain_bolts` (and `chain_spout` for a
  /// spout-rooted chain) keep the member factories so a later fusion
  /// round flattens the chain instead of nesting wrappers.
  std::vector<std::string> chain_members;
  std::vector<OperatorFactory> chain_bolts;
  SpoutFactory chain_spout;

  /// Stream id of a declared output stream, by name. Code that routes
  /// to named streams should resolve ids through this (or through
  /// OperatorContext::StreamId at Prepare time) instead of hard-coding
  /// declaration order — a silent-misroute footgun when streams are
  /// added or reordered.
  StatusOr<uint16_t> StreamId(const std::string& stream) const;
};

/// A directed edge in stream granularity: producer stream → consumer.
struct StreamEdge {
  int producer_op = -1;
  uint16_t stream_id = 0;
  int consumer_op = -1;
  GroupingType grouping = GroupingType::kShuffle;
  size_t key_field = 0;
};

/// Immutable, validated application DAG.
class Topology {
 public:
  const std::string& name() const { return name_; }
  int num_operators() const { return static_cast<int>(ops_.size()); }
  const OperatorDecl& op(int id) const { return ops_[id]; }
  const std::vector<OperatorDecl>& ops() const { return ops_; }

  /// Operator id by name.
  StatusOr<int> OpId(const std::string& name) const;

  /// All edges, producer-major.
  const std::vector<StreamEdge>& edges() const { return edges_; }

  /// Edges whose consumer is `op`. Consumer-major adjacency is
  /// precomputed at Build() — these are O(1) and allocation-free, as
  /// the optimizer's inner loops call them per model evaluation.
  const std::vector<StreamEdge>& InEdges(int op) const {
    return in_edges_[op];
  }
  /// Edges whose producer is `op` (precomputed, see InEdges).
  const std::vector<StreamEdge>& OutEdges(int op) const {
    return out_edges_[op];
  }

  /// Operator ids of spouts / sinks (no out-edges).
  const std::vector<int>& spouts() const { return spouts_; }
  const std::vector<int>& sinks() const { return sinks_; }

  /// Operator ids in a topological order (spouts first). The DAG is
  /// validated acyclic at Build time so this always succeeds.
  const std::vector<int>& topological_order() const { return topo_order_; }

  std::string ToString() const;

 private:
  friend class TopologyBuilder;
  std::string name_;
  std::vector<OperatorDecl> ops_;
  std::vector<StreamEdge> edges_;
  std::vector<std::vector<StreamEdge>> in_edges_;   // consumer-major
  std::vector<std::vector<StreamEdge>> out_edges_;  // producer-major
  std::vector<int> spouts_;
  std::vector<int> sinks_;
  std::vector<int> topo_order_;
  std::map<std::string, int> by_name_;
};

/// Fluent builder mirroring Storm's TopologyBuilder.
///
///   TopologyBuilder b("wc");
///   b.AddSpout("spout", spout_factory);
///   b.AddBolt("parser", parser_factory, 2).ShuffleFrom("spout");
///   b.AddBolt("counter", counter_factory).FieldsFrom("splitter", 0);
///   auto topo = std::move(b).Build();
class TopologyBuilder {
 public:
  /// Handle to declare a bolt's subscriptions and output streams.
  class BoltDeclarer {
   public:
    BoltDeclarer(TopologyBuilder* parent, int op_id)
        : parent_(parent), op_id_(op_id) {}

    /// Subscribes with shuffle grouping to `producer`'s stream.
    BoltDeclarer& ShuffleFrom(const std::string& producer,
                              const std::string& stream = "default");
    /// Subscribes with fields grouping on `key_field`.
    BoltDeclarer& FieldsFrom(const std::string& producer, size_t key_field,
                             const std::string& stream = "default");
    BoltDeclarer& BroadcastFrom(const std::string& producer,
                                const std::string& stream = "default");
    BoltDeclarer& GlobalFrom(const std::string& producer,
                             const std::string& stream = "default");

    /// Declares an extra named output stream; returns its stream id.
    BoltDeclarer& DeclareStream(const std::string& stream);

    /// Declares this bolt's behavior as a kernel chain (OperatorDecl::
    /// kernels).
    BoltDeclarer& WithKernels(std::vector<KernelDesc> kernels);

    /// Records fusion bookkeeping (OperatorDecl::{chain_members,
    /// chain_bolts}) for a fused vertex.
    BoltDeclarer& WithChain(std::vector<std::string> members,
                            std::vector<OperatorFactory> bolts);

   private:
    TopologyBuilder* parent_;
    int op_id_;
  };

  class SpoutDeclarer {
   public:
    SpoutDeclarer(TopologyBuilder* parent, int op_id)
        : parent_(parent), op_id_(op_id) {}
    SpoutDeclarer& DeclareStream(const std::string& stream);

    /// Records fusion bookkeeping for a spout-rooted fused chain: the
    /// head spout factory plus the member bolt factories.
    SpoutDeclarer& WithChain(std::vector<std::string> members,
                             SpoutFactory head,
                             std::vector<OperatorFactory> bolts);

   private:
    TopologyBuilder* parent_;
    int op_id_;
  };

  explicit TopologyBuilder(std::string name) : name_(std::move(name)) {}

  SpoutDeclarer AddSpout(const std::string& name, SpoutFactory factory,
                         int parallelism = 1);
  BoltDeclarer AddBolt(const std::string& name, OperatorFactory factory,
                       int parallelism = 1);

  /// Validates and freezes the DAG: names unique, subscriptions resolve,
  /// spouts have no inputs, every bolt has at least one input, graph is
  /// acyclic, every stream id referenced exists.
  StatusOr<Topology> Build() &&;

 private:
  friend class BoltDeclarer;
  friend class SpoutDeclarer;

  void DeclareStreamOn(int op_id, const std::string& stream);

  struct PendingSub {
    int consumer_op;
    std::string producer;
    std::string stream;
    GroupingType grouping;
    size_t key_field;
  };

  std::string name_;
  std::vector<OperatorDecl> ops_;
  std::vector<PendingSub> pending_;
  Status deferred_error_;  // first builder-time misuse, reported at Build
};

}  // namespace brisk::api
