#include "api/dsl.h"

#include "api/pipeline.h"

namespace brisk::dsl {

namespace {

/// Synthesized Spout around a user source lambda. The factory runs at
/// Prepare so it sees the replica context (per-replica seeding); the
/// context's output_streams is the authoritative stream-name table.
class LambdaSpout final : public api::Spout {
 public:
  explicit LambdaSpout(SourceFactory factory)
      : factory_(std::move(factory)) {}

  Status Prepare(const api::OperatorContext& ctx) override {
    if (!factory_) {
      return Status::InvalidArgument("source '" + ctx.operator_name +
                                     "' has an empty factory");
    }
    streams_ = ctx.output_streams;
    fn_ = factory_(ctx);
    if (!fn_) {
      return Status::InvalidArgument("source factory for '" +
                                     ctx.operator_name +
                                     "' returned an empty function");
    }
    return Status::OK();
  }

  size_t NextBatch(size_t max_tuples, api::OutputCollector* out) override {
    Collector c(out, &streams_);
    return fn_(max_tuples, c);
  }

 private:
  SourceFactory factory_;
  SourceFn fn_;
  std::vector<std::string> streams_;
};

/// Synthesized Operator around a user process lambda; the prepared
/// ReplicaBody's StateHooks back the live-migration virtuals.
class LambdaBolt final : public api::Operator {
 public:
  explicit LambdaBolt(ReplicaFactory factory)
      : factory_(std::move(factory)) {}

  Status Prepare(const api::OperatorContext& ctx) override {
    if (!factory_) {
      return Status::InvalidArgument("operator '" + ctx.operator_name +
                                     "' has an empty factory");
    }
    streams_ = ctx.output_streams;
    body_ = factory_(ctx);
    if (!body_.fn) {
      return Status::InvalidArgument("factory for '" + ctx.operator_name +
                                     "' returned an empty function");
    }
    return Status::OK();
  }

  void Process(const Tuple& in, api::OutputCollector* out) override {
    Collector c(out, &streams_);
    body_.fn(in, c);
  }

  std::vector<api::KeyedStateEntry> ExportKeyedState() override {
    if (!body_.hooks.export_state) return {};
    return body_.hooks.export_state();
  }

  void ImportKeyedState(std::vector<api::KeyedStateEntry> entries) override {
    if (body_.hooks.import_state) {
      body_.hooks.import_state(std::move(entries));
    }
  }

  std::vector<api::CheckpointEntry> SnapshotKeyedState() override {
    if (!body_.hooks.snapshot_state) return {};
    return body_.hooks.snapshot_state();
  }

  void RestoreKeyedState(std::vector<api::CheckpointEntry> entries) override {
    if (body_.hooks.restore_state) {
      body_.hooks.restore_state(std::move(entries));
    }
  }

 private:
  ReplicaFactory factory_;
  ReplicaBody body_;
  std::vector<std::string> streams_;
};

}  // namespace

bool Collector::EmitTo(const std::string& stream, Tuple t) {
  const int id = api::FindStreamId(*streams_, stream);
  if (id < 0) return false;
  out_->EmitTo(static_cast<uint16_t>(id), std::move(t));
  return true;
}

namespace detail {

// The canonical codec lives with the kernel layer (api/kernels.cc) so
// kernel aggregates and dsl aggregates key state identically; these
// forwarders keep the historical dsl::detail entry points.
std::string KeyOf(const Field& f) { return api::detail::KeyOf(f); }

Field FieldOf(const std::string& key) { return api::detail::FieldOf(key); }

}  // namespace detail

Stream Stream::Attach(const std::string& name, ReplicaFactory factory,
                      api::GroupingType grouping, size_t key_field) const {
  Pipeline::Node node;
  node.name = name;
  node.process = std::move(factory);
  node.subs.push_back({node_, stream_, grouping, key_field});
  const int id = pipe_->AddNode(std::move(node));
  return Stream(pipe_, id, "default");
}

Stream Stream::Attach(const std::string& name, ProcessFactory factory,
                      api::GroupingType grouping, size_t key_field) const {
  return Attach(name,
                ReplicaFactory([pf = std::move(factory)](
                    const api::OperatorContext& ctx) -> ReplicaBody {
                  // An empty user factory surfaces as the empty-body
                  // InvalidArgument in LambdaBolt::Prepare.
                  return pf ? ReplicaBody{pf(ctx), {}} : ReplicaBody{};
                }),
                grouping, key_field);
}

Stream Stream::AttachKernel(const std::string& name, api::KernelDesc kernel,
                            api::GroupingType grouping,
                            size_t key_field) const {
  Pipeline::Node node;
  node.name = name;
  node.kernels.push_back(std::move(kernel));
  node.subs.push_back({node_, stream_, grouping, key_field});
  const int id = pipe_->AddNode(std::move(node));
  return Stream(pipe_, id, "default");
}

Stream Stream::Process(const std::string& name, ProcessFactory factory) const {
  return Attach(name, std::move(factory), grouping_, key_field_);
}

Stream Stream::Map(const std::string& name, api::KernelDesc kernel) const {
  return AttachKernel(name, std::move(kernel), grouping_, key_field_);
}

Stream Stream::Filter(const std::string& name, api::KernelDesc kernel) const {
  return AttachKernel(name, std::move(kernel), grouping_, key_field_);
}

Stream Stream::FlatMap(const std::string& name, api::KernelDesc kernel) const {
  return AttachKernel(name, std::move(kernel), grouping_, key_field_);
}

Stream Stream::FlatMap(const std::string& name, ProcessFn fn) const {
  return Process(name, [fn = std::move(fn)](const api::OperatorContext&) {
    return fn;  // copied per replica: mutable captures are replica-local
  });
}

Stream Stream::Map(const std::string& name, MapFn fn) const {
  return Process(name, [fn = std::move(fn)](const api::OperatorContext&) {
    return ProcessFn([fn](const Tuple& in, Collector& out) {
      Tuple t = fn(in);
      if (t.origin_ts_ns == 0) t.origin_ts_ns = in.origin_ts_ns;
      out.Emit(std::move(t));
    });
  });
}

Stream Stream::Filter(const std::string& name, FilterFn fn) const {
  return Process(name, [fn = std::move(fn)](const api::OperatorContext&) {
    return ProcessFn([fn](const Tuple& in, Collector& out) {
      if (fn(in)) out.Emit(in);
    });
  });
}

KeyedStream Stream::KeyBy(size_t field) const {
  return KeyedStream(*this, field);
}

Stream Stream::Broadcast() const {
  Stream s = *this;
  s.grouping_ = api::GroupingType::kBroadcast;
  return s;
}

Stream Stream::Global() const {
  Stream s = *this;
  s.grouping_ = api::GroupingType::kGlobal;
  return s;
}

Stream Stream::Shuffle() const {
  Stream s = *this;
  s.grouping_ = api::GroupingType::kShuffle;
  return s;
}

Stream Stream::Sink(const std::string& name, SinkFn fn) const {
  return Process(name, [fn = std::move(fn)](const api::OperatorContext&) {
    return ProcessFn(
        [fn](const Tuple& in, Collector&) { fn(in); });  // terminal
  });
}

Stream Stream::Operate(const std::string& name,
                       api::OperatorFactory factory) const {
  Pipeline::Node node;
  node.name = name;
  node.bolt = std::move(factory);
  node.subs.push_back({node_, stream_, grouping_, key_field_});
  const int id = pipe_->AddNode(std::move(node));
  return Stream(pipe_, id, "default");
}

Stream Stream::ToFile(const std::string& name,
                      io::EgressOptions options) const {
  return Operate(name,
                 [options = std::move(options)]()
                     -> std::unique_ptr<api::Operator> {
                   return std::make_unique<io::EgressSink>(options);
                 });
}

Stream Stream::ToFile(const std::string& name, std::string path,
                      io::RecordCodec codec) const {
  return ToFile(name, io::EgressOptions::File(std::move(path), codec));
}

Stream Stream::ToSocket(const std::string& name, std::string host,
                        uint16_t port, io::RecordCodec codec) const {
  auto options = io::EgressOptions::Socket(std::move(host), port, codec);
  return Operate(name,
                 [options = std::move(options)]()
                     -> std::unique_ptr<api::Operator> {
                   return std::make_unique<io::EgressSink>(options);
                 });
}

Stream Stream::Parallelism(int n) const {
  pipe_->nodes_[node_].parallelism = n;
  return *this;
}

Stream Stream::SideOutput(const std::string& stream) const {
  auto& streams = pipe_->nodes_[node_].streams;
  if (api::FindStreamId(streams, stream) < 0) streams.push_back(stream);
  return Stream(pipe_, node_, stream);
}

Stream Pipeline::Source(const std::string& name, SourceFactory factory) {
  Node node;
  node.name = name;
  node.is_source = true;
  node.source = std::move(factory);
  return Stream(this, AddNode(std::move(node)), "default");
}

Stream Pipeline::Source(const std::string& name, SourceFn fn) {
  return Source(name, SourceFactory([fn = std::move(fn)](
                          const api::OperatorContext&) { return fn; }));
}

Stream Pipeline::Source(const std::string& name, api::SpoutFactory spout) {
  Node node;
  node.name = name;
  node.is_source = true;
  node.spout = std::move(spout);
  return Stream(this, AddNode(std::move(node)), "default");
}

Stream Pipeline::FromFile(const std::string& name,
                          io::FileSourceOptions options) {
  return Source(name, api::SpoutFactory(
                          [options = std::move(options)]()
                              -> std::unique_ptr<api::Spout> {
                            return std::make_unique<io::FileSource>(options);
                          }));
}

Stream Pipeline::FromSocket(const std::string& name,
                            std::shared_ptr<io::TcpListener> listener,
                            io::TcpSourceOptions options) {
  return Source(name, api::SpoutFactory(
                          [listener = std::move(listener),
                           options = std::move(options)]()
                              -> std::unique_ptr<api::Spout> {
                            return std::make_unique<io::TcpSource>(listener,
                                                                   options);
                          }));
}

Stream Pipeline::FromSocket(const std::string& name,
                            const std::string& bind_addr, uint16_t port,
                            io::TcpSourceOptions options) {
  return FromSocket(name, std::make_shared<io::TcpListener>(bind_addr, port),
                    std::move(options));
}

StatusOr<api::Topology> Pipeline::Build() && {
  api::TopologyBuilder b(name_);
  for (auto& node : nodes_) {
    if (node.is_source) {
      api::SpoutFactory factory;
      if (node.spout) {
        factory = std::move(node.spout);
      } else {
        factory =
            [src = std::move(node.source)]() -> std::unique_ptr<api::Spout> {
          return std::make_unique<LambdaSpout>(src);
        };
      }
      auto declarer = b.AddSpout(node.name, std::move(factory),
                                 node.parallelism);
      for (size_t i = 1; i < node.streams.size(); ++i) {
        declarer.DeclareStream(node.streams[i]);
      }
    } else {
      api::OperatorFactory factory;
      if (node.bolt) {
        factory = std::move(node.bolt);
      } else if (!node.kernels.empty()) {
        factory =
            [ks = node.kernels]() -> std::unique_ptr<api::Operator> {
          return std::make_unique<api::KernelBolt>(ks);
        };
      } else {
        factory =
            [pf = std::move(node.process)]() -> std::unique_ptr<api::Operator> {
          return std::make_unique<LambdaBolt>(pf);
        };
      }
      auto declarer =
          b.AddBolt(node.name, std::move(factory), node.parallelism);
      if (!node.kernels.empty()) {
        declarer.WithKernels(std::move(node.kernels));
      }
      for (size_t i = 1; i < node.streams.size(); ++i) {
        declarer.DeclareStream(node.streams[i]);
      }
      for (const auto& sub : node.subs) {
        const std::string& producer = nodes_[sub.producer].name;
        switch (sub.grouping) {
          case api::GroupingType::kShuffle:
            declarer.ShuffleFrom(producer, sub.stream);
            break;
          case api::GroupingType::kFields:
            declarer.FieldsFrom(producer, sub.key_field, sub.stream);
            break;
          case api::GroupingType::kBroadcast:
            declarer.BroadcastFrom(producer, sub.stream);
            break;
          case api::GroupingType::kGlobal:
            declarer.GlobalFrom(producer, sub.stream);
            break;
        }
      }
    }
  }
  return std::move(b).Build();
}

}  // namespace brisk::dsl
