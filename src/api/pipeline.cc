#include "api/pipeline.h"

#include "common/logging.h"

namespace brisk::api {

namespace {

/// Collects an expanding stage's rows into a scratch batch, stamping
/// unset origin timestamps with the input row's (dsl Derive rule).
class BatchRowEmitter final : public RowEmitter {
 public:
  explicit BatchRowEmitter(JumboTuple* out) : out_(out) {}

  void SetOrigin(int64_t origin_ts_ns) { origin_ts_ns_ = origin_ts_ns; }

  void Emit(Tuple t) override {
    if (t.origin_ts_ns == 0) t.origin_ts_ns = origin_ts_ns_;
    t.stream_id = 0;
    out_->tuples.push_back(std::move(t));
  }

 private:
  JumboTuple* out_;
  int64_t origin_ts_ns_ = 0;
};

}  // namespace

/// Row-wise continuation: feeds an expanding stage's emissions through
/// the rest of the chain, depth-first.
class ChainRowEmitter final : public RowEmitter {
 public:
  ChainRowEmitter(CompiledPipeline* pipe, size_t next_stage,
                  OutputCollector* out, int64_t origin_ts_ns)
      : pipe_(pipe),
        next_stage_(next_stage),
        out_(out),
        origin_ts_ns_(origin_ts_ns) {}

  void Emit(Tuple t) override {
    if (t.origin_ts_ns == 0) t.origin_ts_ns = origin_ts_ns_;
    t.stream_id = 0;
    pipe_->RunRowFrom(next_stage_, std::move(t), out_);
  }

 private:
  CompiledPipeline* pipe_;
  size_t next_stage_;
  OutputCollector* out_;
  int64_t origin_ts_ns_;
};

CompiledPipeline::CompiledPipeline(std::vector<KernelDesc> stages)
    : stages_(std::move(stages)) {
  aggs_.resize(stages_.size());
  for (size_t s = 0; s < stages_.size(); ++s) {
    if (stages_[s].kind == KernelKind::kAggregate) {
      aggs_[s] = stages_[s].make_aggregate();
      agg_stage_ = static_cast<int>(s);
    }
  }
}

StatusOr<std::unique_ptr<CompiledPipeline>> CompiledPipeline::Compile(
    std::vector<KernelDesc> stages) {
  if (stages.empty()) {
    return Status::InvalidArgument("empty kernel chain");
  }
  int aggregates = 0;
  for (size_t s = 0; s < stages.size(); ++s) {
    const KernelDesc& k = stages[s];
    const std::string where = "stage " + std::to_string(s) + " (" + k.debug +
                              ")";
    switch (k.kind) {
      case KernelKind::kFilter:
        if (!k.filter_row) {
          return Status::InvalidArgument(where + ": filter without row form");
        }
        break;
      case KernelKind::kMap:
        if (!k.map_row) {
          return Status::InvalidArgument(where + ": map without row form");
        }
        break;
      case KernelKind::kFlatMap:
        if (!k.expand_row) {
          return Status::InvalidArgument(where + ": flatmap without body");
        }
        break;
      case KernelKind::kAggregate:
        if (!k.make_aggregate || k.key_field < 0) {
          return Status::InvalidArgument(where + ": incomplete aggregate");
        }
        ++aggregates;
        break;
    }
  }
  if (aggregates > 1) {
    return Status::InvalidArgument(
        "kernel chain has " + std::to_string(aggregates) +
        " aggregates; a second aggregate needs a fields-grouped input and "
        "can never fuse into one chain");
  }
  return std::unique_ptr<CompiledPipeline>(
      new CompiledPipeline(std::move(stages)));
}

void CompiledPipeline::RunBatch(JumboTuple* batch, PipelineSink* sink) {
  JumboTuple* cur = batch;
  sel_.Reset(cur->tuples.size());
  if (cur->tuples.empty()) return;
  int scratch_idx = 0;
  for (size_t s = 0; s < stages_.size(); ++s) {
    KernelDesc& k = stages_[s];
    switch (k.kind) {
      case KernelKind::kFilter:
        if (k.filter_batch) {
          k.filter_batch(*cur, sel_);
        } else {
          sel_.ForEachSet([&](size_t i) {
            if (!k.filter_row(cur->tuples[i])) sel_.Clear(i);
          });
        }
        if (sel_.NoneSet()) return;
        break;
      case KernelKind::kMap:
        if (k.map_batch) {
          k.map_batch(*cur, sel_);
        } else {
          sel_.ForEachSet([&](size_t i) { k.map_row(cur->tuples[i]); });
        }
        break;
      case KernelKind::kFlatMap:
      case KernelKind::kAggregate: {
        // Expanding stage: survivors are materialized into a scratch
        // batch (ping-ponged so a later expansion never writes into
        // the batch it is reading). Capacity is retained across
        // batches.
        JumboTuple* next = &scratch_[scratch_idx];
        scratch_idx ^= 1;
        next->Reset();
        BatchRowEmitter emitter(next);
        if (k.kind == KernelKind::kFlatMap) {
          sel_.ForEachSet([&](size_t i) {
            const Tuple& t = cur->tuples[i];
            emitter.SetOrigin(t.origin_ts_ns);
            k.expand_row(t, emitter);
          });
        } else {
          AggregateExec* agg = aggs_[s].get();
          sel_.ForEachSet([&](size_t i) {
            const Tuple& t = cur->tuples[i];
            emitter.SetOrigin(t.origin_ts_ns);
            agg->UpdateRow(t, emitter);
          });
        }
        cur = next;
        if (cur->tuples.empty()) return;
        sel_.Reset(cur->tuples.size());
        break;
      }
    }
  }
  sink->ConsumeSelected(cur, sel_);
}

void CompiledPipeline::RunRow(const Tuple& in, OutputCollector* out) {
  RunRowFrom(0, in, out);
}

void CompiledPipeline::RunRowFrom(size_t stage, Tuple t,
                                  OutputCollector* out) {
  for (; stage < stages_.size(); ++stage) {
    KernelDesc& k = stages_[stage];
    switch (k.kind) {
      case KernelKind::kFilter:
        if (!k.filter_row(t)) return;
        break;
      case KernelKind::kMap:
        k.map_row(t);
        break;
      case KernelKind::kFlatMap: {
        ChainRowEmitter emitter(this, stage + 1, out, t.origin_ts_ns);
        k.expand_row(t, emitter);
        return;
      }
      case KernelKind::kAggregate: {
        ChainRowEmitter emitter(this, stage + 1, out, t.origin_ts_ns);
        aggs_[stage]->UpdateRow(t, emitter);
        return;
      }
    }
  }
  out->Emit(std::move(t));
}

std::vector<KeyedStateEntry> CompiledPipeline::ExportKeyedState() {
  if (agg_stage_ < 0) return {};
  return aggs_[agg_stage_]->ExportKeyedState();
}

void CompiledPipeline::ImportKeyedState(std::vector<KeyedStateEntry> entries) {
  if (agg_stage_ < 0) return;
  aggs_[agg_stage_]->ImportKeyedState(std::move(entries));
}

std::vector<CheckpointEntry> CompiledPipeline::SnapshotKeyedState() {
  if (agg_stage_ < 0) return {};
  return aggs_[agg_stage_]->SnapshotKeyedState();
}

void CompiledPipeline::RestoreKeyedState(std::vector<CheckpointEntry> entries) {
  if (agg_stage_ < 0) return;
  aggs_[agg_stage_]->RestoreKeyedState(std::move(entries));
}

KernelBolt::KernelBolt(std::vector<KernelDesc> stages) {
  auto compiled = CompiledPipeline::Compile(std::move(stages));
  if (compiled.ok()) {
    pipeline_ = std::move(compiled).value();
  } else {
    compile_status_ = compiled.status();
  }
}

Status KernelBolt::Prepare(const OperatorContext& ctx) {
  (void)ctx;
  return compile_status_;
}

void KernelBolt::Process(const Tuple& in, OutputCollector* out) {
  BRISK_CHECK(pipeline_ != nullptr) << compile_status_.ToString();
  pipeline_->RunRow(in, out);
}

std::vector<KeyedStateEntry> KernelBolt::ExportKeyedState() {
  return pipeline_ ? pipeline_->ExportKeyedState()
                   : std::vector<KeyedStateEntry>{};
}

void KernelBolt::ImportKeyedState(std::vector<KeyedStateEntry> entries) {
  if (pipeline_) pipeline_->ImportKeyedState(std::move(entries));
}

std::vector<CheckpointEntry> KernelBolt::SnapshotKeyedState() {
  return pipeline_ ? pipeline_->SnapshotKeyedState()
                   : std::vector<CheckpointEntry>{};
}

void KernelBolt::RestoreKeyedState(std::vector<CheckpointEntry> entries) {
  if (pipeline_) pipeline_->RestoreKeyedState(std::move(entries));
}

}  // namespace brisk::api
