// CompiledPipeline — one executable unit for a fused kernel chain.
//
// The optimizer's fusion pass (or a single kernel-backed DSL verb)
// produces an ordered list of KernelDescs; Compile() validates the
// chain and builds per-replica execution state. The engine then picks
// one of two entry points per input:
//
//   * RunBatch — batch-at-a-time over one JumboTuple: filters clear
//     bits in a SelectionVector, maps rewrite fields in place, and
//     expanding stages (FlatMap, aggregate emission) materialize rows
//     into pipeline-owned scratch batches (ping-ponged, capacity
//     retained — steady state allocates nothing). Surviving rows are
//     handed to a PipelineSink.
//   * RunRow — the interpreted fallback: one tuple depth-first through
//     the chain, emitting into an api::OutputCollector.
//
// Both paths process rows in ascending batch order through a linear
// chain, so they produce the *same output sequence* (and identical
// aggregate-state evolution) — the property the differential matrix
// and the randomized equivalence test pin down.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "api/kernels.h"
#include "api/operator.h"
#include "common/column_batch.h"
#include "common/status.h"
#include "common/tuple.h"

namespace brisk::api {

/// Consumer of a batch's surviving rows (bit i set == tuples[i] is
/// live). The sink may move tuples out; the batch is dead after the
/// call.
class PipelineSink {
 public:
  virtual ~PipelineSink() = default;
  virtual void ConsumeSelected(JumboTuple* batch,
                               const SelectionVector& sel) = 0;
};

class CompiledPipeline {
 public:
  /// Validates and compiles a kernel chain. Fails on an empty chain, a
  /// stage missing its row-wise form, or more than one aggregate (a
  /// second aggregate would need a fields-grouped input and therefore
  /// can never legally fuse into one chain).
  static StatusOr<std::unique_ptr<CompiledPipeline>> Compile(
      std::vector<KernelDesc> stages);

  /// Vectorized execution of one batch. The batch's tuples may be
  /// rewritten in place; output rows may live in pipeline-owned
  /// scratch storage, valid until the next RunBatch call.
  void RunBatch(JumboTuple* batch, PipelineSink* sink);

  /// Interpreted execution of one row (shared aggregate state with
  /// RunBatch, so modes can be mixed mid-stream).
  void RunRow(const Tuple& in, OutputCollector* out);

  size_t num_stages() const { return stages_.size(); }
  const std::vector<KernelDesc>& stages() const { return stages_; }
  bool has_aggregate() const { return agg_stage_ >= 0; }

  /// Live-migration hand-off for the chain's aggregate stage (no-ops
  /// for stateless chains).
  std::vector<KeyedStateEntry> ExportKeyedState();
  void ImportKeyedState(std::vector<KeyedStateEntry> entries);

  /// Checkpoint capture/restore for the chain's aggregate stage.
  std::vector<CheckpointEntry> SnapshotKeyedState();
  void RestoreKeyedState(std::vector<CheckpointEntry> entries);

 private:
  explicit CompiledPipeline(std::vector<KernelDesc> stages);

  void RunRowFrom(size_t stage, Tuple t, OutputCollector* out);

  friend class ChainRowEmitter;

  std::vector<KernelDesc> stages_;
  /// Parallel to stages_: execution state for kAggregate stages.
  std::vector<std::unique_ptr<AggregateExec>> aggs_;
  int agg_stage_ = -1;

  SelectionVector sel_;
  JumboTuple scratch_[2];
};

/// Operator adapter: a bolt whose whole behavior is one kernel chain.
/// The engine detects it through Operator::pipeline() and dispatches
/// whole batches; every other execution mode (serialization modes,
/// drain, spout-side fusion) falls back to the row-wise Process.
class KernelBolt final : public Operator {
 public:
  explicit KernelBolt(std::vector<KernelDesc> stages);

  Status Prepare(const OperatorContext& ctx) override;
  void Process(const Tuple& in, OutputCollector* out) override;
  CompiledPipeline* pipeline() override { return pipeline_.get(); }

  std::vector<KeyedStateEntry> ExportKeyedState() override;
  void ImportKeyedState(std::vector<KeyedStateEntry> entries) override;
  std::vector<CheckpointEntry> SnapshotKeyedState() override;
  void RestoreKeyedState(std::vector<CheckpointEntry> entries) override;

 private:
  Status compile_status_;
  std::unique_ptr<CompiledPipeline> pipeline_;
};

}  // namespace brisk::api
