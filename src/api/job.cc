#include "api/job.h"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "optimizer/baselines.h"

namespace brisk {

const char* PlannerName(Planner planner) {
  switch (planner) {
    case Planner::kRlas:
      return "RLAS";
    case Planner::kFirstFit:
      return "FF";
    case Planner::kRoundRobin:
      return "RR";
    case Planner::kOsDefault:
      return "OS";
  }
  return "?";
}

std::string JobReport::ToString() const {
  std::ostringstream os;
  os << "Job '" << job_name << "' — planner " << PlannerName(planner)
     << (profiled ? ", profiled" : ", supplied profiles") << "\n";
  os << plan.ToString();
  os << "predicted throughput: " << model.throughput << " tuples/s";
  if (scaling_iterations > 0) {
    os << " (" << scaling_iterations << " scaling iterations, "
       << optimize_seconds << " s to optimize)";
  }
  os << "\n";
  if (stats.duration_s > 0.0) {
    os << "ran " << stats.duration_s << " s on " << stats.tasks.size()
       << " tasks (" << stats.executor.threads << " "
       << (stats.executor.worker_groups > 0 ? "pool workers"
                                            : "task threads")
       << "): " << sink_tuples << " tuples at the sink ("
       << sink_throughput_tps() << " tuples/s), p99 latency "
       << sink_latency_ns.Percentile(0.99) / 1e6 << " ms\n";
  }
  return os.str();
}

Job Job::Of(dsl::Pipeline pipeline) {
  Job job;
  job.name_ = pipeline.name();
  auto topo = std::move(pipeline).Build();
  if (!topo.ok()) {
    job.init_error_ = topo.status();
  } else {
    job.topo_ = std::make_shared<const api::Topology>(std::move(topo).value());
  }
  return job;
}

Job Job::Of(api::Topology topology) {
  Job job;
  job.name_ = topology.name();
  job.topo_ = std::make_shared<const api::Topology>(std::move(topology));
  return job;
}

Job Job::Of(std::shared_ptr<const api::Topology> topology) {
  Job job;
  if (topology == nullptr) {
    job.init_error_ = Status::InvalidArgument("Job::Of: null topology");
    return job;
  }
  job.name_ = topology->name();
  job.topo_ = std::move(topology);
  return job;
}

Job& Job::WithMachine(hw::MachineSpec machine) {
  machine_ = std::move(machine);
  return *this;
}

Job& Job::WithConfig(engine::EngineConfig config) {
  config_ = config;
  return *this;
}

Job& Job::WithExecutor(engine::ExecutorKind executor) {
  config_.executor = executor;
  return *this;
}

Job& Job::WithPlanner(Planner planner) {
  planner_ = planner;
  return *this;
}

Job& Job::WithPlannerOptions(opt::RlasOptions options) {
  options_ = std::move(options);
  return *this;
}

Job& Job::WithProfiles(model::ProfileSet profiles) {
  profiles_ = std::move(profiles);
  return *this;
}

Job& Job::WithProfiler(profiler::ProfilerConfig config) {
  profiler_config_ = config;
  return *this;
}

Job& Job::WithTelemetry(std::shared_ptr<SinkTelemetry> telemetry) {
  telemetry_ = std::move(telemetry);
  return *this;
}

StatusOr<std::unique_ptr<Job::Deployment>> Job::Deploy() {
  BRISK_RETURN_NOT_OK(init_error_);

  auto deployment = std::unique_ptr<Deployment>(new Deployment());
  deployment->topo_ = topo_;
  deployment->telemetry_ = telemetry_;
  JobReport& report = deployment->report_;
  report.job_name = name_;
  report.planner = planner_;
  report.topology = topo_;

  // 1. Operator cost profiles: supplied, or measured in isolation
  // (§3.1) by the profiler.
  if (profiles_.has_value()) {
    report.profiles = *profiles_;
  } else {
    BRISK_ASSIGN_OR_RETURN(profiler::AppProfile app_profile,
                           profiler::ProfileApp(*topo_, profiler_config_));
    report.profiles = std::move(app_profile.profiles);
    report.profiled = true;
  }

  // 2. Replication + placement with the selected planner. RLAS runs
  // its joint scaling+placement search; every baseline shares one
  // shape: base-parallelism plan -> placement heuristic -> evaluate.
  const model::PerfModel perf_model(&machine_, &report.profiles);
  const double rate = options_.placement.input_rate_tps;
  if (planner_ == Planner::kRlas) {
    const opt::RlasOptimizer optimizer(&machine_, &report.profiles, options_);
    BRISK_ASSIGN_OR_RETURN(opt::RlasResult result, optimizer.Optimize(*topo_));
    report.plan = std::move(result.plan);
    report.model = std::move(result.model);
    report.scaling_iterations = result.scaling_iterations;
    report.optimize_seconds = result.optimize_seconds;
  } else {
    BRISK_ASSIGN_OR_RETURN(model::ExecutionPlan plan,
                           model::ExecutionPlan::CreateDefault(topo_.get()));
    auto place = [&]() -> StatusOr<model::ExecutionPlan> {
      switch (planner_) {
        case Planner::kFirstFit:
          return opt::PlaceFirstFit(perf_model, std::move(plan), rate);
        case Planner::kRoundRobin:
          return opt::PlaceRoundRobin(machine_, std::move(plan));
        default:
          return opt::PlaceOsDefault(machine_, std::move(plan));
      }
    };
    BRISK_ASSIGN_OR_RETURN(report.plan, place());
    BRISK_ASSIGN_OR_RETURN(report.model,
                           perf_model.Evaluate(report.plan, rate));
  }

  // 3. Deploy on the engine, with the NUMA emulator charging remote
  // fetches when the config asks for it.
  if (config_.numa_emulation) {
    deployment->numa_ = std::make_unique<hw::NumaEmulator>(machine_);
  }
  BRISK_ASSIGN_OR_RETURN(
      deployment->runtime_,
      engine::BriskRuntime::Create(topo_.get(), report.plan, config_,
                                   deployment->numa_.get()));

  // Profiling pre-executes sink operators, which report into the same
  // telemetry; reset so the report covers only the live run.
  if (deployment->telemetry_) deployment->telemetry_->Reset();
  BRISK_RETURN_NOT_OK(deployment->runtime_->Start());
  return deployment;
}

StatusOr<JobReport> Job::Run(double seconds) {
  BRISK_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> deployment, Deploy());
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return deployment->Stop();
}

Job::Deployment::~Deployment() = default;  // BriskRuntime stops itself

const JobReport& Job::Deployment::Stop() {
  if (stopped_) return report_;
  stopped_ = true;
  report_.stats = runtime_->Stop();
  if (telemetry_) {
    report_.sink_tuples = telemetry_->count();
    report_.sink_latency_ns = telemetry_->LatencySnapshot();
  }
  return report_;
}

}  // namespace brisk
