#include "api/job.h"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "optimizer/baselines.h"

namespace brisk {

const char* PlannerName(Planner planner) {
  switch (planner) {
    case Planner::kRlas:
      return "RLAS";
    case Planner::kFirstFit:
      return "FF";
    case Planner::kRoundRobin:
      return "RR";
    case Planner::kOsDefault:
      return "OS";
  }
  return "?";
}

std::string JobReport::ToString() const {
  std::ostringstream os;
  os << "Job '" << job_name << "' — planner " << PlannerName(planner)
     << (profiled ? ", profiled" : ", supplied profiles") << "\n";
  os << plan.ToString();
  os << "predicted throughput: " << model.throughput << " tuples/s";
  if (scaling_iterations > 0) {
    os << " (" << scaling_iterations << " scaling iterations, "
       << optimize_seconds << " s to optimize)";
  }
  os << "\n";
  if (stats.duration_s > 0.0) {
    os << "ran " << stats.duration_s << " s on " << stats.tasks.size()
       << " tasks (" << stats.executor.threads << " "
       << (stats.executor.worker_groups > 0 ? "pool workers"
                                            : "task threads")
       << "): " << sink_tuples << " tuples at the sink ("
       << sink_throughput_tps() << " tuples/s), p99 latency "
       << sink_latency_ns.Percentile(0.99) / 1e6 << " ms\n";
    const uint64_t vec = vectorized_tuples();
    if (vec > 0) {
      os << "compiled pipelines: " << vec
         << " tuples batch-dispatched (" << vectorized_ratio() * 100
         << "% of task ingress)\n";
    }
  }
  for (const MigrationRecord& m : migrations) {
    os << "migration @" << m.at_seconds << " s: drift " << m.drift * 100
       << "%, expected gain " << m.expected_gain * 100 << "% (" << m.moves
       << " moves, " << m.starts << " starts, " << m.stops << " stops) "
       << (m.applied ? "applied" : "FAILED: " + m.error) << "\n";
  }
  if (supervision.checkpoints > 0 || supervision.failures_detected > 0) {
    os << "fault tolerance: " << supervision.checkpoints << " checkpoints ("
       << supervision.checkpoint_pause_s << " s paused), "
       << supervision.failures_detected << " failures detected, "
       << supervision.restarts << " restarts, "
       << supervision.replayed_tuples << " source tuples replayed";
    if (!supervision.final_status.ok()) {
      os << " — " << supervision.final_status.ToString();
    }
    os << "\n";
  }
  if (!drain_status.ok()) os << drain_status.ToString() << "\n";
  return os.str();
}

Job Job::Of(dsl::Pipeline pipeline) {
  Job job;
  job.name_ = pipeline.name();
  auto topo = std::move(pipeline).Build();
  if (!topo.ok()) {
    job.init_error_ = topo.status();
  } else {
    job.topo_ = std::make_shared<const api::Topology>(std::move(topo).value());
  }
  return job;
}

Job Job::Of(api::Topology topology) {
  Job job;
  job.name_ = topology.name();
  job.topo_ = std::make_shared<const api::Topology>(std::move(topology));
  return job;
}

Job Job::Of(std::shared_ptr<const api::Topology> topology) {
  Job job;
  if (topology == nullptr) {
    job.init_error_ = Status::InvalidArgument("Job::Of: null topology");
    return job;
  }
  job.name_ = topology->name();
  job.topo_ = std::move(topology);
  return job;
}

Job& Job::WithMachine(hw::MachineSpec machine) {
  machine_ = std::move(machine);
  return *this;
}

Job& Job::WithConfig(engine::EngineConfig config) {
  config_ = config;
  return *this;
}

Job& Job::WithExecutor(engine::ExecutorKind executor) {
  config_.executor = executor;
  return *this;
}

Job& Job::WithPlanner(Planner planner) {
  planner_ = planner;
  return *this;
}

Job& Job::WithPlannerOptions(opt::RlasOptions options) {
  options_ = std::move(options);
  return *this;
}

Job& Job::WithProfiles(model::ProfileSet profiles) {
  profiles_ = std::move(profiles);
  return *this;
}

Job& Job::WithProfiler(profiler::ProfilerConfig config) {
  profiler_config_ = config;
  return *this;
}

Job& Job::WithTelemetry(std::shared_ptr<SinkTelemetry> telemetry) {
  telemetry_ = std::move(telemetry);
  return *this;
}

Job& Job::WithSeed(uint64_t seed) {
  config_.seed = seed;
  return *this;
}

Job& Job::WithDrainTimeout(double seconds) {
  config_.drain_timeout_s = seconds;
  return *this;
}

Job& Job::WithFaults(engine::FaultPlan faults) {
  config_.faults = std::move(faults);
  return *this;
}

Job& Job::WithCheckpointing(double interval_s) {
  supervision_enabled_ = true;
  supervisor_options_.checkpoint_interval_s = interval_s;
  return *this;
}

Job& Job::WithSupervision(engine::SupervisorOptions options) {
  supervision_enabled_ = true;
  supervisor_options_ = options;
  return *this;
}

Job& Job::WithAutopilot(double interval_s) {
  autopilot_enabled_ = true;
  autopilot_interval_s_ = interval_s;
  autopilot_options_.reset();  // inherit the job's RLAS options
  return *this;
}

Job& Job::WithAutopilot(double interval_s, opt::DynamicOptions options) {
  autopilot_enabled_ = true;
  autopilot_interval_s_ = interval_s;
  autopilot_options_ = std::move(options);
  return *this;
}

StatusOr<std::unique_ptr<Job::Deployment>> Job::Deploy() {
  BRISK_RETURN_NOT_OK(init_error_);

  auto deployment = std::unique_ptr<Deployment>(new Deployment());
  deployment->topo_ = topo_;
  deployment->telemetry_ = telemetry_;
  JobReport& report = deployment->report_;
  report.job_name = name_;
  report.planner = planner_;
  report.topology = topo_;

  // 1. Operator cost profiles: supplied, or measured in isolation
  // (§3.1) by the profiler.
  if (profiles_.has_value()) {
    report.profiles = *profiles_;
  } else {
    BRISK_ASSIGN_OR_RETURN(profiler::AppProfile app_profile,
                           profiler::ProfileApp(*topo_, profiler_config_));
    report.profiles = std::move(app_profile.profiles);
    report.profiled = true;
  }

  // 2. Replication + placement with the selected planner. RLAS runs
  // its joint scaling+placement search; every baseline shares one
  // shape: base-parallelism plan -> placement heuristic -> evaluate.
  const model::PerfModel perf_model(&machine_, &report.profiles);
  const double rate = options_.placement.input_rate_tps;
  if (planner_ == Planner::kRlas) {
    const opt::RlasOptimizer optimizer(&machine_, &report.profiles, options_);
    BRISK_ASSIGN_OR_RETURN(opt::RlasResult result, optimizer.Optimize(*topo_));
    report.plan = std::move(result.plan);
    report.model = std::move(result.model);
    report.scaling_iterations = result.scaling_iterations;
    report.optimize_seconds = result.optimize_seconds;
  } else {
    BRISK_ASSIGN_OR_RETURN(model::ExecutionPlan plan,
                           model::ExecutionPlan::CreateDefault(topo_.get()));
    auto place = [&]() -> StatusOr<model::ExecutionPlan> {
      switch (planner_) {
        case Planner::kFirstFit:
          return opt::PlaceFirstFit(perf_model, std::move(plan), rate);
        case Planner::kRoundRobin:
          return opt::PlaceRoundRobin(machine_, std::move(plan));
        default:
          return opt::PlaceOsDefault(machine_, std::move(plan));
      }
    };
    BRISK_ASSIGN_OR_RETURN(report.plan, place());
    BRISK_ASSIGN_OR_RETURN(report.model,
                           perf_model.Evaluate(report.plan, rate));
  }

  // 3. Deploy on the engine, with the NUMA emulator charging remote
  // fetches when the config asks for it.
  if (config_.numa_emulation) {
    deployment->numa_ = std::make_unique<hw::NumaEmulator>(machine_);
  }
  BRISK_ASSIGN_OR_RETURN(
      deployment->runtime_,
      engine::BriskRuntime::Create(topo_.get(), report.plan, config_,
                                   deployment->numa_.get()));

  // Profiling pre-executes sink operators, which report into the same
  // telemetry; reset so the report covers only the live run.
  if (deployment->telemetry_) deployment->telemetry_->Reset();
  BRISK_RETURN_NOT_OK(deployment->runtime_->Start());

  if (supervision_enabled_) {
    // Start supervision before the autopilot so the initial checkpoint
    // exists before any live migration can fail.
    deployment->supervisor_ = std::make_unique<engine::Supervisor>(
        deployment->runtime_.get(), supervisor_options_);
    BRISK_RETURN_NOT_OK(deployment->supervisor_->Start());
  }

  if (autopilot_enabled_) {
    opt::DynamicOptions dyn;
    if (autopilot_options_.has_value()) {
      dyn = *autopilot_options_;
    } else {
      dyn.rlas = options_;  // re-optimize with the job's planner knobs
    }
    engine::ObservationConfig observation;
    // Express observed T_e in the same reference clock the planner's
    // profiles use, or the unit mismatch itself reads as drift. With
    // user-supplied profiles the caller owns the convention (the
    // robust pattern is supplying engine-observed profiles, which are
    // 1 GHz-referenced — the default).
    if (report.profiled) {
      observation.reference_ghz = profiler_config_.reference_ghz;
    }
    deployment->StartAutopilot(autopilot_interval_s_, std::move(dyn),
                               machine_, observation);
  }
  return deployment;
}

StatusOr<JobReport> Job::Run(double seconds) {
  BRISK_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> deployment, Deploy());
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return deployment->Stop();
}

Job::Deployment::~Deployment() {
  StopAutopilot();  // BriskRuntime stops itself
}

void Job::Deployment::StartAutopilot(double interval_s,
                                     opt::DynamicOptions options,
                                     hw::MachineSpec machine,
                                     engine::ObservationConfig observation) {
  autopilot_interval_s_ = interval_s;
  autopilot_options_ = std::move(options);
  autopilot_machine_ = std::move(machine);
  autopilot_observation_ = observation;
  autopilot_plan_ = report_.plan;
  autopilot_profiles_ = report_.profiles;
  autopilot_stop_ = false;
  autopilot_thread_ = std::thread([this] { AutopilotLoop(); });
}

void Job::Deployment::StopAutopilot() {
  if (!autopilot_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(autopilot_mu_);
    autopilot_stop_ = true;
  }
  autopilot_cv_.notify_all();
  autopilot_thread_.join();
}

void Job::Deployment::AutopilotLoop() {
  engine::BriskRuntime& rt = *runtime_;
  const opt::DynamicReoptimizer reopt(&autopilot_machine_,
                                      autopilot_options_);
  const engine::ObservationConfig observation = autopilot_observation_;
  engine::RunStats base = rt.SnapshotStats();
  int base_epoch = rt.epoch();
  // Damping state: windowed T_e on a busy host jitters far more than
  // real drift, so raw windows feed an EWMA and a freshly migrated
  // engine gets settle_windows of grace before the next check.
  model::ProfileSet smoothed;
  bool have_smoothed = false;
  int settle = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(autopilot_mu_);
      if (autopilot_cv_.wait_for(
              lock, std::chrono::duration<double>(autopilot_interval_s_),
              [this] { return autopilot_stop_; })) {
        return;
      }
    }
    engine::RunStats now = rt.SnapshotStats();
    // A stale window (the instance space changed under us) only resets
    // the baseline; the next interval observes the new epoch.
    if (rt.epoch() != base_epoch || now.tasks.size() != base.tasks.size()) {
      base = std::move(now);
      base_epoch = rt.epoch();
      continue;
    }
    // Windowed deltas: observe the *recent* workload, not the
    // whole-run average, so drift shows up within one interval.
    engine::RunStats window;
    window.tasks.resize(now.tasks.size());
    uint64_t window_tuples = 0;
    for (size_t i = 0; i < now.tasks.size(); ++i) {
      window.tasks[i].tuples_in =
          now.tasks[i].tuples_in - base.tasks[i].tuples_in;
      window.tasks[i].tuples_out =
          now.tasks[i].tuples_out - base.tasks[i].tuples_out;
      window.tasks[i].busy_ns = now.tasks[i].busy_ns - base.tasks[i].busy_ns;
      window_tuples += window.tasks[i].tuples_in;
    }
    base = std::move(now);
    if (window_tuples == 0) continue;  // idle window: nothing to learn

    auto observed = engine::ObserveProfiles(*topo_, autopilot_plan_, window,
                                            autopilot_profiles_, observation);
    if (!observed.ok()) continue;
    if (!have_smoothed) {
      smoothed = std::move(*observed);
      have_smoothed = true;
    } else {
      engine::BlendProfiles(&smoothed, *observed,
                            autopilot_options_.observation_ewma_alpha);
    }
    if (settle > 0) {
      --settle;  // keep smoothing, skip the check while warming up
      continue;
    }
    auto decision =
        reopt.Check(*topo_, autopilot_plan_, autopilot_profiles_, smoothed);
    if (!decision.ok() || !decision->reoptimized) continue;

    MigrationRecord record;
    record.at_seconds = base.duration_s;
    record.drift = decision->drift;
    record.expected_gain = decision->expected_gain;
    record.moves = decision->migration.moves;
    record.starts = decision->migration.starts;
    record.stops = decision->migration.stops;
    const Status applied = rt.ApplyMigration(decision->migration);
    record.applied = applied.ok();
    if (!applied.ok()) record.error = applied.ToString();
    {
      std::lock_guard<std::mutex> lock(autopilot_mu_);
      autopilot_records_.push_back(std::move(record));
    }
    if (applied.ok()) {
      // The new plan was optimized *for* the smoothed observation: it
      // becomes the planned baseline the next drift is measured from,
      // the EWMA restarts (the rebuilt engine is a new measurement
      // context), and the check sits out the settle grace.
      autopilot_plan_ = decision->new_plan;
      autopilot_profiles_ = smoothed;
      have_smoothed = false;
      settle = autopilot_options_.settle_windows;
    }
    base = rt.SnapshotStats();
    base_epoch = rt.epoch();
  }
}

const JobReport& Job::Deployment::Stop() {
  StopAutopilot();
  if (stopped_) return report_;
  stopped_ = true;
  if (supervisor_) report_.supervision = supervisor_->Stop();
  report_.stats = runtime_->Stop();
  report_.migrations = std::move(autopilot_records_);
  if (report_.stats.drain_timed_out) {
    report_.drain_status = Status::DeadlineExceeded(
        "a quiesce drain ran past the configured drain timeout; the "
        "residual sweep delivered the backlog");
  }
  if (telemetry_) {
    report_.sink_tuples = telemetry_->count();
    report_.sink_latency_ns = telemetry_->LatencySnapshot();
  }
  return report_;
}

}  // namespace brisk
