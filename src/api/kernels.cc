#include "api/kernels.h"

#include <cstring>

namespace brisk::api {

namespace detail {

std::string KeyOf(const Field& f) {
  switch (f.index()) {
    case 0: {
      const int64_t v = f.AsInt();
      std::string key(1 + sizeof(v), 'i');
      std::memcpy(&key[1], &v, sizeof(v));
      return key;
    }
    case 1: {
      const double v = f.AsDouble();
      std::string key(1 + sizeof(v), 'd');
      std::memcpy(&key[1], &v, sizeof(v));
      return key;
    }
    default: {
      const std::string_view s = f.AsString();
      std::string key;
      key.reserve(1 + s.size());
      key.push_back('s');
      key.append(s);
      return key;
    }
  }
}

Field FieldOf(const std::string& key) {
  if (key.empty()) return Field();
  switch (key[0]) {
    case 'i': {
      int64_t v = 0;
      std::memcpy(&v, key.data() + 1, sizeof(v));
      return Field(v);
    }
    case 'd': {
      double v = 0;
      std::memcpy(&v, key.data() + 1, sizeof(v));
      return Field(v);
    }
    default:
      return Field(std::string_view(key).substr(1));
  }
}

}  // namespace detail

namespace {

bool CmpInt(int64_t v, CmpOp op, int64_t k) {
  switch (op) {
    case CmpOp::kLt:
      return v < k;
    case CmpOp::kLe:
      return v <= k;
    case CmpOp::kGt:
      return v > k;
    case CmpOp::kGe:
      return v >= k;
    case CmpOp::kEq:
      return v == k;
    case CmpOp::kNe:
      return v != k;
  }
  return false;
}

// Wrap-around int64 arithmetic: evaluated in uint64 so overflow is
// defined (and UBSan-clean) on every input.
int64_t NumInt(int64_t v, NumOp op, int64_t k) {
  const uint64_t a = static_cast<uint64_t>(v);
  const uint64_t b = static_cast<uint64_t>(k);
  switch (op) {
    case NumOp::kAdd:
      return static_cast<int64_t>(a + b);
    case NumOp::kSub:
      return static_cast<int64_t>(a - b);
    case NumOp::kMul:
      return static_cast<int64_t>(a * b);
  }
  return v;
}

const char* CmpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

const char* NumName(NumOp op) {
  switch (op) {
    case NumOp::kAdd:
      return "+";
    case NumOp::kSub:
      return "-";
    case NumOp::kMul:
      return "*";
  }
  return "?";
}

}  // namespace

KernelDesc FilterOf(std::function<bool(const Tuple&)> pred,
                    double selectivity_hint, std::string debug) {
  KernelDesc d;
  d.kind = KernelKind::kFilter;
  d.debug = std::move(debug);
  d.selectivity_hint = selectivity_hint;
  d.filter_row = std::move(pred);
  d.filter_batch = [pred = d.filter_row](JumboTuple& b, SelectionVector& sel) {
    sel.ForEachSet([&](size_t i) {
      if (!pred(b.tuples[i])) sel.Clear(i);
    });
  };
  return d;
}

KernelDesc MapOf(std::function<void(Tuple&)> fn, std::string debug) {
  KernelDesc d;
  d.kind = KernelKind::kMap;
  d.debug = std::move(debug);
  d.map_row = std::move(fn);
  d.map_batch = [fn = d.map_row](JumboTuple& b, const SelectionVector& sel) {
    sel.ForEachSet([&](size_t i) { fn(b.tuples[i]); });
  };
  return d;
}

KernelDesc FlatMapOf(std::function<void(const Tuple&, RowEmitter&)> fn,
                     double selectivity_hint, std::string debug) {
  KernelDesc d;
  d.kind = KernelKind::kFlatMap;
  d.debug = std::move(debug);
  d.selectivity_hint = selectivity_hint;
  d.expand_row = std::move(fn);
  return d;
}

KernelDesc FilterCmpConst(size_t col, CmpOp op, int64_t literal,
                          double selectivity_hint) {
  KernelDesc d;
  d.kind = KernelKind::kFilter;
  d.debug = "filter(f" + std::to_string(col) + CmpName(op) +
            std::to_string(literal) + ")";
  d.selectivity_hint = selectivity_hint;
  d.filter_row = [col, op, literal](const Tuple& t) {
    return CmpInt(t.fields[col].AsInt(), op, literal);
  };
  // Dense loop over live rows; the CmpOp switch hoists out of the loop
  // once the compiler clones the lambda per op value at -O2.
  d.filter_batch = [col, op, literal](JumboTuple& b, SelectionVector& sel) {
    Tuple* rows = b.tuples.data();
    sel.ForEachSet([&](size_t i) {
      if (!CmpInt(rows[i].fields[col].AsInt(), op, literal)) sel.Clear(i);
    });
  };
  return d;
}

KernelDesc MapNumConst(size_t col, NumOp op, int64_t literal) {
  KernelDesc d;
  d.kind = KernelKind::kMap;
  d.debug = "map(f" + std::to_string(col) + NumName(op) +
            std::to_string(literal) + ")";
  d.map_row = [col, op, literal](Tuple& t) {
    t.fields[col] = Field(NumInt(t.fields[col].AsInt(), op, literal));
  };
  d.map_batch = [col, op, literal](JumboTuple& b, const SelectionVector& sel) {
    Tuple* rows = b.tuples.data();
    sel.ForEachSet([&](size_t i) {
      Field& f = rows[i].fields[col];
      f = Field(NumInt(f.AsInt(), op, literal));
    });
  };
  return d;
}

}  // namespace brisk::api
