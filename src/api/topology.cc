#include "api/topology.h"

#include <algorithm>
#include <queue>
#include <set>
#include <sstream>

namespace brisk::api {

const char* GroupingTypeName(GroupingType g) {
  switch (g) {
    case GroupingType::kShuffle:
      return "shuffle";
    case GroupingType::kFields:
      return "fields";
    case GroupingType::kBroadcast:
      return "broadcast";
    case GroupingType::kGlobal:
      return "global";
  }
  return "?";
}

StatusOr<uint16_t> OperatorDecl::StreamId(const std::string& stream) const {
  return ResolveStreamId(output_streams, name, stream);
}

StatusOr<int> Topology::OpId(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no operator named '" + name + "'");
  }
  return it->second;
}

std::string Topology::ToString() const {
  std::ostringstream os;
  os << "Topology '" << name_ << "' (" << ops_.size() << " operators)\n";
  for (const auto& op : ops_) {
    os << "  [" << op.id << "] " << op.name
       << (op.is_spout ? " (spout)" : "") << " x" << op.base_parallelism;
    for (const auto& sub : op.inputs) {
      os << "  <- " << ops_[sub.producer_op].name << "."
         << ops_[sub.producer_op].output_streams[sub.stream_id] << " ("
         << GroupingTypeName(sub.grouping) << ")";
    }
    os << "\n";
  }
  return os.str();
}

TopologyBuilder::SpoutDeclarer TopologyBuilder::AddSpout(
    const std::string& name, SpoutFactory factory, int parallelism) {
  OperatorDecl decl;
  decl.id = static_cast<int>(ops_.size());
  decl.name = name;
  decl.is_spout = true;
  decl.spout_factory = std::move(factory);
  decl.base_parallelism = parallelism;
  ops_.push_back(std::move(decl));
  return SpoutDeclarer(this, ops_.back().id);
}

TopologyBuilder::BoltDeclarer TopologyBuilder::AddBolt(
    const std::string& name, OperatorFactory factory, int parallelism) {
  OperatorDecl decl;
  decl.id = static_cast<int>(ops_.size());
  decl.name = name;
  decl.is_spout = false;
  decl.bolt_factory = std::move(factory);
  decl.base_parallelism = parallelism;
  ops_.push_back(std::move(decl));
  return BoltDeclarer(this, ops_.back().id);
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::ShuffleFrom(
    const std::string& producer, const std::string& stream) {
  parent_->pending_.push_back(
      {op_id_, producer, stream, GroupingType::kShuffle, 0});
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::FieldsFrom(
    const std::string& producer, size_t key_field,
    const std::string& stream) {
  parent_->pending_.push_back(
      {op_id_, producer, stream, GroupingType::kFields, key_field});
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::BroadcastFrom(
    const std::string& producer, const std::string& stream) {
  parent_->pending_.push_back(
      {op_id_, producer, stream, GroupingType::kBroadcast, 0});
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::GlobalFrom(
    const std::string& producer, const std::string& stream) {
  parent_->pending_.push_back(
      {op_id_, producer, stream, GroupingType::kGlobal, 0});
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::DeclareStream(
    const std::string& stream) {
  parent_->DeclareStreamOn(op_id_, stream);
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::WithKernels(
    std::vector<KernelDesc> kernels) {
  parent_->ops_[op_id_].kernels = std::move(kernels);
  return *this;
}

TopologyBuilder::BoltDeclarer& TopologyBuilder::BoltDeclarer::WithChain(
    std::vector<std::string> members, std::vector<OperatorFactory> bolts) {
  auto& decl = parent_->ops_[op_id_];
  decl.chain_members = std::move(members);
  decl.chain_bolts = std::move(bolts);
  return *this;
}

TopologyBuilder::SpoutDeclarer& TopologyBuilder::SpoutDeclarer::DeclareStream(
    const std::string& stream) {
  parent_->DeclareStreamOn(op_id_, stream);
  return *this;
}

TopologyBuilder::SpoutDeclarer& TopologyBuilder::SpoutDeclarer::WithChain(
    std::vector<std::string> members, SpoutFactory head,
    std::vector<OperatorFactory> bolts) {
  auto& decl = parent_->ops_[op_id_];
  decl.chain_members = std::move(members);
  decl.chain_spout = std::move(head);
  decl.chain_bolts = std::move(bolts);
  return *this;
}

void TopologyBuilder::DeclareStreamOn(int op_id, const std::string& stream) {
  auto& streams = ops_[op_id].output_streams;
  if (FindStreamId(streams, stream) >= 0) {
    // Builder-time misuse: recorded here, surfaced at Build() — the
    // declarer chain cannot report a Status mid-fluent-call.
    if (deferred_error_.ok()) {
      deferred_error_ = Status::AlreadyExists(
          "operator '" + ops_[op_id].name + "' declares stream '" + stream +
          "' twice");
    }
    return;
  }
  streams.push_back(stream);
}

StatusOr<Topology> TopologyBuilder::Build() && {
  if (!deferred_error_.ok()) return deferred_error_;
  if (ops_.empty()) {
    return Status::InvalidArgument("topology '" + name_ + "' is empty");
  }

  // Unique names.
  std::map<std::string, int> by_name;
  for (const auto& op : ops_) {
    if (op.name.empty()) {
      return Status::InvalidArgument("operator with empty name");
    }
    if (!by_name.emplace(op.name, op.id).second) {
      return Status::AlreadyExists("duplicate operator name '" + op.name +
                                   "'");
    }
    if (op.base_parallelism < 1) {
      return Status::InvalidArgument("operator '" + op.name +
                                     "' has parallelism < 1");
    }
  }

  Topology topo;
  topo.name_ = name_;
  topo.ops_ = ops_;
  topo.by_name_ = by_name;

  // Resolve subscriptions.
  for (const auto& sub : pending_) {
    auto it = by_name.find(sub.producer);
    if (it == by_name.end()) {
      return Status::NotFound("operator '" + ops_[sub.consumer_op].name +
                              "' subscribes to unknown producer '" +
                              sub.producer + "'");
    }
    const int producer_id = it->second;
    if (producer_id == sub.consumer_op) {
      return Status::InvalidArgument("operator '" + sub.producer +
                                     "' subscribes to itself");
    }
    Subscription s;
    s.producer_op = producer_id;
    BRISK_ASSIGN_OR_RETURN(
        s.stream_id, ResolveStreamId(ops_[producer_id].output_streams,
                                     sub.producer, sub.stream));
    s.grouping = sub.grouping;
    s.key_field = sub.key_field;
    topo.ops_[sub.consumer_op].inputs.push_back(s);

    StreamEdge e;
    e.producer_op = producer_id;
    e.stream_id = s.stream_id;
    e.consumer_op = sub.consumer_op;
    e.grouping = sub.grouping;
    e.key_field = sub.key_field;
    topo.edges_.push_back(e);
  }

  // Structural checks.
  for (const auto& op : topo.ops_) {
    if (op.is_spout) {
      if (!op.inputs.empty()) {
        return Status::InvalidArgument("spout '" + op.name +
                                       "' must not have inputs");
      }
      if (!op.spout_factory) {
        return Status::InvalidArgument("spout '" + op.name +
                                       "' has no factory");
      }
      topo.spouts_.push_back(op.id);
    } else {
      if (op.inputs.empty()) {
        return Status::InvalidArgument("bolt '" + op.name +
                                       "' has no inputs");
      }
      if (!op.bolt_factory) {
        return Status::InvalidArgument("bolt '" + op.name +
                                       "' has no factory");
      }
    }
  }
  if (topo.spouts_.empty()) {
    return Status::InvalidArgument("topology has no spout");
  }

  // Sinks: no out-edges.
  std::set<int> has_out;
  for (const auto& e : topo.edges_) has_out.insert(e.producer_op);
  for (const auto& op : topo.ops_) {
    if (!has_out.count(op.id)) topo.sinks_.push_back(op.id);
  }

  // Kahn's algorithm: topological order + cycle detection.
  const int n = topo.num_operators();
  std::vector<int> indegree(n, 0);
  for (const auto& e : topo.edges_) ++indegree[e.consumer_op];
  std::queue<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  while (!ready.empty()) {
    const int u = ready.front();
    ready.pop();
    topo.topo_order_.push_back(u);
    for (const auto& e : topo.edges_) {
      if (e.producer_op == u && --indegree[e.consumer_op] == 0) {
        ready.push(e.consumer_op);
      }
    }
  }
  if (static_cast<int>(topo.topo_order_.size()) != n) {
    return Status::InvalidArgument("topology contains a cycle");
  }

  // Adjacency, both directions, so InEdges/OutEdges are O(1) lookups in
  // the optimizer's inner loops.
  topo.in_edges_.resize(n);
  topo.out_edges_.resize(n);
  for (const auto& e : topo.edges_) {
    topo.in_edges_[e.consumer_op].push_back(e);
    topo.out_edges_[e.producer_op].push_back(e);
  }

  return topo;
}

}  // namespace brisk::api
