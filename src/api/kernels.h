// Typed kernel descriptors — the vocabulary compiled pipelines are
// built from.
//
// A KernelDesc describes one stage of a fused chain in both of the
// forms the engine can execute:
//
//   * row-wise closures (`filter_row` / `map_row` / `expand_row`) —
//     the interpreted fallback, used when the engine runs tuple at a
//     time (serialization modes, spout-side chains, property tests);
//   * optional batch closures (`filter_batch` / `map_batch`) — tight
//     loops over one JumboTuple under a SelectionVector, used by
//     CompiledPipeline::RunBatch.
//
// Both forms are provided by the constructors below, so a chain of
// descriptors is executable either way with identical semantics; the
// randomized equivalence test in tests/api/kernel_pipeline_test.cc
// holds the two paths to the exact same output sequence.
//
// Descriptors are plain copyable values: the dsl layer attaches them
// to topology nodes, the fusion pass concatenates them across fused
// operators, and each engine replica compiles its own private copy
// (aggregate state is created per replica via `make_aggregate`).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/operator.h"
#include "common/column_batch.h"
#include "common/tuple.h"

namespace brisk::api {

namespace detail {
/// Canonical map key for a grouping field (type-tagged so an int and a
/// string with identical bytes never collide). Shared with dsl
/// aggregates so kernel and lambda state interoperate.
std::string KeyOf(const Field& f);
/// Inverse of KeyOf: reconstructs the Field exactly, so exported state
/// re-hashes the way live tuples do.
Field FieldOf(const std::string& key);
}  // namespace detail

enum class KernelKind : uint8_t { kMap, kFilter, kFlatMap, kAggregate };

/// Comparison / arithmetic vocabulary for the constant-folding
/// constructors (the cases a bench or simple parser chain needs; use
/// the closure constructors for anything richer).
enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };
enum class NumOp : uint8_t { kAdd, kSub, kMul };

/// Row sink for expanding kernels (FlatMap bodies, aggregate
/// emissions). Emitted tuples with an unset origin timestamp inherit
/// the input row's — the same rule dsl::Collector::Derive applies.
class RowEmitter {
 public:
  virtual ~RowEmitter() = default;
  virtual void Emit(Tuple t) = 0;
};

/// Per-replica keyed aggregate execution state. Update order is the
/// batch's ascending row order in both execution modes, so state
/// evolution is identical between interpreted and compiled runs.
class AggregateExec {
 public:
  virtual ~AggregateExec() = default;
  virtual void UpdateRow(const Tuple& in, RowEmitter& out) = 0;
  /// Live-migration hand-off, mirroring api::Operator's contract:
  /// export clears the local state.
  virtual std::vector<KeyedStateEntry> ExportKeyedState() = 0;
  virtual void ImportKeyedState(std::vector<KeyedStateEntry> entries) = 0;
  /// Checkpoint hooks, mirroring api::Operator's contract: Snapshot
  /// copies state without clearing it, Restore installs entries into a
  /// fresh replica. Defaults make a stage non-checkpointable (state is
  /// rebuilt only through source replay).
  virtual std::vector<CheckpointEntry> SnapshotKeyedState() { return {}; }
  virtual void RestoreKeyedState(std::vector<CheckpointEntry> entries) {
    (void)entries;
  }
};

/// One pipeline stage. `kind` picks which members are meaningful:
/// filters carry filter_row (+ optional filter_batch), maps carry
/// map_row (+ optional map_batch), flatmaps carry expand_row, and
/// aggregates carry key_field + make_aggregate.
///
/// Batch closures may only *clear* selection bits and may read any
/// row (dead rows hold valid, if stale, tuples); clearing bits of the
/// word currently being iterated by ForEachSet is safe because the
/// walk snapshots each word.
struct KernelDesc {
  KernelKind kind = KernelKind::kMap;
  /// Human-readable stage label for JobReport / bench output.
  std::string debug;
  /// Expected output:input ratio, feeding the fused cost model.
  double selectivity_hint = 1.0;

  std::function<bool(const Tuple&)> filter_row;
  std::function<void(JumboTuple&, SelectionVector&)> filter_batch;

  std::function<void(Tuple&)> map_row;
  std::function<void(JumboTuple&, const SelectionVector&)> map_batch;

  std::function<void(const Tuple&, RowEmitter&)> expand_row;

  /// Aggregates: tuple field the state is keyed by, and a factory for
  /// the per-replica execution state.
  int key_field = -1;
  std::function<std::unique_ptr<AggregateExec>()> make_aggregate;
};

/// Filter from an arbitrary keep-predicate.
KernelDesc FilterOf(std::function<bool(const Tuple&)> pred,
                    double selectivity_hint = 1.0, std::string debug = "filter");

/// In-place one-to-one transform from an arbitrary closure.
KernelDesc MapOf(std::function<void(Tuple&)> fn, std::string debug = "map");

/// Expanding transform (0..n outputs per input).
KernelDesc FlatMapOf(std::function<void(const Tuple&, RowEmitter&)> fn,
                     double selectivity_hint = 1.0,
                     std::string debug = "flatmap");

/// `keep row iff fields[col] <op> literal` with a dense batch loop.
KernelDesc FilterCmpConst(size_t col, CmpOp op, int64_t literal,
                          double selectivity_hint = 0.5);

/// `fields[col] = fields[col] <op> literal` (int64, wrap-around
/// arithmetic) with a dense batch loop.
KernelDesc MapNumConst(size_t col, NumOp op, int64_t literal);

/// Keyed aggregate over `State`: one State (copied from `init`) per
/// distinct value of fields[key_field] per replica, updated by `fn`,
/// which also decides what to emit. Interoperates with live plan
/// migration exactly like dsl::KeyedStream::Aggregate — entries are
/// exported as (Field key, shared_ptr<State>), re-bucketed by the
/// fields-grouping hash, and imported by assignment (each key lives in
/// exactly one old replica).
template <typename State>
class TypedAggregate final : public AggregateExec {
 public:
  /// Encodes one State value as a serializable Tuple (and back) for
  /// checkpoints. Arithmetic States get a codec derived automatically;
  /// richer States pass one explicitly or stay non-checkpointable.
  using StateEncoder = std::function<Tuple(const State&)>;
  using StateDecoder = std::function<State(const Tuple&)>;

  TypedAggregate(size_t key_field, State init,
                 std::function<void(State&, const Tuple&, RowEmitter&)> fn)
      : key_field_(key_field), init_(std::move(init)), fn_(std::move(fn)) {
    InstallDefaultCodec();
  }

  TypedAggregate(size_t key_field, State init,
                 std::function<void(State&, const Tuple&, RowEmitter&)> fn,
                 StateEncoder encode, StateDecoder decode)
      : key_field_(key_field),
        init_(std::move(init)),
        fn_(std::move(fn)),
        encode_(std::move(encode)),
        decode_(std::move(decode)) {}

  void UpdateRow(const Tuple& in, RowEmitter& out) override {
    auto [it, fresh] =
        states_.try_emplace(detail::KeyOf(in.fields[key_field_]), init_);
    (void)fresh;
    fn_(it->second, in, out);
  }

  std::vector<KeyedStateEntry> ExportKeyedState() override {
    std::vector<KeyedStateEntry> out;
    out.reserve(states_.size());
    for (auto& [k, v] : states_) {
      out.push_back(
          {detail::FieldOf(k), std::make_shared<State>(std::move(v))});
    }
    states_.clear();
    return out;
  }

  void ImportKeyedState(std::vector<KeyedStateEntry> entries) override {
    for (auto& e : entries) {
      states_[detail::KeyOf(e.key)] =
          std::move(*std::static_pointer_cast<State>(e.state));
    }
  }

  std::vector<CheckpointEntry> SnapshotKeyedState() override {
    std::vector<CheckpointEntry> out;
    if (!encode_) return out;
    out.reserve(states_.size());
    for (const auto& [k, v] : states_) {
      out.push_back({detail::FieldOf(k), encode_(v)});
    }
    return out;
  }

  void RestoreKeyedState(std::vector<CheckpointEntry> entries) override {
    if (!decode_) return;
    for (auto& e : entries) {
      states_[detail::KeyOf(e.key)] = decode_(e.state);
    }
  }

 private:
  void InstallDefaultCodec() {
    if constexpr (std::is_arithmetic_v<State>) {
      encode_ = [](const State& s) {
        Tuple t;
        if constexpr (std::is_floating_point_v<State>) {
          t.fields.emplace_back(static_cast<double>(s));
        } else {
          t.fields.emplace_back(static_cast<int64_t>(s));
        }
        return t;
      };
      decode_ = [](const Tuple& t) {
        if constexpr (std::is_floating_point_v<State>) {
          return static_cast<State>(t.fields[0].AsDouble());
        } else {
          return static_cast<State>(t.fields[0].AsInt());
        }
      };
    }
  }

  size_t key_field_;
  State init_;
  std::function<void(State&, const Tuple&, RowEmitter&)> fn_;
  StateEncoder encode_;
  StateDecoder decode_;
  std::unordered_map<std::string, State> states_;
};

template <typename State>
KernelDesc AggregateOf(
    size_t key_field, State init,
    std::function<void(State&, const Tuple&, RowEmitter&)> fn,
    double selectivity_hint = 1.0, std::string debug = "aggregate") {
  KernelDesc d;
  d.kind = KernelKind::kAggregate;
  d.debug = std::move(debug);
  d.selectivity_hint = selectivity_hint;
  d.key_field = static_cast<int>(key_field);
  d.make_aggregate = [key_field, init = std::move(init),
                      fn = std::move(fn)]() -> std::unique_ptr<AggregateExec> {
    return std::make_unique<TypedAggregate<State>>(key_field, init, fn);
  };
  return d;
}

/// AggregateOf with an explicit checkpoint codec, for States richer
/// than a single arithmetic value (windows, sketches): `encode` must
/// capture the state bit-exactly — recovery asserts restored replicas
/// behave identically to never-crashed ones.
template <typename State>
KernelDesc AggregateOf(
    size_t key_field, State init,
    std::function<void(State&, const Tuple&, RowEmitter&)> fn,
    std::function<Tuple(const State&)> encode,
    std::function<State(const Tuple&)> decode, double selectivity_hint = 1.0,
    std::string debug = "aggregate") {
  KernelDesc d;
  d.kind = KernelKind::kAggregate;
  d.debug = std::move(debug);
  d.selectivity_hint = selectivity_hint;
  d.key_field = static_cast<int>(key_field);
  d.make_aggregate = [key_field, init = std::move(init), fn = std::move(fn),
                      encode = std::move(encode), decode = std::move(decode)]()
      -> std::unique_ptr<AggregateExec> {
    return std::make_unique<TypedAggregate<State>>(key_field, init, fn, encode,
                                                   decode);
  };
  return d;
}

}  // namespace brisk::api
