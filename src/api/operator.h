// Public operator API — the Storm/Heron-compatible surface (§5, App. A).
//
// Applications implement Spout (source) and Operator (bolt) and wire
// them into a Topology with TopologyBuilder. The same Topology object
// drives the real engine, the discrete-event simulator, and the RLAS
// optimizer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"

namespace brisk::api {

/// Index of `stream` in a declared-output-streams list, -1 when absent
/// — the one stream-name→id lookup every layer shares.
inline int FindStreamId(const std::vector<std::string>& streams,
                        const std::string& stream) {
  const auto it = std::find(streams.begin(), streams.end(), stream);
  return it == streams.end() ? -1 : static_cast<int>(it - streams.begin());
}

/// FindStreamId with the uniform NotFound diagnostic naming the
/// stream's owner.
inline StatusOr<uint16_t> ResolveStreamId(
    const std::vector<std::string>& streams, const std::string& owner,
    const std::string& stream) {
  const int id = FindStreamId(streams, stream);
  if (id < 0) {
    return Status::NotFound("operator '" + owner + "' declares no stream '" +
                            stream + "'");
  }
  return static_cast<uint16_t>(id);
}

/// Runtime information handed to an operator instance at Prepare time.
struct OperatorContext {
  /// Name of the logical operator this instance replicates.
  std::string operator_name;
  /// Replica index in [0, num_replicas).
  int replica_index = 0;
  /// Total replicas of this operator in the running plan.
  int num_replicas = 1;
  /// Virtual socket this instance is placed on (-1 if unplaced).
  int socket = -1;
  /// Per-replica deterministic seed, derived from the job-level seed
  /// (EngineConfig::seed / Job::WithSeed) so runs are reproducible.
  /// 0 when the job is unseeded — sources then fall back to their own
  /// workload-parameter seeds.
  uint64_t seed = 0;
  /// Declared output stream names of this operator; index is the
  /// stream id EmitTo takes (0 = "default").
  std::vector<std::string> output_streams;

  /// Stream id of a declared output stream, by name — operators that
  /// route to named streams resolve ids here at Prepare time instead of
  /// hard-coding declaration order.
  StatusOr<uint16_t> StreamId(const std::string& stream) const {
    return ResolveStreamId(output_streams, operator_name, stream);
  }
};

/// Sink for tuples an operator emits during Process/NextBatch.
///
/// Emit* takes ownership; the engine buffers emitted tuples into jumbo
/// tuples per consumer (§5.2). Stream ids index the operator's declared
/// output streams (0 = "default").
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;

  /// Emits on the default stream.
  virtual void Emit(Tuple t) = 0;

  /// Emits on a declared named stream.
  virtual void EmitTo(uint16_t stream_id, Tuple t) = 0;
};

/// One keyed-state entry exported for live re-partitioning (§5.3 plan
/// migration): the grouping key as a re-hashable Field — the engine
/// routes the entry to its new owner with the same hash the fields
/// grouping uses on tuples — plus the replica-local state behind a
/// type-erased handle (all replicas of one operator share the concrete
/// state type, so the cast back is safe by construction).
struct KeyedStateEntry {
  Field key;
  std::shared_ptr<void> state;
};

/// One keyed-state entry captured for a checkpoint. Unlike
/// KeyedStateEntry this is a value snapshot, not a handle hand-off: the
/// state is encoded as a plain Tuple so it survives serialization
/// (common/serde) and the operator keeps running untouched after the
/// capture. The key Field re-buckets the entry on restore exactly like
/// a live re-partition does.
struct CheckpointEntry {
  Field key;
  Tuple state;
};

class CompiledPipeline;

/// A continuously running stream operator ("bolt").
///
/// Implementations must be self-contained: one instance is created per
/// replica and is only ever driven by a single executor thread, so no
/// internal synchronization is needed (state partitioning across
/// replicas is the application's concern, via fields grouping).
class Operator {
 public:
  virtual ~Operator() = default;

  /// Non-null when this operator's whole behavior is a compiled kernel
  /// chain (api::KernelBolt): the engine then dispatches whole batches
  /// through CompiledPipeline::RunBatch instead of per-tuple Process
  /// calls. Row-wise operators keep the default.
  virtual CompiledPipeline* pipeline() { return nullptr; }

  /// Called once before any Process call.
  virtual Status Prepare(const OperatorContext& ctx) {
    (void)ctx;
    return Status::OK();
  }

  /// Handles one input tuple, emitting zero or more output tuples.
  virtual void Process(const Tuple& in, OutputCollector* out) = 0;

  /// Called at shutdown so stateful operators can emit final results.
  virtual void Flush(OutputCollector* out) { (void)out; }

  // Live-migration hooks. When an operator's replication level changes
  // at runtime, the key → replica mapping (hash % replicas) changes for
  // every key, so the engine quiesces the job, Exports the keyed state
  // of every old replica, re-buckets the entries with the new replica
  // count, and Imports each bucket into its new owner. Both calls run
  // on the migration thread while no execution thread is live. A
  // stateful operator that implements neither loses its per-key state
  // when its replication changes (never on pure moves — the operator
  // object travels with its replica).

  /// Exports this replica's per-key state and clears it locally.
  /// Default: stateless (nothing to hand off).
  virtual std::vector<KeyedStateEntry> ExportKeyedState() { return {}; }

  /// Merges entries re-bucketed to this replica by the engine.
  virtual void ImportKeyedState(std::vector<KeyedStateEntry> entries) {
    (void)entries;
  }

  // Checkpoint hooks. Snapshot runs while the job is quiesced (same
  // no-live-thread guarantee as Export/Import) but must NOT disturb the
  // replica's state — the job resumes from it afterwards. Restore runs
  // on a freshly Prepared replica during crash recovery and replaces
  // its (empty) keyed state. A stateful operator that implements
  // neither checkpoints as stateless: recovery then rebuilds its state
  // only through source replay.

  /// Copies this replica's per-key state into serializable entries.
  virtual std::vector<CheckpointEntry> SnapshotKeyedState() { return {}; }

  /// Installs entries re-bucketed to this replica from a checkpoint.
  virtual void RestoreKeyedState(std::vector<CheckpointEntry> entries) {
    (void)entries;
  }
};

/// Replay position of one source replica, unified across source kinds:
/// synthetic in-process spouts count tuples produced, file-backed
/// sources record the byte offset of the next unconsumed record, and
/// socket sources count per-connection sequence numbers (tuple-count
/// kind). The kind travels with the offset through the checkpoint
/// codec so a restore hands each source back a position in its own
/// coordinate system.
struct SourcePosition {
  enum class Kind : uint8_t { kTupleCount = 0, kByteOffset = 1 };

  Kind kind = Kind::kTupleCount;
  uint64_t offset = 0;

  static SourcePosition Tuples(uint64_t n) {
    return {Kind::kTupleCount, n};
  }
  static SourcePosition Bytes(uint64_t n) {
    return {Kind::kByteOffset, n};
  }

  bool operator==(const SourcePosition& o) const {
    return kind == o.kind && offset == o.offset;
  }
};

inline const char* SourcePositionKindName(SourcePosition::Kind kind) {
  return kind == SourcePosition::Kind::kByteOffset ? "byte-offset"
                                                   : "tuple-count";
}

/// A stream source. NextBatch is the pull interface the engine uses;
/// the spout stamps origin timestamps itself (via the collector's
/// tuples) for end-to-end latency accounting.
class Spout {
 public:
  virtual ~Spout() = default;

  virtual Status Prepare(const OperatorContext& ctx) {
    (void)ctx;
    return Status::OK();
  }

  /// Produces up to `max_tuples` tuples. Returns the number produced;
  /// returning 0 signals a bounded source is exhausted — unless
  /// Exhausted() says otherwise (external sources idle without ending).
  virtual size_t NextBatch(size_t max_tuples, OutputCollector* out) = 0;

  /// Whether a zero-tuple NextBatch means "done" (the default, for
  /// bounded synthetic sources) or merely "no input right now". An
  /// external source (socket) returns false while it could still
  /// receive data, so the engine treats empty batches as idle and keeps
  /// polling instead of retiring the source.
  virtual bool Exhausted() const { return true; }

  // Replay hooks for fault tolerance. A replayable source reports its
  // position (tuple count or byte offset — see SourcePosition) and can
  // rewind to an earlier position after a crash, re-producing the
  // identical record sequence from there (at-least-once delivery:
  // records between the checkpointed position and the crash are
  // emitted twice).

  /// Whether this source supports Position/Rewind replay.
  virtual bool Replayable() const { return false; }

  /// Current replay position of this replica.
  virtual SourcePosition Position() const { return {}; }

  /// Rewinds to `position`. Returns false when this source cannot
  /// replay from there (the default) — recovery then resumes the
  /// source from wherever it is, accepting gap-loss on that stream.
  virtual bool Rewind(const SourcePosition& position) {
    (void)position;
    return false;
  }

  /// Veto hook for job checkpoints. A non-OK status makes
  /// BriskRuntime::Checkpoint() return it as a structured refusal
  /// instead of capturing a snapshot that could not be replayed — the
  /// contract external non-replayable sources (sockets without an
  /// egress journal) use so a checkpointed job never silently loses
  /// their gap on restore. Replayable and synthetic sources keep the
  /// default OK.
  virtual Status CheckpointGuard() const { return Status::OK(); }
};

using OperatorFactory = std::function<std::unique_ptr<Operator>()>;
using SpoutFactory = std::function<std::unique_ptr<Spout>()>;

}  // namespace brisk::api
