#include "engine/task.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/serde.h"

namespace brisk::engine {

namespace {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Heap-allocated per-tuple header a non-jumbo runtime would carry for
/// every tuple (metadata + context, §5.2).
struct SimulatedTupleHeader {
  int64_t source_task;
  int64_t stream;
  int64_t sequence;
  char context[32];
};

}  // namespace

int Task::AddBuffer() {
  buffers_.emplace_back();
  return static_cast<int>(buffers_.size()) - 1;
}

void Task::AddOutRoute(OutRoute route) {
  const uint16_t sid = route.stream_id;
  if (last_route_for_stream_.size() <= sid) {
    last_route_for_stream_.resize(sid + 1, -1);
  }
  last_route_for_stream_[sid] = static_cast<int>(routes_.size());
  routes_.push_back(std::move(route));
}

Status Task::Prepare(const api::OperatorContext& ctx) {
  if (spout_) return spout_->Prepare(ctx);
  if (bolt_) return bolt_->Prepare(ctx);
  return Status::FailedPrecondition("task has neither spout nor bolt");
}

void Task::LegacyPerTupleWork(const Tuple& t) {
  if (config_.duplicate_headers) {
    // Real allocator churn: the duplicated metadata object a per-tuple
    // runtime allocates and immediately abandons.
    auto header = std::make_unique<SimulatedTupleHeader>();
    header->source_task = instance_id_;
    header->stream = t.stream_id;
    header->sequence = static_cast<int64_t>(stats_.tuples_out);
    // Touch it so the allocation is not elided.
    if (header->context[0] != 0) stats_.backpressure_spins += 0;
  }
  if (config_.extra_condition_checks) {
    // Guard/bookkeeping work (~dozens of branches): checksum the
    // field metadata the way exception scaffolding and ACK tracking
    // walk each tuple in a distributed runtime.
    uint64_t h = 1469598103934665603ULL;
    for (const auto& f : t.fields) {
      h = (h ^ static_cast<uint64_t>(f.index())) * 1099511628211ULL;
      h = (h ^ FieldSizeBytes(f)) * 1099511628211ULL;
    }
    if ((h & 0xFFF) == 0xABC) ++stats_.backpressure_spins;  // keep live
  }
}

void Task::AppendTuple(OutRoute& route, size_t i, Tuple&& t) {
  JumboTuple& buf = buffers_[route.buffer_index[i]];
  buf.tuples.push_back(std::move(t));
  if (static_cast<int>(buf.tuples.size()) >= config_.batch_size) {
    FlushBuffer(route.buffer_index[i], route.channels[i], false);
  }
}

void Task::EmitTo(uint16_t stream_id, Tuple t) {
  ++stats_.tuples_out;
  LegacyPerTupleWork(t);
  t.stream_id = stream_id;
  // The last route on the stream receives the tuple by move; earlier
  // routes (rare: multi-consumer streams) each pay one copy. The
  // common single-route case is therefore copy-free.
  const int last_route =
      stream_id < last_route_for_stream_.size()
          ? last_route_for_stream_[stream_id]
          : -1;
  if (last_route < 0) return;  // no consumer on this stream
  for (size_t r = 0; r < routes_.size(); ++r) {
    OutRoute& route = routes_[r];
    if (route.stream_id != stream_id) continue;
    const bool moves = static_cast<int>(r) == last_route;
    // Moves `t` into consumer `i`'s buffer when this route is the
    // last recipient, otherwise hands over a copy.
    auto forward = [&](size_t i) {
      if (moves) {
        AppendTuple(route, i, std::move(t));
      } else {
        AppendTuple(route, i, Tuple(t));
      }
    };
    switch (route.grouping) {
      case api::GroupingType::kShuffle: {
        // Wrap by compare-and-reset: no per-emit `%` (consumer counts
        // are rarely powers of two, so the div is a real cost).
        const size_t i = route.rr_cursor;
        if (++route.rr_cursor == route.channels.size()) route.rr_cursor = 0;
        forward(i);
        break;
      }
      case api::GroupingType::kFields: {
        forward(HashField(t.fields[route.key_field]) %
                route.channels.size());
        break;
      }
      case api::GroupingType::kBroadcast: {
        const size_t n = route.channels.size();
        for (size_t i = 0; i + 1 < n; ++i) AppendTuple(route, i, Tuple(t));
        forward(n - 1);
        break;
      }
      case api::GroupingType::kGlobal: {
        forward(0);
        break;
      }
    }
  }
}

void Task::FlushBuffer(int buffer_idx, Channel* channel, bool force) {
  JumboTuple& buf = buffers_[buffer_idx];
  if (buf.tuples.empty()) return;
  if (!force && static_cast<int>(buf.tuples.size()) < config_.batch_size) {
    return;
  }
  // BatchPool: prefer an empty shell the consumer handed back over the
  // allocator. Steady state cycles the same shells (and their tuple /
  // byte capacity) between producer and consumer forever.
  JumboTuplePtr batch;
  if (config_.recycle_batches && channel->TryPopRecycled(&batch)) {
    ++stats_.batches_recycled;
    batch->Reset();  // consumer already Reset(); cheap belt-and-braces
  } else {
    batch = std::make_unique<JumboTuple>();
  }
  batch->producer_task = instance_id_;
  batch->batch_seq = batch_seq_++;
  Envelope env;
  env.count = static_cast<uint32_t>(buf.tuples.size());
  env.from_instance = instance_id_;
  if (config_.serialize_tuples) {
    SerializeBatch(buf.tuples, &batch->bytes);
    buf.tuples.clear();  // keeps staging capacity
  } else {
    // The shell's (empty, capacity-bearing) vector becomes the new
    // staging buffer — no allocation on either side of the swap.
    std::swap(batch->tuples, buf.tuples);
  }
  env.batch = std::move(batch);
  ++stats_.batches_out;
  // Back-pressure: spin until the consumer drains (or we are stopped,
  // in which case the in-flight batch is dropped).
  while (!channel->TryPush(std::move(env))) {
    ++stats_.backpressure_spins;
    if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) return;
    CpuRelax();
  }
}

void Task::FlushAll(bool force) {
  for (auto& route : routes_) {
    for (size_t i = 0; i < route.channels.size(); ++i) {
      FlushBuffer(route.buffer_index[i], route.channels[i], force);
    }
  }
}

void Task::Consume(Envelope env, Channel* from) {
  if (!env.batch) return;  // dropped/empty envelope
  std::vector<Tuple> local_tuples;
  const std::vector<Tuple>* tuples = nullptr;
  if (!env.batch->bytes.empty()) {
    auto decoded = DeserializeBatch(env.batch->bytes, env.count);
    BRISK_CHECK(decoded.ok()) << decoded.status().ToString();
    local_tuples = std::move(decoded).value();
    tuples = &local_tuples;
  } else {
    tuples = &env.batch->tuples;
  }
  // NUMA charge: the consumer-side stall of fetching a remote batch
  // (emulated busy-wait, DESIGN.md §1), one Formula-2 cost per tuple.
  if (numa_ != nullptr && numa_->enabled() && !tuples->empty() &&
      instance_sockets_ != nullptr && env.from_instance >= 0) {
    const int from_socket = (*instance_sockets_)[env.from_instance];
    if (from_socket != socket_ && from_socket >= 0 && socket_ >= 0) {
      const double per_tuple_ns = numa_->machine().FetchCostNs(
          from_socket, socket_,
          static_cast<double>(tuples->front().SizeBytes()));
      hw::SpinForNs(
          static_cast<int64_t>(per_tuple_ns * tuples->size()));
    }
  }
  const int64_t t0 = NowNs();
  for (const Tuple& t : *tuples) {
    if (config_.extra_condition_checks) LegacyPerTupleWork(t);
    bolt_->Process(t, this);
  }
  stats_.busy_ns += static_cast<uint64_t>(NowNs() - t0);
  stats_.tuples_in += tuples->size();
  ++stats_.batches_in;
  if (config_.recycle_batches && from != nullptr) {
    // Hand the drained shell back to the producer instead of freeing
    // it here (which, under NUMA, would free remote-socket memory).
    env.batch->Reset();
    from->Recycle(std::move(env.batch));
  }
}

void Task::RunSpout(const std::atomic<bool>* stop) {
  last_refill_ns_ = NowNs();
  // Burst capacity must cover a scheduler stall, or budget accrued
  // while descheduled is discarded and the spout can never catch back
  // up to the target rate.
  const double burst_cap =
      SpoutBurstCap(config_.batch_size, rate_per_instance_);
  while (!stop->load(std::memory_order_relaxed)) {
    if (rate_per_instance_ > 0.0) {
      const int64_t now = NowNs();
      tokens_ += static_cast<double>(now - last_refill_ns_) * 1e-9 *
                 rate_per_instance_;
      last_refill_ns_ = now;
      tokens_ = std::min(tokens_, burst_cap);
      if (tokens_ < config_.batch_size) {
        FlushAll(true);
        CpuRelax();
        continue;
      }
      tokens_ -= config_.batch_size;
    }
    const int64_t t0 = NowNs();
    const size_t produced =
        spout_->NextBatch(static_cast<size_t>(config_.batch_size), this);
    stats_.busy_ns += static_cast<uint64_t>(NowNs() - t0);
    stats_.tuples_in += produced;
    if (produced == 0) break;  // bounded source exhausted
  }
  FlushAll(true);
}

void Task::RunBolt(const std::atomic<bool>* stop) {
  int idle_spins = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    bool any = false;
    for (size_t k = 0; k < inputs_.size(); ++k) {
      Channel* ch = inputs_[(in_cursor_ + k) % inputs_.size()];
      Envelope env;
      if (ch->TryPop(&env)) {
        in_cursor_ = (in_cursor_ + k + 1) % inputs_.size();
        Consume(std::move(env), ch);
        any = true;
        break;
      }
    }
    if (!any) {
      // Idle: push out partial batches so low-rate streams progress,
      // then back off briefly.
      FlushAll(true);
      if (++idle_spins > 64) {
        std::this_thread::yield();
        idle_spins = 0;
      } else {
        CpuRelax();
      }
    } else {
      idle_spins = 0;
    }
  }
  if (bolt_) bolt_->Flush(this);
  FlushAll(true);
}

void Task::Run(const std::atomic<bool>* stop) {
  stop_ = stop;
  if (spout_) {
    RunSpout(stop);
  } else {
    RunBolt(stop);
  }
}

}  // namespace brisk::engine
