#include "engine/task.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/serde.h"

namespace brisk::engine {

namespace {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Heap-allocated per-tuple header a non-jumbo runtime would carry for
/// every tuple (metadata + context, §5.2).
struct SimulatedTupleHeader {
  int64_t source_task;
  int64_t stream;
  int64_t sequence;
  char context[32];
};

}  // namespace

int Task::AddBuffer() {
  buffers_.emplace_back();
  return static_cast<int>(buffers_.size()) - 1;
}

Status Task::Prepare(const api::OperatorContext& ctx) {
  if (spout_) return spout_->Prepare(ctx);
  if (bolt_) return bolt_->Prepare(ctx);
  return Status::FailedPrecondition("task has neither spout nor bolt");
}

void Task::LegacyPerTupleWork(const Tuple& t) {
  if (config_.duplicate_headers) {
    // Real allocator churn: the duplicated metadata object a per-tuple
    // runtime allocates and immediately abandons.
    auto header = std::make_unique<SimulatedTupleHeader>();
    header->source_task = instance_id_;
    header->stream = t.stream_id;
    header->sequence = static_cast<int64_t>(stats_.tuples_out);
    // Touch it so the allocation is not elided.
    if (header->context[0] != 0) stats_.backpressure_spins += 0;
  }
  if (config_.extra_condition_checks) {
    // Guard/bookkeeping work (~dozens of branches): checksum the
    // field metadata the way exception scaffolding and ACK tracking
    // walk each tuple in a distributed runtime.
    uint64_t h = 1469598103934665603ULL;
    for (const auto& f : t.fields) {
      h = (h ^ static_cast<uint64_t>(f.index())) * 1099511628211ULL;
      h = (h ^ FieldSizeBytes(f)) * 1099511628211ULL;
    }
    if ((h & 0xFFF) == 0xABC) ++stats_.backpressure_spins;  // keep live
  }
}

void Task::EmitTo(uint16_t stream_id, Tuple t) {
  ++stats_.tuples_out;
  LegacyPerTupleWork(t);
  t.stream_id = stream_id;
  for (auto& route : routes_) {
    if (route.stream_id != stream_id) continue;
    switch (route.grouping) {
      case api::GroupingType::kShuffle: {
        const size_t i = route.rr_cursor++ % route.channels.size();
        JumboTuple& buf = buffers_[route.buffer_index[i]];
        buf.tuples.push_back(t);
        if (static_cast<int>(buf.tuples.size()) >= config_.batch_size) {
          FlushBuffer(route.buffer_index[i], route.channels[i], false);
        }
        break;
      }
      case api::GroupingType::kFields: {
        const size_t i =
            HashField(t.fields[route.key_field]) % route.channels.size();
        JumboTuple& buf = buffers_[route.buffer_index[i]];
        buf.tuples.push_back(t);
        if (static_cast<int>(buf.tuples.size()) >= config_.batch_size) {
          FlushBuffer(route.buffer_index[i], route.channels[i], false);
        }
        break;
      }
      case api::GroupingType::kBroadcast: {
        for (size_t i = 0; i < route.channels.size(); ++i) {
          JumboTuple& buf = buffers_[route.buffer_index[i]];
          buf.tuples.push_back(t);
          if (static_cast<int>(buf.tuples.size()) >= config_.batch_size) {
            FlushBuffer(route.buffer_index[i], route.channels[i], false);
          }
        }
        break;
      }
      case api::GroupingType::kGlobal: {
        JumboTuple& buf = buffers_[route.buffer_index[0]];
        buf.tuples.push_back(t);
        if (static_cast<int>(buf.tuples.size()) >= config_.batch_size) {
          FlushBuffer(route.buffer_index[0], route.channels[0], false);
        }
        break;
      }
    }
  }
}

void Task::FlushBuffer(int buffer_idx, Channel* channel, bool force) {
  JumboTuple& buf = buffers_[buffer_idx];
  if (buf.tuples.empty()) return;
  if (!force && static_cast<int>(buf.tuples.size()) < config_.batch_size) {
    return;
  }
  Envelope env;
  env.count = static_cast<uint32_t>(buf.tuples.size());
  env.from_instance = instance_id_;
  if (config_.serialize_tuples) {
    env.bytes = std::make_unique<std::vector<uint8_t>>();
    SerializeBatch(buf.tuples, env.bytes.get());
    buf.tuples.clear();
  } else {
    auto batch = std::make_unique<JumboTuple>();
    batch->producer_task = instance_id_;
    batch->batch_seq = batch_seq_++;
    batch->tuples = std::move(buf.tuples);
    buf.tuples.clear();
    env.batch = std::move(batch);
  }
  ++stats_.batches_out;
  // Back-pressure: spin until the consumer drains (or we are stopped,
  // in which case the in-flight batch is dropped).
  while (!channel->TryPush(std::move(env))) {
    ++stats_.backpressure_spins;
    if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) return;
    CpuRelax();
  }
}

void Task::FlushAll(bool force) {
  for (auto& route : routes_) {
    for (size_t i = 0; i < route.channels.size(); ++i) {
      FlushBuffer(route.buffer_index[i], route.channels[i], force);
    }
  }
}

void Task::Consume(Envelope env) {
  std::vector<Tuple> local_tuples;
  const std::vector<Tuple>* tuples = nullptr;
  if (!env.bytes && !env.batch) return;  // dropped/empty envelope
  if (env.bytes) {
    auto decoded = DeserializeBatch(*env.bytes, env.count);
    BRISK_CHECK(decoded.ok()) << decoded.status().ToString();
    local_tuples = std::move(decoded).value();
    tuples = &local_tuples;
  } else {
    tuples = &env.batch->tuples;
  }
  // NUMA charge: the consumer-side stall of fetching a remote batch
  // (emulated busy-wait, DESIGN.md §1), one Formula-2 cost per tuple.
  if (numa_ != nullptr && numa_->enabled() && !tuples->empty() &&
      instance_sockets_ != nullptr && env.from_instance >= 0) {
    const int from_socket = (*instance_sockets_)[env.from_instance];
    if (from_socket != socket_ && from_socket >= 0 && socket_ >= 0) {
      const double per_tuple_ns = numa_->machine().FetchCostNs(
          from_socket, socket_,
          static_cast<double>(tuples->front().SizeBytes()));
      hw::SpinForNs(
          static_cast<int64_t>(per_tuple_ns * tuples->size()));
    }
  }
  const int64_t t0 = NowNs();
  for (const Tuple& t : *tuples) {
    if (config_.extra_condition_checks) LegacyPerTupleWork(t);
    bolt_->Process(t, this);
  }
  stats_.busy_ns += static_cast<uint64_t>(NowNs() - t0);
  stats_.tuples_in += tuples->size();
  ++stats_.batches_in;
}

void Task::RunSpout(const std::atomic<bool>* stop) {
  last_refill_ns_ = NowNs();
  // Burst capacity must cover a scheduler stall, or budget accrued
  // while descheduled is discarded and the spout can never catch back
  // up to the target rate.
  const double burst_cap =
      SpoutBurstCap(config_.batch_size, rate_per_instance_);
  while (!stop->load(std::memory_order_relaxed)) {
    if (rate_per_instance_ > 0.0) {
      const int64_t now = NowNs();
      tokens_ += static_cast<double>(now - last_refill_ns_) * 1e-9 *
                 rate_per_instance_;
      last_refill_ns_ = now;
      tokens_ = std::min(tokens_, burst_cap);
      if (tokens_ < config_.batch_size) {
        FlushAll(true);
        CpuRelax();
        continue;
      }
      tokens_ -= config_.batch_size;
    }
    const int64_t t0 = NowNs();
    const size_t produced =
        spout_->NextBatch(static_cast<size_t>(config_.batch_size), this);
    stats_.busy_ns += static_cast<uint64_t>(NowNs() - t0);
    stats_.tuples_in += produced;
    if (produced == 0) break;  // bounded source exhausted
  }
  FlushAll(true);
}

void Task::RunBolt(const std::atomic<bool>* stop) {
  int idle_spins = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    bool any = false;
    for (size_t k = 0; k < inputs_.size(); ++k) {
      Channel* ch = inputs_[(in_cursor_ + k) % inputs_.size()];
      Envelope env;
      if (ch->TryPop(&env)) {
        in_cursor_ = (in_cursor_ + k + 1) % inputs_.size();
        Consume(std::move(env));
        any = true;
        break;
      }
    }
    if (!any) {
      // Idle: push out partial batches so low-rate streams progress,
      // then back off briefly.
      FlushAll(true);
      if (++idle_spins > 64) {
        std::this_thread::yield();
        idle_spins = 0;
      } else {
        CpuRelax();
      }
    } else {
      idle_spins = 0;
    }
  }
  if (bolt_) bolt_->Flush(this);
  FlushAll(true);
}

void Task::Run(const std::atomic<bool>* stop) {
  stop_ = stop;
  if (spout_) {
    RunSpout(stop);
  } else {
    RunBolt(stop);
  }
}

}  // namespace brisk::engine
