#include "engine/task.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/logging.h"
#include "common/serde.h"
#include "engine/spin.h"

namespace brisk::engine {

namespace {

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Heap-allocated per-tuple header a non-jumbo runtime would carry for
/// every tuple (metadata + context, §5.2).
struct SimulatedTupleHeader {
  int64_t source_task;
  int64_t stream;
  int64_t sequence;
  char context[32];
};

}  // namespace

int Task::AddBuffer() {
  buffers_.emplace_back();
  return static_cast<int>(buffers_.size()) - 1;
}

void Task::AddOutRoute(OutRoute route) {
  const uint16_t sid = route.stream_id;
  if (last_route_for_stream_.size() <= sid) {
    last_route_for_stream_.resize(sid + 1, -1);
  }
  last_route_for_stream_[sid] = static_cast<int>(routes_.size());
  routes_.push_back(std::move(route));
}

Status Task::Prepare(const api::OperatorContext& ctx) {
  // Contain Prepare-time exceptions too: a throwing factory/operator
  // surfaces as a Status naming the replica instead of unwinding
  // through the engine.
  try {
    if (spout_) return spout_->Prepare(ctx);
    if (bolt_) return bolt_->Prepare(ctx);
  } catch (const std::exception& e) {
    return Status::Internal("operator '" + ctx.operator_name + "' replica " +
                            std::to_string(ctx.replica_index) +
                            " threw in Prepare: " + e.what());
  } catch (...) {
    return Status::Internal("operator '" + ctx.operator_name + "' replica " +
                            std::to_string(ctx.replica_index) +
                            " threw in Prepare: unknown exception");
  }
  return Status::FailedPrecondition("task has neither spout nor bolt");
}

void Task::Bind(const StopSignals* signals, bool cooperative) {
  signals_ = signals;
  cooperative_ = cooperative;
  // Compiled dispatch is resolved once per run: the bolt either
  // carries a pipeline or it does not, and the legacy per-tuple
  // overheads (serialization, duplicated headers, condition checks)
  // are *modeled per tuple*, so any of them forces the row-wise path.
  pipe_ = bolt_ ? bolt_->pipeline() : nullptr;
  vec_ok_ = pipe_ != nullptr && config_.compile_pipelines &&
            !config_.serialize_tuples && !config_.duplicate_headers &&
            !config_.extra_condition_checks;
  source_done_ = false;
  finalized_ = false;
  finalizing_ = false;
  pending_.clear();
  pending_head_ = 0;
  pending_live_ = 0;
  wedged_slot_ = ~size_t{0};
  last_refill_ns_ = 0;
  staged_dirty_ = false;
  // Cooperative in-flight cap: bound the cold inventory per channel so
  // batches are consumed soon after production (cache-warm). Parking
  // is cheap in pool mode; legacy mode must use the full ring, since
  // it would spin the gap away.
  soft_cap_ = cooperative_ ? config_.EffectiveInflightCap() : ~size_t{0};
}

void Task::LegacyPerTupleWork(const Tuple& t) {
  if (config_.duplicate_headers) {
    // Real allocator churn: the duplicated metadata object a per-tuple
    // runtime allocates and immediately abandons. The volatile store
    // keeps the allocation + fill observable without touching any real
    // counter.
    auto header = std::make_unique<SimulatedTupleHeader>();
    header->source_task = instance_id_;
    header->stream = t.stream_id;
    header->sequence = static_cast<int64_t>(stats_.tuples_out);
    legacy_sink_ =
        static_cast<uint64_t>(header->sequence) ^
        static_cast<uint64_t>(reinterpret_cast<uintptr_t>(header.get()));
  }
  if (config_.extra_condition_checks) {
    // Guard/bookkeeping work (~dozens of branches): checksum the
    // field metadata the way exception scaffolding and ACK tracking
    // walk each tuple in a distributed runtime. Sunk into the volatile
    // so the hash is computed but never corrupts telemetry.
    uint64_t h = 1469598103934665603ULL;
    for (const auto& f : t.fields) {
      h = (h ^ static_cast<uint64_t>(f.index())) * 1099511628211ULL;
      h = (h ^ FieldSizeBytes(f)) * 1099511628211ULL;
    }
    legacy_sink_ = h;
  }
}

void Task::AppendTuple(OutRoute& route, size_t i, Tuple&& t) {
  JumboTuple& buf = buffers_[route.buffer_index[i]];
  staged_dirty_ = true;
  buf.tuples.push_back(std::move(t));
  if (static_cast<int>(buf.tuples.size()) >= config_.batch_size) {
    FlushBuffer(route.buffer_index[i], route.channels[i], false);
  }
}

void Task::EmitTo(uint16_t stream_id, Tuple t) {
  ++stats_.tuples_out;
  LegacyPerTupleWork(t);
  t.stream_id = stream_id;
  // The last route on the stream receives the tuple by move; earlier
  // routes (rare: multi-consumer streams) each pay one copy. The
  // common single-route case is therefore copy-free.
  const int last_route =
      stream_id < last_route_for_stream_.size()
          ? last_route_for_stream_[stream_id]
          : -1;
  if (last_route < 0) return;  // no consumer on this stream
  for (size_t r = 0; r < routes_.size(); ++r) {
    OutRoute& route = routes_[r];
    if (route.stream_id != stream_id) continue;
    const bool moves = static_cast<int>(r) == last_route;
    // Moves `t` into consumer `i`'s buffer when this route is the
    // last recipient, otherwise hands over a copy.
    auto forward = [&](size_t i) {
      if (moves) {
        AppendTuple(route, i, std::move(t));
      } else {
        AppendTuple(route, i, Tuple(t));
      }
    };
    switch (route.grouping) {
      case api::GroupingType::kShuffle: {
        // Wrap by compare-and-reset: no per-emit `%` (consumer counts
        // are rarely powers of two, so the div is a real cost).
        const size_t i = route.rr_cursor;
        if (++route.rr_cursor == route.channels.size()) route.rr_cursor = 0;
        forward(i);
        break;
      }
      case api::GroupingType::kFields: {
        forward(HashField(t.fields[route.key_field]) %
                route.channels.size());
        break;
      }
      case api::GroupingType::kBroadcast: {
        const size_t n = route.channels.size();
        for (size_t i = 0; i + 1 < n; ++i) AppendTuple(route, i, Tuple(t));
        forward(n - 1);
        break;
      }
      case api::GroupingType::kGlobal: {
        forward(0);
        break;
      }
    }
  }
}

void Task::ConsumeSelected(JumboTuple* batch, const SelectionVector& sel) {
  sel.ForEachSet(
      [&](size_t i) { EmitTo(0, std::move(batch->tuples[i])); });
}

void Task::MaybeThrowInjected() {
  for (auto& f : faults_) {
    if (f.fired) continue;
    if (f.spec.kind != FaultSpec::Kind::kCrash &&
        f.spec.kind != FaultSpec::Kind::kThrow) {
      continue;
    }
    if (stats_.tuples_in.value() >= f.spec.after_tuples) {
      f.fired = true;
      throw std::runtime_error(std::string("injected ") +
                               FaultKindName(f.spec.kind) + " after " +
                               std::to_string(stats_.tuples_in.value()) +
                               " tuples");
    }
  }
}

bool Task::StallInjected() {
  if (stalled_.load(std::memory_order_relaxed)) return true;
  for (auto& f : faults_) {
    if (f.fired || f.spec.kind != FaultSpec::Kind::kStall) continue;
    if (stats_.tuples_in.value() >= f.spec.after_tuples) {
      f.fired = true;
      stalled_.store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool Task::MaybeWedgePush(Envelope& env, Channel* channel) {
  if (wedged_slot_ != ~size_t{0}) return false;  // one wedge per run
  for (auto& f : faults_) {
    if (f.fired || f.spec.kind != FaultSpec::Kind::kWedgePush) continue;
    if (stats_.tuples_out.value() < f.spec.after_tuples) continue;
    f.fired = true;
    // Park the envelope where ordered retry will meet it first and
    // never let TryDrainPending push it: everything behind it stays
    // parked too, pending_live() never returns to zero, and a graceful
    // drain can no longer converge.
    wedged_slot_ = pending_.size();
    pending_.push_back(PendingPush{std::move(env), channel});
    pending_live_ = pending_.size() - pending_head_;
    return true;
  }
  return false;
}

void Task::RecordFailure(const std::string& what) {
  failure_message_ = "operator '" + op_name_ + "' replica " +
                     std::to_string(replica_) + ": " + what;
  BRISK_LOG(Warn) << "task " << instance_id_ << " failed: "
                  << failure_message_;
  // Release-publish: readers that observe failed_ == true (acquire)
  // see the complete message.
  failed_.store(true, std::memory_order_release);
}

bool Task::PushEnvelope(Envelope&& env, Channel* channel) {
  if (!faults_.empty() && MaybeWedgePush(env, channel)) return false;
  // Migration pause: batches must survive the halt for the residual
  // sweep, so even the legacy mode switches to parking (spinning would
  // never release under a joined consumer, dropping would lose data).
  const bool preserve =
      signals_ != nullptr &&
      signals_->preserve_inflight.load(std::memory_order_relaxed);
  // The finalize/migration epilogues run single-threaded after the
  // executor joined: spinning would hang and dropping would lose
  // tuples, so both modes park there and rely on the caller's
  // topological passes to free ring space downstream.
  if (cooperative_ || finalizing_ || preserve) {
    // Preserve per-channel batch order: while anything is parked, new
    // envelopes queue behind it instead of overtaking. The in-flight
    // cap is lifted during Finalize — the consumer is no longer
    // running concurrently, it drains everything in its own Finalize,
    // and capping here would drop stateful finals early.
    const size_t cap = finalizing_ ? ~size_t{0} : soft_cap_;
    if (pending_head_ >= pending_.size() &&
        channel->SizeApprox() < cap && channel->TryPush(std::move(env))) {
      return true;
    }
    // The drop decision re-reads the signals in halt-publication
    // order: the migration stores preserve_inflight *before* stop_all
    // (release), so observing stop_all (acquire) guarantees observing
    // preserve mode — checking in any other order can read a stale
    // `preserve == false` next to a fresh `stop_all == true` and drop
    // the batch the residual sweep is about to collect.
    if (!finalizing_ && signals_ != nullptr &&
        signals_->stop_all.load(std::memory_order_acquire) &&
        !signals_->preserve_inflight.load(std::memory_order_relaxed)) {
      return true;  // shutdown: in-flight batch is dropped, like legacy
    }
    ++stats_.backpressure_parks;
    pending_.push_back(PendingPush{std::move(env), channel});
    pending_live_ = pending_.size() - pending_head_;
    return false;
  }
  // Legacy back-pressure: spin until the consumer drains (or we are
  // stopped, in which case the in-flight batch is dropped). A thread
  // spinning here when a migration halts must park instead of
  // dropping: the consumer it waits on is joining, and the residual
  // sweep will deliver the parked batch. The stop_all acquire +
  // preserve-after ordering mirrors the cooperative branch above —
  // seeing the halt guarantees seeing the preserve mode published
  // before it.
  while (!channel->TryPush(std::move(env))) {
    ++stats_.backpressure_spins;
    if (signals_ != nullptr &&
        signals_->stop_all.load(std::memory_order_acquire)) {
      if (signals_->preserve_inflight.load(std::memory_order_relaxed)) {
        ++stats_.backpressure_parks;
        pending_.push_back(PendingPush{std::move(env), channel});
        pending_live_ = pending_.size() - pending_head_;
        return false;
      }
      return true;
    }
    CpuRelax();
  }
  return true;
}

bool Task::TryDrainPending() {
  const size_t cap = finalizing_ ? ~size_t{0} : soft_cap_;
  while (pending_head_ < pending_.size()) {
    PendingPush& p = pending_[pending_head_];
    if (pending_head_ == wedged_slot_ ||  // injected permanent park
        p.channel->SizeApprox() >= cap ||
        !p.channel->TryPush(std::move(p.env))) {
      pending_live_ = pending_.size() - pending_head_;
      return false;
    }
    ++pending_head_;
  }
  pending_.clear();
  pending_head_ = 0;
  pending_live_ = 0;
  return true;
}

bool Task::FlushBuffer(int buffer_idx, Channel* channel, bool force) {
  JumboTuple& buf = buffers_[buffer_idx];
  if (buf.tuples.empty()) return true;
  if (!force && static_cast<int>(buf.tuples.size()) < config_.batch_size) {
    return true;
  }
  // BatchPool: prefer an empty shell the consumer handed back over the
  // allocator. Steady state cycles the same shells (and their tuple /
  // byte capacity) between producer and consumer forever.
  JumboTuplePtr batch;
  if (config_.recycle_batches && channel->TryPopRecycled(&batch)) {
    ++stats_.batches_recycled;
    batch->Reset();  // consumer already Reset(); cheap belt-and-braces
  } else if (channel->reuse_shells() &&
             (batch = channel->TakeProducerShell()) != nullptr) {
    // Ring-is-the-pool mode: the last push swapped the consumer's
    // deposited shell out of the ring slot; reuse it here.
    ++stats_.batches_recycled;
    batch->Reset();
  } else {
    batch = std::make_unique<JumboTuple>();
  }
  batch->producer_task = instance_id_;
  batch->batch_seq = batch_seq_++;
  Envelope env;
  env.count = static_cast<uint32_t>(buf.tuples.size());
  env.from_instance = instance_id_;
  if (config_.serialize_tuples) {
    SerializeBatch(buf.tuples, &batch->bytes);
    buf.tuples.clear();  // keeps staging capacity
  } else {
    // The shell's (empty, capacity-bearing) vector becomes the new
    // staging buffer — no allocation on either side of the swap.
    std::swap(batch->tuples, buf.tuples);
  }
  env.batch = std::move(batch);
  ++stats_.batches_out;
  return PushEnvelope(std::move(env), channel);
}

bool Task::FlushAll(bool force) {
  if (force && !staged_dirty_) return pending_head_ >= pending_.size();
  bool all_pushed = true;
  for (auto& route : routes_) {
    for (size_t i = 0; i < route.channels.size(); ++i) {
      if (!FlushBuffer(route.buffer_index[i], route.channels[i], force)) {
        all_pushed = false;
      }
    }
  }
  if (force && all_pushed) staged_dirty_ = false;
  return all_pushed;
}

void Task::Consume(Envelope env, Channel* from) {
  if (!env.batch) return;  // dropped/empty envelope
  if (failed_.load(std::memory_order_relaxed)) return;  // replica is dead
  std::vector<Tuple> local_tuples;
  const std::vector<Tuple>* tuples = nullptr;
  if (!env.batch->bytes.empty()) {
    auto decoded = DeserializeBatch(env.batch->bytes, env.count);
    BRISK_CHECK(decoded.ok()) << decoded.status().ToString();
    local_tuples = std::move(decoded).value();
    tuples = &local_tuples;
  } else {
    tuples = &env.batch->tuples;
  }
  // NUMA charge: the consumer-side stall of fetching a remote batch
  // (emulated busy-wait, DESIGN.md §1), one Formula-2 cost per tuple.
  if (numa_ != nullptr && numa_->enabled() && !tuples->empty() &&
      instance_sockets_ != nullptr && env.from_instance >= 0) {
    const int from_socket = (*instance_sockets_)[env.from_instance];
    if (from_socket != socket_ && from_socket >= 0 && socket_ >= 0) {
      const double per_tuple_ns = numa_->machine().FetchCostNs(
          from_socket, socket_,
          static_cast<double>(tuples->front().SizeBytes()));
      hw::SpinForNs(
          static_cast<int64_t>(per_tuple_ns * tuples->size()));
    }
  }
  // Count before executing: the compiled path may move tuples out of
  // the batch (ConsumeSelected) and FlatMap stages redirect output to
  // scratch, so size-after is not the ingress count.
  const size_t n_in = tuples->size();
  const int64_t t0 = NowNs();
  // Containment region: an exception escaping the operator (or an
  // injected crash) becomes a recorded task failure, not process
  // death. The envelope's remaining tuples are dropped with the
  // replica — recovery replays them from the last checkpoint.
  try {
    if (!faults_.empty()) MaybeThrowInjected();
    if (vec_ok_ && env.batch->bytes.empty()) {
      // Whole-batch dispatch through the bolt's compiled pipeline;
      // this task is the PipelineSink, so survivors route through the
      // same partition controller as interpreted emissions.
      pipe_->RunBatch(env.batch.get(), this);
      stats_.tuples_vec += n_in;
    } else {
      for (const Tuple& t : *tuples) {
        if (config_.extra_condition_checks) LegacyPerTupleWork(t);
        bolt_->Process(t, this);
      }
    }
  } catch (const std::exception& e) {
    RecordFailure(e.what());
    return;
  } catch (...) {
    RecordFailure("unknown exception");
    return;
  }
  stats_.busy_ns += static_cast<uint64_t>(NowNs() - t0);
  stats_.tuples_in += n_in;
  ++stats_.batches_in;
  if (config_.recycle_batches && from != nullptr) {
    // Hand the drained shell back to the producer instead of freeing
    // it here (which, under NUMA, would free remote-socket memory).
    env.batch->Reset();
    from->Recycle(std::move(env.batch));
  } else if (from != nullptr && from->reuse_shells()) {
    // Unpooled mode with ring reuse: stage the shell so the next pop
    // deposits it into the slot it vacates.
    env.batch->Reset();
    from->ReturnShell(std::move(env.batch));
  }
}

void Task::RunSpout() {
  last_refill_ns_ = NowNs();
  // Burst capacity must cover a scheduler stall, or budget accrued
  // while descheduled is discarded and the spout can never catch back
  // up to the target rate.
  const double burst_cap =
      SpoutBurstCap(config_.batch_size, rate_per_instance_);
  while (!signals_->stop_all.load(std::memory_order_relaxed) &&
         !signals_->stop_spouts.load(std::memory_order_relaxed)) {
    if (!faults_.empty() && StallInjected()) {
      // Injected stall: stay joinable, produce nothing.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (rate_per_instance_ > 0.0) {
      const int64_t now = NowNs();
      tokens_ += static_cast<double>(now - last_refill_ns_) * 1e-9 *
                 rate_per_instance_;
      last_refill_ns_ = now;
      tokens_ = std::min(tokens_, burst_cap);
      if (tokens_ < config_.batch_size) {
        FlushAll(true);
        CpuRelax();
        continue;
      }
      tokens_ -= config_.batch_size;
    }
    const int64_t t0 = NowNs();
    size_t produced = 0;
    try {
      if (!faults_.empty()) MaybeThrowInjected();
      produced =
          spout_->NextBatch(static_cast<size_t>(config_.batch_size), this);
    } catch (const std::exception& e) {
      RecordFailure(e.what());
      break;
    } catch (...) {
      RecordFailure("unknown exception");
      break;
    }
    stats_.busy_ns += static_cast<uint64_t>(NowNs() - t0);
    stats_.tuples_in += produced;
    if (produced == 0) {
      // External sources (sockets) idle without ending: only an
      // exhausted source retires. Idling flushes partials so low-rate
      // external streams still progress, then backs off briefly.
      if (!spout_->Exhausted()) {
        FlushAll(true);
        std::this_thread::yield();
        continue;
      }
      break;  // bounded source exhausted
    }
  }
}

void Task::RunBolt() {
  int idle_spins = 0;
  while (!signals_->stop_all.load(std::memory_order_relaxed)) {
    if (failed_.load(std::memory_order_relaxed)) {
      // Contained failure: stop consuming, stay joinable.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (!faults_.empty() && StallInjected()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    bool any = false;
    for (size_t k = 0; k < inputs_.size(); ++k) {
      Channel* ch = inputs_[(in_cursor_ + k) % inputs_.size()];
      Envelope env;
      if (ch->TryPop(&env)) {
        in_cursor_ = (in_cursor_ + k + 1) % inputs_.size();
        Consume(std::move(env), ch);
        any = true;
        break;
      }
    }
    if (!any) {
      // Idle: push out partial batches so low-rate streams progress,
      // then back off briefly.
      FlushAll(true);
      if (++idle_spins > 64) {
        std::this_thread::yield();
        idle_spins = 0;
      } else {
        CpuRelax();
      }
    } else {
      idle_spins = 0;
    }
  }
}

void Task::Run(const StopSignals* signals) {
  Bind(signals, /*cooperative=*/false);
  if (spout_) {
    RunSpout();
    // Deliver staged partials while the consumers still run, so a
    // graceful drain sees a bounded source's full output.
    FlushAll(true);
  } else {
    RunBolt();
  }
  // Operator flush happens in the runtime's post-join Finalize pass,
  // in topological order, so finals can propagate to the sinks.
}

PollResult Task::PollSpout(int budget) {
  if (source_done_) return PollResult::kDone;
  if (signals_->stop_spouts.load(std::memory_order_relaxed) ||
      signals_->stop_all.load(std::memory_order_relaxed)) {
    // Drain protocol: push out everything staged before reporting done.
    if (!FlushAll(true)) return PollResult::kBlocked;
    source_done_ = true;
    return PollResult::kDone;
  }
  const double burst_cap =
      SpoutBurstCap(config_.batch_size, rate_per_instance_);
  bool progressed = false;
  for (int b = 0; b < budget; ++b) {
    if (rate_per_instance_ > 0.0) {
      const int64_t now = NowNs();
      if (last_refill_ns_ == 0) last_refill_ns_ = now;
      tokens_ += static_cast<double>(now - last_refill_ns_) * 1e-9 *
                 rate_per_instance_;
      last_refill_ns_ = now;
      tokens_ = std::min(tokens_, burst_cap);
      if (tokens_ < config_.batch_size) {
        if (!FlushAll(true)) return PollResult::kBlocked;
        return progressed ? PollResult::kProgress : PollResult::kIdle;
      }
      tokens_ -= config_.batch_size;
    }
    const int64_t t0 = NowNs();
    size_t produced = 0;
    try {
      if (!faults_.empty()) MaybeThrowInjected();
      produced =
          spout_->NextBatch(static_cast<size_t>(config_.batch_size), this);
    } catch (const std::exception& e) {
      RecordFailure(e.what());
      source_done_ = true;
      return PollResult::kDone;
    } catch (...) {
      RecordFailure("unknown exception");
      source_done_ = true;
      return PollResult::kDone;
    }
    stats_.busy_ns += static_cast<uint64_t>(NowNs() - t0);
    stats_.tuples_in += produced;
    if (produced == 0) {
      if (!FlushAll(true)) return PollResult::kBlocked;
      // An external source with no input right now is idle, not done —
      // the worker re-polls after its park timeout.
      if (!spout_->Exhausted()) {
        return progressed ? PollResult::kProgress : PollResult::kIdle;
      }
      source_done_ = true;  // bounded source exhausted
      return PollResult::kDone;
    }
    progressed = true;
    // Back-pressure hit mid-emit: yield the worker to the consumers.
    if (pending_head_ < pending_.size()) return PollResult::kProgress;
  }
  return PollResult::kProgress;
}

PollResult Task::PollBolt(int budget) {
  bool any = false;
  for (int n = 0; n < budget; ++n) {
    Envelope env;
    Channel* from = nullptr;
    for (size_t k = 0; k < inputs_.size(); ++k) {
      Channel* ch = inputs_[(in_cursor_ + k) % inputs_.size()];
      if (ch->TryPop(&env)) {
        in_cursor_ = (in_cursor_ + k + 1) % inputs_.size();
        from = ch;
        break;
      }
    }
    if (from == nullptr) break;
    Consume(std::move(env), from);
    any = true;
    // Downstream full: stop pulling input until the parked envelope
    // lands, or this task's staging memory would grow unboundedly.
    if (pending_head_ < pending_.size()) return PollResult::kProgress;
  }
  if (!any) {
    // Idle: push out partial batches so low-rate streams progress.
    if (!FlushAll(true)) return PollResult::kBlocked;
    return PollResult::kIdle;
  }
  return PollResult::kProgress;
}

PollResult Task::Poll(int budget) {
  // Two atomic ops per quantum buy a deterministic crash on any
  // double-poll the stealing scheduler would otherwise turn into
  // silent state corruption.
  PollGuard guard(this);
  if (failed_.load(std::memory_order_relaxed)) return PollResult::kDone;
  if (!faults_.empty() && StallInjected()) return PollResult::kIdle;
  if (!TryDrainPending()) return PollResult::kBlocked;
  return spout_ ? PollSpout(budget) : PollBolt(budget);
}

void Task::DrainResidual() {
  finalizing_ = true;
  TryDrainPending();
  if (bolt_) {
    Envelope env;
    for (Channel* ch : inputs_) {
      while (ch->TryPop(&env)) Consume(std::move(env), ch);
    }
  }
  FlushAll(true);
  TryDrainPending();
  finalizing_ = false;
}

void Task::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  finalizing_ = true;
  TryDrainPending();
  if (bolt_ && !failed_.load(std::memory_order_relaxed)) {
    // Upstream operators finalized before us (topological order), so
    // anything still queued on the inputs — late partials, upstream
    // finals — is consumed now, before this operator's own flush.
    Envelope env;
    for (Channel* ch : inputs_) {
      while (ch->TryPop(&env)) Consume(std::move(env), ch);
    }
    // Flush is an operator call too: contain its exceptions like
    // Process's, so a throwing final cannot take the epilogue down.
    try {
      bolt_->Flush(this);
    } catch (const std::exception& e) {
      RecordFailure(e.what());
    } catch (...) {
      RecordFailure("unknown exception");
    }
  }
  FlushAll(true);
  TryDrainPending();
  // Anything still parked now found the ring itself full — more
  // finals per consumer channel than queue slots; it drops with the
  // task, the one bounded-memory ceiling of the shutdown epilogue.
}

}  // namespace brisk::engine
