// Busy-wait primitive shared by the engine's spin loops.
#pragma once

#include <thread>

namespace brisk::engine {

/// Hints the CPU that this is a spin-wait iteration (x86 `pause`);
/// degrades to a scheduler yield where no such hint exists.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace brisk::engine
