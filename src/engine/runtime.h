// BriskRuntime: instantiates a placed execution plan into tasks +
// channels, executes them (worker pool or thread-per-task), and
// reports run statistics.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/topology.h"
#include "common/status.h"
#include "engine/channel.h"
#include "engine/config.h"
#include "engine/executor.h"
#include "engine/task.h"
#include "hardware/numa_emulator.h"
#include "model/execution_plan.h"

namespace brisk::engine {

/// Statistics for one engine run.
struct RunStats {
  double duration_s = 0.0;
  std::vector<TaskStats> tasks;  ///< indexed by plan instance id
  uint64_t total_emitted = 0;
  uint64_t total_consumed = 0;
  /// Graceful drain reached quiescence before stopping (always false
  /// when EngineConfig::graceful_drain is off).
  bool drained = false;
  double drain_seconds = 0.0;
  ExecutorStats executor;
};

/// Owns tasks, channels and the executor for one deployed application.
///
/// Lifecycle: Create() -> Start() -> (workload runs) -> Stop().
/// Throughput/latency are observed through the application's
/// SinkTelemetry (common/telemetry.h), which sink operators update.
class BriskRuntime {
 public:
  /// Builds the runtime: instantiates every operator replica via its
  /// factory, wires one SPSC channel per (producer instance, consumer
  /// instance) edge, and prepares operators. The plan must be fully
  /// placed; the topology must outlive the runtime.
  static StatusOr<std::unique_ptr<BriskRuntime>> Create(
      const api::Topology* topo, const model::ExecutionPlan& plan,
      EngineConfig config, const hw::NumaEmulator* numa = nullptr);

  ~BriskRuntime();

  BriskRuntime(const BriskRuntime&) = delete;
  BriskRuntime& operator=(const BriskRuntime&) = delete;

  /// Stands up the configured executor (EngineConfig::executor): a
  /// socket-aware worker pool honoring the plan's placement, or one
  /// thread per task. Idempotent-error: fails if running.
  Status Start();

  /// Stops the engine and returns run statistics. With graceful_drain,
  /// spouts stop first and bolts drain in-flight envelopes (bounded by
  /// drain_timeout_s) before everything halts, so a bounded source's
  /// tuples all reach the sink.
  RunStats Stop();

  /// Convenience: Start, sleep `seconds` of wall-clock, Stop.
  StatusOr<RunStats> RunFor(double seconds);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }

 private:
  BriskRuntime() = default;

  /// Polls until every channel is empty and consumption has stopped
  /// advancing (or `timeout_s` elapses). Spouts must already be
  /// stopped. Returns true on quiescence.
  bool WaitForDrain(double timeout_s);

  const api::Topology* topo_ = nullptr;
  EngineConfig config_;
  const hw::NumaEmulator* numa_ = nullptr;
  std::vector<int> instance_sockets_;
  std::vector<int> instance_op_;  ///< operator id per instance
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::unique_ptr<Executor> executor_;
  StopSignals signals_;
  bool running_ = false;
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace brisk::engine
