// BriskRuntime: instantiates a placed execution plan into tasks +
// channels, executes them (worker pool or thread-per-task), reports
// run statistics — and, closing the paper's §5.3 loop, applies live
// plan migrations (ApplyMigration) produced by the dynamic
// re-optimizer without dropping or duplicating a tuple.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/topology.h"
#include "common/status.h"
#include "engine/channel.h"
#include "engine/checkpoint.h"
#include "engine/config.h"
#include "engine/executor.h"
#include "engine/task.h"
#include "hardware/numa_emulator.h"
#include "model/execution_plan.h"
#include "optimizer/dynamic.h"

namespace brisk::hw {
class ArenaSet;
}  // namespace brisk::hw

namespace brisk::engine {

/// Statistics for one engine run.
struct RunStats {
  double duration_s = 0.0;
  std::vector<TaskStats> tasks;  ///< indexed by plan instance id
  uint64_t total_emitted = 0;
  uint64_t total_consumed = 0;
  /// Graceful drain reached quiescence before stopping (always false
  /// when EngineConfig::graceful_drain is off).
  bool drained = false;
  double drain_seconds = 0.0;
  ExecutorStats executor;

  /// Live migrations applied during the run (plan epochs - 1).
  int migrations = 0;
  /// Checkpoints taken and checkpoint restores performed.
  int checkpoints = 0;
  int restores = 0;
  /// Sticky: some quiesce drain (migration pause, checkpoint pause or
  /// graceful stop) ran past EngineConfig::drain_timeout_s. The engine
  /// recovered via the residual sweep, but the timeout budget was
  /// blown — surfaced so callers can treat it as a soft failure.
  bool drain_timed_out = false;
  /// Per-operator counters accumulated across migration epochs,
  /// indexed by topology operator id: surviving replicas carry their
  /// counters across epochs and retired replicas fold in here at
  /// migration time, so edge-conservation invariants (splitter out ==
  /// counter in, ...) hold for the whole run no matter how the plan
  /// changed mid-flight. Filled by Stop()/SnapshotStats().
  std::vector<TaskStats> op_totals;
};

/// Liveness/failure view of one task, as sampled by ProbeHealth().
struct TaskHealth {
  int op = -1;
  int replica = 0;
  std::string op_name;
  bool spout = false;
  /// Progress counter: tuples consumed (bolts) / emitted shells seen
  /// (spouts count via tuples_in too — batches are self-consumed).
  uint64_t tuples_in = 0;
  /// Approximate tuples queued on this task's input channels.
  uint64_t backlog = 0;
  /// Envelopes parked on back-pressure inside the task.
  size_t pending_live = 0;
  /// The task contained an operator failure (exception or injected
  /// crash) and retired itself; `failure_message` says which operator
  /// replica threw and why.
  bool failed = false;
  std::string failure_message;
};

/// One supervisor probe: per-task health plus executor liveness.
struct HealthReport {
  bool running = false;
  /// A migration/restore failed past its point of no return; the
  /// engine is down until Restore() revives it.
  bool dead = false;
  std::vector<TaskHealth> tasks;
  /// Per-worker scheduling-pass counters (empty for thread-per-task).
  std::vector<uint64_t> worker_heartbeats;
  /// Per-worker run-queue depths, sampled with the heartbeats: a
  /// frozen heartbeat is only a stuck *worker* if that worker still
  /// holds queued tasks (empty for thread-per-task).
  std::vector<size_t> worker_queue_depths;
};

/// Owns tasks, channels and the executor for one deployed application.
///
/// Lifecycle: Create() -> Start() -> (workload runs, ApplyMigration()
/// zero or more times) -> Stop(). Start/Stop/ApplyMigration/
/// SnapshotStats are serialized by an internal mutex, so a controller
/// thread (Job autopilot) can drive migrations while another thread
/// owns Start/Stop. Throughput/latency are observed through the
/// application's SinkTelemetry (common/telemetry.h), which sink
/// operators update.
class BriskRuntime {
 public:
  /// Builds the runtime: instantiates every operator replica via its
  /// factory, wires one SPSC channel per (producer instance, consumer
  /// instance) edge, and prepares operators. The plan must be fully
  /// placed; the topology must outlive the runtime.
  static StatusOr<std::unique_ptr<BriskRuntime>> Create(
      const api::Topology* topo, const model::ExecutionPlan& plan,
      EngineConfig config, const hw::NumaEmulator* numa = nullptr);

  ~BriskRuntime();

  BriskRuntime(const BriskRuntime&) = delete;
  BriskRuntime& operator=(const BriskRuntime&) = delete;

  /// Stands up the configured executor (EngineConfig::executor): a
  /// socket-aware worker pool honoring the plan's placement, or one
  /// thread per task. Idempotent-error: fails if running.
  Status Start();

  /// Stops the engine and returns run statistics. With graceful_drain,
  /// spouts stop first and bolts drain in-flight envelopes (bounded by
  /// drain_timeout_s) before everything halts, so a bounded source's
  /// tuples all reach the sink.
  RunStats Stop();

  /// Convenience: Start, sleep `seconds` of wall-clock, Stop.
  StatusOr<RunStats> RunFor(double seconds);

  /// Live pause-and-migrate re-planning (§5.3): executes a
  /// MigrationPlan (kMove/kStart/kStop steps, as produced by
  /// DynamicReoptimizer/DiffPlans against the plan this runtime is
  /// currently running) on the live job. The protocol:
  ///
  ///   1. quiesce — spouts stop at a batch boundary, bolts drain
  ///      in-flight envelopes (the PR-4 park machinery idles the
  ///      workers), the executor joins;
  ///   2. residual sweep — repeated topological DrainResidual passes
  ///      push every remaining staged/parked/queued tuple through to
  ///      the sinks (operators are NOT flushed: the job continues);
  ///   3. harvest — operator instances move out of their tasks,
  ///      keeping all internal state; replicas of operators whose
  ///      replication changes export their keyed state
  ///      (api::Operator::ExportKeyedState);
  ///   4. rebuild — tasks and channels are rewired against the new
  ///      plan; surviving (op, replica) identities adopt their old
  ///      operator instance and cumulative stats, new replicas are
  ///      constructed and Prepared, retired replicas fold their stats
  ///      into the per-operator totals;
  ///   5. re-partition — exported keyed state is re-bucketed with the
  ///      fields-grouping hash over the new replica count and imported
  ///      into its new owners;
  ///   6. resume — a fresh executor (same ExecutorKind) starts, with
  ///      thread pinning derived from the *new* socket assignment.
  ///
  /// Step validation happens before the pause, so a rejected
  /// migration leaves the job running undisturbed. Fails if the
  /// engine is not running.
  Status ApplyMigration(const opt::MigrationPlan& migration);

  /// The plan currently executing (the migrated plan after
  /// ApplyMigration). Callers must not retain the reference across
  /// migrations.
  const model::ExecutionPlan& plan() const { return plan_; }

  /// Monotonic plan-epoch counter: 0 after Create, +1 per applied
  /// migration. A statistics observer uses it to notice that per-task
  /// indices changed under it.
  int epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Race-free snapshot of the running job's counters (tasks indexed
  /// by the *current* plan's instance ids, per-op totals across
  /// epochs) without stopping anything — the §5.3 "statistics are
  /// periodically collected during runtime" hook the autopilot feeds
  /// from.
  RunStats SnapshotStats();

  /// Takes a consistent snapshot of the running job: quiesces with the
  /// pause-and-migrate machinery (spouts stop at a batch boundary,
  /// in-flight envelopes drain/sweep to the sinks), captures every
  /// bolt's keyed state (api::Operator::SnapshotKeyedState — non-
  /// destructive) and every source's replay position, then resumes on
  /// a fresh executor. The pause cost is reported in
  /// JobCheckpoint::pause_seconds. Fails if the engine is not running.
  StatusOr<JobCheckpoint> Checkpoint();

  /// Recovers the job from `cp`: hard-halts whatever is left of the
  /// current graph (no drain — a failed graph may be wedged), folds
  /// its counters into the per-op totals, rebuilds tasks + channels to
  /// the checkpoint's plan with all-fresh operators, restores keyed
  /// state (re-bucketed by the fields-grouping hash), rewinds
  /// replayable sources to the captured positions and resumes.
  /// Delivery is at-least-once: tuples produced after the checkpoint
  /// replay. `replayed_tuples` (nullable) receives the total source
  /// positions rolled back — the duplicate-emission window. Valid from
  /// both a running (partially failed) and a dead engine.
  Status Restore(const JobCheckpoint& cp,
                 uint64_t* replayed_tuples = nullptr);

  /// Race-free liveness sample for the supervisor: per-task progress
  /// counters, input backlog, parked envelopes and contained-failure
  /// state, plus per-worker executor heartbeats.
  HealthReport ProbeHealth();

  int num_tasks() const { return static_cast<int>(tasks_.size()); }

 private:
  BriskRuntime() = default;

  /// Instantiates tasks + channels for `plan` and prepares operators.
  /// `reuse` (nullable) supplies the surviving operator instance and
  /// cumulative stats for an (op, replica) identity; fresh instances
  /// come from the topology factories and get Prepared.
  struct Harvested {
    std::unique_ptr<api::Spout> spout;
    std::unique_ptr<api::Operator> bolt;
    TaskStats stats;
    bool valid = false;
  };
  Status WireGraph(const model::ExecutionPlan& plan,
                   const std::function<Harvested(int op, int replica)>& reuse);

  /// Binds tasks and stands up a fresh executor for the current graph.
  Status StartExecutor();

  /// Stops spouts, waits for drain, halts and joins the executor, and
  /// folds its counters into the accumulated totals. Returns whether
  /// the drain reached quiescence (vs timed out). With
  /// `preserve_inflight` (the migration pause), the halt parks
  /// batches that would otherwise drop on a full ring, so the
  /// residual sweep can deliver them; plain Stop() keeps the legacy
  /// drop-at-halt semantics.
  bool QuiesceAndJoin(double* drain_seconds, bool preserve_inflight);

  /// Halts (stop_all), joins, and folds the executor's counters into
  /// the accumulated totals — the epilogue shared by every teardown.
  void JoinExecutorAndFold();

  /// Repeated topological DrainResidual passes until every channel is
  /// empty and nothing is parked (single-threaded; executor joined).
  void SweepResiduals();

  /// Polls until every channel is empty and consumption has stopped
  /// advancing (or `timeout_s` elapses). Spouts must already be
  /// stopped. Returns true on quiescence.
  bool WaitForDrain(double timeout_s);

  /// Sums current task stats (plus retired-replica carry-overs) into
  /// per-operator totals.
  std::vector<TaskStats> OpTotals() const;

  /// Fills the run-level counters every reporting path shares:
  /// duration since Start, migration count, per-task snapshots,
  /// cross-epoch per-op totals and the emitted/consumed sums.
  /// (ExecutorStats are the caller's concern — they are only safely
  /// readable once the executor joined.)
  void CollectStats(RunStats* stats) const;

  const api::Topology* topo_ = nullptr;
  EngineConfig config_;
  const hw::NumaEmulator* numa_ = nullptr;
  /// Per-plan-socket NUMA arenas backing channel rings and batch
  /// shells (null when EngineConfig::numa_arena is off). Declared
  /// before channels_/tasks_: members destroy in reverse order, so the
  /// arenas outlive every ring and shell they handed out.
  std::unique_ptr<hw::ArenaSet> arenas_;
  model::ExecutionPlan plan_;  ///< the plan currently wired/running
  std::vector<int> instance_sockets_;
  std::vector<int> instance_op_;  ///< operator id per instance
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::unique_ptr<Executor> executor_;
  StopSignals signals_;
  bool running_ = false;
  /// A migration failed past its point of no return: the engine is
  /// down but its counters are still reportable through Stop().
  bool dead_ = false;
  std::chrono::steady_clock::time_point started_at_;

  /// Serializes Start/Stop/ApplyMigration/SnapshotStats.
  std::mutex lifecycle_mu_;
  std::atomic<int> epoch_{0};
  int migrations_ = 0;
  int checkpoints_ = 0;
  int restores_ = 0;
  /// Sticky drain-timeout flag (see RunStats::drain_timed_out).
  bool drain_timed_out_ = false;
  /// Fire count per EngineConfig::faults spec, accumulated across
  /// graph rebuilds (fresh tasks would otherwise re-arm and re-fire a
  /// one-shot fault after every recovery). Harvested from the old
  /// tasks at the top of WireGraph; arming honors trigger_limit.
  std::vector<int> fault_fires_;
  /// Stats of replicas retired by migrations, folded per operator.
  std::vector<TaskStats> retired_op_stats_;
  /// Park/wake counters of executors torn down by migrations.
  ExecutorStats retired_executor_;
};

}  // namespace brisk::engine
