// BriskRuntime: instantiates a placed execution plan into tasks +
// channels, runs them on dedicated threads, and reports run statistics.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/topology.h"
#include "common/status.h"
#include "engine/channel.h"
#include "engine/config.h"
#include "engine/task.h"
#include "hardware/numa_emulator.h"
#include "model/execution_plan.h"

namespace brisk::engine {

/// Statistics for one engine run.
struct RunStats {
  double duration_s = 0.0;
  std::vector<TaskStats> tasks;  ///< indexed by plan instance id
  uint64_t total_emitted = 0;
  uint64_t total_consumed = 0;
};

/// Owns tasks, channels and threads for one deployed application.
///
/// Lifecycle: Create() -> Start() -> (workload runs) -> Stop().
/// Throughput/latency are observed through the application's
/// SinkTelemetry (common/telemetry.h), which sink operators update.
class BriskRuntime {
 public:
  /// Builds the runtime: instantiates every operator replica via its
  /// factory, wires one SPSC channel per (producer instance, consumer
  /// instance) edge, and prepares operators. The plan must be fully
  /// placed; the topology must outlive the runtime.
  static StatusOr<std::unique_ptr<BriskRuntime>> Create(
      const api::Topology* topo, const model::ExecutionPlan& plan,
      EngineConfig config, const hw::NumaEmulator* numa = nullptr);

  ~BriskRuntime();

  BriskRuntime(const BriskRuntime&) = delete;
  BriskRuntime& operator=(const BriskRuntime&) = delete;

  /// Spawns one thread per task. Idempotent-error: fails if running.
  Status Start();

  /// Signals stop, joins all threads, and returns run statistics.
  RunStats Stop();

  /// Convenience: Start, sleep `seconds` of wall-clock, Stop.
  StatusOr<RunStats> RunFor(double seconds);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }

 private:
  BriskRuntime() = default;

  const api::Topology* topo_ = nullptr;
  EngineConfig config_;
  std::vector<int> instance_sockets_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace brisk::engine
