#include "engine/runtime.h"

#include <chrono>

#include "common/logging.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace brisk::engine {

namespace {

void MaybePin(std::thread& thread, int instance_id, bool enabled) {
#if defined(__linux__)
  if (!enabled) return;
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(instance_id) % cores, &set);
  pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)instance_id;
  (void)enabled;
#endif
}

}  // namespace

StatusOr<std::unique_ptr<BriskRuntime>> BriskRuntime::Create(
    const api::Topology* topo, const model::ExecutionPlan& plan,
    EngineConfig config, const hw::NumaEmulator* numa) {
  if (topo == nullptr) return Status::InvalidArgument("null topology");
  if (!plan.FullyPlaced()) {
    return Status::FailedPrecondition(
        "cannot deploy a plan with unplaced instances");
  }
  if (config.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }

  auto rt = std::unique_ptr<BriskRuntime>(new BriskRuntime());
  rt->topo_ = topo;
  rt->config_ = config;

  const int n = plan.num_instances();
  rt->instance_sockets_.resize(n);
  int spout_instances = 0;
  for (int i = 0; i < n; ++i) {
    rt->instance_sockets_[i] = plan.instance(i).socket;
    if (topo->op(plan.instance(i).op).is_spout) ++spout_instances;
  }

  // Instantiate tasks.
  for (int i = 0; i < n; ++i) {
    const auto& pi = plan.instance(i);
    const auto& op = topo->op(pi.op);
    auto task =
        std::make_unique<Task>(i, pi.socket, config, numa);
    if (op.is_spout) {
      task->SetSpout(op.spout_factory());
      task->SetSpoutRate(config.spout_rate_tps > 0
                             ? config.spout_rate_tps / spout_instances
                             : 0.0);
    } else {
      task->SetBolt(op.bolt_factory());
    }
    task->SetInstanceSockets(&rt->instance_sockets_);
    rt->tasks_.push_back(std::move(task));
  }

  // Wire channels per topology edge.
  for (const auto& e : topo->edges()) {
    for (int pr = 0; pr < plan.replication(e.producer_op); ++pr) {
      const int pinst = plan.InstanceId(e.producer_op, pr);
      OutRoute route;
      route.stream_id = e.stream_id;
      route.grouping = e.grouping;
      route.key_field = e.key_field;
      const int consumers = e.grouping == api::GroupingType::kGlobal
                                ? 1
                                : plan.replication(e.consumer_op);
      for (int cr = 0; cr < consumers; ++cr) {
        const int cinst = plan.InstanceId(e.consumer_op, cr);
        rt->channels_.push_back(std::make_unique<Channel>(
            pinst, cinst, config.queue_capacity));
        Channel* ch = rt->channels_.back().get();
        rt->tasks_[cinst]->AddInput(ch);
        route.channels.push_back(ch);
        route.buffer_index.push_back(rt->tasks_[pinst]->AddBuffer());
      }
      rt->tasks_[pinst]->AddOutRoute(std::move(route));
    }
  }

  // Prepare operators with their runtime context.
  for (int i = 0; i < n; ++i) {
    const auto& pi = plan.instance(i);
    api::OperatorContext ctx;
    ctx.operator_name = topo->op(pi.op).name;
    ctx.replica_index = pi.replica;
    ctx.num_replicas = plan.replication(pi.op);
    ctx.socket = pi.socket;
    ctx.output_streams = topo->op(pi.op).output_streams;
    BRISK_RETURN_NOT_OK(rt->tasks_[i]->Prepare(ctx));
  }
  return rt;
}

BriskRuntime::~BriskRuntime() {
  if (running_) Stop();
}

Status BriskRuntime::Start() {
  if (running_) return Status::FailedPrecondition("already running");
  stop_.store(false);
  threads_.reserve(tasks_.size());
  started_at_ = std::chrono::steady_clock::now();
  for (auto& task : tasks_) {
    threads_.emplace_back([t = task.get(), this] { t->Run(&stop_); });
    MaybePin(threads_.back(), task->instance_id(), config_.pin_threads);
  }
  running_ = true;
  return Status::OK();
}

RunStats BriskRuntime::Stop() {
  RunStats stats;
  if (!running_) return stats;
  stop_.store(true);
  for (auto& t : threads_) t.join();
  threads_.clear();
  running_ = false;
  stats.duration_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started_at_)
                         .count();
  stats.tasks.reserve(tasks_.size());
  for (const auto& task : tasks_) {
    stats.tasks.push_back(task->stats());
    stats.total_emitted += task->stats().tuples_out;
    stats.total_consumed += task->stats().tuples_in;
  }
  return stats;
}

StatusOr<RunStats> BriskRuntime::RunFor(double seconds) {
  BRISK_RETURN_NOT_OK(Start());
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return Stop();
}

}  // namespace brisk::engine
