#include "engine/runtime.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory_resource>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/tuple.h"
#include "hardware/numa_arena.h"
#include "hardware/topology.h"

namespace brisk::engine {

StatusOr<std::unique_ptr<BriskRuntime>> BriskRuntime::Create(
    const api::Topology* topo, const model::ExecutionPlan& plan,
    EngineConfig config, const hw::NumaEmulator* numa) {
  if (topo == nullptr) return Status::InvalidArgument("null topology");
  if (!plan.FullyPlaced()) {
    return Status::FailedPrecondition(
        "cannot deploy a plan with unplaced instances");
  }
  if (config.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }

  auto rt = std::unique_ptr<BriskRuntime>(new BriskRuntime());
  rt->topo_ = topo;
  rt->config_ = config;
  rt->numa_ = numa;
  rt->retired_op_stats_.resize(topo->num_operators());
  if (config.numa_arena) {
    // One hugepage-backed arena per plan socket, bound to a real NUMA
    // node when the host has several. Channel rings and batch shells
    // allocate from the consumer's arena, so a task's hot memory sits
    // on the socket RLAS placed it on.
    rt->arenas_ = std::make_unique<hw::ArenaSet>(
        hw::DetectHostTopology(), config.arena_chunk_kb * 1024);
  }
  BRISK_RETURN_NOT_OK(rt->WireGraph(plan, nullptr));
  return rt;
}

Status BriskRuntime::WireGraph(
    const model::ExecutionPlan& plan,
    const std::function<Harvested(int op, int replica)>& reuse) {
  // Fault fire-counts survive rebuilds: harvest what the outgoing
  // tasks fired before dropping them (every rebuild path joins the
  // executor first, so the fired flags are stable). Without this a
  // recovery would re-arm and re-fire the very fault it recovered
  // from, forever.
  if (fault_fires_.size() != config_.faults.specs.size()) {
    fault_fires_.assign(config_.faults.specs.size(), 0);
  }
  for (const auto& task : tasks_) {
    for (const int idx : task->FiredFaultIndices()) ++fault_fires_[idx];
  }
  // Tasks hold raw Channel pointers; drop them first.
  tasks_.clear();
  channels_.clear();

  const int n = plan.num_instances();
  instance_sockets_.assign(n, -1);
  instance_op_.assign(n, -1);
  int spout_instances = 0;
  for (int i = 0; i < n; ++i) {
    instance_sockets_[i] = plan.instance(i).socket;
    instance_op_[i] = plan.instance(i).op;
    if (topo_->op(plan.instance(i).op).is_spout) ++spout_instances;
  }

  // Instantiate tasks: surviving (op, replica) identities adopt their
  // harvested operator instance + cumulative stats, the rest come
  // fresh from the factories.
  std::vector<bool> fresh(n, true);
  for (int i = 0; i < n; ++i) {
    const auto& pi = plan.instance(i);
    const auto& op = topo_->op(pi.op);
    auto task = std::make_unique<Task>(i, pi.socket, config_, numa_);
    task->SetIdentity(pi.op, pi.replica, op.name);
    Harvested h;
    if (reuse) h = reuse(pi.op, pi.replica);
    if (op.is_spout) {
      task->SetSpout(h.valid && h.spout ? std::move(h.spout)
                                        : op.spout_factory());
      task->SetSpoutRate(config_.spout_rate_tps > 0
                             ? config_.spout_rate_tps / spout_instances
                             : 0.0);
    } else {
      task->SetBolt(h.valid && h.bolt ? std::move(h.bolt)
                                      : op.bolt_factory());
    }
    if (h.valid) {
      task->SeedStats(h.stats);
      fresh[i] = false;
    }
    task->SetInstanceSockets(&instance_sockets_);
    tasks_.push_back(std::move(task));
  }

  // Arm injected faults on their target (op, replica), honoring each
  // spec's remaining fire budget. kFailMigration is ApplyMigration's
  // business, not any task's.
  for (size_t fi = 0; fi < config_.faults.specs.size(); ++fi) {
    const FaultSpec& spec = config_.faults.specs[fi];
    if (spec.kind == FaultSpec::Kind::kFailMigration) continue;
    if (fault_fires_[fi] >= spec.trigger_limit) continue;
    if (spec.op < 0 || spec.op >= topo_->num_operators()) continue;
    if (spec.replica < 0 || spec.replica >= plan.replication(spec.op)) {
      continue;
    }
    tasks_[plan.InstanceId(spec.op, spec.replica)]->ArmFault(
        static_cast<int>(fi), spec);
  }

  // Wire channels per topology edge.
  for (const auto& e : topo_->edges()) {
    for (int pr = 0; pr < plan.replication(e.producer_op); ++pr) {
      const int pinst = plan.InstanceId(e.producer_op, pr);
      OutRoute route;
      route.stream_id = e.stream_id;
      route.grouping = e.grouping;
      route.key_field = e.key_field;
      const int consumers = e.grouping == api::GroupingType::kGlobal
                                ? 1
                                : plan.replication(e.consumer_op);
      for (int cr = 0; cr < consumers; ++cr) {
        const int cinst = plan.InstanceId(e.consumer_op, cr);
        // Ring-shell reuse only matters (and is only safe to prefer)
        // when the recycle queue is off — with recycling on, shells
        // come back through the BatchPool path instead.
        std::pmr::memory_resource* ring_memory =
            arenas_ != nullptr
                ? static_cast<std::pmr::memory_resource*>(
                      arenas_->ForSocket(instance_sockets_[cinst]))
                : std::pmr::get_default_resource();
        channels_.push_back(std::make_unique<Channel>(
            pinst, cinst, config_.queue_capacity,
            config_.reuse_ring_shells && !config_.recycle_batches,
            ring_memory));
        Channel* ch = channels_.back().get();
        tasks_[cinst]->AddInput(ch);
        route.channels.push_back(ch);
        route.buffer_index.push_back(tasks_[pinst]->AddBuffer());
      }
      tasks_[pinst]->AddOutRoute(std::move(route));
    }
  }

  // Prepare fresh operator instances with their runtime context.
  // Surviving instances were Prepared in the epoch that created them
  // and keep their state — re-preparing would e.g. re-seed a source.
  for (int i = 0; i < n; ++i) {
    if (!fresh[i]) continue;
    const auto& pi = plan.instance(i);
    api::OperatorContext ctx;
    ctx.operator_name = topo_->op(pi.op).name;
    ctx.replica_index = pi.replica;
    ctx.num_replicas = plan.replication(pi.op);
    ctx.socket = pi.socket;
    ctx.seed =
        config_.seed != 0 ? DeriveSeed(config_.seed, pi.op, pi.replica) : 0;
    ctx.output_streams = topo_->op(pi.op).output_streams;
    BRISK_RETURN_NOT_OK(tasks_[i]->Prepare(ctx));
  }
  plan_ = plan;
  return Status::OK();
}

BriskRuntime::~BriskRuntime() {
  if (running_) Stop();
}

Status BriskRuntime::StartExecutor() {
  signals_.stop_all.store(false);
  signals_.stop_spouts.store(false);
  signals_.preserve_inflight.store(false);

  const bool cooperative = config_.executor == ExecutorKind::kWorkerPool;
  std::vector<Task*> task_ptrs;
  task_ptrs.reserve(tasks_.size());
  for (auto& task : tasks_) {
    task->Bind(&signals_, cooperative);
    task_ptrs.push_back(task.get());
  }
  std::vector<Channel*> channel_ptrs;
  channel_ptrs.reserve(channels_.size());
  for (auto& ch : channels_) channel_ptrs.push_back(ch.get());

  executor_ = MakeExecutor(config_, &signals_, std::move(task_ptrs),
                           std::move(channel_ptrs),
                           numa_ != nullptr ? &numa_->machine() : nullptr,
                           arenas_.get());
  return executor_->Start();
}

Status BriskRuntime::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_) return Status::FailedPrecondition("already running");
  started_at_ = std::chrono::steady_clock::now();
  BRISK_RETURN_NOT_OK(StartExecutor());
  running_ = true;
  return Status::OK();
}

bool BriskRuntime::WaitForDrain(double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  uint64_t last_consumed = ~uint64_t{0};
  int stable_checks = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    bool channels_empty = true;
    for (const auto& ch : channels_) {
      if (!ch->EmptyApprox()) {
        channels_empty = false;
        break;
      }
    }
    // Relaxed reads are fine here: we require the sum to be *stable*
    // across consecutive checks with empty channels and no envelope
    // parked on back-pressure, which only a quiescent engine sustains.
    // (A parked envelope is invisible to the channels — its producer
    // may be waiting out park_timeout_us, longer than our window.)
    uint64_t consumed = 0;
    size_t parked = 0;
    for (const auto& task : tasks_) {
      consumed += task->stats().tuples_in;
      parked += task->pending_live();
    }
    if (channels_empty && parked == 0 && consumed == last_consumed) {
      if (++stable_checks >= 3) return true;
    } else {
      stable_checks = 0;
    }
    last_consumed = consumed;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return false;
}

void BriskRuntime::JoinExecutorAndFold() {
  signals_.stop_all.store(true);
  executor_->NotifyAll();
  executor_->Join();
  ExecutorStats epoch_stats = executor_->stats();
  epoch_stats.AccumulateCounters(retired_executor_);
  retired_executor_ = epoch_stats;
  executor_.reset();
}

bool BriskRuntime::QuiesceAndJoin(double* drain_seconds,
                                  bool preserve_inflight) {
  const auto drain_start = std::chrono::steady_clock::now();
  signals_.stop_spouts.store(true);
  executor_->NotifyAll();
  const bool drained = WaitForDrain(config_.drain_timeout_s);
  if (!drained) drain_timed_out_ = true;
  if (drain_seconds != nullptr) {
    *drain_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - drain_start)
                         .count();
  }
  // Preserve mode must flip on only now, between the drain and the
  // halt: during the drain the legacy executor still needs real
  // (spinning) back-pressure, or producers would park unboundedly
  // instead of being throttled. Publication order is a contract with
  // Task::PushEnvelope — preserve_inflight stores strictly before
  // stop_all (both seq_cst), and readers check stop_all (acquire)
  // first, so no thread can observe the halt without the preserve
  // mode that governs it.
  if (preserve_inflight) signals_.preserve_inflight.store(true);
  JoinExecutorAndFold();
  return drained;
}

void BriskRuntime::SweepResiduals() {
  // Each pass moves every queued/staged/parked tuple at least one hop
  // (rings freed by downstream consumption within the same pass), so
  // the sweep terminates once the finite in-flight inventory reaches
  // the sinks. The cap is a defensive bound, not an expected exit.
  for (int pass = 0; pass < 64; ++pass) {
    for (const int op : topo_->topological_order()) {
      for (size_t i = 0; i < tasks_.size(); ++i) {
        if (instance_op_[i] == op) tasks_[i]->DrainResidual();
      }
    }
    bool quiescent = true;
    for (const auto& ch : channels_) {
      if (!ch->EmptyApprox()) {
        quiescent = false;
        break;
      }
    }
    if (quiescent) {
      for (const auto& task : tasks_) {
        if (task->pending_live() != 0) {
          quiescent = false;
          break;
        }
      }
    }
    if (quiescent) return;
  }
  BRISK_LOG(Warn) << "residual sweep did not reach quiescence";
}

Status BriskRuntime::ApplyMigration(const opt::MigrationPlan& migration) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_) {
    return Status::FailedPrecondition(
        "ApplyMigration requires a running engine");
  }
  if (migration.empty()) return Status::OK();

  // 1. Validate and reconstruct the target plan *before* pausing
  // anything, so a bad migration never disturbs the job.
  BRISK_ASSIGN_OR_RETURN(model::ExecutionPlan next,
                         opt::ApplyStepsToPlan(plan_, migration));

  // An armed kFailMigration fault (with fire budget left) fires at its
  // configured phase of this protocol.
  int fm_index = -1;
  const FaultSpec* fm = nullptr;
  for (size_t fi = 0; fi < config_.faults.specs.size(); ++fi) {
    const FaultSpec& spec = config_.faults.specs[fi];
    if (spec.kind != FaultSpec::Kind::kFailMigration) continue;
    if (fi < fault_fires_.size() && fault_fires_[fi] >= spec.trigger_limit) {
      continue;
    }
    fm_index = static_cast<int>(fi);
    fm = &spec;
    break;
  }
  if (fm != nullptr && fm->at_phase == 0) {
    // Before the pause: a clean rejection, job undisturbed.
    ++fault_fires_[fm_index];
    return Status::Internal(
        "injected migration failure before the pause; job undisturbed");
  }

  // 2. Quiesce at a batch boundary and join the executor (in-flight
  // batches are preserved — parked, not dropped — even if the
  // cooperative drain times out), then sweep residuals to the sinks
  // single-threaded. After this, no tuple is in flight anywhere.
  if (!QuiesceAndJoin(nullptr, /*preserve_inflight=*/true)) {
    BRISK_LOG(Warn) << "migration drain timed out after "
                    << config_.drain_timeout_s
                    << " s; residual sweep delivers the backlog";
  }
  SweepResiduals();

  if (fm != nullptr && fm->at_phase == 1) {
    // After the pause, before the rebuild: nothing was dismantled —
    // the old graph is intact and fully drained, so roll back by
    // resuming it. Zero tuples were lost either way.
    ++fault_fires_[fm_index];
    const Status resumed = StartExecutor();
    if (!resumed.ok()) {
      running_ = false;
      dead_ = true;
      return resumed;
    }
    return Status::Internal(
        "injected migration failure after the pause; rolled back");
  }

  // 3. Harvest operator instances and stats by (op, replica), and
  // export keyed state wherever the replication level changes (the
  // key → replica mapping changes for every key there).
  const model::ExecutionPlan old_plan = plan_;
  std::map<std::pair<int, int>, Harvested> harvested;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    const auto& pi = old_plan.instance(static_cast<int>(i));
    Harvested h;
    h.spout = tasks_[i]->TakeSpout();
    h.bolt = tasks_[i]->TakeBolt();
    h.stats = tasks_[i]->stats();
    h.valid = true;
    harvested[{pi.op, pi.replica}] = std::move(h);
  }
  std::vector<std::vector<api::KeyedStateEntry>> exported(
      topo_->num_operators());
  for (int op = 0; op < topo_->num_operators(); ++op) {
    const int old_repl = old_plan.replication(op);
    const int new_repl = next.replication(op);
    if (old_repl == new_repl) continue;
    for (int r = 0; r < old_repl; ++r) {
      Harvested& h = harvested[{op, r}];
      if (h.bolt != nullptr) {
        auto entries = h.bolt->ExportKeyedState();
        exported[op].insert(exported[op].end(),
                            std::make_move_iterator(entries.begin()),
                            std::make_move_iterator(entries.end()));
      }
      // Retired replicas: counters fold into the per-op totals so
      // run-level conservation invariants keep holding.
      if (r >= new_repl) retired_op_stats_[op].Accumulate(h.stats);
    }
  }

  // 4. Rebuild tasks + channels against the new plan; surviving
  // identities adopt their harvested instance, new replicas Prepare.
  auto reuse = [&harvested](int op, int replica) -> Harvested {
    auto it = harvested.find({op, replica});
    if (it == harvested.end()) return Harvested{};
    return std::move(it->second);
  };
  const Status rebuilt = WireGraph(next, reuse);
  if (!rebuilt.ok()) {
    // Past the point of no return: the executor is down and the old
    // graph was dismantled. Mark the job dead (safe to Stop()/destroy,
    // and Stop still reports the accumulated counters) instead of
    // pretending the old plan still runs.
    running_ = false;
    dead_ = true;
    return rebuilt;
  }

  // 5. Re-partition exported keyed state with the same hash the
  // fields grouping applies to tuples: entry → replica
  // HashField(key) % new_replication.
  for (int op = 0; op < topo_->num_operators(); ++op) {
    if (exported[op].empty()) continue;
    const int new_repl = plan_.replication(op);
    std::vector<std::vector<api::KeyedStateEntry>> buckets(new_repl);
    for (auto& entry : exported[op]) {
      const size_t target =
          HashField(entry.key) % static_cast<size_t>(new_repl);
      buckets[target].push_back(std::move(entry));
    }
    for (int r = 0; r < new_repl; ++r) {
      if (buckets[r].empty()) continue;
      api::Operator* bolt = tasks_[plan_.InstanceId(op, r)]->bolt();
      BRISK_CHECK(bolt != nullptr) << "keyed state exported by a spout";
      bolt->ImportKeyedState(std::move(buckets[r]));
    }
  }

  if (fm != nullptr && fm->at_phase >= 2) {
    // Past the point of no return: the old graph is gone and the new
    // one never starts. The job is down until a checkpoint Restore
    // (the supervisor's recovery path) revives it.
    ++fault_fires_[fm_index];
    running_ = false;
    dead_ = true;
    return Status::Internal(
        "injected migration failure after the rebuild; job down");
  }

  // 6. Resume on a fresh executor honoring the new placement.
  const Status resumed = StartExecutor();
  if (!resumed.ok()) {
    running_ = false;  // as above: quiesced and cannot resume
    dead_ = true;
    return resumed;
  }
  ++migrations_;
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

StatusOr<JobCheckpoint> BriskRuntime::Checkpoint() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_) {
    return Status::FailedPrecondition("Checkpoint requires a running engine");
  }
  // Source veto, checked before the (expensive) pause: an external
  // non-replayable source (socket without an egress journal) refuses
  // checkpointing outright — a snapshot of its job could never replay
  // the gap, so refusing beats a silently-inconsistent capture.
  for (const auto& task : tasks_) {
    if (api::Spout* spout = task->spout()) {
      const Status guard = spout->CheckpointGuard();
      if (!guard.ok()) return guard;
    }
  }
  const auto pause_start = std::chrono::steady_clock::now();
  // Same pause as a migration: quiesce at a batch boundary preserving
  // in-flight envelopes, then sweep residuals to the sinks. After the
  // sweep, keyed state and source positions are mutually consistent —
  // every produced tuple has fully taken effect, none is half-applied.
  if (!QuiesceAndJoin(nullptr, /*preserve_inflight=*/true)) {
    BRISK_LOG(Warn) << "checkpoint drain timed out after "
                    << config_.drain_timeout_s
                    << " s; residual sweep delivers the backlog";
  }
  SweepResiduals();

  // Consistency guard: a snapshot is only valid if every produced
  // tuple reached its state. A failed replica discards the input the
  // sweep hands it, and a wedged push keeps its envelope parked past
  // the sweep — either way the source positions would run ahead of the
  // captured state, and restoring such a snapshot would silently lose
  // the gap. Refuse, resume, and let the supervisor keep its last good
  // checkpoint (it is about to detect the failure anyway).
  bool consistent = true;
  for (const auto& task : tasks_) {
    if (task->failed() || task->pending_live() != 0) {
      consistent = false;
      break;
    }
  }
  for (const auto& ch : channels_) {
    if (!ch->EmptyApprox()) {
      consistent = false;
      break;
    }
  }
  if (!consistent) {
    const Status resumed = StartExecutor();
    if (!resumed.ok()) {
      running_ = false;
      dead_ = true;
      return resumed;
    }
    return Status::Unavailable(
        "checkpoint refused: a replica failed or holds undelivered input, "
        "so captured state would trail the source positions");
  }

  JobCheckpoint cp;
  cp.epoch = epoch_.load(std::memory_order_acquire);
  cp.plan = plan_;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    const auto& pi = plan_.instance(static_cast<int>(i));
    if (api::Spout* spout = tasks_[i]->spout()) {
      cp.positions.push_back(
          {pi.op, pi.replica, spout->Position(), spout->Replayable()});
    } else if (api::Operator* bolt = tasks_[i]->bolt()) {
      auto entries = bolt->SnapshotKeyedState();
      if (!entries.empty()) {
        cp.state.push_back({pi.op, pi.replica, std::move(entries)});
      }
    }
  }

  // Resume on a fresh executor — same graph, same plan, no epoch bump.
  const Status resumed = StartExecutor();
  if (!resumed.ok()) {
    running_ = false;
    dead_ = true;
    return resumed;
  }
  ++checkpoints_;
  cp.pause_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - pause_start)
                         .count();
  return cp;
}

Status BriskRuntime::Restore(const JobCheckpoint& cp,
                             uint64_t* replayed_tuples) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_ && !dead_) {
    return Status::FailedPrecondition(
        "Restore requires a running or failed engine");
  }
  // Validate the checkpoint against the topology before touching the
  // live graph, so a corrupt checkpoint leaves the job as it was.
  if (!cp.plan.FullyPlaced()) {
    return Status::InvalidArgument("checkpoint plan is not fully placed");
  }
  for (const auto& s : cp.state) {
    if (s.op < 0 || s.op >= topo_->num_operators() ||
        topo_->op(s.op).is_spout) {
      return Status::InvalidArgument(
          "checkpoint keyed state targets an operator that is not a bolt");
    }
  }
  for (const auto& p : cp.positions) {
    if (p.op < 0 || p.op >= topo_->num_operators() ||
        !topo_->op(p.op).is_spout || p.replica < 0 ||
        p.replica >= cp.plan.replication(p.op)) {
      return Status::InvalidArgument(
          "checkpoint position does not name a source replica");
    }
  }

  // Hard halt — no graceful drain. A failed graph may be wedged (a
  // crashed bolt consumes nothing; its producers park forever), so a
  // drain could never converge. Abandoning in-flight envelopes is
  // safe: everything after the checkpoint replays anyway.
  if (executor_ != nullptr) JoinExecutorAndFold();

  // Duplicate-window accounting: how far past the captured positions
  // did the replayable sources get before the halt? Everything in
  // that window is emitted twice (at-least-once delivery).
  uint64_t replayed = 0;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    const auto& pi = plan_.instance(static_cast<int>(i));
    api::Spout* spout = tasks_[i]->spout();
    if (spout == nullptr || !spout->Replayable()) continue;
    const api::SourcePosition live_pos = spout->Position();
    for (const auto& p : cp.positions) {
      if (p.op == pi.op && p.replica == pi.replica && p.replayable &&
          live_pos.kind == p.position.kind &&
          live_pos.offset > p.position.offset) {
        // Window units follow the position kind: tuples for synthetic
        // and socket sources, bytes for file sources.
        replayed += live_pos.offset - p.position.offset;
      }
    }
  }
  if (replayed_tuples != nullptr) *replayed_tuples = replayed;

  // The dying epoch's counters fold into the per-op totals so the
  // run-level report stays cumulative across the failure.
  for (size_t i = 0; i < tasks_.size(); ++i) {
    retired_op_stats_[instance_op_[i]].Accumulate(tasks_[i]->stats());
  }

  // Rebuild all-fresh to the checkpoint's plan. (WireGraph harvests
  // fault fire-counts from the dying tasks first, so a one-shot
  // injected fault does not re-fire after the recovery it caused.)
  const Status rebuilt = WireGraph(cp.plan, nullptr);
  if (!rebuilt.ok()) {
    running_ = false;
    dead_ = true;
    return rebuilt;
  }

  // Re-partition captured keyed state exactly like a fields grouping
  // routes tuples: entry → replica HashField(key) % replication.
  std::vector<std::vector<api::CheckpointEntry>> per_op(
      topo_->num_operators());
  for (const auto& s : cp.state) {
    per_op[s.op].insert(per_op[s.op].end(), s.entries.begin(),
                        s.entries.end());
  }
  for (int op = 0; op < topo_->num_operators(); ++op) {
    if (per_op[op].empty()) continue;
    const int repl = plan_.replication(op);
    std::vector<std::vector<api::CheckpointEntry>> buckets(repl);
    for (auto& entry : per_op[op]) {
      buckets[HashField(entry.key) % static_cast<size_t>(repl)].push_back(
          std::move(entry));
    }
    for (int r = 0; r < repl; ++r) {
      if (buckets[r].empty()) continue;
      api::Operator* bolt = tasks_[plan_.InstanceId(op, r)]->bolt();
      BRISK_CHECK(bolt != nullptr) << "validated above";
      bolt->RestoreKeyedState(std::move(buckets[r]));
    }
  }

  // Rewind replayable sources to the captured positions. A source
  // that refuses resumes from scratch (it was rebuilt fresh) — that
  // is a gap on its stream, and we say so.
  for (const auto& p : cp.positions) {
    api::Spout* spout = tasks_[plan_.InstanceId(p.op, p.replica)]->spout();
    BRISK_CHECK(spout != nullptr) << "validated above";
    if (p.replayable && !spout->Rewind(p.position)) {
      BRISK_LOG(Warn) << "source op " << p.op << " replica " << p.replica
                      << " refused Rewind("
                      << api::SourcePositionKindName(p.position.kind) << " "
                      << p.position.offset
                      << "); its stream restarts with a gap";
    }
  }

  const Status resumed = StartExecutor();
  if (!resumed.ok()) {
    running_ = false;
    dead_ = true;
    return resumed;
  }
  running_ = true;
  dead_ = false;
  ++restores_;
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

HealthReport BriskRuntime::ProbeHealth() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  HealthReport report;
  report.running = running_;
  report.dead = dead_;
  // Input backlog per instance, sampled from the channel side (SPSC
  // rings expose approximate sizes safely cross-thread).
  std::vector<uint64_t> backlog(tasks_.size(), 0);
  for (const auto& ch : channels_) {
    backlog[static_cast<size_t>(ch->to_instance())] += ch->SizeApprox();
  }
  report.tasks.reserve(tasks_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    Task& t = *tasks_[i];
    TaskHealth h;
    h.op = t.op();
    h.replica = t.replica();
    h.op_name = t.op_name();
    h.spout = t.is_spout();
    h.tuples_in = t.stats().tuples_in;
    h.backlog = backlog[i];
    h.pending_live = t.pending_live();
    h.failed = t.failed();
    if (h.failed) h.failure_message = t.failure_message();
    report.tasks.push_back(std::move(h));
  }
  if (executor_ != nullptr) {
    report.worker_heartbeats = executor_->Heartbeats();
    report.worker_queue_depths = executor_->QueueDepths();
  }
  return report;
}

std::vector<TaskStats> BriskRuntime::OpTotals() const {
  std::vector<TaskStats> totals = retired_op_stats_;
  totals.resize(topo_->num_operators());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    totals[instance_op_[i]].Accumulate(tasks_[i]->stats());
  }
  return totals;
}

void BriskRuntime::CollectStats(RunStats* stats) const {
  stats->duration_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started_at_)
                          .count();
  stats->migrations = migrations_;
  stats->checkpoints = checkpoints_;
  stats->restores = restores_;
  stats->drain_timed_out = drain_timed_out_;
  stats->tasks.reserve(tasks_.size());
  for (const auto& task : tasks_) stats->tasks.push_back(task->stats());
  stats->op_totals = OpTotals();
  for (const auto& s : stats->op_totals) {
    stats->total_emitted += s.tuples_out;
    stats->total_consumed += s.tuples_in;
  }
}

RunStats BriskRuntime::SnapshotStats() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  RunStats stats;
  CollectStats(&stats);
  // Executor counters are observable live (single-writer relaxed
  // atomics in the pool workers): fold the retired epochs' totals into
  // the running epoch's snapshot so a mid-run observer sees cumulative
  // steal/park counts across migrations, same as Stop() reports.
  stats.executor = retired_executor_;
  if (executor_ != nullptr) {
    ExecutorStats live = executor_->stats();
    live.AccumulateCounters(retired_executor_);
    stats.executor = live;
  }
  if (!running_) stats.duration_s = 0.0;
  return stats;
}

RunStats BriskRuntime::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  RunStats stats;
  if (!running_) {
    if (!dead_) return stats;  // never started or already stopped
    // Migration-dead: the executor is already down and the graph may
    // be partial, but the run's counters (surviving tasks + retired
    // fold-ins) are intact — report them instead of pretending the
    // run never happened.
    dead_ = false;
    stats.executor = retired_executor_;
    CollectStats(&stats);
    return stats;
  }
  if (config_.graceful_drain) {
    // Phase 1: stop production, let bolts drain what is in flight.
    stats.drained =
        QuiesceAndJoin(&stats.drain_seconds, /*preserve_inflight=*/false);
  } else {
    JoinExecutorAndFold();
  }
  // Phase 2: run the shutdown epilogue in topological operator order:
  // each task consumes what is left on its inputs and flushes its
  // operator, so stateful bolts' finals propagate all the way to the
  // sinks even though no execution thread is running anymore.
  for (const int op : topo_->topological_order()) {
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (instance_op_[i] == op) tasks_[i]->Finalize();
    }
  }
  stats.executor = retired_executor_;
  running_ = false;
  CollectStats(&stats);
  return stats;
}

StatusOr<RunStats> BriskRuntime::RunFor(double seconds) {
  BRISK_RETURN_NOT_OK(Start());
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return Stop();
}

}  // namespace brisk::engine
