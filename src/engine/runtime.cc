#include "engine/runtime.h"

#include <chrono>

#include "common/logging.h"

namespace brisk::engine {

StatusOr<std::unique_ptr<BriskRuntime>> BriskRuntime::Create(
    const api::Topology* topo, const model::ExecutionPlan& plan,
    EngineConfig config, const hw::NumaEmulator* numa) {
  if (topo == nullptr) return Status::InvalidArgument("null topology");
  if (!plan.FullyPlaced()) {
    return Status::FailedPrecondition(
        "cannot deploy a plan with unplaced instances");
  }
  if (config.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }

  auto rt = std::unique_ptr<BriskRuntime>(new BriskRuntime());
  rt->topo_ = topo;
  rt->config_ = config;
  rt->numa_ = numa;

  const int n = plan.num_instances();
  rt->instance_sockets_.resize(n);
  rt->instance_op_.resize(n);
  int spout_instances = 0;
  for (int i = 0; i < n; ++i) {
    rt->instance_sockets_[i] = plan.instance(i).socket;
    rt->instance_op_[i] = plan.instance(i).op;
    if (topo->op(plan.instance(i).op).is_spout) ++spout_instances;
  }

  // Instantiate tasks.
  for (int i = 0; i < n; ++i) {
    const auto& pi = plan.instance(i);
    const auto& op = topo->op(pi.op);
    auto task =
        std::make_unique<Task>(i, pi.socket, config, numa);
    if (op.is_spout) {
      task->SetSpout(op.spout_factory());
      task->SetSpoutRate(config.spout_rate_tps > 0
                             ? config.spout_rate_tps / spout_instances
                             : 0.0);
    } else {
      task->SetBolt(op.bolt_factory());
    }
    task->SetInstanceSockets(&rt->instance_sockets_);
    rt->tasks_.push_back(std::move(task));
  }

  // Wire channels per topology edge.
  for (const auto& e : topo->edges()) {
    for (int pr = 0; pr < plan.replication(e.producer_op); ++pr) {
      const int pinst = plan.InstanceId(e.producer_op, pr);
      OutRoute route;
      route.stream_id = e.stream_id;
      route.grouping = e.grouping;
      route.key_field = e.key_field;
      const int consumers = e.grouping == api::GroupingType::kGlobal
                                ? 1
                                : plan.replication(e.consumer_op);
      for (int cr = 0; cr < consumers; ++cr) {
        const int cinst = plan.InstanceId(e.consumer_op, cr);
        rt->channels_.push_back(std::make_unique<Channel>(
            pinst, cinst, config.queue_capacity));
        Channel* ch = rt->channels_.back().get();
        rt->tasks_[cinst]->AddInput(ch);
        route.channels.push_back(ch);
        route.buffer_index.push_back(rt->tasks_[pinst]->AddBuffer());
      }
      rt->tasks_[pinst]->AddOutRoute(std::move(route));
    }
  }

  // Prepare operators with their runtime context.
  for (int i = 0; i < n; ++i) {
    const auto& pi = plan.instance(i);
    api::OperatorContext ctx;
    ctx.operator_name = topo->op(pi.op).name;
    ctx.replica_index = pi.replica;
    ctx.num_replicas = plan.replication(pi.op);
    ctx.socket = pi.socket;
    ctx.output_streams = topo->op(pi.op).output_streams;
    BRISK_RETURN_NOT_OK(rt->tasks_[i]->Prepare(ctx));
  }
  return rt;
}

BriskRuntime::~BriskRuntime() {
  if (running_) Stop();
}

Status BriskRuntime::Start() {
  if (running_) return Status::FailedPrecondition("already running");
  signals_.stop_all.store(false);
  signals_.stop_spouts.store(false);

  const bool cooperative = config_.executor == ExecutorKind::kWorkerPool;
  std::vector<Task*> task_ptrs;
  task_ptrs.reserve(tasks_.size());
  for (auto& task : tasks_) {
    task->Bind(&signals_, cooperative);
    task_ptrs.push_back(task.get());
  }
  std::vector<Channel*> channel_ptrs;
  channel_ptrs.reserve(channels_.size());
  for (auto& ch : channels_) channel_ptrs.push_back(ch.get());

  executor_ = MakeExecutor(config_, &signals_, std::move(task_ptrs),
                           std::move(channel_ptrs),
                           numa_ != nullptr ? &numa_->machine() : nullptr);
  started_at_ = std::chrono::steady_clock::now();
  BRISK_RETURN_NOT_OK(executor_->Start());
  running_ = true;
  return Status::OK();
}

bool BriskRuntime::WaitForDrain(double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  uint64_t last_consumed = ~uint64_t{0};
  int stable_checks = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    bool channels_empty = true;
    for (const auto& ch : channels_) {
      if (ch->SizeApprox() != 0) {
        channels_empty = false;
        break;
      }
    }
    // Racy reads are fine here: we require the sum to be *stable*
    // across consecutive checks with empty channels and no envelope
    // parked on back-pressure, which only a quiescent engine sustains.
    // (A parked envelope is invisible to the channels — its producer
    // may be waiting out park_timeout_us, longer than our window.)
    uint64_t consumed = 0;
    size_t parked = 0;
    for (const auto& task : tasks_) {
      consumed += task->stats().tuples_in;
      parked += task->pending_live();
    }
    if (channels_empty && parked == 0 && consumed == last_consumed) {
      if (++stable_checks >= 3) return true;
    } else {
      stable_checks = 0;
    }
    last_consumed = consumed;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return false;
}

RunStats BriskRuntime::Stop() {
  RunStats stats;
  if (!running_) return stats;
  if (config_.graceful_drain) {
    // Phase 1: stop production, let bolts drain what is in flight.
    const auto drain_start = std::chrono::steady_clock::now();
    signals_.stop_spouts.store(true);
    executor_->NotifyAll();
    stats.drained = WaitForDrain(config_.drain_timeout_s);
    stats.drain_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      drain_start)
            .count();
  }
  // Phase 2: halt everything, then run the shutdown epilogue in
  // topological operator order: each task consumes what is left on
  // its inputs and flushes its operator, so stateful bolts' finals
  // propagate all the way to the sinks even though no execution
  // thread is running anymore.
  signals_.stop_all.store(true);
  executor_->NotifyAll();
  executor_->Join();
  for (const int op : topo_->topological_order()) {
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (instance_op_[i] == op) tasks_[i]->Finalize();
    }
  }
  stats.executor = executor_->stats();
  executor_.reset();
  running_ = false;
  stats.duration_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started_at_)
                         .count();
  stats.tasks.reserve(tasks_.size());
  for (const auto& task : tasks_) {
    stats.tasks.push_back(task->stats());
    stats.total_emitted += task->stats().tuples_out;
    stats.total_consumed += task->stats().tuples_in;
  }
  return stats;
}

StatusOr<RunStats> BriskRuntime::RunFor(double seconds) {
  BRISK_RETURN_NOT_OK(Start());
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return Stop();
}

}  // namespace brisk::engine
