#include "engine/observed_profiles.h"

#include <algorithm>

namespace brisk::engine {

StatusOr<model::ProfileSet> ObserveProfiles(
    const api::Topology& topo, const model::ExecutionPlan& plan,
    const RunStats& stats, const model::ProfileSet& planned,
    const ObservationConfig& config) {
  if (static_cast<int>(stats.tasks.size()) != plan.num_instances()) {
    return Status::InvalidArgument(
        "RunStats covers " + std::to_string(stats.tasks.size()) +
        " tasks but the plan has " + std::to_string(plan.num_instances()));
  }
  if (config.reference_ghz <= 0) {
    return Status::InvalidArgument("reference_ghz must be positive");
  }

  model::ProfileSet observed;
  for (const auto& op : topo.ops()) {
    BRISK_ASSIGN_OR_RETURN(model::OperatorProfile profile,
                           planned.Get(op.name));
    uint64_t tuples_in = 0, tuples_out = 0, busy_ns = 0;
    for (int r = 0; r < plan.replication(op.id); ++r) {
      const TaskStats& t = stats.tasks[plan.InstanceId(op.id, r)];
      tuples_in += t.tuples_in;
      tuples_out += t.tuples_out;
      busy_ns += t.busy_ns;
    }
    if (tuples_in > 0) {
      profile.te_cycles = static_cast<double>(busy_ns) /
                          static_cast<double>(tuples_in) *
                          config.reference_ghz;
      // Scale the planned per-stream selectivity mix to the observed
      // aggregate output ratio (the engine does not tag counters per
      // stream; the mix shape comes from the planned profile).
      double planned_total = 0.0;
      for (const double s : profile.selectivity) planned_total += s;
      const double observed_total = static_cast<double>(tuples_out) /
                                    static_cast<double>(tuples_in);
      if (planned_total > 0.0) {
        const double scale = observed_total / planned_total;
        for (double& s : profile.selectivity) s *= scale;
      } else if (observed_total > 0.0 && !profile.selectivity.empty()) {
        profile.selectivity[0] = observed_total;
      }
    }
    observed.Set(op.name, profile);
  }
  return observed;
}

void BlendProfiles(model::ProfileSet* into, const model::ProfileSet& sample,
                   double alpha) {
  alpha = std::clamp(alpha, 0.0, 1.0);
  for (const auto& [name, s] : sample.all()) {
    auto prev = into->Get(name);
    if (!prev.ok()) {
      into->Set(name, s);
      continue;
    }
    model::OperatorProfile blended = s;
    blended.te_cycles = alpha * s.te_cycles + (1 - alpha) * prev->te_cycles;
    const size_t n =
        std::min(blended.selectivity.size(), prev->selectivity.size());
    for (size_t i = 0; i < n; ++i) {
      blended.selectivity[i] = alpha * s.selectivity[i] +
                               (1 - alpha) * prev->selectivity[i];
    }
    into->Set(name, blended);
  }
}

}  // namespace brisk::engine
