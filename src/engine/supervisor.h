// Supervisor: the watchdog + checkpoint controller that makes a
// BriskRuntime job fault-tolerant.
//
// A controller thread (same shape as the Job autopilot) wakes every
// heartbeat interval and
//   - takes periodic checkpoints (BriskRuntime::Checkpoint — the
//     pause-and-migrate quiesce reused as a consistent snapshot),
//     keeping the latest serialized payload as the recovery base;
//   - probes health (BriskRuntime::ProbeHealth): contained operator
//     failures (a bolt threw / an injected crash fired), a dead engine
//     (failed migration), and stalled tasks — no progress across
//     consecutive probes while holding queued input or parked output,
//     which also catches drain deadlocks (a wedged producer never
//     retires its parked envelope);
//   - recovers: bounded exponential backoff, then restore from the
//     last checkpoint (sources rewound, keyed state re-imported,
//     at-least-once replay of the window since the checkpoint);
//   - gives up cleanly: after max_restarts the circuit breaker opens
//     and the report carries Status::Unavailable instead of a retry
//     loop that can never converge.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/checkpoint.h"
#include "engine/runtime.h"

namespace brisk::engine {

struct SupervisorOptions {
  /// Watchdog probe cadence. Detection latency for a crash/stall is
  /// bounded by stall_probes + 1 intervals (≤ 2× with the defaults).
  double heartbeat_interval_s = 0.05;
  /// Periodic checkpoint cadence; <= 0 keeps only the initial
  /// checkpoint taken at Start().
  double checkpoint_interval_s = 0.0;
  /// Consecutive no-progress probes (while holding work) that flag a
  /// task as stalled.
  int stall_probes = 2;
  /// Circuit breaker: successful restarts allowed before the
  /// supervisor gives up with Status::Unavailable.
  int max_restarts = 3;
  /// Exponential backoff before each recovery attempt, reset by a
  /// healthy probe cycle.
  double backoff_initial_s = 0.02;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 1.0;
};

/// One detected failure and the recovery attempt it triggered.
struct RecoveryRecord {
  double at_seconds = 0.0;  ///< offset from Supervisor::Start
  std::string cause;
  /// Detect → engine running again (includes the backoff wait).
  double recovery_seconds = 0.0;
  /// Source positions rolled back: the duplicate-emission window.
  uint64_t replayed_tuples = 0;
  bool succeeded = false;
  std::string error;
};

struct SupervisionReport {
  int checkpoints = 0;
  int failures_detected = 0;
  int restarts = 0;  ///< successful recoveries
  uint64_t replayed_tuples = 0;
  double checkpoint_pause_s = 0.0;  ///< total job pause for snapshots
  std::vector<RecoveryRecord> recoveries;
  /// OK while supervised; Unavailable once the circuit breaker opened.
  Status final_status;
};

class Supervisor {
 public:
  /// `runtime` must be started and must outlive the supervisor.
  Supervisor(BriskRuntime* runtime, SupervisorOptions options)
      : runtime_(runtime), options_(options) {}
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Takes the initial checkpoint (recovery always has a base) and
  /// spawns the controller thread.
  Status Start();

  /// Joins the controller (idempotent) and returns the final report.
  SupervisionReport Stop();

  /// Snapshot of the report so far, safe from any thread.
  SupervisionReport Snapshot() const;

 private:
  void Loop();
  /// Interruptible sleep; false when Stop was signaled.
  bool SleepFor(double seconds);
  /// Empty string = healthy. Maintains the per-task stall counters.
  std::string DetectFailure(const HealthReport& health);
  void Recover(const std::string& cause);
  Status TakeCheckpoint();

  BriskRuntime* runtime_;
  SupervisorOptions options_;

  // Last good checkpoint: serialized payload + its plan (plans are
  // engine objects, not wire data — DeserializeCheckpoint re-attaches
  // the one stored alongside the bytes). Controller thread only,
  // except the initial checkpoint written by Start().
  std::vector<uint8_t> checkpoint_bytes_;
  model::ExecutionPlan checkpoint_plan_;
  std::chrono::steady_clock::time_point last_checkpoint_;
  std::chrono::steady_clock::time_point started_at_;

  // Stall-detection state (controller thread only). Reset whenever
  // the plan epoch or instance space changes.
  std::vector<uint64_t> last_tuples_;
  std::vector<int> no_progress_;
  // Stuck-worker state: a pool worker whose scheduling heartbeat
  // freezes while its run queue still holds tasks is a wedged
  // scheduler thread, distinct from a stalled task.
  std::vector<uint64_t> last_heartbeats_;
  std::vector<int> worker_no_progress_;
  int tracked_epoch_ = -1;
  int backoff_step_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  SupervisionReport report_;  ///< guarded by mu_
  std::thread thread_;
};

}  // namespace brisk::engine
