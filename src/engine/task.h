// Task: the basic processing unit of BriskStream (Appendix A) — an
// executor wrapping one operator replica plus a partition controller
// that buffers output tuples into per-consumer jumbo tuples.
//
// A task can be driven two ways:
//   - Run(): the legacy thread-per-task body, looping until stopped
//     and spinning on back-pressure (ExecutorKind::kThreadPerTask);
//   - Poll(budget): a resumable work quantum for the worker-pool
//     executor — a spout produces up to `budget` batches, a bolt
//     drains up to `budget` envelopes, and a task blocked on
//     back-pressure parks the un-pushable envelope and returns
//     kBlocked instead of spinning, so one worker can round-robin many
//     tasks without oversubscribing the core.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/operator.h"
#include "api/pipeline.h"
#include "api/topology.h"
#include "common/logging.h"
#include "common/relaxed_counter.h"
#include "engine/channel.h"
#include "engine/config.h"
#include "hardware/numa_emulator.h"

namespace brisk::engine {

/// One outgoing route of a task: a topology edge materialized against
/// the consumer's replicas.
struct OutRoute {
  uint16_t stream_id = 0;
  api::GroupingType grouping = api::GroupingType::kShuffle;
  size_t key_field = 0;
  /// One entry per consumer replica (kGlobal keeps only replica 0);
  /// parallel to `buffers` indices stored here.
  std::vector<Channel*> channels;
  std::vector<int> buffer_index;  ///< into Task::buffers_
  size_t rr_cursor = 0;
};

/// Counters a task exports. Written only by the owning executor
/// thread; other threads read them for monitoring (the §5.3
/// statistics-collection loop behind live re-optimization) — each
/// counter is a RelaxedCounter, so cross-thread snapshots are
/// race-free and approximately consistent.
struct TaskStats {
  RelaxedCounter tuples_in;
  RelaxedCounter tuples_out;
  RelaxedCounter batches_in;
  RelaxedCounter batches_out;
  /// Outbound batches whose shell came from the channel's recycle
  /// queue instead of the allocator (BatchPool hit rate).
  RelaxedCounter batches_recycled;
  /// Thread-per-task mode: failed pushes retried in a spin loop.
  RelaxedCounter backpressure_spins;
  /// Worker-pool mode: envelopes parked for cooperative retry because
  /// the consumer's queue was full (the Pending-reschedule path).
  RelaxedCounter backpressure_parks;
  /// Wall time spent inside operator Process()/NextBatch() calls, ns.
  RelaxedCounter busy_ns;
  /// Tuples that entered through the compiled-pipeline batch path
  /// (CompiledPipeline::RunBatch) instead of per-tuple Process. Equal
  /// to tuples_in when the bolt runs fully vectorized; 0 when it runs
  /// interpreted — the JobReport's execution-mode indicator.
  RelaxedCounter tuples_vec;

  /// Member-wise accumulation (per-operator totals across migration
  /// epochs). Caller-thread-only, like every other mutation.
  void Accumulate(const TaskStats& o) {
    tuples_in += o.tuples_in;
    tuples_out += o.tuples_out;
    batches_in += o.batches_in;
    batches_out += o.batches_out;
    batches_recycled += o.batches_recycled;
    backpressure_spins += o.backpressure_spins;
    backpressure_parks += o.backpressure_parks;
    busy_ns += o.busy_ns;
    tuples_vec += o.tuples_vec;
  }
};

/// Stop protocol shared by every executor: `stop_spouts` halts
/// production first (graceful drain), `stop_all` halts everything.
/// Owned by the runtime; outlives tasks and executor threads.
struct StopSignals {
  std::atomic<bool> stop_all{false};
  std::atomic<bool> stop_spouts{false};
  /// Migration mode: the engine is pausing, not dying — a push that
  /// would normally drop its in-flight batch under `stop_all` (full
  /// ring at halt time) parks it instead, so the post-join residual
  /// sweep delivers it and the pause stays lossless even when the
  /// cooperative drain timed out.
  std::atomic<bool> preserve_inflight{false};
};

/// Outcome of one cooperative work quantum.
enum class PollResult {
  kProgress,  ///< did work; poll again soon
  kIdle,      ///< no input / rate-limited; ok to back off
  kBlocked,   ///< back-pressured: an envelope is parked awaiting space
  kDone,      ///< bounded source exhausted (or spout stopped + flushed)
};

/// The partition controller + executor for one placed instance.
///
/// Single-threaded by construction: Run() or the owning pool worker is
/// the only caller after start; all other methods are wiring performed
/// before start.
class Task : public api::OutputCollector, public api::PipelineSink {
 public:
  Task(int instance_id, int socket, EngineConfig config,
       const hw::NumaEmulator* numa)
      : instance_id_(instance_id),
        socket_(socket),
        config_(config),
        numa_(numa) {}

  /// Wiring (pre-start).
  void SetSpout(std::unique_ptr<api::Spout> spout) {
    spout_ = std::move(spout);
  }
  void SetBolt(std::unique_ptr<api::Operator> bolt) {
    bolt_ = std::move(bolt);
  }
  void AddInput(Channel* channel) { inputs_.push_back(channel); }
  void AddOutRoute(OutRoute route);
  /// Registers one output buffer per channel; returns its index.
  int AddBuffer();
  /// Socket of every instance in the plan (for NUMA charging of
  /// inbound batches); owned by the runtime, outlives the task.
  void SetInstanceSockets(const std::vector<int>* sockets) {
    instance_sockets_ = sockets;
  }
  /// Per-instance ingress rate (the runtime splits the topology rate
  /// across spout replicas).
  void SetSpoutRate(double tuples_per_sec) {
    rate_per_instance_ = tuples_per_sec;
  }

  /// Records which logical replica this task wraps, for failure
  /// diagnostics and fault arming. Called by the runtime at wiring.
  void SetIdentity(int op, int replica, std::string op_name) {
    op_ = op;
    replica_ = replica;
    op_name_ = std::move(op_name);
  }

  /// Arms an injected fault (engine/fault.h) against this replica.
  /// `index` keys the runtime's cross-rebuild fire accounting.
  void ArmFault(int index, const FaultSpec& spec) {
    faults_.push_back({index, spec, false});
  }

  /// Indices (into EngineConfig::faults.specs) of armed faults that
  /// fired during this run. Only read after the execution thread
  /// joined.
  std::vector<int> FiredFaultIndices() const {
    std::vector<int> out;
    for (const auto& f : faults_) {
      if (f.fired) out.push_back(f.index);
    }
    return out;
  }

  int instance_id() const { return instance_id_; }
  int socket() const { return socket_; }
  bool is_spout() const { return spout_ != nullptr; }
  api::Operator* bolt() { return bolt_.get(); }
  api::Spout* spout() { return spout_.get(); }
  int op() const { return op_; }
  int replica() const { return replica_; }
  const std::string& op_name() const { return op_name_; }

  /// True once an operator call threw (contained as a task failure
  /// instead of process death). After the acquire-load returns true,
  /// failure_message() is stable and safe to read from any thread.
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  const std::string& failure_message() const { return failure_message_; }

  /// True once an injected stall latched (the task stays scheduled but
  /// consumes nothing). For tests; the supervisor detects stalls from
  /// progress counters, not this flag.
  bool stall_injected() const {
    return stalled_.load(std::memory_order_relaxed);
  }

  /// Live-migration harvest: moves the operator instance (and its
  /// state) out of this task so a successor task for the same
  /// (operator, replica) in the next plan epoch can adopt it. The
  /// husk is destroyed afterwards.
  std::unique_ptr<api::Spout> TakeSpout() { return std::move(spout_); }
  std::unique_ptr<api::Operator> TakeBolt() { return std::move(bolt_); }

  /// Seeds this task's counters with a predecessor's, so per-replica
  /// stats stay cumulative across migration epochs.
  void SeedStats(const TaskStats& stats) { stats_ = stats; }

  Status Prepare(const api::OperatorContext& ctx);

  /// Arms the task for one run: stop protocol + execution mode.
  /// `cooperative` selects the Poll back-pressure behavior (park and
  /// return kBlocked) over the legacy spin.
  void Bind(const StopSignals* signals, bool cooperative);

  /// Thread-per-task body: processes until stopped, then finalizes.
  void Run(const StopSignals* signals);

  /// One cooperative quantum (see PollResult). Requires a prior
  /// Bind(signals, /*cooperative=*/true).
  PollResult Poll(int budget);

  /// Shutdown epilogue, exactly once per run: consume what is still
  /// queued on the inputs, flush the operator (stateful bolts emit
  /// final results), and force out staged batches. The runtime calls
  /// it after all execution threads joined, in topological operator
  /// order — so upstream finals propagate all the way to the sinks.
  /// Idempotent.
  void Finalize();

  /// Migration-time drain: like Finalize but *without* the operator
  /// Flush (the job keeps running on the next plan epoch — stateful
  /// finals must not fire) and without the once-only latch. Consumes
  /// everything still queued on the inputs, forces staged batches out,
  /// and retries parked envelopes; while it runs, back-pressured
  /// pushes park instead of dropping, so repeated topological passes
  /// converge with zero tuple loss. Single-threaded: only call after
  /// all execution threads joined.
  void DrainResidual();

  const TaskStats& stats() const { return stats_; }

  /// Envelopes currently parked on cooperative back-pressure. Written
  /// only by the owning worker; other threads read it for the drain
  /// monitor (relaxed, like TaskStats).
  size_t pending_live() const { return pending_live_; }

  /// Scheduler scratch: consecutive polls without progress, maintained
  /// by whichever pool worker currently runs this task (ownership
  /// transfers with the task on a steal, so this is single-writer like
  /// the rest of the task). Drives cross-socket repatriation.
  int sched_idle_streak() const { return sched_idle_streak_; }
  void set_sched_idle_streak(int n) { sched_idle_streak_ = n; }

  // OutputCollector (called by the wrapped operator during Process).
  void Emit(Tuple t) override { EmitTo(0, std::move(t)); }
  void EmitTo(uint16_t stream_id, Tuple t) override;

  // PipelineSink (called by the bolt's CompiledPipeline at the end of
  // RunBatch): routes each surviving tuple exactly as a Process-time
  // Emit would, so compiled and interpreted execution share the whole
  // partition-controller path (stats, grouping, batching).
  void ConsumeSelected(JumboTuple* batch, const SelectionVector& sel) override;

 private:
  void RunSpout();
  void RunBolt();
  PollResult PollSpout(int budget);
  PollResult PollBolt(int budget);

  /// Handles one inbound envelope (NUMA charge, deserialize, process)
  /// and recycles the drained batch shell back through `from`.
  void Consume(Envelope env, Channel* from);

  /// Moves `t` into consumer `i`'s jumbo buffer on `route`, flushing
  /// when the batch fills. The single move is the whole routing cost.
  void AppendTuple(OutRoute& route, size_t i, Tuple&& t);

  /// Moves a full (or, with force, partial) buffer into its channel.
  /// Returns false when cooperative back-pressure parked the envelope
  /// (legacy mode spins instead and always returns true).
  bool FlushBuffer(int buffer_idx, Channel* channel, bool force);
  bool FlushAll(bool force);

  /// Delivers one envelope, honoring the bound back-pressure policy:
  /// legacy spins until space (bailing at stop_all); cooperative parks
  /// the envelope in `pending_` and returns false.
  bool PushEnvelope(Envelope&& env, Channel* channel);

  /// Retries parked envelopes in FIFO order; false while any remain.
  bool TryDrainPending();

  /// Legacy per-tuple overhead work (§5.1's eliminated footprint).
  void LegacyPerTupleWork(const Tuple& t);

  /// Throws when an armed crash/throw fault crosses its progress
  /// trigger — always called from inside a containment region.
  void MaybeThrowInjected();

  /// Latches (and returns) the stalled state, firing armed stall
  /// faults that crossed their trigger.
  bool StallInjected();

  /// Confiscates `env` when an armed wedge-push fault fires: the
  /// envelope parks at the head of pending_ and is never retried, so
  /// pending_live() stays nonzero forever (the drain-deadlock
  /// scenario). Returns true when it fired.
  bool MaybeWedgePush(Envelope& env, Channel* channel);

  /// Publishes an operator failure: operator name + replica + cause,
  /// then the failed_ release-store.
  void RecordFailure(const std::string& what);

  int instance_id_;
  int socket_;
  EngineConfig config_;
  const hw::NumaEmulator* numa_;

  std::unique_ptr<api::Spout> spout_;
  std::unique_ptr<api::Operator> bolt_;
  /// Non-null when the bolt exposes a compiled pipeline (KernelBolt);
  /// owned by the bolt. Set at Bind.
  api::CompiledPipeline* pipe_ = nullptr;
  /// Batch dispatch is legal: a pipeline exists, the config asks for
  /// it, and no per-tuple legacy overhead is configured (those costs
  /// are modeled per tuple, so they force the row-wise path).
  bool vec_ok_ = false;

  std::vector<Channel*> inputs_;
  const std::vector<int>* instance_sockets_ = nullptr;
  size_t in_cursor_ = 0;
  std::vector<OutRoute> routes_;
  /// routes_ index of the last route on each stream id (-1 = none):
  /// every earlier matching route copies the emitted tuple, the last
  /// one receives it by move.
  std::vector<int> last_route_for_stream_;
  std::vector<JumboTuple> buffers_;
  uint64_t batch_seq_ = 0;

  const StopSignals* signals_ = nullptr;
  bool cooperative_ = false;
  bool source_done_ = false;
  bool finalized_ = false;
  /// Inside Finalize: the in-flight cap is lifted (pushes bound only
  /// by the ring) since consumers drain in their own Finalize.
  bool finalizing_ = false;
  /// Cooperative per-channel in-flight cap in batches (see
  /// EngineConfig::pool_inflight_batches); ~0 when uncapped/legacy.
  size_t soft_cap_ = ~size_t{0};
  /// Something may be staged in `buffers_` since the last successful
  /// force-flush — idle iterations skip the O(buffers) flush walk when
  /// clear (it matters: a 64-replica bolt owns hundreds of buffers).
  bool staged_dirty_ = false;

  /// Envelopes that could not be pushed under cooperative
  /// back-pressure, retried FIFO at the start of every Poll. While any
  /// are parked the task consumes no new input, so the list is bounded
  /// by one quantum's output fan-out.
  struct PendingPush {
    Envelope env;
    Channel* channel = nullptr;
  };
  std::vector<PendingPush> pending_;
  size_t pending_head_ = 0;
  /// pending_.size() - pending_head_, mirrored for cross-thread reads.
  RelaxedCounter pending_live_;

  // Replica identity + injected-fault state (engine/fault.h).
  int op_ = -1;
  int replica_ = 0;
  std::string op_name_;
  struct ArmedFault {
    int index = -1;  ///< spec index in EngineConfig::faults.specs
    FaultSpec spec;
    bool fired = false;
  };
  std::vector<ArmedFault> faults_;
  /// pending_ index a fired wedge-push parked its envelope at;
  /// TryDrainPending never advances past it.
  size_t wedged_slot_ = ~size_t{0};
  std::atomic<bool> stalled_{false};
  std::atomic<bool> failed_{false};
  std::string failure_message_;

  // Spout rate limiting.
  double tokens_ = 0.0;
  int64_t last_refill_ns_ = 0;
  double rate_per_instance_ = 0.0;

  /// Dead-store sink for the legacy-overhead work: volatile writes keep
  /// the simulated allocations/checksums alive without polluting any
  /// real TaskStats counter.
  volatile uint64_t legacy_sink_ = 0;

  /// See sched_idle_streak().
  int sched_idle_streak_ = 0;

  /// Single-poller invariant enforcement: the work-stealing scheduler
  /// promises every task is polled by at most one worker at a time (a
  /// task lives in exactly one deque or is checked out by one worker).
  /// The guard turns a violation — which would corrupt the task's
  /// single-threaded state silently — into a deterministic crash, which
  /// is what the randomized steal property test (and TSan) key on.
  std::atomic<bool> polling_{false};
  friend class PollGuard;

  TaskStats stats_;
};

/// RAII for the single-poller flag (see Task::polling_).
class PollGuard {
 public:
  explicit PollGuard(Task* t) : t_(t) {
    const bool was_polling =
        t->polling_.exchange(true, std::memory_order_acquire);
    BRISK_CHECK(!was_polling)
        << "task " << t->instance_id() << " (" << t->op_name()
        << " replica " << t->replica()
        << ") polled by two workers at once";
  }
  ~PollGuard() { t_->polling_.store(false, std::memory_order_release); }

  PollGuard(const PollGuard&) = delete;
  PollGuard& operator=(const PollGuard&) = delete;

 private:
  Task* t_;
};

}  // namespace brisk::engine
