// Task: the basic processing unit of BriskStream (Appendix A) — an
// executor wrapping one operator replica plus a partition controller
// that buffers output tuples into per-consumer jumbo tuples.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "api/operator.h"
#include "api/topology.h"
#include "engine/channel.h"
#include "engine/config.h"
#include "hardware/numa_emulator.h"

namespace brisk::engine {

/// One outgoing route of a task: a topology edge materialized against
/// the consumer's replicas.
struct OutRoute {
  uint16_t stream_id = 0;
  api::GroupingType grouping = api::GroupingType::kShuffle;
  size_t key_field = 0;
  /// One entry per consumer replica (kGlobal keeps only replica 0);
  /// parallel to `buffers` indices stored here.
  std::vector<Channel*> channels;
  std::vector<int> buffer_index;  ///< into Task::buffers_
  size_t rr_cursor = 0;
};

/// Counters a task exports. Written only by the owning executor
/// thread; other threads may read them racily for monitoring (the §5.3
/// statistics-collection loop) — individual counters are plain 64-bit
/// stores, so snapshots are approximately consistent.
struct TaskStats {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t batches_in = 0;
  uint64_t batches_out = 0;
  /// Outbound batches whose shell came from the channel's recycle
  /// queue instead of the allocator (BatchPool hit rate).
  uint64_t batches_recycled = 0;
  uint64_t backpressure_spins = 0;
  /// Wall time spent inside operator Process()/NextBatch() calls, ns.
  uint64_t busy_ns = 0;
};

/// The partition controller + executor for one placed instance.
///
/// Single-threaded by construction: Run() is the thread body; all other
/// methods are wiring performed before start.
class Task : public api::OutputCollector {
 public:
  Task(int instance_id, int socket, EngineConfig config,
       const hw::NumaEmulator* numa)
      : instance_id_(instance_id),
        socket_(socket),
        config_(config),
        numa_(numa) {}

  /// Wiring (pre-start).
  void SetSpout(std::unique_ptr<api::Spout> spout) {
    spout_ = std::move(spout);
  }
  void SetBolt(std::unique_ptr<api::Operator> bolt) {
    bolt_ = std::move(bolt);
  }
  void AddInput(Channel* channel) { inputs_.push_back(channel); }
  void AddOutRoute(OutRoute route);
  /// Registers one output buffer per channel; returns its index.
  int AddBuffer();
  /// Socket of every instance in the plan (for NUMA charging of
  /// inbound batches); owned by the runtime, outlives the task.
  void SetInstanceSockets(const std::vector<int>* sockets) {
    instance_sockets_ = sockets;
  }
  /// Per-instance ingress rate (the runtime splits the topology rate
  /// across spout replicas).
  void SetSpoutRate(double tuples_per_sec) {
    rate_per_instance_ = tuples_per_sec;
  }

  int instance_id() const { return instance_id_; }
  int socket() const { return socket_; }
  bool is_spout() const { return spout_ != nullptr; }

  Status Prepare(const api::OperatorContext& ctx);

  /// Thread body: processes until `*stop` becomes true.
  void Run(const std::atomic<bool>* stop);

  const TaskStats& stats() const { return stats_; }

  // OutputCollector (called by the wrapped operator during Process).
  void Emit(Tuple t) override { EmitTo(0, std::move(t)); }
  void EmitTo(uint16_t stream_id, Tuple t) override;

 private:
  void RunSpout(const std::atomic<bool>* stop);
  void RunBolt(const std::atomic<bool>* stop);

  /// Handles one inbound envelope (NUMA charge, deserialize, process)
  /// and recycles the drained batch shell back through `from`.
  void Consume(Envelope env, Channel* from);

  /// Moves `t` into consumer `i`'s jumbo buffer on `route`, flushing
  /// when the batch fills. The single move is the whole routing cost.
  void AppendTuple(OutRoute& route, size_t i, Tuple&& t);

  /// Moves a full (or, with force, partial) buffer into its channel,
  /// spinning on back-pressure. Reuses a recycled batch shell from the
  /// channel's return queue when one is available.
  void FlushBuffer(int buffer_idx, Channel* channel, bool force);
  void FlushAll(bool force);

  /// Legacy per-tuple overhead work (§5.1's eliminated footprint).
  void LegacyPerTupleWork(const Tuple& t);

  int instance_id_;
  int socket_;
  EngineConfig config_;
  const hw::NumaEmulator* numa_;

  std::unique_ptr<api::Spout> spout_;
  std::unique_ptr<api::Operator> bolt_;

  std::vector<Channel*> inputs_;
  const std::vector<int>* instance_sockets_ = nullptr;
  size_t in_cursor_ = 0;
  std::vector<OutRoute> routes_;
  /// routes_ index of the last route on each stream id (-1 = none):
  /// every earlier matching route copies the emitted tuple, the last
  /// one receives it by move.
  std::vector<int> last_route_for_stream_;
  std::vector<JumboTuple> buffers_;
  uint64_t batch_seq_ = 0;

  const std::atomic<bool>* stop_ = nullptr;

  // Spout rate limiting.
  double tokens_ = 0.0;
  int64_t last_refill_ns_ = 0;
  double rate_per_instance_ = 0.0;

  TaskStats stats_;
};

}  // namespace brisk::engine
