// JobCheckpoint: a consistent snapshot of a running job, and the
// binary codec that makes it durable.
//
// A checkpoint is taken at a quiesce point (the PR-5 pause-and-migrate
// machinery: spouts stopped at a batch boundary, every in-flight
// envelope drained to its consumer), so the captured keyed state and
// source positions are mutually consistent: every tuple the sources
// count as produced has fully taken effect in the operator state, and
// no tuple is half-applied. Recovery rebuilds the task graph to the
// checkpoint's plan, restores the state, rewinds replayable sources to
// the captured positions, and resumes — tuples produced after the
// checkpoint replay (at-least-once delivery), bounding the duplicate
// window by the checkpoint interval.
#pragma once

#include <cstdint>
#include <vector>

#include "api/operator.h"
#include "common/status.h"
#include "model/execution_plan.h"

namespace brisk::engine {

/// Replay position of one source replica. The position carries its
/// coordinate system (api::SourcePosition::Kind): tuple counts for
/// synthetic/socket sources, byte offsets for file-backed sources —
/// restore hands each source back a position it knows how to seek to.
struct SourcePosition {
  int op = -1;
  int replica = 0;
  api::SourcePosition position;
  /// False when the source does not implement Position/Rewind —
  /// recovery then resumes it wherever it is (gap-loss on that
  /// stream) instead of rewinding.
  bool replayable = false;
};

/// Keyed state captured from one operator replica.
struct ReplicaStateSnapshot {
  int op = -1;
  int replica = 0;
  std::vector<api::CheckpointEntry> entries;
};

/// One consistent job snapshot. The plan is carried in-memory next to
/// the serialized payload (plans are engine-internal objects, not wire
/// data); SerializeCheckpoint round-trips everything else.
struct JobCheckpoint {
  /// Plan epoch at capture time (BriskRuntime::epoch()).
  int epoch = 0;
  /// How long the capturing pause stopped the job, seconds.
  double pause_seconds = 0.0;
  /// The plan executing when the snapshot was taken; recovery rebuilds
  /// to exactly this plan (migrations applied after the checkpoint are
  /// lost with the crash — the autopilot re-derives them).
  model::ExecutionPlan plan;
  std::vector<ReplicaStateSnapshot> state;
  std::vector<SourcePosition> positions;

  size_t TotalEntries() const {
    size_t n = 0;
    for (const auto& s : state) n += s.entries.size();
    return n;
  }
};

/// Encodes epoch + keyed state + source positions into a
/// self-delimiting binary buffer (common/serde tuple codec underneath).
/// Writes the current (v2, "BCP2") format: position entries carry a
/// SourcePosition kind so byte-offset file sources round-trip.
void SerializeCheckpoint(const JobCheckpoint& cp, std::vector<uint8_t>* out);

/// Decodes a buffer produced by SerializeCheckpoint. The plan is not
/// part of the wire format; the caller re-attaches the plan it stored
/// with the bytes. Accepts both the current "BCP2" format and PR-7's
/// "BCP1" (kind-less positions decode as tuple counts — the only kind
/// v1 sources had).
StatusOr<JobCheckpoint> DeserializeCheckpoint(
    const std::vector<uint8_t>& buf, const model::ExecutionPlan& plan);

}  // namespace brisk::engine
