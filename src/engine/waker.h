// Per-worker parking monitor for the worker-pool executor's
// spin→yield→park wait strategy.
//
// A Waker is the rendezvous between an idle worker about to park and
// the producers that can hand it new work: workers park in WaitFor(),
// and Channel wakes the consumer's worker on a push into an empty
// queue (and the producer's worker on a pop from a full one, releasing
// back-pressure). The notified flag is latched under the mutex, so a
// Notify that races with the worker's "scan found nothing → park"
// window is never lost: the parker re-checks the flag before sleeping.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace brisk::engine {

class Waker {
 public:
  /// Wakes the owning worker (or pre-arms the latch if it is not
  /// parked yet). Safe from any thread; called on queue empty→nonempty
  /// and full→nonfull transitions only, so the mutex is off the
  /// saturated hot path.
  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      notified_ = true;
    }
    cv_.notify_one();
    notify_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Parks until notified or `timeout` elapses; returns true when a
  /// notification (including one latched before the call) woke us. The
  /// timeout bounds the damage of any wake the hints cannot see (e.g.
  /// a rate-limited spout's token refill).
  bool WaitFor(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool woken =
        cv_.wait_for(lock, timeout, [this] { return notified_; });
    notified_ = false;
    return woken;
  }

  /// Total Notify() calls, for telemetry/tests (racy read is fine).
  uint64_t notify_count() const {
    return notify_count_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool notified_ = false;
  std::atomic<uint64_t> notify_count_{0};
};

/// Movable wake target: one level of indirection between a channel and
/// the Waker of whichever worker currently runs the endpoint task.
///
/// Channels hold a WakerRef* fixed per task instance for the lifetime
/// of an executor; when a thief steals the task, it repoints the ref to
/// its own Waker with a single atomic store, and every later wake hint
/// lands on the new owner. A hint that races with the repoint can still
/// reach the previous owner — that is a spurious wake (bounded by the
/// park timeout), never a lost one, because the stealing worker polls
/// the task it just took regardless of notifications.
class WakerRef {
 public:
  WakerRef() = default;
  explicit WakerRef(Waker* target) : target_(target) {}

  void Point(Waker* target) {
    target_.store(target, std::memory_order_release);
  }

  /// Forwards to the current target; no-op while unpointed (tasks that
  /// live outside the worker pool, e.g. under thread-per-task).
  void Notify() {
    if (Waker* w = target_.load(std::memory_order_acquire)) w->Notify();
  }

  Waker* target() const {
    return target_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<Waker*> target_{nullptr};
};

}  // namespace brisk::engine
