// Executors: how a placed plan's tasks get CPU time.
//
// ThreadPerTaskExecutor is the legacy model — one dedicated OS thread
// per instance. WorkerPoolExecutor is the native model: one worker
// group per plan socket (sized from the machine's cores-per-socket,
// capped by the host), each worker owning a bounded run-queue deque of
// Task::Poll quanta with morsel-style work stealing between workers
// (intra-socket first, cross-socket as a last resort), a
// spin→yield→park wait strategy, and Waker hints from the channels —
// so RLAS placement is honored at execution time as an affinity, and
// replication ≫ cores no longer collapses into OS scheduler thrash or
// onto the slowest socket group under skew.
#pragma once

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/channel.h"
#include "engine/config.h"
#include "engine/task.h"
#include "engine/waker.h"
#include "hardware/machine_spec.h"

namespace brisk::hw {
class ArenaSet;
}  // namespace brisk::hw

namespace brisk::engine {

/// Aggregate executor-side counters for one run.
struct ExecutorStats {
  int threads = 0;        ///< OS threads the executor spawned
  int worker_groups = 0;  ///< socket groups (0 for thread-per-task)
  uint64_t parks = 0;     ///< times an idle worker parked on its Waker
  uint64_t wakes = 0;     ///< parks ended by a Notify (vs timeout)
  uint64_t steals_intra = 0;  ///< tasks taken from same-socket siblings
  uint64_t steals_cross = 0;  ///< tasks taken across socket groups
  uint64_t steal_failures = 0;  ///< idle steal rounds with no victim
  uint64_t repatriations = 0;  ///< idle migrants sent back home

  /// Per-worker run-queue depth at the time of the stats() call (the
  /// supervisor's view of scheduler load; empty for thread-per-task).
  /// A snapshot, not a counter: AccumulateCounters keeps the live
  /// epoch's shape.
  std::vector<size_t> queue_depths;

  /// Folds a finished epoch's counters into a running total. A live
  /// migration tears the executor down and stands up a new one per
  /// plan epoch; the run-level report keeps the latest epoch's shape
  /// (threads, worker groups, queue depths) but cumulative park/wake/
  /// steal counts — dropping steal counters here would zero the
  /// scheduler's history on every migration.
  void AccumulateCounters(const ExecutorStats& o) {
    parks += o.parks;
    wakes += o.wakes;
    steals_intra += o.steals_intra;
    steals_cross += o.steals_cross;
    steal_failures += o.steal_failures;
    repatriations += o.repatriations;
  }
};

/// CPU for a thread serving `slot` (0-based) on plan socket `socket`:
/// socket-major layout (socket × cores_per_socket + slot), wrapped to
/// the host's real cores. `cores_per_socket <= 0` (no machine spec)
/// degrades to treating the host as one socket.
int PinCpuForSocketSlot(int socket, int slot, int cores_per_socket,
                        int host_cores);

/// Worker-group size per socket: the config override, else the
/// machine's cores-per-socket capped by the host's real core count
/// split across the plan's sockets — an emulated many-socket plan on a
/// small host never spawns more workers than cores.
int WorkersPerSocketFor(const EngineConfig& config,
                        const hw::MachineSpec* machine, int sockets_used);

class Executor {
 public:
  virtual ~Executor() = default;

  /// Spawns execution threads. Tasks must already be Bind()-ed.
  virtual Status Start() = 0;

  /// Wakes every parked worker so a freshly flipped stop signal is
  /// observed promptly. No-op for thread-per-task.
  virtual void NotifyAll() {}

  /// Joins all threads; requires StopSignals::stop_all set.
  virtual void Join() = 0;

  virtual ExecutorStats stats() const = 0;

  /// One monotonically increasing counter per worker thread, bumped on
  /// every scheduling pass — the supervisor's liveness signal: a
  /// counter that stops advancing while the worker's tasks hold
  /// backlog means the worker (not the workload) is stuck. Executors
  /// without a central loop (thread-per-task) return empty; liveness
  /// then falls back to per-task progress counters.
  virtual std::vector<uint64_t> Heartbeats() const { return {}; }

  /// Per-worker run-queue depths, racy snapshot (pool mode only).
  /// Paired with Heartbeats(): a frozen heartbeat while the same
  /// worker's depth stays > 0 is a stuck worker, not an idle one.
  virtual std::vector<size_t> QueueDepths() const { return {}; }
};

/// Builds the executor selected by `config.executor`. `machine` (the
/// deployed MachineSpec, nullable) supplies cores-per-socket for
/// pinning and worker sizing; `channels` get Waker hints wired in pool
/// mode; `arenas` (nullable) supplies per-socket NumaArenas that pool
/// workers install thread-locally for batch-shell allocation, plus the
/// detected host topology for node-aware pinning. All pointers must
/// outlive the executor.
std::unique_ptr<Executor> MakeExecutor(const EngineConfig& config,
                                       StopSignals* signals,
                                       std::vector<Task*> tasks,
                                       std::vector<Channel*> channels,
                                       const hw::MachineSpec* machine,
                                       hw::ArenaSet* arenas = nullptr);

}  // namespace brisk::engine
