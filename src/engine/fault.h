// Deterministic fault injection — first-class failure scenarios for
// the fault-tolerance layer's tests and benches.
//
// A FaultPlan lives in EngineConfig and travels with the job, so the
// exact same failure fires at the exact same tuple on every run of a
// seeded job (Job::WithSeed): crash/stall points are expressed in the
// operator's own progress counters, not wall-clock time. Faults are
// armed per (operator, replica) when the task graph is wired and fire
// at most once each — a restarted replica does not re-crash unless the
// plan says so (trigger_limit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace brisk::engine {

/// One injected failure.
struct FaultSpec {
  enum class Kind : uint8_t {
    /// Replica throws from inside its operator call after processing
    /// `after_tuples` input tuples (spouts: after producing that many).
    /// Modeled as an unrecoverable replica death — the task enters the
    /// failed state and stops consuming.
    kCrash,
    /// Same injection point as kCrash but labeled as an application
    /// exception escaping Process — exercises the containment path's
    /// error capture rather than the death itself.
    kThrow,
    /// Replica silently stops making progress after `after_tuples`
    /// input tuples: it stays scheduled and joinable but consumes
    /// nothing, so backlog accumulates behind it. Detected only by the
    /// supervisor's progress probes.
    kStall,
    /// Replica parks one outbound envelope permanently at the injection
    /// point. pending_live never reaches zero again, so a graceful
    /// drain can never converge — the drain-deadlock scenario.
    kWedgePush,
    /// Fail the next ApplyMigration at phase `at_phase`:
    ///   0 = before quiesce (validation) — clean reject, job untouched;
    ///   1 = after quiesce, before rebuild — engine must roll back to
    ///       the old plan and resume with zero tuple loss;
    ///   2 = after the new graph is wired — too late to roll back; the
    ///       engine declares the job dead (the supervisor's recovery
    ///       path takes over from the last checkpoint).
    kFailMigration,
  };

  Kind kind = Kind::kCrash;
  /// Target logical operator id and replica index (ignored by
  /// kFailMigration, which targets the migration machinery itself).
  int op = -1;
  int replica = 0;
  /// Progress trigger: fire once the replica's processed-tuple count
  /// reaches this value.
  uint64_t after_tuples = 0;
  /// kFailMigration phase selector (see kind docs).
  int at_phase = 0;
  /// How many times this spec may fire across the job's lifetime
  /// (re-arming survives recovery rebuilds). Default: once.
  int trigger_limit = 1;
};

inline const char* FaultKindName(FaultSpec::Kind k) {
  switch (k) {
    case FaultSpec::Kind::kCrash:
      return "crash";
    case FaultSpec::Kind::kThrow:
      return "throw";
    case FaultSpec::Kind::kStall:
      return "stall";
    case FaultSpec::Kind::kWedgePush:
      return "wedge-push";
    case FaultSpec::Kind::kFailMigration:
      return "fail-migration";
  }
  return "unknown";
}

/// The job's failure scenario: an ordered list of FaultSpecs plus
/// fire-count bookkeeping. The plan object is shared by value through
/// EngineConfig; the engine tracks remaining triggers in its own armed
/// copies, so one FaultPlan literal describes one reproducible run.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }

  FaultPlan& Crash(int op, int replica, uint64_t after_tuples) {
    specs.push_back({FaultSpec::Kind::kCrash, op, replica, after_tuples, 0, 1});
    return *this;
  }
  FaultPlan& Throw(int op, int replica, uint64_t after_tuples) {
    specs.push_back({FaultSpec::Kind::kThrow, op, replica, after_tuples, 0, 1});
    return *this;
  }
  FaultPlan& Stall(int op, int replica, uint64_t after_tuples) {
    specs.push_back({FaultSpec::Kind::kStall, op, replica, after_tuples, 0, 1});
    return *this;
  }
  FaultPlan& WedgePush(int op, int replica, uint64_t after_tuples) {
    specs.push_back(
        {FaultSpec::Kind::kWedgePush, op, replica, after_tuples, 0, 1});
    return *this;
  }
  FaultPlan& FailMigration(int at_phase) {
    specs.push_back({FaultSpec::Kind::kFailMigration, -1, 0, 0, at_phase, 1});
    return *this;
  }
};

}  // namespace brisk::engine
