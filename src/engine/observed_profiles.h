// Runtime statistics → operator profiles (§3.1/§5.3 closing the loop):
// "In practice, they can be periodically collected during runtime and
// the optimization needs to be re-performed accordingly."
//
// Derives a ProfileSet from an engine run's TaskStats so the
// DynamicReoptimizer (optimizer/dynamic.h) can compare the live
// workload against what the current plan was optimized for.
#pragma once

#include "api/topology.h"
#include "common/status.h"
#include "engine/runtime.h"
#include "model/execution_plan.h"
#include "model/operator_profile.h"

namespace brisk::engine {

struct ObservationConfig {
  /// Clock used to express observed T_e in cycles (profiles are stored
  /// in cycles so they transfer across machines, §3.1). Defaults to a
  /// 1 GHz reference: observed ns == cycles.
  double reference_ghz = 1.0;
};

/// Aggregates per-task statistics into per-operator observed profiles:
///   T_e          = Σ busy_ns / Σ tuples_in (converted to cycles),
///   selectivity  = Σ tuples_out_on_stream / Σ tuples_in, approximated
///                  from total out (stream split requires the planned
///                  profile's stream mix, which is carried over),
///   N, M         = carried over from `planned` (tuple layouts do not
///                  drift with rate).
/// Operators whose tasks processed no tuples keep their planned entry.
StatusOr<model::ProfileSet> ObserveProfiles(
    const api::Topology& topo, const model::ExecutionPlan& plan,
    const RunStats& stats, const model::ProfileSet& planned,
    const ObservationConfig& config = {});

/// Exponentially smooths a stream of windowed observations:
///   into = alpha * sample + (1 - alpha) * into
/// for T_e and each selectivity entry of every operator present in
/// both sets (operators only in `sample` are copied as-is). The §5.3
/// controller feeds per-interval ObserveProfiles results through this
/// so scheduling jitter in short windows does not read as workload
/// drift. alpha in (0, 1]; 1 replaces `into` with the raw sample.
void BlendProfiles(model::ProfileSet* into, const model::ProfileSet& sample,
                   double alpha);

}  // namespace brisk::engine
