// Inter-task channel: a bounded SPSC queue of envelopes, one per
// directed (producer instance → consumer instance) edge, paired with a
// reverse SPSC queue that recycles drained JumboTuple batches back to
// the producer (the BatchPool protocol).
//
// Ownership protocol: the producer task allocates (or reuses) a batch,
// fills it, and pushes it downstream; the consumer drains it, calls
// Reset(), and hands the empty shell back through Recycle(). The
// producer prefers recycled shells in TryPopRecycled() over the
// allocator, so steady state allocates nothing — and, just as
// important on a NUMA machine, batches are freed by the socket that
// allocated them instead of cross-socket.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/spsc_queue.h"
#include "common/tuple.h"

namespace brisk::engine {

/// What actually travels through a queue: a jumbo-tuple batch
/// (BriskStream's pass-by-reference path, Appendix A). Legacy modes
/// carry their serialized payload inside the batch (JumboTuple::bytes),
/// so the envelope itself is just a pointer plus two scalars and moves
/// trivially through the ring buffer.
struct Envelope {
  JumboTuplePtr batch;
  uint32_t count = 0;
  int32_t from_instance = -1;
};

class Channel {
 public:
  Channel(int from_instance, int to_instance, size_t capacity)
      : from_instance_(from_instance),
        to_instance_(to_instance),
        queue_(capacity),
        recycled_(capacity + 1) {}

  int from_instance() const { return from_instance_; }
  int to_instance() const { return to_instance_; }

  /// Only moves from `e` on success (safe to retry in a spin loop).
  bool TryPush(Envelope&& e) { return queue_.TryPush(std::move(e)); }
  bool TryPop(Envelope* e) { return queue_.TryPop(e); }
  size_t SizeApprox() const { return queue_.SizeApprox(); }

  // BatchPool return path. The roles flip: the channel's consumer task
  // produces into the recycle queue, its producer task consumes — so
  // both queues stay single-producer/single-consumer.

  /// Consumer side: hands a drained batch shell back to the producer.
  /// Capacity (envelope capacity + 1) covers every batch that can be
  /// in flight, so this cannot fail in the engine's protocol; if a
  /// caller overfills anyway the batch is simply freed.
  void Recycle(JumboTuplePtr&& batch) {
    // If the pool is unexpectedly full, TryPush leaves `batch` owning
    // and it is freed when the parameter goes out of scope.
    (void)recycled_.TryPush(std::move(batch));
  }

  /// Producer side: fetches an empty recycled batch, if any.
  bool TryPopRecycled(JumboTuplePtr* batch) {
    return recycled_.TryPop(batch);
  }

 private:
  int from_instance_;
  int to_instance_;
  SpscQueue<Envelope> queue_;
  SpscQueue<JumboTuplePtr> recycled_;
};

}  // namespace brisk::engine
