// Inter-task channel: a bounded SPSC queue of envelopes, one per
// directed (producer instance → consumer instance) edge.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/spsc_queue.h"
#include "common/tuple.h"

namespace brisk::engine {

/// What actually travels through a queue: either a referenced jumbo
/// tuple (BriskStream's pass-by-reference path, Appendix A) or a
/// serialized byte buffer (legacy modes).
struct Envelope {
  JumboTuplePtr batch;
  std::unique_ptr<std::vector<uint8_t>> bytes;  ///< legacy payload
  uint32_t count = 0;
  int32_t from_instance = -1;
};

class Channel {
 public:
  Channel(int from_instance, int to_instance, size_t capacity)
      : from_instance_(from_instance),
        to_instance_(to_instance),
        queue_(capacity) {}

  int from_instance() const { return from_instance_; }
  int to_instance() const { return to_instance_; }

  /// Only moves from `e` on success (safe to retry in a spin loop).
  bool TryPush(Envelope&& e) { return queue_.TryPush(std::move(e)); }
  bool TryPop(Envelope* e) { return queue_.TryPop(e); }
  size_t SizeApprox() const { return queue_.SizeApprox(); }

 private:
  int from_instance_;
  int to_instance_;
  SpscQueue<Envelope> queue_;
};

}  // namespace brisk::engine
