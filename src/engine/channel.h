// Inter-task channel: a bounded SPSC queue of envelopes, one per
// directed (producer instance → consumer instance) edge, paired with a
// reverse SPSC queue that recycles drained JumboTuple batches back to
// the producer (the BatchPool protocol).
//
// Ownership protocol: the producer task allocates (or reuses) a batch,
// fills it, and pushes it downstream; the consumer drains it, calls
// Reset(), and hands the empty shell back through Recycle(). The
// producer prefers recycled shells in TryPopRecycled() over the
// allocator, so steady state allocates nothing — and, just as
// important on a NUMA machine, batches are freed by the socket that
// allocated them instead of cross-socket.
#pragma once

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

#include "common/spsc_queue.h"
#include "common/tuple.h"
#include "engine/waker.h"

namespace brisk::engine {

/// What actually travels through a queue: a jumbo-tuple batch
/// (BriskStream's pass-by-reference path, Appendix A). Legacy modes
/// carry their serialized payload inside the batch (JumboTuple::bytes),
/// so the envelope itself is just a pointer plus two scalars and moves
/// trivially through the ring buffer.
struct Envelope {
  JumboTuplePtr batch;
  uint32_t count = 0;
  int32_t from_instance = -1;
};

class Channel {
 public:
  /// `reuse_shells` enables the ring-is-the-pool protocol for modes
  /// that run without the recycle queue (recycle_batches off): the
  /// consumer deposits the previously drained shell into the slot it
  /// vacates (TryPopSwap) and the producer's push swaps it back out
  /// (TryPushSwap), so after the first ring lap neither side touches
  /// the allocator.
  /// `ring_memory` backs both ring buffers' slot storage; the runtime
  /// passes the *consumer* socket's NumaArena so a batch pointer is
  /// read from memory local to the socket that pops it. The resource
  /// must outlive the channel (arena lifetime rule: arenas are owned by
  /// the runtime and destroyed after every channel and task).
  Channel(int from_instance, int to_instance, size_t capacity,
          bool reuse_shells = false,
          std::pmr::memory_resource* ring_memory =
              std::pmr::get_default_resource())
      : from_instance_(from_instance),
        to_instance_(to_instance),
        reuse_shells_(reuse_shells),
        queue_(capacity, ring_memory),
        recycled_(capacity + 1, ring_memory) {
    producer_full_threshold_ = queue_.capacity();
  }

  int from_instance() const { return from_instance_; }
  int to_instance() const { return to_instance_; }

  /// Only moves from `e` on success (safe to retry in a spin loop).
  /// Pushing into an empty queue wakes the consumer's worker (pool
  /// mode); under saturation the queue is never empty, so the hint is
  /// off the hot path.
  bool TryPush(Envelope&& e) {
    if (reuse_shells_) {
      const bool was_empty =
          consumer_waker_ != nullptr && queue_.EmptyApprox();
      if (!queue_.TryPushSwap(e)) return false;
      // The swap recovered the consumer's deposited shell (null on the
      // first ring lap); stash it for the next FlushBuffer.
      if (e.batch != nullptr) producer_spare_ = std::move(e.batch);
      e = Envelope{};
      if (was_empty) consumer_waker_->Notify();
      return true;
    }
    if (consumer_waker_ == nullptr) return queue_.TryPush(std::move(e));
    const bool was_empty = queue_.EmptyApprox();
    if (!queue_.TryPush(std::move(e))) return false;
    if (was_empty) consumer_waker_->Notify();
    return true;
  }

  /// Popping from a full queue wakes the producer's worker: it may be
  /// parked with a batch waiting on back-pressure (PollResult::kBlocked)
  /// and the pop just made room. "Full" is the producer's view — the
  /// cooperative in-flight cap when one is set, else the ring capacity.
  bool TryPop(Envelope* e) {
    if (reuse_shells_) {
      const bool was_full =
          producer_waker_ != nullptr &&
          queue_.SizeApprox() >= producer_full_threshold_;
      // Deposit the shell returned after the *previous* pop into the
      // slot this pop vacates (a null batch on early laps is fine: the
      // producer's swap then falls back to the allocator once).
      Envelope deposit;
      deposit.batch = std::move(spare_);
      if (!queue_.TryPopSwap(e, deposit)) {
        spare_ = std::move(deposit.batch);
        return false;
      }
      if (was_full) producer_waker_->Notify();
      return true;
    }
    if (producer_waker_ == nullptr) return queue_.TryPop(e);
    const bool was_full = queue_.SizeApprox() >= producer_full_threshold_;
    if (!queue_.TryPop(e)) return false;
    if (was_full) producer_waker_->Notify();
    return true;
  }

  size_t SizeApprox() const { return queue_.SizeApprox(); }
  /// Racy emptiness probe for the quiesce monitors (graceful drain and
  /// the migration pause protocol).
  bool EmptyApprox() const { return queue_.EmptyApprox(); }

  /// Worker-pool wiring (pre-start; cleared when the pool shuts down).
  /// The refs are per task *instance*, not per worker: the executor
  /// repoints them when a steal migrates the endpoint task, so wake
  /// hints keep finding whichever worker currently runs it.
  /// Thread-per-task mode leaves both null and pays one branch.
  void SetWakers(WakerRef* consumer, WakerRef* producer) {
    consumer_waker_ = consumer;
    producer_waker_ = producer;
  }

  /// Occupancy at which the producer considers this channel full (the
  /// EngineConfig::pool_inflight_batches cap); pops crossing below it
  /// wake the producer.
  void SetProducerFullThreshold(size_t batches) {
    producer_full_threshold_ = batches;
  }

  // BatchPool return path. The roles flip: the channel's consumer task
  // produces into the recycle queue, its producer task consumes — so
  // both queues stay single-producer/single-consumer.

  /// Consumer side: hands a drained batch shell back to the producer.
  /// Capacity (envelope capacity + 1) covers every batch that can be
  /// in flight, so this cannot fail in the engine's protocol; if a
  /// caller overfills anyway the batch is simply freed.
  void Recycle(JumboTuplePtr&& batch) {
    // If the pool is unexpectedly full, TryPush leaves `batch` owning
    // and it is freed when the parameter goes out of scope.
    (void)recycled_.TryPush(std::move(batch));
  }

  /// Producer side: fetches an empty recycled batch, if any.
  bool TryPopRecycled(JumboTuplePtr* batch) {
    return recycled_.TryPop(batch);
  }

  // Ring-is-the-pool return path (reuse_shells mode). Both sides are
  // strictly thread-local: spare_ is touched only by the consumer
  // task's thread, producer_spare_ only by the producer's — the
  // hand-off itself rides the ring slots' existing release/acquire.

  bool reuse_shells() const { return reuse_shells_; }

  /// Consumer side: stages a drained shell; the next TryPop deposits
  /// it into the slot it vacates.
  void ReturnShell(JumboTuplePtr&& batch) { spare_ = std::move(batch); }

  /// Producer side: takes the shell the last TryPush swapped out of
  /// the ring (null until the ring's first lap completes).
  JumboTuplePtr TakeProducerShell() { return std::move(producer_spare_); }

 private:
  int from_instance_;
  int to_instance_;
  bool reuse_shells_ = false;
  SpscQueue<Envelope> queue_;
  SpscQueue<JumboTuplePtr> recycled_;
  WakerRef* consumer_waker_ = nullptr;
  WakerRef* producer_waker_ = nullptr;
  size_t producer_full_threshold_ = 0;  // set to ring capacity in ctor
  JumboTuplePtr spare_;           // consumer-thread only
  JumboTuplePtr producer_spare_;  // producer-thread only
};

}  // namespace brisk::engine
