// Engine execution modes (§5, §6.5).
//
// BriskStream's own runtime passes tuple references through SPSC queues
// in jumbo-tuple batches. The legacy toggles re-introduce, as *real
// work*, the overheads distributed DSPSs pay per tuple — serialization,
// duplicated per-tuple headers and temporary objects, extra condition
// checking — which is how the Fig. 6/8/16 comparisons are reproduced on
// one machine.
#pragma once

#include <algorithm>
#include <cstddef>

namespace brisk::engine {

/// Spout token-bucket burst capacity, shared by the real engine
/// (Task::RunSpout) and the simulator so the model never drifts from
/// the runtime it predicts: enough headroom to recover the budget
/// accrued across a scheduler stall (tens of ms on a loaded host),
/// never less than a few batches.
inline constexpr double kSpoutBurstBatches = 4.0;
inline constexpr double kSpoutBurstHeadroomSec = 0.1;

inline double SpoutBurstCap(int batch_size, double rate_tps) {
  return std::max(kSpoutBurstBatches * batch_size,
                  kSpoutBurstHeadroomSec * rate_tps);
}

struct EngineConfig {
  /// Tuples per jumbo tuple (§5.2); 1 disables batching.
  int batch_size = 64;

  /// Per-edge queue capacity in batches; full queues exert
  /// back-pressure on the producer.
  size_t queue_capacity = 128;

  /// Serialize every batch at the producer and deserialize at the
  /// consumer (what a cross-process runtime must do).
  bool serialize_tuples = false;

  /// Allocate + fill a per-tuple header object (duplicate metadata a
  /// jumbo tuple would share; §5.2).
  bool duplicate_headers = false;

  /// Run the per-tuple guard/bookkeeping work whose instruction
  /// footprint §5.1 eliminates (exception scaffolding, config checks).
  bool extra_condition_checks = false;

  /// Recycle drained JumboTuple batches back to the producer through
  /// the channel's return queue (BatchPool) instead of freeing them on
  /// the consumer's socket. On by default — off only for measuring the
  /// allocate-per-flush cost it removes.
  bool recycle_batches = true;

  /// Charge Formula-2 remote-fetch stalls (busy-wait) for batches that
  /// cross virtual sockets in the plan (hardware substitution — see
  /// DESIGN.md §1).
  bool numa_emulation = false;

  /// Pin each task thread to a physical core (instance id modulo the
  /// host's core count). Meaningful only when the host has enough
  /// cores; defaults off for CI-sized machines.
  bool pin_threads = false;

  /// External ingress rate per topology (tuples/sec), 0 = saturated.
  double spout_rate_tps = 0.0;

  /// BriskStream's native configuration.
  static EngineConfig Brisk() { return EngineConfig{}; }

  /// Brisk minus jumbo tuples (Fig. 16's middle step).
  static EngineConfig BriskNoJumbo() {
    EngineConfig c;
    c.batch_size = 1;
    c.queue_capacity = 4096;
    return c;
  }

  /// Storm-like: per-tuple serialization, duplicated headers, extra
  /// condition checks, no jumbo batching.
  static EngineConfig StormLike() {
    EngineConfig c;
    c.batch_size = 4;  // Storm's small executor transfer batches
    c.queue_capacity = 1024;
    c.serialize_tuples = true;
    c.duplicate_headers = true;
    c.extra_condition_checks = true;
    c.recycle_batches = false;  // legacy runtimes allocate per transfer
    return c;
  }

  /// Flink-like: network-stack serialization with larger buffers but
  /// still per-tuple headers.
  static EngineConfig FlinkLike() {
    EngineConfig c;
    c.batch_size = 16;
    c.queue_capacity = 512;
    c.serialize_tuples = true;
    c.duplicate_headers = true;
    c.recycle_batches = false;  // legacy runtimes allocate per transfer
    return c;
  }
};

}  // namespace brisk::engine
