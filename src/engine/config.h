// Engine execution modes (§5, §6.5).
//
// BriskStream's own runtime passes tuple references through SPSC queues
// in jumbo-tuple batches. The legacy toggles re-introduce, as *real
// work*, the overheads distributed DSPSs pay per tuple — serialization,
// duplicated per-tuple headers and temporary objects, extra condition
// checking — which is how the Fig. 6/8/16 comparisons are reproduced on
// one machine.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "engine/fault.h"

namespace brisk::engine {

/// Spout token-bucket burst capacity, shared by the real engine
/// (Task::RunSpout) and the simulator so the model never drifts from
/// the runtime it predicts: enough headroom to recover the budget
/// accrued across a scheduler stall (tens of ms on a loaded host),
/// never less than a few batches.
inline constexpr double kSpoutBurstBatches = 4.0;
inline constexpr double kSpoutBurstHeadroomSec = 0.1;

inline double SpoutBurstCap(int batch_size, double rate_tps) {
  return std::max(kSpoutBurstBatches * batch_size,
                  kSpoutBurstHeadroomSec * rate_tps);
}

/// How placed instances are executed:
///   kWorkerPool    — one worker group per plan socket (sized from the
///                    machine's cores-per-socket, capped by the host),
///                    cooperatively round-robining Task::Poll quanta so
///                    replication ≫ cores never oversubscribes the OS
///                    scheduler. This is the native mode.
///   kThreadPerTask — the legacy model: one dedicated OS thread per
///                    instance, spinning on back-pressure. Kept for A/B
///                    benching (bench_executor) and as the behavioral
///                    reference.
enum class ExecutorKind { kThreadPerTask, kWorkerPool };

inline const char* ExecutorKindName(ExecutorKind kind) {
  return kind == ExecutorKind::kWorkerPool ? "worker-pool"
                                           : "thread-per-task";
}

struct EngineConfig {
  /// Tuples per jumbo tuple (§5.2); 1 disables batching.
  int batch_size = 64;

  /// Per-edge queue capacity in batches; full queues exert
  /// back-pressure on the producer.
  size_t queue_capacity = 128;

  /// Serialize every batch at the producer and deserialize at the
  /// consumer (what a cross-process runtime must do).
  bool serialize_tuples = false;

  /// Allocate + fill a per-tuple header object (duplicate metadata a
  /// jumbo tuple would share; §5.2).
  bool duplicate_headers = false;

  /// Run the per-tuple guard/bookkeeping work whose instruction
  /// footprint §5.1 eliminates (exception scaffolding, config checks).
  bool extra_condition_checks = false;

  /// Recycle drained JumboTuple batches back to the producer through
  /// the channel's return queue (BatchPool) instead of freeing them on
  /// the consumer's socket. On by default — off only for measuring the
  /// allocate-per-flush cost it removes.
  bool recycle_batches = true;

  /// Dispatch whole batches through an operator's compiled pipeline
  /// (api::KernelBolt chains) instead of per-tuple Process calls.
  /// Only effective in the pass-by-reference mode (serialization and
  /// the per-tuple legacy overheads force the row-wise path, since
  /// those costs are precisely what they model). Off reproduces the
  /// interpreted engine bit-for-bit — the differential matrix runs
  /// both.
  bool compile_pipelines = true;

  /// When batch recycling is off, recover drained batch shells through
  /// the SPSC ring itself (consumer deposits the previous shell into
  /// the slot it vacates; the producer's push swaps it back out), so
  /// even the unpooled mode allocates nothing in steady state. Legacy
  /// modes keep this off — allocating per transfer is the overhead
  /// they model.
  bool reuse_ring_shells = true;

  /// Charge Formula-2 remote-fetch stalls (busy-wait) for batches that
  /// cross virtual sockets in the plan (hardware substitution — see
  /// DESIGN.md §1).
  bool numa_emulation = false;

  /// Pin execution threads to physical cores, derived from the plan's
  /// socket assignment (socket × cores-per-socket + slot) so RLAS
  /// placement is honored by the OS too. Meaningful only when the host
  /// has enough cores; defaults off for CI-sized machines.
  bool pin_threads = false;

  /// External ingress rate per topology (tuples/sec), 0 = saturated.
  double spout_rate_tps = 0.0;

  /// Job-level determinism seed. Nonzero: every operator replica
  /// receives a stable per-replica seed in OperatorContext::seed
  /// (DeriveSeed(seed, op, replica)), so seed-honoring sources make
  /// the whole run reproducible — the determinism the differential
  /// test layer builds on. 0 = unseeded (sources use their own
  /// workload-parameter defaults).
  uint64_t seed = 0;

  /// Execution model (see ExecutorKind).
  ExecutorKind executor = ExecutorKind::kWorkerPool;

  /// Worker threads per socket group in kWorkerPool mode. 0 derives it
  /// from the deployed MachineSpec's cores-per-socket, capped by the
  /// host's real core count split across the plan's sockets (so an
  /// emulated 8-socket plan on a laptop never spawns 144 workers).
  int workers_per_socket = 0;

  /// Work quantum per Task::Poll visit: a bolt drains up to this many
  /// envelopes, a spout produces up to this many batches, before the
  /// worker moves to its next task.
  int poll_budget = 8;

  /// Worker-pool producers treat a channel already holding this many
  /// undelivered batches as full and park the next one (cooperative
  /// back-pressure) instead of filling the whole ring. This bounds the
  /// cold in-flight inventory so batches are consumed cache-warm soon
  /// after production — with deep rings a single core otherwise
  /// accumulates megabytes of queued tuples and pays a capacity miss
  /// per batch. Clamped to queue_capacity; <= 0 disables the cap.
  /// (Thread-per-task mode ignores it: parking is what makes a short
  /// effective queue cheap, and legacy spinning would burn cores.)
  int pool_inflight_batches = 16;

  /// How long an idle worker parks before re-scanning on its own.
  /// Producers wake it earlier through the channel Waker hints; the
  /// timeout covers wakes the hints cannot see (token-bucket refills).
  int park_timeout_us = 500;

  /// Morsel-style work stealing between pool workers: a worker whose
  /// own run queue yields no progress steals the least-recently-polled
  /// task from the deepest sibling in its socket group, and only after
  /// `steal_patience` consecutive failed intra-socket rounds reaches
  /// across sockets — RLAS placement stays an affinity, not a
  /// straitjacket. Off pins every task to the worker the round-robin
  /// distribution gave it (PR-4 behavior, kept for A/B benching).
  bool steal_work = true;

  /// Consecutive idle passes in which no intra-socket victim was found
  /// before a worker is allowed one cross-socket steal attempt.
  int steal_patience = 4;

  /// Consecutive idle polls after which a task stolen across sockets
  /// is repatriated to a worker of its plan socket: a migrant that has
  /// gone quiet drifts home instead of anchoring remote wake hints.
  int steal_repatriate_after = 8;

  /// Back channel/batch-shell allocation with per-plan-socket
  /// hugepage-backed arenas (hw::NumaArena), mbind-placed on real
  /// multi-node hosts and first-touch everywhere else. Off = global
  /// allocator for everything (legacy modes keep it off: allocation
  /// cost is part of what they model).
  bool numa_arena = true;

  /// Arena reservation granularity per mmap chunk (kibibytes); the
  /// default matches the x86-64 2 MiB huge page.
  size_t arena_chunk_kb = 2048;

  /// Stop() stops spouts first and lets bolts drain in-flight
  /// envelopes (bounded by drain_timeout_s) before halting, so a
  /// bounded source's tuples all reach the sink instead of being
  /// dropped with the queues.
  bool graceful_drain = true;
  double drain_timeout_s = 1.0;

  /// Injected failure scenario (engine/fault.h). Empty = no faults.
  /// Deterministic under `seed`: triggers are tuple-count based, so a
  /// seeded job fails identically on every run.
  FaultPlan faults;

  /// Producer-side in-flight bound per channel, in batches: the
  /// cooperative cap clamped to the queue capacity, or kUncapped when
  /// disabled (the ring's own capacity is then the only bound). The
  /// single source of truth for both the task's park threshold and the
  /// channel's producer wake threshold — they must agree, or producers
  /// park at one occupancy and only wake (by timeout) at another.
  static constexpr size_t kUncapped = ~size_t{0};
  size_t EffectiveInflightCap() const {
    if (pool_inflight_batches <= 0) return kUncapped;
    return std::min(queue_capacity,
                    static_cast<size_t>(pool_inflight_batches));
  }

  /// BriskStream's native configuration.
  static EngineConfig Brisk() { return EngineConfig{}; }

  /// Brisk minus jumbo tuples (Fig. 16's middle step).
  static EngineConfig BriskNoJumbo() {
    EngineConfig c;
    c.batch_size = 1;
    c.queue_capacity = 4096;
    return c;
  }

  /// Storm-like: per-tuple serialization, duplicated headers, extra
  /// condition checks, no jumbo batching.
  static EngineConfig StormLike() {
    EngineConfig c;
    c.batch_size = 4;  // Storm's small executor transfer batches
    c.queue_capacity = 1024;
    c.serialize_tuples = true;
    c.duplicate_headers = true;
    c.extra_condition_checks = true;
    c.recycle_batches = false;  // legacy runtimes allocate per transfer
    c.compile_pipelines = false;
    c.reuse_ring_shells = false;
    c.steal_work = false;  // legacy schedulers hash-pin executors
    c.numa_arena = false;
    return c;
  }

  /// Flink-like: network-stack serialization with larger buffers but
  /// still per-tuple headers.
  static EngineConfig FlinkLike() {
    EngineConfig c;
    c.batch_size = 16;
    c.queue_capacity = 512;
    c.serialize_tuples = true;
    c.duplicate_headers = true;
    c.recycle_batches = false;  // legacy runtimes allocate per transfer
    c.compile_pipelines = false;
    c.reuse_ring_shells = false;
    c.steal_work = false;  // legacy schedulers hash-pin executors
    c.numa_arena = false;
    return c;
  }
};

}  // namespace brisk::engine
