#include "engine/checkpoint.h"

#include <cstring>

#include "common/serde.h"
#include "common/tuple.h"

namespace brisk::engine {

namespace {

constexpr uint32_t kMagicV1 = 0x31504342;  // "BCP1" — PR-7, tuple counts only
constexpr uint32_t kMagicV2 = 0x32504342;  // "BCP2" — positions carry a kind

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

bool GetU32(const std::vector<uint8_t>& buf, size_t* off, uint32_t* v) {
  if (*off + 4 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= uint32_t(buf[*off + i]) << (8 * i);
  *off += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& buf, size_t* off, uint64_t* v) {
  if (*off + 8 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= uint64_t(buf[*off + i]) << (8 * i);
  *off += 8;
  return true;
}

/// Keys ride the tuple codec as single-field tuples, so every Field
/// alternative (int/double/string) round-trips without a second codec.
void PutField(const Field& f, std::vector<uint8_t>* out) {
  Tuple t;
  t.fields.push_back(f);
  SerializeTuple(t, out);
}

StatusOr<Field> GetField(const std::vector<uint8_t>& buf, size_t* off) {
  auto t = DeserializeTuple(buf, off);
  if (!t.ok()) return t.status();
  if (t.value().fields.size() != 1) {
    return Status::Internal("checkpoint key tuple is not single-field");
  }
  return t.value().fields[0];
}

}  // namespace

void SerializeCheckpoint(const JobCheckpoint& cp, std::vector<uint8_t>* out) {
  out->clear();
  PutU32(kMagicV2, out);
  PutU32(static_cast<uint32_t>(cp.epoch), out);
  PutU32(static_cast<uint32_t>(cp.state.size()), out);
  for (const auto& s : cp.state) {
    PutU32(static_cast<uint32_t>(s.op), out);
    PutU32(static_cast<uint32_t>(s.replica), out);
    PutU32(static_cast<uint32_t>(s.entries.size()), out);
    for (const auto& e : s.entries) {
      PutField(e.key, out);
      SerializeTuple(e.state, out);
    }
  }
  PutU32(static_cast<uint32_t>(cp.positions.size()), out);
  for (const auto& p : cp.positions) {
    PutU32(static_cast<uint32_t>(p.op), out);
    PutU32(static_cast<uint32_t>(p.replica), out);
    PutU32(static_cast<uint32_t>(p.position.kind), out);
    PutU64(p.position.offset, out);
    PutU32(p.replayable ? 1 : 0, out);
  }
}

StatusOr<JobCheckpoint> DeserializeCheckpoint(
    const std::vector<uint8_t>& buf, const model::ExecutionPlan& plan) {
  size_t off = 0;
  uint32_t magic = 0, epoch = 0, n_state = 0;
  if (!GetU32(buf, &off, &magic) ||
      (magic != kMagicV1 && magic != kMagicV2)) {
    return Status::InvalidArgument("not a checkpoint buffer (bad magic)");
  }
  const bool v1 = magic == kMagicV1;
  if (!GetU32(buf, &off, &epoch) || !GetU32(buf, &off, &n_state)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  JobCheckpoint cp;
  cp.epoch = static_cast<int>(epoch);
  cp.plan = plan;
  cp.state.reserve(n_state);
  for (uint32_t i = 0; i < n_state; ++i) {
    uint32_t op = 0, replica = 0, n_entries = 0;
    if (!GetU32(buf, &off, &op) || !GetU32(buf, &off, &replica) ||
        !GetU32(buf, &off, &n_entries)) {
      return Status::InvalidArgument("truncated checkpoint state header");
    }
    ReplicaStateSnapshot s;
    s.op = static_cast<int>(op);
    s.replica = static_cast<int>(replica);
    s.entries.reserve(n_entries);
    for (uint32_t j = 0; j < n_entries; ++j) {
      auto key = GetField(buf, &off);
      if (!key.ok()) return key.status();
      auto state = DeserializeTuple(buf, &off);
      if (!state.ok()) return state.status();
      s.entries.push_back(
          {std::move(key).value(), std::move(state).value()});
    }
    cp.state.push_back(std::move(s));
  }
  uint32_t n_pos = 0;
  if (!GetU32(buf, &off, &n_pos)) {
    return Status::InvalidArgument("truncated checkpoint positions");
  }
  cp.positions.reserve(n_pos);
  for (uint32_t i = 0; i < n_pos; ++i) {
    uint32_t op = 0, replica = 0, kind = 0, replayable = 0;
    uint64_t offset = 0;
    // v1 entries have no kind field; every v1 source counted tuples.
    if (!GetU32(buf, &off, &op) || !GetU32(buf, &off, &replica) ||
        (!v1 && !GetU32(buf, &off, &kind)) || !GetU64(buf, &off, &offset) ||
        !GetU32(buf, &off, &replayable)) {
      return Status::InvalidArgument("truncated checkpoint position entry");
    }
    if (kind > static_cast<uint32_t>(
                   api::SourcePosition::Kind::kByteOffset)) {
      return Status::InvalidArgument("unknown checkpoint position kind");
    }
    cp.positions.push_back(
        {static_cast<int>(op), static_cast<int>(replica),
         {static_cast<api::SourcePosition::Kind>(kind), offset},
         replayable != 0});
  }
  if (off != buf.size()) {
    return Status::InvalidArgument("trailing bytes after checkpoint payload");
  }
  return cp;
}

}  // namespace brisk::engine
