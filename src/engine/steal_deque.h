// Per-worker bounded run queue for the morsel-style stealing scheduler.
//
// Each pool worker owns one StealDeque of Task pointers. The owner
// takes the task at the front (the least-recently-polled one), polls
// it, and requeues it at the back; thieves also take from the front,
// which under stealing is the victim's most-backlogged task — the one
// that would otherwise wait longest for service. A task is therefore
// always in exactly one deque *or* checked out by exactly one worker,
// which is what makes stealing safe for single-threaded Task state:
// the deque's mutex carries the happens-before edge from the last
// poller to the next one (covering the SPSC queues' producer/consumer
// -local index caches inside the task's channels).
//
// Why a mutex and not a Chase-Lev deque: tasks here are persistent
// poll-quanta, not run-to-completion morsels, so deque operations
// happen once per Poll(budget) — tens of microseconds of work — and
// the lock is uncontended except during an actual steal. A Chase-Lev
// implementation needs standalone fences TSan does not model, and this
// engine keeps its concurrency surface TSan-provable.
//
// Why the owner does not pop LIFO: re-polling the hottest task first
// is right for cache-resident morsels, but with persistent tasks it
// would starve siblings on the same worker (the fairness tests assert
// every replica progresses at 8x oversubscription). Front-pop +
// back-requeue preserves round-robin order; the deque order itself
// encodes staleness, which is exactly what a thief wants to steal.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

namespace brisk::engine {

class Task;

class StealDeque {
 public:
  /// Capacity must cover the worst case (every task of the pool in one
  /// deque, e.g. after aggressive stealing); rounded up to a power of
  /// two.
  explicit StealDeque(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity + 1) cap <<= 1;  // one slot stays empty
    mask_ = cap - 1;
    ring_.resize(cap, nullptr);
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Requeue (owner) or deposit (thief/repatriation). Returns false
  /// only when full, which the executor sizes away and CHECKs.
  bool PushBack(Task* t) {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t next = (tail_ + 1) & mask_;
    if (next == head_) return false;
    ring_[tail_] = t;
    tail_ = next;
    size_.store(size_.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    return true;
  }

  /// Take the least-recently-polled task; nullptr when empty. Used by
  /// both the owner (round-robin service) and thieves (steal the task
  /// that has waited longest).
  Task* PopFront() {
    std::lock_guard<std::mutex> lock(mu_);
    if (head_ == tail_) return nullptr;
    Task* t = ring_[head_];
    ring_[head_] = nullptr;
    head_ = (head_ + 1) & mask_;
    size_.store(size_.load(std::memory_order_relaxed) - 1,
                std::memory_order_relaxed);
    return t;
  }

  /// Lock-free depth read for steal heuristics and supervisor
  /// queue-depth tracking; racy but never off by more than in-flight
  /// operations.
  size_t SizeApprox() const {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::vector<Task*> ring_;
  size_t mask_ = 0;
  size_t head_ = 0;  // guarded by mu_
  size_t tail_ = 0;  // guarded by mu_
  std::atomic<size_t> size_{0};  // mirror for lock-free depth reads
};

}  // namespace brisk::engine
