#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "engine/spin.h"

namespace brisk::engine {

namespace {

int HostCores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void PinThreadToCpu(std::thread& thread, int cpu) {
#if defined(__linux__)
  if (cpu < 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)cpu;
#endif
}

/// Wait-strategy thresholds: a worker that makes no progress spins
/// kSpinPasses times, yields kYieldPasses times, then parks on its
/// Waker until notified or the park timeout elapses.
constexpr int kSpinPasses = 64;
constexpr int kYieldPasses = 16;

}  // namespace

int PinCpuForSocketSlot(int socket, int slot, int cores_per_socket,
                        int host_cores) {
  if (host_cores <= 0) return -1;
  if (socket < 0) socket = 0;
  if (slot < 0) slot = 0;
  if (cores_per_socket <= 0) cores_per_socket = host_cores;
  const long cpu = static_cast<long>(socket) * cores_per_socket +
                   (slot % cores_per_socket);
  return static_cast<int>(cpu % host_cores);
}

int WorkersPerSocketFor(const EngineConfig& config,
                        const hw::MachineSpec* machine, int sockets_used) {
  if (config.workers_per_socket > 0) return config.workers_per_socket;
  const int host_share =
      std::max(1, HostCores() / std::max(1, sockets_used));
  if (machine != nullptr && machine->cores_per_socket() > 0) {
    return std::min(machine->cores_per_socket(), host_share);
  }
  return host_share;
}

namespace {

// ---------------------------------------------------------------------------
// Thread-per-task (legacy).
// ---------------------------------------------------------------------------

class ThreadPerTaskExecutor final : public Executor {
 public:
  ThreadPerTaskExecutor(const EngineConfig& config, StopSignals* signals,
                        std::vector<Task*> tasks,
                        const hw::MachineSpec* machine)
      : config_(config),
        signals_(signals),
        tasks_(std::move(tasks)),
        machine_(machine) {}

  Status Start() override {
    threads_.reserve(tasks_.size());
    const int host_cores = HostCores();
    const int cps = machine_ != nullptr ? machine_->cores_per_socket() : 0;
    // Slot of each instance within its plan socket, in instance order,
    // so co-located replicas spread over that socket's cores instead of
    // all landing on `socket × cores_per_socket`.
    std::map<int, int> next_slot;
    for (Task* task : tasks_) {
      threads_.emplace_back(
          [task, signals = signals_] { task->Run(signals); });
      if (config_.pin_threads) {
        const int slot = next_slot[task->socket()]++;
        PinThreadToCpu(threads_.back(),
                       PinCpuForSocketSlot(task->socket(), slot, cps,
                                           host_cores));
      }
    }
    return Status::OK();
  }

  void Join() override {
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

  ExecutorStats stats() const override {
    ExecutorStats s;
    s.threads = static_cast<int>(tasks_.size());
    return s;
  }

 private:
  EngineConfig config_;
  StopSignals* signals_;
  std::vector<Task*> tasks_;
  const hw::MachineSpec* machine_;
  std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------------
// Socket-aware worker pool.
// ---------------------------------------------------------------------------

class WorkerPoolExecutor final : public Executor {
 public:
  WorkerPoolExecutor(const EngineConfig& config, StopSignals* signals,
                     std::vector<Task*> tasks,
                     std::vector<Channel*> channels,
                     const hw::MachineSpec* machine)
      : config_(config),
        signals_(signals),
        channels_(std::move(channels)),
        machine_(machine) {
    // Group tasks by their plan socket, preserving instance order.
    std::map<int, std::vector<Task*>> by_socket;
    int max_instance = -1;
    for (Task* t : tasks) {
      by_socket[std::max(0, t->socket())].push_back(t);
      max_instance = std::max(max_instance, t->instance_id());
    }
    worker_groups_ = static_cast<int>(by_socket.size());
    const int per_socket = WorkersPerSocketFor(
        config_, machine_, worker_groups_);
    // One Worker object per (socket, index); tasks round-robin within
    // their socket's group. Never spawn workers with nothing to do.
    for (auto& [socket, socket_tasks] : by_socket) {
      const int n = std::min(per_socket,
                             static_cast<int>(socket_tasks.size()));
      const size_t first = workers_.size();
      for (int w = 0; w < n; ++w) {
        workers_.push_back(std::make_unique<Worker>());
        workers_.back()->socket = socket;
        workers_.back()->index_in_socket = w;
      }
      for (size_t i = 0; i < socket_tasks.size(); ++i) {
        workers_[first + i % n]->tasks.push_back(socket_tasks[i]);
      }
    }
    // instance id → owning worker, for the channel Waker hints.
    std::vector<Waker*> waker_of(static_cast<size_t>(max_instance) + 1,
                                 nullptr);
    for (auto& w : workers_) {
      for (Task* t : w->tasks) {
        waker_of[static_cast<size_t>(t->instance_id())] = &w->waker;
      }
    }
    // Producers consider a channel "full" at the cooperative in-flight
    // cap, so pops crossing below it wake a parked producer. Uncapped
    // keeps the channel's default (the ring's real capacity).
    const size_t inflight_cap = config_.EffectiveInflightCap();
    for (Channel* ch : channels_) {
      ch->SetWakers(waker_of[static_cast<size_t>(ch->to_instance())],
                    waker_of[static_cast<size_t>(ch->from_instance())]);
      if (inflight_cap != EngineConfig::kUncapped) {
        ch->SetProducerFullThreshold(inflight_cap);
      }
    }
  }

  ~WorkerPoolExecutor() override {
    // Channels outlive the executor inside the runtime; drop the
    // dangling Waker pointers.
    for (Channel* ch : channels_) ch->SetWakers(nullptr, nullptr);
  }

  WorkerPoolExecutor(const WorkerPoolExecutor&) = delete;
  WorkerPoolExecutor& operator=(const WorkerPoolExecutor&) = delete;

  Status Start() override {
    const int host_cores = HostCores();
    const int cps = machine_ != nullptr ? machine_->cores_per_socket() : 0;
    for (auto& w : workers_) {
      w->thread = std::thread([this, worker = w.get()] { Loop(worker); });
      if (config_.pin_threads) {
        PinThreadToCpu(w->thread,
                       PinCpuForSocketSlot(w->socket, w->index_in_socket,
                                           cps, host_cores));
      }
    }
    return Status::OK();
  }

  void NotifyAll() override {
    for (auto& w : workers_) w->waker.Notify();
  }

  void Join() override {
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
  }

  ExecutorStats stats() const override {
    ExecutorStats s;
    s.threads = static_cast<int>(workers_.size());
    s.worker_groups = worker_groups_;
    for (const auto& w : workers_) {
      s.parks += w->parks;
      s.wakes += w->wakes;
    }
    return s;
  }

  std::vector<uint64_t> Heartbeats() const override {
    std::vector<uint64_t> beats;
    beats.reserve(workers_.size());
    for (const auto& w : workers_) beats.push_back(w->heartbeat.value());
    return beats;
  }

 private:
  struct Worker {
    Waker waker;
    std::vector<Task*> tasks;
    int socket = 0;
    int index_in_socket = 0;
    uint64_t parks = 0;
    uint64_t wakes = 0;
    /// Scheduling passes completed (single-writer; the supervisor
    /// reads it cross-thread as a liveness signal).
    RelaxedCounter heartbeat;
    std::thread thread;
  };

  void Loop(Worker* w) {
    const int budget = std::max(1, config_.poll_budget);
    const auto park_timeout =
        std::chrono::microseconds(std::max(1, config_.park_timeout_us));
    int idle_passes = 0;
    while (!signals_->stop_all.load(std::memory_order_relaxed)) {
      ++w->heartbeat;
      bool progress = false;
      for (Task* t : w->tasks) {
        if (t->Poll(budget) == PollResult::kProgress) progress = true;
      }
      if (progress) {
        idle_passes = 0;
        continue;
      }
      // Idle (or everything blocked/done): spin → yield → park. The
      // channel Wakers end the park early when work arrives or
      // back-pressure releases; the timeout covers everything else.
      ++idle_passes;
      if (idle_passes <= kSpinPasses) {
        CpuRelax();
      } else if (idle_passes <= kSpinPasses + kYieldPasses) {
        std::this_thread::yield();
      } else {
        ++w->parks;
        if (w->waker.WaitFor(park_timeout)) ++w->wakes;
      }
    }
  }

  EngineConfig config_;
  StopSignals* signals_;
  std::vector<Channel*> channels_;
  const hw::MachineSpec* machine_;
  std::vector<std::unique_ptr<Worker>> workers_;
  int worker_groups_ = 0;
};

}  // namespace

std::unique_ptr<Executor> MakeExecutor(const EngineConfig& config,
                                       StopSignals* signals,
                                       std::vector<Task*> tasks,
                                       std::vector<Channel*> channels,
                                       const hw::MachineSpec* machine) {
  if (config.executor == ExecutorKind::kWorkerPool) {
    return std::make_unique<WorkerPoolExecutor>(
        config, signals, std::move(tasks), std::move(channels), machine);
  }
  return std::make_unique<ThreadPerTaskExecutor>(config, signals,
                                                 std::move(tasks), machine);
}

}  // namespace brisk::engine
