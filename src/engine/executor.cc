#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/batch_arena.h"
#include "common/logging.h"
#include "engine/spin.h"
#include "engine/steal_deque.h"
#include "hardware/numa_arena.h"

namespace brisk::engine {

namespace {

int HostCores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void PinThreadToCpu(std::thread& thread, int cpu) {
#if defined(__linux__)
  if (cpu < 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)cpu;
#endif
}

/// Wait-strategy thresholds: a worker that makes no progress spins
/// kSpinPasses times, yields kYieldPasses times, then parks on its
/// Waker until notified or the park timeout elapses.
constexpr int kSpinPasses = 64;
constexpr int kYieldPasses = 16;

}  // namespace

int PinCpuForSocketSlot(int socket, int slot, int cores_per_socket,
                        int host_cores) {
  if (host_cores <= 0) return -1;
  if (socket < 0) socket = 0;
  if (slot < 0) slot = 0;
  if (cores_per_socket <= 0) cores_per_socket = host_cores;
  const long cpu = static_cast<long>(socket) * cores_per_socket +
                   (slot % cores_per_socket);
  return static_cast<int>(cpu % host_cores);
}

int WorkersPerSocketFor(const EngineConfig& config,
                        const hw::MachineSpec* machine, int sockets_used) {
  if (config.workers_per_socket > 0) return config.workers_per_socket;
  const int host_share =
      std::max(1, HostCores() / std::max(1, sockets_used));
  if (machine != nullptr && machine->cores_per_socket() > 0) {
    return std::min(machine->cores_per_socket(), host_share);
  }
  return host_share;
}

namespace {

// ---------------------------------------------------------------------------
// Thread-per-task (legacy).
// ---------------------------------------------------------------------------

class ThreadPerTaskExecutor final : public Executor {
 public:
  ThreadPerTaskExecutor(const EngineConfig& config, StopSignals* signals,
                        std::vector<Task*> tasks,
                        const hw::MachineSpec* machine)
      : config_(config),
        signals_(signals),
        tasks_(std::move(tasks)),
        machine_(machine) {}

  Status Start() override {
    threads_.reserve(tasks_.size());
    const int host_cores = HostCores();
    const int cps = machine_ != nullptr ? machine_->cores_per_socket() : 0;
    // Slot of each instance within its plan socket, in instance order,
    // so co-located replicas spread over that socket's cores instead of
    // all landing on `socket × cores_per_socket`.
    std::map<int, int> next_slot;
    for (Task* task : tasks_) {
      threads_.emplace_back(
          [task, signals = signals_] { task->Run(signals); });
      if (config_.pin_threads) {
        const int slot = next_slot[task->socket()]++;
        PinThreadToCpu(threads_.back(),
                       PinCpuForSocketSlot(task->socket(), slot, cps,
                                           host_cores));
      }
    }
    return Status::OK();
  }

  void Join() override {
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

  ExecutorStats stats() const override {
    ExecutorStats s;
    s.threads = static_cast<int>(tasks_.size());
    return s;
  }

 private:
  EngineConfig config_;
  StopSignals* signals_;
  std::vector<Task*> tasks_;
  const hw::MachineSpec* machine_;
  std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------------
// Socket-aware worker pool with morsel-style work stealing.
//
// Every worker owns a bounded StealDeque; a task is always in exactly
// one deque or checked out by exactly one polling worker, so Task
// state needs no locking of its own. Steal policy (config.steal_work):
//   - A worker whose own pass made progress may still pull one task
//     from a same-socket sibling whose queue is >= 2 deeper (bounded
//     intra-group load balancing).
//   - A worker whose pass made no progress steals from the deepest
//     same-socket sibling holding >= 2 queued tasks; only after
//     config.steal_patience consecutive idle rounds without an
//     intra-socket victim does it reach across sockets. RLAS placement
//     stays an affinity, not a straitjacket.
//   - A successful steal from a still-deep victim notifies one of the
//     victim's parked siblings, so backlog recruits the whole group.
//   - A task stolen across sockets that then idles for
//     config.steal_repatriate_after consecutive polls is sent back to
//     the least-loaded worker of its plan socket (and that worker is
//     woken) — but only once the home group has a worker with no
//     progressing work, so migrants ride out the skew instead of
//     ping-ponging against a still-saturated home socket. Migration
//     is for riding out skew, not permanent.
// Channel wake hints reach "whichever worker runs the task now"
// through per-instance WakerRefs that steals repoint atomically.
// ---------------------------------------------------------------------------

class WorkerPoolExecutor final : public Executor {
 public:
  WorkerPoolExecutor(const EngineConfig& config, StopSignals* signals,
                     std::vector<Task*> tasks,
                     std::vector<Channel*> channels,
                     const hw::MachineSpec* machine, hw::ArenaSet* arenas)
      : config_(config),
        signals_(signals),
        channels_(std::move(channels)),
        machine_(machine),
        arenas_(arenas) {
    // Group tasks by their plan socket, preserving instance order.
    std::map<int, std::vector<Task*>> by_socket;
    int max_instance = -1;
    int max_socket = 0;
    for (Task* t : tasks) {
      by_socket[std::max(0, t->socket())].push_back(t);
      max_instance = std::max(max_instance, t->instance_id());
      max_socket = std::max(max_socket, t->socket());
    }
    const size_t total_tasks = tasks.size();
    worker_groups_ = static_cast<int>(by_socket.size());
    const int per_socket = WorkersPerSocketFor(
        config_, machine_, worker_groups_);
    // One Worker object per (socket, index); tasks round-robin within
    // their socket's group. Never spawn workers with nothing to do.
    // Deques are sized for the worst case (every task stolen into one
    // queue), so PushBack cannot fail mid-run.
    socket_to_group_.assign(static_cast<size_t>(max_socket) + 1, -1);
    for (auto& [socket, socket_tasks] : by_socket) {
      const int n = std::min(per_socket,
                             static_cast<int>(socket_tasks.size()));
      const size_t first = workers_.size();
      const int group = static_cast<int>(groups_.size());
      socket_to_group_[static_cast<size_t>(socket)] = group;
      groups_.push_back(Group{socket, first, static_cast<size_t>(n)});
      for (int w = 0; w < n; ++w) {
        workers_.push_back(std::make_unique<Worker>());
        workers_.back()->socket = socket;
        workers_.back()->index_in_socket = w;
        workers_.back()->group = group;
        workers_.back()->deque =
            std::make_unique<StealDeque>(total_tasks);
        if (arenas_ != nullptr) {
          workers_.back()->arena = arenas_->ForSocket(socket);
        }
      }
      for (size_t i = 0; i < socket_tasks.size(); ++i) {
        BRISK_CHECK(
            workers_[first + i % n]->deque->PushBack(socket_tasks[i]));
      }
    }
    group_rotors_.reset(new std::atomic<uint32_t>[groups_.size()]());
    // instance id → movable wake target. The ref array is per
    // *instance* and stable for the executor's lifetime; steals only
    // repoint the targets. (Plain array: WakerRef holds an atomic and
    // cannot live in a resizable vector.)
    waker_refs_.reset(new WakerRef[static_cast<size_t>(max_instance) + 1]);
    for (auto& w : workers_) {
      const size_t depth = w->deque->SizeApprox();
      for (size_t i = 0; i < depth; ++i) {
        Task* t = w->deque->PopFront();
        waker_refs_[static_cast<size_t>(t->instance_id())].Point(
            &w->waker);
        BRISK_CHECK(w->deque->PushBack(t));
      }
    }
    // Producers consider a channel "full" at the cooperative in-flight
    // cap, so pops crossing below it wake a parked producer. Uncapped
    // keeps the channel's default (the ring's real capacity).
    const size_t inflight_cap = config_.EffectiveInflightCap();
    for (Channel* ch : channels_) {
      ch->SetWakers(&waker_refs_[static_cast<size_t>(ch->to_instance())],
                    &waker_refs_[static_cast<size_t>(ch->from_instance())]);
      if (inflight_cap != EngineConfig::kUncapped) {
        ch->SetProducerFullThreshold(inflight_cap);
      }
    }
  }

  ~WorkerPoolExecutor() override {
    // Channels outlive the executor inside the runtime; drop the
    // dangling WakerRef pointers.
    for (Channel* ch : channels_) ch->SetWakers(nullptr, nullptr);
  }

  WorkerPoolExecutor(const WorkerPoolExecutor&) = delete;
  WorkerPoolExecutor& operator=(const WorkerPoolExecutor&) = delete;

  Status Start() override {
    const int host_cores = HostCores();
    const int cps = machine_ != nullptr ? machine_->cores_per_socket() : 0;
    for (auto& w : workers_) {
      w->thread = std::thread([this, worker = w.get()] { Loop(worker); });
      if (config_.pin_threads) {
        PinThreadToCpu(w->thread, PinCpuFor(w.get(), cps, host_cores));
      }
    }
    return Status::OK();
  }

  void NotifyAll() override {
    for (auto& w : workers_) w->waker.Notify();
  }

  void Join() override {
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
  }

  ExecutorStats stats() const override {
    ExecutorStats s;
    s.threads = static_cast<int>(workers_.size());
    s.worker_groups = worker_groups_;
    s.queue_depths.reserve(workers_.size());
    for (const auto& w : workers_) {
      s.parks += w->parks.value();
      s.wakes += w->wakes.value();
      s.steals_intra += w->steals_intra.value();
      s.steals_cross += w->steals_cross.value();
      s.steal_failures += w->steal_failures.value();
      s.repatriations += w->repatriations.value();
      s.queue_depths.push_back(w->deque->SizeApprox());
    }
    return s;
  }

  std::vector<uint64_t> Heartbeats() const override {
    std::vector<uint64_t> beats;
    beats.reserve(workers_.size());
    for (const auto& w : workers_) beats.push_back(w->heartbeat.value());
    return beats;
  }

  std::vector<size_t> QueueDepths() const override {
    std::vector<size_t> depths;
    depths.reserve(workers_.size());
    for (const auto& w : workers_) {
      depths.push_back(w->deque->SizeApprox());
    }
    return depths;
  }

 private:
  struct Worker {
    Waker waker;
    std::unique_ptr<StealDeque> deque;
    hw::NumaArena* arena = nullptr;  // this socket's shell arena
    int socket = 0;
    int index_in_socket = 0;
    int group = 0;  // index into groups_
    // Single-writer (the owning worker thread); the stats()/
    // QueueDepths() cross-thread reads are relaxed.
    RelaxedCounter parks;
    RelaxedCounter wakes;
    RelaxedCounter steals_intra;
    RelaxedCounter steals_cross;
    RelaxedCounter steal_failures;
    RelaxedCounter repatriations;
    /// Scheduling passes completed (single-writer; the supervisor
    /// reads it cross-thread as a liveness signal).
    RelaxedCounter heartbeat;
    /// Tasks that made progress in the current/most recent own-queue
    /// pass (published live, mid-pass) — the steal policy's load
    /// signal. Deque depth cannot serve: tasks are persistent (every
    /// poll requeues), so depth measures assignment, not backlog, and
    /// depth-only stealing ping-pongs idle tasks between idle workers
    /// forever, defeating parking.
    RelaxedCounter busy_depth;
    /// 1 while a poll is in flight: the checked-out task still counts
    /// toward this worker's apparent load, or a 2-task worker could
    /// never be stolen from (one task in hand, one queued = depth 1).
    RelaxedCounter poll_in_flight;
    std::thread thread;
  };

  struct Group {
    int socket = 0;
    size_t first = 0;  // worker index range [first, first + size)
    size_t size = 0;
  };

  int PinCpuFor(const Worker* w, int cps, int host_cores) const {
    // On a detected multi-node host, honor the real topology: plan
    // socket → physical node (round-robin), slot → CPU of that node.
    if (arenas_ != nullptr && arenas_->topology().real) {
      const auto& cpus = arenas_->topology().CpusOfNode(w->socket);
      if (!cpus.empty()) {
        return cpus[static_cast<size_t>(w->index_in_socket) % cpus.size()];
      }
    }
    return PinCpuForSocketSlot(w->socket, w->index_in_socket, cps,
                               host_cores);
  }

  bool Stopped() const {
    return signals_->stop_all.load(std::memory_order_relaxed);
  }

  /// One service pass over the worker's own queue: each queued task is
  /// checked out, polled once, and requeued (front-pop + back-push =
  /// round-robin). Bounded by the pass-entry depth so steal-ins during
  /// the pass don't extend it unboundedly.
  bool OwnPass(Worker* w, int budget) {
    uint64_t busy = 0;
    const size_t depth = w->deque->SizeApprox();
    for (size_t i = 0; i < depth && !Stopped(); ++i) {
      Task* t = w->deque->PopFront();
      if (t == nullptr) break;  // thieves got there first
      w->poll_in_flight = 1;
      if (t->Poll(budget) == PollResult::kProgress) {
        // Publish immediately, not at pass end: a thief deciding
        // whether this worker is worth stealing from must see the
        // busy signal while a long poll is still grinding.
        ++busy;
        w->busy_depth = busy;
        t->set_sched_idle_streak(0);
      } else {
        t->set_sched_idle_streak(t->sched_idle_streak() + 1);
      }
      Requeue(w, t);
      w->poll_in_flight = 0;
    }
    w->busy_depth = busy;
    return busy > 0;
  }

  /// Requeue after a poll; cross-socket migrants that have idled long
  /// enough drift back to their plan socket — but only once (a) the
  /// home group has a worker with no progressing work and (b) this
  /// worker still has other work making progress. While home is
  /// saturated, returning an idle migrant would only be answered by
  /// the next cross steal; and a fully starved thief that sheds its
  /// migrants will immediately steal again — either way the task
  /// would ping-pong between sockets instead of riding out the skew
  /// where capacity is.
  void Requeue(Worker* w, Task* t) {
    const int home = GroupOfSocket(t->socket());
    if (config_.steal_work && home >= 0 && home != w->group &&
        t->sched_idle_streak() >= config_.steal_repatriate_after &&
        w->busy_depth.value() > 0 &&
        GroupHasStarvedWorker(groups_[static_cast<size_t>(home)])) {
      Worker* target = ShallowestWorker(groups_[static_cast<size_t>(home)]);
      if (target != nullptr) {
        t->set_sched_idle_streak(0);
        MoveTaskTo(target, t);
        ++w->repatriations;
        target->waker.Notify();
        return;
      }
    }
    BRISK_CHECK(w->deque->PushBack(t));
  }

  /// Idle-path stealing. Returns true when a task was taken.
  bool IdleSteal(Worker* w, int* failed_intra_rounds) {
    if (StealFromGroup(w, groups_[static_cast<size_t>(w->group)],
                       /*min_depth=*/2, /*cross=*/false)) {
      *failed_intra_rounds = 0;
      return true;
    }
    ++*failed_intra_rounds;
    if (groups_.size() > 1 &&
        *failed_intra_rounds >= std::max(1, config_.steal_patience)) {
      // Last resort: rotate over the other socket groups.
      const size_t n = groups_.size();
      for (size_t i = 1; i < n; ++i) {
        const size_t g = (static_cast<size_t>(w->group) + i) % n;
        if (StealFromGroup(w, groups_[g], /*min_depth=*/2,
                           /*cross=*/true)) {
          *failed_intra_rounds = 0;
          return true;
        }
      }
    }
    ++w->steal_failures;
    return false;
  }

  /// Busy-path balancing: even a progressing worker pulls one task
  /// from a same-socket sibling whose queue is >= 2 deeper than its
  /// own, so skew inside a group is bounded without waiting for
  /// anyone to go fully idle.
  void BalanceSteal(Worker* w) {
    const size_t mine = w->deque->SizeApprox();
    StealFromGroup(w, groups_[static_cast<size_t>(w->group)],
                   /*min_depth=*/mine + 2, /*cross=*/false);
  }

  /// Steals the least-recently-polled task of the deepest qualifying
  /// victim in `g` (depth >= min_depth AND at least one task made
  /// progress in the victim's latest pass — an all-idle queue is
  /// assignment, not backlog, and stealing from it just migrates
  /// idleness). On success the task's wake target is repointed to the
  /// thief before the task becomes pollable in the thief's queue, and
  /// one parked sibling of a still-deep victim is recruited.
  bool StealFromGroup(Worker* w, const Group& g, size_t min_depth,
                      bool cross) {
    Worker* victim = nullptr;
    size_t deepest = min_depth - 1;
    for (size_t i = g.first; i < g.first + g.size; ++i) {
      Worker* v = workers_[i].get();
      if (v == w) continue;
      if (v->busy_depth.value() == 0) continue;
      // The task a victim is polling right now still counts toward
      // its load: a 2-task worker mid-poll holds one in hand and one
      // queued, and the queued one is exactly what a thief should
      // take.
      const size_t d = v->deque->SizeApprox() +
                       static_cast<size_t>(v->poll_in_flight.value());
      if (d > deepest) {
        deepest = d;
        victim = v;
      }
    }
    if (victim == nullptr) return false;
    Task* t = victim->deque->PopFront();
    if (t == nullptr) return false;  // raced with the owner/thieves
    t->set_sched_idle_streak(0);
    MoveTaskTo(w, t);
    if (cross) {
      ++w->steals_cross;
    } else {
      ++w->steals_intra;
    }
    // Steal-in wakes a parked sibling of the victim: if one thief
    // found backlog there, the rest of the group should look too.
    if (victim->deque->SizeApprox() >= 2) NotifyOneSibling(victim);
    return true;
  }

  /// Hands a checked-out task to `target`: repoint the wake target
  /// first, then publish the task into the deque. A channel hint that
  /// races with the repoint wakes the previous owner spuriously —
  /// harmless, bounded by the park timeout — but is never lost.
  void MoveTaskTo(Worker* target, Task* t) {
    waker_refs_[static_cast<size_t>(t->instance_id())].Point(
        &target->waker);
    BRISK_CHECK(target->deque->PushBack(t));
  }

  int GroupOfSocket(int socket) const {
    const size_t s = static_cast<size_t>(std::max(0, socket));
    return s < socket_to_group_.size() ? socket_to_group_[s] : -1;
  }

  /// True when some worker of `g` made no progress on its latest pass
  /// — spare service capacity a repatriated migrant could use.
  bool GroupHasStarvedWorker(const Group& g) const {
    for (size_t i = g.first; i < g.first + g.size; ++i) {
      if (workers_[i]->busy_depth.value() == 0) return true;
    }
    return false;
  }

  Worker* ShallowestWorker(const Group& g) const {
    Worker* best = nullptr;
    size_t best_depth = 0;
    for (size_t i = g.first; i < g.first + g.size; ++i) {
      Worker* v = workers_[i].get();
      const size_t d = v->deque->SizeApprox();
      if (best == nullptr || d < best_depth) {
        best = v;
        best_depth = d;
      }
    }
    return best;
  }

  void NotifyOneSibling(Worker* victim) {
    const Group& g = groups_[static_cast<size_t>(victim->group)];
    if (g.size <= 1) return;
    const uint32_t r =
        group_rotors_[static_cast<size_t>(victim->group)].fetch_add(
            1, std::memory_order_relaxed);
    Worker* sib = workers_[g.first + r % g.size].get();
    if (sib != victim) sib->waker.Notify();
  }

  void Loop(Worker* w) {
    // Shell allocations this worker performs (producer-side
    // FlushBuffer) come from its socket's arena and are first-touched
    // on this thread.
    std::optional<BatchArenaScope> arena_scope;
    if (w->arena != nullptr) arena_scope.emplace(w->arena);
    const int budget = std::max(1, config_.poll_budget);
    const auto park_timeout =
        std::chrono::microseconds(std::max(1, config_.park_timeout_us));
    int idle_passes = 0;
    int failed_intra_rounds = 0;
    // The remembered park token: a park that ended by timeout (not
    // Notify) means nothing changed while we slept, so the next empty
    // pass skips the spin→yield ladder and parks immediately instead
    // of burning CPU re-spinning it pass after pass at low load.
    bool park_stale = false;
    while (!Stopped()) {
      ++w->heartbeat;
      const bool progress = OwnPass(w, budget);
      if (Stopped()) break;
      if (progress) {
        idle_passes = 0;
        failed_intra_rounds = 0;
        park_stale = false;
        if (config_.steal_work) BalanceSteal(w);
        continue;
      }
      if (config_.steal_work && IdleSteal(w, &failed_intra_rounds)) {
        idle_passes = 0;
        park_stale = false;
        continue;
      }
      // Idle (or everything blocked/done): spin → yield → park. The
      // channel Wakers end the park early when work arrives or
      // back-pressure releases; the timeout covers everything else.
      ++idle_passes;
      if (park_stale || idle_passes > kSpinPasses + kYieldPasses) {
        ++w->parks;
        if (w->waker.WaitFor(park_timeout)) {
          ++w->wakes;
          park_stale = false;
        } else {
          park_stale = true;
        }
      } else if (idle_passes > kSpinPasses) {
        std::this_thread::yield();
      } else {
        CpuRelax();
      }
    }
  }

  EngineConfig config_;
  StopSignals* signals_;
  std::vector<Channel*> channels_;
  const hw::MachineSpec* machine_;
  hw::ArenaSet* arenas_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Group> groups_;
  std::vector<int> socket_to_group_;
  std::unique_ptr<std::atomic<uint32_t>[]> group_rotors_;
  std::unique_ptr<WakerRef[]> waker_refs_;
  int worker_groups_ = 0;
};

}  // namespace

std::unique_ptr<Executor> MakeExecutor(const EngineConfig& config,
                                       StopSignals* signals,
                                       std::vector<Task*> tasks,
                                       std::vector<Channel*> channels,
                                       const hw::MachineSpec* machine,
                                       hw::ArenaSet* arenas) {
  if (config.executor == ExecutorKind::kWorkerPool) {
    return std::make_unique<WorkerPoolExecutor>(config, signals,
                                                std::move(tasks),
                                                std::move(channels),
                                                machine, arenas);
  }
  return std::make_unique<ThreadPerTaskExecutor>(config, signals,
                                                 std::move(tasks), machine);
}

}  // namespace brisk::engine
