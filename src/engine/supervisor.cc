#include "engine/supervisor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace brisk::engine {

Supervisor::~Supervisor() { Stop(); }

Status Supervisor::Start() {
  if (thread_.joinable()) {
    return Status::FailedPrecondition("supervisor already started");
  }
  started_at_ = std::chrono::steady_clock::now();
  BRISK_RETURN_NOT_OK(TakeCheckpoint());
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

SupervisionReport Supervisor::Stop() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

SupervisionReport Supervisor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

bool Supervisor::SleepFor(double seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  return !cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                       [this] { return stop_; });
}

Status Supervisor::TakeCheckpoint() {
  auto cp = runtime_->Checkpoint();
  if (!cp.ok()) return cp.status();
  SerializeCheckpoint(cp.value(), &checkpoint_bytes_);
  checkpoint_plan_ = cp.value().plan;
  last_checkpoint_ = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  ++report_.checkpoints;
  report_.checkpoint_pause_s += cp.value().pause_seconds;
  return Status::OK();
}

std::string Supervisor::DetectFailure(const HealthReport& health) {
  if (health.dead) {
    return "engine down (a migration or restore failed past its point "
           "of no return)";
  }
  for (const auto& t : health.tasks) {
    if (t.failed) return "task failure: " + t.failure_message;
  }
  // Stall / drain-deadlock detection: a task whose progress counter
  // froze across consecutive probes while it holds work — queued
  // input (backlog) or a parked envelope it never retires (the wedge
  // scenario) — is stuck; an idle task with nothing to do is not.
  const int epoch = runtime_->epoch();
  if (epoch != tracked_epoch_ || last_tuples_.size() != health.tasks.size()) {
    tracked_epoch_ = epoch;
    last_tuples_.assign(health.tasks.size(), 0);
    no_progress_.assign(health.tasks.size(), 0);
    for (size_t i = 0; i < health.tasks.size(); ++i) {
      last_tuples_[i] = health.tasks[i].tuples_in;
    }
    last_heartbeats_ = health.worker_heartbeats;
    worker_no_progress_.assign(health.worker_heartbeats.size(), 0);
    return std::string();
  }
  // Attribution: under back-pressure every producer upstream of a
  // stuck consumer also freezes (holding parked output), so prefer the
  // culprit — a stalled task refusing queued *input* — and among
  // those the downstream-most, where the collapse originates.
  int blamed = -1;
  for (size_t i = 0; i < health.tasks.size(); ++i) {
    const TaskHealth& t = health.tasks[i];
    const bool holds_work = t.backlog > 0 || t.pending_live > 0;
    if (t.tuples_in == last_tuples_[i] && holds_work) {
      if (++no_progress_[i] >= options_.stall_probes) {
        if (blamed < 0 ||
            (t.backlog > 0 &&
             (health.tasks[blamed].backlog == 0 ||
              t.op >= health.tasks[blamed].op))) {
          blamed = static_cast<int>(i);
        }
      }
    } else {
      no_progress_[i] = 0;
    }
    last_tuples_[i] = t.tuples_in;
  }
  if (blamed >= 0) {
    const TaskHealth& t = health.tasks[blamed];
    return "stalled: operator '" + t.op_name + "' replica " +
           std::to_string(t.replica) + " made no progress over " +
           std::to_string(no_progress_[blamed]) +
           " probes while holding work";
  }
  // Stuck-worker detection (pool mode): a heartbeat frozen across
  // consecutive probes while the same worker's run queue holds tasks
  // is a wedged scheduler thread. Idle workers stay off this radar —
  // a parked worker keeps heart-beating because the park timeout
  // (~park_timeout_us) is far below the probe interval, and an empty
  // queue means its tasks were stolen by siblings, which is progress.
  if (health.worker_heartbeats.size() == health.worker_queue_depths.size() &&
      last_heartbeats_.size() == health.worker_heartbeats.size()) {
    int stuck = -1;
    for (size_t w = 0; w < health.worker_heartbeats.size(); ++w) {
      const bool frozen =
          health.worker_heartbeats[w] == last_heartbeats_[w];
      if (frozen && health.worker_queue_depths[w] > 0) {
        if (++worker_no_progress_[w] >= options_.stall_probes &&
            stuck < 0) {
          stuck = static_cast<int>(w);
        }
      } else {
        worker_no_progress_[w] = 0;
      }
      last_heartbeats_[w] = health.worker_heartbeats[w];
    }
    if (stuck >= 0) {
      return "stuck worker " + std::to_string(stuck) +
             ": heartbeat frozen over " +
             std::to_string(worker_no_progress_[stuck]) +
             " probes with " +
             std::to_string(health.worker_queue_depths[stuck]) +
             " tasks queued";
    }
  } else {
    // Worker fleet changed shape (executor restart mid-probe): re-arm.
    last_heartbeats_ = health.worker_heartbeats;
    worker_no_progress_.assign(health.worker_heartbeats.size(), 0);
  }
  return std::string();
}

void Supervisor::Recover(const std::string& cause) {
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryRecord rec;
  rec.at_seconds =
      std::chrono::duration<double>(t0 - started_at_).count();
  rec.cause = cause;

  // Bounded exponential backoff before touching the engine: transient
  // conditions (a migration in flight) get a chance to clear, and
  // repeated failures do not busy-loop the recovery path.
  const double delay =
      std::min(options_.backoff_max_s,
               options_.backoff_initial_s *
                   std::pow(options_.backoff_multiplier, backoff_step_));
  ++backoff_step_;
  if (!SleepFor(delay)) return;

  auto cp = DeserializeCheckpoint(checkpoint_bytes_, checkpoint_plan_);
  Status restored = cp.ok()
                        ? runtime_->Restore(cp.value(), &rec.replayed_tuples)
                        : cp.status();
  rec.succeeded = restored.ok();
  if (!restored.ok()) rec.error = restored.ToString();
  rec.recovery_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  BRISK_LOG(Warn) << "supervisor recovery (" << cause << "): "
                  << (rec.succeeded ? "restored" : rec.error) << " in "
                  << rec.recovery_seconds << " s, replaying "
                  << rec.replayed_tuples << " source tuples";

  // The restored graph starts from the checkpoint; stale stall state
  // must not carry over.
  tracked_epoch_ = -1;

  std::lock_guard<std::mutex> lock(mu_);
  if (rec.succeeded) {
    ++report_.restarts;
    report_.replayed_tuples += rec.replayed_tuples;
  }
  report_.recoveries.push_back(std::move(rec));
}

void Supervisor::Loop() {
  for (;;) {
    if (!SleepFor(options_.heartbeat_interval_s)) return;
    const HealthReport health = runtime_->ProbeHealth();
    // Not running and not dead: the owner stopped the job; nothing to
    // supervise this tick.
    if (!health.running && !health.dead) continue;

    const std::string cause = DetectFailure(health);
    if (cause.empty()) {
      backoff_step_ = 0;  // healthy probe: backoff resets
      if (options_.checkpoint_interval_s > 0 &&
          std::chrono::steady_clock::now() - last_checkpoint_ >=
              std::chrono::duration<double>(
                  options_.checkpoint_interval_s)) {
        const Status cp = TakeCheckpoint();
        if (!cp.ok()) {
          BRISK_LOG(Warn) << "periodic checkpoint failed: "
                          << cp.ToString();
        }
      }
      continue;
    }

    bool circuit_open = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++report_.failures_detected;
      if (report_.restarts >= options_.max_restarts) {
        report_.final_status = Status::Unavailable(
            "supervisor circuit breaker open: " +
            std::to_string(report_.restarts) +
            " restarts exhausted; last failure: " + cause);
        circuit_open = true;
      }
    }
    if (circuit_open) {
      BRISK_LOG(Error) << "supervisor giving up after "
                       << options_.max_restarts << " restarts (" << cause
                       << ")";
      return;  // fail cleanly: no further recovery attempts
    }
    Recover(cause);
  }
}

}  // namespace brisk::engine
