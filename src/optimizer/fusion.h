// Operator fusion — the Appendix D extension ("Taking operator fusion
// as an example, which trades communication cost against pipeline
// parallelism"). Fusing a producer-consumer pair removes the queue and
// the potential RMA between them (the consumer's T_f disappears, the
// pair executes back-to-back in one instance) at the price of a larger
// combined T_e per instance, i.e. coarser pipeline parallelism.
//
// Fusion here is plan-level and semantics-preserving: it is only legal
// when the consumer takes its sole input from the producer over a
// shuffle edge (fields grouping pins keys to replicas; fusing would
// re-partition state) and the producer feeds no one else.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/topology.h"
#include "hardware/machine_spec.h"
#include "model/operator_profile.h"
#include "optimizer/rlas.h"

namespace brisk::opt {

/// A legal producer→consumer fusion opportunity.
struct FusionCandidate {
  int producer_op = -1;
  int consumer_op = -1;
};

/// Finds all pairs where fusion preserves semantics: the producer has
/// exactly one outgoing edge (on its default stream), the consumer
/// exactly one incoming edge, and the edge is shuffle-grouped.
std::vector<FusionCandidate> FindFusionCandidates(const api::Topology& topo);

/// A topology with one fusion applied, plus matching profiles.
struct FusedApp {
  std::shared_ptr<const api::Topology> topology;
  model::ProfileSet profiles;
  std::string fused_name;  ///< "<producer>+<consumer>"
};

/// Rewrites `topo` with `candidate` fused into a single operator whose
/// factory chains the two Process functions in one instance, and
/// derives its profile: T_e' = T_e(p) + sel(p)·T_e(c), selectivity' =
/// sel(p)·sel(c), outputs = consumer's outputs.
StatusOr<FusedApp> FuseOperators(const api::Topology& topo,
                                 const model::ProfileSet& profiles,
                                 const FusionCandidate& candidate);

/// Greedy auto-fusion: repeatedly applies the candidate whose fused
/// plan (RLAS-optimized on `machine`) models the highest throughput,
/// while it improves on the unfused optimum.
struct AutoFuseResult {
  std::shared_ptr<const api::Topology> topology;  ///< final topology
  model::ProfileSet profiles;
  int fusions_applied = 0;
  double baseline_throughput = 0.0;  ///< RLAS optimum, unfused
  double fused_throughput = 0.0;     ///< RLAS optimum, final topology
};

StatusOr<AutoFuseResult> AutoFuse(const api::Topology& topo,
                                  const model::ProfileSet& profiles,
                                  const hw::MachineSpec& machine,
                                  RlasOptions options = {});

}  // namespace brisk::opt
