// Operator fusion — the Appendix D extension ("Taking operator fusion
// as an example, which trades communication cost against pipeline
// parallelism"). Fusing a producer-consumer pair removes the queue and
// the potential RMA between them (the consumer's T_f disappears, the
// pair executes back-to-back in one instance) at the price of a larger
// combined T_e per instance, i.e. coarser pipeline parallelism.
//
// Fusion is N-ary: a fused vertex is a *chain* — the ordered member
// operators are recorded on the OperatorDecl (chain_members), so the
// greedy loop flattens chains instead of nesting pairwise wrappers.
// When every member of a chain is kernel-backed (OperatorDecl::
// kernels, see api/kernels.h) the chain lowers to one compiled
// pipeline (api::KernelBolt) that the engine executes batch at a
// time; otherwise the chain runs interpreted, member Process calls
// back-to-back in one instance.
//
// Fusion here is plan-level and semantics-preserving: it is only legal
// when the consumer takes its sole input from the producer over a
// shuffle edge (fields grouping pins keys to replicas; fusing would
// re-partition state) and the producer feeds no one else.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/topology.h"
#include "hardware/machine_spec.h"
#include "model/operator_profile.h"
#include "optimizer/rlas.h"

namespace brisk::opt {

/// A legal producer→consumer fusion opportunity.
struct FusionCandidate {
  int producer_op = -1;
  int consumer_op = -1;
};

/// Finds all pairs where fusion preserves semantics: the producer has
/// exactly one outgoing edge (on its default stream), the consumer
/// exactly one incoming edge, and the edge is shuffle-grouped.
std::vector<FusionCandidate> FindFusionCandidates(const api::Topology& topo);

/// Cost-model knobs for fusion.
struct FusionOptions {
  /// T_e multiplier applied to a chain that lowers to a compiled
  /// pipeline (all members kernel-backed, consumer-side). The default
  /// 1.0 models plain interpreted fusion; pass
  /// kMeasuredCompiledTeDiscount to model the vectorized win.
  double compiled_te_discount = 1.0;
};

/// Compiled-over-interpreted per-tuple cost ratio measured by
/// bench_pipeline.cc on the reference host (see BENCH_pipeline.json:
/// compiled RunBatch vs row-wise RunRow over the same filter+map
/// chain). Model-level benches use this to price compiled chains.
inline constexpr double kMeasuredCompiledTeDiscount = 0.35;

/// A topology with one fusion applied, plus matching profiles.
struct FusedApp {
  std::shared_ptr<const api::Topology> topology;
  model::ProfileSet profiles;
  std::string fused_name;  ///< members joined with '+'
  std::vector<std::string> members;  ///< chain members, in order
  bool compiled = false;  ///< chain lowered to a compiled pipeline
};

/// Rewrites `topo` with `candidate` fused into a single chain vertex
/// and derives its profile: T_e' = T_e(p) + sel(p)·T_e(c) (times the
/// compiled discount when the chain compiles), selectivity' =
/// sel(p)·sel(c), outputs = consumer's outputs.
StatusOr<FusedApp> FuseOperators(const api::Topology& topo,
                                 const model::ProfileSet& profiles,
                                 const FusionCandidate& candidate,
                                 const FusionOptions& fusion = {});

/// Greedy auto-fusion: repeatedly applies the candidate whose fused
/// plan (RLAS-optimized on `machine`) models the highest throughput,
/// while it improves on the unfused optimum.
struct AutoFuseResult {
  std::shared_ptr<const api::Topology> topology;  ///< final topology
  model::ProfileSet profiles;
  int fusions_applied = 0;
  int compiled_chains = 0;  ///< fused vertices that lowered to kernels
  double baseline_throughput = 0.0;  ///< RLAS optimum, unfused
  double fused_throughput = 0.0;     ///< RLAS optimum, final topology
};

StatusOr<AutoFuseResult> AutoFuse(const api::Topology& topo,
                                  const model::ProfileSet& profiles,
                                  const hw::MachineSpec& machine,
                                  RlasOptions options = {},
                                  FusionOptions fusion = {});

}  // namespace brisk::opt
