#include "optimizer/placement_bb.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <tuple>
#include <vector>

#include "common/logging.h"

namespace brisk::opt {

namespace {

using model::ExecutionPlan;
using model::ModelOptions;
using model::ModelResult;
using model::PerfModel;

/// DFS branch-and-bound solver for one placement problem.
class Solver {
 public:
  Solver(const PerfModel& model, ExecutionPlan plan,
         const PlacementOptions& opts)
      : model_(model),
        plan_(std::move(plan)),
        opts_(opts),
        graph_(CompressedGraph::Build(plan_, opts.compress_ratio)),
        n_sockets_(model.machine().num_sockets()),
        cores_per_socket_(model.machine().cores_per_socket()) {}

  StatusOr<PlacementResult> Run();

 private:
  struct Node {
    std::vector<int16_t> unit_socket;  // -1 = unplaced
    int placed = 0;
  };

  /// Writes a node's unit placement into the shared plan scratch.
  void ApplyToPlan(const Node& node) {
    for (int u = 0; u < graph_.num_units(); ++u) {
      for (const int inst : graph_.units()[u].instance_ids) {
        plan_.SetSocket(inst, node.unit_socket[u]);
      }
    }
  }

  /// Bounding function: throughput upper bound of any completion.
  double Bound(const Node& node) {
    ApplyToPlan(node);
    ModelOptions mo;
    mo.fetch_mode = opts_.fetch_mode;
    mo.allow_unplaced = true;
    auto r = model_.Evaluate(plan_, opts_.input_rate_tps, mo);
    BRISK_CHECK(r.ok()) << r.status().ToString();
    return r->throughput;
  }

  /// Free cores on `socket` under `node`'s partial placement.
  int FreeCores(const Node& node, int socket) const {
    int used = 0;
    for (int u = 0; u < graph_.num_units(); ++u) {
      if (node.unit_socket[u] == socket) used += graph_.units()[u].size();
    }
    return cores_per_socket_ - used;
  }

  bool CanPlace(const Node& node, int unit, int socket) const {
    return FreeCores(node, socket) >= graph_.units()[unit].size();
  }

  /// True when every unit of every producer operator of `op` is placed.
  bool AllProducersPlaced(const Node& node, int op) const {
    for (const int prod_op : graph_.ProducersOf(op)) {
      for (const int u : graph_.UnitsOf(prod_op)) {
        if (node.unit_socket[u] < 0) return false;
      }
    }
    return true;
  }

  /// Sockets worth branching to for `unit`: capacity-feasible, with
  /// redundancy elimination — empty sockets that are indistinguishable
  /// from an already-listed empty socket (identical latency/bandwidth
  /// signature w.r.t. every used socket) are skipped (§4 heuristic 2;
  /// Fig. 5's "S1 is identical to S0 at this point").
  std::vector<int> CandidateSockets(const Node& node, int unit) const {
    std::vector<bool> used(n_sockets_, false);
    for (int u = 0; u < graph_.num_units(); ++u) {
      if (node.unit_socket[u] >= 0) used[node.unit_socket[u]] = true;
    }
    const auto& machine = model_.machine();
    std::vector<int> out;
    std::vector<std::vector<double>> seen_signatures;
    for (int s = 0; s < n_sockets_; ++s) {
      if (!CanPlace(node, unit, s)) continue;
      if (used[s] || !opts_.use_redundancy_elimination) {
        out.push_back(s);
        continue;
      }
      std::vector<double> sig;
      for (int us = 0; us < n_sockets_; ++us) {
        if (!used[us]) continue;
        sig.push_back(machine.LatencyNs(us, s));
        sig.push_back(machine.LatencyNs(s, us));
        sig.push_back(machine.ChannelBandwidthGbps(us, s));
        sig.push_back(machine.ChannelBandwidthGbps(s, us));
      }
      if (std::find(seen_signatures.begin(), seen_signatures.end(), sig) !=
          seen_signatures.end()) {
        continue;  // identical to an empty socket already branched to
      }
      seen_signatures.push_back(std::move(sig));
      out.push_back(s);
    }
    return out;
  }

  /// Best-fit placement of `unit` (all predecessors placed): the socket
  /// maximizing the unit's own processed rate; ties break to the
  /// fullest socket, and only one child is generated (§4 heuristic 2).
  StatusOr<int> BestFitSocket(const Node& node, int unit) {
    const auto& candidates = CandidateSockets(node, unit);
    if (candidates.empty()) {
      return Status::ResourceExhausted("no socket can host unit");
    }
    int best = -1;
    double best_rate = -1.0;
    int best_free = 0;
    for (const int s : candidates) {
      Node child = node;
      child.unit_socket[unit] = static_cast<int16_t>(s);
      ApplyToPlan(child);
      ModelOptions mo;
      mo.fetch_mode = opts_.fetch_mode;
      mo.allow_unplaced = true;
      auto r = model_.Evaluate(plan_, opts_.input_rate_tps, mo);
      BRISK_CHECK(r.ok()) << r.status().ToString();
      double rate = 0.0;
      for (const int inst : graph_.units()[unit].instance_ids) {
        rate += r->instances[inst].processed;
      }
      const int free_after =
          FreeCores(node, s) - graph_.units()[unit].size();
      if (rate > best_rate + 1e-9 ||
          (rate > best_rate - 1e-9 && best >= 0 && free_after < best_free)) {
        best = s;
        best_rate = rate;
        best_free = free_after;
      }
    }
    return best;
  }

  const PerfModel& model_;
  ExecutionPlan plan_;  // scratch: sockets rewritten per evaluation
  const PlacementOptions& opts_;
  CompressedGraph graph_;
  const int n_sockets_;
  const int cores_per_socket_;
};

StatusOr<PlacementResult> Solver::Run() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              opts_.max_seconds > 0 ? opts_.max_seconds : 1e9));
  const int n_units = graph_.num_units();
  {
    // Structural feasibility: total replicas must fit in total cores.
    int total = 0;
    for (const auto& u : graph_.units()) total += u.size();
    if (total > n_sockets_ * cores_per_socket_) {
      return Status::ResourceExhausted(
          "plan needs " + std::to_string(total) + " cores; machine has " +
          std::to_string(n_sockets_ * cores_per_socket_));
    }
  }

  PlacementResult result;
  result.search_complete = true;
  bool have_solution = false;
  double incumbent = -1.0;
  Node best_node;

  if (opts_.seed_with_first_fit) {
    // Appendix D: a valid first-fit plan as the initial incumbent lets
    // the bounding function prune from the very first node.
    Node seed;
    seed.unit_socket.assign(n_units, -1);
    bool ok = true;
    for (int u = 0; u < n_units && ok; ++u) {
      ok = false;
      for (int s = 0; s < n_sockets_; ++s) {
        if (CanPlace(seed, u, s)) {
          seed.unit_socket[u] = static_cast<int16_t>(s);
          ok = true;
          break;
        }
      }
    }
    if (ok) {
      seed.placed = n_units;
      ApplyToPlan(seed);
      ModelOptions mo;
      mo.fetch_mode = opts_.fetch_mode;
      auto r = model_.Evaluate(plan_, opts_.input_rate_tps, mo);
      if (r.ok() && r->feasible()) {
        incumbent = r->throughput;
        best_node = seed;
        have_solution = true;
      }
    }
  }

  std::vector<Node> stack;
  Node root;
  root.unit_socket.assign(n_units, -1);
  stack.push_back(std::move(root));

  while (!stack.empty()) {
    if (result.nodes_explored >= opts_.max_nodes) {
      result.search_complete = false;
      break;
    }
    if ((result.nodes_explored & 0xFF) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      result.search_complete = false;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;

    // Prune against the incumbent (safe: a live node's bound upper-
    // bounds every descendant's value).
    if (opts_.use_pruning && have_solution &&
        Bound(node) <= incumbent + 1e-9) {
      ++result.nodes_pruned;
      continue;
    }

    if (node.placed == n_units) {
      // Candidate solution: valid only if no constraint is violated.
      ApplyToPlan(node);
      ModelOptions mo;
      mo.fetch_mode = opts_.fetch_mode;
      auto r = model_.Evaluate(plan_, opts_.input_rate_tps, mo);
      BRISK_CHECK(r.ok()) << r.status().ToString();
      if (r->feasible() && r->throughput > incumbent) {
        incumbent = r->throughput;
        best_node = node;
        have_solution = true;
      }
      continue;
    }

    // Heuristic 1: take the first collocation decision with an
    // unplaced endpoint; resolved decisions are skipped (discarded).
    // When both endpoints are unplaced the producer goes first (its
    // rate does not depend on the consumer), and the decision is
    // revisited on the next expansion for the consumer.
    int branch_unit = -1;
    for (const auto& d : graph_.decisions()) {
      const bool p_placed = node.unit_socket[d.producer_unit] >= 0;
      const bool c_placed = node.unit_socket[d.consumer_unit] >= 0;
      if (p_placed && c_placed) continue;
      branch_unit = p_placed ? d.consumer_unit : d.producer_unit;
      break;
    }
    if (branch_unit < 0) {
      // No unresolved decision but units remain (operators without
      // edges, e.g. a spout-only topology): place the first unplaced
      // unit; it falls through to the branching below.
      for (int u = 0; u < n_units; ++u) {
        if (node.unit_socket[u] < 0) {
          branch_unit = u;
          break;
        }
      }
    }
    BRISK_CHECK(branch_unit >= 0);

    // Heuristic 2: best-fit when the unit's rate is already fully
    // determined by its predecessors' placement.
    if (opts_.use_best_fit &&
        AllProducersPlaced(node, graph_.units()[branch_unit].op)) {
      auto best = BestFitSocket(node, branch_unit);
      if (!best.ok()) continue;  // dead end: no socket fits
      Node child = node;
      child.unit_socket[branch_unit] = static_cast<int16_t>(*best);
      child.placed = node.placed + 1;
      stack.push_back(std::move(child));
      continue;
    }

    // General branching: one child per candidate socket. Children are
    // pushed so the lowest-id (typically collocated/most-used) socket
    // is explored first, which finds good incumbents early for pruning.
    const auto candidates = CandidateSockets(node, branch_unit);
    if (candidates.empty()) continue;  // dead end
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      Node child = node;
      child.unit_socket[branch_unit] = static_cast<int16_t>(*it);
      child.placed = node.placed + 1;
      stack.push_back(std::move(child));
    }
  }

  if (!have_solution) {
    return Status::ResourceExhausted(
        "no placement satisfies the resource constraints");
  }

  ApplyToPlan(best_node);
  ModelOptions mo;
  mo.fetch_mode = opts_.fetch_mode;
  auto final_eval = model_.Evaluate(plan_, opts_.input_rate_tps, mo);
  BRISK_CHECK(final_eval.ok());
  result.plan = plan_;
  result.model = std::move(*final_eval);
  return result;
}

}  // namespace

StatusOr<PlacementResult> OptimizePlacement(const PerfModel& model,
                                            ExecutionPlan plan,
                                            const PlacementOptions& options) {
  if (options.compress_ratio < 1) {
    return Status::InvalidArgument("compress_ratio must be >= 1");
  }
  Solver solver(model, std::move(plan), options);
  return solver.Run();
}

}  // namespace brisk::opt
