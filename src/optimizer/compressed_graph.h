// Graph compression (heuristic 3, §4): replicas of one operator are
// grouped into "units" of at most `ratio` instances that are placed
// together. ratio = 1 gives instance-granular placement (finest, most
// expensive); the paper uses 5 as a good trade-off (Table 7).
#pragma once

#include <vector>

#include "model/execution_plan.h"

namespace brisk::opt {

/// A placement unit: one or more replicas of the same operator that the
/// B&B schedules as a block.
struct Unit {
  int id = -1;
  int op = -1;
  std::vector<int> instance_ids;  ///< global instance ids in the plan

  int size() const { return static_cast<int>(instance_ids.size()); }
};

/// A collocation decision between a directly-connected producer unit
/// and consumer unit (heuristic 1: placement is considered per edge,
/// not per vertex).
struct Decision {
  int producer_unit = -1;
  int consumer_unit = -1;
};

/// The compressed placement problem for one ExecutionPlan.
class CompressedGraph {
 public:
  /// Groups each operator's replicas into ceil(replication/ratio) units
  /// and materializes the unit-level collocation decision list in
  /// topological producer order.
  static CompressedGraph Build(const model::ExecutionPlan& plan, int ratio);

  const std::vector<Unit>& units() const { return units_; }
  const std::vector<Decision>& decisions() const { return decisions_; }

  int num_units() const { return static_cast<int>(units_.size()); }

  /// Unit ids belonging to operator `op`.
  const std::vector<int>& UnitsOf(int op) const { return units_of_op_[op]; }

  /// Operator ids that feed `op` (unique, from the topology).
  const std::vector<int>& ProducersOf(int op) const {
    return producer_ops_[op];
  }

 private:
  std::vector<Unit> units_;
  std::vector<Decision> decisions_;
  std::vector<std::vector<int>> units_of_op_;
  std::vector<std::vector<int>> producer_ops_;
};

}  // namespace brisk::opt
