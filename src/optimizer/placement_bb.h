// Branch-and-bound placement optimization (Algorithm 2, §4).
//
// Given an ExecutionPlan with fixed replication, searches for the
// placement maximizing modelled throughput subject to Eq. 3–5 and core
// occupancy. Nodes are partial placements of *units* (compressed groups
// of replicas); the bounding function relaxes every unplaced unit to be
// collocated with all of its producers (T_f = 0), which upper-bounds
// any completion. The three §4 heuristics are implemented:
//   1. collocation decisions per producer→consumer edge,
//   2. best-fit with redundancy elimination when all predecessors of a
//      unit are already placed (plus empty-socket symmetry breaking),
//   3. graph compression (see CompressedGraph).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "model/perf_model.h"
#include "optimizer/compressed_graph.h"

namespace brisk::opt {

/// Knobs for one placement search.
struct PlacementOptions {
  /// Heuristic-3 compression ratio (1 = per-replica placement).
  int compress_ratio = 5;
  /// Hard cap on explored nodes; the search returns the incumbent when
  /// exhausted (reported via PlacementResult::search_complete).
  uint64_t max_nodes = 60000;
  /// Wall-clock budget for one placement search; on expiry the best
  /// incumbent found so far is returned (Appendix D reports <5 s per
  /// placement on the paper's DAGs). <= 0 disables the budget.
  double max_seconds = 2.0;
  /// Over-supplied external ingress rate used during optimization
  /// (§5.3: plans are optimized at maximum system capacity).
  double input_rate_tps = 1e12;
  /// Fetch-cost mode the *search* optimizes under. RLAS uses relative
  /// location; the RLAS_fix ablations use the fixed modes.
  model::FetchCostMode fetch_mode = model::FetchCostMode::kRelativeLocation;

  // --- Ablation switches (Appendix D / §6.4 "correctness of
  // heuristics" studies; leave all on for RLAS proper). ---

  /// Heuristic 2a: single-child best-fit when all predecessors of the
  /// unit are placed. Off = branch over every candidate socket.
  bool use_best_fit = true;
  /// Heuristic 2b: skip empty sockets indistinguishable from one
  /// already branched to. Off = branch to every socket with capacity.
  bool use_redundancy_elimination = true;
  /// Bounding-function pruning against the incumbent. Off = exhaustive
  /// DFS within the node/time budget (for measuring pruning power).
  bool use_pruning = true;
  /// Appendix D: seed the incumbent with a first-fit plan so pruning
  /// bites from the first node.
  bool seed_with_first_fit = false;
};

/// Output of a placement search.
struct PlacementResult {
  model::ExecutionPlan plan;       ///< fully placed (valid) plan
  model::ModelResult model;        ///< evaluation under the search's fetch mode
  uint64_t nodes_explored = 0;
  uint64_t nodes_pruned = 0;
  bool search_complete = true;     ///< false if max_nodes was hit
};

/// Runs Algorithm 2. Returns ResourceExhausted when no placement
/// satisfies all constraints (the scaling loop treats that as its
/// termination signal).
StatusOr<PlacementResult> OptimizePlacement(const model::PerfModel& model,
                                            model::ExecutionPlan plan,
                                            const PlacementOptions& options);

}  // namespace brisk::opt
