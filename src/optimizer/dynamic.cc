#include "optimizer/dynamic.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace brisk::opt {

double ProfileDrift(const model::ProfileSet& planned,
                    const model::ProfileSet& observed) {
  double drift = 0.0;
  auto relative = [](double a, double b) {
    if (a == 0.0 && b == 0.0) return 0.0;
    const double denom = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) / denom;
  };
  for (const auto& [name, p] : planned.all()) {
    auto o = observed.Get(name);
    if (!o.ok()) {
      drift = std::max(drift, 1.0);
      continue;
    }
    drift = std::max(drift, relative(p.te_cycles, o->te_cycles));
    const double ps = p.selectivity.empty() ? 1.0 : p.selectivity[0];
    const double os = o->selectivity.empty() ? 1.0 : o->selectivity[0];
    drift = std::max(drift, relative(ps, os));
  }
  for (const auto& [name, o] : observed.all()) {
    (void)o;
    if (!planned.Has(name)) drift = std::max(drift, 1.0);
  }
  return drift;
}

std::string MigrationStep::ToString(const api::Topology& topo) const {
  std::ostringstream os;
  os << topo.op(op).name << "[" << replica << "] ";
  switch (kind) {
    case kMove:
      os << "move S" << from_socket << " -> S" << to_socket;
      break;
    case kStart:
      os << "start on S" << to_socket;
      break;
    case kStop:
      os << "stop on S" << from_socket;
      break;
  }
  return os.str();
}

StatusOr<MigrationPlan> DiffPlans(const model::ExecutionPlan& current,
                                  const model::ExecutionPlan& next) {
  if (&current.topology() != &next.topology()) {
    return Status::InvalidArgument(
        "DiffPlans requires plans over the same topology object");
  }
  MigrationPlan out;
  const int n_ops = current.topology().num_operators();
  for (int op = 0; op < n_ops; ++op) {
    const int old_repl = current.replication(op);
    const int new_repl = next.replication(op);
    const int common = std::min(old_repl, new_repl);
    for (int r = 0; r < common; ++r) {
      const int from = current.SocketOf(current.InstanceId(op, r));
      const int to = next.SocketOf(next.InstanceId(op, r));
      if (from == to) {
        ++out.unchanged;
      } else {
        out.steps.push_back({MigrationStep::kMove, op, r, from, to});
        ++out.moves;
      }
    }
    for (int r = common; r < new_repl; ++r) {
      out.steps.push_back({MigrationStep::kStart, op, r, -1,
                           next.SocketOf(next.InstanceId(op, r))});
      ++out.starts;
    }
    for (int r = common; r < old_repl; ++r) {
      out.steps.push_back({MigrationStep::kStop, op, r,
                           current.SocketOf(current.InstanceId(op, r)),
                           -1});
      ++out.stops;
    }
  }
  return out;
}

StatusOr<ReoptDecision> DynamicReoptimizer::Check(
    const api::Topology& topo, const model::ExecutionPlan& current,
    const model::ProfileSet& planned_profiles,
    const model::ProfileSet& observed_profiles) const {
  ReoptDecision decision;
  decision.drift = ProfileDrift(planned_profiles, observed_profiles);
  if (decision.drift < options_.drift_threshold) return decision;

  // How well would the *current* plan do under the observed workload?
  model::PerfModel observed_model(machine_, &observed_profiles);
  BRISK_ASSIGN_OR_RETURN(
      model::ModelResult current_under_observed,
      observed_model.Evaluate(current, options_.rlas.placement.input_rate_tps));

  // Re-optimize for the observed workload.
  RlasOptimizer optimizer(machine_, &observed_profiles, options_.rlas);
  auto reopt = optimizer.Optimize(topo);
  if (!reopt.ok()) {
    if (reopt.status().IsResourceExhausted()) {
      return decision;  // keep running the current plan
    }
    return reopt.status();
  }

  const double base = current_under_observed.throughput;
  const double gain =
      base > 0 ? (reopt->model.throughput - base) / base : 1.0;
  if (gain < options_.min_gain) return decision;  // not worth switching

  decision.reoptimized = true;
  decision.expected_gain = gain;
  decision.new_plan = reopt->plan;
  decision.new_model = reopt->model;
  BRISK_ASSIGN_OR_RETURN(decision.migration,
                         DiffPlans(current, decision.new_plan));
  return decision;
}

}  // namespace brisk::opt
