#include "optimizer/dynamic.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace brisk::opt {

double ProfileDrift(const model::ProfileSet& planned,
                    const model::ProfileSet& observed) {
  double drift = 0.0;
  auto relative = [](double a, double b) {
    if (a == 0.0 && b == 0.0) return 0.0;
    const double denom = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) / denom;
  };
  for (const auto& [name, p] : planned.all()) {
    auto o = observed.Get(name);
    if (!o.ok()) {
      drift = std::max(drift, 1.0);
      continue;
    }
    drift = std::max(drift, relative(p.te_cycles, o->te_cycles));
    const double ps = p.selectivity.empty() ? 1.0 : p.selectivity[0];
    const double os = o->selectivity.empty() ? 1.0 : o->selectivity[0];
    drift = std::max(drift, relative(ps, os));
  }
  for (const auto& [name, o] : observed.all()) {
    (void)o;
    if (!planned.Has(name)) drift = std::max(drift, 1.0);
  }
  return drift;
}

std::string MigrationStep::ToString(const api::Topology& topo) const {
  std::ostringstream os;
  os << topo.op(op).name << "[" << replica << "] ";
  switch (kind) {
    case kMove:
      os << "move S" << from_socket << " -> S" << to_socket;
      break;
    case kStart:
      os << "start on S" << to_socket;
      break;
    case kStop:
      os << "stop on S" << from_socket;
      break;
  }
  return os.str();
}

StatusOr<MigrationPlan> DiffPlans(const model::ExecutionPlan& current,
                                  const model::ExecutionPlan& next) {
  if (&current.topology() != &next.topology()) {
    return Status::InvalidArgument(
        "DiffPlans requires plans over the same topology object");
  }
  MigrationPlan out;
  const int n_ops = current.topology().num_operators();
  for (int op = 0; op < n_ops; ++op) {
    const int old_repl = current.replication(op);
    const int new_repl = next.replication(op);
    const int common = std::min(old_repl, new_repl);
    for (int r = 0; r < common; ++r) {
      const int from = current.SocketOf(current.InstanceId(op, r));
      const int to = next.SocketOf(next.InstanceId(op, r));
      if (from == to) {
        ++out.unchanged;
      } else {
        out.steps.push_back({MigrationStep::kMove, op, r, from, to});
        ++out.moves;
      }
    }
    for (int r = common; r < new_repl; ++r) {
      out.steps.push_back({MigrationStep::kStart, op, r, -1,
                           next.SocketOf(next.InstanceId(op, r))});
      ++out.starts;
    }
    for (int r = common; r < old_repl; ++r) {
      out.steps.push_back({MigrationStep::kStop, op, r,
                           current.SocketOf(current.InstanceId(op, r)),
                           -1});
      ++out.stops;
    }
  }
  return out;
}

StatusOr<model::ExecutionPlan> ApplyStepsToPlan(
    const model::ExecutionPlan& current, const MigrationPlan& migration) {
  const api::Topology& topo = current.topology();
  const int n_ops = topo.num_operators();
  std::vector<int> replication = current.replication();
  std::vector<int> starts(n_ops, 0), stops(n_ops, 0);
  for (const MigrationStep& s : migration.steps) {
    if (s.op < 0 || s.op >= n_ops) {
      return Status::InvalidArgument("migration step names operator " +
                                     std::to_string(s.op) +
                                     " outside the topology");
    }
    if (s.kind == MigrationStep::kStart) ++starts[s.op];
    if (s.kind == MigrationStep::kStop) ++stops[s.op];
  }
  for (int op = 0; op < n_ops; ++op) {
    if (starts[op] > 0 && stops[op] > 0) {
      return Status::InvalidArgument(
          "migration both starts and stops replicas of '" +
          topo.op(op).name + "'");
    }
    replication[op] += starts[op] - stops[op];
    if (replication[op] < 1) {
      return Status::InvalidArgument("migration stops every replica of '" +
                                     topo.op(op).name + "'");
    }
  }

  BRISK_ASSIGN_OR_RETURN(model::ExecutionPlan next,
                         model::ExecutionPlan::Create(&topo, replication));
  // Unchanged replicas keep their current socket; steps override.
  for (int op = 0; op < n_ops; ++op) {
    const int common = std::min(current.replication(op), replication[op]);
    for (int r = 0; r < common; ++r) {
      next.SetSocket(next.InstanceId(op, r),
                     current.SocketOf(current.InstanceId(op, r)));
    }
  }
  for (const MigrationStep& s : migration.steps) {
    const int old_repl = current.replication(s.op);
    const int new_repl = replication[s.op];
    switch (s.kind) {
      case MigrationStep::kMove: {
        if (s.replica < 0 || s.replica >= std::min(old_repl, new_repl)) {
          return Status::InvalidArgument(
              "move step for '" + topo.op(s.op).name + "' replica " +
              std::to_string(s.replica) + " outside the surviving range");
        }
        const int at = current.SocketOf(current.InstanceId(s.op, s.replica));
        if (s.from_socket != at) {
          return Status::InvalidArgument(
              "move step for '" + topo.op(s.op).name + "' expects socket " +
              std::to_string(s.from_socket) + " but the replica runs on " +
              std::to_string(at));
        }
        next.SetSocket(next.InstanceId(s.op, s.replica), s.to_socket);
        break;
      }
      case MigrationStep::kStart:
        if (s.replica < old_repl || s.replica >= new_repl) {
          return Status::InvalidArgument(
              "start step for '" + topo.op(s.op).name + "' replica " +
              std::to_string(s.replica) + " is not at the replica tail");
        }
        next.SetSocket(next.InstanceId(s.op, s.replica), s.to_socket);
        break;
      case MigrationStep::kStop:
        if (s.replica < new_repl || s.replica >= old_repl) {
          return Status::InvalidArgument(
              "stop step for '" + topo.op(s.op).name + "' replica " +
              std::to_string(s.replica) + " is not at the replica tail");
        }
        break;
    }
  }
  if (!next.FullyPlaced()) {
    return Status::InvalidArgument(
        "migration leaves started replicas without a socket");
  }
  return next;
}

StatusOr<ReoptDecision> DynamicReoptimizer::Check(
    const api::Topology& topo, const model::ExecutionPlan& current,
    const model::ProfileSet& planned_profiles,
    const model::ProfileSet& observed_profiles) const {
  ReoptDecision decision;
  decision.drift = ProfileDrift(planned_profiles, observed_profiles);
  if (decision.drift < options_.drift_threshold) return decision;

  // How well would the *current* plan do under the observed workload?
  model::PerfModel observed_model(machine_, &observed_profiles);
  BRISK_ASSIGN_OR_RETURN(
      model::ModelResult current_under_observed,
      observed_model.Evaluate(current, options_.rlas.placement.input_rate_tps));

  // Re-optimize for the observed workload.
  RlasOptimizer optimizer(machine_, &observed_profiles, options_.rlas);
  auto reopt = optimizer.Optimize(topo);
  if (!reopt.ok()) {
    if (reopt.status().IsResourceExhausted()) {
      return decision;  // keep running the current plan
    }
    return reopt.status();
  }

  const double base = current_under_observed.throughput;
  const double gain =
      base > 0 ? (reopt->model.throughput - base) / base : 1.0;
  if (gain < options_.min_gain) return decision;  // not worth switching

  decision.reoptimized = true;
  decision.expected_gain = gain;
  decision.new_plan = reopt->plan;
  decision.new_model = reopt->model;
  BRISK_ASSIGN_OR_RETURN(decision.migration,
                         DiffPlans(current, decision.new_plan));
  return decision;
}

}  // namespace brisk::opt
