// Dynamic re-optimization (§5.3): "In practical scenarios, stream rate
// as well as its characteristics can vary over time, and the
// application needs to be re-optimized in response to workload
// changes."
//
// This module provides the three pieces of that loop:
//   1. drift detection — compare the profiles the running plan was
//      optimized for against freshly observed statistics;
//   2. re-optimization — run RLAS against the observed profiles;
//   3. migration planning — diff the old and new plans into the
//      minimal set of instance moves / starts / stops, so a deployer
//      can judge the disruption before switching.
#pragma once

#include <string>
#include <vector>

#include "api/topology.h"
#include "model/execution_plan.h"
#include "model/operator_profile.h"
#include "optimizer/rlas.h"

namespace brisk::opt {

/// Relative drift between two profile sets: the maximum over operators
/// of the relative change in T_e and in first-stream selectivity.
/// Returns 0 when identical; operators missing on either side count as
/// full (1.0) drift.
double ProfileDrift(const model::ProfileSet& planned,
                    const model::ProfileSet& observed);

/// One instance-level action in a plan switch.
struct MigrationStep {
  enum Kind { kMove, kStart, kStop } kind;
  int op = -1;
  int replica = 0;
  int from_socket = -1;  ///< kMove/kStop
  int to_socket = -1;    ///< kMove/kStart
  std::string ToString(const api::Topology& topo) const;
};

/// The difference between two plans over the same topology.
struct MigrationPlan {
  std::vector<MigrationStep> steps;
  int moves = 0;    ///< relocated replicas (state must transfer)
  int starts = 0;   ///< newly created replicas
  int stops = 0;    ///< retired replicas
  int unchanged = 0;

  bool empty() const { return steps.empty(); }
};

/// Computes the instance-level diff (replicas are matched by
/// (operator, replica index), the stable identity the engine uses).
StatusOr<MigrationPlan> DiffPlans(const model::ExecutionPlan& current,
                                  const model::ExecutionPlan& next);

/// Reconstructs the target plan a migration describes: applies kMove /
/// kStart / kStop steps to `current` and returns the resulting plan.
/// Validates that the steps are consistent with `current` (moves name
/// the occupied socket, starts/stops are contiguous at the replica
/// tail, no op both starts and stops), so for any two plans over the
/// same topology, ApplyStepsToPlan(a, DiffPlans(a, b)) == b. This is
/// what lets a live engine, which only remembers the plan it is
/// running, execute a MigrationPlan without being handed the new plan
/// object.
StatusOr<model::ExecutionPlan> ApplyStepsToPlan(
    const model::ExecutionPlan& current, const MigrationPlan& migration);

/// Outcome of one reoptimization check.
struct ReoptDecision {
  bool reoptimized = false;
  double drift = 0.0;
  /// Valid when reoptimized: the new plan and how to get there.
  model::ExecutionPlan new_plan;
  model::ModelResult new_model;
  MigrationPlan migration;
  /// Expected relative throughput gain of switching (>= 0).
  double expected_gain = 0.0;
};

/// Policy knobs for the controller.
struct DynamicOptions {
  /// Re-optimize only when drift exceeds this fraction.
  double drift_threshold = 0.15;
  /// Adopt the new plan only when its modeled throughput beats the
  /// current plan's (re-evaluated under observed profiles) by this
  /// fraction — switching has a cost (§5.3's motivation for cheap
  /// heuristics; we make the trade-off explicit instead).
  double min_gain = 0.05;

  // Damping for the closed observe → check → migrate loop (consumed by
  // the Job autopilot, not by Check itself, which is stateless).
  // Windowed T_e observations on a busy host jitter 20–30% while true
  // workload drift (selectivity, sustained cost shifts) persists
  // across windows; without damping the controller reads the noise as
  // drift and flaps — migrating every interval forever.

  /// Exponential smoothing factor for observed profiles across
  /// windows: smoothed = alpha * window + (1 - alpha) * smoothed.
  /// 1 = trust each raw window (no smoothing).
  double observation_ewma_alpha = 0.4;
  /// Observation windows to sit out after an applied migration before
  /// checking again, so the rebuilt engine's warm-up (fresh batch
  /// pools, repartitioned state, new worker assignment) is not read as
  /// fresh drift.
  int settle_windows = 2;

  RlasOptions rlas;
};

/// Decides whether to re-optimize `current` given freshly observed
/// profiles, and if so produces the new plan + migration.
class DynamicReoptimizer {
 public:
  DynamicReoptimizer(const hw::MachineSpec* machine, DynamicOptions options)
      : machine_(machine), options_(std::move(options)) {}

  StatusOr<ReoptDecision> Check(const api::Topology& topo,
                                const model::ExecutionPlan& current,
                                const model::ProfileSet& planned_profiles,
                                const model::ProfileSet& observed_profiles)
      const;

 private:
  const hw::MachineSpec* machine_;
  DynamicOptions options_;
};

}  // namespace brisk::opt
