#include "optimizer/fusion.h"

#include <algorithm>
#include <utility>

#include "api/pipeline.h"
#include "common/logging.h"

namespace brisk::opt {

namespace {

/// Collector that feeds a producer's emissions straight into the
/// downstream operator within the same instance (no queue, no T_f).
class InlineCollector : public api::OutputCollector {
 public:
  InlineCollector(api::Operator* downstream, api::OutputCollector* out)
      : downstream_(downstream), out_(out) {}

  void Emit(Tuple t) override { downstream_->Process(t, out_); }
  void EmitTo(uint16_t stream_id, Tuple t) override {
    // Fusion legality restricts the producer to a single (default)
    // output stream.
    (void)stream_id;
    downstream_->Process(t, out_);
  }

 private:
  api::Operator* downstream_;
  api::OutputCollector* out_;
};

/// N member bolts executing back-to-back in one instance — the
/// interpreted lowering of a fused chain. Used whenever at least one
/// member is not kernel-backed (fully kernel-backed chains lower to
/// api::KernelBolt instead).
class FusedChainBolt : public api::Operator {
 public:
  explicit FusedChainBolt(
      const std::vector<api::OperatorFactory>& factories) {
    members_.reserve(factories.size());
    for (const auto& f : factories) members_.push_back(f());
  }

  Status Prepare(const api::OperatorContext& ctx) override {
    for (auto& m : members_) BRISK_RETURN_NOT_OK(m->Prepare(ctx));
    return Status::OK();
  }

  void Process(const Tuple& in, api::OutputCollector* out) override {
    ProcessFrom(0, in, out);
  }

  void Flush(api::OutputCollector* out) override {
    // Member i's final emissions still travel through members i+1..n —
    // the order a pairwise FusedBolt flushed in, generalized.
    for (size_t i = 0; i < members_.size(); ++i) {
      StepCollector step(this, i + 1, out);
      members_[i]->Flush(&step);
    }
  }

  std::vector<api::KeyedStateEntry> ExportKeyedState() override {
    std::vector<api::KeyedStateEntry> all;
    for (auto& m : members_) {
      auto part = m->ExportKeyedState();
      for (auto& e : part) all.push_back(std::move(e));
    }
    return all;
  }

  void ImportKeyedState(std::vector<api::KeyedStateEntry> entries) override {
    // Every member sees every entry; stateless members ignore them. At
    // most one chain member is stateful (a second aggregate would need
    // a fields-grouped input, which fusion legality excludes), so no
    // member ever casts another's state.
    for (size_t i = 0; i + 1 < members_.size(); ++i) {
      members_[i]->ImportKeyedState(entries);
    }
    members_.back()->ImportKeyedState(std::move(entries));
  }

  std::vector<api::CheckpointEntry> SnapshotKeyedState() override {
    std::vector<api::CheckpointEntry> all;
    for (auto& m : members_) {
      auto part = m->SnapshotKeyedState();
      for (auto& e : part) all.push_back(std::move(e));
    }
    return all;
  }

  void RestoreKeyedState(std::vector<api::CheckpointEntry> entries) override {
    // Same fan-out as ImportKeyedState: at most one member is stateful.
    for (size_t i = 0; i + 1 < members_.size(); ++i) {
      members_[i]->RestoreKeyedState(entries);
    }
    members_.back()->RestoreKeyedState(std::move(entries));
  }

 private:
  /// Forwards emissions of member `next-1` into member `next` (or the
  /// real collector past the end). Intermediate named streams collapse
  /// onto the chain, as with InlineCollector.
  class StepCollector : public api::OutputCollector {
   public:
    StepCollector(FusedChainBolt* chain, size_t next,
                  api::OutputCollector* out)
        : chain_(chain), next_(next), out_(out) {}

    void Emit(Tuple t) override {
      if (next_ >= chain_->members_.size()) {
        out_->Emit(std::move(t));
      } else {
        chain_->ProcessFrom(next_, t, out_);
      }
    }
    void EmitTo(uint16_t stream_id, Tuple t) override {
      if (next_ >= chain_->members_.size()) {
        out_->EmitTo(stream_id, std::move(t));
      } else {
        chain_->ProcessFrom(next_, t, out_);
      }
    }

   private:
    FusedChainBolt* chain_;
    size_t next_;
    api::OutputCollector* out_;
  };

  void ProcessFrom(size_t idx, const Tuple& t, api::OutputCollector* out) {
    StepCollector step(this, idx + 1, out);
    members_[idx]->Process(t, &step);
  }

  std::vector<std::unique_ptr<api::Operator>> members_;
};

/// A spout fused with a chain of bolts (spout-rooted chains always run
/// interpreted: the spout produces row-wise, so there is no batch to
/// vectorize over before the first queue).
class FusedChainSpout : public api::Spout {
 public:
  FusedChainSpout(const api::SpoutFactory& head,
                  const std::vector<api::OperatorFactory>& bolts)
      : head_(head()),
        chain_(std::make_unique<FusedChainBolt>(bolts)) {}

  Status Prepare(const api::OperatorContext& ctx) override {
    BRISK_RETURN_NOT_OK(head_->Prepare(ctx));
    return chain_->Prepare(ctx);
  }

  size_t NextBatch(size_t max_tuples, api::OutputCollector* out) override {
    InlineCollector inline_out(chain_.get(), out);
    return head_->NextBatch(max_tuples, &inline_out);
  }

  // Replay rides on the head spout; the fused bolts are downstream of
  // the replay point and simply re-process the replayed tuples.
  bool Replayable() const override { return head_->Replayable(); }
  bool Exhausted() const override { return head_->Exhausted(); }
  api::SourcePosition Position() const override { return head_->Position(); }
  bool Rewind(const api::SourcePosition& position) override {
    return head_->Rewind(position);
  }
  Status CheckpointGuard() const override {
    return head_->CheckpointGuard();
  }

 private:
  std::unique_ptr<api::Spout> head_;
  std::unique_ptr<FusedChainBolt> chain_;
};

/// Logical members a vertex stands for ({itself} when not fused).
std::vector<std::string> MembersOf(const api::OperatorDecl& op) {
  if (!op.chain_members.empty()) return op.chain_members;
  return {op.name};
}

/// Member bolt factories of a vertex, in chain order.
std::vector<api::OperatorFactory> BoltsOf(const api::OperatorDecl& op) {
  if (!op.chain_members.empty()) return op.chain_bolts;
  if (op.is_spout) return {};
  return {op.bolt_factory};
}

/// Re-declares metadata a rebuild would otherwise drop (kernel chains
/// survive greedy rounds through this).
void CarryDeclMetadata(api::TopologyBuilder::BoltDeclarer decl,
                       const api::OperatorDecl& op) {
  if (!op.kernels.empty()) decl.WithKernels(op.kernels);
  if (!op.chain_members.empty()) {
    decl.WithChain(op.chain_members, op.chain_bolts);
  }
}

}  // namespace

std::vector<FusionCandidate> FindFusionCandidates(const api::Topology& topo) {
  std::vector<FusionCandidate> out;
  for (const auto& op : topo.ops()) {
    const auto out_edges = topo.OutEdges(op.id);
    if (out_edges.size() != 1) continue;
    const auto& e = out_edges[0];
    if (e.stream_id != 0) continue;  // producer must use its default stream
    if (e.grouping != api::GroupingType::kShuffle) continue;
    if (topo.InEdges(e.consumer_op).size() != 1) continue;
    if (topo.op(e.consumer_op).is_spout) continue;  // impossible, defensive
    out.push_back({op.id, e.consumer_op});
  }
  return out;
}

StatusOr<FusedApp> FuseOperators(const api::Topology& topo,
                                 const model::ProfileSet& profiles,
                                 const FusionCandidate& candidate,
                                 const FusionOptions& fusion) {
  const int p = candidate.producer_op;
  const int c = candidate.consumer_op;
  if (p < 0 || p >= topo.num_operators() || c < 0 ||
      c >= topo.num_operators()) {
    return Status::InvalidArgument("fusion candidate out of range");
  }
  // Revalidate legality against this topology.
  const auto legal = FindFusionCandidates(topo);
  if (std::none_of(legal.begin(), legal.end(), [&](const auto& f) {
        return f.producer_op == p && f.consumer_op == c;
      })) {
    return Status::FailedPrecondition(
        "fusing '" + topo.op(p).name + "' -> '" + topo.op(c).name +
        "' would not preserve semantics");
  }

  const auto& prod = topo.op(p);
  const auto& cons = topo.op(c);
  const std::string fused_name = prod.name + "+" + cons.name;

  // Chain composition: members flatten (fusing an already-fused vertex
  // extends its chain instead of nesting wrappers).
  std::vector<std::string> members = MembersOf(prod);
  for (auto& m : MembersOf(cons)) members.push_back(std::move(m));
  std::vector<api::OperatorFactory> member_bolts = BoltsOf(prod);
  for (auto& f : BoltsOf(cons)) member_bolts.push_back(std::move(f));

  // The chain compiles when it is consumer-side and every member is
  // kernel-backed: the kernel sequences concatenate into one pipeline.
  const bool compiled =
      !prod.is_spout && !prod.kernels.empty() && !cons.kernels.empty();
  std::vector<api::KernelDesc> fused_kernels;
  if (compiled) {
    fused_kernels = prod.kernels;
    for (const auto& k : cons.kernels) fused_kernels.push_back(k);
  }

  // Map old op id -> new operator name (the pair maps to fused_name).
  auto new_name = [&](int op) -> std::string {
    if (op == p || op == c) return fused_name;
    return topo.op(op).name;
  };

  // Rebuild the topology with the pair collapsed: the fused operator
  // inherits the producer's inputs and the consumer's outputs; the
  // internal p->c edge vanishes.
  api::TopologyBuilder b2(topo.name() + "-fused");
  auto declare_subs = [&](api::TopologyBuilder::BoltDeclarer decl,
                          int old_op) {
    const auto in_edges =
        old_op == p ? topo.InEdges(p) : topo.InEdges(old_op);
    for (const auto& e : in_edges) {
      const std::string producer_name = new_name(e.producer_op);
      // Stream id mapping: the fused operator's streams are the
      // consumer's; other operators keep their own.
      std::string stream;
      if (e.producer_op == c) {
        stream = cons.output_streams[e.stream_id];
      } else if (e.producer_op == p) {
        continue;  // the fused-away internal edge
      } else {
        stream = topo.op(e.producer_op).output_streams[e.stream_id];
      }
      switch (e.grouping) {
        case api::GroupingType::kShuffle:
          decl.ShuffleFrom(producer_name, stream);
          break;
        case api::GroupingType::kFields:
          decl.FieldsFrom(producer_name, e.key_field, stream);
          break;
        case api::GroupingType::kBroadcast:
          decl.BroadcastFrom(producer_name, stream);
          break;
        case api::GroupingType::kGlobal:
          decl.GlobalFrom(producer_name, stream);
          break;
      }
    }
  };

  for (const auto& op : topo.ops()) {
    if (op.id == c) continue;
    if (op.id == p) {
      if (prod.is_spout) {
        api::SpoutFactory head =
            prod.chain_spout ? prod.chain_spout : prod.spout_factory;
        auto decl = b2.AddSpout(
            fused_name,
            [head, member_bolts] {
              return std::make_unique<FusedChainSpout>(head, member_bolts);
            },
            prod.base_parallelism);
        for (size_t s = 1; s < cons.output_streams.size(); ++s) {
          decl.DeclareStream(cons.output_streams[s]);
        }
        decl.WithChain(members, head, member_bolts);
      } else {
        api::OperatorFactory factory;
        if (compiled) {
          factory = [ks = fused_kernels]() -> std::unique_ptr<api::Operator> {
            return std::make_unique<api::KernelBolt>(ks);
          };
        } else {
          factory = [member_bolts]() -> std::unique_ptr<api::Operator> {
            return std::make_unique<FusedChainBolt>(member_bolts);
          };
        }
        auto decl = b2.AddBolt(fused_name, std::move(factory),
                               prod.base_parallelism);
        for (size_t s = 1; s < cons.output_streams.size(); ++s) {
          decl.DeclareStream(cons.output_streams[s]);
        }
        decl.WithChain(members, member_bolts);
        if (compiled) decl.WithKernels(fused_kernels);
        declare_subs(decl, p);
      }
      continue;
    }
    if (op.is_spout) {
      auto decl = b2.AddSpout(op.name, op.spout_factory,
                              op.base_parallelism);
      for (size_t s = 1; s < op.output_streams.size(); ++s) {
        decl.DeclareStream(op.output_streams[s]);
      }
      if (!op.chain_members.empty()) {
        decl.WithChain(op.chain_members, op.chain_spout, op.chain_bolts);
      }
    } else {
      auto decl = b2.AddBolt(op.name, op.bolt_factory, op.base_parallelism);
      for (size_t s = 1; s < op.output_streams.size(); ++s) {
        decl.DeclareStream(op.output_streams[s]);
      }
      CarryDeclMetadata(decl, op);
      // Consumers of the fused pair re-point edges from c to the fused
      // name; declare_subs handles the renaming via new_name().
      declare_subs(decl, op.id);
    }
  }

  BRISK_ASSIGN_OR_RETURN(api::Topology fused, std::move(b2).Build());

  // Derived profile: per input tuple the fused instance runs the
  // producer once and the consumer sel(p) times. A compiled chain's
  // combined T_e shrinks by the measured vectorization discount.
  BRISK_ASSIGN_OR_RETURN(model::OperatorProfile pp, profiles.Get(prod.name));
  BRISK_ASSIGN_OR_RETURN(model::OperatorProfile cp, profiles.Get(cons.name));
  const double sel_p = pp.selectivity.empty() ? 1.0 : pp.selectivity[0];
  model::OperatorProfile fused_profile;
  fused_profile.te_cycles = pp.te_cycles + sel_p * cp.te_cycles;
  if (compiled) fused_profile.te_cycles *= fusion.compiled_te_discount;
  fused_profile.m_bytes = pp.m_bytes + sel_p * cp.m_bytes;
  fused_profile.output_bytes = cp.output_bytes;
  fused_profile.selectivity.clear();
  for (const double s : cp.selectivity) {
    fused_profile.selectivity.push_back(sel_p * s);
  }

  FusedApp result;
  result.fused_name = fused_name;
  result.members = std::move(members);
  result.compiled = compiled;
  for (const auto& [name, profile] : profiles.all()) {
    if (name == prod.name || name == cons.name) continue;
    result.profiles.Set(name, profile);
  }
  result.profiles.Set(fused_name, fused_profile);
  result.topology = std::make_shared<api::Topology>(std::move(fused));
  return result;
}

StatusOr<AutoFuseResult> AutoFuse(const api::Topology& topo,
                                  const model::ProfileSet& profiles,
                                  const hw::MachineSpec& machine,
                                  RlasOptions options, FusionOptions fusion) {
  AutoFuseResult result;
  result.topology = std::make_shared<api::Topology>(topo);
  result.profiles = profiles;

  RlasOptimizer optimizer(&machine, &result.profiles, options);
  BRISK_ASSIGN_OR_RETURN(RlasResult base,
                         optimizer.Optimize(*result.topology));
  result.baseline_throughput = base.model.throughput;
  result.fused_throughput = base.model.throughput;

  // Greedy loop: apply the best-improving fusion until none improves.
  while (true) {
    const auto candidates = FindFusionCandidates(*result.topology);
    double best_tput = result.fused_throughput;
    std::shared_ptr<const api::Topology> best_topo;
    model::ProfileSet best_profiles;
    bool best_compiled = false;
    for (const auto& candidate : candidates) {
      auto fused = FuseOperators(*result.topology, result.profiles,
                                 candidate, fusion);
      if (!fused.ok()) continue;
      RlasOptimizer opt(&machine, &fused->profiles, options);
      auto plan = opt.Optimize(*fused->topology);
      if (!plan.ok()) continue;
      if (plan->model.throughput > best_tput * 1.001) {
        best_tput = plan->model.throughput;
        best_topo = fused->topology;
        best_profiles = fused->profiles;
        best_compiled = fused->compiled;
      }
    }
    if (!best_topo) break;
    result.topology = std::move(best_topo);
    result.profiles = std::move(best_profiles);
    result.fused_throughput = best_tput;
    ++result.fusions_applied;
    if (best_compiled) ++result.compiled_chains;
  }
  return result;
}

}  // namespace brisk::opt
