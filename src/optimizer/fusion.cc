#include "optimizer/fusion.h"

#include <algorithm>

#include "common/logging.h"

namespace brisk::opt {

namespace {

/// Collector that feeds a producer's emissions straight into the
/// downstream operator within the same instance (no queue, no T_f).
class InlineCollector : public api::OutputCollector {
 public:
  InlineCollector(api::Operator* downstream, api::OutputCollector* out)
      : downstream_(downstream), out_(out) {}

  void Emit(Tuple t) override { downstream_->Process(t, out_); }
  void EmitTo(uint16_t stream_id, Tuple t) override {
    // Fusion legality restricts the producer to a single (default)
    // output stream.
    (void)stream_id;
    downstream_->Process(t, out_);
  }

 private:
  api::Operator* downstream_;
  api::OutputCollector* out_;
};

/// Two bolts executing back-to-back in one instance.
class FusedBolt : public api::Operator {
 public:
  FusedBolt(std::unique_ptr<api::Operator> up,
            std::unique_ptr<api::Operator> down)
      : up_(std::move(up)), down_(std::move(down)) {}

  Status Prepare(const api::OperatorContext& ctx) override {
    BRISK_RETURN_NOT_OK(up_->Prepare(ctx));
    return down_->Prepare(ctx);
  }

  void Process(const Tuple& in, api::OutputCollector* out) override {
    InlineCollector inline_out(down_.get(), out);
    up_->Process(in, &inline_out);
  }

  void Flush(api::OutputCollector* out) override {
    InlineCollector inline_out(down_.get(), out);
    up_->Flush(&inline_out);
    down_->Flush(out);
  }

 private:
  std::unique_ptr<api::Operator> up_;
  std::unique_ptr<api::Operator> down_;
};

/// A spout fused with its first bolt.
class FusedSpout : public api::Spout {
 public:
  FusedSpout(std::unique_ptr<api::Spout> up,
             std::unique_ptr<api::Operator> down)
      : up_(std::move(up)), down_(std::move(down)) {}

  Status Prepare(const api::OperatorContext& ctx) override {
    BRISK_RETURN_NOT_OK(up_->Prepare(ctx));
    return down_->Prepare(ctx);
  }

  size_t NextBatch(size_t max_tuples, api::OutputCollector* out) override {
    InlineCollector inline_out(down_.get(), out);
    return up_->NextBatch(max_tuples, &inline_out);
  }

 private:
  std::unique_ptr<api::Spout> up_;
  std::unique_ptr<api::Operator> down_;
};

}  // namespace

std::vector<FusionCandidate> FindFusionCandidates(const api::Topology& topo) {
  std::vector<FusionCandidate> out;
  for (const auto& op : topo.ops()) {
    const auto out_edges = topo.OutEdges(op.id);
    if (out_edges.size() != 1) continue;
    const auto& e = out_edges[0];
    if (e.stream_id != 0) continue;  // producer must use its default stream
    if (e.grouping != api::GroupingType::kShuffle) continue;
    if (topo.InEdges(e.consumer_op).size() != 1) continue;
    if (topo.op(e.consumer_op).is_spout) continue;  // impossible, defensive
    out.push_back({op.id, e.consumer_op});
  }
  return out;
}

StatusOr<FusedApp> FuseOperators(const api::Topology& topo,
                                 const model::ProfileSet& profiles,
                                 const FusionCandidate& candidate) {
  const int p = candidate.producer_op;
  const int c = candidate.consumer_op;
  if (p < 0 || p >= topo.num_operators() || c < 0 ||
      c >= topo.num_operators()) {
    return Status::InvalidArgument("fusion candidate out of range");
  }
  // Revalidate legality against this topology.
  const auto legal = FindFusionCandidates(topo);
  if (std::none_of(legal.begin(), legal.end(), [&](const auto& f) {
        return f.producer_op == p && f.consumer_op == c;
      })) {
    return Status::FailedPrecondition(
        "fusing '" + topo.op(p).name + "' -> '" + topo.op(c).name +
        "' would not preserve semantics");
  }

  const auto& prod = topo.op(p);
  const auto& cons = topo.op(c);
  const std::string fused_name = prod.name + "+" + cons.name;

  // Map old op id -> new operator name (the pair maps to fused_name).
  auto new_name = [&](int op) -> std::string {
    if (op == p || op == c) return fused_name;
    return topo.op(op).name;
  };

  // Rebuild the topology with the pair collapsed: the fused operator
  // inherits the producer's inputs and the consumer's outputs; the
  // internal p->c edge vanishes.
  api::TopologyBuilder b2(topo.name() + "-fused");
  auto declare_subs = [&](api::TopologyBuilder::BoltDeclarer decl,
                          int old_op) {
    const auto in_edges =
        old_op == p ? topo.InEdges(p) : topo.InEdges(old_op);
    for (const auto& e : in_edges) {
      const std::string producer_name = new_name(e.producer_op);
      // Stream id mapping: the fused operator's streams are the
      // consumer's; other operators keep their own.
      std::string stream;
      if (e.producer_op == c) {
        stream = cons.output_streams[e.stream_id];
      } else if (e.producer_op == p) {
        continue;  // the fused-away internal edge
      } else {
        stream = topo.op(e.producer_op).output_streams[e.stream_id];
      }
      switch (e.grouping) {
        case api::GroupingType::kShuffle:
          decl.ShuffleFrom(producer_name, stream);
          break;
        case api::GroupingType::kFields:
          decl.FieldsFrom(producer_name, e.key_field, stream);
          break;
        case api::GroupingType::kBroadcast:
          decl.BroadcastFrom(producer_name, stream);
          break;
        case api::GroupingType::kGlobal:
          decl.GlobalFrom(producer_name, stream);
          break;
      }
    }
  };

  for (const auto& op : topo.ops()) {
    if (op.id == c) continue;
    if (op.id == p) {
      if (prod.is_spout) {
        auto spout_factory = prod.spout_factory;
        auto bolt_factory = cons.bolt_factory;
        auto decl = b2.AddSpout(
            fused_name,
            [spout_factory, bolt_factory] {
              return std::make_unique<FusedSpout>(spout_factory(),
                                                  bolt_factory());
            },
            prod.base_parallelism);
        for (size_t s = 1; s < cons.output_streams.size(); ++s) {
          decl.DeclareStream(cons.output_streams[s]);
        }
      } else {
        auto up_factory = prod.bolt_factory;
        auto down_factory = cons.bolt_factory;
        auto decl = b2.AddBolt(
            fused_name,
            [up_factory, down_factory] {
              return std::make_unique<FusedBolt>(up_factory(),
                                                 down_factory());
            },
            prod.base_parallelism);
        for (size_t s = 1; s < cons.output_streams.size(); ++s) {
          decl.DeclareStream(cons.output_streams[s]);
        }
        declare_subs(decl, p);
      }
      continue;
    }
    if (op.is_spout) {
      auto decl = b2.AddSpout(op.name, op.spout_factory,
                              op.base_parallelism);
      for (size_t s = 1; s < op.output_streams.size(); ++s) {
        decl.DeclareStream(op.output_streams[s]);
      }
    } else {
      auto decl = b2.AddBolt(op.name, op.bolt_factory, op.base_parallelism);
      for (size_t s = 1; s < op.output_streams.size(); ++s) {
        decl.DeclareStream(op.output_streams[s]);
      }
      // Consumers of the fused pair re-point edges from c to the fused
      // name; declare_subs handles the renaming via new_name().
      declare_subs(decl, op.id);
    }
  }

  BRISK_ASSIGN_OR_RETURN(api::Topology fused, std::move(b2).Build());

  // Derived profile: per input tuple the fused instance runs the
  // producer once and the consumer sel(p) times.
  BRISK_ASSIGN_OR_RETURN(model::OperatorProfile pp, profiles.Get(prod.name));
  BRISK_ASSIGN_OR_RETURN(model::OperatorProfile cp, profiles.Get(cons.name));
  const double sel_p = pp.selectivity.empty() ? 1.0 : pp.selectivity[0];
  model::OperatorProfile fused_profile;
  fused_profile.te_cycles = pp.te_cycles + sel_p * cp.te_cycles;
  fused_profile.m_bytes = pp.m_bytes + sel_p * cp.m_bytes;
  fused_profile.output_bytes = cp.output_bytes;
  fused_profile.selectivity.clear();
  for (const double s : cp.selectivity) {
    fused_profile.selectivity.push_back(sel_p * s);
  }

  FusedApp result;
  result.fused_name = fused_name;
  for (const auto& [name, profile] : profiles.all()) {
    if (name == prod.name || name == cons.name) continue;
    result.profiles.Set(name, profile);
  }
  result.profiles.Set(fused_name, fused_profile);
  result.topology = std::make_shared<api::Topology>(std::move(fused));
  return result;
}

StatusOr<AutoFuseResult> AutoFuse(const api::Topology& topo,
                                  const model::ProfileSet& profiles,
                                  const hw::MachineSpec& machine,
                                  RlasOptions options) {
  AutoFuseResult result;
  result.topology = std::make_shared<api::Topology>(topo);
  result.profiles = profiles;

  RlasOptimizer optimizer(&machine, &result.profiles, options);
  BRISK_ASSIGN_OR_RETURN(RlasResult base,
                         optimizer.Optimize(*result.topology));
  result.baseline_throughput = base.model.throughput;
  result.fused_throughput = base.model.throughput;

  // Greedy loop: apply the best-improving fusion until none improves.
  while (true) {
    const auto candidates = FindFusionCandidates(*result.topology);
    double best_tput = result.fused_throughput;
    std::shared_ptr<const api::Topology> best_topo;
    model::ProfileSet best_profiles;
    for (const auto& candidate : candidates) {
      auto fused =
          FuseOperators(*result.topology, result.profiles, candidate);
      if (!fused.ok()) continue;
      RlasOptimizer opt(&machine, &fused->profiles, options);
      auto plan = opt.Optimize(*fused->topology);
      if (!plan.ok()) continue;
      if (plan->model.throughput > best_tput * 1.001) {
        best_tput = plan->model.throughput;
        best_topo = fused->topology;
        best_profiles = fused->profiles;
      }
    }
    if (!best_topo) break;
    result.topology = std::move(best_topo);
    result.profiles = std::move(best_profiles);
    result.fused_throughput = best_tput;
    ++result.fusions_applied;
  }
  return result;
}

}  // namespace brisk::opt
