// Competing planners the paper evaluates RLAS against (§6.4, Table 6):
//   FF  — first-fit over topologically sorted operators (greedy
//         traffic-minimizing, as in T-Storm-style schedulers),
//   RR  — round-robin across sockets (resource balancing, R-Storm-like),
//   OS  — placement left to the operating system's load balancer,
//   random plans — the Fig. 14 Monte-Carlo baseline,
// plus helpers for the RLAS_fix(L)/RLAS_fix(U) ablations (Fig. 12),
// which reuse the B&B but under a fixed fetch-cost assumption.
#pragma once

#include "common/rng.h"
#include "model/perf_model.h"
#include "optimizer/rlas.h"

namespace brisk::opt {

/// First-Fit: operators are topologically sorted and each instance goes
/// to the first socket that accepts it without violating constraints
/// (checked with the performance model). When no socket accepts —
/// the "not-able-to-progress" situation §6.4 describes — constraints
/// are relaxed and the instance goes to the least-loaded socket.
StatusOr<model::ExecutionPlan> PlaceFirstFit(const model::PerfModel& model,
                                             model::ExecutionPlan plan,
                                             double input_rate_tps);

/// Round-Robin: instances in topological order cycle across sockets,
/// skipping sockets without a free core. Balances occupancy but ignores
/// communication cost entirely.
StatusOr<model::ExecutionPlan> PlaceRoundRobin(
    const hw::MachineSpec& machine, model::ExecutionPlan plan);

/// OS emulation: mimics a kernel load balancer that puts each new
/// thread on the least-occupied socket, oblivious to the dataflow.
StatusOr<model::ExecutionPlan> PlaceOsDefault(const hw::MachineSpec& machine,
                                              model::ExecutionPlan plan);

/// Fig. 14 Monte-Carlo baseline: random replication grown until the
/// total hits `max_total_replicas` (default: machine core count), then
/// uniformly random placement over sockets with free cores.
StatusOr<model::ExecutionPlan> RandomPlan(const api::Topology& topo,
                                          const hw::MachineSpec& machine,
                                          Rng* rng,
                                          int max_total_replicas = -1);

/// RLAS_fix ablation (Fig. 12): runs the full RLAS loop but optimizes
/// under a fixed fetch-cost assumption (kAlwaysRemote = fix(L),
/// kAlwaysLocal = fix(U)). The returned plan should then be re-evaluated
/// (or simulated) under the true relative-location model.
StatusOr<RlasResult> OptimizeRlasFixed(const hw::MachineSpec& machine,
                                       const model::ProfileSet& profiles,
                                       const api::Topology& topo,
                                       model::FetchCostMode fixed_mode,
                                       RlasOptions options = {});

}  // namespace brisk::opt
