#include "optimizer/rlas.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace brisk::opt {

using model::ExecutionPlan;

StatusOr<RlasResult> RlasOptimizer::Optimize(const api::Topology& topo) const {
  const auto t_start = std::chrono::steady_clock::now();

  int max_replicas = options_.max_total_replicas;
  if (max_replicas <= 0) max_replicas = machine_->total_cores();

  // Line 1: replication starts at one per operator (or the caller's
  // warm start, Appendix D).
  std::vector<int> replication(topo.num_operators(), 1);
  if (!options_.initial_replication.empty()) {
    if (static_cast<int>(options_.initial_replication.size()) !=
        topo.num_operators()) {
      return Status::InvalidArgument("initial_replication size mismatch");
    }
    replication = options_.initial_replication;
  }

  RlasResult best;
  bool have_best = false;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    BRISK_ASSIGN_OR_RETURN(ExecutionPlan plan,
                           ExecutionPlan::Create(&topo, replication));

    // Line 6: placement optimization under the current replication.
    auto placed = OptimizePlacement(model_, std::move(plan),
                                    options_.placement);
    if (!placed.ok()) {
      // Lines 9–10: no valid placement — stop and return the best so far.
      if (placed.status().IsResourceExhausted()) break;
      return placed.status();
    }
    best.nodes_explored += placed->nodes_explored;

    // Lines 7–8: keep the best plan seen.
    if (!have_best || placed->model.throughput > best.model.throughput) {
      best.plan = placed->plan;
      best.model = placed->model;
      have_best = true;
    }
    best.scaling_iterations = iter + 1;

    // Lines 11–19: reverse-topological scan for the first bottleneck
    // operator; grow its replication by the over-supply ratio.
    const auto& order = topo.topological_order();
    int target_op = -1;
    double ratio = 1.0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const int op = *it;
      double ri = 0.0, ro = 0.0;
      bool bottleneck = false;
      for (int r = 0; r < placed->plan.replication(op); ++r) {
        const auto& st =
            placed->model.instances[placed->plan.InstanceId(op, r)];
        ri += st.input_rate;
        ro += st.processed;
        bottleneck |= st.bottleneck;
      }
      if (bottleneck && ro > 0.0) {
        target_op = op;
        ratio = ri / ro;
        break;
      }
    }
    if (target_op < 0) break;  // nothing over-supplied: plan is balanced

    // Growth step ⌈r_i / r̄_o⌉ applied multiplicatively: the operator
    // needs `ratio` times its current capacity. Per-iteration growth is
    // clamped to 2x so a source operator facing an effectively infinite
    // ingress rate (§5.3's over-supplied setup) cannot swallow the whole
    // replica budget in one step — the reverse-topological rescan keeps
    // the pipeline balanced across iterations instead.
    const int total_now =
        std::accumulate(replication.begin(), replication.end(), 0);
    const int head_room = max_replicas - total_now;
    if (head_room <= 0) break;  // Line 19: scaling ceiling reached

    const int current = replication[target_op];
    int grown = static_cast<int>(
        std::ceil(static_cast<double>(current) * std::min(ratio, 2.0)));
    grown = std::max(grown, current + 1);
    grown = std::min(grown, current + head_room);
    if (grown <= current) break;
    replication[target_op] = grown;
  }

  if (!have_best) {
    return Status::ResourceExhausted(
        "RLAS found no feasible execution plan (even at replication 1)");
  }

  best.optimize_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return best;
}

}  // namespace brisk::opt
