#include "optimizer/baselines.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace brisk::opt {

using model::ExecutionPlan;
using model::ModelOptions;
using model::PerfModel;

namespace {

/// Instance ids in topological operator order (spouts first).
std::vector<int> TopoOrderedInstances(const ExecutionPlan& plan) {
  std::vector<int> out;
  out.reserve(plan.num_instances());
  for (const int op : plan.topology().topological_order()) {
    for (int r = 0; r < plan.replication(op); ++r) {
      out.push_back(plan.InstanceId(op, r));
    }
  }
  return out;
}

}  // namespace

StatusOr<ExecutionPlan> PlaceFirstFit(const PerfModel& model,
                                      ExecutionPlan plan,
                                      double input_rate_tps) {
  // Greedy first-fit over topologically sorted instances, the
  // T-Storm-style traffic-minimizing heuristic (Table 6): consecutive
  // (connected) operators pack into the lowest-numbered socket with a
  // free core, which collocates neighbours — until a socket fills and
  // the pipeline is cut at whatever edge happens to cross the boundary.
  // Its §6.4 failure mode is exactly this greed: early stages
  // monopolize socket 0 regardless of the downstream demand ("often
  // ends up oversubscribing a few CPU sockets").
  (void)input_rate_tps;
  const auto& machine = model.machine();
  const int m = machine.num_sockets();
  plan.ClearPlacement();
  std::vector<int> free(m, machine.cores_per_socket());

  for (const int inst : TopoOrderedInstances(plan)) {
    int chosen = -1;
    for (int s = 0; s < m; ++s) {
      if (free[s] > 0) {
        chosen = s;
        break;
      }
    }
    if (chosen < 0) {
      // Not-able-to-progress: relax constraints, oversubscribe the
      // least-loaded socket.
      chosen = static_cast<int>(
          std::max_element(free.begin(), free.end()) - free.begin());
    }
    plan.SetSocket(inst, chosen);
    --free[chosen];
  }
  return plan;
}

StatusOr<ExecutionPlan> PlaceRoundRobin(const hw::MachineSpec& machine,
                                        ExecutionPlan plan) {
  const int m = machine.num_sockets();
  plan.ClearPlacement();
  std::vector<int> free(m, machine.cores_per_socket());
  int cursor = 0;
  for (const int inst : TopoOrderedInstances(plan)) {
    int tried = 0;
    while (tried < m && free[cursor % m] <= 0) {
      ++cursor;
      ++tried;
    }
    const int s = cursor % m;
    plan.SetSocket(inst, s);
    // Oversubscribes once every socket is full, like the real RR
    // strategy gradually relaxing constraints.
    if (free[s] > 0) --free[s];
    ++cursor;
  }
  return plan;
}

StatusOr<ExecutionPlan> PlaceOsDefault(const hw::MachineSpec& machine,
                                       ExecutionPlan plan) {
  plan.ClearPlacement();
  std::vector<int> load(machine.num_sockets(), 0);
  for (const int inst : TopoOrderedInstances(plan)) {
    // Kernel-style balancing: each new thread lands on the least-
    // occupied socket regardless of who it talks to.
    const int s = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    plan.SetSocket(inst, s);
    ++load[s];
  }
  return plan;
}

StatusOr<ExecutionPlan> RandomPlan(const api::Topology& topo,
                                   const hw::MachineSpec& machine,
                                   Rng* rng, int max_total_replicas) {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  int limit = max_total_replicas > 0 ? max_total_replicas
                                     : machine.total_cores();
  limit = std::min(limit, machine.total_cores());
  const int n_ops = topo.num_operators();
  if (n_ops > limit) {
    return Status::InvalidArgument("more operators than replica budget");
  }

  // "Replication level of each operator is randomly increased until the
  // total replication level hits the scaling limit" (§6.4).
  std::vector<int> repl(n_ops, 1);
  int total = n_ops;
  while (total < limit) {
    ++repl[rng->NextBounded(n_ops)];
    ++total;
  }

  BRISK_ASSIGN_OR_RETURN(ExecutionPlan plan,
                         ExecutionPlan::Create(&topo, std::move(repl)));

  // Uniform random placement over sockets with a free core.
  std::vector<int> free(machine.num_sockets(), machine.cores_per_socket());
  for (int i = 0; i < plan.num_instances(); ++i) {
    std::vector<int> options;
    for (int s = 0; s < machine.num_sockets(); ++s) {
      if (free[s] > 0) options.push_back(s);
    }
    if (options.empty()) {
      return Status::Internal("random plan ran out of cores");
    }
    const int s = options[rng->NextBounded(options.size())];
    plan.SetSocket(i, s);
    --free[s];
  }
  return plan;
}

StatusOr<RlasResult> OptimizeRlasFixed(const hw::MachineSpec& machine,
                                       const model::ProfileSet& profiles,
                                       const api::Topology& topo,
                                       model::FetchCostMode fixed_mode,
                                       RlasOptions options) {
  options.placement.fetch_mode = fixed_mode;
  RlasOptimizer optimizer(&machine, &profiles, std::move(options));
  return optimizer.Optimize(topo);
}

}  // namespace brisk::opt
