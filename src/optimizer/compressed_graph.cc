#include "optimizer/compressed_graph.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace brisk::opt {

CompressedGraph CompressedGraph::Build(const model::ExecutionPlan& plan,
                                       int ratio) {
  BRISK_CHECK(ratio >= 1) << "compress ratio must be >= 1";
  const api::Topology& topo = plan.topology();

  CompressedGraph g;
  g.units_of_op_.resize(topo.num_operators());
  g.producer_ops_.resize(topo.num_operators());

  // Units, operator by operator in topological order so the decision
  // list later comes out producer-major.
  for (const int op : topo.topological_order()) {
    const int repl = plan.replication(op);
    for (int start = 0; start < repl; start += ratio) {
      Unit u;
      u.id = static_cast<int>(g.units_.size());
      u.op = op;
      for (int r = start; r < std::min(start + ratio, repl); ++r) {
        u.instance_ids.push_back(plan.InstanceId(op, r));
      }
      g.units_of_op_[op].push_back(u.id);
      g.units_.push_back(std::move(u));
    }
  }

  // Unique producer ops per consumer.
  for (const auto& e : topo.edges()) {
    auto& v = g.producer_ops_[e.consumer_op];
    if (std::find(v.begin(), v.end(), e.producer_op) == v.end()) {
      v.push_back(e.producer_op);
    }
  }

  // Collocation decisions: one per (producer unit, consumer unit) pair
  // of each connected operator pair, in topological producer order.
  std::set<std::pair<int, int>> seen_op_pairs;
  for (const int op : topo.topological_order()) {
    for (const auto& e : topo.OutEdges(op)) {
      if (!seen_op_pairs.emplace(e.producer_op, e.consumer_op).second) {
        continue;  // multiple streams between the same ops: one decision set
      }
      for (const int pu : g.units_of_op_[e.producer_op]) {
        for (const int cu : g.units_of_op_[e.consumer_op]) {
          g.decisions_.push_back({pu, cu});
        }
      }
    }
  }
  return g;
}

}  // namespace brisk::opt
