// RLAS — Relative-Location Aware Scheduling (§4): joint optimization of
// operator replication (Algorithm 1) and placement (Algorithm 2).
#pragma once

#include <cstdint>

#include "api/topology.h"
#include "model/perf_model.h"
#include "optimizer/placement_bb.h"

namespace brisk::opt {

/// Options for the full RLAS optimization.
struct RlasOptions {
  PlacementOptions placement;

  /// Ceiling on Σ replication (defaults to the machine's core count —
  /// one instance per isolated core, §6.1).
  int max_total_replicas = -1;

  /// Safety cap on scaling iterations.
  int max_iterations = 64;

  /// Optional starting replication (empty = all ones). Appendix D's
  /// "start from a reasonably large DAG" accelerator.
  std::vector<int> initial_replication;
};

/// Output of Optimize(): the best plan found plus search statistics.
struct RlasResult {
  model::ExecutionPlan plan;
  model::ModelResult model;  ///< evaluated under the search fetch mode
  int scaling_iterations = 0;
  uint64_t nodes_explored = 0;
  double optimize_seconds = 0.0;
};

/// RLAS optimizer bound to one machine + profile set.
class RlasOptimizer {
 public:
  RlasOptimizer(const hw::MachineSpec* machine,
                const model::ProfileSet* profiles, RlasOptions options = {})
      : machine_(machine),
        profiles_(profiles),
        model_(machine, profiles),
        options_(std::move(options)) {}

  /// Algorithm 1: iteratively optimize placement, then raise the
  /// replication of the bottleneck operator (reverse-topological scan)
  /// until placement fails, no bottleneck remains, or the replica
  /// ceiling is hit. Returns the best valid plan encountered.
  StatusOr<RlasResult> Optimize(const api::Topology& topo) const;

  /// Algorithm 2 only: placement under fixed replication.
  StatusOr<PlacementResult> OptimizePlacementOnly(
      model::ExecutionPlan plan) const {
    return OptimizePlacement(model_, std::move(plan), options_.placement);
  }

  const model::PerfModel& perf_model() const { return model_; }
  const RlasOptions& options() const { return options_; }

 private:
  const hw::MachineSpec* machine_;
  const model::ProfileSet* profiles_;
  model::PerfModel model_;
  RlasOptions options_;
};

}  // namespace brisk::opt
