#include "common/tuple.h"

namespace brisk {

namespace {
// 64-bit FNV-1a; cheap and stable across runs (required so fields
// grouping is deterministic between the model and the engine).
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvBytes(const void* data, size_t n, uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

size_t FieldSizeBytes(const Field& f) {
  switch (f.index()) {
    case 0:
      return sizeof(int64_t);
    case 1:
      return sizeof(double);
    case 2:
      return f.AsString().size() + sizeof(uint32_t);
  }
  return 0;
}

size_t Tuple::SizeBytes() const {
  size_t n = sizeof(origin_ts_ns) + sizeof(stream_id);
  for (const auto& f : fields) n += FieldSizeBytes(f);
  return n;
}

uint64_t HashField(const Field& f) {
  switch (f.index()) {
    case 0: {
      int64_t v = f.AsInt();
      return FnvBytes(&v, sizeof(v));
    }
    case 1: {
      double v = f.AsDouble();
      return FnvBytes(&v, sizeof(v));
    }
    case 2: {
      const std::string_view s = f.AsString();
      return FnvBytes(s.data(), s.size());
    }
  }
  return 0;
}

}  // namespace brisk
