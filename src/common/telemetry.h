// Sink-side run telemetry, shared by every sink replica of one run.
//
// Lives in common/ (not apps/) because it is part of the generic
// surface: DSL Sink lambdas and the Job facade report through it, and
// the benchmark apps alias it as apps::SinkTelemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/histogram.h"

namespace brisk {

/// Shared telemetry all sink replicas of one run report into. The
/// tuple counter is the throughput measurement point (§2.2: "Sink
/// increments a counter each time it receives tuple... which we use to
/// monitor the performance"); latency is sampled to keep the hot path
/// cheap.
class SinkTelemetry {
 public:
  void RecordTuple(int64_t origin_ts_ns, int64_t now_ns) {
    const uint64_t n = count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (origin_ts_ns > 0 && (n & (kLatencySampleEvery - 1)) == 0) {
      std::lock_guard<std::mutex> lock(mu_);
      latency_ns_.Add(static_cast<double>(now_ns - origin_ts_ns));
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  Histogram LatencySnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latency_ns_;
  }

  void Reset() {
    count_.store(0);
    std::lock_guard<std::mutex> lock(mu_);
    latency_ns_.Reset();
  }

 private:
  static constexpr uint64_t kLatencySampleEvery = 32;  // power of two

  std::atomic<uint64_t> count_{0};
  mutable std::mutex mu_;
  Histogram latency_ns_;
};

}  // namespace brisk
