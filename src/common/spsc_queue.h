// Bounded lock-free single-producer / single-consumer ring buffer.
//
// This is the communication queue between a producer task and one of
// its consumer tasks in the BriskStream engine (one queue per directed
// producer→consumer edge, so SPSC is sufficient and the fast path is
// two relaxed loads + one release store). Head/tail live on separate
// cache lines to avoid false sharing, and each side caches the
// opposing index to avoid ping-ponging the shared line on every call —
// the standard "fast SPSC" design.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory_resource>
#include <utility>
#include <vector>

namespace brisk {

/// Destructive-interference distance. Fixed at 64 bytes (true for all
/// x86-64 and most AArch64 parts) instead of
/// std::hardware_destructive_interference_size, whose value is not ABI
/// stable across compiler flags (-Winterference-size).
inline constexpr size_t kCacheLineSize = 64;

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity.
  /// `memory` backs the slot array (NUMA-aware callers pass the
  /// consuming socket's arena; it must outlive the queue). Slot
  /// *contents* are plain T — only the ring storage is placed.
  explicit SpscQueue(size_t capacity,
                     std::pmr::memory_resource* memory =
                         std::pmr::get_default_resource())
      : slots_(memory) {
    size_t cap = 1;
    while (cap < capacity + 1) cap <<= 1;  // one slot stays empty
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the queue is full (the engine
  /// reacts with back-pressure, not blocking). Takes an rvalue
  /// reference and only moves from it on success, so callers can retry
  /// the same object in a spin loop.
  bool TryPush(T&& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    slots_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Producer side, recovering variant: on success the pushed value is
  /// *swapped* with the slot's previous content, so the producer walks
  /// away with whatever the consumer deposited when it vacated the
  /// slot (see TryPopSwap) — the ring doubles as the recycling pool.
  /// On failure `value` is untouched.
  bool TryPushSwap(T& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    std::swap(slots_[tail], value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the queue is empty.
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = std::move(slots_[head]);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer side, depositing variant: on success the vacated slot is
  /// refilled with `deposit` *before* the head index is released, so
  /// the producer's next lap (TryPushSwap) finds it there — never a
  /// torn slot, because the producer only touches a slot after the
  /// head store publishes it. On failure `deposit` is untouched.
  bool TryPopSwap(T* out, T& deposit) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = std::move(slots_[head]);
    slots_[head] = std::move(deposit);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy; safe to call from any thread (racy but
  /// monotonic enough for metrics and back-pressure heuristics).
  size_t SizeApprox() const {
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t head = head_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

  size_t capacity() const { return mask_; }

 private:
  std::pmr::vector<T> slots_;
  size_t mask_ = 0;

  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  alignas(kCacheLineSize) size_t tail_cache_ = 0;  // consumer-local
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  alignas(kCacheLineSize) size_t head_cache_ = 0;  // producer-local
};

}  // namespace brisk
