// Minimal leveled logging + CHECK macros for BriskStream.
//
// Library code prefers returning Status; CHECKs guard programmer errors
// (invariants), not user input.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace brisk {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (thread-safely) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 protected:
  /// Writes the accumulated line to stderr exactly once.
  void Emit();

 private:
  std::ostringstream stream_;
  bool emitted_ = false;
};

/// LogMessage that aborts the process after emitting.
class FatalLogMessage : public LogMessage {
 public:
  using LogMessage::LogMessage;
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    LogMessage::operator<<(v);
    return *this;
  }
};

}  // namespace internal
}  // namespace brisk

#define BRISK_LOG(level)                                                  \
  if (static_cast<int>(::brisk::LogLevel::k##level) <                     \
      static_cast<int>(::brisk::GetLogLevel())) {                         \
  } else                                                                  \
    ::brisk::internal::LogMessage(::brisk::LogLevel::k##level, __FILE__,  \
                                  __LINE__)

#define BRISK_CHECK(cond)                                                  \
  if (cond) {                                                              \
  } else                                                                   \
    ::brisk::internal::FatalLogMessage(::brisk::LogLevel::kError,          \
                                       __FILE__, __LINE__)                 \
        << "Check failed: " #cond " "

#define BRISK_CHECK_OK(expr)                                  \
  do {                                                        \
    ::brisk::Status _st = (expr);                             \
    BRISK_CHECK(_st.ok()) << _st.ToString();                  \
  } while (0)

#define BRISK_DCHECK(cond) BRISK_CHECK(cond)
