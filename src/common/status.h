// Status / StatusOr: exception-free error handling for the BriskStream
// library core, following the Arrow/RocksDB idiom.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace brisk {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // plan violates a capacity constraint
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,  // an operation ran past its allotted time budget
  kUnavailable,       // retries exhausted; the resource stays down
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// Cheap to copy in the OK case (no allocation). Errors carry a code and
/// a message. Library code returns Status instead of throwing.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Never both.
template <typename T>
class StatusOr {
 public:
  /*implicit*/ StatusOr(T value) : value_(std::move(value)) {}
  /*implicit*/ StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `alt` if this holds an error.
  T value_or(T alt) const {
    return ok() ? *value_ : std::move(alt);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace brisk

/// Propagates a non-OK Status to the caller.
#define BRISK_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::brisk::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#define BRISK_CONCAT_IMPL(a, b) a##b
#define BRISK_CONCAT(a, b) BRISK_CONCAT_IMPL(a, b)

/// Assigns the value of a StatusOr expression or propagates its error.
#define BRISK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define BRISK_ASSIGN_OR_RETURN(lhs, expr) \
  BRISK_ASSIGN_OR_RETURN_IMPL(BRISK_CONCAT(_statusor_, __LINE__), lhs, expr)
