#include "common/batch_arena.h"

#include <cstddef>
#include <new>

#include "common/tuple.h"

namespace brisk {

namespace {

thread_local BatchArena* tls_batch_arena = nullptr;

/// Provenance header prepended to every shell: the arena that produced
/// it (null = global allocator). One max_align_t slot keeps the shell
/// itself at full alignment.
constexpr size_t kShellHeaderBytes = alignof(std::max_align_t);
static_assert(sizeof(BatchArena*) <= kShellHeaderBytes,
              "provenance pointer must fit the alignment slot");

}  // namespace

BatchArena* CurrentBatchArena() { return tls_batch_arena; }

BatchArenaScope::BatchArenaScope(BatchArena* arena)
    : previous_(tls_batch_arena) {
  tls_batch_arena = arena;
}

BatchArenaScope::~BatchArenaScope() { tls_batch_arena = previous_; }

void* JumboTuple::operator new(size_t bytes) {
  BatchArena* arena = tls_batch_arena;
  void* base = arena != nullptr
                   ? arena->AllocateShell(bytes + kShellHeaderBytes)
                   : ::operator new(bytes + kShellHeaderBytes);
  *static_cast<BatchArena**>(base) = arena;
  return static_cast<char*>(base) + kShellHeaderBytes;
}

void JumboTuple::operator delete(void* p, size_t bytes) noexcept {
  if (p == nullptr) return;
  void* base = static_cast<char*>(p) - kShellHeaderBytes;
  BatchArena* arena = *static_cast<BatchArena**>(base);
  if (arena != nullptr) {
    arena->DeallocateShell(base, bytes + kShellHeaderBytes);
  } else {
    ::operator delete(base);
  }
}

}  // namespace brisk
