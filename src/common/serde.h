// Tuple (de)serialization.
//
// BriskStream itself never serializes (pass-by-reference, §5.1); this
// codec exists to reproduce the *overhead* that distributed DSPSs
// (Storm/Flink) pay on every tuple. The legacy execution modes run each
// tuple through Serialize+Deserialize to charge that cost for real.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"

namespace brisk {

/// Appends a length-prefixed binary encoding of `t` to `out`.
void SerializeTuple(const Tuple& t, std::vector<uint8_t>* out);

/// Decodes one tuple starting at `*offset`; advances `*offset` past it.
StatusOr<Tuple> DeserializeTuple(const std::vector<uint8_t>& buf,
                                 size_t* offset);

/// Serializes a whole batch (per-tuple headers duplicated, as a
/// distributed DSPS would on the wire).
void SerializeBatch(const std::vector<Tuple>& tuples,
                    std::vector<uint8_t>* out);

/// Decodes `count` tuples from `buf`.
StatusOr<std::vector<Tuple>> DeserializeBatch(const std::vector<uint8_t>& buf,
                                              size_t count);

}  // namespace brisk
