// Tuple representation shared by the API, engine, and legacy modes.
//
// BriskStream passes tuples by reference inside one address space
// (Appendix A): producers allocate tuples, enqueue shared_ptr-like
// handles, and consumers read the producer-owned storage. The "jumbo
// tuple" (§5.2) batches many tuples under one shared header so a batch
// costs a single queue insertion and one header.
//
// The layout is built for zero steady-state allocation on the emit
// path: a Field is a 32-byte tagged union with small-string
// optimization (strings up to Field::kInlineStringCap chars live
// inside the field), and a Tuple keeps up to kInlineTupleFields fields
// inline (spilling to the heap only beyond that). Constructing, moving
// and routing a typical word_count/fraud tuple therefore touches no
// allocator.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/inline_vec.h"

namespace brisk {

/// One field of a tuple: int64, double, or a small-string-optimized
/// string (the streaming workloads here carry integers, readings, and
/// short keys like words or account ids). The discriminator follows
/// the old std::variant<int64_t, double, std::string> order, so
/// index() values and the wire codec are unchanged.
class Field {
 public:
  /// Longest string stored inline (no heap). Covers every word_count
  /// word and fraud/LR key; full sentences spill to one heap block.
  static constexpr size_t kInlineStringCap = 22;

  Field() noexcept { payload_.i = 0; }
  Field(double v) noexcept : kind_(Kind::kDouble) { payload_.d = v; }
  /// Any integer or (unscoped) enum type maps to the int64 alternative
  /// (a plain `Field(int64_t)` overload would be ambiguous against
  /// double for literal ints and enums, which the old variant resolved
  /// to int64_t).
  template <typename I,
            std::enable_if_t<std::is_integral_v<I> || std::is_enum_v<I>,
                             int> = 0>
  Field(I v) noexcept {
    payload_.i = static_cast<int64_t>(v);
  }
  Field(std::string_view s) { InitString(s); }
  Field(const std::string& s) { InitString(s); }
  Field(const char* s) { InitString(s); }

  Field(const Field& o) { CopyFrom(o); }
  Field(Field&& o) noexcept { TakeFrom(o); }
  Field& operator=(const Field& o) {
    if (this != &o) {
      Release();
      CopyFrom(o);
    }
    return *this;
  }
  Field& operator=(Field&& o) noexcept {
    if (this != &o) {
      Release();
      TakeFrom(o);
    }
    return *this;
  }
  ~Field() { Release(); }

  /// Alternative index, variant-compatible: 0=int64, 1=double, 2=string.
  size_t index() const { return static_cast<size_t>(kind_); }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Typed accessors. Unchecked: reading the wrong alternative is a
  /// programming error (the old std::get threw; the hot path cannot
  /// afford the branch).
  int64_t AsInt() const { return payload_.i; }
  double AsDouble() const { return payload_.d; }
  std::string_view AsString() const {
    return small_len_ == kHeapMark
               ? std::string_view(payload_.heap.data, payload_.heap.size)
               : std::string_view(payload_.small, small_len_);
  }

 private:
  enum class Kind : uint8_t { kInt = 0, kDouble = 1, kString = 2 };
  static constexpr uint8_t kHeapMark = 0xFF;

  struct HeapStr {
    char* data;
    uint64_t size;
  };
  union Payload {
    int64_t i;
    double d;
    char small[kInlineStringCap];
    HeapStr heap;
  };

  bool OwnsHeap() const {
    return kind_ == Kind::kString && small_len_ == kHeapMark;
  }

  void InitString(std::string_view s) {
    kind_ = Kind::kString;
    if (s.size() <= kInlineStringCap) {
      small_len_ = static_cast<uint8_t>(s.size());
      if (!s.empty()) std::memcpy(payload_.small, s.data(), s.size());
    } else {
      char* block = static_cast<char*>(::operator new(s.size()));
      // Mark heap ownership only once the allocation succeeded, so a
      // throwing `operator new` cannot leave a dangling heap mark.
      small_len_ = kHeapMark;
      payload_.heap.data = block;
      payload_.heap.size = s.size();
      std::memcpy(block, s.data(), s.size());
    }
  }

  void CopyFrom(const Field& o) {
    if (o.OwnsHeap()) {
      InitString(o.AsString());
    } else {
      payload_ = o.payload_;
      kind_ = o.kind_;
      small_len_ = o.small_len_;
    }
  }

  /// Moves o's value in; o is left holding an empty inline string (or
  /// its scalar, which moving cannot invalidate).
  void TakeFrom(Field& o) noexcept {
    payload_ = o.payload_;
    kind_ = o.kind_;
    small_len_ = o.small_len_;
    if (o.OwnsHeap()) o.small_len_ = 0;
  }

  void Release() noexcept {
    if (OwnsHeap()) {
      ::operator delete(payload_.heap.data);
      // Drop the heap mark so a throw between Release() and the next
      // init (assignment paths) cannot leave a dangling owner.
      small_len_ = 0;
    }
  }

  Payload payload_;
  Kind kind_ = Kind::kInt;
  uint8_t small_len_ = 0;
};

static_assert(sizeof(Field) == 32, "Field layout regressed");

/// Returns the logical payload contribution of one field in bytes —
/// the model's per-tuple N. Independent of the in-memory layout (an
/// inline and a spilled string of equal length report the same size),
/// so the cost model and simulator stay consistent across layout
/// changes.
size_t FieldSizeBytes(const Field& f);

/// Inline field slots per tuple; all bundled apps fit except Linear
/// Road position reports (5 fields), which pay one spill block.
inline constexpr size_t kInlineTupleFields = 4;

/// A single stream tuple: a small inline vector of fields plus
/// provenance metadata used for latency accounting. Moving a Tuple
/// never allocates; copying allocates only for spilled fields.
struct Tuple {
  InlineVec<Field, kInlineTupleFields> fields;

  /// Wall-clock origin timestamp (ns since steady epoch) stamped by the
  /// spout; carried through so sinks can compute end-to-end latency.
  int64_t origin_ts_ns = 0;

  /// Output stream this tuple was emitted on (index into the producer's
  /// declared output streams; 0 = default stream).
  uint16_t stream_id = 0;

  Tuple() = default;
  explicit Tuple(std::initializer_list<Field> f) : fields(f) {}

  int64_t GetInt(size_t i) const { return fields[i].AsInt(); }
  double GetDouble(size_t i) const { return fields[i].AsDouble(); }
  std::string_view GetString(size_t i) const { return fields[i].AsString(); }

  /// Approximate serialized/in-memory size (the model's N).
  size_t SizeBytes() const;
};

/// A batch of tuples sharing one header, from one producer to one
/// consumer (§5.2). The engine moves JumboTuples through SPSC queues;
/// pass-by-reference means the queue element is just a unique_ptr.
/// Batches are pooled: consumers hand drained batches back to the
/// producer through the channel's recycle queue (see engine/channel.h)
/// so steady state allocates nothing.
struct JumboTuple {
  /// Shared header: producer task id + batch sequence, representative of
  /// the metadata Storm would duplicate per tuple.
  int32_t producer_task = -1;
  uint64_t batch_seq = 0;

  std::vector<Tuple> tuples;

  /// Serialized payload for the legacy (Storm/Flink-like) modes —
  /// folded into the pooled batch so an Envelope is just the batch
  /// pointer plus trivially-movable scalars, and the legacy path
  /// recycles its byte buffers through the same pool. Empty in the
  /// pass-by-reference mode.
  std::vector<uint8_t> bytes;

  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty() && bytes.empty(); }

  /// Readies a recycled batch for reuse; keeps capacity.
  void Reset() {
    tuples.clear();
    bytes.clear();
  }

  /// Shells route through the calling thread's BatchArena when one is
  /// installed (pool workers install their socket's NumaArena), else
  /// the global allocator. Each shell carries a hidden provenance
  /// header, so delete returns it to the arena that produced it no
  /// matter which thread — or socket — frees it. Definitions live in
  /// common/batch_arena.cc.
  static void* operator new(size_t bytes);
  static void operator delete(void* p, size_t bytes) noexcept;
};

using JumboTuplePtr = std::unique_ptr<JumboTuple>;

/// Stable hash for fields-grouping (same key → same consumer replica).
uint64_t HashField(const Field& f);

}  // namespace brisk
