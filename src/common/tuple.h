// Tuple representation shared by the API, engine, and legacy modes.
//
// BriskStream passes tuples by reference inside one address space
// (Appendix A): producers allocate tuples, enqueue shared_ptr-like
// handles, and consumers read the producer-owned storage. The "jumbo
// tuple" (§5.2) batches many tuples under one shared header so a batch
// costs a single queue insertion and one header.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace brisk {

/// One field of a tuple. Streaming workloads in this repo only need
/// integers, doubles, and short strings (words, account ids).
using Field = std::variant<int64_t, double, std::string>;

/// Returns the in-memory footprint contribution of one field in bytes.
size_t FieldSizeBytes(const Field& f);

/// A single stream tuple: a small vector of fields plus provenance
/// metadata used for latency accounting.
struct Tuple {
  std::vector<Field> fields;

  /// Wall-clock origin timestamp (ns since steady epoch) stamped by the
  /// spout; carried through so sinks can compute end-to-end latency.
  int64_t origin_ts_ns = 0;

  /// Output stream this tuple was emitted on (index into the producer's
  /// declared output streams; 0 = default stream).
  uint16_t stream_id = 0;

  Tuple() = default;
  explicit Tuple(std::vector<Field> f) : fields(std::move(f)) {}

  int64_t GetInt(size_t i) const { return std::get<int64_t>(fields[i]); }
  double GetDouble(size_t i) const { return std::get<double>(fields[i]); }
  const std::string& GetString(size_t i) const {
    return std::get<std::string>(fields[i]);
  }

  /// Approximate serialized/in-memory size (the model's N).
  size_t SizeBytes() const;
};

/// A batch of tuples sharing one header, from one producer to one
/// consumer (§5.2). The engine moves JumboTuples through SPSC queues;
/// pass-by-reference means the queue element is just a unique_ptr.
struct JumboTuple {
  /// Shared header: producer task id + batch sequence, representative of
  /// the metadata Storm would duplicate per tuple.
  int32_t producer_task = -1;
  uint64_t batch_seq = 0;

  std::vector<Tuple> tuples;

  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }
};

using JumboTuplePtr = std::unique_ptr<JumboTuple>;

/// Stable hash for fields-grouping (same key → same consumer replica).
uint64_t HashField(const Field& f);

}  // namespace brisk
