#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace brisk {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

void LogMessage::Emit() {
  if (emitted_) return;
  emitted_ = true;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
}

LogMessage::~LogMessage() { Emit(); }

FatalLogMessage::~FatalLogMessage() {
  Emit();
  std::abort();
}

}  // namespace internal
}  // namespace brisk
