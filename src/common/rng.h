// Deterministic, fast pseudo-random generators used across workloads,
// simulation, and the Monte-Carlo plan experiments (Fig. 14).
#pragma once

#include <cstdint>
#include <limits>

namespace brisk {

/// SplitMix64: used to seed Xoshiro256** and for cheap one-off hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stable per-replica seed derived from one job-level seed: mixes the
/// operator id and replica index through SplitMix64 so replicas get
/// decorrelated streams while the whole run stays a pure function of
/// `job_seed` (Job::WithSeed / EngineConfig::seed). Never returns 0,
/// so a seeded job is distinguishable from an unseeded one
/// (OperatorContext::seed == 0).
inline uint64_t DeriveSeed(uint64_t job_seed, int op, int replica) {
  uint64_t state = job_seed;
  SplitMix64(state);
  state ^= 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(op) + 1);
  SplitMix64(state);
  state ^= 0xbf58476d1ce4e5b9ULL * (static_cast<uint64_t>(replica) + 1);
  const uint64_t derived = SplitMix64(state);
  return derived == 0 ? 1 : derived;
}

/// Xoshiro256** — small, fast, high-quality PRNG. Deterministic given a
/// seed, which keeps every experiment in this repo reproducible.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x42d5ad9e0f1c3b7aULL) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping (slight bias is
    // irrelevant at our bounds << 2^64).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed sample with the given mean.
  double NextExponential(double mean);

  /// Zipf-distributed rank in [0, n) with skew theta (0 = uniform-ish).
  /// Uses the rejection-inversion method; suitable for word frequency
  /// generation in the WC workload.
  uint64_t NextZipf(uint64_t n, double theta);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];

  // Memoised Zipf constants (recomputed when (n, theta) changes).
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zeta_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace brisk
