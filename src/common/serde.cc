#include "common/serde.h"

#include <cstring>

namespace brisk {

namespace {

template <typename T>
void PutRaw(const T& v, std::vector<uint8_t>* out) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool GetRaw(const std::vector<uint8_t>& buf, size_t* offset, T* v) {
  if (*offset + sizeof(T) > buf.size()) return false;
  std::memcpy(v, buf.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

enum FieldTag : uint8_t { kInt = 0, kDouble = 1, kString = 2 };

}  // namespace

void SerializeTuple(const Tuple& t, std::vector<uint8_t>* out) {
  PutRaw(t.origin_ts_ns, out);
  PutRaw(t.stream_id, out);
  PutRaw(static_cast<uint32_t>(t.fields.size()), out);
  for (const auto& f : t.fields) {
    const auto tag = static_cast<uint8_t>(f.index());
    PutRaw(tag, out);
    switch (f.index()) {
      case 0:
        PutRaw(f.AsInt(), out);
        break;
      case 1:
        PutRaw(f.AsDouble(), out);
        break;
      case 2: {
        const std::string_view s = f.AsString();
        PutRaw(static_cast<uint32_t>(s.size()), out);
        out->insert(out->end(), s.begin(), s.end());
        break;
      }
    }
  }
}

StatusOr<Tuple> DeserializeTuple(const std::vector<uint8_t>& buf,
                                 size_t* offset) {
  Tuple t;
  uint32_t nfields = 0;
  if (!GetRaw(buf, offset, &t.origin_ts_ns) ||
      !GetRaw(buf, offset, &t.stream_id) ||
      !GetRaw(buf, offset, &nfields)) {
    return Status::OutOfRange("truncated tuple header");
  }
  t.fields.reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    uint8_t tag = 0;
    if (!GetRaw(buf, offset, &tag)) {
      return Status::OutOfRange("truncated field tag");
    }
    switch (tag) {
      case kInt: {
        int64_t v;
        if (!GetRaw(buf, offset, &v)) {
          return Status::OutOfRange("truncated int field");
        }
        t.fields.emplace_back(v);
        break;
      }
      case kDouble: {
        double v;
        if (!GetRaw(buf, offset, &v)) {
          return Status::OutOfRange("truncated double field");
        }
        t.fields.emplace_back(v);
        break;
      }
      case kString: {
        uint32_t len;
        if (!GetRaw(buf, offset, &len)) {
          return Status::OutOfRange("truncated string length");
        }
        if (*offset + len > buf.size()) {
          return Status::OutOfRange("truncated string payload");
        }
        t.fields.emplace_back(std::string_view(
            reinterpret_cast<const char*>(buf.data() + *offset), len));
        *offset += len;
        break;
      }
      default:
        return Status::InvalidArgument("unknown field tag " +
                                       std::to_string(tag));
    }
  }
  return t;
}

void SerializeBatch(const std::vector<Tuple>& tuples,
                    std::vector<uint8_t>* out) {
  for (const auto& t : tuples) SerializeTuple(t, out);
}

StatusOr<std::vector<Tuple>> DeserializeBatch(const std::vector<uint8_t>& buf,
                                              size_t count) {
  std::vector<Tuple> out;
  out.reserve(count);
  size_t offset = 0;
  for (size_t i = 0; i < count; ++i) {
    BRISK_ASSIGN_OR_RETURN(Tuple t, DeserializeTuple(buf, &offset));
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace brisk
