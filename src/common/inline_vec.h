// InlineVec: a fixed-inline-capacity vector that spills to the heap.
//
// The tuple hot path (§5.2, Appendix A) must not allocate per tuple:
// a Tuple's fields live inline in the Tuple itself for the common
// small arities, so constructing/moving a tuple touches no allocator.
// Beyond `InlineCap` elements the storage spills to one heap block and
// behaves like a normal vector (correct, just no longer allocation-
// free) — apps with wide tuples keep working unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace brisk {

template <typename T, size_t InlineCap>
class InlineVec {
  static_assert(InlineCap > 0, "inline capacity must be nonzero");
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "spill storage uses plain operator new");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() noexcept : data_(InlinePtr()) {}

  InlineVec(std::initializer_list<T> init) : InlineVec() {
    reserve(init.size());
    for (const T& v : init) ::new (data_ + size_++) T(v);
  }

  InlineVec(const InlineVec& o) : InlineVec() {
    reserve(o.size_);
    // size_ tracks the loop so a throwing element copy unwinds cleanly.
    for (size_t i = 0; i < o.size_; ++i) {
      ::new (data_ + i) T(o.data_[i]);
      ++size_;
    }
  }

  InlineVec(InlineVec&& o) noexcept(
      std::is_nothrow_move_constructible_v<T>)
      : InlineVec() {
    StealOrMove(std::move(o));
  }

  InlineVec& operator=(const InlineVec& o) {
    if (this != &o) {
      clear();
      reserve(o.size_);
      for (size_t i = 0; i < o.size_; ++i) {
        ::new (data_ + i) T(o.data_[i]);
        ++size_;
      }
    }
    return *this;
  }

  InlineVec& operator=(InlineVec&& o) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &o) {
      ReleaseStorage();
      StealOrMove(std::move(o));
    }
    return *this;
  }

  InlineVec& operator=(std::initializer_list<T> init) {
    clear();
    reserve(init.size());
    for (const T& v : init) ::new (data_ + size_++) T(v);
    return *this;
  }

  ~InlineVec() { ReleaseStorage(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }
  bool on_heap() const { return data_ != InlinePtr(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(size_t n) {
    if (n > cap_) Grow(n);
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) Grow(size_ + 1);
    T* slot = ::new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() { data_[--size_].~T(); }

 private:
  T* InlinePtr() noexcept { return reinterpret_cast<T*>(inline_storage_); }
  const T* InlinePtr() const noexcept {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  /// Heap donors hand over their block; inline donors move per element.
  /// Precondition: *this holds no constructed elements and owns no heap.
  void StealOrMove(InlineVec&& o) {
    if (o.on_heap()) {
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = o.InlinePtr();
      o.size_ = 0;
      o.cap_ = InlineCap;
    } else {
      data_ = InlinePtr();
      cap_ = InlineCap;
      for (size_t i = 0; i < o.size_; ++i) {
        ::new (data_ + i) T(std::move(o.data_[i]));
      }
      size_ = o.size_;
      o.clear();
    }
  }

  /// Destroys elements and frees any heap block, leaving the object in
  /// a valid empty-inline state.
  void ReleaseStorage() {
    clear();
    if (on_heap()) {
      ::operator delete(data_);
      data_ = InlinePtr();
      cap_ = InlineCap;
    }
  }

  void Grow(size_t needed) {
    size_t new_cap = cap_ * 2;
    if (new_cap < needed) new_cap = needed;
    T* heap = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (size_t i = 0; i < size_; ++i) {
      ::new (heap + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (on_heap()) ::operator delete(data_);
    data_ = heap;
    cap_ = new_cap;
  }

  alignas(T) unsigned char inline_storage_[InlineCap * sizeof(T)];
  T* data_;
  size_t size_ = 0;
  size_t cap_ = InlineCap;
};

}  // namespace brisk
