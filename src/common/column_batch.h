// Columnar batch view primitives for compiled pipelines.
//
// A fused chain executes batch-at-a-time over the tuples of one
// JumboTuple (§5.2): filters clear bits in a bitmap selection vector
// instead of copying survivors, maps rewrite fields in place, and only
// expanding stages (FlatMap/Aggregate emission) materialize new rows.
// The vector is a flat array of 64-bit words so a 64-tuple batch —
// the default jumbo size — is exactly one word; iteration over set
// bits uses count-trailing-zeros, which degrades gracefully to a
// dense loop when (as usual) every bit is set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace brisk {

/// Bitmap over the rows of one batch. Bit i set == row i is live.
/// Words beyond `size()` bits are kept zero so word-wise population
/// counts need no tail masking.
class SelectionVector {
 public:
  /// Re-targets the vector at a batch of `n` rows, all live (or all
  /// dead when `all_set` is false). Keeps word capacity across calls —
  /// steady state touches no allocator.
  void Reset(size_t n, bool all_set = true) {
    size_ = n;
    const size_t words = WordCount(n);
    words_.assign(words, all_set ? ~uint64_t{0} : uint64_t{0});
    if (all_set && n % 64 != 0 && words > 0) {
      words_[words - 1] = (uint64_t{1} << (n % 64)) - 1;
    }
  }

  size_t size() const { return size_; }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// Number of live rows.
  size_t CountSet() const {
    size_t n = 0;
    for (const uint64_t w : words_) n += static_cast<size_t>(PopCount(w));
    return n;
  }

  bool NoneSet() const {
    for (const uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  bool AllSet() const { return CountSet() == size_; }

  /// Calls `fn(row)` for every live row in ascending order. The ctz
  /// walk skips dead words entirely, so post-filter stages pay for
  /// survivors only.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    const size_t words = words_.size();
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const size_t i = (w << 6) + static_cast<size_t>(Ctz(bits));
        fn(i);
        bits &= bits - 1;
      }
    }
  }

 private:
  static size_t WordCount(size_t n) { return (n + 63) / 64; }

  static int PopCount(uint64_t w) { return __builtin_popcountll(w); }
  static int Ctz(uint64_t w) { return __builtin_ctzll(w); }

  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace brisk
