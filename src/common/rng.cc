#include "common/rng.h"

#include <cmath>

namespace brisk {

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  if (n == 0) return 0;
  if (theta <= 0.0) return NextBounded(n);
  // Classic Gray et al. computation with per-(n, theta) memoised
  // constants; callers in this repo use a fixed (n, theta) per
  // generator instance so the branch below is usually warm.
  if (zipf_n_ != n || zipf_theta_ != theta) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zeta_ = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      zeta_ += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zeta_);
  }
  double u = NextDouble();
  double uz = u * zeta_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace brisk
