// Single-writer counters readable from other threads without a data
// race.
//
// The engine's monitoring loops (graceful drain, the §5.3 statistics
// collection behind live re-optimization) read task counters while the
// owning executor thread updates them. Those reads only need to be
// approximately fresh, but plain uint64_t fields make them data races
// — undefined behavior, and exactly what a ThreadSanitizer CI job
// flags. RelaxedCounter keeps the owner's cost at a plain load+add+
// store (no atomic read-modify-write, so no `lock` prefix on the hot
// emit path) while making cross-thread reads well-defined relaxed
// loads.
#pragma once

#include <atomic>
#include <cstdint>

namespace brisk {

/// A 64-bit counter with exactly one writer. Mutating operators are
/// not atomic read-modify-writes — they are only safe from the owning
/// thread; any thread may read. Copyable (snapshot semantics) so stat
/// structs holding these can still be returned by value.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t v = 0) noexcept : v_(v) {}
  RelaxedCounter(const RelaxedCounter& o) noexcept : v_(o.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    Set(o.value());
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) noexcept {
    Set(v);
    return *this;
  }

  uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  operator uint64_t() const noexcept { return value(); }

  // Owner-thread-only mutations.
  RelaxedCounter& operator++() noexcept {
    Set(value() + 1);
    return *this;
  }
  RelaxedCounter& operator+=(uint64_t d) noexcept {
    Set(value() + d);
    return *this;
  }

 private:
  void Set(uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }

  std::atomic<uint64_t> v_;
};

}  // namespace brisk
