// Streaming histogram with log-spaced buckets, used for latency
// distributions (Fig. 7 CDF, Table 5 tail latencies) and the profiler's
// per-tuple execution time CDF (Fig. 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace brisk {

/// Fixed-layout histogram over positive values (e.g. nanoseconds).
///
/// Buckets grow geometrically: each is `kGrowth` times wider than the
/// previous, giving ~2% relative quantile error across twelve decades —
/// the same design RocksDB/HdrHistogram use for latency tracking. Not
/// thread-safe; each recording thread owns one and merges at the end.
class Histogram {
 public:
  Histogram();

  /// Records one sample (values < 1 clamp to the first bucket).
  void Add(double value);

  /// Records `count` identical samples (weighted add — e.g. one
  /// latency observation covering a whole tuple batch).
  void AddN(double value, uint64_t count);

  /// Merges another histogram's counts into this one.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Quantile q in [0, 1]; interpolates within the containing bucket.
  double Percentile(double q) const;

  double Median() const { return Percentile(0.5); }
  double P99() const { return Percentile(0.99); }

  /// (value, cumulative fraction) pairs for every non-empty bucket —
  /// directly plottable as a CDF.
  std::vector<std::pair<double, double>> Cdf() const;

  /// Multi-line human-readable summary.
  std::string ToString() const;

 private:
  static constexpr double kGrowth = 1.02;
  static constexpr int kNumBuckets = 1400;  // covers up to ~1e12

  int BucketFor(double value) const;
  double BucketLower(int idx) const;
  double BucketUpper(int idx) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace brisk
