#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace brisk {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(double value) const {
  if (value <= 1.0) return 0;
  int idx = static_cast<int>(std::log(value) / std::log(kGrowth));
  return std::min(idx, kNumBuckets - 1);
}

double Histogram::BucketLower(int idx) const {
  return std::pow(kGrowth, idx);
}

double Histogram::BucketUpper(int idx) const {
  return std::pow(kGrowth, idx + 1);
}

void Histogram::Add(double value) { AddN(value, 1); }

void Histogram::AddN(double value, uint64_t count) {
  if (count == 0) return;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * static_cast<double>(count);
  buckets_[BucketFor(value)] += count;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target) {
      // Linear interpolation within the bucket, clamped to observed
      // extremes so P0/P100 return min/max exactly.
      const double frac =
          buckets_[i] ? (target - cum) / static_cast<double>(buckets_[i]) : 0;
      double v = BucketLower(i) +
                 frac * (BucketUpper(i) - BucketLower(i));
      return std::clamp(v, min_, max_);
    }
    cum = next;
  }
  return max_;
}

std::vector<std::pair<double, double>> Histogram::Cdf() const {
  std::vector<std::pair<double, double>> out;
  if (count_ == 0) return out;
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    cum += buckets_[i];
    out.emplace_back(BucketUpper(i),
                     static_cast<double>(cum) / static_cast<double>(count_));
  }
  return out;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " min=" << min()
     << " p50=" << Percentile(0.50) << " p95=" << Percentile(0.95)
     << " p99=" << Percentile(0.99) << " max=" << max();
  return os.str();
}

}  // namespace brisk
