// Thread-local allocation hook for JumboTuple batch shells.
//
// The worker pool installs one BatchArena per socket (hw::NumaArena)
// on each of its worker threads, so every shell a producer task
// allocates in FlushBuffer comes from — and is first-touched on — the
// socket the task runs on. JumboTuple::operator new consults the hook;
// operator delete routes through a hidden per-shell provenance header,
// so a shell freed by a consumer on another socket (or by the
// single-threaded drain/finalize epilogues, which install no arena)
// still returns to the arena that produced it. Threads with no arena
// installed fall back to the global allocator; a null header marks
// those shells.
//
// Lifetime rule: an arena must outlive every shell it produced. The
// runtime guarantees this by owning its ArenaSet and destroying it
// after all tasks and channels (see BriskRuntime member order).
#pragma once

#include <cstddef>

namespace brisk {

class BatchArena {
 public:
  virtual ~BatchArena() = default;

  /// Both must be thread-safe: shells are freed by whichever thread
  /// drains them, concurrently with the producing thread allocating.
  virtual void* AllocateShell(size_t bytes) = 0;
  virtual void DeallocateShell(void* p, size_t bytes) = 0;
};

/// The calling thread's installed arena; null when shells should use
/// the global allocator.
BatchArena* CurrentBatchArena();

/// RAII install/restore of the calling thread's arena. Pool workers
/// hold one for the lifetime of their loop.
class BatchArenaScope {
 public:
  explicit BatchArenaScope(BatchArena* arena);
  ~BatchArenaScope();

  BatchArenaScope(const BatchArenaScope&) = delete;
  BatchArenaScope& operator=(const BatchArenaScope&) = delete;

 private:
  BatchArena* previous_;
};

}  // namespace brisk
