// Linear Road (LR), Fig. 18(c) — the most complex benchmark topology:
//
//   Spout -> Parser -> Dispatcher -+-> AvgSpeed -> LastAvgSpeed -+
//                                  |-> AccidentDetect ---+       |
//                                  |-> CountVehicle --+  |       |
//                                  |   (position) ----+--+-------+-> TollNotify -> Sink
//                                  |   (position) --------+-> AccidentNotify -> Sink
//                                  |-> DailyExpense  -> Sink
//                                  +-> AccountBalance -> Sink
//
// Stream selectivities follow Table 8 (position ≈ 0.99 of input;
// balance/daily requests ≈ 0; toll notifications per position, count
// and last-average-speed tuple; accident/notify/daily/balance outputs
// ≈ 0).
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "api/operator.h"
#include "api/topology.h"
#include "apps/common_ops.h"
#include "common/rng.h"
#include "model/operator_profile.h"

namespace brisk::apps {

/// First field of every LR tuple: what kind of event it carries.
enum LrTupleType : int64_t {
  kLrPosition = 0,   ///< [type, vehicle, segment, speed, lane]
  kLrBalance = 1,    ///< [type, vehicle]
  kLrDaily = 2,      ///< [type, vehicle, day]
  kLrAvgSpeed = 3,   ///< [type, segment, avg]
  kLrLasSpeed = 4,   ///< [type, segment, smoothed_avg]
  kLrAccident = 5,   ///< [type, segment]
  kLrCount = 6,      ///< [type, segment, vehicles]
  kLrToll = 7,       ///< [type, vehicle_or_segment, toll]
  kLrNotify = 8,     ///< [type, vehicle, segment]
};

struct LinearRoadParams {
  int num_vehicles = 20000;
  int num_segments = 100;
  double balance_fraction = 0.005;  ///< share of balance queries
  double daily_fraction = 0.005;    ///< share of daily-expense queries
  double stop_probability = 0.004;  ///< chance a car reports speed 0
  uint64_t seed = 47;
};

/// Raw event source mixing position reports with rare account queries.
class LinearRoadSpout : public api::Spout {
 public:
  explicit LinearRoadSpout(LinearRoadParams params)
      : params_(params), rng_(params.seed) {}

  Status Prepare(const api::OperatorContext& ctx) override;
  size_t NextBatch(size_t max_tuples, api::OutputCollector* out) override;

 private:
  LinearRoadParams params_;
  Rng rng_;
};

/// Routes raw events to the position / balance / daily streams.
/// Declared streams: 0 = "position", 1 = "balance", 2 = "daily"
/// (the default stream is repurposed as "position").
class LrDispatcher : public api::Operator {
 public:
  /// Resolves the named output streams ("balance_stream",
  /// "daily_exp_request") to ids; fails loudly if the topology no
  /// longer declares them.
  Status Prepare(const api::OperatorContext& ctx) override;
  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  uint16_t balance_stream_ = 0;
  uint16_t daily_stream_ = 0;
};

/// Per-segment running average speed over a sliding window of reports.
class LrAvgSpeed : public api::Operator {
 public:
  explicit LrAvgSpeed(LinearRoadParams params) : params_(params) {}
  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  struct SegWindow {
    std::deque<double> speeds;
    double sum = 0.0;
  };
  LinearRoadParams params_;
  std::unordered_map<int64_t, SegWindow> segments_;
};

/// Exponentially smoothed last average speed per segment.
class LrLastAvgSpeed : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  std::unordered_map<int64_t, double> smoothed_;
};

/// Flags a segment as an accident site after `kStopsForAccident`
/// consecutive zero-speed reports from one vehicle.
class LrAccidentDetect : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  static constexpr int kStopsForAccident = 4;
  std::unordered_map<int64_t, int> consecutive_stops_;  // per vehicle
};

/// Per-segment distinct-vehicle counter (emits the running count).
class LrCountVehicle : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  std::unordered_map<int64_t, std::set<int64_t>> vehicles_;
};

/// Notifies vehicles entering a segment with a known accident.
class LrAccidentNotify : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  std::set<int64_t> accident_segments_;
};

/// Computes tolls from congestion (vehicle counts), speed (las) and
/// accident state; emits one toll notification per position, count and
/// las input (Table 8).
class LrTollNotify : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  std::unordered_map<int64_t, double> seg_avg_speed_;
  std::unordered_map<int64_t, int64_t> seg_count_;
  std::set<int64_t> accident_segments_;
};

/// Answers daily-expenditure queries against synthetic history.
/// Output selectivity ~0 (Table 8): state is updated, nothing emitted.
class LrDailyExpense : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  std::unordered_map<int64_t, double> expenses_;
};

/// Maintains per-vehicle account balances; selectivity ~0 (Table 8).
class LrAccountBalance : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  std::unordered_map<int64_t, double> balances_;
};

StatusOr<api::Topology> BuildLinearRoad(std::shared_ptr<SinkTelemetry> sink,
                                        LinearRoadParams params = {});

model::ProfileSet LinearRoadProfiles(const LinearRoadParams& params = {});

}  // namespace brisk::apps
