// Registry over the four benchmark applications (§6.1) and the
// cost-profile variants for the systems the paper compares against.
#pragma once

#include <memory>
#include <string>

#include "api/topology.h"
#include "apps/common_ops.h"
#include "model/operator_profile.h"

namespace brisk::apps {

enum class AppId { kWordCount, kFraudDetection, kSpikeDetection, kLinearRoad };

inline constexpr AppId kAllApps[] = {AppId::kWordCount,
                                     AppId::kFraudDetection,
                                     AppId::kSpikeDetection,
                                     AppId::kLinearRoad};

const char* AppName(AppId id);

/// Which system's per-tuple costs a profile set models (§6.3, Fig. 8):
///   kBrisk     — BriskStream itself (small instruction footprint,
///                jumbo tuples);
///   kStormLike — Storm-era overheads: (de)serialization, duplicated
///                per-tuple headers, temporary-object churn. T_e is
///                4–20x Brisk's, "others" ≈ 10x (Fig. 8);
///   kFlinkLike — Flink-era overheads, slightly leaner than Storm, but
///                multi-input operators pay an extra stream-merger
///                (co-flat-map) cost (§6.3's LR discussion);
///   kBriskNoJumbo — Brisk without jumbo tuples (the Fig. 16
///                "-Instr.footprint" factor step): per-tuple queue
///                insertion and header costs return.
enum class SystemKind { kBrisk, kStormLike, kFlinkLike, kBriskNoJumbo };

const char* SystemName(SystemKind kind);

/// A ready-to-run application: topology + telemetry + Brisk profiles.
///
/// The topology lives behind a shared_ptr so its address is stable no
/// matter how the bundle is moved — ExecutionPlans hold a raw pointer
/// into it for the lifetime of the optimization/run.
struct AppBundle {
  std::string name;
  std::shared_ptr<const api::Topology> topology_ptr;
  std::shared_ptr<SinkTelemetry> telemetry;
  model::ProfileSet profiles;  ///< SystemKind::kBrisk costs

  const api::Topology& topology() const { return *topology_ptr; }
};

/// Builds an application with default workload parameters.
StatusOr<AppBundle> MakeApp(AppId id);

/// Cost profiles of `app` under a given system's runtime overheads.
/// The kBrisk profiles are the calibrated measurements; the legacy
/// variants derive from them with the Fig. 8 breakdown factors.
StatusOr<model::ProfileSet> ProfilesFor(AppId id, SystemKind kind);

}  // namespace brisk::apps
