#include "apps/spike_detection.h"

#include <algorithm>

#include "api/dsl.h"

namespace brisk::apps {

Status SensorSpout::Prepare(const api::OperatorContext& ctx) {
  // A seeded job (Job::WithSeed) supplies the per-replica seed so runs
  // are reproducible end-to-end.
  effective_seed_ =
      ctx.seed != 0 ? ctx.seed
                    : params_.seed + 0x7f4a7c15ULL * (ctx.replica_index + 1);
  rng_ = Rng(effective_seed_);
  return Status::OK();
}

bool SensorSpout::Rewind(const api::SourcePosition& to) {
  if (to.kind != api::SourcePosition::Kind::kTupleCount) return false;
  const uint64_t position = to.offset;
  // Re-seed and fast-forward: regenerate (and discard) exactly the RNG
  // draws the first `position` readings consumed, mirroring NextBatch's
  // draw sequence (device, reading, spike coin, spike magnitude).
  rng_ = Rng(effective_seed_);
  for (uint64_t i = 0; i < position; ++i) {
    (void)rng_.NextBounded(params_.num_devices);
    (void)rng_.NextDouble();
    if (rng_.NextBernoulli(0.01)) (void)rng_.NextDouble();
  }
  produced_ = position;
  return true;
}

size_t SensorSpout::NextBatch(size_t max_tuples, api::OutputCollector* out) {
  if (params_.max_readings > 0) {
    if (produced_ >= params_.max_readings) return 0;  // bounded: done
    max_tuples =
        std::min<uint64_t>(max_tuples, params_.max_readings - produced_);
  }
  produced_ += max_tuples;
  const int64_t now = NowNs();
  for (size_t i = 0; i < max_tuples; ++i) {
    Tuple t;
    t.fields.emplace_back(
        static_cast<int64_t>(rng_.NextBounded(params_.num_devices)));
    // Baseline around 20 with occasional 3-5x spikes.
    double reading = 15.0 + rng_.NextDouble() * 10.0;
    if (rng_.NextBernoulli(0.01)) reading *= 3.0 + rng_.NextDouble() * 2.0;
    t.fields.emplace_back(reading);
    t.origin_ts_ns = now;
    out->Emit(std::move(t));
  }
  return max_tuples;
}

void MovingAverage::Process(const Tuple& in, api::OutputCollector* out) {
  const int64_t device = in.GetInt(0);
  const double reading = in.GetDouble(1);
  WindowState& w = windows_[device];
  w.values.push_back(reading);
  w.sum += reading;
  if (static_cast<int>(w.values.size()) > params_.window) {
    w.sum -= w.values.front();
    w.values.pop_front();
  }
  Tuple t;
  t.fields.emplace_back(device);
  t.fields.emplace_back(reading);
  t.fields.emplace_back(w.sum / static_cast<double>(w.values.size()));
  t.origin_ts_ns = in.origin_ts_ns;
  out->Emit(std::move(t));
}

std::vector<api::KeyedStateEntry> MovingAverage::ExportKeyedState() {
  std::vector<api::KeyedStateEntry> out;
  out.reserve(windows_.size());
  for (auto& [device, window] : windows_) {
    out.push_back({Field(device),
                   std::make_shared<WindowState>(std::move(window))});
  }
  windows_.clear();
  return out;
}

void MovingAverage::ImportKeyedState(
    std::vector<api::KeyedStateEntry> entries) {
  for (auto& e : entries) {
    windows_[e.key.AsInt()] =
        std::move(*std::static_pointer_cast<WindowState>(e.state));
  }
}

std::vector<api::CheckpointEntry> MovingAverage::SnapshotKeyedState() {
  std::vector<api::CheckpointEntry> out;
  out.reserve(windows_.size());
  for (const auto& [device, window] : windows_) {
    Tuple state;
    state.fields.reserve(window.values.size() + 1);
    state.fields.emplace_back(window.sum);
    for (const double v : window.values) state.fields.emplace_back(v);
    out.push_back({Field(device), std::move(state)});
  }
  return out;
}

void MovingAverage::RestoreKeyedState(
    std::vector<api::CheckpointEntry> entries) {
  for (auto& e : entries) {
    WindowState w;
    w.sum = e.state.fields[0].AsDouble();
    for (size_t i = 1; i < e.state.fields.size(); ++i) {
      w.values.push_back(e.state.fields[i].AsDouble());
    }
    windows_[e.key.AsInt()] = std::move(w);
  }
}

void SpikeDetector::Process(const Tuple& in, api::OutputCollector* out) {
  const double reading = in.GetDouble(1);
  const double avg = in.GetDouble(2);
  const bool spike = avg > 0 && reading > params_.spike_threshold * avg;
  if (spike) ++spikes_;
  // Signal per input tuple regardless of detection (Appendix B).
  Tuple t;
  t.fields.emplace_back(in.GetInt(0));
  t.fields.emplace_back(static_cast<int64_t>(spike ? 1 : 0));
  t.origin_ts_ns = in.origin_ts_ns;
  out->Emit(std::move(t));
}

StatusOr<api::Topology> BuildSpikeDetection(
    std::shared_ptr<SinkTelemetry> sink, SpikeDetectionParams params) {
  api::TopologyBuilder b("spike-detection");
  b.AddSpout("spout",
             [params] { return std::make_unique<SensorSpout>(params); });
  b.AddBolt("parser", [] { return std::make_unique<ValidatingParser>(); })
      .ShuffleFrom("spout");
  b.AddBolt("moving_avg", [params] {
     return std::make_unique<MovingAverage>(params);
   }).FieldsFrom("parser", 0);
  b.AddBolt("spike_detect", [params] {
     return std::make_unique<SpikeDetector>(params);
   }).ShuffleFrom("moving_avg");
  b.AddBolt("sink", [sink] { return std::make_unique<CountingSink>(sink); })
      .ShuffleFrom("spike_detect");
  return std::move(b).Build();
}

StatusOr<api::Topology> BuildSpikeDetectionDsl(
    std::shared_ptr<SinkTelemetry> sink, SpikeDetectionParams params,
    dsl::SinkFn tap) {
  // Per-device sliding window, one per key, replica-local (the DSL's
  // Aggregate twin of MovingAverage::WindowState).
  struct Window {
    std::deque<double> values;
    double sum = 0.0;
  };
  dsl::Pipeline p("spike-detection");
  p.Source("spout",
           api::SpoutFactory(
               [params] { return std::make_unique<SensorSpout>(params); }))
      .Filter("parser", api::FilterOf(ParserKeeps, 1.0, "parser"))
      .KeyBy(0)
      .Aggregate<Window>(
          "moving_avg", {},
          std::function<void(Window&, const Tuple&, api::RowEmitter&)>(
              [params](Window& w, const Tuple& in, api::RowEmitter& out) {
                const double reading = in.GetDouble(1);
                w.values.push_back(reading);
                w.sum += reading;
                if (static_cast<int>(w.values.size()) > params.window) {
                  w.sum -= w.values.front();
                  w.values.pop_front();
                }
                Tuple t;
                t.fields.push_back(in.fields[0]);
                t.fields.emplace_back(reading);
                t.fields.emplace_back(
                    w.sum / static_cast<double>(w.values.size()));
                t.origin_ts_ns = in.origin_ts_ns;
                out.Emit(std::move(t));
              }),
          // Checkpoint codec: [sum, v0..vn]. The running sum is
          // stored, not recomputed, so a restored window is bit-exact
          // (floating-point summation order preserved).
          std::function<Tuple(const Window&)>([](const Window& w) {
            Tuple t;
            t.fields.reserve(w.values.size() + 1);
            t.fields.emplace_back(w.sum);
            for (const double v : w.values) t.fields.emplace_back(v);
            return t;
          }),
          std::function<Window(const Tuple&)>([](const Tuple& t) {
            Window w;
            w.sum = t.fields[0].AsDouble();
            for (size_t i = 1; i < t.fields.size(); ++i) {
              w.values.push_back(t.fields[i].AsDouble());
            }
            return w;
          }))
      .FlatMap("spike_detect",
               api::FlatMapOf(
                   [params](const Tuple& in, api::RowEmitter& out) {
                     const double reading = in.GetDouble(1);
                     const double avg = in.GetDouble(2);
                     const bool spike =
                         avg > 0 && reading > params.spike_threshold * avg;
                     Tuple t;
                     t.fields.push_back(in.fields[0]);
                     t.fields.emplace_back(
                         static_cast<int64_t>(spike ? 1 : 0));
                     t.origin_ts_ns = in.origin_ts_ns;
                     out.Emit(std::move(t));
                   },
                   1.0, "spike_detect"))
      .Sink("sink", [sink, tap](const Tuple& in) {
        sink->RecordTuple(in.origin_ts_ns, NowNs());
        if (tap) tap(in);
      });
  return std::move(p).Build();
}

model::ProfileSet SpikeDetectionProfiles(const SpikeDetectionParams& params) {
  (void)params;
  using model::OperatorProfile;
  model::ProfileSet p;
  constexpr double kReadingBytes = 24.0;
  p.Set("spout", OperatorProfile::Simple(/*te=*/380, /*m=*/2.0 * kReadingBytes,
                                         /*out=*/kReadingBytes, /*sel=*/1.0));
  p.Set("parser", OperatorProfile::Simple(/*te=*/450, /*m=*/kReadingBytes,
                                          /*out=*/kReadingBytes, /*sel=*/1.0));
  p.Set("moving_avg", OperatorProfile::Simple(/*te=*/5200, /*m=*/560.0,
                                              /*out=*/32.0, /*sel=*/1.0));
  p.Set("spike_detect", OperatorProfile::Simple(/*te=*/900, /*m=*/64.0,
                                                /*out=*/16.0, /*sel=*/1.0));
  p.Set("sink", OperatorProfile::Simple(/*te=*/120, /*m=*/16.0,
                                        /*out=*/8.0, /*sel=*/0.0));
  return p;
}

}  // namespace brisk::apps
