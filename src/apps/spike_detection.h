// Spike Detection (SD), Fig. 18(b):
//   Spout -> Parser -> MovingAverage -> SpikeDetection -> Sink
// Sensor readings flow through a per-device sliding-window average;
// the detector compares each reading against the average and emits a
// signal per input tuple regardless (Appendix B: selectivity one).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "api/dsl.h"
#include "api/operator.h"
#include "api/topology.h"
#include "apps/common_ops.h"
#include "common/rng.h"
#include "model/operator_profile.h"

namespace brisk::apps {

struct SpikeDetectionParams {
  int num_devices = 2048;
  int window = 64;            ///< moving-average window length
  double spike_threshold = 1.8;  ///< reading / avg ratio flagged as spike
  uint64_t seed = 31;
  /// Bounded-source cap: each spout replica stops after this many
  /// readings (0 = unbounded); see WordCountParams::max_sentences.
  uint64_t max_readings = 0;
};

/// Sensor source: (device_id, reading). Honors the job-level seed
/// (OperatorContext::seed) when one is set, else the params seed.
class SensorSpout : public api::Spout {
 public:
  explicit SensorSpout(SpikeDetectionParams params)
      : params_(params), rng_(params.seed) {}

  Status Prepare(const api::OperatorContext& ctx) override;
  size_t NextBatch(size_t max_tuples, api::OutputCollector* out) override;

  /// Replay support (checkpoint/restore): re-seeds and regenerates the
  /// discarded prefix's RNG draws, so the replayed reading stream is
  /// bit-identical to the original emission.
  bool Replayable() const override { return true; }
  api::SourcePosition Position() const override {
    return api::SourcePosition::Tuples(produced_);
  }
  bool Rewind(const api::SourcePosition& position) override;

 private:
  SpikeDetectionParams params_;
  Rng rng_;
  uint64_t effective_seed_ = 0;  ///< what Prepare seeded rng_ with
  uint64_t produced_ = 0;  ///< readings emitted (max_readings cap)
};

/// Per-device sliding-window mean; emits (device, reading, avg).
/// Implements the keyed-state hand-off hooks so windows survive live
/// re-partitioning across replication changes.
class MovingAverage : public api::Operator {
 public:
  explicit MovingAverage(SpikeDetectionParams params) : params_(params) {}

  void Process(const Tuple& in, api::OutputCollector* out) override;
  std::vector<api::KeyedStateEntry> ExportKeyedState() override;
  void ImportKeyedState(std::vector<api::KeyedStateEntry> entries) override;
  /// Checkpoint hooks. The window serializes as [sum, v0..vn] — the
  /// running sum is stored, not recomputed, so a restored window is
  /// bit-exact (floating-point summation order preserved).
  std::vector<api::CheckpointEntry> SnapshotKeyedState() override;
  void RestoreKeyedState(std::vector<api::CheckpointEntry> entries) override;

 private:
  struct WindowState {
    std::deque<double> values;
    double sum = 0.0;
  };
  SpikeDetectionParams params_;
  std::unordered_map<int64_t, WindowState> windows_;
};

/// Flags readings that exceed `spike_threshold` x window average.
class SpikeDetector : public api::Operator {
 public:
  explicit SpikeDetector(SpikeDetectionParams params) : params_(params) {}

  void Process(const Tuple& in, api::OutputCollector* out) override;

  uint64_t spikes() const { return spikes_; }

 private:
  SpikeDetectionParams params_;
  uint64_t spikes_ = 0;
};

/// Builds SD with the Storm-compatible TopologyBuilder. Kept as the
/// low-level-API reference; tests assert BuildSpikeDetectionDsl lowers
/// to this exact structure.
StatusOr<api::Topology> BuildSpikeDetection(
    std::shared_ptr<SinkTelemetry> sink, SpikeDetectionParams params = {});

/// The same SD dataflow as a dsl::Pipeline program (what MakeApp now
/// uses): Source → Filter(parser) → KeyBy(device).Aggregate(moving_avg)
/// → FlatMap(spike_detect) → Sink.
///
/// `tap`, when set, additionally receives every tuple the sink sees
/// ((device, spike-flag) pairs); copied per sink replica — shared
/// captures must synchronize.
StatusOr<api::Topology> BuildSpikeDetectionDsl(
    std::shared_ptr<SinkTelemetry> sink, SpikeDetectionParams params = {},
    dsl::SinkFn tap = nullptr);

model::ProfileSet SpikeDetectionProfiles(
    const SpikeDetectionParams& params = {});

}  // namespace brisk::apps
