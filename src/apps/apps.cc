#include "apps/apps.h"

#include "apps/fraud_detection.h"
#include "apps/linear_road.h"
#include "apps/spike_detection.h"
#include "apps/word_count.h"

namespace brisk::apps {

const char* AppName(AppId id) {
  switch (id) {
    case AppId::kWordCount:
      return "WC";
    case AppId::kFraudDetection:
      return "FD";
    case AppId::kSpikeDetection:
      return "SD";
    case AppId::kLinearRoad:
      return "LR";
  }
  return "?";
}

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kBrisk:
      return "BriskStream";
    case SystemKind::kStormLike:
      return "Storm";
    case SystemKind::kFlinkLike:
      return "Flink";
    case SystemKind::kBriskNoJumbo:
      return "Brisk(-jumbo)";
  }
  return "?";
}

StatusOr<AppBundle> MakeApp(AppId id) {
  AppBundle bundle;
  bundle.name = AppName(id);
  bundle.telemetry = std::make_shared<SinkTelemetry>();
  switch (id) {
    case AppId::kWordCount: {
      BRISK_ASSIGN_OR_RETURN(api::Topology t,
                             BuildWordCountDsl(bundle.telemetry));
      bundle.topology_ptr = std::make_shared<api::Topology>(std::move(t));
      bundle.profiles = WordCountProfiles();
      break;
    }
    case AppId::kFraudDetection: {
      BRISK_ASSIGN_OR_RETURN(api::Topology t,
                             BuildFraudDetection(bundle.telemetry));
      bundle.topology_ptr = std::make_shared<api::Topology>(std::move(t));
      bundle.profiles = FraudDetectionProfiles();
      break;
    }
    case AppId::kSpikeDetection: {
      BRISK_ASSIGN_OR_RETURN(api::Topology t,
                             BuildSpikeDetectionDsl(bundle.telemetry));
      bundle.topology_ptr = std::make_shared<api::Topology>(std::move(t));
      bundle.profiles = SpikeDetectionProfiles();
      break;
    }
    case AppId::kLinearRoad: {
      BRISK_ASSIGN_OR_RETURN(api::Topology t,
                             BuildLinearRoad(bundle.telemetry));
      bundle.topology_ptr = std::make_shared<api::Topology>(std::move(t));
      bundle.profiles = LinearRoadProfiles();
      break;
    }
  }
  return bundle;
}

namespace {

/// Derives a legacy system's profiles from Brisk's (Fig. 8): the
/// function-execution component inflates by `te_factor` (instruction
/// cache misses, front-end stalls) and every tuple pays `others_cycles`
/// of per-tuple overhead (serialization, duplicated headers, temporary
/// objects, per-tuple queue insertion).
model::ProfileSet Legacy(const model::ProfileSet& brisk, double te_factor,
                         double others_cycles) {
  model::ProfileSet out;
  for (const auto& [name, p] : brisk.all()) {
    model::OperatorProfile q = p;
    q.te_cycles = p.te_cycles * te_factor + others_cycles;
    out.Set(name, q);
  }
  return out;
}

/// Flink merges multi-input streams through an extra co-flat-map stage
/// (§6.3): charge subscribing operators of multi-input apps an extra
/// 40% on T_e. Applied per-operator below where the topology has
/// multi-input consumers.
void AddMergerCost(const api::Topology& topo, model::ProfileSet* profiles) {
  for (const auto& op : topo.ops()) {
    if (op.inputs.size() > 1) {
      auto p = profiles->Get(op.name);
      if (p.ok()) {
        auto q = *p;
        q.te_cycles *= 1.4;
        profiles->Set(op.name, q);
      }
    }
  }
}

}  // namespace

StatusOr<model::ProfileSet> ProfilesFor(AppId id, SystemKind kind) {
  BRISK_ASSIGN_OR_RETURN(AppBundle bundle, MakeApp(id));
  switch (kind) {
    case SystemKind::kBrisk:
      return bundle.profiles;
    case SystemKind::kStormLike: {
      // Fig. 8: the legacy overhead is dominated by a *flat* per-tuple
      // cost (serialization, duplicated headers, huge instruction
      // footprint) — light operators suffer a 10-20x blow-up while
      // compute-heavy ones (FD's predictor) only a few x, which is why
      // the paper's speedups span 3.2x (SD) to 20.2x (WC).
      return Legacy(bundle.profiles, /*te_factor=*/2.2,
                    /*others_cycles=*/6500.0);
    }
    case SystemKind::kFlinkLike: {
      model::ProfileSet p = Legacy(bundle.profiles, /*te_factor=*/1.8,
                                   /*others_cycles=*/4500.0);
      AddMergerCost(bundle.topology(), &p);
      return p;
    }
    case SystemKind::kBriskNoJumbo: {
      // Without jumbo tuples each tuple pays its own header + queue
      // insertion (~leaner than a full legacy runtime).
      return Legacy(bundle.profiles, /*te_factor=*/1.15,
                    /*others_cycles=*/1800.0);
    }
  }
  return Status::InvalidArgument("unknown system kind");
}

}  // namespace brisk::apps
