// Word Count (WC), the paper's running example (Fig. 2):
//   Spout -> Parser -> Splitter -> Counter -> Sink
// Spout emits sentences of ten random words; Splitter has selectivity
// ten; Counter is stateful (fields-grouped on the word).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/operator.h"
#include "api/topology.h"
#include "apps/common_ops.h"
#include "common/rng.h"
#include "model/operator_profile.h"

namespace brisk::apps {

/// Workload knobs for WC.
struct WordCountParams {
  int words_per_sentence = 10;   ///< Splitter selectivity (§2.2)
  int vocabulary = 4096;         ///< distinct words
  double zipf_theta = 0.6;       ///< word frequency skew
  uint64_t seed = 17;
};

/// Sentence source: each tuple is one sentence string of
/// `words_per_sentence` dictionary words.
class SentenceSpout : public api::Spout {
 public:
  explicit SentenceSpout(WordCountParams params);

  Status Prepare(const api::OperatorContext& ctx) override;
  size_t NextBatch(size_t max_tuples, api::OutputCollector* out) override;

 private:
  WordCountParams params_;
  Rng rng_;
  std::vector<std::string> dictionary_;
};

/// Splits each sentence into words; emits one tuple per word.
class Splitter : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;
};

/// Stateful word counter: hashmap word -> occurrences, emits
/// (word, count) per input word (§2.2).
class WordCounter : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  std::unordered_map<std::string, int64_t> counts_;
};

/// Builds the WC topology with the Storm-compatible TopologyBuilder,
/// wired to the given telemetry. Kept as the low-level-API reference:
/// tests assert BuildWordCountDsl lowers to this exact structure.
StatusOr<api::Topology> BuildWordCount(std::shared_ptr<SinkTelemetry> sink,
                                       WordCountParams params = {});

/// The same WC dataflow as a dsl::Pipeline program (what MakeApp now
/// uses): Source → Filter(parser) → FlatMap(splitter) →
/// KeyBy(word).Aggregate(counter) → Sink. Lowers to a Topology
/// structurally identical to BuildWordCount's.
StatusOr<api::Topology> BuildWordCountDsl(std::shared_ptr<SinkTelemetry> sink,
                                          WordCountParams params = {});

/// Calibrated BriskStream profiles for WC (cycles; derived from the
/// paper's Table 3 measurements at Server A's 1.2 GHz — e.g. Splitter
/// T_e 1612.8 ns ≈ 1935 cycles, Counter 612.3 ns ≈ 735 cycles).
model::ProfileSet WordCountProfiles(const WordCountParams& params = {});

}  // namespace brisk::apps
