// Word Count (WC), the paper's running example (Fig. 2):
//   Spout -> Parser -> Splitter -> Counter -> Sink
// Spout emits sentences of ten random words; Splitter has selectivity
// ten; Counter is stateful (fields-grouped on the word).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/dsl.h"
#include "api/operator.h"
#include "api/topology.h"
#include "apps/common_ops.h"
#include "common/rng.h"
#include "model/operator_profile.h"

namespace brisk::apps {

/// Workload knobs for WC.
struct WordCountParams {
  int words_per_sentence = 10;   ///< Splitter selectivity (§2.2)
  int vocabulary = 4096;         ///< distinct words
  double zipf_theta = 0.6;       ///< word frequency skew
  uint64_t seed = 17;
  /// Bounded-source cap: each spout replica stops after this many
  /// sentences (0 = unbounded). With a fixed seed this makes a whole
  /// run's tuple population exact — the determinism the differential
  /// and migration tests assert on.
  uint64_t max_sentences = 0;
};

/// Sentence source: each tuple is one sentence string of
/// `words_per_sentence` dictionary words. Honors the job-level seed
/// (OperatorContext::seed) when one is set, else the params seed.
class SentenceSpout : public api::Spout {
 public:
  explicit SentenceSpout(WordCountParams params);

  Status Prepare(const api::OperatorContext& ctx) override;
  size_t NextBatch(size_t max_tuples, api::OutputCollector* out) override;

  /// Replay support (checkpoint/restore): the sentence stream is a
  /// pure function of the effective seed, so rewinding re-seeds and
  /// regenerates the discarded prefix's RNG draws — the replayed
  /// suffix is bit-identical to the original emission.
  bool Replayable() const override { return true; }
  api::SourcePosition Position() const override {
    return api::SourcePosition::Tuples(produced_);
  }
  bool Rewind(const api::SourcePosition& position) override;

 private:
  WordCountParams params_;
  Rng rng_;
  uint64_t effective_seed_ = 0;  ///< what Prepare seeded rng_ with
  std::vector<std::string> dictionary_;
  uint64_t produced_ = 0;  ///< sentences emitted (max_sentences cap)
};

/// Splits each sentence into words; emits one tuple per word.
class Splitter : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;
};

/// Stateful word counter: hashmap word -> occurrences, emits
/// (word, count) per input word (§2.2). Implements the keyed-state
/// hand-off hooks so counts survive live re-partitioning when a plan
/// migration changes the counter's replication.
class WordCounter : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;
  std::vector<api::KeyedStateEntry> ExportKeyedState() override;
  void ImportKeyedState(std::vector<api::KeyedStateEntry> entries) override;
  /// Checkpoint hooks: non-destructive (the job keeps running on the
  /// same state after the snapshot), serializable counts.
  std::vector<api::CheckpointEntry> SnapshotKeyedState() override;
  void RestoreKeyedState(std::vector<api::CheckpointEntry> entries) override;

 private:
  std::unordered_map<std::string, int64_t> counts_;
};

/// Builds the WC topology with the Storm-compatible TopologyBuilder,
/// wired to the given telemetry. Kept as the low-level-API reference:
/// tests assert BuildWordCountDsl lowers to this exact structure.
StatusOr<api::Topology> BuildWordCount(std::shared_ptr<SinkTelemetry> sink,
                                       WordCountParams params = {});

/// The same WC dataflow as a dsl::Pipeline program (what MakeApp now
/// uses): Source → Filter(parser) → FlatMap(splitter) →
/// KeyBy(word).Aggregate(counter) → Sink. Lowers to a Topology
/// structurally identical to BuildWordCount's.
///
/// `tap`, when set, additionally receives every tuple the sink sees
/// ((word, count) pairs) — the hook the differential/migration tests
/// use to capture exact sink multisets. The tap is copied per sink
/// replica and may run concurrently; shared captures must synchronize.
StatusOr<api::Topology> BuildWordCountDsl(std::shared_ptr<SinkTelemetry> sink,
                                          WordCountParams params = {},
                                          dsl::SinkFn tap = nullptr);

/// File-backed WC: the same kernelized parser → splitter → counter
/// chain, fed from a record file through the shared-mmap source
/// (io/mmap_source.h) instead of the synthetic SentenceSpout. Source
/// positions are byte offsets, so the job checkpoints and restores to
/// exact record boundaries. When `out_path` is non-empty, the counter
/// stream additionally egresses binary (word, count) records there
/// ("egress" operator; per-key counts are monotone, so the maximum
/// count per word in the output is the final tally).
dsl::Pipeline BuildFileWordCountDsl(std::shared_ptr<SinkTelemetry> sink,
                                    io::FileSourceOptions source,
                                    std::string out_path = {},
                                    dsl::SinkFn tap = nullptr);

/// Calibrated BriskStream profiles for WC (cycles; derived from the
/// paper's Table 3 measurements at Server A's 1.2 GHz — e.g. Splitter
/// T_e 1612.8 ns ≈ 1935 cycles, Counter 612.3 ns ≈ 735 cycles).
model::ProfileSet WordCountProfiles(const WordCountParams& params = {});

/// Knobs for the drifting WC feed (§5.3 adaptive scenarios): the first
/// `drift_at` sentences of the whole feed have `long_words` words, the
/// rest `short_words` (e.g. the upstream feed switched from documents
/// to search queries).
struct DriftingWordCountParams {
  uint64_t drift_at = 8000;
  /// Bound per spout replica (0 = unbounded), like
  /// WordCountParams::max_sentences.
  uint64_t total_per_replica = 0;
  int long_words = 10;
  int short_words = 3;
  int vocabulary = 512;
};

/// The drifting WC program used by the autopilot demo and the drift
/// smoke test. The drift phase is a property of the external feed, so
/// it lives in one counter shared by every spout replica — including
/// replicas a live migration starts later (a per-replica counter
/// would make a freshly started replica replay the pre-drift phase
/// and re-pollute the stream). Operator names match WordCountProfiles
/// so profile sets transfer; sources honor OperatorContext::seed.
dsl::Pipeline BuildDriftingWordCountDsl(std::shared_ptr<SinkTelemetry> sink,
                                        DriftingWordCountParams params = {},
                                        dsl::SinkFn tap = nullptr);

}  // namespace brisk::apps
