#include "apps/word_count.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "api/dsl.h"

namespace brisk::apps {

namespace {

/// The splitter body as a kernel expand function, shared by the WC
/// twins, the drifting variant, and the Storm-layer kernel
/// declaration: one word tuple per whitespace-separated token.
void SplitSentenceKernel(const Tuple& in, api::RowEmitter& out) {
  const std::string_view sentence = in.GetString(0);
  for (size_t start = 0; start < sentence.size();) {
    size_t end = sentence.find(' ', start);
    if (end == std::string_view::npos) end = sentence.size();
    if (end > start) {
      Tuple t;
      t.fields.emplace_back(sentence.substr(start, end - start));
      t.origin_ts_ns = in.origin_ts_ns;
      out.Emit(std::move(t));
    }
    start = end + 1;
  }
}

/// The counter body as a kernel aggregate update (per-key int64 count,
/// one (word, count) emission per input word).
void CountWordKernel(int64_t& count, const Tuple& in, api::RowEmitter& out) {
  Tuple t;
  t.fields.push_back(in.fields[0]);
  t.fields.emplace_back(++count);
  t.origin_ts_ns = in.origin_ts_ns;
  out.Emit(std::move(t));
}

}  // namespace

SentenceSpout::SentenceSpout(WordCountParams params)
    : params_(params), rng_(params.seed) {}

Status SentenceSpout::Prepare(const api::OperatorContext& ctx) {
  // Distinct seed per replica so replicas emit different sentences; a
  // seeded job (Job::WithSeed) supplies the per-replica seed instead,
  // making runs reproducible end-to-end.
  effective_seed_ =
      ctx.seed != 0
          ? ctx.seed
          : params_.seed + 0x9e3779b9ULL * (ctx.replica_index + 1);
  rng_ = Rng(effective_seed_);
  dictionary_.reserve(params_.vocabulary);
  Rng dict_rng(params_.seed);  // shared dictionary across replicas
  static const char* kSyllables[] = {"ka", "lo", "mi", "ra", "tu", "ves",
                                     "zor", "pin", "qua", "sel", "dra",
                                     "fen", "gul", "hex", "jov", "wyn"};
  for (int i = 0; i < params_.vocabulary; ++i) {
    std::string w;
    const int syllables = 2 + static_cast<int>(dict_rng.NextBounded(3));
    for (int s = 0; s < syllables; ++s) {
      w += kSyllables[dict_rng.NextBounded(std::size(kSyllables))];
    }
    w += std::to_string(i & 0xff);  // de-duplicate collisions cheaply
    dictionary_.push_back(std::move(w));
  }
  return Status::OK();
}

size_t SentenceSpout::NextBatch(size_t max_tuples,
                                api::OutputCollector* out) {
  if (params_.max_sentences > 0) {
    if (produced_ >= params_.max_sentences) return 0;  // bounded: done
    max_tuples =
        std::min<uint64_t>(max_tuples, params_.max_sentences - produced_);
  }
  produced_ += max_tuples;
  const int64_t now = NowNs();
  for (size_t i = 0; i < max_tuples; ++i) {
    std::string sentence;
    sentence.reserve(params_.words_per_sentence * 8);
    for (int w = 0; w < params_.words_per_sentence; ++w) {
      if (w) sentence += ' ';
      sentence += dictionary_[rng_.NextZipf(dictionary_.size(),
                                            params_.zipf_theta)];
    }
    Tuple t;
    t.fields.emplace_back(std::move(sentence));
    t.origin_ts_ns = now;
    out->Emit(std::move(t));
  }
  return max_tuples;
}

bool SentenceSpout::Rewind(const api::SourcePosition& to) {
  if (to.kind != api::SourcePosition::Kind::kTupleCount) return false;
  const uint64_t position = to.offset;
  // Re-seed and fast-forward: each sentence consumes exactly
  // words_per_sentence Zipf draws, so regenerating (and discarding)
  // that many draws leaves the RNG exactly where it was after sentence
  // `position` — the replayed stream continues bit-identically.
  rng_ = Rng(effective_seed_);
  for (uint64_t s = 0; s < position; ++s) {
    for (int w = 0; w < params_.words_per_sentence; ++w) {
      (void)rng_.NextZipf(dictionary_.size(), params_.zipf_theta);
    }
  }
  produced_ = position;
  return true;
}

void Splitter::Process(const Tuple& in, api::OutputCollector* out) {
  const std::string_view sentence = in.GetString(0);
  size_t start = 0;
  while (start < sentence.size()) {
    size_t end = sentence.find(' ', start);
    if (end == std::string_view::npos) end = sentence.size();
    if (end > start) {
      Tuple t;
      t.fields.emplace_back(sentence.substr(start, end - start));
      t.origin_ts_ns = in.origin_ts_ns;
      out->Emit(std::move(t));
    }
    start = end + 1;
  }
}

void WordCounter::Process(const Tuple& in, api::OutputCollector* out) {
  const std::string_view word = in.GetString(0);
  // Word keys are short (SSO) — the only steady-state allocations here
  // are map nodes for first-seen words.
  const int64_t count = ++counts_[std::string(word)];
  Tuple t;
  t.fields.emplace_back(word);
  t.fields.emplace_back(count);
  t.origin_ts_ns = in.origin_ts_ns;
  out->Emit(std::move(t));
}

std::vector<api::KeyedStateEntry> WordCounter::ExportKeyedState() {
  std::vector<api::KeyedStateEntry> out;
  out.reserve(counts_.size());
  for (auto& [word, count] : counts_) {
    out.push_back({Field(word), std::make_shared<int64_t>(count)});
  }
  counts_.clear();
  return out;
}

void WordCounter::ImportKeyedState(std::vector<api::KeyedStateEntry> entries) {
  for (auto& e : entries) {
    counts_[std::string(e.key.AsString())] +=
        *std::static_pointer_cast<int64_t>(e.state);
  }
}

std::vector<api::CheckpointEntry> WordCounter::SnapshotKeyedState() {
  std::vector<api::CheckpointEntry> out;
  out.reserve(counts_.size());
  for (const auto& [word, count] : counts_) {
    Tuple state;
    state.fields.emplace_back(count);
    out.push_back({Field(word), std::move(state)});
  }
  return out;
}

void WordCounter::RestoreKeyedState(
    std::vector<api::CheckpointEntry> entries) {
  for (auto& e : entries) {
    counts_[std::string(e.key.AsString())] = e.state.fields[0].AsInt();
  }
}

StatusOr<api::Topology> BuildWordCount(std::shared_ptr<SinkTelemetry> sink,
                                       WordCountParams params) {
  api::TopologyBuilder b("word-count");
  b.AddSpout("spout", [params] { return std::make_unique<SentenceSpout>(params); });
  // The kernel declarations mirror the bolts' behavior exactly, so the
  // fusion pass can lower a parser+splitter chain to one compiled
  // pipeline; the factories stay authoritative when unfused.
  b.AddBolt("parser", [] { return std::make_unique<ValidatingParser>(); })
      .ShuffleFrom("spout")
      .WithKernels({api::FilterOf(ParserKeeps, 1.0, "parser")});
  b.AddBolt("splitter", [] { return std::make_unique<Splitter>(); })
      .ShuffleFrom("parser")
      .WithKernels({api::FlatMapOf(
          SplitSentenceKernel,
          static_cast<double>(params.words_per_sentence), "splitter")});
  b.AddBolt("counter", [] { return std::make_unique<WordCounter>(); })
      .FieldsFrom("splitter", 0);
  b.AddBolt("sink", [sink] { return std::make_unique<CountingSink>(sink); })
      .ShuffleFrom("counter");
  return std::move(b).Build();
}

StatusOr<api::Topology> BuildWordCountDsl(std::shared_ptr<SinkTelemetry> sink,
                                          WordCountParams params,
                                          dsl::SinkFn tap) {
  dsl::Pipeline p("word-count");
  p.Source("spout",
           api::SpoutFactory(
               [params] { return std::make_unique<SentenceSpout>(params); }))
      .Filter("parser", api::FilterOf(ParserKeeps, 1.0, "parser"))
      .FlatMap("splitter",
               api::FlatMapOf(SplitSentenceKernel,
                              static_cast<double>(params.words_per_sentence),
                              "splitter"))
      .KeyBy(0)
      .Aggregate<int64_t>(
          "counter", 0,
          std::function<void(int64_t&, const Tuple&, api::RowEmitter&)>(
              CountWordKernel))
      .Sink("sink", [sink, tap](const Tuple& in) {
        sink->RecordTuple(in.origin_ts_ns, NowNs());
        if (tap) tap(in);
      });
  return std::move(p).Build();
}

dsl::Pipeline BuildFileWordCountDsl(std::shared_ptr<SinkTelemetry> sink,
                                    io::FileSourceOptions source,
                                    std::string out_path, dsl::SinkFn tap) {
  dsl::Pipeline p("wc-file");
  auto counted =
      p.FromFile("spout", std::move(source))
          .Filter("parser", api::FilterOf(ParserKeeps, 1.0, "parser"))
          .FlatMap("splitter", api::FlatMapOf(SplitSentenceKernel, 10.0,
                                              "splitter"))
          .KeyBy(0)
          .Aggregate<int64_t>(
              "counter", 0,
              std::function<void(int64_t&, const Tuple&, api::RowEmitter&)>(
                  CountWordKernel));
  counted.Sink("sink", [sink, tap](const Tuple& in) {
    sink->RecordTuple(in.origin_ts_ns, NowNs());
    if (tap) tap(in);
  });
  if (!out_path.empty()) {
    counted.ToFile("egress", std::move(out_path));
  }
  return p;
}

dsl::Pipeline BuildDriftingWordCountDsl(std::shared_ptr<SinkTelemetry> sink,
                                        DriftingWordCountParams params,
                                        dsl::SinkFn tap) {
  auto feed_position = std::make_shared<std::atomic<uint64_t>>(0);
  dsl::Pipeline p("wc-drift");
  p.Source("spout",
           dsl::SourceFactory([feed_position, params](
                                  const api::OperatorContext& ctx)
                                  -> dsl::SourceFn {
             auto rng = std::make_shared<Rng>(
                 ctx.seed != 0 ? ctx.seed : 4242 + ctx.replica_index);
             auto produced = std::make_shared<uint64_t>(0);
             return [rng, produced, feed_position, params](
                        size_t max_tuples, dsl::Collector& out) -> size_t {
               const int64_t now = NowNs();
               size_t emitted = 0;
               for (size_t i = 0; i < max_tuples; ++i) {
                 if (params.total_per_replica > 0 &&
                     *produced >= params.total_per_replica) {
                   break;
                 }
                 const int words =
                     feed_position->fetch_add(1) < params.drift_at
                         ? params.long_words
                         : params.short_words;
                 ++*produced;
                 std::string sentence;
                 sentence.reserve(static_cast<size_t>(words) * 6);
                 for (int w = 0; w < words; ++w) {
                   if (w) sentence += ' ';
                   sentence += 'w';
                   sentence += std::to_string(rng->NextBounded(
                       static_cast<uint64_t>(params.vocabulary)));
                 }
                 Tuple t;
                 t.fields.emplace_back(std::move(sentence));
                 t.origin_ts_ns = now;
                 out.Emit(std::move(t));
                 ++emitted;
               }
               return emitted;
             };
           }))
      .Filter("parser", api::FilterOf(ParserKeeps, 1.0, "parser"))
      .FlatMap("splitter", api::FlatMapOf(SplitSentenceKernel,
                                          static_cast<double>(
                                              params.long_words),
                                          "splitter"))
      .KeyBy(0)
      .Aggregate<int64_t>(
          "counter", 0,
          std::function<void(int64_t&, const Tuple&, api::RowEmitter&)>(
              CountWordKernel))
      .Sink("sink", [sink, tap](const Tuple& in) {
        sink->RecordTuple(in.origin_ts_ns, NowNs());
        if (tap) tap(in);
      });
  return p;
}

model::ProfileSet WordCountProfiles(const WordCountParams& params) {
  using model::OperatorProfile;
  model::ProfileSet p;
  const double words = params.words_per_sentence;
  const double sentence_bytes = words * 8.0;  // ~8 B per word + spaces

  // T_e in cycles, calibrated against the paper's Table 3 / Fig. 3
  // profiles on Server A (1.2 GHz): Splitter 1612.8 ns, Counter
  // 612.3 ns; spout/parser/sink are light.
  p.Set("spout",
        OperatorProfile::Simple(/*te=*/360, /*m=*/2.5 * sentence_bytes,
                                /*out=*/sentence_bytes, /*sel=*/1.0));
  p.Set("parser",
        OperatorProfile::Simple(/*te=*/500, /*m=*/2.0 * sentence_bytes,
                                /*out=*/sentence_bytes, /*sel=*/1.0));
  p.Set("splitter",
        OperatorProfile::Simple(/*te=*/1935, /*m=*/3.0 * sentence_bytes,
                                /*out=*/16.0, /*sel=*/words));
  p.Set("counter", OperatorProfile::Simple(/*te=*/735, /*m=*/96.0,
                                           /*out=*/24.0, /*sel=*/1.0));
  p.Set("sink", OperatorProfile::Simple(/*te=*/120, /*m=*/24.0,
                                        /*out=*/8.0, /*sel=*/0.0));
  return p;
}

}  // namespace brisk::apps
