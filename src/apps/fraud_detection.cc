#include "apps/fraud_detection.h"

namespace brisk::apps {

Status TransactionSpout::Prepare(const api::OperatorContext& ctx) {
  rng_ = Rng(params_.seed + 0x51ed2701ULL * (ctx.replica_index + 1));
  return Status::OK();
}

size_t TransactionSpout::NextBatch(size_t max_tuples,
                                   api::OutputCollector* out) {
  const int64_t now = NowNs();
  for (size_t i = 0; i < max_tuples; ++i) {
    Tuple t;
    t.fields.emplace_back(static_cast<int64_t>(
        rng_.NextBounded(params_.num_accounts)));
    // Log-normal-ish spend: mostly small amounts, occasional spikes.
    const double amount = rng_.NextBernoulli(0.02)
                              ? 500.0 + rng_.NextDouble() * 4500.0
                              : 1.0 + rng_.NextDouble() * 120.0;
    t.fields.emplace_back(amount);
    t.fields.emplace_back(static_cast<int64_t>(rng_.NextBounded(64)));
    t.origin_ts_ns = now;
    out->Emit(std::move(t));
  }
  return max_tuples;
}

int FraudPredictor::BucketOf(double amount) const {
  int b = 0;
  double edge = 10.0;
  while (b < params_.states - 1 && amount > edge) {
    edge *= 3.0;
    ++b;
  }
  return b;
}

void FraudPredictor::Process(const Tuple& in, api::OutputCollector* out) {
  const int64_t account = in.GetInt(0);
  const double amount = in.GetDouble(1);
  const int state = BucketOf(amount);

  AccountState& s = accounts_[account];
  if (s.transitions.empty()) {
    s.transitions.assign(
        static_cast<size_t>(params_.states) * params_.states, 0);
  }
  double score = 0.0;
  if (s.last_state >= 0) {
    const auto row =
        static_cast<size_t>(s.last_state) * params_.states;
    uint32_t total = 0;
    for (int j = 0; j < params_.states; ++j) total += s.transitions[row + j];
    const uint32_t seen = s.transitions[row + state];
    // Rare transition (low empirical probability) => high fraud score.
    score = total > 0
                ? 1.0 - static_cast<double>(seen) / static_cast<double>(total)
                : 0.5;
    ++s.transitions[row + state];
  }
  s.last_state = state;

  // Emit a signal per input regardless of the detection outcome
  // (Appendix B: selectivity one).
  Tuple t;
  t.fields.emplace_back(account);
  t.fields.emplace_back(score);
  t.origin_ts_ns = in.origin_ts_ns;
  out->Emit(std::move(t));
}

StatusOr<api::Topology> BuildFraudDetection(
    std::shared_ptr<SinkTelemetry> sink, FraudDetectionParams params) {
  api::TopologyBuilder b("fraud-detection");
  b.AddSpout("spout", [params] {
    return std::make_unique<TransactionSpout>(params);
  });
  b.AddBolt("parser", [] { return std::make_unique<ValidatingParser>(); })
      .ShuffleFrom("spout");
  b.AddBolt("predict", [params] {
     return std::make_unique<FraudPredictor>(params);
   }).FieldsFrom("parser", 0);
  b.AddBolt("sink", [sink] { return std::make_unique<CountingSink>(sink); })
      .ShuffleFrom("predict");
  return std::move(b).Build();
}

model::ProfileSet FraudDetectionProfiles(const FraudDetectionParams& params) {
  (void)params;
  using model::OperatorProfile;
  model::ProfileSet p;
  constexpr double kRecordBytes = 48.0;
  p.Set("spout", OperatorProfile::Simple(/*te=*/420, /*m=*/2.0 * kRecordBytes,
                                         /*out=*/kRecordBytes, /*sel=*/1.0));
  p.Set("parser", OperatorProfile::Simple(/*te=*/520, /*m=*/kRecordBytes,
                                          /*out=*/kRecordBytes, /*sel=*/1.0));
  // The Markov-model lookup + update dominates FD's cost.
  p.Set("predict", OperatorProfile::Simple(/*te=*/14500, /*m=*/640.0,
                                           /*out=*/24.0, /*sel=*/1.0));
  p.Set("sink", OperatorProfile::Simple(/*te=*/120, /*m=*/24.0,
                                        /*out=*/8.0, /*sel=*/0.0));
  return p;
}

}  // namespace brisk::apps
