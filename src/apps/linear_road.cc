#include "apps/linear_road.h"

namespace brisk::apps {

namespace {
constexpr int kAvgWindow = 32;
constexpr double kSmoothing = 0.25;
constexpr int64_t kCongestionThreshold = 50;  // vehicles per segment
}  // namespace

Status LinearRoadSpout::Prepare(const api::OperatorContext& ctx) {
  rng_ = Rng(params_.seed + 0x2545f491ULL * (ctx.replica_index + 1));
  return Status::OK();
}

size_t LinearRoadSpout::NextBatch(size_t max_tuples,
                                  api::OutputCollector* out) {
  const int64_t now = NowNs();
  for (size_t i = 0; i < max_tuples; ++i) {
    Tuple t;
    const double kind = rng_.NextDouble();
    const auto vehicle =
        static_cast<int64_t>(rng_.NextBounded(params_.num_vehicles));
    if (kind < params_.balance_fraction) {
      t.fields = {Field(kLrBalance), Field(vehicle)};
    } else if (kind < params_.balance_fraction + params_.daily_fraction) {
      t.fields = {Field(kLrDaily), Field(vehicle),
                  Field(static_cast<int64_t>(rng_.NextBounded(70)))};
    } else {
      const auto segment =
          static_cast<int64_t>(rng_.NextBounded(params_.num_segments));
      const double speed = rng_.NextBernoulli(params_.stop_probability)
                               ? 0.0
                               : 30.0 + rng_.NextDouble() * 70.0;
      t.fields = {Field(kLrPosition), Field(vehicle), Field(segment),
                  Field(speed),
                  Field(static_cast<int64_t>(rng_.NextBounded(4)))};
    }
    t.origin_ts_ns = now;
    out->Emit(std::move(t));
  }
  return max_tuples;
}

Status LrDispatcher::Prepare(const api::OperatorContext& ctx) {
  BRISK_ASSIGN_OR_RETURN(balance_stream_, ctx.StreamId("balance_stream"));
  BRISK_ASSIGN_OR_RETURN(daily_stream_, ctx.StreamId("daily_exp_request"));
  return Status::OK();
}

void LrDispatcher::Process(const Tuple& in, api::OutputCollector* out) {
  switch (in.GetInt(0)) {
    case kLrPosition:
      out->Emit(in);  // position reports ride the default stream
      break;
    case kLrBalance:
      out->EmitTo(balance_stream_, in);
      break;
    case kLrDaily:
      out->EmitTo(daily_stream_, in);
      break;
    default:
      break;  // malformed event: drop
  }
}

void LrAvgSpeed::Process(const Tuple& in, api::OutputCollector* out) {
  const int64_t segment = in.GetInt(2);
  const double speed = in.GetDouble(3);
  SegWindow& w = segments_[segment];
  w.speeds.push_back(speed);
  w.sum += speed;
  if (static_cast<int>(w.speeds.size()) > kAvgWindow) {
    w.sum -= w.speeds.front();
    w.speeds.pop_front();
  }
  Tuple t;
  t.fields = {Field(kLrAvgSpeed), Field(segment),
              Field(w.sum / static_cast<double>(w.speeds.size()))};
  t.origin_ts_ns = in.origin_ts_ns;
  out->Emit(std::move(t));
}

void LrLastAvgSpeed::Process(const Tuple& in, api::OutputCollector* out) {
  const int64_t segment = in.GetInt(1);
  const double avg = in.GetDouble(2);
  auto [it, inserted] = smoothed_.try_emplace(segment, avg);
  if (!inserted) {
    it->second = kSmoothing * avg + (1.0 - kSmoothing) * it->second;
  }
  Tuple t;
  t.fields = {Field(kLrLasSpeed), Field(segment), Field(it->second)};
  t.origin_ts_ns = in.origin_ts_ns;
  out->Emit(std::move(t));
}

void LrAccidentDetect::Process(const Tuple& in, api::OutputCollector* out) {
  const int64_t vehicle = in.GetInt(1);
  const int64_t segment = in.GetInt(2);
  const double speed = in.GetDouble(3);
  int& stops = consecutive_stops_[vehicle];
  if (speed == 0.0) {
    if (++stops == kStopsForAccident) {
      Tuple t;
      t.fields = {Field(kLrAccident), Field(segment)};
      t.origin_ts_ns = in.origin_ts_ns;
      out->Emit(std::move(t));
    }
  } else {
    stops = 0;
  }
}

void LrCountVehicle::Process(const Tuple& in, api::OutputCollector* out) {
  const int64_t vehicle = in.GetInt(1);
  const int64_t segment = in.GetInt(2);
  auto& set = vehicles_[segment];
  set.insert(vehicle);
  Tuple t;
  t.fields = {Field(kLrCount), Field(segment),
              Field(static_cast<int64_t>(set.size()))};
  t.origin_ts_ns = in.origin_ts_ns;
  out->Emit(std::move(t));
}

void LrAccidentNotify::Process(const Tuple& in, api::OutputCollector* out) {
  if (in.GetInt(0) == kLrAccident) {
    accident_segments_.insert(in.GetInt(1));
    return;
  }
  // Position report: notify only vehicles entering an accident segment
  // (rare — Table 8 lists selectivity ~0).
  const int64_t segment = in.GetInt(2);
  if (accident_segments_.count(segment)) {
    Tuple t;
    t.fields = {Field(kLrNotify), Field(in.GetInt(1)), Field(segment)};
    t.origin_ts_ns = in.origin_ts_ns;
    out->Emit(std::move(t));
  }
}

void LrTollNotify::Process(const Tuple& in, api::OutputCollector* out) {
  const int64_t type = in.GetInt(0);
  int64_t segment = 0;
  switch (type) {
    case kLrAccident:
      accident_segments_.insert(in.GetInt(1));
      return;  // toll_notify emits nothing for detect_stream (Table 8)
    case kLrLasSpeed:
      segment = in.GetInt(1);
      seg_avg_speed_[segment] = in.GetDouble(2);
      break;
    case kLrCount:
      segment = in.GetInt(1);
      seg_count_[segment] = in.GetInt(2);
      break;
    case kLrPosition:
      segment = in.GetInt(2);
      break;
    default:
      return;
  }
  // Toll: quadratic in congestion above the threshold, zero when the
  // segment flows freely or has an accident (classic LR formula).
  const int64_t cars = seg_count_.count(segment) ? seg_count_[segment] : 0;
  const auto speed_it = seg_avg_speed_.find(segment);
  const double avg_speed = speed_it != seg_avg_speed_.end()
                               ? speed_it->second
                               : 100.0;
  double toll = 0.0;
  if (cars > kCongestionThreshold && avg_speed < 40.0 &&
      !accident_segments_.count(segment)) {
    const double over = static_cast<double>(cars - kCongestionThreshold);
    toll = 2.0 * over * over;
  }
  Tuple t;
  t.fields = {Field(kLrToll), Field(segment), Field(toll)};
  t.origin_ts_ns = in.origin_ts_ns;
  out->Emit(std::move(t));
}

void LrDailyExpense::Process(const Tuple& in, api::OutputCollector* out) {
  (void)out;  // output selectivity ~0 (Table 8)
  const int64_t vehicle = in.GetInt(1);
  const int64_t day = in.GetInt(2);
  expenses_[vehicle * 128 + day] += 1.0;
}

void LrAccountBalance::Process(const Tuple& in, api::OutputCollector* out) {
  (void)out;  // output selectivity ~0 (Table 8)
  balances_[in.GetInt(1)] += 0.0;  // touch account state
}

StatusOr<api::Topology> BuildLinearRoad(std::shared_ptr<SinkTelemetry> sink,
                                        LinearRoadParams params) {
  api::TopologyBuilder b("linear-road");
  b.AddSpout("spout", [params] {
    return std::make_unique<LinearRoadSpout>(params);
  });
  b.AddBolt("parser", [] { return std::make_unique<ValidatingParser>(); })
      .ShuffleFrom("spout");
  // Stream 0 (the implicit "default") carries position reports.
  b.AddBolt("dispatcher", [] { return std::make_unique<LrDispatcher>(); })
      .ShuffleFrom("parser")
      .DeclareStream("balance_stream")
      .DeclareStream("daily_exp_request");
  b.AddBolt("avg_speed", [params] {
     return std::make_unique<LrAvgSpeed>(params);
   }).FieldsFrom("dispatcher", 2);  // by segment
  b.AddBolt("las_avg_speed", [] { return std::make_unique<LrLastAvgSpeed>(); })
      .FieldsFrom("avg_speed", 1);
  b.AddBolt("accident_detect",
            [] { return std::make_unique<LrAccidentDetect>(); })
      .FieldsFrom("dispatcher", 1);  // by vehicle
  b.AddBolt("count_vehicle", [] { return std::make_unique<LrCountVehicle>(); })
      .FieldsFrom("dispatcher", 2);  // by segment
  b.AddBolt("accident_notify",
            [] { return std::make_unique<LrAccidentNotify>(); })
      .BroadcastFrom("accident_detect")
      .ShuffleFrom("dispatcher");
  b.AddBolt("toll_notify", [] { return std::make_unique<LrTollNotify>(); })
      .BroadcastFrom("accident_detect")
      .FieldsFrom("dispatcher", 2)
      .FieldsFrom("count_vehicle", 1)
      .FieldsFrom("las_avg_speed", 1);
  b.AddBolt("daily_expense", [] { return std::make_unique<LrDailyExpense>(); })
      .ShuffleFrom("dispatcher", "daily_exp_request");
  b.AddBolt("account_balance",
            [] { return std::make_unique<LrAccountBalance>(); })
      .ShuffleFrom("dispatcher", "balance_stream");
  b.AddBolt("sink", [sink] { return std::make_unique<CountingSink>(sink); })
      .ShuffleFrom("toll_notify")
      .ShuffleFrom("accident_notify")
      .ShuffleFrom("daily_expense")
      .ShuffleFrom("account_balance");
  return std::move(b).Build();
}

model::ProfileSet LinearRoadProfiles(const LinearRoadParams& params) {
  using model::OperatorProfile;
  model::ProfileSet p;
  constexpr double kReportBytes = 44.0;

  p.Set("spout", OperatorProfile::Simple(/*te=*/420, /*m=*/2.0 * kReportBytes,
                                         /*out=*/kReportBytes, /*sel=*/1.0));
  p.Set("parser", OperatorProfile::Simple(/*te=*/480, /*m=*/kReportBytes,
                                          /*out=*/kReportBytes, /*sel=*/1.0));

  {
    // Dispatcher: three output streams with Table 8 selectivities
    // (position ≈ 0.99, balance ≈ 0.005, daily ≈ 0.005).
    OperatorProfile d;
    d.te_cycles = 900;
    d.m_bytes = 2.0 * kReportBytes;
    const double pos = 1.0 - params.balance_fraction - params.daily_fraction;
    d.output_bytes = {kReportBytes, 20.0, 24.0};
    d.selectivity = {pos, params.balance_fraction, params.daily_fraction};
    p.Set("dispatcher", d);
  }
  p.Set("avg_speed", OperatorProfile::Simple(/*te=*/1400, /*m=*/520.0,
                                             /*out=*/24.0, /*sel=*/1.0));
  p.Set("las_avg_speed", OperatorProfile::Simple(/*te=*/700, /*m=*/96.0,
                                                 /*out=*/24.0, /*sel=*/1.0));
  p.Set("accident_detect",
        OperatorProfile::Simple(/*te=*/1100, /*m=*/128.0,
                                /*out=*/16.0, /*sel=*/0.001));
  p.Set("count_vehicle", OperatorProfile::Simple(/*te=*/1000, /*m=*/256.0,
                                                 /*out=*/24.0, /*sel=*/1.0));
  p.Set("accident_notify",
        OperatorProfile::Simple(/*te=*/600, /*m=*/64.0,
                                /*out=*/24.0, /*sel=*/0.0005));
  p.Set("toll_notify", OperatorProfile::Simple(/*te=*/1300, /*m=*/256.0,
                                               /*out=*/24.0, /*sel=*/1.0));
  p.Set("daily_expense", OperatorProfile::Simple(/*te=*/2000, /*m=*/320.0,
                                                 /*out=*/32.0, /*sel=*/0.0));
  p.Set("account_balance",
        OperatorProfile::Simple(/*te=*/1500, /*m=*/256.0,
                                /*out=*/32.0, /*sel=*/0.0));
  p.Set("sink", OperatorProfile::Simple(/*te=*/120, /*m=*/24.0,
                                        /*out=*/8.0, /*sel=*/0.0));
  return p;
}

}  // namespace brisk::apps
