// Operators shared across the benchmark applications: telemetry sinks
// and pass-through parsers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "api/operator.h"
#include "common/histogram.h"

namespace brisk::apps {

/// Shared telemetry all sink replicas of one run report into. The
/// tuple counter is the throughput measurement point (§2.2: "Sink
/// increments a counter each time it receives tuple... which we use to
/// monitor the performance"); latency is sampled to keep the hot path
/// cheap.
class SinkTelemetry {
 public:
  void RecordTuple(int64_t origin_ts_ns, int64_t now_ns) {
    const uint64_t n = count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (origin_ts_ns > 0 && (n & (kLatencySampleEvery - 1)) == 0) {
      std::lock_guard<std::mutex> lock(mu_);
      latency_ns_.Add(static_cast<double>(now_ns - origin_ts_ns));
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  Histogram LatencySnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latency_ns_;
  }

  void Reset() {
    count_.store(0);
    std::lock_guard<std::mutex> lock(mu_);
    latency_ns_.Reset();
  }

 private:
  static constexpr uint64_t kLatencySampleEvery = 32;  // power of two

  std::atomic<uint64_t> count_{0};
  mutable std::mutex mu_;
  Histogram latency_ns_;
};

/// Terminal operator: counts tuples and samples end-to-end latency.
class CountingSink : public api::Operator {
 public:
  explicit CountingSink(std::shared_ptr<SinkTelemetry> telemetry)
      : telemetry_(std::move(telemetry)) {}

  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  std::shared_ptr<SinkTelemetry> telemetry_;
};

/// Validating pass-through (the Parser every app starts with): drops
/// tuples whose first field is an empty string, forwards the rest.
/// Testing workloads generate no invalid tuples, so selectivity is one
/// (§2.2).
class ValidatingParser : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;

  uint64_t dropped() const { return dropped_; }

 private:
  uint64_t dropped_ = 0;
};

/// Returns steady-clock now in ns (spouts stamp origin timestamps with
/// this; sinks diff against it).
int64_t NowNs();

}  // namespace brisk::apps
