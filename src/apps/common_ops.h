// Operators shared across the benchmark applications: telemetry sinks
// and pass-through parsers.
#pragma once

#include <cstdint>
#include <memory>

#include "api/operator.h"
#include "common/telemetry.h"

namespace brisk::apps {

/// The apps historically named this apps::SinkTelemetry; the class now
/// lives in common/telemetry.h so the generic api layer (Job, DSL
/// examples) can use it without depending on the apps module.
using ::brisk::SinkTelemetry;

/// Terminal operator: counts tuples and samples end-to-end latency.
class CountingSink : public api::Operator {
 public:
  explicit CountingSink(std::shared_ptr<SinkTelemetry> telemetry)
      : telemetry_(std::move(telemetry)) {}

  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  std::shared_ptr<SinkTelemetry> telemetry_;
};

/// The parser keep-predicate: a tuple is valid unless its first field
/// is an empty string. One source of truth for ValidatingParser and
/// the DSL twins' Filter("parser", ...) stages.
inline bool ParserKeeps(const Tuple& t) {
  return t.fields.empty() || !t.fields[0].is_string() ||
         !t.fields[0].AsString().empty();
}

/// Validating pass-through (the Parser every app starts with): drops
/// tuples whose first field is an empty string, forwards the rest.
/// Testing workloads generate no invalid tuples, so selectivity is one
/// (§2.2).
class ValidatingParser : public api::Operator {
 public:
  void Process(const Tuple& in, api::OutputCollector* out) override;

  uint64_t dropped() const { return dropped_; }

 private:
  uint64_t dropped_ = 0;
};

/// Returns steady-clock now in ns (spouts stamp origin timestamps with
/// this; sinks diff against it).
int64_t NowNs();

}  // namespace brisk::apps
