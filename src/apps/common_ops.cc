#include "apps/common_ops.h"

#include <chrono>

namespace brisk::apps {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CountingSink::Process(const Tuple& in, api::OutputCollector* out) {
  (void)out;  // terminal operator
  telemetry_->RecordTuple(in.origin_ts_ns, NowNs());
}

void ValidatingParser::Process(const Tuple& in, api::OutputCollector* out) {
  if (!ParserKeeps(in)) {
    ++dropped_;
    return;
  }
  out->Emit(in);  // copy: downstream owns its own tuple
}

}  // namespace brisk::apps
