// Fraud Detection (FD), Fig. 18(a):
//   Spout -> Parser -> Predict -> Sink
// Each tuple is a credit-card transaction record; Predict keeps a
// per-account Markov state-transition model and scores every
// transaction. A signal is emitted per input tuple regardless of the
// outcome (Appendix B: selectivity one on every operator).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/operator.h"
#include "api/topology.h"
#include "apps/common_ops.h"
#include "common/rng.h"
#include "model/operator_profile.h"

namespace brisk::apps {

struct FraudDetectionParams {
  int num_accounts = 50000;
  int states = 8;          ///< Markov model states (amount buckets)
  uint64_t seed = 23;
};

/// Transaction source: (account_id, amount, merchant_bucket).
class TransactionSpout : public api::Spout {
 public:
  explicit TransactionSpout(FraudDetectionParams params)
      : params_(params), rng_(params.seed) {}

  Status Prepare(const api::OperatorContext& ctx) override;
  size_t NextBatch(size_t max_tuples, api::OutputCollector* out) override;

 private:
  FraudDetectionParams params_;
  Rng rng_;
};

/// Markov-model fraud predictor: per-account transition probabilities
/// over amount buckets; low-probability transitions score as fraud.
class FraudPredictor : public api::Operator {
 public:
  explicit FraudPredictor(FraudDetectionParams params) : params_(params) {}

  void Process(const Tuple& in, api::OutputCollector* out) override;

 private:
  struct AccountState {
    int last_state = -1;
    std::vector<uint32_t> transitions;  // states x states counts
  };

  int BucketOf(double amount) const;

  FraudDetectionParams params_;
  std::unordered_map<int64_t, AccountState> accounts_;
};

StatusOr<api::Topology> BuildFraudDetection(
    std::shared_ptr<SinkTelemetry> sink, FraudDetectionParams params = {});

/// Calibrated Brisk profiles (cycles). Predict dominates: FD is the
/// compute-heaviest per tuple of the four apps (Table 4's lowest
/// throughput).
model::ProfileSet FraudDetectionProfiles(
    const FraudDetectionParams& params = {});

}  // namespace brisk::apps
