#include "profiler/profiler.h"

#include <chrono>

#include "common/logging.h"

namespace brisk::profiler {

namespace {

/// Collector that appends emitted tuples to per-stream vectors.
class CapturingCollector : public api::OutputCollector {
 public:
  explicit CapturingCollector(size_t num_streams) : streams_(num_streams) {}

  void Emit(Tuple t) override { EmitTo(0, std::move(t)); }
  void EmitTo(uint16_t stream_id, Tuple t) override {
    BRISK_CHECK(stream_id < streams_.size());
    streams_[stream_id].push_back(std::move(t));
  }

  std::vector<std::vector<Tuple>>& streams() { return streams_; }
  void Clear() {
    for (auto& s : streams_) s.clear();
  }

 private:
  std::vector<std::vector<Tuple>> streams_;
};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusOr<AppProfile> ProfileApp(const api::Topology& topo,
                                const ProfilerConfig& config) {
  if (config.samples < 1 || config.reference_ghz <= 0) {
    return Status::InvalidArgument("bad profiler config");
  }

  AppProfile result;
  // Sample inputs per operator per inbound stream, produced by
  // pre-executing upstream operators (§3.1: "The sample input is
  // prepared by pre-executing all upstream operators").
  std::map<int, std::vector<Tuple>> inputs;  // op id -> pending samples

  for (const int op_id : topo.topological_order()) {
    const auto& op = topo.op(op_id);
    OperatorMeasurement m;
    m.selectivity.assign(op.output_streams.size(), 0.0);
    m.output_bytes.assign(op.output_streams.size(), 0.0);
    std::vector<uint64_t> out_counts(op.output_streams.size(), 0);
    std::vector<double> out_bytes_sum(op.output_streams.size(), 0.0);

    CapturingCollector collector(op.output_streams.size());
    api::OperatorContext ctx;
    ctx.operator_name = op.name;
    ctx.replica_index = 0;
    ctx.num_replicas = 1;
    ctx.socket = 0;
    ctx.output_streams = op.output_streams;

    double in_bytes_sum = 0.0;

    if (op.is_spout) {
      auto spout = op.spout_factory();
      if (!spout) return Status::Internal("spout factory returned null");
      BRISK_RETURN_NOT_OK(spout->Prepare(ctx));
      // Warm-up.
      spout->NextBatch(static_cast<size_t>(config.warmup_samples),
                       &collector);
      collector.Clear();
      // Timed: one tuple per call to capture per-tuple cost.
      for (int i = 0; i < config.samples; ++i) {
        const int64_t t0 = NowNs();
        spout->NextBatch(1, &collector);
        const int64_t t1 = NowNs();
        m.te_cycles.Add(static_cast<double>(t1 - t0) *
                        config.reference_ghz);
        ++m.tuples_processed;
      }
      for (size_t s = 0; s < collector.streams().size(); ++s) {
        for (auto& t : collector.streams()[s]) {
          ++out_counts[s];
          out_bytes_sum[s] += static_cast<double>(t.SizeBytes());
        }
      }
    } else {
      auto bolt = op.bolt_factory();
      if (!bolt) return Status::Internal("bolt factory returned null");
      BRISK_RETURN_NOT_OK(bolt->Prepare(ctx));
      auto& samples = inputs[op_id];
      if (samples.empty()) {
        return Status::FailedPrecondition(
            "no upstream samples reached operator '" + op.name +
            "' — selectivities upstream may be ~0; profile it with a "
            "larger sample budget");
      }
      // Warm-up on a prefix (re-used afterwards; state effects on
      // timing are part of real operator behaviour).
      const size_t warm =
          std::min<size_t>(samples.size(), config.warmup_samples);
      for (size_t i = 0; i < warm; ++i) {
        bolt->Process(samples[i], &collector);
      }
      collector.Clear();
      const size_t budget =
          std::min<size_t>(samples.size(), config.samples);
      for (size_t i = 0; i < budget; ++i) {
        in_bytes_sum += static_cast<double>(samples[i].SizeBytes());
        const int64_t t0 = NowNs();
        bolt->Process(samples[i], &collector);
        const int64_t t1 = NowNs();
        m.te_cycles.Add(static_cast<double>(t1 - t0) *
                        config.reference_ghz);
        ++m.tuples_processed;
      }
      for (size_t s = 0; s < collector.streams().size(); ++s) {
        for (auto& t : collector.streams()[s]) {
          ++out_counts[s];
          out_bytes_sum[s] += static_cast<double>(t.SizeBytes());
        }
      }
    }

    // Derive N, M and selectivity.
    double n_total = 0.0;
    uint64_t n_count = 0;
    for (size_t s = 0; s < out_counts.size(); ++s) {
      if (m.tuples_processed > 0) {
        m.selectivity[s] = static_cast<double>(out_counts[s]) /
                           static_cast<double>(m.tuples_processed);
      }
      m.output_bytes[s] =
          out_counts[s] > 0 ? out_bytes_sum[s] / out_counts[s] : 64.0;
      n_total += out_bytes_sum[s];
      n_count += out_counts[s];
    }
    m.n_bytes = n_count > 0 ? n_total / n_count : 0.0;
    // M: bytes touched per processed tuple — input read + output
    // written (the classmexer-style estimate).
    m.m_bytes = m.tuples_processed > 0
                    ? (in_bytes_sum + n_total) / m.tuples_processed
                    : 0.0;

    // Fill the ProfileSet entry at the requested percentile.
    model::OperatorProfile profile;
    profile.te_cycles = m.te_cycles.Percentile(config.te_percentile);
    profile.m_bytes = m.m_bytes;
    profile.output_bytes = m.output_bytes;
    profile.selectivity = m.selectivity;
    result.profiles.Set(op.name, profile);

    // Forward captured outputs as downstream inputs.
    for (const auto& e : topo.OutEdges(op_id)) {
      auto& dest = inputs[e.consumer_op];
      for (const auto& t : collector.streams()[e.stream_id]) {
        dest.push_back(t);
      }
    }
    result.measurements.emplace(op.name, std::move(m));
  }
  return result;
}

}  // namespace brisk::profiler
