// Operator profiling harness — the model-instantiation step of §3.1.
//
// Mirrors the paper's methodology: sample inputs for an operator are
// prepared by pre-executing all of its upstream operators (so nothing
// interferes with the profiled thread), then the operator runs alone
// while per-tuple execution time (T_e), output tuple size (N), memory
// traffic per tuple (M) and per-stream selectivity are gathered. The
// paper used the overseer and classmexer JVM libraries for this; here
// steady_clock and the tuple layout provide the same quantities.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "api/topology.h"
#include "common/histogram.h"
#include "common/status.h"
#include "model/operator_profile.h"

namespace brisk::profiler {

struct ProfilerConfig {
  /// Tuples fed to each profiled operator.
  int samples = 20000;
  /// Reference clock used to convert measured ns to cycles (profiles
  /// store cycles so they transfer across machines, §3.1).
  double reference_ghz = 1.2;
  /// Percentile of the T_e distribution reported as the profile value
  /// (the paper uses the 50th).
  double te_percentile = 0.50;
  /// Untimed warm-up tuples per operator (JIT/caches in the paper;
  /// branch predictors and allocator pools here).
  int warmup_samples = 2000;
};

/// Raw measurement for one operator.
struct OperatorMeasurement {
  Histogram te_cycles;                 ///< per-tuple distribution (Fig. 3)
  double n_bytes = 0.0;                ///< avg output tuple size
  double m_bytes = 0.0;                ///< avg bytes touched per tuple
  std::vector<double> selectivity;     ///< per output stream
  std::vector<double> output_bytes;    ///< per output stream
  uint64_t tuples_processed = 0;
};

/// Result of profiling a whole application.
struct AppProfile {
  std::map<std::string, OperatorMeasurement> measurements;
  model::ProfileSet profiles;  ///< at the configured percentile
};

/// Profiles every operator of `topo` by pre-executing upstream
/// operators to produce inputs (topological order), then timing each
/// operator in isolation.
StatusOr<AppProfile> ProfileApp(const api::Topology& topo,
                                const ProfilerConfig& config = {});

}  // namespace brisk::profiler
