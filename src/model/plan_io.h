// Textual serialization of execution plans and profile sets.
//
// The optimization workflow is offline (§5.3: a plan is computed once
// and used for the application's whole lifetime), so plans and the
// profiles they were derived from need to survive process boundaries:
// profile on the target machine, optimize wherever, deploy the saved
// plan. The format is a line-oriented text format, stable and
// diff-friendly:
//
//   brisk-plan v1
//   op <name> replication <n> sockets <s0> <s1> ... <sn-1>
//
//   brisk-profiles v1
//   op <name> te <cycles> m <bytes> streams <k>
//   stream <idx> selectivity <s> bytes <b>
#pragma once

#include <string>

#include "api/topology.h"
#include "common/status.h"
#include "model/execution_plan.h"
#include "model/operator_profile.h"

namespace brisk::model {

/// Serializes replication + placement. Unplaced instances encode as -1.
std::string SerializePlan(const ExecutionPlan& plan);

/// Parses a plan against `topo`: every operator must appear exactly
/// once, replication must be >= 1, socket lists must match replication.
/// Socket ids are not validated against a machine here (a plan may be
/// deployed on any machine with enough sockets); PerfModel::Evaluate
/// rejects out-of-range sockets.
StatusOr<ExecutionPlan> ParsePlan(const api::Topology* topo,
                                  const std::string& text);

/// Serializes a profile set (all operators, all streams).
std::string SerializeProfiles(const ProfileSet& profiles);

/// Parses a profile set; purely syntactic (operator names are matched
/// against a topology only when the profiles are used).
StatusOr<ProfileSet> ParseProfiles(const std::string& text);

}  // namespace brisk::model
