#include "model/perf_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace brisk::model {

namespace {

constexpr double kNsPerSec = 1e9;

/// Per-consumer-instance arrival bucket: rate arriving from producer
/// instances that share a socket and tuple size (fetch cost only
/// depends on those, so bucketing keeps evaluation O(edges · sockets)).
struct Arrival {
  double rate = 0.0;      // tuples/sec
  double fetch_ns = 0.0;  // T_f per tuple from this bucket
  double bytes = 0.0;     // N, for Eq. 5 traffic
  int from_socket = -1;
};

}  // namespace

std::string ConstraintViolation::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case kCpu:
      os << "CPU demand on S" << socket_from;
      break;
    case kLocalBandwidth:
      os << "local DRAM bandwidth on S" << socket_from;
      break;
    case kChannelBandwidth:
      os << "channel bandwidth S" << socket_from << "->S" << socket_to;
      break;
    case kCoreCount:
      os << "core count on S" << socket_from;
      break;
  }
  os << ": demand " << demand << " > limit " << limit;
  return os.str();
}

StatusOr<ModelResult> PerfModel::Evaluate(const ExecutionPlan& plan,
                                          double input_rate_tps,
                                          const ModelOptions& options) const {
  const api::Topology& topo = plan.topology();
  const int n_sockets = machine_->num_sockets();
  const int n_inst = plan.num_instances();

  if (input_rate_tps < 0) {
    return Status::InvalidArgument("negative input rate");
  }

  // Resolve profiles and validate placement once up front.
  std::vector<OperatorProfile> prof(topo.num_operators());
  for (const auto& op : topo.ops()) {
    BRISK_ASSIGN_OR_RETURN(prof[op.id], profiles_->Get(op.name));
    const size_t n_streams = op.output_streams.size();
    if (prof[op.id].selectivity.size() < n_streams ||
        prof[op.id].output_bytes.size() < n_streams) {
      return Status::InvalidArgument(
          "profile for '" + op.name + "' covers fewer streams (" +
          std::to_string(prof[op.id].selectivity.size()) +
          ") than declared (" + std::to_string(n_streams) + ")");
    }
  }
  for (int i = 0; i < n_inst; ++i) {
    const int s = plan.instance(i).socket;
    if (s >= n_sockets) {
      return Status::InvalidArgument(
          "instance placed on socket " + std::to_string(s) + " but machine '" +
          machine_->name() + "' has " + std::to_string(n_sockets));
    }
    if (s < 0 && !options.allow_unplaced) {
      return Status::FailedPrecondition(
          "plan has unplaced instances; evaluate with allow_unplaced or "
          "complete the placement");
    }
  }

  // Worst remote latency for the RLAS_fix(L) ablation.
  double worst_latency = 0.0;
  for (int i = 0; i < n_sockets; ++i) {
    for (int j = 0; j < n_sockets; ++j) {
      if (i != j) worst_latency = std::max(worst_latency, machine_->LatencyNs(i, j));
    }
  }
  if (n_sockets == 1) worst_latency = machine_->LatencyNs(0, 0);

  auto fetch_cost_ns = [&](int from, int to, double bytes) -> double {
    switch (options.fetch_mode) {
      case FetchCostMode::kAlwaysLocal:
        return 0.0;
      case FetchCostMode::kAlwaysRemote: {
        const double lines = std::ceil(bytes / machine_->cache_line_bytes());
        return lines * worst_latency;
      }
      case FetchCostMode::kRelativeLocation:
        break;
    }
    if (from < 0 || to < 0) return 0.0;  // bounding relaxation
    return machine_->FetchCostNs(from, to, bytes);
  };

  ModelResult result;
  result.instances.assign(n_inst, InstanceStats{});
  result.sockets.assign(std::max(n_sockets, 1), SocketUsage{});
  result.link_traffic.assign(static_cast<size_t>(n_sockets) * n_sockets, 0.0);

  // Per-instance, per-stream expected output rates.
  std::vector<std::vector<double>> out_rate(n_inst);
  for (int i = 0; i < n_inst; ++i) {
    out_rate[i].assign(topo.op(plan.instance(i).op).output_streams.size(),
                       0.0);
  }
  // Arrival buckets per consumer instance.
  std::vector<std::vector<Arrival>> arrivals(n_inst);

  // Propagate in topological operator order (producers before consumers
  // — the DAG is validated acyclic at Build()).
  for (const int op_id : topo.topological_order()) {
    const auto& op = topo.op(op_id);
    const OperatorProfile& p = prof[op_id];
    const double te_ns = machine_->CyclesToNs(p.te_cycles);
    const int repl = plan.replication(op_id);

    for (int r = 0; r < repl; ++r) {
      const int inst = plan.InstanceId(op_id, r);
      InstanceStats& st = result.instances[inst];

      double ri = 0.0;
      double fetch_weighted = 0.0;
      if (op.is_spout) {
        // External input splits evenly across spout replicas (§3.1: r_i
        // of the source operator is I).
        ri = input_rate_tps / repl;
      } else {
        for (const Arrival& a : arrivals[inst]) {
          ri += a.rate;
          fetch_weighted += a.rate * a.fetch_ns;
        }
      }

      const double avg_fetch = ri > 0 ? fetch_weighted / ri : 0.0;
      const double t_ns = te_ns + avg_fetch;
      const double capacity = t_ns > 0 ? kNsPerSec / t_ns
                                       : std::numeric_limits<double>::infinity();
      const double processed = std::min(ri, capacity);

      st.input_rate = ri;
      st.t_ns = t_ns;
      st.capacity = capacity;
      st.processed = processed;
      st.bottleneck = ri > capacity * (1.0 + options.bottleneck_epsilon);

      // Expected output per stream (selectivity, Appendix B).
      for (size_t s = 0; s < out_rate[inst].size(); ++s) {
        out_rate[inst][s] = processed * p.selectivity[s];
      }

      // Attribute processed tuples back to producers (Case 1's
      // proportional split) for the Eq. 5 traffic matrix.
      const int to_socket = plan.instance(inst).socket;
      if (ri > 0) {
        const double scale = processed / ri;
        for (const Arrival& a : arrivals[inst]) {
          if (a.from_socket >= 0 && to_socket >= 0 &&
              a.from_socket != to_socket) {
            result.link_traffic[static_cast<size_t>(a.from_socket) *
                                    n_sockets +
                                to_socket] += a.rate * scale * a.bytes;
          }
        }
      }
    }

    // Deliver this operator's output to consumer instances.
    for (const auto& edge : topo.OutEdges(op_id)) {
      const int consumer_repl = plan.replication(edge.consumer_op);
      const double out_bytes = p.output_bytes[edge.stream_id];
      for (int r = 0; r < repl; ++r) {
        const int pinst = plan.InstanceId(op_id, r);
        const double rate = out_rate[pinst][edge.stream_id];
        if (rate <= 0.0) continue;
        const int from_socket = plan.instance(pinst).socket;

        auto deliver = [&](int consumer_replica, double delivered_rate) {
          const int cinst =
              plan.InstanceId(edge.consumer_op, consumer_replica);
          const int to_socket = plan.instance(cinst).socket;
          arrivals[cinst].push_back(
              {delivered_rate, fetch_cost_ns(from_socket, to_socket, out_bytes),
               out_bytes, from_socket});
        };

        switch (edge.grouping) {
          case api::GroupingType::kShuffle:
          case api::GroupingType::kFields:
            // Uniform split across replicas (keys assumed balanced; the
            // engine's hash grouping approximates this).
            for (int c = 0; c < consumer_repl; ++c) {
              deliver(c, rate / consumer_repl);
            }
            break;
          case api::GroupingType::kBroadcast:
            for (int c = 0; c < consumer_repl; ++c) deliver(c, rate);
            break;
          case api::GroupingType::kGlobal:
            deliver(0, rate);
            break;
        }
      }
    }
  }

  // Throughput R = Σ over sink instances of r̄_o (§3.1).
  for (const int sink : topo.sinks()) {
    for (int r = 0; r < plan.replication(sink); ++r) {
      result.throughput +=
          result.instances[plan.InstanceId(sink, r)].processed;
    }
  }

  // Socket usage and constraint checks (Eq. 3–5 + core occupancy).
  for (int i = 0; i < n_inst; ++i) {
    const int s = plan.instance(i).socket;
    if (s < 0) continue;
    const InstanceStats& st = result.instances[i];
    const OperatorProfile& p = prof[plan.instance(i).op];
    result.sockets[s].cpu_ns_per_sec += st.processed * st.t_ns;
    result.sockets[s].bw_bytes_per_sec += st.processed * p.m_bytes;
    result.sockets[s].instances += 1;
  }
  for (int s = 0; s < n_sockets; ++s) {
    const SocketUsage& u = result.sockets[s];
    if (u.cpu_ns_per_sec > machine_->cpu_ns_per_sec() * (1 + 1e-9)) {
      result.violations.push_back({ConstraintViolation::kCpu, s, -1,
                                   u.cpu_ns_per_sec,
                                   machine_->cpu_ns_per_sec()});
    }
    if (u.bw_bytes_per_sec > machine_->local_bandwidth_bps() * (1 + 1e-9)) {
      result.violations.push_back({ConstraintViolation::kLocalBandwidth, s,
                                   -1, u.bw_bytes_per_sec,
                                   machine_->local_bandwidth_bps()});
    }
    if (u.instances > machine_->cores_per_socket()) {
      result.violations.push_back(
          {ConstraintViolation::kCoreCount, s, -1,
           static_cast<double>(u.instances),
           static_cast<double>(machine_->cores_per_socket())});
    }
    for (int t = 0; t < n_sockets; ++t) {
      if (s == t) continue;
      const double traffic =
          result.link_traffic[static_cast<size_t>(s) * n_sockets + t];
      if (traffic > machine_->ChannelBandwidthBps(s, t) * (1 + 1e-9)) {
        result.violations.push_back({ConstraintViolation::kChannelBandwidth,
                                     s, t, traffic,
                                     machine_->ChannelBandwidthBps(s, t)});
      }
    }
  }

  // Critical path: longest chain of per-operator worst-instance T(p),
  // spouts to sinks, in topological order.
  {
    std::vector<double> path(topo.num_operators(), 0.0);
    for (const int op_id : topo.topological_order()) {
      double worst_t = 0.0;
      for (int r = 0; r < plan.replication(op_id); ++r) {
        worst_t = std::max(
            worst_t, result.instances[plan.InstanceId(op_id, r)].t_ns);
      }
      double upstream = 0.0;
      for (const auto& e : topo.InEdges(op_id)) {
        upstream = std::max(upstream, path[e.producer_op]);
      }
      path[op_id] = upstream + worst_t;
      result.critical_path_ns =
          std::max(result.critical_path_ns, path[op_id]);
    }
  }

  // Bottleneck operator: the one with the largest aggregate over-supply
  // ratio — Algorithm 1's next scaling target.
  for (const auto& op : topo.ops()) {
    double ri_sum = 0.0, ro_sum = 0.0;
    bool any_bottleneck = false;
    for (int r = 0; r < plan.replication(op.id); ++r) {
      const InstanceStats& st =
          result.instances[plan.InstanceId(op.id, r)];
      ri_sum += st.input_rate;
      ro_sum += st.processed;
      any_bottleneck |= st.bottleneck;
    }
    if (!any_bottleneck || ro_sum <= 0.0) continue;
    const double ratio = ri_sum / ro_sum;
    if (ratio > result.bottleneck_ratio) {
      result.bottleneck_ratio = ratio;
      result.bottleneck_op = op.id;
    }
  }

  return result;
}

StatusOr<double> PerfModel::Bound(const ExecutionPlan& plan,
                                  double input_rate_tps) const {
  ModelOptions opts;
  opts.allow_unplaced = true;
  BRISK_ASSIGN_OR_RETURN(ModelResult r, Evaluate(plan, input_rate_tps, opts));
  return r.throughput;
}

}  // namespace brisk::model
