#include "model/execution_plan.h"

#include <sstream>

namespace brisk::model {

StatusOr<ExecutionPlan> ExecutionPlan::Create(const api::Topology* topo,
                                              std::vector<int> replication) {
  if (topo == nullptr) {
    return Status::InvalidArgument("null topology");
  }
  if (static_cast<int>(replication.size()) != topo->num_operators()) {
    return Status::InvalidArgument(
        "replication size " + std::to_string(replication.size()) +
        " != operator count " + std::to_string(topo->num_operators()));
  }
  for (int i = 0; i < topo->num_operators(); ++i) {
    if (replication[i] < 1) {
      return Status::InvalidArgument("operator '" + topo->op(i).name +
                                     "' replication < 1");
    }
  }
  ExecutionPlan plan;
  plan.topo_ = topo;
  plan.replication_ = std::move(replication);
  plan.first_instance_.resize(plan.replication_.size());
  int next = 0;
  for (size_t op = 0; op < plan.replication_.size(); ++op) {
    plan.first_instance_[op] = next;
    for (int r = 0; r < plan.replication_[op]; ++r) {
      plan.instances_.push_back(
          {static_cast<int>(op), r, /*socket=*/-1});
    }
    next += plan.replication_[op];
  }
  return plan;
}

StatusOr<ExecutionPlan> ExecutionPlan::CreateDefault(
    const api::Topology* topo) {
  if (topo == nullptr) {
    return Status::InvalidArgument("null topology");
  }
  std::vector<int> repl;
  repl.reserve(topo->num_operators());
  for (const auto& op : topo->ops()) repl.push_back(op.base_parallelism);
  return Create(topo, std::move(repl));
}

bool ExecutionPlan::FullyPlaced() const {
  for (const auto& inst : instances_) {
    if (inst.socket < 0) return false;
  }
  return true;
}

int ExecutionPlan::InstancesOnSocket(int socket) const {
  int n = 0;
  for (const auto& inst : instances_) {
    if (inst.socket == socket) ++n;
  }
  return n;
}

void ExecutionPlan::PlaceAllOn(int socket) {
  for (auto& inst : instances_) inst.socket = socket;
}

void ExecutionPlan::ClearPlacement() {
  for (auto& inst : instances_) inst.socket = -1;
}

std::string ExecutionPlan::ToString() const {
  std::ostringstream os;
  os << "ExecutionPlan (" << instances_.size() << " instances)\n";
  for (const auto& op : topo_->ops()) {
    os << "  " << op.name << " x" << replication_[op.id] << " -> [";
    for (int r = 0; r < replication_[op.id]; ++r) {
      if (r) os << ",";
      const int s = instances_[InstanceId(op.id, r)].socket;
      if (s < 0) {
        os << "?";
      } else {
        os << "S" << s;
      }
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace brisk::model
