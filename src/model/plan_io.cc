#include "model/plan_io.h"

#include <map>
#include <sstream>
#include <vector>

namespace brisk::model {

namespace {

constexpr char kPlanHeader[] = "brisk-plan v1";
constexpr char kProfilesHeader[] = "brisk-profiles v1";

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

StatusOr<double> ParseDouble(const std::string& tok) {
  try {
    size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) {
      return Status::InvalidArgument("trailing junk in number '" + tok + "'");
    }
    return v;
  } catch (const std::exception&) {
    return Status::InvalidArgument("not a number: '" + tok + "'");
  }
}

StatusOr<int> ParseInt(const std::string& tok) {
  BRISK_ASSIGN_OR_RETURN(double v, ParseDouble(tok));
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v) {
    return Status::InvalidArgument("not an integer: '" + tok + "'");
  }
  return i;
}

}  // namespace

std::string SerializePlan(const ExecutionPlan& plan) {
  std::ostringstream os;
  os << kPlanHeader << "\n";
  const api::Topology& topo = plan.topology();
  for (const auto& op : topo.ops()) {
    os << "op " << op.name << " replication " << plan.replication(op.id)
       << " sockets";
    for (int r = 0; r < plan.replication(op.id); ++r) {
      os << " " << plan.SocketOf(plan.InstanceId(op.id, r));
    }
    os << "\n";
  }
  return os.str();
}

StatusOr<ExecutionPlan> ParsePlan(const api::Topology* topo,
                                  const std::string& text) {
  if (topo == nullptr) return Status::InvalidArgument("null topology");
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || Tokens(line) != Tokens(kPlanHeader)) {
    return Status::InvalidArgument("missing '" + std::string(kPlanHeader) +
                                   "' header");
  }

  std::map<std::string, std::pair<int, std::vector<int>>> parsed;
  while (std::getline(is, line)) {
    const auto toks = Tokens(line);
    if (toks.empty()) continue;
    if (toks[0] != "op" || toks.size() < 5 || toks[2] != "replication" ||
        toks[4] != "sockets") {
      return Status::InvalidArgument("malformed plan line: '" + line + "'");
    }
    const std::string& name = toks[1];
    BRISK_ASSIGN_OR_RETURN(int repl, ParseInt(toks[3]));
    if (repl < 1) {
      return Status::InvalidArgument("replication < 1 for '" + name + "'");
    }
    if (static_cast<int>(toks.size()) != 5 + repl) {
      return Status::InvalidArgument("socket list of '" + name +
                                     "' does not match replication");
    }
    std::vector<int> sockets;
    for (int r = 0; r < repl; ++r) {
      BRISK_ASSIGN_OR_RETURN(int s, ParseInt(toks[5 + r]));
      sockets.push_back(s);
    }
    if (!parsed.emplace(name, std::make_pair(repl, std::move(sockets)))
             .second) {
      return Status::InvalidArgument("duplicate operator '" + name + "'");
    }
  }

  std::vector<int> replication(topo->num_operators(), 0);
  for (const auto& op : topo->ops()) {
    auto it = parsed.find(op.name);
    if (it == parsed.end()) {
      return Status::NotFound("plan is missing operator '" + op.name + "'");
    }
    replication[op.id] = it->second.first;
  }
  if (parsed.size() != static_cast<size_t>(topo->num_operators())) {
    return Status::InvalidArgument(
        "plan mentions operators the topology does not have");
  }
  BRISK_ASSIGN_OR_RETURN(ExecutionPlan plan,
                         ExecutionPlan::Create(topo, replication));
  for (const auto& op : topo->ops()) {
    const auto& sockets = parsed[op.name].second;
    for (int r = 0; r < plan.replication(op.id); ++r) {
      plan.SetSocket(plan.InstanceId(op.id, r), sockets[r]);
    }
  }
  return plan;
}

std::string SerializeProfiles(const ProfileSet& profiles) {
  std::ostringstream os;
  os << kProfilesHeader << "\n";
  for (const auto& [name, p] : profiles.all()) {
    os << "op " << name << " te " << p.te_cycles << " m " << p.m_bytes
       << " streams " << p.selectivity.size() << "\n";
    for (size_t s = 0; s < p.selectivity.size(); ++s) {
      os << "stream " << s << " selectivity " << p.selectivity[s]
         << " bytes "
         << (s < p.output_bytes.size() ? p.output_bytes[s] : 64.0) << "\n";
    }
  }
  return os.str();
}

StatusOr<ProfileSet> ParseProfiles(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || Tokens(line) != Tokens(kProfilesHeader)) {
    return Status::InvalidArgument("missing '" +
                                   std::string(kProfilesHeader) +
                                   "' header");
  }
  ProfileSet out;
  std::string current_name;
  OperatorProfile current;
  size_t expected_streams = 0;

  auto flush = [&]() -> Status {
    if (current_name.empty()) return Status::OK();
    if (current.selectivity.size() != expected_streams) {
      return Status::InvalidArgument(
          "operator '" + current_name + "' declares " +
          std::to_string(expected_streams) + " streams but lists " +
          std::to_string(current.selectivity.size()));
    }
    out.Set(current_name, current);
    current_name.clear();
    return Status::OK();
  };

  while (std::getline(is, line)) {
    const auto toks = Tokens(line);
    if (toks.empty()) continue;
    if (toks[0] == "op") {
      BRISK_RETURN_NOT_OK(flush());
      if (toks.size() != 8 || toks[2] != "te" || toks[4] != "m" ||
          toks[6] != "streams") {
        return Status::InvalidArgument("malformed profile line: '" + line +
                                       "'");
      }
      current_name = toks[1];
      current = OperatorProfile();
      current.selectivity.clear();
      current.output_bytes.clear();
      BRISK_ASSIGN_OR_RETURN(current.te_cycles, ParseDouble(toks[3]));
      BRISK_ASSIGN_OR_RETURN(current.m_bytes, ParseDouble(toks[5]));
      BRISK_ASSIGN_OR_RETURN(int streams, ParseInt(toks[7]));
      if (streams < 0) {
        return Status::InvalidArgument("negative stream count");
      }
      expected_streams = static_cast<size_t>(streams);
    } else if (toks[0] == "stream") {
      if (current_name.empty()) {
        return Status::InvalidArgument("stream line before any op line");
      }
      if (toks.size() != 6 || toks[2] != "selectivity" ||
          toks[4] != "bytes") {
        return Status::InvalidArgument("malformed stream line: '" + line +
                                       "'");
      }
      BRISK_ASSIGN_OR_RETURN(double sel, ParseDouble(toks[3]));
      BRISK_ASSIGN_OR_RETURN(double bytes, ParseDouble(toks[5]));
      current.selectivity.push_back(sel);
      current.output_bytes.push_back(bytes);
    } else {
      return Status::InvalidArgument("unrecognized line: '" + line + "'");
    }
  }
  BRISK_RETURN_NOT_OK(flush());
  return out;
}

}  // namespace brisk::model
