// Rate-based performance model (§3.1) and resource constraints (§3.2).
//
// Given a machine, per-operator profiles, an execution plan, and the
// external ingress rate I, the evaluator propagates expected output
// rates topologically (Formula 1), charging each instance the
// relative-location-dependent fetch cost T_f (Formula 2). It reports
// application throughput R = Σ_sink r̄_o, per-instance rates and
// bottleneck flags, per-socket resource usage, the inter-socket traffic
// matrix, and any violated constraints (Eq. 3–5 plus core occupancy).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "hardware/machine_spec.h"
#include "model/execution_plan.h"
#include "model/operator_profile.h"

namespace brisk::model {

/// How T_f is charged — RLAS vs the fixed-capability ablations (§6.4).
enum class FetchCostMode {
  /// Formula 2 with the plan's actual relative locations (RLAS).
  kRelativeLocation,
  /// T_f = 0 everywhere: RLAS_fix(U), ignores RMA entirely.
  kAlwaysLocal,
  /// T_f = worst-case latency regardless of placement: RLAS_fix(L),
  /// pessimistically anti-collocates every operator from its producers.
  kAlwaysRemote,
};

/// Evaluation knobs.
struct ModelOptions {
  FetchCostMode fetch_mode = FetchCostMode::kRelativeLocation;

  /// Treat unplaced instances (socket == -1) as collocated with all of
  /// their producers (T_f = 0) — the B&B bounding relaxation (§4).
  /// When false, evaluating a plan with unplaced instances is an error.
  bool allow_unplaced = false;

  /// Relative slack before an instance counts as a bottleneck.
  double bottleneck_epsilon = 1e-9;
};

/// One constraint violation (Eq. 3–5 or core occupancy).
struct ConstraintViolation {
  enum Kind { kCpu, kLocalBandwidth, kChannelBandwidth, kCoreCount } kind;
  int socket_from = -1;  ///< the constrained socket (Eq. 3/4/core) or link src
  int socket_to = -1;    ///< link destination for Eq. 5, else -1
  double demand = 0.0;
  double limit = 0.0;
  std::string ToString() const;
};

/// Per-instance model outputs.
struct InstanceStats {
  double input_rate = 0.0;   ///< Σ r_i from all producers, tuples/sec
  double t_ns = 0.0;         ///< T(p) = T_e + avg T_f, ns/tuple
  double capacity = 0.0;     ///< 1 / T(p), tuples/sec
  double processed = 0.0;    ///< r̄_o before selectivity
  bool bottleneck = false;   ///< over-supplied (Case 1, §3.1)
};

/// Per-socket aggregated demand.
struct SocketUsage {
  double cpu_ns_per_sec = 0.0;  ///< Σ r_o · T (Eq. 3 LHS)
  double bw_bytes_per_sec = 0.0;  ///< Σ r_o · M (Eq. 4 LHS)
  int instances = 0;
};

/// Complete evaluation result.
struct ModelResult {
  double throughput = 0.0;  ///< R = Σ_sink r̄_o, tuples/sec
  std::vector<InstanceStats> instances;
  std::vector<SocketUsage> sockets;
  /// Inter-socket traffic, bytes/sec, row-major [from * n + to]
  /// (the Eq. 5 LHS and Fig. 15's communication matrix).
  std::vector<double> link_traffic;
  std::vector<ConstraintViolation> violations;

  /// Logical operator with the largest over-supply ratio, -1 if none —
  /// the scaling algorithm's next target.
  int bottleneck_op = -1;
  double bottleneck_ratio = 1.0;  ///< r_i / r̄_o of that operator

  /// Service-time lower bound on end-to-end latency: the longest
  /// spout→sink path of per-operator worst-instance T(p) (ns). Queueing
  /// is excluded — the simulator measures that — so this bounds the
  /// best latency any batching configuration could reach.
  double critical_path_ns = 0.0;

  bool feasible() const { return violations.empty(); }
};

/// The evaluator. Stateless; all inputs are explicit.
class PerfModel {
 public:
  PerfModel(const hw::MachineSpec* machine, const ProfileSet* profiles)
      : machine_(machine), profiles_(profiles) {}

  /// Evaluates `plan` under external ingress rate `input_rate_tps`.
  /// Fails if a profile is missing or (without allow_unplaced) an
  /// instance is unplaced. Constraint violations do NOT fail the call —
  /// they are reported in the result, because the B&B explores invalid
  /// intermediate nodes by design.
  StatusOr<ModelResult> Evaluate(const ExecutionPlan& plan,
                                 double input_rate_tps,
                                 const ModelOptions& options = {}) const;

  /// The B&B bounding function (§4): upper-bounds the best throughput
  /// any completion of this partial plan can reach, by letting every
  /// unplaced instance sit with all of its producers (T_f = 0).
  StatusOr<double> Bound(const ExecutionPlan& plan,
                         double input_rate_tps) const;

  const hw::MachineSpec& machine() const { return *machine_; }
  const ProfileSet& profiles() const { return *profiles_; }

 private:
  const hw::MachineSpec* machine_;
  const ProfileSet* profiles_;
};

}  // namespace brisk::model
