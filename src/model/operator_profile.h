// Operator specifications (Table 1, operator-specific rows).
//
// A profile carries what the paper measures with overseer/classmexer
// during model instantiation (§3.1): per-tuple execution time T_e,
// memory bandwidth consumption M, output tuple size N, and per-stream
// selectivity. T_e is stored in CPU *cycles* (as profiled, Fig. 3) and
// converted to ns on a concrete machine, so the same profile drives
// both evaluation servers despite their different clock speeds.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace brisk::model {

/// Profiled specification of one logical operator.
struct OperatorProfile {
  /// Average execution cycles per input tuple (function execution +
  /// emit cost; 50th percentile of the profiled distribution, §3.1).
  double te_cycles = 0.0;

  /// Average memory bandwidth consumption per tuple, bytes (Eq. 4's M).
  double m_bytes = 0.0;

  /// Average output tuple size N in bytes, per declared output stream
  /// (index = stream id). Consumers use the producer's entry for their
  /// subscribed stream in Formula 2.
  std::vector<double> output_bytes{64.0};

  /// Output selectivity per declared output stream: output tuples
  /// emitted on that stream per input tuple processed (Appendix B).
  std::vector<double> selectivity{1.0};

  /// Convenience for single-stream operators.
  static OperatorProfile Simple(double te_cycles, double m_bytes,
                                double out_bytes, double sel = 1.0) {
    OperatorProfile p;
    p.te_cycles = te_cycles;
    p.m_bytes = m_bytes;
    p.output_bytes = {out_bytes};
    p.selectivity = {sel};
    return p;
  }
};

/// Profiles for every operator of one application, keyed by operator
/// name. The model requires an entry per topology operator.
class ProfileSet {
 public:
  ProfileSet() = default;

  void Set(const std::string& op_name, OperatorProfile profile) {
    profiles_[op_name] = std::move(profile);
  }

  StatusOr<OperatorProfile> Get(const std::string& op_name) const {
    auto it = profiles_.find(op_name);
    if (it == profiles_.end()) {
      return Status::NotFound("no profile for operator '" + op_name + "'");
    }
    return it->second;
  }

  bool Has(const std::string& op_name) const {
    return profiles_.count(op_name) > 0;
  }

  size_t size() const { return profiles_.size(); }

  const std::map<std::string, OperatorProfile>& all() const {
    return profiles_;
  }

  /// Returns a copy with every T_e multiplied by `factor` — used to
  /// derive Storm-like/Flink-like cost profiles from Brisk profiles
  /// (Fig. 8's measured execution-efficiency gap).
  ProfileSet ScaledTe(double factor) const {
    ProfileSet out = *this;
    for (auto& [name, p] : out.profiles_) p.te_cycles *= factor;
    return out;
  }

 private:
  std::map<std::string, OperatorProfile> profiles_;
};

}  // namespace brisk::model
