// Streaming execution plan (§3): replication level per operator plus a
// placement of every replica ("instance") onto a CPU socket.
#pragma once

#include <string>
#include <vector>

#include "api/topology.h"
#include "common/status.h"

namespace brisk::model {

/// One replica of a logical operator.
struct PlanInstance {
  int op = -1;       ///< operator id in the topology
  int replica = 0;   ///< replica index within the operator
  int socket = -1;   ///< assigned socket, -1 while unplaced
};

/// Replication + placement for one topology. Cheap to copy (two flat
/// vectors), which the branch-and-bound search relies on.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  /// Builds an unplaced plan with the given per-operator replication.
  static StatusOr<ExecutionPlan> Create(const api::Topology* topo,
                                        std::vector<int> replication);

  /// Builds an unplaced plan using each operator's base parallelism.
  static StatusOr<ExecutionPlan> CreateDefault(const api::Topology* topo);

  const api::Topology& topology() const { return *topo_; }

  int num_instances() const { return static_cast<int>(instances_.size()); }
  const PlanInstance& instance(int id) const { return instances_[id]; }
  const std::vector<PlanInstance>& instances() const { return instances_; }

  int replication(int op) const { return replication_[op]; }
  const std::vector<int>& replication() const { return replication_; }
  int total_replicas() const { return num_instances(); }

  /// Global instance id of (op, replica).
  int InstanceId(int op, int replica) const {
    return first_instance_[op] + replica;
  }

  /// Instance ids belonging to `op`: [first, first + replication).
  int FirstInstanceOf(int op) const { return first_instance_[op]; }

  void SetSocket(int instance_id, int socket) {
    instances_[instance_id].socket = socket;
  }
  int SocketOf(int instance_id) const {
    return instances_[instance_id].socket;
  }

  /// True when every instance has a socket.
  bool FullyPlaced() const;

  /// Number of instances currently assigned to `socket`.
  int InstancesOnSocket(int socket) const;

  /// Places every instance on socket 0 (the bounding-function seed and
  /// the trivial single-socket plan).
  void PlaceAllOn(int socket);

  /// Clears all placements back to -1.
  void ClearPlacement();

  std::string ToString() const;

 private:
  const api::Topology* topo_ = nullptr;
  std::vector<int> replication_;     // per op
  std::vector<int> first_instance_;  // per op, prefix sum
  std::vector<PlanInstance> instances_;
};

}  // namespace brisk::model
