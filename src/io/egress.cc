#include "io/egress.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "common/logging.h"
#include "io/socket.h"

namespace brisk::io {

namespace {
std::atomic<uint64_t> g_bytes_written{0};
}  // namespace

uint64_t EgressSink::TotalBytesWritten() { return g_bytes_written.load(); }
void EgressSink::ResetTotalBytesWritten() { g_bytes_written.store(0); }

Status EgressSink::Prepare(const api::OperatorContext& ctx) {
  name_ = ctx.operator_name;
  if (options_.target == EgressOptions::Target::kFile) {
    resolved_path_ = options_.path;
    if (ctx.num_replicas > 1) {
      resolved_path_ += ".r" + std::to_string(ctx.replica_index);
    }
    const int flags =
        O_WRONLY | O_CREAT | (options_.append ? O_APPEND : O_TRUNC);
    fd_ = ::open(resolved_path_.c_str(), flags, 0644);
    if (fd_ < 0) {
      return Status::NotFound("egress '" + name_ + "': cannot open '" +
                              resolved_path_ + "': " + std::strerror(errno));
    }
    return Status::OK();
  }
  BRISK_ASSIGN_OR_RETURN(fd_, TcpConnect(options_.host, options_.port));
  return Status::OK();
}

EgressSink::~EgressSink() {
  if (fd_ >= 0) {
    if (!buf_.empty()) {
      // Best-effort final drain; errors here have no caller to reach.
      size_t off = 0;
      while (off < buf_.size()) {
        const ssize_t n = ::write(fd_, buf_.data() + off, buf_.size() - off);
        if (n <= 0 && errno != EINTR) break;
        if (n > 0) off += static_cast<size_t>(n);
      }
      g_bytes_written.fetch_add(off);
    }
    ::close(fd_);
  }
}

void EgressSink::Drain() {
  size_t off = 0;
  while (off < buf_.size()) {
    const ssize_t n = ::write(fd_, buf_.data() + off, buf_.size() - off);
    if (n <= 0) {
      if (errno == EINTR) continue;
      // Process/Flush cannot return Status; surface the failure as a
      // task fault the engine's supervision machinery handles.
      throw std::runtime_error("egress '" + name_ + "': write failed: " +
                               std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  g_bytes_written.fetch_add(buf_.size());
  buf_.clear();
}

void EgressSink::Process(const Tuple& in, api::OutputCollector* out) {
  (void)out;
  EncodeTupleRecord(options_.codec, in, &buf_);
  if (buf_.size() >= options_.buffer_bytes) Drain();
}

void EgressSink::Flush(api::OutputCollector* out) {
  (void)out;
  if (!buf_.empty()) Drain();
}

}  // namespace brisk::io
