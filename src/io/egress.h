// Egress: a buffered record writer mounted as a terminal operator.
//
// EgressSink encodes every input tuple with the shared record codec
// (io/codec.h) into an in-memory buffer and writes the buffer to its
// target — a file or a TCP connection — when it fills, at Flush, and
// at teardown. Binary egress is the exact serde round-trip, so a file
// written here replays through FromFile with identical tuples; text
// egress renders fields space-separated for human consumption.
//
// Replication: each replica owns its own output. File targets with
// more than one replica get a ".r<i>" suffix so replicas never
// interleave writes; socket targets open one connection per replica.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/operator.h"
#include "common/status.h"
#include "io/codec.h"

namespace brisk::io {

struct EgressOptions {
  enum class Target { kFile, kSocket };
  Target target = Target::kFile;

  // File target.
  std::string path;
  bool append = false;

  // Socket target.
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  RecordCodec codec = RecordCodec::kBinary;

  /// Write() is issued when the encode buffer reaches this size.
  size_t buffer_bytes = 64u << 10;

  static EgressOptions File(std::string path,
                            RecordCodec codec = RecordCodec::kBinary) {
    EgressOptions o;
    o.target = Target::kFile;
    o.path = std::move(path);
    o.codec = codec;
    return o;
  }
  static EgressOptions Socket(std::string host, uint16_t port,
                              RecordCodec codec = RecordCodec::kBinary) {
    EgressOptions o;
    o.target = Target::kSocket;
    o.host = std::move(host);
    o.port = port;
    o.codec = codec;
    return o;
  }
};

/// Terminal operator writing every input tuple to the egress target.
class EgressSink : public api::Operator {
 public:
  explicit EgressSink(EgressOptions options) : options_(std::move(options)) {}
  ~EgressSink() override;

  Status Prepare(const api::OperatorContext& ctx) override;
  void Process(const Tuple& in, api::OutputCollector* out) override;
  void Flush(api::OutputCollector* out) override;

  /// Bytes handed to write() across all EgressSink instances in this
  /// process (bench/test accounting).
  static uint64_t TotalBytesWritten();
  static void ResetTotalBytesWritten();

  /// Output path of a file-target replica (after Prepare; includes the
  /// ".r<i>" suffix when replicated).
  const std::string& resolved_path() const { return resolved_path_; }

 private:
  void Drain();

  EgressOptions options_;
  std::string name_;
  std::string resolved_path_;
  int fd_ = -1;
  std::vector<uint8_t> buf_;
};

}  // namespace brisk::io
