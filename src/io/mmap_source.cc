#include "io/mmap_source.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/logging.h"

namespace brisk::io {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr uint64_t kPage = 4096;

std::mutex& RegistryMu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, std::weak_ptr<SharedMapping>>& Registry() {
  static auto* m = new std::map<std::string, std::weak_ptr<SharedMapping>>();
  return *m;
}

std::atomic<uint64_t> g_map_calls{0};
std::atomic<uint64_t> g_active{0};
std::atomic<uint64_t> g_mapped_bytes{0};

}  // namespace

MappingCounters GetMappingCounters() {
  return {g_map_calls.load(), g_active.load(), g_mapped_bytes.load()};
}

SharedMapping::SharedMapping(std::string path, const uint8_t* data,
                             size_t size)
    : path_(std::move(path)), data_(data), size_(size) {}

StatusOr<std::shared_ptr<SharedMapping>> SharedMapping::Open(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto& slot = Registry()[path];
  if (auto existing = slot.lock()) return existing;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open '" + path + "'");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed for '" + path + "'");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  const uint8_t* data = nullptr;
  if (size > 0) {
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      return Status::Internal("mmap failed for '" + path + "'");
    }
    data = static_cast<const uint8_t*>(p);
    g_map_calls.fetch_add(1);
    g_active.fetch_add(1);
    g_mapped_bytes.fetch_add(size);
  }
  ::close(fd);

  auto mapping =
      std::shared_ptr<SharedMapping>(new SharedMapping(path, data, size));
  slot = mapping;
  return mapping;
}

SharedMapping::~SharedMapping() {
  stop_.store(true);
  if (readahead_.joinable()) readahead_.join();
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    g_active.fetch_sub(1);
    g_mapped_bytes.fetch_sub(size_);
  }
  // Drop our (now expired) registry slot — unless another thread
  // already re-created the mapping under the same path.
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto it = Registry().find(path_);
  if (it != Registry().end() && it->second.expired()) Registry().erase(it);
}

int SharedMapping::RegisterReader(uint64_t start_offset) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_reader_++;
  readers_[id] = start_offset;
  return id;
}

void SharedMapping::ReportOffset(int reader, uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = readers_.find(reader);
  if (it != readers_.end()) it->second = offset;
}

void SharedMapping::UnregisterReader(int reader) {
  std::lock_guard<std::mutex> lock(mu_);
  readers_.erase(reader);
}

void SharedMapping::EnsureReadahead(size_t window_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  window_bytes_ = std::max(window_bytes_, window_bytes);
  if (!readahead_.joinable() && window_bytes_ > 0 && size_ > 0) {
    readahead_ = std::thread([this] { ReadaheadLoop(); });
  }
}

uint64_t SharedMapping::SlowestReader() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t slowest = 0;
  bool any = false;
  for (const auto& [id, off] : readers_) {
    (void)id;
    slowest = any ? std::min(slowest, off) : off;
    any = true;
  }
  return any ? slowest : 0;
}

void SharedMapping::ReadaheadLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    size_t window;
    {
      std::lock_guard<std::mutex> lock(mu_);
      window = window_bytes_;
    }
    const uint64_t target =
        std::min<uint64_t>(SlowestReader() + window, size_);
    uint64_t done = readahead_done_.load(std::memory_order_relaxed);
    if (target > done) {
      const uint64_t start = done & ~(kPage - 1);
      ::madvise(const_cast<uint8_t*>(data_) + start,
                static_cast<size_t>(target - start), MADV_WILLNEED);
      // Touch one byte per page so the fault happens here, not on an
      // execution thread.
      volatile uint8_t sink = 0;
      for (uint64_t p = start; p < target; p += kPage) sink += data_[p];
      (void)sink;
      readahead_done_.store(target, std::memory_order_relaxed);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

Status FileSource::Prepare(const api::OperatorContext& ctx) {
  replica_ = ctx.replica_index;
  replicas_ = std::max(1, ctx.num_replicas);
  BRISK_ASSIGN_OR_RETURN(map_, SharedMapping::Open(options_.path));

  if (options_.partition == FileSourceOptions::Partition::kRange &&
      options_.codec == RecordCodec::kBinary && replicas_ > 1) {
    return Status::InvalidArgument(
        "file source '" + ctx.operator_name +
        "': range partition needs newline-aligned slice boundaries; "
        "binary files must use interleaved partitioning");
  }

  const uint64_t size = map_->size();
  if (options_.partition == FileSourceOptions::Partition::kRange) {
    // Raw boundary i*size/N, then advanced to the next record start so
    // each record belongs to exactly one slice.
    const auto align = [&](uint64_t p) -> uint64_t {
      if (p == 0 || p >= size) return std::min(p, size);
      const void* nl = std::memchr(map_->data() + p - 1, '\n', size - (p - 1));
      if (nl == nullptr) return size;
      return static_cast<const uint8_t*>(nl) - map_->data() + 1;
    };
    slice_begin_ = align(size * static_cast<uint64_t>(replica_) / replicas_);
    slice_end_ =
        align(size * (static_cast<uint64_t>(replica_) + 1) / replicas_);
  } else {
    slice_begin_ = 0;
    slice_end_ = size;
  }
  cursor_ = slice_begin_;
  seq_ = 0;
  done_ = false;

  reader_id_ = map_->RegisterReader(cursor_);
  if (options_.readahead_bytes > 0) {
    map_->EnsureReadahead(options_.readahead_bytes);
  }
  return Status::OK();
}

FileSource::~FileSource() {
  if (map_ != nullptr && reader_id_ >= 0) map_->UnregisterReader(reader_id_);
}

bool FileSource::Step(std::string_view* record, bool* owned) {
  if (cursor_ >= slice_end_) return false;
  size_t consumed = cursor_;
  const FrameResult r = NextRecord(options_.codec, map_->data(),
                                   static_cast<size_t>(slice_end_), &consumed,
                                   record);
  if (r == FrameResult::kRecord) {
    cursor_ = consumed;
  } else if (r == FrameResult::kNeedMore &&
             options_.codec == RecordCodec::kText &&
             slice_end_ == map_->size()) {
    // Unterminated final line of the file: still one record.
    *record = std::string_view(
        reinterpret_cast<const char*>(map_->data()) + cursor_,
        static_cast<size_t>(slice_end_ - cursor_));
    cursor_ = slice_end_;
  } else {
    if (r == FrameResult::kError) {
      BRISK_LOG(Warn) << "file source: corrupt frame in '" << options_.path
                      << "' at byte " << cursor_ << "; stopping this slice";
    }
    return false;
  }
  *owned = options_.partition == FileSourceOptions::Partition::kRange ||
           seq_ % static_cast<uint64_t>(replicas_) ==
               static_cast<uint64_t>(replica_);
  ++seq_;
  return true;
}

size_t FileSource::NextBatch(size_t max_tuples, api::OutputCollector* out) {
  if (done_ || map_ == nullptr) return 0;
  size_t produced = 0;
  while (produced < max_tuples) {
    std::string_view record;
    bool owned = false;
    if (!Step(&record, &owned)) {
      if (options_.loop && slice_end_ > slice_begin_) {
        cursor_ = slice_begin_;
        seq_ = 0;
        continue;
      }
      done_ = true;
      break;
    }
    if (!owned) continue;
    auto t = DecodeTupleRecord(options_.codec, record);
    if (!t.ok()) {
      BRISK_LOG(Warn) << "file source: undecodable record in '"
                      << options_.path << "': " << t.status();
      done_ = true;
      break;
    }
    if (t.value().origin_ts_ns == 0) t.value().origin_ts_ns = NowNs();
    out->Emit(std::move(t).value());
    ++produced;
    ++emitted_;
  }
  if (reader_id_ >= 0) map_->ReportOffset(reader_id_, cursor_);
  return produced;
}

bool FileSource::Rewind(const api::SourcePosition& position) {
  if (!Replayable() || map_ == nullptr) return false;
  if (position.kind != api::SourcePosition::Kind::kByteOffset) return false;
  const uint64_t off = position.offset;
  if (off < slice_begin_ || off > slice_end_) return false;

  if (options_.partition == FileSourceOptions::Partition::kInterleaved) {
    // Re-derive the frame sequence number at `off` by walking frames
    // from the start — O(file prefix), paid only on recovery — so the
    // interleaved ownership pattern resumes exactly.
    uint64_t seq = 0;
    size_t c = slice_begin_;
    std::string_view rec;
    while (c < off) {
      const FrameResult r = NextRecord(options_.codec, map_->data(),
                                       static_cast<size_t>(slice_end_), &c,
                                       &rec);
      if (r != FrameResult::kRecord) return false;
      ++seq;
    }
    if (c != off) return false;  // not a frame boundary
    seq_ = seq;
  }
  cursor_ = off;
  done_ = false;
  if (reader_id_ >= 0) map_->ReportOffset(reader_id_, cursor_);
  return true;
}

}  // namespace brisk::io
