// TCP ingest: a shared listener plus a per-connection framed-record
// Spout, with back-pressure that reaches the remote producer.
//
// The engine pulls from spouts (NextBatch), so back-pressure is
// structural: when a downstream channel fills, the executor parks the
// spout task and stops calling NextBatch; this source then stops
// draining the kernel socket buffer, the TCP window closes, and the
// remote writer blocks. User-space buffering stays bounded at roughly
// one read chunk per connection — MaxBufferedBytes() exposes the
// high-water mark so tests assert the bound instead of trusting it.
//
// Replay: a socket is not a seekable medium, so positions are journal
// sequence numbers (api::SourcePosition::Tuples). Without a journal
// the source is NOT replayable and CheckpointGuard() vetoes job
// checkpoints (a snapshot that cannot replay the socket gap would
// silently lose data on restore). With TcpSourceOptions::journal_dir
// set, every record is appended to a per-replica journal file BEFORE
// it is emitted; Position() is the journal sequence and Rewind()
// re-reads the journal tail, making checkpoint/restore exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/operator.h"
#include "common/status.h"
#include "io/codec.h"

namespace brisk::io {

/// One listening socket shared by every replica of a socket source:
/// replicas accept from the same fd, so the kernel spreads incoming
/// connections across them without a dispatcher thread. Created
/// un-opened; the first Prepare (or an explicit EnsureOpen, e.g. a
/// test that needs the bound port before deploying) opens it.
class TcpListener {
 public:
  TcpListener(std::string bind_addr, uint16_t port)
      : bind_addr_(std::move(bind_addr)), requested_port_(port) {}
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Opens the socket (idempotent, thread-safe). With port 0 the
  /// kernel assigns one; port() reports it afterwards.
  Status EnsureOpen();

  /// Bound port, 0 until EnsureOpen succeeded.
  uint16_t port() const { return port_.load(); }

  /// Accepts one pending connection as a non-blocking fd; -1 if none.
  int Accept();

 private:
  std::string bind_addr_;
  uint16_t requested_port_ = 0;
  std::mutex mu_;
  int fd_ = -1;
  std::atomic<uint16_t> port_{0};
};

struct TcpSourceOptions {
  RecordCodec codec = RecordCodec::kText;

  /// Non-empty enables the replay journal (one file per replica under
  /// this directory) and with it Position/Rewind replayability. The
  /// journal sequence survives restarts: a re-Prepared replica keeps
  /// appending after its existing journal.
  std::string journal_dir;

  /// Per-NextBatch socket read budget — the user-space buffering bound
  /// back-pressure is measured against.
  size_t max_read_bytes = 64u << 10;

  /// When true the source reports Exhausted() once at least one
  /// connection was accepted and all of them have closed (drained
  /// bounded jobs end instead of idling forever). Long-running ingest
  /// keeps the default: idle, never done.
  bool finite = false;
};

/// api::Spout reading framed records from accepted TCP connections.
class TcpSource : public api::Spout {
 public:
  TcpSource(std::shared_ptr<TcpListener> listener, TcpSourceOptions options)
      : listener_(std::move(listener)), options_(std::move(options)) {}
  ~TcpSource() override;

  Status Prepare(const api::OperatorContext& ctx) override;
  size_t NextBatch(size_t max_tuples, api::OutputCollector* out) override;

  bool Exhausted() const override {
    return options_.finite && accepted_ > 0 && conns_.empty() &&
           replay_.empty();
  }
  bool Replayable() const override { return !options_.journal_dir.empty(); }
  api::SourcePosition Position() const override {
    return api::SourcePosition::Tuples(seq_);
  }
  bool Rewind(const api::SourcePosition& position) override;
  Status CheckpointGuard() const override;

  /// High-water mark of user-space bytes buffered across all TcpSource
  /// instances in this process — the back-pressure bound under test.
  static uint64_t MaxBufferedBytes();
  static void ResetMaxBufferedBytes();

 private:
  struct Conn {
    int fd = -1;
    std::vector<uint8_t> buf;
    size_t parsed = 0;
  };

  void AcceptPending();
  void CloseConn(Conn& c);

  std::shared_ptr<TcpListener> listener_;
  TcpSourceOptions options_;
  std::string name_;
  int replica_ = 0;

  std::vector<Conn> conns_;
  uint64_t accepted_ = 0;

  /// Journal sequence: records ever journaled by this replica; the
  /// next record to emit when replaying.
  uint64_t seq_ = 0;
  int journal_fd_ = -1;
  std::string journal_path_;
  std::deque<std::string> replay_;
};

/// Blocking connect helper (egress sink, test producers). Returns a
/// connected fd.
StatusOr<int> TcpConnect(const std::string& host, uint16_t port);

/// Test/bench producer: connects, writes all records framed by
/// `codec`, and closes. Blocks until the kernel accepted every byte —
/// i.e. it experiences the receiver's back-pressure.
Status TcpSend(const std::string& host, uint16_t port, RecordCodec codec,
               const std::vector<std::string>& records);

}  // namespace brisk::io
