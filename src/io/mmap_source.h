// Replayable mmap file source.
//
// Design (the "one mapping, many readers" contract):
//
//   * SharedMapping keeps a process-wide registry of read-only mmap
//     regions keyed by path. Every FileSource replica of every job
//     reading the same file shares ONE mapping — replication never
//     multiplies resident pages or map calls. MappingCounters exposes
//     map-call and live-mapping counts so benches and tests assert the
//     sharing instead of trusting it.
//
//   * Each mapping can run one readahead thread: replicas report their
//     cursor after every batch, and the thread madvises + touches the
//     window just ahead of the SLOWEST reader, so page faults are taken
//     off the execution threads' critical path without prefetching
//     pages no reader will want soon.
//
//   * Replicas split the file without copying: range partition gives
//     replica i one contiguous newline-aligned slice (text only — the
//     alignment scan needs a record delimiter that can be found without
//     walking frames from byte 0); interleaved partition has every
//     replica walk all frames and emit those with seq % N == i (works
//     for both codecs; the skipped frames cost a memchr/length hop, not
//     a decode).
//
//   * Positions are byte offsets into the file (api::SourcePosition::
//     Bytes), so checkpoints capture exactly which prefix of the file
//     has taken effect and restore rewinds to that record boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "api/operator.h"
#include "common/status.h"
#include "io/codec.h"

namespace brisk::io {

/// Process-wide mmap accounting, for asserting the sharing claims.
struct MappingCounters {
  /// mmap() calls ever made by SharedMapping (monotone).
  uint64_t map_calls = 0;
  /// Mappings currently live.
  uint64_t active = 0;
  /// Bytes covered by live mappings.
  uint64_t mapped_bytes = 0;
};
MappingCounters GetMappingCounters();

/// One read-only mapping of one file, shared by all its readers.
class SharedMapping {
 public:
  /// Returns the process-wide mapping for `path`, mmap-ing it on first
  /// use. Subsequent opens of the same path (other replicas, other
  /// jobs) get the same object until the last holder drops it.
  static StatusOr<std::shared_ptr<SharedMapping>> Open(
      const std::string& path);

  ~SharedMapping();
  SharedMapping(const SharedMapping&) = delete;
  SharedMapping& operator=(const SharedMapping&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  // Readahead protocol. Readers register with their starting offset,
  // report progress per batch, and unregister on teardown; the first
  // EnsureReadahead call starts the (single) readahead thread with the
  // widest requested window.

  int RegisterReader(uint64_t start_offset);
  void ReportOffset(int reader, uint64_t offset);
  void UnregisterReader(int reader);
  void EnsureReadahead(size_t window_bytes);

  /// Pages the readahead thread has touched so far (bytes, monotone);
  /// lets tests see the thread actually ran ahead of the readers.
  uint64_t readahead_bytes() const {
    return readahead_done_.load(std::memory_order_relaxed);
  }

 private:
  SharedMapping(std::string path, const uint8_t* data, size_t size);
  void ReadaheadLoop();
  uint64_t SlowestReader();

  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;

  std::mutex mu_;
  std::map<int, uint64_t> readers_;
  int next_reader_ = 0;
  size_t window_bytes_ = 0;
  std::thread readahead_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> readahead_done_{0};
};

struct FileSourceOptions {
  std::string path;
  RecordCodec codec = RecordCodec::kText;

  /// How replicas split the file. kRange (contiguous newline-aligned
  /// slices) is text-only; Prepare rejects kRange for binary files with
  /// more than one replica, because binary frame boundaries cannot be
  /// found mid-file without walking from byte 0.
  enum class Partition { kRange, kInterleaved };
  Partition partition = Partition::kRange;

  /// Readahead window per mapping; 0 disables the readahead thread.
  size_t readahead_bytes = 1u << 20;

  /// Benchmark mode: wrap to the slice start at EOF and keep producing
  /// forever (sustained-throughput measurement). A looping source has
  /// no meaningful byte position, so it is not replayable.
  bool loop = false;
};

/// api::Spout over a SharedMapping slice.
class FileSource : public api::Spout {
 public:
  explicit FileSource(FileSourceOptions options)
      : options_(std::move(options)) {}
  ~FileSource() override;

  Status Prepare(const api::OperatorContext& ctx) override;
  size_t NextBatch(size_t max_tuples, api::OutputCollector* out) override;

  bool Replayable() const override { return !options_.loop; }
  api::SourcePosition Position() const override {
    return api::SourcePosition::Bytes(cursor_);
  }
  bool Rewind(const api::SourcePosition& position) override;

  /// Records this replica has emitted (monotone; not reset by Rewind).
  uint64_t records_emitted() const { return emitted_; }

 private:
  /// Advances cursor_/seq_ past one frame; true when a record was
  /// framed (owned or not), false at end-of-slice / truncation.
  bool Step(std::string_view* record, bool* owned);

  FileSourceOptions options_;
  std::shared_ptr<SharedMapping> map_;
  int reader_id_ = -1;
  int replica_ = 0;
  int replicas_ = 1;

  uint64_t slice_begin_ = 0;  ///< first byte this replica scans
  uint64_t slice_end_ = 0;    ///< one past the last byte this replica scans
  uint64_t cursor_ = 0;       ///< byte offset of the next unexamined frame
  uint64_t seq_ = 0;          ///< frame sequence number at cursor_ (interleaved)
  uint64_t emitted_ = 0;
  bool done_ = false;
};

}  // namespace brisk::io
