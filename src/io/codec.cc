#include "io/codec.h"

#include <cstdio>
#include <cstring>
#include <string>

#include "common/serde.h"

namespace brisk::io {

const char* RecordCodecName(RecordCodec codec) {
  return codec == RecordCodec::kBinary ? "binary" : "text";
}

void AppendRecord(RecordCodec codec, std::string_view record,
                  std::vector<uint8_t>* out) {
  if (codec == RecordCodec::kText) {
    out->insert(out->end(), record.begin(), record.end());
    out->push_back('\n');
    return;
  }
  const uint32_t len = static_cast<uint32_t>(record.size());
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(len >> (8 * i)));
  out->insert(out->end(), record.begin(), record.end());
}

FrameResult NextRecord(RecordCodec codec, const uint8_t* data, size_t size,
                       size_t* consumed, std::string_view* record) {
  const size_t off = *consumed;
  if (off >= size) return FrameResult::kNeedMore;
  if (codec == RecordCodec::kText) {
    const void* nl = std::memchr(data + off, '\n', size - off);
    if (nl == nullptr) return FrameResult::kNeedMore;
    const size_t end = static_cast<const uint8_t*>(nl) - data;
    *record = std::string_view(reinterpret_cast<const char*>(data) + off,
                               end - off);
    *consumed = end + 1;
    return FrameResult::kRecord;
  }
  if (size - off < 4) return FrameResult::kNeedMore;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= uint32_t(data[off + i]) << (8 * i);
  if (len > kMaxRecordBytes) return FrameResult::kError;
  if (size - off - 4 < len) return FrameResult::kNeedMore;
  *record = std::string_view(reinterpret_cast<const char*>(data) + off + 4,
                             len);
  *consumed = off + 4 + len;
  return FrameResult::kRecord;
}

StatusOr<Tuple> DecodeTupleRecord(RecordCodec codec, std::string_view record) {
  if (codec == RecordCodec::kText) {
    Tuple t;
    t.fields.emplace_back(record);
    return t;
  }
  std::vector<uint8_t> buf(record.begin(), record.end());
  size_t off = 0;
  auto t = DeserializeTuple(buf, &off);
  if (!t.ok()) return t.status();
  if (off != buf.size()) {
    return Status::InvalidArgument("binary record has trailing bytes");
  }
  return t;
}

void EncodeTupleRecord(RecordCodec codec, const Tuple& t,
                       std::vector<uint8_t>* out) {
  if (codec == RecordCodec::kBinary) {
    std::vector<uint8_t> payload;
    SerializeTuple(t, &payload);
    AppendRecord(codec,
                 std::string_view(reinterpret_cast<const char*>(payload.data()),
                                  payload.size()),
                 out);
    return;
  }
  std::string line;
  for (size_t i = 0; i < t.fields.size(); ++i) {
    if (i > 0) line.push_back(' ');
    const Field& f = t.fields[i];
    if (f.is_string()) {
      line.append(f.AsString());
    } else if (f.is_double()) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", f.AsDouble());
      line.append(buf);
    } else {
      line.append(std::to_string(f.AsInt()));
    }
  }
  AppendRecord(codec, line, out);
}

Status WriteRecordFile(const std::string& path, RecordCodec codec,
                       const std::vector<std::string>& records) {
  std::vector<uint8_t> buf;
  for (const auto& r : records) AppendRecord(codec, r, &buf);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  if (!buf.empty() &&
      std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
    std::fclose(f);
    return Status::Internal("short write to '" + path + "'");
  }
  if (std::fclose(f) != 0) {
    return Status::Internal("close failed for '" + path + "'");
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> ReadRecordFile(const std::string& path,
                                                  RecordCodec codec) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open '" + path + "'");
  std::vector<uint8_t> buf;
  uint8_t chunk[1 << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  std::fclose(f);
  std::vector<std::string> records;
  size_t off = 0;
  std::string_view rec;
  while (off < buf.size()) {
    const FrameResult r = NextRecord(codec, buf.data(), buf.size(), &off, &rec);
    if (r == FrameResult::kRecord) {
      records.emplace_back(rec);
      continue;
    }
    if (r == FrameResult::kNeedMore && codec == RecordCodec::kText) {
      // Unterminated final line: still one record.
      records.emplace_back(reinterpret_cast<const char*>(buf.data()) + off,
                           buf.size() - off);
      break;
    }
    return Status::InvalidArgument("corrupt or truncated frame in '" + path +
                                   "' at byte " + std::to_string(off));
  }
  return records;
}

}  // namespace brisk::io
