// brisk::io — production ingest/egress: the engine meets the outside
// world.
//
// One include for the whole subsystem:
//   codec.h        record framing (newline text / length-prefixed
//                  binary) shared by every endpoint
//   mmap_source.h  replayable file source: one shared mapping per
//                  file, slice-partitioned replicas, readahead thread,
//                  byte-offset checkpoint positions
//   socket.h       TCP listener + framed-record source with pull-based
//                  back-pressure and an optional replay journal
//   egress.h       buffered file/socket record writer sink
//
// DSL surface (api/dsl.h): Pipeline::FromFile / FromSocket,
// Stream::ToFile / ToSocket.
#pragma once

#include "io/codec.h"
#include "io/egress.h"
#include "io/mmap_source.h"
#include "io/socket.h"
