#include "io/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstring>

#include "common/logging.h"

namespace brisk::io {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<uint64_t> g_max_buffered{0};

void NoteBuffered(uint64_t bytes) {
  uint64_t prev = g_max_buffered.load(std::memory_order_relaxed);
  while (bytes > prev &&
         !g_max_buffered.compare_exchange_weak(prev, bytes)) {
  }
}

Status MakeAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof *addr);
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  return Status::OK();
}

}  // namespace

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

Status TcpListener::EnsureOpen() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return Status::OK();

  sockaddr_in addr;
  BRISK_RETURN_NOT_OK(MakeAddr(bind_addr_, requested_port_, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Status::Unavailable("bind to " + bind_addr_ + ":" +
                               std::to_string(requested_port_) + " failed: " +
                               std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  fd_ = fd;
  port_.store(ntohs(bound.sin_port));
  return Status::OK();
}

int TcpListener::Accept() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return -1;
  return ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK);
}

uint64_t TcpSource::MaxBufferedBytes() { return g_max_buffered.load(); }
void TcpSource::ResetMaxBufferedBytes() { g_max_buffered.store(0); }

TcpSource::~TcpSource() {
  for (auto& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

Status TcpSource::Prepare(const api::OperatorContext& ctx) {
  name_ = ctx.operator_name;
  replica_ = ctx.replica_index;
  if (listener_ == nullptr) {
    return Status::InvalidArgument("socket source '" + name_ +
                                   "' has no listener");
  }
  BRISK_RETURN_NOT_OK(listener_->EnsureOpen());

  if (!options_.journal_dir.empty()) {
    journal_path_ = options_.journal_dir + "/" + name_ + ".r" +
                    std::to_string(replica_) + ".jnl";
    journal_fd_ = ::open(journal_path_.c_str(),
                         O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (journal_fd_ < 0) {
      return Status::NotFound("cannot open journal '" + journal_path_ + "'");
    }
    // The journal sequence survives restarts: keep counting after
    // whatever a previous incarnation of this replica journaled.
    auto prior = ReadRecordFile(journal_path_, options_.codec);
    if (!prior.ok()) return prior.status();
    seq_ = prior.value().size();
  }
  return Status::OK();
}

void TcpSource::AcceptPending() {
  int fd;
  while ((fd = listener_->Accept()) >= 0) {
    Conn c;
    c.fd = fd;
    conns_.push_back(std::move(c));
    ++accepted_;
  }
}

void TcpSource::CloseConn(Conn& c) {
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
}

size_t TcpSource::NextBatch(size_t max_tuples, api::OutputCollector* out) {
  AcceptPending();

  size_t produced = 0;
  std::vector<Tuple> pending;
  std::vector<uint8_t> journal_batch;

  // Drain the replay queue before touching sockets: journal order is
  // the sequence, and replayed records are already journaled.
  while (produced < max_tuples && !replay_.empty()) {
    auto t = DecodeTupleRecord(options_.codec, replay_.front());
    replay_.pop_front();
    ++seq_;
    if (!t.ok()) continue;
    if (t.value().origin_ts_ns == 0) t.value().origin_ts_ns = NowNs();
    out->Emit(std::move(t).value());
    ++produced;
  }

  size_t read_budget = options_.max_read_bytes;
  for (auto& c : conns_) {
    if (produced >= max_tuples) break;
    if (c.fd < 0 && c.parsed >= c.buf.size()) continue;
    bool conn_open = c.fd >= 0;
    while (produced + pending.size() < max_tuples) {
      std::string_view rec;
      const FrameResult r = NextRecord(options_.codec, c.buf.data(),
                                       c.buf.size(), &c.parsed, &rec);
      if (r == FrameResult::kRecord) {
        auto t = DecodeTupleRecord(options_.codec, rec);
        if (!t.ok()) {
          BRISK_LOG(Warn) << "socket source '" << name_
                          << "': undecodable record dropped: " << t.status();
          continue;
        }
        // Journal-before-emit: the batch's journal bytes hit the file
        // (below) before any of its tuples reach the collector, so a
        // crash can duplicate records on replay but never lose one.
        if (journal_fd_ >= 0) {
          AppendRecord(options_.codec, rec, &journal_batch);
        }
        if (t.value().origin_ts_ns == 0) t.value().origin_ts_ns = NowNs();
        pending.push_back(std::move(t).value());
        continue;
      }
      if (r == FrameResult::kError) {
        BRISK_LOG(Warn) << "socket source '" << name_
                        << "': corrupt frame; closing connection";
        CloseConn(c);
        c.buf.clear();
        c.parsed = 0;
        conn_open = false;
        break;
      }
      // kNeedMore: compact and try to read.
      if (c.parsed > 0) {
        c.buf.erase(c.buf.begin(),
                    c.buf.begin() + static_cast<ptrdiff_t>(c.parsed));
        c.parsed = 0;
      }
      if (!conn_open || read_budget == 0) break;
      uint8_t chunk[16 << 10];
      const size_t want = std::min(sizeof chunk, read_budget);
      const ssize_t n = ::recv(c.fd, chunk, want, 0);
      if (n > 0) {
        c.buf.insert(c.buf.end(), chunk, chunk + n);
        read_budget -= static_cast<size_t>(n);
        continue;
      }
      if (n == 0) {
        if (c.buf.size() > c.parsed) {
          BRISK_LOG(Warn) << "socket source '" << name_ << "': peer closed "
                          << "mid-frame; dropping partial record";
        }
        CloseConn(c);
        c.buf.clear();
        c.parsed = 0;
        conn_open = false;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConn(c);
      c.buf.clear();
      c.parsed = 0;
      conn_open = false;
      break;
    }
  }

  // Journal, then emit (see journal-before-emit above).
  if (!journal_batch.empty()) {
    size_t off = 0;
    while (off < journal_batch.size()) {
      const ssize_t n = ::write(journal_fd_, journal_batch.data() + off,
                                journal_batch.size() - off);
      if (n <= 0) {
        BRISK_CHECK(errno == EINTR)
            << "socket journal write failed: " << std::strerror(errno);
        continue;
      }
      off += static_cast<size_t>(n);
    }
  }
  for (auto& t : pending) {
    out->Emit(std::move(t));
    ++produced;
    ++seq_;
  }

  uint64_t buffered = 0;
  for (const auto& c : conns_) buffered += c.buf.size() - c.parsed;
  NoteBuffered(buffered);

  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const Conn& c) {
                                return c.fd < 0 && c.parsed >= c.buf.size();
                              }),
               conns_.end());
  return produced;
}

bool TcpSource::Rewind(const api::SourcePosition& position) {
  if (!Replayable()) return false;
  if (position.kind != api::SourcePosition::Kind::kTupleCount) return false;
  auto journaled = ReadRecordFile(journal_path_, options_.codec);
  if (!journaled.ok()) return false;
  if (position.offset > journaled.value().size()) return false;
  replay_.clear();
  for (size_t i = position.offset; i < journaled.value().size(); ++i) {
    replay_.push_back(std::move(journaled.value()[i]));
  }
  seq_ = position.offset;
  return true;
}

Status TcpSource::CheckpointGuard() const {
  if (Replayable()) return Status::OK();
  return Status::FailedPrecondition(
      "socket source '" + name_ + "' is not replayable: connections carry no "
      "replay medium. Configure TcpSourceOptions::journal_dir to journal "
      "ingested records, or checkpointing must stay off for this job.");
}

StatusOr<int> TcpConnect(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  BRISK_RETURN_NOT_OK(MakeAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Status::Unavailable("connect to " + host + ":" +
                               std::to_string(port) + " failed: " +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

Status TcpSend(const std::string& host, uint16_t port, RecordCodec codec,
               const std::vector<std::string>& records) {
  BRISK_ASSIGN_OR_RETURN(const int fd, TcpConnect(host, port));
  std::vector<uint8_t> buf;
  for (const auto& r : records) AppendRecord(codec, r, &buf);
  size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n <= 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Unavailable("send to " + host + ":" +
                                 std::to_string(port) + " failed: " +
                                 std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace brisk::io
