// Record framing shared by every ingest/egress endpoint.
//
// One codec enum covers the file source, the socket source, the egress
// sink, and the socket replay journal, so a file written by ToFile can
// be replayed by FromFile and a journaled socket stream re-reads with
// the same parser that framed it off the wire:
//
//   kText    newline-delimited UTF-8 records (one line = one record);
//            decodes to a single-string-field tuple, the shape the
//            word_count parser already consumes.
//   kBinary  u32 little-endian length prefix + payload. Tuple payloads
//            ride the common/serde codec, so every Field alternative
//            and the origin timestamp round-trip exactly.
//
// The framing layer is deliberately incremental: NextRecord consumes
// from a byte window and reports kNeedMore on a partial frame, which is
// what both the mmap reader (slice may end mid-window) and the socket
// reader (TCP segments split records arbitrarily) need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"

namespace brisk::io {

enum class RecordCodec : uint8_t {
  kText = 0,
  kBinary = 1,
};

const char* RecordCodecName(RecordCodec codec);

/// Upper bound on one binary record. A length prefix beyond this is
/// treated as frame corruption (kError) rather than an allocation
/// request — the guard a listener needs against a garbage peer.
inline constexpr uint32_t kMaxRecordBytes = 64u << 20;

/// Appends one framed record to `out` (adds '\n' or the length prefix).
/// Text records must not contain '\n'; embedded newlines would be
/// record boundaries on the way back in.
void AppendRecord(RecordCodec codec, std::string_view record,
                  std::vector<uint8_t>* out);

enum class FrameResult {
  kRecord,    ///< one complete record extracted; *consumed advanced
  kNeedMore,  ///< partial frame at the end of the window; nothing consumed
  kError,     ///< unrecoverable framing corruption (oversized binary length)
};

/// Extracts the next record from data[*consumed, size). On kRecord,
/// `*record` views the payload (no copy — valid while `data` is) and
/// `*consumed` moves past the frame.
FrameResult NextRecord(RecordCodec codec, const uint8_t* data, size_t size,
                       size_t* consumed, std::string_view* record);

/// Decodes one record payload into a Tuple. Text records become a
/// single string field (origin timestamp left 0 for the caller to
/// stamp); binary records decode through common/serde.
StatusOr<Tuple> DecodeTupleRecord(RecordCodec codec, std::string_view record);

/// Encodes `t` as one framed record appended to `out` — the inverse of
/// NextRecord + DecodeTupleRecord. Text encoding renders fields
/// space-separated (ints/doubles formatted, strings verbatim); binary
/// encoding is the exact serde round-trip.
void EncodeTupleRecord(RecordCodec codec, const Tuple& t,
                       std::vector<uint8_t>* out);

/// Writes `records` to `path` framed by `codec` (corpus generation for
/// tests, benches, and examples). Overwrites an existing file.
Status WriteRecordFile(const std::string& path, RecordCodec codec,
                       const std::vector<std::string>& records);

/// Reads every record of a file written with `codec` framing — the
/// verification half of WriteRecordFile, also used to re-read egress
/// output. Fails on framing corruption or a truncated final frame.
StatusOr<std::vector<std::string>> ReadRecordFile(const std::string& path,
                                                  RecordCodec codec);

}  // namespace brisk::io
