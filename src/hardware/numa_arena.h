// Per-socket hugepage-backed memory arena.
//
// One NumaArena serves one *plan* socket. It reserves memory in big
// mmap chunks (MAP_HUGETLB when the host grants it, otherwise a
// transparent-hugepage madvise), binds them to the matching physical
// node via mbind on real multi-node hosts (first-touch handles the
// rest), and carves allocations with a bump pointer plus power-of-two
// size-class free lists — so channel rings torn down by a live
// migration are recycled by the next epoch's WireGraph instead of
// growing the reservation.
//
// The arena is plugged in through two interfaces:
//   - std::pmr::memory_resource: channel/SPSC ring slot storage
//     (allocated on the consumer's socket by the runtime);
//   - brisk::BatchArena: JumboTuple shells, installed thread-locally
//     on each pool worker so producers allocate socket-local shells.
//
// Thread safety: one mutex per arena. Allocation is not on the
// steady-state hot path — BatchPool recycling and ring-shell reuse
// mean shells are allocated at warm-up and recycled thereafter; rings
// are allocated at (re)wire time only.
//
// Lifetime rules: an arena never returns memory to the OS before
// destruction, so pointers into it stay valid for the runtime's whole
// life. The runtime owns its ArenaSet and declares it before tasks and
// channels, which makes the arenas the last thing destroyed — after
// every ring buffer and every shell that could point into them.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <memory_resource>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/batch_arena.h"
#include "hardware/topology.h"

namespace brisk::hw {

class NumaArena final : public std::pmr::memory_resource,
                        public brisk::BatchArena {
 public:
  /// `numa_node` < 0 skips binding (emulated sockets on a single-node
  /// host); `chunk_bytes` is the reservation granularity, rounded up
  /// per oversized request.
  NumaArena(int socket, int numa_node, size_t chunk_bytes);
  ~NumaArena() override;

  NumaArena(const NumaArena&) = delete;
  NumaArena& operator=(const NumaArena&) = delete;

  int socket() const { return socket_; }
  int numa_node() const { return node_; }

  /// True when at least one chunk got genuine MAP_HUGETLB backing.
  bool hugepage_backed() const;
  size_t bytes_reserved() const;
  /// Outstanding (not yet freed) bytes, size-class rounded.
  size_t bytes_in_use() const;

  // brisk::BatchArena (JumboTuple shells).
  void* AllocateShell(size_t bytes) override;
  void DeallocateShell(void* p, size_t bytes) override;

 protected:
  // std::pmr::memory_resource (ring storage).
  void* do_allocate(size_t bytes, size_t alignment) override;
  void do_deallocate(void* p, size_t bytes, size_t alignment) override;
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

 private:
  struct Chunk {
    void* base = nullptr;
    size_t len = 0;
    bool mmapped = false;  // munmap vs operator delete
  };

  void* Allocate(size_t bytes);
  void Deallocate(void* p, size_t bytes);
  bool MapChunk(size_t min_bytes);  // mu_ held

  const int socket_;
  const int node_;
  const size_t chunk_bytes_;

  mutable std::mutex mu_;
  std::vector<Chunk> chunks_;
  char* bump_ = nullptr;
  size_t bump_left_ = 0;
  /// Size-class free lists (class = pow2 >= kMinClassBytes).
  std::unordered_map<size_t, std::vector<void*>> free_;
  bool hugepages_ = false;
  size_t reserved_ = 0;
  size_t in_use_ = 0;
};

/// The runtime's arenas, one per plan socket, grown on demand as
/// migrations introduce new sockets (lifecycle-thread only; the
/// arenas themselves are thread-safe).
class ArenaSet {
 public:
  ArenaSet(HostTopology topology, size_t chunk_bytes);

  /// Negative sockets (unplaced instances) share socket 0's arena.
  NumaArena* ForSocket(int socket);

  const HostTopology& topology() const { return topo_; }
  int size() const { return static_cast<int>(arenas_.size()); }

 private:
  HostTopology topo_;
  size_t chunk_bytes_;
  std::vector<std::unique_ptr<NumaArena>> arenas_;
};

}  // namespace brisk::hw
