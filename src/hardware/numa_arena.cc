#include "hardware/numa_arena.h"

#include <algorithm>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace brisk::hw {

namespace {

/// Smallest size class: one cache line pair, so neighboring small
/// allocations from different threads do not share a line.
constexpr size_t kMinClassBytes = 128;

size_t SizeClass(size_t bytes) {
  size_t cls = kMinClassBytes;
  while (cls < bytes) cls <<= 1;
  return cls;
}

/// Best-effort MPOL_PREFERRED bind; raw syscall so the fallback build
/// needs no numaif.h. Failure is ignored — first-touch still lands
/// pages on the worker's node in the common case.
void PreferNode(void* base, size_t len, int node) {
#if defined(__linux__) && defined(__NR_mbind)
  constexpr int kMpolPreferred = 1;
  const int bits = static_cast<int>(8 * sizeof(unsigned long));
  if (node < 0 || node >= bits) return;
  unsigned long mask = 1UL << node;
  syscall(__NR_mbind, base, len, kMpolPreferred, &mask,
          static_cast<unsigned long>(bits), 0UL);
#else
  (void)base;
  (void)len;
  (void)node;
#endif
}

}  // namespace

NumaArena::NumaArena(int socket, int numa_node, size_t chunk_bytes)
    : socket_(socket),
      node_(numa_node),
      chunk_bytes_(std::max<size_t>(chunk_bytes, 64 * 1024)) {}

NumaArena::~NumaArena() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Chunk& c : chunks_) {
#if defined(__unix__) || defined(__APPLE__)
    if (c.mmapped) {
      munmap(c.base, c.len);
      continue;
    }
#endif
    ::operator delete(c.base, std::align_val_t{kMinClassBytes});
  }
  chunks_.clear();
}

bool NumaArena::hugepage_backed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hugepages_;
}

size_t NumaArena::bytes_reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

size_t NumaArena::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

bool NumaArena::MapChunk(size_t min_bytes) {
  size_t len = chunk_bytes_;
  while (len < min_bytes) len <<= 1;
  void* base = nullptr;
  bool mmapped = false;
#if defined(__unix__) || defined(__APPLE__)
#if defined(MAP_HUGETLB)
  base = mmap(nullptr, len, PROT_READ | PROT_WRITE,
              MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
  if (base != MAP_FAILED) {
    hugepages_ = true;
    mmapped = true;
  } else {
    base = nullptr;
  }
#endif
  if (base == nullptr) {
    base = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base != MAP_FAILED) {
      mmapped = true;
#if defined(MADV_HUGEPAGE)
      madvise(base, len, MADV_HUGEPAGE);  // THP as the fallback backing
#endif
    } else {
      base = nullptr;
    }
  }
#endif
  if (base == nullptr) {
    // mmap unavailable/exhausted: plain heap chunk, still arena-pooled.
    base = ::operator new(len, std::align_val_t{kMinClassBytes},
                          std::nothrow);
    if (base == nullptr) return false;
  }
  if (mmapped) PreferNode(base, len, node_);
  chunks_.push_back(Chunk{base, len, mmapped});
  bump_ = static_cast<char*>(base);
  bump_left_ = len;
  reserved_ += len;
  return true;
}

void* NumaArena::Allocate(size_t bytes) {
  const size_t cls = SizeClass(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = free_.find(cls);
  if (it != free_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    in_use_ += cls;
    return p;
  }
  if (bump_left_ < cls && !MapChunk(cls)) throw std::bad_alloc();
  void* p = bump_;
  bump_ += cls;
  bump_left_ -= cls;
  in_use_ += cls;
  return p;
}

void NumaArena::Deallocate(void* p, size_t bytes) {
  if (p == nullptr) return;
  const size_t cls = SizeClass(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  free_[cls].push_back(p);
  in_use_ -= std::min(in_use_, cls);
}

void* NumaArena::AllocateShell(size_t bytes) { return Allocate(bytes); }

void NumaArena::DeallocateShell(void* p, size_t bytes) {
  Deallocate(p, bytes);
}

void* NumaArena::do_allocate(size_t bytes, size_t alignment) {
  if (alignment > alignof(std::max_align_t)) {
    // Over-aligned rings are not a case the engine produces; defer to
    // the global allocator rather than complicating the size classes.
    return ::operator new(bytes, std::align_val_t{alignment});
  }
  return Allocate(bytes);
}

void NumaArena::do_deallocate(void* p, size_t bytes, size_t alignment) {
  if (alignment > alignof(std::max_align_t)) {
    ::operator delete(p, std::align_val_t{alignment});
    return;
  }
  Deallocate(p, bytes);
}

ArenaSet::ArenaSet(HostTopology topology, size_t chunk_bytes)
    : topo_(std::move(topology)), chunk_bytes_(chunk_bytes) {}

NumaArena* ArenaSet::ForSocket(int socket) {
  const size_t index = static_cast<size_t>(std::max(0, socket));
  while (arenas_.size() <= index) {
    const int plan_socket = static_cast<int>(arenas_.size());
    const int node = topo_.real ? plan_socket % topo_.nodes : -1;
    arenas_.push_back(
        std::make_unique<NumaArena>(plan_socket, node, chunk_bytes_));
  }
  return arenas_[index].get();
}

}  // namespace brisk::hw
