#include "hardware/machine_spec.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace brisk::hw {

MachineSpec MachineSpec::Symmetric(int sockets, int cores_per_socket,
                                   double core_ghz, double local_latency_ns,
                                   double remote_latency_ns,
                                   double local_bw_gbps,
                                   double remote_bw_gbps) {
  BRISK_CHECK(sockets > 0 && cores_per_socket > 0);
  MachineSpec m;
  m.name_ = "symmetric-" + std::to_string(sockets) + "s";
  m.num_sockets_ = sockets;
  m.cores_per_socket_ = cores_per_socket;
  m.core_ghz_ = core_ghz;
  m.local_bw_gbps_ = local_bw_gbps;
  m.latency_ns_.assign(static_cast<size_t>(sockets) * sockets, 0.0);
  m.bw_gbps_.assign(static_cast<size_t>(sockets) * sockets, 0.0);
  m.tray_.assign(sockets, 0);
  for (int i = 0; i < sockets; ++i) {
    for (int j = 0; j < sockets; ++j) {
      const size_t idx = static_cast<size_t>(i) * sockets + j;
      m.latency_ns_[idx] = (i == j) ? local_latency_ns : remote_latency_ns;
      m.bw_gbps_[idx] = (i == j) ? local_bw_gbps : remote_bw_gbps;
    }
  }
  return m;
}

namespace {

/// Fills `m`'s matrices for a two-tray 8-socket machine.
void FillTwoTray(std::vector<double>* lat, std::vector<double>* bw,
                 std::vector<int>* tray, double local_lat, double hop1_lat,
                 double max_lat, double local_bw, double hop1_bw,
                 double max_bw) {
  constexpr int kSockets = 8;
  lat->assign(kSockets * kSockets, 0.0);
  bw->assign(kSockets * kSockets, 0.0);
  tray->assign(kSockets, 0);
  for (int s = 0; s < kSockets; ++s) (*tray)[s] = s / 4;
  for (int i = 0; i < kSockets; ++i) {
    for (int j = 0; j < kSockets; ++j) {
      const size_t idx = static_cast<size_t>(i) * kSockets + j;
      if (i == j) {
        (*lat)[idx] = local_lat;
        (*bw)[idx] = local_bw;
        continue;
      }
      const bool same_tray = (*tray)[i] == (*tray)[j];
      // Deterministic per-pair spread so distinct pairs measure
      // slightly differently, as on real hardware; preserves ordering.
      const double skew = 1.0 + 0.002 * std::abs(i - j);
      (*lat)[idx] = (same_tray ? hop1_lat : max_lat) * skew;
      (*bw)[idx] = (same_tray ? hop1_bw : max_bw) / skew;
    }
  }
}

}  // namespace

MachineSpec MachineSpec::ServerA() {
  MachineSpec m;
  m.name_ = "ServerA-KunLun";
  m.num_sockets_ = 8;
  m.cores_per_socket_ = 18;
  m.core_ghz_ = 1.2;  // power-save governor (Table 2)
  m.local_bw_gbps_ = 54.3;
  FillTwoTray(&m.latency_ns_, &m.bw_gbps_, &m.tray_,
              /*local_lat=*/50.0, /*hop1_lat=*/307.7, /*max_lat=*/548.0,
              /*local_bw=*/54.3, /*hop1_bw=*/13.2, /*max_bw=*/5.8);
  return m;
}

MachineSpec MachineSpec::ServerB() {
  MachineSpec m;
  m.name_ = "ServerB-DL980";
  m.num_sockets_ = 8;
  m.cores_per_socket_ = 8;
  m.core_ghz_ = 2.27;  // performance governor (Table 2)
  m.local_bw_gbps_ = 24.2;
  // The XNC keeps remote bandwidth nearly flat across distance
  // (10.6 vs 10.8 GB/s in Table 2).
  FillTwoTray(&m.latency_ns_, &m.bw_gbps_, &m.tray_,
              /*local_lat=*/50.0, /*hop1_lat=*/185.2, /*max_lat=*/349.6,
              /*local_bw=*/24.2, /*hop1_bw=*/10.6, /*max_bw=*/10.8);
  return m;
}

StatusOr<MachineSpec> MachineSpec::Truncated(int sockets) const {
  if (sockets <= 0 || sockets > num_sockets_) {
    return Status::InvalidArgument(
        "Truncated: sockets must be in [1, " +
        std::to_string(num_sockets_) + "], got " + std::to_string(sockets));
  }
  MachineSpec m;
  m.name_ = name_ + "-" + std::to_string(sockets) + "s";
  m.num_sockets_ = sockets;
  m.cores_per_socket_ = cores_per_socket_;
  m.core_ghz_ = core_ghz_;
  m.cache_line_bytes_ = cache_line_bytes_;
  m.local_bw_gbps_ = local_bw_gbps_;
  m.latency_ns_.resize(static_cast<size_t>(sockets) * sockets);
  m.bw_gbps_.resize(static_cast<size_t>(sockets) * sockets);
  m.tray_.resize(sockets);
  for (int i = 0; i < sockets; ++i) {
    m.tray_[i] = tray_[i];
    for (int j = 0; j < sockets; ++j) {
      m.latency_ns_[static_cast<size_t>(i) * sockets + j] = LatencyNs(i, j);
      m.bw_gbps_[static_cast<size_t>(i) * sockets + j] =
          ChannelBandwidthGbps(i, j);
    }
  }
  return m;
}

int MachineSpec::Hops(int from, int to) const {
  if (from == to) return 0;
  if (tray_[from] == tray_[to]) return 1;
  return 2;
}

double MachineSpec::FetchCostNs(int from, int to, double tuple_bytes) const {
  if (from == to) return 0.0;  // covered by T_e when collocated
  const double lines = std::ceil(tuple_bytes / cache_line_bytes_);
  return lines * LatencyNs(from, to);
}

std::string MachineSpec::ToString() const {
  std::ostringstream os;
  os << name_ << ": " << num_sockets_ << " sockets x " << cores_per_socket_
     << " cores @ " << core_ghz_ << " GHz\n";
  os << "  local B/W " << local_bw_gbps_ << " GB/s, cache line "
     << cache_line_bytes_ << " B\n";
  os << "  latency ns (row=from):\n";
  for (int i = 0; i < num_sockets_; ++i) {
    os << "   ";
    for (int j = 0; j < num_sockets_; ++j) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), " %7.1f", LatencyNs(i, j));
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace brisk::hw
