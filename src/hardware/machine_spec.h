// Machine specifications (Table 1, machine-specific rows; Table 2 data).
//
// RLAS consumes the hardware only through this abstraction: per-socket
// compute capacity C, local DRAM bandwidth B, the remote-channel
// bandwidth matrix Q(i,j), the worst-case latency matrix L(i,j), and
// the cache line size S. The two evaluation servers from the paper are
// provided as factories with the published Table 2 numbers, so the
// optimizer solves the *identical* problem instance the paper did even
// though this repo runs on single-socket hardware (see DESIGN.md §1).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace brisk::hw {

/// Description of one NUMA machine.
class MachineSpec {
 public:
  MachineSpec() = default;

  /// HUAWEI KunLun "Server A": glue-less 8-socket, 18 cores/socket at
  /// 1.2 GHz (power-save governor), two CPU trays connected by vendor
  /// interconnect (Fig. 1a). Latency/bandwidth from Table 2.
  static MachineSpec ServerA();

  /// HP ProLiant DL980 G7 "Server B": XNC glue-assisted 8-socket,
  /// 8 cores/socket at 2.27 GHz, two trays behind node controllers
  /// (Fig. 1b). Remote bandwidth is near-uniform across distance.
  static MachineSpec ServerB();

  /// Symmetric machine for tests: every remote pair has the same
  /// latency/bandwidth.
  static MachineSpec Symmetric(int sockets, int cores_per_socket,
                               double core_ghz, double local_latency_ns,
                               double remote_latency_ns,
                               double local_bw_gbps, double remote_bw_gbps);

  /// Same machine restricted to its first `sockets` sockets — used for
  /// the scalability sweeps (Fig. 9) that enable 1/2/4/8 sockets.
  StatusOr<MachineSpec> Truncated(int sockets) const;

  const std::string& name() const { return name_; }
  int num_sockets() const { return num_sockets_; }
  int cores_per_socket() const { return cores_per_socket_; }
  int total_cores() const { return num_sockets_ * cores_per_socket_; }
  double core_ghz() const { return core_ghz_; }

  /// Cache line size S in bytes (Formula 2 divisor).
  double cache_line_bytes() const { return cache_line_bytes_; }

  /// Maximum attainable per-socket CPU time, expressed in nanoseconds of
  /// core time per second: cores_per_socket × 1e9. (Eq. 3's C with T in
  /// ns/tuple.)
  double cpu_ns_per_sec() const { return cores_per_socket_ * 1e9; }

  /// Maximum attainable local DRAM bandwidth B in bytes/sec (Eq. 4).
  double local_bandwidth_bps() const { return local_bw_gbps_ * 1e9; }
  double local_bandwidth_gbps() const { return local_bw_gbps_; }

  /// Worst-case memory access latency L(i,j) in ns. L(i,i) is the local
  /// (LLC) latency.
  double LatencyNs(int from, int to) const {
    return latency_ns_[static_cast<size_t>(from) * num_sockets_ + to];
  }

  /// Maximum attainable remote channel bandwidth Q(i,j) in bytes/sec.
  /// Q(i,i) is the local bandwidth B.
  double ChannelBandwidthBps(int from, int to) const {
    return bw_gbps_[static_cast<size_t>(from) * num_sockets_ + to] * 1e9;
  }
  double ChannelBandwidthGbps(int from, int to) const {
    return bw_gbps_[static_cast<size_t>(from) * num_sockets_ + to];
  }

  /// Tray (NUMA island) hosting socket s — drives the non-linear
  /// inter-tray latency jump both servers exhibit.
  int TrayOf(int socket) const { return tray_[socket]; }

  /// Interconnect hops between two sockets (0 = same socket).
  int Hops(int from, int to) const;

  /// Per-tuple remote fetch cost in ns (Formula 2):
  ///   T_f = 0 when from == to, else ceil(N/S) * L(from, to).
  double FetchCostNs(int from, int to, double tuple_bytes) const;

  /// Converts profiled CPU cycles to nanoseconds on this machine's cores.
  double CyclesToNs(double cycles) const { return cycles / core_ghz_; }

  /// Human-readable multi-line summary (Table 2 style).
  std::string ToString() const;

 private:
  std::string name_;
  int num_sockets_ = 0;
  int cores_per_socket_ = 0;
  double core_ghz_ = 0.0;
  double cache_line_bytes_ = 64.0;
  double local_bw_gbps_ = 0.0;
  std::vector<double> latency_ns_;  // num_sockets^2, row-major
  std::vector<double> bw_gbps_;     // num_sockets^2, row-major
  std::vector<int> tray_;           // tray id per socket
};

}  // namespace brisk::hw
