// Real-hardware NUMA topology detection.
//
// Everything upstream of this file reasons about *plan* sockets — the
// virtual machine the RLAS optimizer placed operators on. This module
// answers the other question: what does the host actually look like?
// Detection prefers libnuma when the build found it (BRISK_WITH_NUMA
// and numa.h present), falls back to parsing
// /sys/devices/system/node/node*/cpulist, and degrades to a flat
// single-node view of std::thread::hardware_concurrency() everywhere
// else — so plans execute on real multi-socket boxes with genuine
// node binding, and identically (minus the binding) on laptops and CI.
#pragma once

#include <string>
#include <vector>

namespace brisk::hw {

struct HostTopology {
  /// Memory nodes; >= 1. node_cpus[n] lists the logical CPUs of node n
  /// (possibly empty for a memory-only node).
  int nodes = 1;
  std::vector<std::vector<int>> node_cpus;

  /// True only when more than one memory node was actually detected —
  /// the gate for mbind placement and node-aware pinning.
  bool real = false;

  /// Where the answer came from: "libnuma", "sysfs", or "flat".
  std::string source = "flat";

  int total_cpus() const {
    size_t n = 0;
    for (const auto& cpus : node_cpus) n += cpus.size();
    return n > 0 ? static_cast<int>(n) : 1;
  }

  /// CPUs of `node` (modulo the node count, so plan sockets beyond the
  /// host map round-robin); empty only for a CPU-less node.
  const std::vector<int>& CpusOfNode(int node) const {
    static const std::vector<int> kNone;
    if (node_cpus.empty()) return kNone;
    return node_cpus[static_cast<size_t>(node) % node_cpus.size()];
  }
};

/// Parses the kernel's cpulist format ("0-3,8,10-11"); malformed
/// pieces are skipped. Exposed for unit tests.
std::vector<int> ParseCpuList(const std::string& text);

/// Probes once per call (callers cache the result; the runtime keeps
/// it inside its ArenaSet).
HostTopology DetectHostTopology();

}  // namespace brisk::hw
