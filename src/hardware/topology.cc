#include "hardware/topology.h"

#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <thread>

#if defined(BRISK_HAVE_NUMA)
#include <numa.h>
#endif

namespace brisk::hw {

namespace {

HostTopology FlatTopology() {
  HostTopology topo;
  topo.nodes = 1;
  topo.real = false;
  topo.source = "flat";
  const unsigned hc = std::thread::hardware_concurrency();
  std::vector<int> cpus(hc > 0 ? hc : 1);
  std::iota(cpus.begin(), cpus.end(), 0);
  topo.node_cpus.push_back(std::move(cpus));
  return topo;
}

#if defined(BRISK_HAVE_NUMA)
bool DetectViaLibnuma(HostTopology* topo) {
  if (numa_available() < 0) return false;
  const int max_node = numa_max_node();
  if (max_node < 0) return false;
  struct bitmask* mask = numa_allocate_cpumask();
  if (mask == nullptr) return false;
  for (int node = 0; node <= max_node; ++node) {
    std::vector<int> cpus;
    if (numa_node_to_cpus(node, mask) == 0) {
      for (unsigned cpu = 0; cpu < mask->size; ++cpu) {
        if (numa_bitmask_isbitset(mask, cpu)) {
          cpus.push_back(static_cast<int>(cpu));
        }
      }
    }
    topo->node_cpus.push_back(std::move(cpus));
  }
  numa_free_cpumask(mask);
  topo->nodes = max_node + 1;
  topo->real = topo->nodes > 1;
  topo->source = "libnuma";
  return true;
}
#endif

bool DetectViaSysfs(HostTopology* topo) {
  // Nodes are numbered densely from 0; stop at the first gap. The 4096
  // bound is the kernel's own MAX_NUMNODES ceiling.
  for (int node = 0; node < 4096; ++node) {
    std::ifstream in("/sys/devices/system/node/node" +
                     std::to_string(node) + "/cpulist");
    if (!in.good()) break;
    std::string line;
    std::getline(in, line);
    topo->node_cpus.push_back(ParseCpuList(line));
  }
  if (topo->node_cpus.empty()) return false;
  topo->nodes = static_cast<int>(topo->node_cpus.size());
  topo->real = topo->nodes > 1;
  topo->source = "sysfs";
  return true;
}

}  // namespace

std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    if (piece.empty()) continue;
    char* end = nullptr;
    const long lo = std::strtol(piece.c_str(), &end, 10);
    if (end == piece.c_str() || lo < 0) continue;  // malformed piece
    long hi = lo;
    if (*end == '-') {
      const char* hi_begin = end + 1;
      hi = std::strtol(hi_begin, &end, 10);
      if (end == hi_begin || hi < lo) continue;
    }
    for (long cpu = lo; cpu <= hi; ++cpu) {
      cpus.push_back(static_cast<int>(cpu));
    }
  }
  return cpus;
}

HostTopology DetectHostTopology() {
  HostTopology topo;
#if defined(BRISK_HAVE_NUMA)
  if (DetectViaLibnuma(&topo)) return topo;
  topo = HostTopology();
#endif
  if (DetectViaSysfs(&topo)) return topo;
  return FlatTopology();
}

}  // namespace brisk::hw
