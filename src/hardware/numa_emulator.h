// NUMA penalty emulation for the real multithreaded engine.
//
// This repo runs on single-socket hardware, so genuine remote-memory
// latencies are unavailable. The emulator charges Formula 2's per-tuple
// fetch cost as a calibrated busy-wait: when a consumer placed on
// (virtual) socket j pops a batch produced on socket i != j, it spins
// for ceil(N/S) * L(i,j) ns before processing each tuple — the same
// stall pattern a dependent remote cache-line walk produces. DESIGN.md
// §1 documents this substitution.
#pragma once

#include <chrono>
#include <cstdint>

#include "hardware/machine_spec.h"

namespace brisk::hw {

/// Spins the calling thread for approximately `ns` nanoseconds.
/// Accurate to ~tens of ns for the sub-microsecond stalls we emulate;
/// intentionally burns cycles (a remote fetch stalls the core too).
void SpinForNs(int64_t ns);

/// Per-edge NUMA fetch-delay injector.
class NumaEmulator {
 public:
  explicit NumaEmulator(const MachineSpec& machine, bool enabled = true)
      : machine_(machine), enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Charges the remote-fetch stall for one tuple of `tuple_bytes`
  /// crossing from socket `from` to socket `to`. No-op when collocated
  /// or disabled.
  void ChargeFetch(int from, int to, double tuple_bytes) const {
    if (!enabled_ || from == to || from < 0 || to < 0) return;
    SpinForNs(static_cast<int64_t>(
        machine_.FetchCostNs(from, to, tuple_bytes)));
  }

  const MachineSpec& machine() const { return machine_; }

 private:
  MachineSpec machine_;
  bool enabled_;
};

}  // namespace brisk::hw
