#include "hardware/numa_emulator.h"

namespace brisk::hw {

void SpinForNs(int64_t ns) {
  if (ns <= 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  // Busy spin: the emulated stall must consume core time the way a
  // dependent remote load does; yielding or sleeping would model an
  // entirely different (blocking) cost.
  while (std::chrono::steady_clock::now() < deadline) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace brisk::hw
