// Tests for the operator profiling harness (§3.1 methodology).
#include "profiler/profiler.h"

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "apps/word_count.h"

namespace brisk::profiler {
namespace {

TEST(ProfilerTest, ProfilesEveryWordCountOperator) {
  auto app = apps::MakeApp(apps::AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  ProfilerConfig cfg;
  cfg.samples = 2000;
  cfg.warmup_samples = 200;
  auto result = ProfileApp(app->topology(), cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->measurements.size(), 5u);
  for (const auto& op : app->topology().ops()) {
    ASSERT_TRUE(result->profiles.Has(op.name)) << op.name;
    const auto& m = result->measurements.at(op.name);
    EXPECT_GT(m.tuples_processed, 0u) << op.name;
    EXPECT_GT(m.te_cycles.count(), 0u) << op.name;
  }
}

TEST(ProfilerTest, MeasuredSelectivityMatchesSemantics) {
  auto app = apps::MakeApp(apps::AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  ProfilerConfig cfg;
  cfg.samples = 3000;
  auto result = ProfileApp(app->topology(), cfg);
  ASSERT_TRUE(result.ok());
  // Splitter emits ~10 words per sentence (§2.2).
  EXPECT_NEAR(result->measurements.at("splitter").selectivity[0], 10.0,
              0.2);
  // Parser and counter are selectivity one.
  EXPECT_NEAR(result->measurements.at("parser").selectivity[0], 1.0, 0.01);
  EXPECT_NEAR(result->measurements.at("counter").selectivity[0], 1.0, 0.01);
  // Sink emits nothing.
  EXPECT_DOUBLE_EQ(result->measurements.at("sink").selectivity[0], 0.0);
}

TEST(ProfilerTest, HeavierOperatorsMeasureHigherTe) {
  auto app = apps::MakeApp(apps::AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  ProfilerConfig cfg;
  cfg.samples = 4000;
  auto result = ProfileApp(app->topology(), cfg);
  ASSERT_TRUE(result.ok());
  // The splitter (substr per word) must cost more than the sink.
  EXPECT_GT(result->profiles.Get("splitter")->te_cycles,
            result->profiles.Get("sink")->te_cycles);
}

TEST(ProfilerTest, OutputBytesReflectTupleSizes) {
  auto app = apps::MakeApp(apps::AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  ProfilerConfig cfg;
  cfg.samples = 1500;
  auto result = ProfileApp(app->topology(), cfg);
  ASSERT_TRUE(result.ok());
  // Sentences are much bigger than words.
  EXPECT_GT(result->measurements.at("spout").output_bytes[0],
            result->measurements.at("splitter").output_bytes[0]);
}

TEST(ProfilerTest, PercentileKnobSelectsFromDistribution) {
  auto app = apps::MakeApp(apps::AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  ProfilerConfig low, high;
  low.samples = high.samples = 1500;
  low.te_percentile = 0.10;
  high.te_percentile = 0.95;
  auto r_low = ProfileApp(app->topology(), low);
  auto r_high = ProfileApp(app->topology(), high);
  ASSERT_TRUE(r_low.ok() && r_high.ok());
  // A higher percentile is a more pessimistic (larger) estimate (§3.1).
  EXPECT_LE(r_low->profiles.Get("splitter")->te_cycles,
            r_high->profiles.Get("splitter")->te_cycles);
}

TEST(ProfilerTest, RejectsBadConfig) {
  auto app = apps::MakeApp(apps::AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  ProfilerConfig cfg;
  cfg.samples = 0;
  EXPECT_FALSE(ProfileApp(app->topology(), cfg).ok());
  cfg.samples = 100;
  cfg.reference_ghz = 0.0;
  EXPECT_FALSE(ProfileApp(app->topology(), cfg).ok());
}

TEST(ProfilerTest, WorksOnAllFourApps) {
  for (const auto id : apps::kAllApps) {
    auto app = apps::MakeApp(id);
    ASSERT_TRUE(app.ok());
    ProfilerConfig cfg;
    cfg.samples = 1200;
    cfg.warmup_samples = 100;
    auto result = ProfileApp(app->topology(), cfg);
    ASSERT_TRUE(result.ok())
        << apps::AppName(id) << ": " << result.status();
    // Every reachable operator got a profile entry.
    EXPECT_EQ(result->profiles.size(),
              static_cast<size_t>(app->topology().num_operators()))
        << apps::AppName(id);
  }
}

}  // namespace
}  // namespace brisk::profiler
