// Tests for tuple representation, hashing, and the legacy-mode codec.
#include <gtest/gtest.h>

#include "common/serde.h"
#include "common/tuple.h"

namespace brisk {
namespace {

Tuple MixedTuple() {
  Tuple t;
  t.fields.emplace_back(int64_t{-77});
  t.fields.emplace_back(3.25);
  t.fields.emplace_back(std::string("hello world"));
  t.origin_ts_ns = 123456789;
  t.stream_id = 2;
  return t;
}

TEST(TupleTest, AccessorsReturnTypedFields) {
  const Tuple t = MixedTuple();
  EXPECT_EQ(t.GetInt(0), -77);
  EXPECT_DOUBLE_EQ(t.GetDouble(1), 3.25);
  EXPECT_EQ(t.GetString(2), "hello world");
}

TEST(TupleTest, SizeBytesCountsFieldsAndMetadata) {
  Tuple t;
  EXPECT_EQ(t.SizeBytes(), sizeof(int64_t) + sizeof(uint16_t));
  t.fields.emplace_back(int64_t{1});
  const size_t with_int = t.SizeBytes();
  EXPECT_EQ(with_int, sizeof(int64_t) * 2 + sizeof(uint16_t));
  t.fields.emplace_back(std::string("abcd"));
  EXPECT_EQ(t.SizeBytes(), with_int + 4 + sizeof(uint32_t));
}

TEST(TupleTest, FieldSizeBytesPerType) {
  EXPECT_EQ(FieldSizeBytes(Field(int64_t{1})), 8u);
  EXPECT_EQ(FieldSizeBytes(Field(1.0)), 8u);
  EXPECT_EQ(FieldSizeBytes(Field(std::string("abc"))), 3u + 4u);
}

TEST(FieldTest, SmallStringsStayInline) {
  // Strings up to the inline cap live inside the 32-byte Field; the
  // whole word_count/fraud key space must qualify.
  const std::string at_cap(Field::kInlineStringCap, 'w');
  Field f(at_cap);
  EXPECT_TRUE(f.is_string());
  EXPECT_EQ(f.AsString(), at_cap);
  // The view points into the field object itself, not the heap.
  const auto* obj = reinterpret_cast<const char*>(&f);
  EXPECT_GE(f.AsString().data(), obj);
  EXPECT_LT(f.AsString().data(), obj + sizeof(Field));
}

TEST(FieldTest, LongStringsSpillAndRoundTrip) {
  const std::string sentence(Field::kInlineStringCap * 4 + 1, 's');
  Field f(sentence);
  EXPECT_EQ(f.AsString(), sentence);
  Field copy(f);
  EXPECT_EQ(copy.AsString(), sentence);
  // Deep copy: mutating the original via reassignment leaves the copy.
  f = Field(int64_t{1});
  EXPECT_EQ(copy.AsString(), sentence);
  // Move hands the block over and leaves the source an empty string.
  const char* block = copy.AsString().data();
  Field moved(std::move(copy));
  EXPECT_EQ(moved.AsString().data(), block);
  EXPECT_EQ(moved.AsString(), sentence);
  EXPECT_TRUE(copy.is_string());
  EXPECT_TRUE(copy.AsString().empty());
}

TEST(FieldTest, VariantCompatibleIndexOrder) {
  EXPECT_EQ(Field(int64_t{3}).index(), 0u);
  EXPECT_EQ(Field(3.0).index(), 1u);
  EXPECT_EQ(Field("three").index(), 2u);
  EXPECT_EQ(Field().index(), 0u);  // default is int64 0, like the variant
  EXPECT_EQ(Field().AsInt(), 0);
}

TEST(TupleTest, FieldsStayInlineUpToFourAndSpillBeyond) {
  Tuple t;
  for (int i = 0; i < 4; ++i) t.fields.emplace_back(int64_t{i});
  EXPECT_FALSE(t.fields.on_heap());
  t.fields.emplace_back(int64_t{4});  // LR position-report arity
  EXPECT_TRUE(t.fields.on_heap());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(t.GetInt(i), i);
}

TEST(TupleTest, MovingATupleMovesFieldsWithoutCopying) {
  Tuple t;
  t.fields.emplace_back(std::string(100, 'z'));  // spilled string
  const char* block = t.fields[0].AsString().data();
  Tuple m = std::move(t);
  EXPECT_EQ(m.fields[0].AsString().data(), block);  // no reallocation
  EXPECT_EQ(m.fields[0].AsString().size(), 100u);
}

TEST(TupleTest, SizeBytesIsLayoutIndependent) {
  // The model's N must not change with the in-memory representation:
  // an inline and a spilled string of the same length, and inline vs
  // spilled field storage, all report identical logical sizes.
  const std::string short_key(10, 'k');
  EXPECT_EQ(FieldSizeBytes(Field(short_key)), 10u + sizeof(uint32_t));
  Tuple wide;  // 5 fields: spilled field storage
  for (int i = 0; i < 5; ++i) wide.fields.emplace_back(int64_t{i});
  EXPECT_EQ(wide.SizeBytes(),
            sizeof(int64_t) + sizeof(uint16_t) + 5 * sizeof(int64_t));
}

TEST(TupleTest, HashFieldStableAndTypeSensitive) {
  EXPECT_EQ(HashField(Field(std::string("word"))),
            HashField(Field(std::string("word"))));
  EXPECT_NE(HashField(Field(std::string("word"))),
            HashField(Field(std::string("work"))));
  EXPECT_EQ(HashField(Field(int64_t{5})), HashField(Field(int64_t{5})));
  EXPECT_NE(HashField(Field(int64_t{5})), HashField(Field(int64_t{6})));
}

TEST(SerdeTest, RoundTripsMixedTuple) {
  const Tuple t = MixedTuple();
  std::vector<uint8_t> buf;
  SerializeTuple(t, &buf);
  size_t off = 0;
  auto decoded = DeserializeTuple(buf, &off);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(decoded->origin_ts_ns, t.origin_ts_ns);
  EXPECT_EQ(decoded->stream_id, t.stream_id);
  ASSERT_EQ(decoded->fields.size(), t.fields.size());
  EXPECT_EQ(decoded->GetInt(0), -77);
  EXPECT_DOUBLE_EQ(decoded->GetDouble(1), 3.25);
  EXPECT_EQ(decoded->GetString(2), "hello world");
}

TEST(SerdeTest, RoundTripsEmptyTuple) {
  Tuple t;
  std::vector<uint8_t> buf;
  SerializeTuple(t, &buf);
  size_t off = 0;
  auto decoded = DeserializeTuple(buf, &off);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->fields.empty());
}

TEST(SerdeTest, BatchRoundTripPreservesOrder) {
  std::vector<Tuple> batch;
  for (int i = 0; i < 50; ++i) {
    Tuple t;
    t.fields.emplace_back(int64_t{i});
    t.fields.emplace_back(std::string(i, 'x'));
    batch.push_back(std::move(t));
  }
  std::vector<uint8_t> buf;
  SerializeBatch(batch, &buf);
  auto decoded = DeserializeBatch(buf, batch.size());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), batch.size());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ((*decoded)[i].GetInt(0), i);
    EXPECT_EQ((*decoded)[i].GetString(1).size(), static_cast<size_t>(i));
  }
}

TEST(SerdeTest, TruncatedBufferFailsCleanly) {
  const Tuple t = MixedTuple();
  std::vector<uint8_t> buf;
  SerializeTuple(t, &buf);
  for (const size_t cut : {size_t{0}, size_t{3}, buf.size() / 2,
                           buf.size() - 1}) {
    std::vector<uint8_t> truncated(buf.begin(), buf.begin() + cut);
    size_t off = 0;
    auto decoded = DeserializeTuple(truncated, &off);
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(SerdeTest, CorruptFieldTagRejected) {
  Tuple t;
  t.fields.emplace_back(int64_t{1});
  std::vector<uint8_t> buf;
  SerializeTuple(t, &buf);
  // Field tag lives right after the fixed header.
  const size_t tag_offset =
      sizeof(int64_t) + sizeof(uint16_t) + sizeof(uint32_t);
  buf[tag_offset] = 0x7F;
  size_t off = 0;
  auto decoded = DeserializeTuple(buf, &off);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
}

TEST(SerdeTest, DeserializeBatchCountMismatchFails) {
  std::vector<Tuple> batch(2);
  std::vector<uint8_t> buf;
  SerializeBatch(batch, &buf);
  EXPECT_TRUE(DeserializeBatch(buf, 2).ok());
  EXPECT_FALSE(DeserializeBatch(buf, 3).ok());
}

TEST(JumboTupleTest, SizeAndEmpty) {
  JumboTuple j;
  EXPECT_TRUE(j.empty());
  j.tuples.emplace_back();
  EXPECT_EQ(j.size(), 1u);
  EXPECT_FALSE(j.empty());
}

}  // namespace
}  // namespace brisk
