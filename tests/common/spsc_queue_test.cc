// Unit + concurrency tests for the SPSC ring buffer.
#include "common/spsc_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

namespace brisk {
namespace {

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<int> q(8);
  int out = 0;
  EXPECT_FALSE(q.TryPop(&out));
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(SpscQueueTest, FillsToCapacityThenRejects) {
  SpscQueue<int> q(4);  // rounded up to >= 4 usable slots
  size_t pushed = 0;
  while (q.TryPush(static_cast<int>(pushed))) ++pushed;
  EXPECT_GE(pushed, 4u);
  EXPECT_EQ(q.SizeApprox(), pushed);
  // Popping one frees exactly one slot.
  int out;
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.TryPush(99));
  EXPECT_FALSE(q.TryPush(100));
}

TEST(SpscQueueTest, FailedPushDoesNotConsumeValue) {
  // Regression test: back-pressure retry loops must be able to retry
  // the same object (a by-value TryPush would empty it on failure).
  SpscQueue<std::unique_ptr<int>> q(2);
  while (q.TryPush(std::make_unique<int>(7))) {
  }
  auto keep = std::make_unique<int>(42);
  EXPECT_FALSE(q.TryPush(std::move(keep)));
  ASSERT_NE(keep, nullptr);  // still ours after the failed push
  EXPECT_EQ(*keep, 42);
  std::unique_ptr<int> out;
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_TRUE(q.TryPush(std::move(keep)));
  EXPECT_EQ(keep, nullptr);  // consumed on success
}

TEST(SpscQueueTest, FifoOrderPreserved) {
  SpscQueue<int> q(128);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.TryPush(int(i)));
  for (int i = 0; i < 100; ++i) {
    int out;
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscQueueTest, MoveOnlyElements) {
  SpscQueue<std::unique_ptr<int>> q(8);
  EXPECT_TRUE(q.TryPush(std::make_unique<int>(5)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(q.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 5);
}

TEST(SpscQueueTest, MoveOnlyElementsSurviveIndexWraparound) {
  // Regression test for the ring-index arithmetic with move-only
  // payloads (the engine's Envelope / recycled JumboTuplePtr case):
  // cycle several times the queue capacity so head/tail wrap, and
  // check nothing is lost, duplicated, or reordered.
  SpscQueue<std::unique_ptr<int>> q(4);
  const size_t cap = q.capacity();
  int produced = 0;
  int consumed = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    while (q.TryPush(std::make_unique<int>(produced))) ++produced;
    EXPECT_EQ(q.SizeApprox(), cap);  // full at every cycle
    std::unique_ptr<int> out;
    while (q.TryPop(&out)) {
      ASSERT_NE(out, nullptr);
      EXPECT_EQ(*out, consumed);  // FIFO across wraparounds
      ++consumed;
    }
    EXPECT_TRUE(q.EmptyApprox());
  }
  EXPECT_EQ(produced, consumed);
  EXPECT_GT(produced, static_cast<int>(cap) * 4);  // really wrapped
}

TEST(SpscQueueTest, MoveOnlyFullAndEmptyBoundaries) {
  SpscQueue<std::unique_ptr<int>> q(2);
  // Empty boundary: TryPop must fail and leave `out` untouched.
  auto sentinel = std::make_unique<int>(-1);
  EXPECT_FALSE(q.TryPop(&sentinel));
  ASSERT_NE(sentinel, nullptr);
  EXPECT_EQ(*sentinel, -1);
  // Fill to the full boundary.
  size_t pushed = 0;
  while (q.TryPush(std::make_unique<int>(static_cast<int>(pushed)))) {
    ++pushed;
  }
  EXPECT_EQ(pushed, q.capacity());
  // Full boundary: a failed TryPush must leave the argument unmoved,
  // exactly as the doc comment promises (back-pressure loops retry
  // the same object).
  auto retry_me = std::make_unique<int>(777);
  EXPECT_FALSE(q.TryPush(std::move(retry_me)));
  ASSERT_NE(retry_me, nullptr);
  EXPECT_EQ(*retry_me, 777);
  // One pop frees exactly one slot; the retried push then consumes it.
  std::unique_ptr<int> popped;
  EXPECT_TRUE(q.TryPop(&popped));
  EXPECT_TRUE(q.TryPush(std::move(retry_me)));
  EXPECT_EQ(retry_me, nullptr);
  EXPECT_FALSE(q.TryPush(std::make_unique<int>(0)));  // full again
}

TEST(SpscQueueTest, ConcurrentProducerConsumerTransfersEverything) {
  SpscQueue<uint64_t> q(1024);
  constexpr uint64_t kCount = 500000;
  uint64_t sum_consumed = 0;

  std::thread consumer([&] {
    uint64_t received = 0;
    uint64_t v;
    uint64_t expected = 0;
    while (received < kCount) {
      if (q.TryPop(&v)) {
        // FIFO across threads: values arrive in production order.
        ASSERT_EQ(v, expected);
        ++expected;
        sum_consumed += v;
        ++received;
      }
    }
  });
  for (uint64_t i = 0; i < kCount; ++i) {
    while (!q.TryPush(uint64_t(i))) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum_consumed, kCount * (kCount - 1) / 2);
  EXPECT_TRUE(q.EmptyApprox());
}

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q(100);
  EXPECT_GE(q.capacity(), 100u);
  size_t pushed = 0;
  while (q.TryPush(1) && pushed < 1000) ++pushed;
  EXPECT_GE(pushed, 100u);
}

}  // namespace
}  // namespace brisk
