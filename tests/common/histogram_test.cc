// Unit + property tests for the log-bucketed streaming histogram.
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace brisk {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(1000.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000.0);
  EXPECT_EQ(h.max(), 1000.0);
  // Single sample: every quantile is that sample (within clamping).
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1000.0);
}

TEST(HistogramTest, MeanAndSumExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, PercentileWithinRelativeErrorBound) {
  // Log buckets with 2% growth: quantiles should be within ~2.5% of
  // exact order statistics for a uniform sample.
  Histogram h;
  Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    const double v = 10.0 + rng.NextDouble() * 100000.0;
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.10, 0.50, 0.90, 0.99}) {
    const double exact = values[static_cast<size_t>(q * (values.size() - 1))];
    const double approx = h.Percentile(q);
    EXPECT_NEAR(approx, exact, exact * 0.03) << "q=" << q;
  }
}

TEST(HistogramTest, PercentilesMonotoneInQ) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) h.Add(rng.NextExponential(5000.0) + 1.0);
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.Percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, ClampsToObservedExtremes) {
  Histogram h;
  h.Add(123.0);
  h.Add(456.0);
  EXPECT_GE(h.Percentile(0.0), 123.0);
  EXPECT_LE(h.Percentile(1.0), 456.0);
}

TEST(HistogramTest, MergeEqualsUnion) {
  Histogram a, b, all;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double v = 1.0 + rng.NextBounded(1000000);
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (const double q : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Percentile(q), all.Percentile(q));
  }
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  a.Add(10);
  a.Add(20);
  const double p50 = a.Percentile(0.5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Percentile(0.5), p50);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(HistogramTest, AddNEqualsRepeatedAdd) {
  Histogram weighted, repeated;
  weighted.AddN(500.0, 1000);
  weighted.AddN(2000.0, 10);
  for (int i = 0; i < 1000; ++i) repeated.Add(500.0);
  for (int i = 0; i < 10; ++i) repeated.Add(2000.0);
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_DOUBLE_EQ(weighted.sum(), repeated.sum());
  for (const double q : {0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(weighted.Percentile(q), repeated.Percentile(q));
  }
  // The heavy value dominates the median; the rare one only the tail.
  EXPECT_LT(weighted.Percentile(0.5), 600.0);
  EXPECT_GT(weighted.Percentile(0.999), 1500.0);
}

TEST(HistogramTest, AddNZeroCountIsNoOp) {
  Histogram h;
  h.AddN(100.0, 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(HistogramTest, CdfIsMonotoneAndEndsAtOne) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) h.Add(1.0 + rng.NextBounded(1 << 20));
  const auto cdf = h.Cdf();
  ASSERT_FALSE(cdf.empty());
  double prev_v = 0.0, prev_f = 0.0;
  for (const auto& [v, f] : cdf) {
    EXPECT_GT(v, prev_v);
    EXPECT_GE(f, prev_f);
    prev_v = v;
    prev_f = f;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(HistogramTest, SubUnitValuesClampToFirstBucket) {
  Histogram h;
  h.Add(0.0);
  h.Add(0.5);
  h.Add(-3.0);  // negative values clamp rather than crash
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, ToStringMentionsCountAndPercentiles) {
  Histogram h;
  h.Add(100);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace brisk
