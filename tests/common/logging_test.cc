// Tests for the logging/CHECK layer.
#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace brisk {
namespace {

TEST(LoggingTest, LevelFilterRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, MacrosCompileAndStream) {
  // Below-threshold messages must not evaluate as errors; these lines
  // exercise the streaming path of every level.
  SetLogLevel(LogLevel::kError);
  BRISK_LOG(Debug) << "dropped " << 1;
  BRISK_LOG(Info) << "dropped " << 2.5;
  BRISK_LOG(Warn) << "dropped " << "three";
  SetLogLevel(LogLevel::kInfo);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  BRISK_CHECK(1 + 1 == 2) << "never printed";
  BRISK_CHECK_OK(Status::OK());
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ BRISK_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH({ BRISK_CHECK_OK(Status::Internal("bad state")); },
               "bad state");
}

}  // namespace
}  // namespace brisk
