// Tests for the inline-storage vector behind Tuple::fields: inline
// fast path, heap spill beyond the fixed capacity, and ownership
// semantics across copy/move in both storage states.
#include "common/inline_vec.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace brisk {
namespace {

TEST(InlineVecTest, StartsEmptyInline) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_FALSE(v.on_heap());
}

TEST(InlineVecTest, StaysInlineUpToCapacity) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_FALSE(v.on_heap());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
  // The elements really live inside the object.
  const auto* obj_begin = reinterpret_cast<const char*>(&v);
  const auto* obj_end = obj_begin + sizeof(v);
  const auto* elems = reinterpret_cast<const char*>(v.data());
  EXPECT_GE(elems, obj_begin);
  EXPECT_LT(elems, obj_end);
}

TEST(InlineVecTest, SpillsToHeapBeyondCapacityAndKeepsContents) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 20u);
  EXPECT_TRUE(v.on_heap());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(InlineVecTest, InitializerListConstructAndAssign) {
  InlineVec<std::string, 4> v{"a", "bb", "ccc"};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], "ccc");
  v = {"x", "y"};
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "x");
  // Assigning more than the inline capacity spills.
  v = {"1", "2", "3", "4", "5", "6"};
  EXPECT_EQ(v.size(), 6u);
  EXPECT_TRUE(v.on_heap());
  EXPECT_EQ(v[5], "6");
}

TEST(InlineVecTest, CopyIsDeepInBothStorageStates) {
  InlineVec<std::string, 2> inline_v{"one", "two"};
  InlineVec<std::string, 2> spilled{"one", "two", "three"};
  InlineVec<std::string, 2> ci = inline_v;
  InlineVec<std::string, 2> cs = spilled;
  inline_v[0] = "mutated";
  spilled[0] = "mutated";
  EXPECT_EQ(ci[0], "one");
  EXPECT_EQ(cs[0], "one");
  EXPECT_EQ(cs.size(), 3u);
}

TEST(InlineVecTest, MoveStealsHeapBlockAndEmptiesSource) {
  InlineVec<std::string, 2> v{"a", "b", "c", "d"};
  ASSERT_TRUE(v.on_heap());
  const std::string* elems = v.data();
  InlineVec<std::string, 2> m = std::move(v);
  EXPECT_EQ(m.data(), elems);  // heap block handed over, not copied
  EXPECT_EQ(m.size(), 4u);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.on_heap());
  v.push_back("reusable after move");
  EXPECT_EQ(v.size(), 1u);
}

TEST(InlineVecTest, MoveOfInlineElementsMovesEachElement) {
  InlineVec<std::unique_ptr<int>, 4> v;
  v.emplace_back(std::make_unique<int>(1));
  v.emplace_back(std::make_unique<int>(2));
  InlineVec<std::unique_ptr<int>, 4> m = std::move(v);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(*m[0], 1);
  EXPECT_EQ(*m[1], 2);
  EXPECT_TRUE(v.empty());
}

TEST(InlineVecTest, MoveAssignReleasesPreviousContents) {
  InlineVec<std::string, 2> dst{"old1", "old2", "old3"};  // heap
  InlineVec<std::string, 2> src{"new"};
  dst = std::move(src);
  ASSERT_EQ(dst.size(), 1u);
  EXPECT_EQ(dst[0], "new");
}

TEST(InlineVecTest, ClearDestroysButKeepsStorage) {
  InlineVec<int, 2> v{1, 2, 3, 4};
  const size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);  // spill block retained for reuse
  v.push_back(9);
  EXPECT_EQ(v[0], 9);
}

TEST(InlineVecTest, ReserveOnlyGrows) {
  InlineVec<int, 4> v;
  v.reserve(2);
  EXPECT_FALSE(v.on_heap());  // within inline capacity: no-op
  v.reserve(16);
  EXPECT_GE(v.capacity(), 16u);
  EXPECT_TRUE(v.empty());
}

TEST(InlineVecTest, IterationAndBackFront) {
  InlineVec<int, 4> v{10, 20, 30};
  int sum = 0;
  for (const int x : v) sum += x;
  EXPECT_EQ(sum, 60);
  EXPECT_EQ(v.front(), 10);
  EXPECT_EQ(v.back(), 30);
  v.pop_back();
  EXPECT_EQ(v.back(), 20);
}

}  // namespace
}  // namespace brisk
