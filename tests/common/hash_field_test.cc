// HashField is the fields-grouping router: it must be stable across
// runs and processes (the optimizer's model and the engine must agree
// on key→replica routing), identical for equal keys regardless of how
// the Field was built or stored, and spread realistic key sets close
// to uniformly over replicas.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/tuple.h"

namespace brisk {
namespace {

/// Independent FNV-1a reference (the documented algorithm), so a
/// silent change to the production hash fails here instead of quietly
/// re-routing every fields-grouped key.
uint64_t ReferenceFnv1a(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(HashFieldTest, MatchesDocumentedFnv1aAcrossRuns) {
  const std::string word = "brisk";
  EXPECT_EQ(HashField(Field(word)), ReferenceFnv1a(word.data(), word.size()));
  const int64_t key = 0x1234567890ABCDEFLL;
  EXPECT_EQ(HashField(Field(key)), ReferenceFnv1a(&key, sizeof(key)));
  const double reading = 98.25;
  EXPECT_EQ(HashField(Field(reading)),
            ReferenceFnv1a(&reading, sizeof(reading)));
}

TEST(HashFieldTest, EqualKeysHashIdenticallyForIntAndStringReplicas) {
  // The same logical key must route to the same replica no matter
  // which replica (or process) computes the hash and no matter how the
  // Field object was produced.
  for (int64_t k : {int64_t{0}, int64_t{7}, int64_t{-1}, int64_t{1} << 40}) {
    EXPECT_EQ(HashField(Field(k)), HashField(Field(k)));
  }
  for (const char* w : {"", "a", "account-42", "kalomira7"}) {
    EXPECT_EQ(HashField(Field(w)), HashField(Field(std::string(w))));
    EXPECT_EQ(HashField(Field(w)), HashField(Field(std::string_view(w))));
  }
}

TEST(HashFieldTest, HashIsLayoutIndependentForInlineAndSpilledStrings) {
  // Equal content must hash equally whether the string sits inline in
  // the Field or in a spilled heap block (routing must not depend on
  // the storage path the value took).
  const std::string long_key(3 * Field::kInlineStringCap, 'q');
  const Field heap1(long_key);
  const Field heap2{std::string_view(long_key)};
  EXPECT_EQ(HashField(heap1), HashField(heap2));
  const std::string short_key = "tuvesz12";
  ASSERT_LE(short_key.size(), Field::kInlineStringCap);
  EXPECT_EQ(HashField(Field(short_key)),
            HashField(Field(std::string_view(short_key))));
  // And a copied/moved Field keeps the hash of its source.
  Field original(long_key);
  Field copied(original);
  Field moved(std::move(original));
  EXPECT_EQ(HashField(copied), HashField(moved));
}

TEST(HashFieldTest, SpreadsWordCountKeysNearUniformlyOverFourReplicas) {
  // word_count-style vocabulary (syllable words, Zipf-popular heads):
  // with 4 counter replicas each must receive its fair share of the
  // key space — ±20% of uniform — and the chi-squared statistic must
  // stay well under the blow-up that would signal a broken hash.
  static const char* kSyllables[] = {"ka", "lo", "mi", "ra", "tu", "ves",
                                     "zor", "pin", "qua", "sel", "dra",
                                     "fen", "gul", "hex", "jov", "wyn"};
  constexpr int kReplicas = 4;
  constexpr int kKeys = 4096;
  std::vector<int> bucket(kReplicas, 0);
  for (int i = 0; i < kKeys; ++i) {
    std::string w = kSyllables[i % 16];
    w += kSyllables[(i / 16) % 16];
    w += kSyllables[(i / 256) % 16];
    w += std::to_string(i % 100);
    ++bucket[HashField(Field(w)) % kReplicas];
  }
  const double expected = static_cast<double>(kKeys) / kReplicas;
  double chi2 = 0.0;
  for (int r = 0; r < kReplicas; ++r) {
    EXPECT_GT(bucket[r], expected * 0.8) << "replica " << r << " starved";
    EXPECT_LT(bucket[r], expected * 1.2) << "replica " << r << " overloaded";
    const double d = bucket[r] - expected;
    chi2 += d * d / expected;
  }
  // 3 degrees of freedom: P(chi2 > 16.27) < 0.1% for a uniform hash.
  EXPECT_LT(chi2, 16.27);
}

}  // namespace
}  // namespace brisk
