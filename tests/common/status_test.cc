// Unit tests for Status / StatusOr.
#include "common/status.h"

#include <gtest/gtest.h>

namespace brisk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists},
      {Status::ResourceExhausted("d"), StatusCode::kResourceExhausted},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition},
      {Status::OutOfRange("f"), StatusCode::kOutOfRange},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented},
      {Status::Internal("h"), StatusCode::kInternal},
      {Status::Cancelled("i"), StatusCode::kCancelled},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyPayload) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  BRISK_ASSIGN_OR_RETURN(int h, Half(x));
  BRISK_ASSIGN_OR_RETURN(int q, Half(h));
  *out = q;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacroPropagatesErrors) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(UseAssignOrReturn(6, &out).IsInvalidArgument());  // 3 is odd
  EXPECT_TRUE(UseAssignOrReturn(5, &out).IsInvalidArgument());
}

Status UseReturnNotOk(bool fail) {
  BRISK_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UseReturnNotOk(false).ok());
  EXPECT_EQ(UseReturnNotOk(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace brisk
