// Tests for the deterministic PRNG and its distributions.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace brisk {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(4);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 800000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.03);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 200000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 200000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(8);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextExponential(250.0);
  EXPECT_NEAR(sum / kSamples, 250.0, 5.0);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(9);
  constexpr uint64_t kN = 1000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[rng.NextZipf(kN, 0.9)];
  // Rank 0 dominates any mid-range rank; all within bounds.
  for (const auto& [rank, _] : counts) EXPECT_LT(rank, kN);
  EXPECT_GT(counts[0], counts[kN / 2] * 10);
}

TEST(RngTest, ZipfThetaZeroIsUniform) {
  Rng rng(10);
  constexpr uint64_t kN = 16;
  int counts[kN] = {0};
  constexpr int kSamples = 320000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextZipf(kN, 0.0)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / static_cast<int>(kN),
                kSamples / static_cast<int>(kN) * 0.05);
  }
}

TEST(RngTest, ZipfHandlesParameterChanges) {
  // The memoised constants must recompute when (n, theta) changes.
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.NextZipf(10, 0.5), 10u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.NextZipf(100, 0.9), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.NextZipf(10, 0.5), 10u);
}

TEST(RngTest, SplitMix64Advances) {
  uint64_t state = 123;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  // Usable with <random> adaptors.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(12);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace brisk
