// Tests for operator fusion (Appendix D extension).
#include "optimizer/fusion.h"

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "apps/word_count.h"
#include "engine/runtime.h"
#include "model/perf_model.h"

namespace brisk::opt {
namespace {

using apps::AppId;
using hw::MachineSpec;

TEST(FusionTest, FindsOnlyLegalCandidates) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  const auto candidates = FindFusionCandidates(app->topology());
  // WC: spout->parser (shuffle, 1:1) and parser->splitter (shuffle,
  // 1:1) are legal; splitter->counter is fields-grouped (stateful) and
  // counter->sink is shuffle 1:1.
  ASSERT_FALSE(candidates.empty());
  const int splitter = *app->topology().OpId("splitter");
  const int counter = *app->topology().OpId("counter");
  for (const auto& c : candidates) {
    EXPECT_FALSE(c.producer_op == splitter && c.consumer_op == counter)
        << "fields-grouped edge must not be fusable";
  }
  // parser -> splitter must be present.
  const int parser = *app->topology().OpId("parser");
  const bool has_parser_splitter =
      std::any_of(candidates.begin(), candidates.end(), [&](const auto& c) {
        return c.producer_op == parser && c.consumer_op == splitter;
      });
  EXPECT_TRUE(has_parser_splitter);
}

TEST(FusionTest, MultiConsumerProducerNotFusable) {
  auto app = apps::MakeApp(AppId::kLinearRoad);
  ASSERT_TRUE(app.ok());
  const int dispatcher = *app->topology().OpId("dispatcher");
  for (const auto& c : FindFusionCandidates(app->topology())) {
    EXPECT_NE(c.producer_op, dispatcher)
        << "dispatcher fans out to many consumers";
  }
}

TEST(FusionTest, FusedTopologyPreservesStructure) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  const int parser = *app->topology().OpId("parser");
  const int splitter = *app->topology().OpId("splitter");
  auto fused = FuseOperators(app->topology(), app->profiles,
                             {parser, splitter});
  ASSERT_TRUE(fused.ok()) << fused.status();
  EXPECT_EQ(fused->topology->num_operators(), 4);  // 5 - 1
  EXPECT_TRUE(fused->topology->OpId("parser+splitter").ok());
  EXPECT_FALSE(fused->topology->OpId("parser").ok());
  EXPECT_FALSE(fused->topology->OpId("splitter").ok());
  // The counter now consumes from the fused operator, still fields.
  const int counter = *fused->topology->OpId("counter");
  const auto in = fused->topology->InEdges(counter);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(fused->topology->op(in[0].producer_op).name, "parser+splitter");
  EXPECT_EQ(in[0].grouping, api::GroupingType::kFields);
}

TEST(FusionTest, FusedProfileCombinesCosts) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  const int parser = *app->topology().OpId("parser");
  const int splitter = *app->topology().OpId("splitter");
  auto fused = FuseOperators(app->topology(), app->profiles,
                             {parser, splitter});
  ASSERT_TRUE(fused.ok());
  const auto fp = fused->profiles.Get("parser+splitter");
  ASSERT_TRUE(fp.ok());
  const auto pp = app->profiles.Get("parser");
  const auto sp = app->profiles.Get("splitter");
  // T_e' = T_e(parser) + sel(parser) * T_e(splitter); parser sel = 1.
  EXPECT_DOUBLE_EQ(fp->te_cycles, pp->te_cycles + sp->te_cycles);
  // Combined selectivity: 1 x 10 words per sentence.
  EXPECT_DOUBLE_EQ(fp->selectivity[0], sp->selectivity[0]);
}

TEST(FusionTest, RejectsIllegalCandidate) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  const int splitter = *app->topology().OpId("splitter");
  const int counter = *app->topology().OpId("counter");
  auto fused = FuseOperators(app->topology(), app->profiles,
                             {splitter, counter});
  ASSERT_FALSE(fused.ok());
  EXPECT_TRUE(fused.status().IsFailedPrecondition());
  EXPECT_FALSE(
      FuseOperators(app->topology(), app->profiles, {99, 3}).ok());
}

TEST(FusionTest, FusedTopologyRunsOnEngineWithSameSemantics) {
  // Fuse parser+splitter and run for real: words still reach the sink
  // with ~10x expansion.
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  const int parser = *app->topology().OpId("parser");
  const int splitter = *app->topology().OpId("splitter");
  auto fused = FuseOperators(app->topology(), app->profiles,
                             {parser, splitter});
  ASSERT_TRUE(fused.ok());

  auto plan = model::ExecutionPlan::CreateDefault(fused->topology.get());
  ASSERT_TRUE(plan.ok());
  plan->PlaceAllOn(0);
  auto rt = engine::BriskRuntime::Create(fused->topology.get(), *plan,
                                         engine::EngineConfig::Brisk());
  ASSERT_TRUE(rt.ok()) << rt.status();
  auto stats = (*rt)->RunFor(0.15);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(app->telemetry->count(), 100u);
  // Fused instance emits ~10 words per input sentence.
  const auto& fused_stats = stats->tasks[1];  // spout=0, fused=1
  EXPECT_NEAR(static_cast<double>(fused_stats.tuples_out),
              10.0 * static_cast<double>(fused_stats.tuples_in),
              0.05 * static_cast<double>(fused_stats.tuples_out) + 10);
}

TEST(FusionTest, FusionEliminatesTheInternalEdge) {
  // Fusing parser+splitter removes the sentence-sized edge between
  // them: with matching external placements (spout->X local, X's
  // output crossing sockets, rest unchanged), the fused instance runs
  // at its pure T_e (no internal fetch) and the parser->splitter link
  // traffic disappears from the matrix.
  const MachineSpec m = MachineSpec::Symmetric(2, 4, 1.0, 50, 800, 50, 10);
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  model::PerfModel unfused_model(&m, &app->profiles);
  auto plan = model::ExecutionPlan::CreateDefault(app->topology_ptr.get());
  ASSERT_TRUE(plan.ok());
  // Force the internal edge across sockets; everything downstream of
  // the splitter is on S1.
  plan->SetSocket(0, 0);  // spout
  plan->SetSocket(1, 0);  // parser
  plan->SetSocket(2, 1);  // splitter (remote to parser)
  plan->SetSocket(3, 1);  // counter
  plan->SetSocket(4, 1);  // sink
  auto unfused = unfused_model.Evaluate(*plan, 1e12);
  ASSERT_TRUE(unfused.ok());
  const double unfused_s0_to_s1 = unfused->link_traffic[0 * 2 + 1];
  EXPECT_GT(unfused_s0_to_s1, 0.0);

  const int parser = *app->topology().OpId("parser");
  const int splitter = *app->topology().OpId("splitter");
  auto fused = FuseOperators(app->topology(), app->profiles,
                             {parser, splitter});
  ASSERT_TRUE(fused.ok());
  model::PerfModel fused_model(&m, &fused->profiles);
  auto fplan = model::ExecutionPlan::CreateDefault(fused->topology.get());
  ASSERT_TRUE(fplan.ok());
  fplan->SetSocket(0, 1);  // spout feeds the fused op remotely now: put
  fplan->SetSocket(1, 1);  // both on S1 to keep externals comparable
  fplan->SetSocket(2, 1);  // counter
  fplan->SetSocket(3, 1);  // sink
  auto fused_eval = fused_model.Evaluate(*fplan, 1e12);
  ASSERT_TRUE(fused_eval.ok());
  // Everything collocated: zero traffic, and the fused instance's T(p)
  // is exactly its combined T_e — the internal fetch is gone.
  for (const double t : fused_eval->link_traffic) EXPECT_EQ(t, 0.0);
  const auto fp = fused->profiles.Get("parser+splitter");
  ASSERT_TRUE(fp.ok());
  EXPECT_NEAR(fused_eval->instances[1].t_ns, m.CyclesToNs(fp->te_cycles),
              1e-9);
}

TEST(FusionTest, AutoFuseNeverRegresses) {
  const MachineSpec m = MachineSpec::Symmetric(2, 4, 1.0, 50, 500, 50, 10);
  auto app = apps::MakeApp(AppId::kSpikeDetection);
  ASSERT_TRUE(app.ok());
  RlasOptions options;
  options.placement.compress_ratio = 2;
  auto result = AutoFuse(app->topology(), app->profiles, m, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->fused_throughput,
            result->baseline_throughput * (1 - 1e-9));
  if (result->fusions_applied > 0) {
    EXPECT_LT(result->topology->num_operators(),
              app->topology().num_operators());
  }
}

}  // namespace
}  // namespace brisk::opt
