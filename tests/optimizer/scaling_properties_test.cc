// Property tests of Algorithm 1 (iterative scaling) invariants, swept
// across applications.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "optimizer/rlas.h"

namespace brisk::opt {
namespace {

using apps::AppId;
using hw::MachineSpec;

class ScalingPropertyTest : public ::testing::TestWithParam<AppId> {
 protected:
  StatusOr<RlasResult> Run(const MachineSpec& m, RlasOptions options = {}) {
    auto app = apps::MakeApp(GetParam());
    if (!app.ok()) return app.status();
    bundle_ = std::move(app).value();
    options.placement.compress_ratio = 4;
    RlasOptimizer optimizer(&m, &bundle_.profiles, options);
    return optimizer.Optimize(bundle_.topology());
  }

  apps::AppBundle bundle_;
};

TEST_P(ScalingPropertyTest, PlanIsAlwaysValidAndPlaced) {
  const MachineSpec m = MachineSpec::ServerB();
  auto r = Run(m);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->plan.FullyPlaced());
  EXPECT_TRUE(r->model.feasible());
  for (int s = 0; s < m.num_sockets(); ++s) {
    EXPECT_LE(r->plan.InstancesOnSocket(s), m.cores_per_socket());
  }
  EXPECT_LE(r->plan.num_instances(), m.total_cores());
  EXPECT_GT(r->model.throughput, 0.0);
}

TEST_P(ScalingPropertyTest, ReplicaBudgetRespected) {
  const MachineSpec m = MachineSpec::ServerB();
  RlasOptions options;
  options.max_total_replicas = 20;
  auto r = Run(m, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_LE(r->plan.num_instances(), 20);
}

TEST_P(ScalingPropertyTest, LargerBudgetNeverHurts) {
  const MachineSpec m = MachineSpec::ServerB();
  RlasOptions small, large;
  small.max_total_replicas = 16;
  large.max_total_replicas = 48;
  auto r_small = Run(m, small);
  auto r_large = Run(m, large);
  ASSERT_TRUE(r_small.ok() && r_large.ok());
  // The larger budget subsumes the smaller search space; allow 2% for
  // heuristic tie-break noise.
  EXPECT_GE(r_large->model.throughput,
            r_small->model.throughput * 0.98);
}

TEST_P(ScalingPropertyTest, WarmStartConverges) {
  // Appendix D: starting from a larger initial DAG cuts iterations and
  // must not invalidate the result.
  const MachineSpec m = MachineSpec::ServerB();
  auto cold = Run(m);
  ASSERT_TRUE(cold.ok());

  RlasOptions warm_options;
  warm_options.initial_replication = cold->plan.replication();
  auto warm = Run(m, warm_options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_LE(warm->scaling_iterations, cold->scaling_iterations);
  EXPECT_TRUE(warm->model.feasible());
  EXPECT_GE(warm->model.throughput, cold->model.throughput * 0.98);
}

TEST_P(ScalingPropertyTest, EveryOperatorKeepsAtLeastOneReplica) {
  const MachineSpec m = MachineSpec::ServerA();
  auto r = Run(m);
  ASSERT_TRUE(r.ok());
  for (const auto& op : bundle_.topology().ops()) {
    EXPECT_GE(r->plan.replication(op.id), 1) << op.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, ScalingPropertyTest,
                         ::testing::ValuesIn(apps::kAllApps),
                         [](const auto& info) {
                           return apps::AppName(info.param);
                         });

}  // namespace
}  // namespace brisk::opt
