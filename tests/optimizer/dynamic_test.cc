// Tests for dynamic re-optimization (§5.3 extension).
#include "optimizer/dynamic.h"

#include <gtest/gtest.h>

#include "apps/apps.h"

namespace brisk::opt {
namespace {

using apps::AppId;
using hw::MachineSpec;
using model::ExecutionPlan;
using model::OperatorProfile;
using model::ProfileSet;

TEST(ProfileDriftTest, IdenticalProfilesHaveZeroDrift) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  EXPECT_DOUBLE_EQ(ProfileDrift(app->profiles, app->profiles), 0.0);
}

TEST(ProfileDriftTest, TeChangeMeasuredRelatively) {
  ProfileSet a, b;
  a.Set("x", OperatorProfile::Simple(1000, 64, 64));
  b.Set("x", OperatorProfile::Simple(1300, 64, 64));
  EXPECT_NEAR(ProfileDrift(a, b), 300.0 / 1300.0, 1e-9);
}

TEST(ProfileDriftTest, SelectivityChangeDetected) {
  ProfileSet a, b;
  a.Set("x", OperatorProfile::Simple(1000, 64, 64, /*sel=*/10.0));
  b.Set("x", OperatorProfile::Simple(1000, 64, 64, /*sel=*/5.0));
  EXPECT_NEAR(ProfileDrift(a, b), 0.5, 1e-9);
}

TEST(ProfileDriftTest, MissingOperatorIsFullDrift) {
  ProfileSet a, b;
  a.Set("x", OperatorProfile::Simple(1000, 64, 64));
  EXPECT_DOUBLE_EQ(ProfileDrift(a, b), 1.0);
  EXPECT_DOUBLE_EQ(ProfileDrift(b, a), 1.0);
}

TEST(DiffPlansTest, IdenticalPlansNoSteps) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  auto plan = ExecutionPlan::CreateDefault(app->topology_ptr.get());
  ASSERT_TRUE(plan.ok());
  plan->PlaceAllOn(0);
  auto diff = DiffPlans(*plan, *plan);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->empty());
  EXPECT_EQ(diff->unchanged, plan->num_instances());
}

TEST(DiffPlansTest, DetectsMovesStartsStops) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  auto old_plan =
      ExecutionPlan::Create(app->topology_ptr.get(), {1, 1, 2, 2, 1});
  auto new_plan =
      ExecutionPlan::Create(app->topology_ptr.get(), {1, 1, 3, 1, 1});
  ASSERT_TRUE(old_plan.ok() && new_plan.ok());
  old_plan->PlaceAllOn(0);
  new_plan->PlaceAllOn(0);
  // Move the parser; splitter grows 2->3 (one start); counter shrinks
  // 2->1 (one stop).
  new_plan->SetSocket(new_plan->InstanceId(1, 0), 1);
  auto diff = DiffPlans(*old_plan, *new_plan);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->moves, 1);
  EXPECT_EQ(diff->starts, 1);
  EXPECT_EQ(diff->stops, 1);
  // Steps are human-printable.
  for (const auto& s : diff->steps) {
    EXPECT_FALSE(s.ToString(app->topology()).empty());
  }
}

TEST(ApplyStepsToPlanTest, RoundTripsDiffPlans) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  auto old_plan =
      ExecutionPlan::Create(app->topology_ptr.get(), {1, 2, 2, 2, 1});
  auto new_plan =
      ExecutionPlan::Create(app->topology_ptr.get(), {2, 2, 3, 1, 1});
  ASSERT_TRUE(old_plan.ok() && new_plan.ok());
  old_plan->PlaceAllOn(0);
  new_plan->PlaceAllOn(1);
  new_plan->SetSocket(new_plan->InstanceId(2, 2), 0);
  auto diff = DiffPlans(*old_plan, *new_plan);
  ASSERT_TRUE(diff.ok());
  auto rebuilt = ApplyStepsToPlan(*old_plan, *diff);
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_EQ(rebuilt->num_instances(), new_plan->num_instances());
  EXPECT_EQ(rebuilt->replication(), new_plan->replication());
  for (int i = 0; i < new_plan->num_instances(); ++i) {
    EXPECT_EQ(rebuilt->SocketOf(i), new_plan->SocketOf(i)) << "instance " << i;
  }
  // The diff of the rebuilt plan against the target is empty.
  auto rediff = DiffPlans(*rebuilt, *new_plan);
  ASSERT_TRUE(rediff.ok());
  EXPECT_TRUE(rediff->empty());
}

TEST(ApplyStepsToPlanTest, EmptyMigrationIsIdentity) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  auto plan = ExecutionPlan::CreateDefault(app->topology_ptr.get());
  ASSERT_TRUE(plan.ok());
  plan->PlaceAllOn(0);
  auto rebuilt = ApplyStepsToPlan(*plan, MigrationPlan{});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->replication(), plan->replication());
  for (int i = 0; i < plan->num_instances(); ++i) {
    EXPECT_EQ(rebuilt->SocketOf(i), plan->SocketOf(i));
  }
}

TEST(ApplyStepsToPlanTest, RejectsInconsistentSteps) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  auto plan = ExecutionPlan::Create(app->topology_ptr.get(), {1, 1, 2, 1, 1});
  ASSERT_TRUE(plan.ok());
  plan->PlaceAllOn(0);

  MigrationPlan bad_move;
  bad_move.steps.push_back({MigrationStep::kMove, /*op=*/2, /*replica=*/0,
                            /*from=*/1, /*to=*/0});  // replica runs on 0
  EXPECT_FALSE(ApplyStepsToPlan(*plan, bad_move).ok());

  MigrationPlan stops_everything;
  stops_everything.steps.push_back(
      {MigrationStep::kStop, /*op=*/2, /*replica=*/1, /*from=*/0, /*to=*/-1});
  stops_everything.steps.push_back(
      {MigrationStep::kStop, /*op=*/2, /*replica=*/0, /*from=*/0, /*to=*/-1});
  EXPECT_FALSE(ApplyStepsToPlan(*plan, stops_everything).ok());

  MigrationPlan start_and_stop;
  start_and_stop.steps.push_back(
      {MigrationStep::kStart, /*op=*/2, /*replica=*/2, /*from=*/-1, /*to=*/0});
  start_and_stop.steps.push_back(
      {MigrationStep::kStop, /*op=*/2, /*replica=*/1, /*from=*/0, /*to=*/-1});
  EXPECT_FALSE(ApplyStepsToPlan(*plan, start_and_stop).ok());
}

TEST(DiffPlansTest, RejectsDifferentTopologies) {
  auto a = apps::MakeApp(AppId::kWordCount);
  auto b = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(a.ok() && b.ok());
  auto pa = ExecutionPlan::CreateDefault(a->topology_ptr.get());
  auto pb = ExecutionPlan::CreateDefault(b->topology_ptr.get());
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_FALSE(DiffPlans(*pa, *pb).ok());
}

class DynamicReoptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = MachineSpec::Symmetric(2, 8, 1.0, 50, 400, 50, 10);
    auto app = apps::MakeApp(AppId::kWordCount);
    ASSERT_TRUE(app.ok());
    app_ = std::move(app).value();
    DynamicOptions options;
    options.rlas.placement.compress_ratio = 2;
    reopt_ = std::make_unique<DynamicReoptimizer>(&machine_, options);

    RlasOptions rlas_options;
    rlas_options.placement.compress_ratio = 2;
    RlasOptimizer optimizer(&machine_, &app_.profiles, rlas_options);
    auto plan = optimizer.Optimize(app_.topology());
    ASSERT_TRUE(plan.ok());
    current_ = plan->plan;
  }

  MachineSpec machine_;
  apps::AppBundle app_;
  std::unique_ptr<DynamicReoptimizer> reopt_;
  ExecutionPlan current_;
};

TEST_F(DynamicReoptTest, NoDriftNoReoptimization) {
  auto decision = reopt_->Check(app_.topology(), current_, app_.profiles,
                                app_.profiles);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->reoptimized);
  EXPECT_DOUBLE_EQ(decision->drift, 0.0);
}

TEST_F(DynamicReoptTest, SmallDriftBelowThresholdIgnored) {
  ProfileSet observed = app_.profiles;
  auto p = observed.Get("counter");
  ASSERT_TRUE(p.ok());
  auto q = *p;
  q.te_cycles *= 1.05;  // 5% drift < 15% threshold
  observed.Set("counter", q);
  auto decision =
      reopt_->Check(app_.topology(), current_, app_.profiles, observed);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->reoptimized);
  EXPECT_GT(decision->drift, 0.0);
}

TEST_F(DynamicReoptTest, LargeDriftTriggersReplanWithMigration) {
  // The splitter becomes 4x cheaper (e.g. shorter sentences): the old
  // replication massively over-provisions it.
  ProfileSet observed = app_.profiles;
  auto p = observed.Get("splitter");
  ASSERT_TRUE(p.ok());
  auto q = *p;
  q.te_cycles /= 4.0;
  observed.Set("splitter", q);

  auto decision =
      reopt_->Check(app_.topology(), current_, app_.profiles, observed);
  ASSERT_TRUE(decision.ok());
  EXPECT_GT(decision->drift, 0.5);
  ASSERT_TRUE(decision->reoptimized);
  EXPECT_GT(decision->expected_gain, 0.05);
  EXPECT_FALSE(decision->migration.empty());
  EXPECT_TRUE(decision->new_plan.FullyPlaced());
}

}  // namespace
}  // namespace brisk::opt
