// Tests for the B&B search heuristics and ablation switches
// (§4, §6.4, Appendix D).
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "optimizer/placement_bb.h"

namespace brisk::opt {
namespace {

using apps::AppId;
using hw::MachineSpec;
using model::ExecutionPlan;
using model::PerfModel;

struct Fixture {
  MachineSpec machine = MachineSpec::ServerA();
  apps::AppBundle app;
  ExecutionPlan plan;

  static StatusOr<Fixture> Make(AppId id, std::vector<int> repl) {
    Fixture f;
    BRISK_ASSIGN_OR_RETURN(f.app, apps::MakeApp(id));
    BRISK_ASSIGN_OR_RETURN(
        f.plan, ExecutionPlan::Create(f.app.topology_ptr.get(), repl));
    return f;
  }
};

TEST(PlacementAblationTest, PruningReducesExploredNodes) {
  auto f = Fixture::Make(AppId::kWordCount, {2, 2, 4, 6, 2});
  ASSERT_TRUE(f.ok());
  PerfModel model(&f->machine, &f->app.profiles);

  // Disable best-fit in both variants so the search actually branches
  // (best-fit alone collapses WC to a near-chain of single children).
  PlacementOptions with;
  with.compress_ratio = 2;
  with.use_best_fit = false;
  with.max_seconds = 5.0;
  PlacementOptions without = with;
  without.use_pruning = false;
  without.max_nodes = 20000;

  auto r_with = OptimizePlacement(model, f->plan, with);
  auto r_without = OptimizePlacement(model, f->plan, without);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  // Pruning must explore no more nodes and find an equal-or-better
  // plan within the same budget.
  EXPECT_LE(r_with->nodes_explored, r_without->nodes_explored);
  EXPECT_GT(r_with->nodes_pruned, 0u);
  EXPECT_GE(r_with->model.throughput,
            r_without->model.throughput * 0.999);
}

TEST(PlacementAblationTest, BestFitShrinksSearch) {
  auto f = Fixture::Make(AppId::kWordCount, {2, 2, 4, 6, 2});
  ASSERT_TRUE(f.ok());
  PerfModel model(&f->machine, &f->app.profiles);

  PlacementOptions with;
  with.compress_ratio = 2;
  PlacementOptions without = with;
  without.use_best_fit = false;
  without.max_seconds = 5.0;

  auto r_with = OptimizePlacement(model, f->plan, with);
  auto r_without = OptimizePlacement(model, f->plan, without);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok()) << r_without.status();
  EXPECT_LT(r_with->nodes_explored, r_without->nodes_explored);
}

TEST(PlacementAblationTest, RedundancyEliminationShrinksSearch) {
  auto f = Fixture::Make(AppId::kSpikeDetection, {1, 2, 4, 2, 1});
  ASSERT_TRUE(f.ok());
  PerfModel model(&f->machine, &f->app.profiles);

  PlacementOptions with;
  with.compress_ratio = 1;
  with.use_best_fit = false;  // force real branching in both variants
  with.max_seconds = 5.0;
  PlacementOptions without = with;
  without.use_redundancy_elimination = false;

  auto r_with = OptimizePlacement(model, f->plan, with);
  auto r_without = OptimizePlacement(model, f->plan, without);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  // Empty-socket symmetry breaking cuts the branching factor on an
  // 8-socket machine substantially.
  EXPECT_LT(r_with->nodes_explored, r_without->nodes_explored);
  // And costs nothing in quality (symmetric sockets are identical).
  EXPECT_NEAR(r_with->model.throughput, r_without->model.throughput,
              r_with->model.throughput * 0.01);
}

TEST(PlacementAblationTest, FirstFitSeedNeverWorsensResult) {
  auto f = Fixture::Make(AppId::kFraudDetection, {2, 2, 6, 2});
  ASSERT_TRUE(f.ok());
  PerfModel model(&f->machine, &f->app.profiles);

  PlacementOptions plain;
  plain.compress_ratio = 2;
  PlacementOptions seeded = plain;
  seeded.seed_with_first_fit = true;

  auto r_plain = OptimizePlacement(model, f->plan, plain);
  auto r_seeded = OptimizePlacement(model, f->plan, seeded);
  ASSERT_TRUE(r_plain.ok());
  ASSERT_TRUE(r_seeded.ok());
  EXPECT_GE(r_seeded->model.throughput,
            r_plain->model.throughput * 0.999);
}

TEST(PlacementAblationTest, CompressionTradesQualityForSpeed) {
  auto f = Fixture::Make(AppId::kWordCount, {2, 2, 10, 20, 4});
  ASSERT_TRUE(f.ok());
  PerfModel model(&f->machine, &f->app.profiles);

  uint64_t prev_nodes = UINT64_MAX;
  for (const int ratio : {1, 5, 10}) {
    PlacementOptions opts;
    opts.compress_ratio = ratio;
    opts.max_seconds = 5.0;
    auto r = OptimizePlacement(model, f->plan, opts);
    ASSERT_TRUE(r.ok()) << "ratio " << ratio;
    // Coarser grouping => smaller search space explored.
    EXPECT_LE(r->nodes_explored, prev_nodes) << "ratio " << ratio;
    prev_nodes = r->nodes_explored;
  }
}

TEST(PlacementAblationTest, OversizedCompressionUnitsFailPlacement) {
  // Appendix D: "a compressed graph contains heavy operators (multiple
  // operators grouped into one), which may fail to be allocated" — a
  // 20-replica unit cannot fit Server A's 18-core sockets.
  auto f = Fixture::Make(AppId::kWordCount, {2, 2, 10, 20, 4});
  ASSERT_TRUE(f.ok());
  PerfModel model(&f->machine, &f->app.profiles);
  PlacementOptions opts;
  opts.compress_ratio = 20;
  auto r = OptimizePlacement(model, f->plan, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(PlacementAblationTest, TimeBudgetReturnsIncumbent) {
  auto f = Fixture::Make(AppId::kWordCount, {2, 2, 8, 12, 4});
  ASSERT_TRUE(f.ok());
  PerfModel model(&f->machine, &f->app.profiles);
  PlacementOptions opts;
  opts.compress_ratio = 1;
  opts.max_seconds = 0.05;  // deliberately tiny
  auto r = OptimizePlacement(model, f->plan, opts);
  // Either it finished in time, or it returns a (possibly suboptimal)
  // valid incumbent with the incomplete flag.
  if (r.ok()) {
    EXPECT_TRUE(r->plan.FullyPlaced());
    EXPECT_TRUE(r->model.feasible());
  } else {
    EXPECT_TRUE(r.status().IsResourceExhausted());
  }
}

TEST(PlacementAblationTest, NodeBudgetHonored) {
  auto f = Fixture::Make(AppId::kWordCount, {2, 2, 8, 12, 4});
  ASSERT_TRUE(f.ok());
  PerfModel model(&f->machine, &f->app.profiles);
  PlacementOptions opts;
  opts.compress_ratio = 1;
  opts.max_nodes = 500;
  opts.max_seconds = 30.0;
  auto r = OptimizePlacement(model, f->plan, opts);
  if (r.ok()) {
    EXPECT_LE(r->nodes_explored, 500u + 1);
    EXPECT_FALSE(r->search_complete);
  }
}

}  // namespace
}  // namespace brisk::opt
