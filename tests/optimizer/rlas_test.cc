// Integration tests for RLAS: B&B placement (Algorithm 2) and iterative
// scaling (Algorithm 1), plus the baseline planners.
#include "optimizer/rlas.h"

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "optimizer/baselines.h"

namespace brisk::opt {
namespace {

using apps::AppId;
using hw::MachineSpec;
using model::ExecutionPlan;
using model::PerfModel;

TEST(PlacementBbTest, CollocatesChainWhenItFits) {
  // Two light operators trivially fit one socket; optimal placement
  // collocates them (no RMA).
  MachineSpec m = MachineSpec::Symmetric(4, 8, 1.0, 50, 500, 50, 10);
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  auto plan = ExecutionPlan::CreateDefault(app->topology_ptr.get());
  ASSERT_TRUE(plan.ok());

  PerfModel model(&m, &app->profiles);
  PlacementOptions opts;
  opts.compress_ratio = 1;
  auto result = OptimizePlacement(model, *plan, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->plan.FullyPlaced());
  EXPECT_TRUE(result->model.feasible());
  // All five instances fit one socket: no cross-socket traffic at all.
  double cross = 0.0;
  for (const double t : result->model.link_traffic) cross += t;
  EXPECT_EQ(cross, 0.0);
}

TEST(PlacementBbTest, SplitsWhenCoreConstraintForcesIt) {
  // Two cores per socket but five operators: placement must span
  // sockets yet stay feasible.
  MachineSpec m = MachineSpec::Symmetric(4, 2, 1.0, 50, 500, 50, 10);
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  auto plan = ExecutionPlan::CreateDefault(app->topology_ptr.get());
  ASSERT_TRUE(plan.ok());

  PerfModel model(&m, &app->profiles);
  PlacementOptions opts;
  opts.compress_ratio = 1;
  auto result = OptimizePlacement(model, *plan, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->model.feasible());
  for (int s = 0; s < m.num_sockets(); ++s) {
    EXPECT_LE(result->plan.InstancesOnSocket(s), 2);
  }
}

TEST(PlacementBbTest, InfeasibleWhenMoreInstancesThanCores) {
  MachineSpec m = MachineSpec::Symmetric(1, 2, 1.0, 50, 500, 50, 10);
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  auto plan = ExecutionPlan::CreateDefault(app->topology_ptr.get());  // 5 instances
  ASSERT_TRUE(plan.ok());
  PerfModel model(&m, &app->profiles);
  auto result = OptimizePlacement(model, *plan, PlacementOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST(PlacementBbTest, BeatsOrMatchesBaselinesOnWordCount) {
  MachineSpec m = MachineSpec::ServerA();
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  // Fixed replication so only placement differs (the Fig. 13 setup).
  auto plan = ExecutionPlan::Create(app->topology_ptr.get(), {2, 2, 6, 8, 2});
  ASSERT_TRUE(plan.ok());

  PerfModel model(&m, &app->profiles);
  PlacementOptions opts;
  opts.compress_ratio = 2;
  auto rlas = OptimizePlacement(model, *plan, opts);
  ASSERT_TRUE(rlas.ok()) << rlas.status();

  auto eval = [&](const ExecutionPlan& p) {
    auto r = model.Evaluate(p, opts.input_rate_tps);
    EXPECT_TRUE(r.ok());
    return r->throughput;
  };

  auto rr = PlaceRoundRobin(m, *plan);
  ASSERT_TRUE(rr.ok());
  auto os = PlaceOsDefault(m, *plan);
  ASSERT_TRUE(os.ok());
  auto ff = PlaceFirstFit(model, *plan, opts.input_rate_tps);
  ASSERT_TRUE(ff.ok());

  const double rlas_tput = rlas->model.throughput;
  EXPECT_GE(rlas_tput, eval(*rr) - 1e-6);
  EXPECT_GE(rlas_tput, eval(*os) - 1e-6);
  EXPECT_GE(rlas_tput, eval(*ff) - 1e-6);
}

TEST(RlasTest, ScalingGrowsBottleneckOperators) {
  MachineSpec m = MachineSpec::Symmetric(2, 8, 1.0, 50, 300, 50, 10);
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());

  RlasOptions options;
  options.placement.compress_ratio = 1;
  RlasOptimizer optimizer(&m, &app->profiles, options);
  auto result = optimizer.Optimize(app->topology());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->scaling_iterations, 2);
  // The splitter (heaviest per sentence) must end up replicated.
  auto splitter = app->topology().OpId("splitter");
  ASSERT_TRUE(splitter.ok());
  EXPECT_GT(result->plan.replication(*splitter), 1);
  // Total replicas never exceed the core budget.
  EXPECT_LE(result->plan.num_instances(), m.total_cores());
  EXPECT_TRUE(result->model.feasible());
}

TEST(RlasTest, ThroughputImprovesWithMoreSockets) {
  auto app = apps::MakeApp(AppId::kFraudDetection);
  ASSERT_TRUE(app.ok());
  MachineSpec full = MachineSpec::ServerB();

  double prev = 0.0;
  for (const int sockets : {1, 2, 4}) {
    auto m = full.Truncated(sockets);
    ASSERT_TRUE(m.ok());
    RlasOptions options;
    options.placement.compress_ratio = 4;
    RlasOptimizer optimizer(&*m, &app->profiles, options);
    auto result = optimizer.Optimize(app->topology());
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GE(result->model.throughput, prev * 0.999);
    prev = result->model.throughput;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(RlasTest, FixedModeAblationsOrderAsInPaper) {
  // Fig. 12: optimizing under fix(U) (ignore RMA) or fix(L) (assume
  // worst-case RMA) must not beat RLAS when all three plans are
  // re-evaluated under the true relative-location model.
  MachineSpec m = MachineSpec::ServerA();
  auto app = apps::MakeApp(AppId::kSpikeDetection);
  ASSERT_TRUE(app.ok());

  RlasOptions options;
  options.placement.compress_ratio = 4;
  options.max_total_replicas = 48;

  RlasOptimizer rlas(&m, &app->profiles, options);
  auto r = rlas.Optimize(app->topology());
  ASSERT_TRUE(r.ok()) << r.status();

  auto fix_u = OptimizeRlasFixed(m, app->profiles, app->topology(),
                                 model::FetchCostMode::kAlwaysLocal, options);
  ASSERT_TRUE(fix_u.ok()) << fix_u.status();
  auto fix_l = OptimizeRlasFixed(m, app->profiles, app->topology(),
                                 model::FetchCostMode::kAlwaysRemote,
                                 options);
  ASSERT_TRUE(fix_l.ok()) << fix_l.status();

  PerfModel true_model(&m, &app->profiles);
  auto true_eval = [&](const ExecutionPlan& p) {
    auto e = true_model.Evaluate(p, 1e12);
    EXPECT_TRUE(e.ok());
    return e->throughput;
  };
  const double v_rlas = true_eval(r->plan);
  EXPECT_GE(v_rlas, true_eval(fix_l->plan) - 1e-6);
  // fix(U) may luck into a good plan on symmetric cases but must never
  // exceed RLAS by more than noise.
  EXPECT_GE(v_rlas * 1.0001, true_eval(fix_u->plan));
}

TEST(BaselinesTest, RandomPlanRespectsBudgetAndPlacesEverything) {
  MachineSpec m = MachineSpec::ServerB();
  auto app = apps::MakeApp(AppId::kLinearRoad);
  ASSERT_TRUE(app.ok());
  Rng rng(7);
  auto plan = RandomPlan(app->topology(), m, &rng, 40);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->FullyPlaced());
  EXPECT_EQ(plan->num_instances(), 40);
  for (int s = 0; s < m.num_sockets(); ++s) {
    EXPECT_LE(plan->InstancesOnSocket(s), m.cores_per_socket());
  }
}

TEST(BaselinesTest, RoundRobinSpreadsInstances) {
  MachineSpec m = MachineSpec::Symmetric(4, 8, 1.0, 50, 300, 50, 10);
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  auto plan = model::ExecutionPlan::Create(app->topology_ptr.get(), {1, 1, 1, 1, 1});
  ASSERT_TRUE(plan.ok());
  auto rr = PlaceRoundRobin(m, *plan);
  ASSERT_TRUE(rr.ok());
  // 5 instances over 4 sockets: sockets 0..3 get one, socket 0 a second.
  EXPECT_EQ(rr->InstancesOnSocket(0), 2);
  EXPECT_EQ(rr->InstancesOnSocket(1), 1);
  EXPECT_EQ(rr->InstancesOnSocket(3), 1);
}

TEST(CompressedGraphTest, RatioControlsUnitCount) {
  auto app = apps::MakeApp(AppId::kWordCount);
  ASSERT_TRUE(app.ok());
  auto plan = model::ExecutionPlan::Create(app->topology_ptr.get(), {2, 2, 10, 10, 1});
  ASSERT_TRUE(plan.ok());
  const auto g1 = CompressedGraph::Build(*plan, 1);
  EXPECT_EQ(g1.num_units(), 25);
  const auto g5 = CompressedGraph::Build(*plan, 5);
  EXPECT_EQ(g5.num_units(), 1 + 1 + 2 + 2 + 1);  // ceil(repl / 5) each
  const auto g100 = CompressedGraph::Build(*plan, 100);
  EXPECT_EQ(g100.num_units(), 5);
  // Decisions only pair directly connected units.
  for (const auto& d : g5.decisions()) {
    EXPECT_NE(g5.units()[d.producer_unit].op, g5.units()[d.consumer_unit].op);
  }
}

}  // namespace
}  // namespace brisk::opt
