// Supervised crash recovery: checkpoint → fault → detect → restore →
// replay, proven by differential checks.
//
// The strong invariants on a recovered word_count run are baseline-free:
//   - gap-free counting: for every word, the distinct counts the sink
//     saw are exactly {1..max} — a lost keyed-state update or a lost
//     tuple leaves a hole, a state restart re-counts from 1 but cannot
//     *extend* the set past its true max;
//   - exactness: sum of per-word max counts == the bounded stream's
//     total word population — the final state is the full stream
//     applied exactly once;
//   - bounded at-least-once: sink arrivals beyond the population are
//     duplicates, and there are at most replayed_sentences x
//     words_per_sentence of them (the checkpoint-interval window).
//
// spike_detection (a windowed, floating-point aggregate) is checked
// differentially against a clean run of the same seed: the faulty
// run's sink multiset must contain the clean run's (zero loss), stay
// within its key set (replay is bit-identical), and exceed it by at
// most the replayed window (bounded duplication).
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/job.h"
#include "apps/spike_detection.h"
#include "apps/word_count.h"
#include "common/logging.h"
#include "engine/checkpoint.h"
#include "engine/fault.h"
#include "engine/runtime.h"
#include "engine/supervisor.h"
#include "model/execution_plan.h"

namespace brisk::engine {
namespace {

using apps::SpikeDetectionParams;
using apps::WordCountParams;
using model::ExecutionPlan;

constexpr int kParser = 1;
constexpr int kSplitter = 2;
constexpr int kCounter = 3;
constexpr int kMovingAvg = 2;  // SD topology

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---------------------------------------------------------------- WC

struct WcTap {
  std::mutex mu;
  std::vector<std::pair<std::string, int64_t>> entries;
};

struct WcRun {
  std::shared_ptr<SinkTelemetry> telemetry;
  std::shared_ptr<WcTap> tap;
  std::shared_ptr<const api::Topology> topo;
  std::unique_ptr<BriskRuntime> rt;
};

WcRun MakeWc(std::vector<int> replication, EngineConfig config,
             WordCountParams params) {
  WcRun run;
  run.telemetry = std::make_shared<SinkTelemetry>();
  run.tap = std::make_shared<WcTap>();
  auto tap = run.tap;
  auto topo = apps::BuildWordCountDsl(
      run.telemetry, params, [tap](const Tuple& in) {
        std::lock_guard<std::mutex> lock(tap->mu);
        tap->entries.emplace_back(std::string(in.GetString(0)), in.GetInt(1));
      });
  BRISK_CHECK(topo.ok()) << topo.status().ToString();
  run.topo = std::make_shared<const api::Topology>(std::move(topo).value());
  auto plan_or = ExecutionPlan::Create(run.topo.get(), std::move(replication));
  BRISK_CHECK(plan_or.ok()) << plan_or.status().ToString();
  ExecutionPlan plan = std::move(plan_or).value();
  for (int i = 0; i < plan.num_instances(); ++i) plan.SetSocket(i, i % 2);
  auto rt = BriskRuntime::Create(run.topo.get(), plan, config);
  BRISK_CHECK(rt.ok()) << rt.status().ToString();
  run.rt = std::move(rt).value();
  return run;
}

EngineConfig RecoveryConfig(ExecutorKind executor) {
  EngineConfig config;
  config.executor = executor;
  config.batch_size = 16;
  config.spout_rate_tps = 30000;
  config.seed = 23;
  config.drain_timeout_s = 2.0;
  return config;
}

SupervisorOptions FastSupervision() {
  SupervisorOptions opts;
  opts.heartbeat_interval_s = 0.02;
  opts.checkpoint_interval_s = 0.03;
  opts.backoff_initial_s = 0.01;
  return opts;
}

/// Sum over words of the max count seen — reaches the stream's word
/// population exactly when every tuple has been counted and delivered.
uint64_t SumOfMaxCounts(WcTap* tap) {
  std::lock_guard<std::mutex> lock(tap->mu);
  std::map<std::string, int64_t> max_count;
  for (const auto& [word, count] : tap->entries) {
    int64_t& m = max_count[word];
    if (count > m) m = count;
  }
  uint64_t sum = 0;
  for (const auto& [word, m] : max_count) sum += static_cast<uint64_t>(m);
  return sum;
}

/// The baseline-free zero-loss postcondition (see file header).
void CheckWcRecovered(WcTap* tap, uint64_t expected_words,
                      uint64_t replayed_sentences,
                      uint64_t words_per_sentence) {
  std::lock_guard<std::mutex> lock(tap->mu);
  std::map<std::string, std::set<int64_t>> counts;
  for (const auto& [word, count] : tap->entries) {
    counts[word].insert(count);
  }
  uint64_t total = 0;
  for (const auto& [word, seen] : counts) {
    const int64_t max = *seen.rbegin();
    EXPECT_EQ(static_cast<int64_t>(seen.size()), max)
        << "word '" << word << "' has gaps in 1.." << max;
    EXPECT_EQ(*seen.begin(), 1) << "word '" << word << "'";
    total += static_cast<uint64_t>(max);
  }
  EXPECT_EQ(total, expected_words) << "final state != full stream";
  // At-least-once, bounded: duplicates only come from the replay
  // window (some of the window's re-emissions replace in-flight
  // arrivals the halt discarded, so <=, not ==).
  ASSERT_GE(tap->entries.size(), expected_words);
  EXPECT_LE(tap->entries.size() - expected_words,
            replayed_sentences * words_per_sentence);
}

/// Kills (op, replica) mid-run via injected crash, supervises, and
/// asserts full recovery of the bounded WC stream.
void RunWcKillAndRecover(ExecutorKind executor, int op, int replica,
                         uint64_t after_tuples) {
  SCOPED_TRACE(std::string(ExecutorKindName(executor)) + " kill op " +
               std::to_string(op) + " replica " + std::to_string(replica));
  WordCountParams params;
  params.max_sentences = 1500;  // bounded: the run has an exact answer
  const uint64_t expected = params.max_sentences * params.words_per_sentence;
  EngineConfig config = RecoveryConfig(executor);
  config.faults.Crash(op, replica, after_tuples);
  WcRun run = MakeWc({1, 1, 2, 2, 1}, config, params);
  ASSERT_TRUE(run.rt->Start().ok());
  Supervisor sup(run.rt.get(), FastSupervision());
  ASSERT_TRUE(sup.Start().ok());

  // Completion == the final keyed state equals the full stream's.
  for (int waited = 0; waited < 20000 && SumOfMaxCounts(run.tap.get()) <
                                             expected;
       waited += 20) {
    SleepMs(20);
  }
  SupervisionReport report = sup.Stop();
  RunStats stats = run.rt->Stop();

  EXPECT_GE(report.failures_detected, 1);
  EXPECT_GE(report.restarts, 1);
  EXPECT_GE(stats.restores, 1);
  EXPECT_GE(stats.checkpoints, 1);
  EXPECT_TRUE(report.final_status.ok()) << report.final_status.ToString();
  ASSERT_FALSE(report.recoveries.empty());
  EXPECT_TRUE(report.recoveries[0].succeeded)
      << report.recoveries[0].error;
  CheckWcRecovered(run.tap.get(), expected, report.replayed_tuples,
                   params.words_per_sentence);
}

TEST(RecoveryTest, WordCountSurvivesParserCrash) {
  for (const ExecutorKind executor :
       {ExecutorKind::kWorkerPool, ExecutorKind::kThreadPerTask}) {
    RunWcKillAndRecover(executor, kParser, 0, 700);
  }
}

TEST(RecoveryTest, WordCountSurvivesSplitterCrash) {
  for (const ExecutorKind executor :
       {ExecutorKind::kWorkerPool, ExecutorKind::kThreadPerTask}) {
    RunWcKillAndRecover(executor, kSplitter, 1, 300);
  }
}

TEST(RecoveryTest, WordCountSurvivesEitherCounterReplicaCrash) {
  for (const ExecutorKind executor :
       {ExecutorKind::kWorkerPool, ExecutorKind::kThreadPerTask}) {
    RunWcKillAndRecover(executor, kCounter, 0, 3000);
    RunWcKillAndRecover(executor, kCounter, 1, 3000);
  }
}

// ---------------------------------------------------------------- SD

using SdMultiset = std::map<std::pair<int64_t, int64_t>, uint64_t>;

struct SdTap {
  std::mutex mu;
  SdMultiset tuples;
  uint64_t total = 0;
};

struct SdRun {
  std::shared_ptr<SinkTelemetry> telemetry;
  std::shared_ptr<SdTap> tap;
  std::shared_ptr<const api::Topology> topo;
  std::unique_ptr<BriskRuntime> rt;
};

SdRun MakeSd(EngineConfig config, SpikeDetectionParams params) {
  SdRun run;
  run.telemetry = std::make_shared<SinkTelemetry>();
  run.tap = std::make_shared<SdTap>();
  auto tap = run.tap;
  auto topo = apps::BuildSpikeDetectionDsl(
      run.telemetry, params, [tap](const Tuple& in) {
        std::lock_guard<std::mutex> lock(tap->mu);
        ++tap->tuples[{in.GetInt(0), in.GetInt(1)}];
        ++tap->total;
      });
  BRISK_CHECK(topo.ok()) << topo.status().ToString();
  run.topo = std::make_shared<const api::Topology>(std::move(topo).value());
  // Spout and parser stay at parallelism 1 so the per-device reading
  // order (what the sliding window averages over) is identical across
  // runs; the stateful moving_avg is the replicated one under test.
  auto plan_or = ExecutionPlan::Create(run.topo.get(), {1, 1, 2, 1, 1});
  BRISK_CHECK(plan_or.ok()) << plan_or.status().ToString();
  ExecutionPlan plan = std::move(plan_or).value();
  for (int i = 0; i < plan.num_instances(); ++i) plan.SetSocket(i, i % 2);
  auto rt = BriskRuntime::Create(run.topo.get(), plan, config);
  BRISK_CHECK(rt.ok()) << rt.status().ToString();
  run.rt = std::move(rt).value();
  return run;
}

SpikeDetectionParams SdParams() {
  SpikeDetectionParams params;
  params.num_devices = 64;
  params.window = 8;
  params.max_readings = 8000;
  return params;
}

/// true iff every (device, flag) pair appears in `big` at least as
/// often as in `small`.
bool Contains(const SdMultiset& big, const SdMultiset& small) {
  for (const auto& [key, n] : small) {
    auto it = big.find(key);
    if (it == big.end() || it->second < n) return false;
  }
  return true;
}

TEST(RecoveryTest, SpikeDetectionRecoversWindowsBitExact) {
  for (const ExecutorKind executor :
       {ExecutorKind::kWorkerPool, ExecutorKind::kThreadPerTask}) {
    SCOPED_TRACE(ExecutorKindName(executor));
    const SpikeDetectionParams params = SdParams();

    // Clean reference run of the same seed, to completion.
    SdMultiset clean;
    {
      SdRun run = MakeSd(RecoveryConfig(executor), params);
      ASSERT_TRUE(run.rt->Start().ok());
      for (int waited = 0;
           waited < 20000 && run.telemetry->count() < params.max_readings;
           waited += 20) {
        SleepMs(20);
      }
      (void)run.rt->Stop();
      std::lock_guard<std::mutex> lock(run.tap->mu);
      ASSERT_EQ(run.tap->total, params.max_readings);
      clean = run.tap->tuples;
    }

    // Faulty run: kill one moving_avg replica mid-stream, recover.
    EngineConfig config = RecoveryConfig(executor);
    config.faults.Crash(kMovingAvg, /*replica=*/0, /*after_tuples=*/2000);
    SdRun run = MakeSd(config, params);
    ASSERT_TRUE(run.rt->Start().ok());
    Supervisor sup(run.rt.get(), FastSupervision());
    ASSERT_TRUE(sup.Start().ok());
    auto done = [&] {
      std::lock_guard<std::mutex> lock(run.tap->mu);
      return run.tap->total >= params.max_readings &&
             Contains(run.tap->tuples, clean);
    };
    for (int waited = 0; waited < 20000 && !done(); waited += 20) {
      SleepMs(20);
    }
    SupervisionReport report = sup.Stop();
    RunStats stats = run.rt->Stop();

    EXPECT_GE(report.restarts, 1);
    EXPECT_GE(stats.restores, 1);
    std::lock_guard<std::mutex> lock(run.tap->mu);
    // Zero loss: every clean tuple arrived at least once.
    EXPECT_TRUE(Contains(run.tap->tuples, clean));
    // Bit-exact replay: nothing outside the clean run's key set — a
    // wrongly restored window would shift an average and flip a flag
    // into a (device, flag) pair the clean run never produced... both
    // flags per device usually occur, so additionally bound the
    // duplicate count: total overshoot <= replayed readings.
    for (const auto& [key, n] : run.tap->tuples) {
      auto it = clean.find(key);
      ASSERT_NE(it, clean.end())
          << "pair (" << key.first << ", " << key.second
          << ") never occurs in the clean run";
      EXPECT_GE(n, it->second);
    }
    ASSERT_GE(run.tap->total, params.max_readings);
    EXPECT_LE(run.tap->total - params.max_readings, report.replayed_tuples);
  }
}

// ------------------------------------------------- direct API checks

TEST(RecoveryTest, CheckpointRoundTripsThroughCodecAndRestores) {
  WordCountParams params;
  WcRun run = MakeWc({1, 1, 1, 2, 1},
                     RecoveryConfig(ExecutorKind::kWorkerPool), params);
  ASSERT_TRUE(run.rt->Start().ok());
  SleepMs(150);

  auto cp = run.rt->Checkpoint();
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_GT(cp->TotalEntries(), 0u);
  ASSERT_EQ(cp->positions.size(), 1u);
  EXPECT_TRUE(cp->positions[0].replayable);
  EXPECT_EQ(cp->positions[0].position.kind,
            api::SourcePosition::Kind::kTupleCount);
  EXPECT_GT(cp->positions[0].position.offset, 0u);

  std::vector<uint8_t> bytes;
  SerializeCheckpoint(*cp, &bytes);
  auto decoded = DeserializeCheckpoint(bytes, cp->plan);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, cp->epoch);
  EXPECT_EQ(decoded->TotalEntries(), cp->TotalEntries());
  ASSERT_EQ(decoded->positions.size(), 1u);
  EXPECT_EQ(decoded->positions[0].position, cp->positions[0].position);

  // Restoring the decoded snapshot onto the live job rewinds it; the
  // run keeps going from the checkpoint.
  uint64_t replayed = 0;
  ASSERT_TRUE(run.rt->Restore(decoded.value(), &replayed).ok());
  const uint64_t before = run.telemetry->count();
  SleepMs(200);
  EXPECT_GT(run.telemetry->count(), before);
  RunStats stats = run.rt->Stop();
  EXPECT_EQ(stats.checkpoints, 1);
  EXPECT_EQ(stats.restores, 1);
}

TEST(RecoveryTest, CorruptCheckpointIsRejectedAndJobKeepsRunning) {
  WcRun run = MakeWc({1, 1, 1, 1, 1},
                     RecoveryConfig(ExecutorKind::kWorkerPool),
                     WordCountParams{});
  ASSERT_TRUE(run.rt->Start().ok());
  SleepMs(100);
  auto cp = run.rt->Checkpoint();
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  JobCheckpoint corrupt = std::move(cp).value();
  corrupt.positions[0].op = kCounter;  // not a source
  EXPECT_FALSE(run.rt->Restore(corrupt, nullptr).ok());
  const uint64_t before = run.telemetry->count();
  SleepMs(150);
  EXPECT_GT(run.telemetry->count(), before);  // untouched, still live
  RunStats stats = run.rt->Stop();
  EXPECT_EQ(stats.restores, 0);
}

TEST(RecoveryTest, CircuitBreakerOpensAfterRestartBudget) {
  EngineConfig config = RecoveryConfig(ExecutorKind::kWorkerPool);
  config.faults.Crash(kParser, 0, 200);
  WcRun run = MakeWc({1, 1, 1, 1, 1}, config, WordCountParams{});
  ASSERT_TRUE(run.rt->Start().ok());
  SupervisorOptions opts = FastSupervision();
  opts.max_restarts = 0;  // the first failure exhausts the budget
  Supervisor sup(run.rt.get(), opts);
  ASSERT_TRUE(sup.Start().ok());
  for (int waited = 0;
       waited < 10000 && sup.Snapshot().final_status.ok(); waited += 10) {
    SleepMs(10);
  }
  SupervisionReport report = sup.Stop();
  EXPECT_FALSE(report.final_status.ok());
  EXPECT_NE(report.final_status.ToString().find("circuit breaker"),
            std::string::npos);
  EXPECT_EQ(report.restarts, 0);
  EXPECT_GE(report.failures_detected, 1);
  (void)run.rt->Stop();
}

TEST(RecoveryTest, JobFacadeSupervisesAndReportsRecovery) {
  auto telemetry = std::make_shared<SinkTelemetry>();
  EngineConfig config = EngineConfig::Brisk();
  config.spout_rate_tps = 40000;
  config.faults.Crash(kCounter, 0, 2000);
  auto report = Job::Of(apps::BuildWordCountDsl(telemetry).value())
                    .WithTelemetry(telemetry)
                    .WithProfiles(apps::WordCountProfiles())
                    .WithConfig(config)
                    .WithSeed(5)
                    .WithCheckpointing(0.05)
                    .Run(1.5);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->supervision.checkpoints, 1);
  EXPECT_GE(report->supervision.failures_detected, 1);
  EXPECT_GE(report->supervision.restarts, 1);
  EXPECT_GE(report->stats.restores, 1);
  EXPECT_TRUE(report->supervision.final_status.ok())
      << report->supervision.final_status.ToString();
  EXPECT_GT(report->sink_tuples, 0u);
  // The human-readable report mentions the recovery.
  EXPECT_NE(report->ToString().find("fault tolerance"), std::string::npos);
}

}  // namespace
}  // namespace brisk::engine
