// Live plan migration (§5.3): BriskRuntime::ApplyMigration must
// execute kMove/kStart/kStop steps against a running job without
// dropping or duplicating a tuple, hand keyed state across
// replica-count changes, and leave the engine pinned to the new plan.
//
// The invariants asserted here are the strong ones:
//   - edge conservation over the whole run (per-operator totals across
//     migration epochs: parser in == spout out, splitter out ==
//     splitter in × words/sentence, ...);
//   - the sink's per-word count sequence is dense and monotone
//     (1, 2, 3, ... per word) — a lost tuple leaves a gap, a
//     duplicated tuple repeats a count, and lost counter state restarts
//     the sequence at 1;
//   - after each migration the runtime's plan matches
//     opt::ApplyStepsToPlan of the steps it was handed.
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/word_count.h"
#include "common/logging.h"
#include "common/rng.h"
#include "engine/runtime.h"
#include "engine/supervisor.h"
#include "model/execution_plan.h"
#include "optimizer/dynamic.h"

namespace brisk::engine {
namespace {

using apps::WordCountParams;
using model::ExecutionPlan;
using opt::MigrationPlan;
using opt::MigrationStep;

// Operator ids in the WC DSL topology, in declaration order.
constexpr int kSpout = 0;
constexpr int kParser = 1;
constexpr int kSplitter = 2;
constexpr int kCounter = 3;
constexpr int kSink = 4;

/// Sink tap log: (word, count) pairs in arrival order. The tests keep
/// the sink at one replica, so a plain mutex-guarded vector preserves
/// per-word arrival order exactly.
struct TapLog {
  std::mutex mu;
  std::vector<std::pair<std::string, int64_t>> entries;
};

/// One live WC deployment under test.
struct WcRun {
  std::shared_ptr<SinkTelemetry> telemetry;
  std::shared_ptr<TapLog> log;
  std::shared_ptr<const api::Topology> topo;
  ExecutionPlan plan;  ///< what the runtime should be running
  std::unique_ptr<BriskRuntime> rt;

  void Migrate(const MigrationPlan& m) {
    ASSERT_TRUE(rt->ApplyMigration(m).ok());
    auto next = opt::ApplyStepsToPlan(plan, m);
    ASSERT_TRUE(next.ok());
    plan = *next;
    // Post-migration pinning: the runtime runs exactly the plan the
    // steps describe.
    ASSERT_EQ(rt->plan().num_instances(), plan.num_instances());
    for (int i = 0; i < plan.num_instances(); ++i) {
      EXPECT_EQ(rt->plan().SocketOf(i), plan.SocketOf(i)) << "instance " << i;
    }
  }
};

WcRun MakeWcRun(std::vector<int> replication, EngineConfig config,
                WordCountParams params) {
  WcRun run;
  run.telemetry = std::make_shared<SinkTelemetry>();
  run.log = std::make_shared<TapLog>();
  auto log = run.log;
  auto topo = apps::BuildWordCountDsl(
      run.telemetry, params, [log](const Tuple& in) {
        std::lock_guard<std::mutex> lock(log->mu);
        log->entries.emplace_back(std::string(in.GetString(0)),
                                  in.GetInt(1));
      });
  BRISK_CHECK(topo.ok()) << topo.status().ToString();
  run.topo =
      std::make_shared<const api::Topology>(std::move(topo).value());
  auto plan = ExecutionPlan::Create(run.topo.get(), std::move(replication));
  BRISK_CHECK(plan.ok()) << plan.status().ToString();
  run.plan = std::move(plan).value();
  // Round-robin the instances over two virtual sockets.
  for (int i = 0; i < run.plan.num_instances(); ++i) {
    run.plan.SetSocket(i, i % 2);
  }
  auto rt = BriskRuntime::Create(run.topo.get(), run.plan, config);
  BRISK_CHECK(rt.ok()) << rt.status().ToString();
  run.rt = std::move(rt).value();
  return run;
}

EngineConfig TestConfig(ExecutorKind executor) {
  EngineConfig config;  // Brisk defaults
  config.executor = executor;
  config.batch_size = 16;
  config.spout_rate_tps = 30000;  // paced, so migrations land mid-stream
  config.seed = 7;
  config.drain_timeout_s = 5.0;
  return config;
}

MigrationPlan Move(const ExecutionPlan& plan, int op, int replica, int to) {
  MigrationPlan m;
  const int from = plan.SocketOf(plan.InstanceId(op, replica));
  m.steps.push_back({MigrationStep::kMove, op, replica, from, to});
  m.moves = 1;
  return m;
}

MigrationPlan Grow(const ExecutionPlan& plan, int op, int count, int socket) {
  MigrationPlan m;
  for (int i = 0; i < count; ++i) {
    m.steps.push_back({MigrationStep::kStart, op, plan.replication(op) + i,
                       -1, socket});
  }
  m.starts = count;
  return m;
}

MigrationPlan Shrink(const ExecutionPlan& plan, int op, int count) {
  MigrationPlan m;
  for (int i = 0; i < count; ++i) {
    const int replica = plan.replication(op) - 1 - i;
    m.steps.push_back({MigrationStep::kStop, op, replica,
                       plan.SocketOf(plan.InstanceId(op, replica)), -1});
  }
  m.stops = count;
  return m;
}

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// The zero-loss/zero-duplication postcondition over a finished run.
void CheckInvariants(const WcRun& run, const RunStats& stats,
                     uint64_t words_per_sentence) {
  const auto& ot = stats.op_totals;
  ASSERT_EQ(ot.size(), 5u);
  // Edge conservation across the whole run, all epochs included.
  EXPECT_EQ(ot[kParser].tuples_in, ot[kSpout].tuples_out);
  EXPECT_EQ(ot[kParser].tuples_out, ot[kParser].tuples_in);  // sel 1
  EXPECT_EQ(ot[kSplitter].tuples_in, ot[kParser].tuples_out);
  EXPECT_EQ(ot[kSplitter].tuples_out,
            ot[kSplitter].tuples_in * words_per_sentence);
  EXPECT_EQ(ot[kCounter].tuples_in, ot[kSplitter].tuples_out);
  EXPECT_EQ(ot[kCounter].tuples_out, ot[kCounter].tuples_in);  // sel 1
  EXPECT_EQ(ot[kSink].tuples_in, ot[kCounter].tuples_out);
  EXPECT_GT(ot[kSink].tuples_in, 0u);
  // The sink lambda saw every tuple the sink task consumed.
  EXPECT_EQ(run.telemetry->count(), ot[kSink].tuples_in);

  // Dense + monotone count sequence per word: exactly 1..n_w, in order.
  std::map<std::string, int64_t> last;
  uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(run.log->mu);
    for (const auto& [word, count] : run.log->entries) {
      EXPECT_EQ(count, last[word] + 1)
          << "word '" << word << "' jumped from " << last[word] << " to "
          << count;
      last[word] = count;
      ++total;
    }
  }
  EXPECT_EQ(total, run.telemetry->count());
}

TEST(MigrationTest, MoveRepinsWithoutLoss) {
  WcRun run = MakeWcRun({1, 1, 2, 2, 1}, TestConfig(ExecutorKind::kWorkerPool),
                        WordCountParams{});
  ASSERT_TRUE(run.rt->Start().ok());
  SleepMs(150);
  // Executor counters observed live, before any migration: a
  // migration tears the executor down and stands up a new one, and
  // the cumulative report must never lose the old epoch's history.
  const ExecutorStats before = run.rt->SnapshotStats().executor;
  run.Migrate(Move(run.plan, kSplitter, 1, 0));
  EXPECT_EQ(run.rt->epoch(), 1);
  SleepMs(150);
  run.Migrate(Move(run.plan, kCounter, 0, 1));
  EXPECT_EQ(run.rt->epoch(), 2);
  SleepMs(150);
  RunStats stats = run.rt->Stop();
  EXPECT_EQ(stats.migrations, 2);
  // Counters survive the migrations: the final cumulative report is
  // at least the pre-migration snapshot, per counter.
  EXPECT_GE(stats.executor.parks, before.parks);
  EXPECT_GE(stats.executor.wakes, before.wakes);
  EXPECT_GE(stats.executor.steals_intra, before.steals_intra);
  EXPECT_GE(stats.executor.steals_cross, before.steals_cross);
  EXPECT_GE(stats.executor.steal_failures, before.steal_failures);
  EXPECT_GE(stats.executor.repatriations, before.repatriations);
  // The paced 30k tps stream leaves idle gaps in every epoch; a
  // zeroed park count after two executor teardowns would mean the
  // accumulation dropped history.
  EXPECT_GT(stats.executor.parks, 0u);
  CheckInvariants(run, stats, 10);
}

TEST(MigrationTest, CounterGrowthRepartitionsState) {
  WcRun run = MakeWcRun({1, 1, 1, 2, 1}, TestConfig(ExecutorKind::kWorkerPool),
                        WordCountParams{});
  ASSERT_TRUE(run.rt->Start().ok());
  SleepMs(200);
  const uint64_t before = run.telemetry->count();
  EXPECT_GT(before, 0u);
  run.Migrate(Grow(run.plan, kCounter, 2, 1));  // 2 -> 4 replicas
  SleepMs(250);
  RunStats stats = run.rt->Stop();
  EXPECT_GT(run.telemetry->count(), before);
  // Dense sequences across the migration prove the per-word counts
  // moved to their new owner replicas instead of restarting at 1.
  CheckInvariants(run, stats, 10);
}

TEST(MigrationTest, CounterShrinkMergesState) {
  WcRun run = MakeWcRun({1, 1, 1, 3, 1}, TestConfig(ExecutorKind::kWorkerPool),
                        WordCountParams{});
  ASSERT_TRUE(run.rt->Start().ok());
  SleepMs(200);
  run.Migrate(Shrink(run.plan, kCounter, 2));  // 3 -> 1 replica
  SleepMs(250);
  RunStats stats = run.rt->Stop();
  CheckInvariants(run, stats, 10);
}

TEST(MigrationTest, SpoutAndBoltReplicationChanges) {
  WcRun run = MakeWcRun({1, 1, 1, 1, 1}, TestConfig(ExecutorKind::kWorkerPool),
                        WordCountParams{});
  ASSERT_TRUE(run.rt->Start().ok());
  SleepMs(150);
  run.Migrate(Grow(run.plan, kSpout, 1, 1));     // spout 1 -> 2
  SleepMs(150);
  run.Migrate(Grow(run.plan, kSplitter, 1, 0));  // splitter 1 -> 2
  SleepMs(150);
  RunStats stats = run.rt->Stop();
  EXPECT_EQ(stats.migrations, 2);
  CheckInvariants(run, stats, 10);
}

TEST(MigrationTest, ThreadPerTaskExecutorMigrates) {
  WcRun run = MakeWcRun({1, 1, 2, 2, 1},
                        TestConfig(ExecutorKind::kThreadPerTask),
                        WordCountParams{});
  ASSERT_TRUE(run.rt->Start().ok());
  SleepMs(150);
  MigrationPlan m = Move(run.plan, kSplitter, 0, 1);
  const MigrationPlan grow = Grow(run.plan, kCounter, 1, 0);
  m.steps.insert(m.steps.end(), grow.steps.begin(), grow.steps.end());
  m.starts = grow.starts;
  run.Migrate(m);
  SleepMs(200);
  RunStats stats = run.rt->Stop();
  EXPECT_EQ(stats.migrations, 1);
  CheckInvariants(run, stats, 10);
}

/// A zero-second drain timeout makes every migration pause from a
/// non-quiescent engine: the halt catches full channels, staged
/// buffers, and parked envelopes mid-flight. preserve_inflight +
/// the residual sweep must still deliver every tuple — on both
/// executors (the legacy one switches from spin-or-drop to parking
/// for exactly this window).
TEST(MigrationTest, DrainTimeoutStillLosesNothing) {
  for (const ExecutorKind executor :
       {ExecutorKind::kWorkerPool, ExecutorKind::kThreadPerTask}) {
    SCOPED_TRACE(ExecutorKindName(executor));
    EngineConfig config = TestConfig(executor);
    config.drain_timeout_s = 0.0;   // the drain always "times out"
    config.spout_rate_tps = 0.0;    // saturated: rings run full, so
    config.queue_capacity = 4;      // producers sit in back-pressure
    config.pool_inflight_batches = 0;  // (spin loops / parked batches)
    WordCountParams params;
    params.max_sentences = 6000;  // bounded: the run can finish naturally
    WcRun run = MakeWcRun({1, 1, 2, 2, 1}, config, params);
    ASSERT_TRUE(run.rt->Start().ok());
    SleepMs(80);
    run.Migrate(Move(run.plan, kSplitter, 1, 0));
    SleepMs(80);
    run.Migrate(Grow(run.plan, kCounter, 1, 0));
    // Let the bounded source finish and every tuple land, so the
    // final Stop() (whose drain budget is also zero — the legacy
    // drop-at-halt semantics apply there) has nothing in flight; the
    // migrations above are the ones that paused mid-backlog. The
    // exact target is known (1 spout replica × 6000 sentences × 10
    // words); if a migration lost a batch, the wait times out and the
    // invariant check below reports the shortfall.
    const uint64_t expected = 6000 * 10;
    for (int i = 0; i < 200 && run.telemetry->count() < expected; ++i) {
      SleepMs(50);
    }
    RunStats stats = run.rt->Stop();
    EXPECT_EQ(stats.migrations, 2);
    EXPECT_EQ(run.telemetry->count(), expected);
    CheckInvariants(run, stats, 10);
  }
}

TEST(MigrationTest, RejectedMigrationLeavesJobRunning) {
  WcRun run = MakeWcRun({1, 1, 1, 1, 1}, TestConfig(ExecutorKind::kWorkerPool),
                        WordCountParams{});
  ASSERT_TRUE(run.rt->Start().ok());
  SleepMs(100);
  MigrationPlan bad;
  bad.steps.push_back({MigrationStep::kMove, kCounter, /*replica=*/0,
                       /*from=*/7, /*to=*/0});  // replica is not on 7
  EXPECT_FALSE(run.rt->ApplyMigration(bad).ok());
  EXPECT_EQ(run.rt->epoch(), 0);
  const uint64_t before = run.telemetry->count();
  SleepMs(150);
  EXPECT_GT(run.telemetry->count(), before);  // still streaming
  RunStats stats = run.rt->Stop();
  EXPECT_EQ(stats.migrations, 0);
  CheckInvariants(run, stats, 10);
}

TEST(MigrationTest, MigrationRequiresRunningEngine) {
  WcRun run = MakeWcRun({1, 1, 1, 1, 1}, TestConfig(ExecutorKind::kWorkerPool),
                        WordCountParams{});
  EXPECT_FALSE(run.rt->ApplyMigration(Move(run.plan, kSplitter, 0, 1)).ok());
}

/// Property-style test: a seeded stream of randomized valid migrations
/// (moves, growth, shrinkage over spout/parser/splitter/counter) is
/// applied to a live run; every invariant must survive every plan.
TEST(MigrationTest, RandomizedMigrationsPreserveInvariants) {
  Rng rng(0xfeedbee5ULL);
  constexpr int kSockets = 2;
  constexpr int kMaxRepl = 3;
  WcRun run = MakeWcRun({1, 1, 2, 2, 1}, TestConfig(ExecutorKind::kWorkerPool),
                        WordCountParams{});
  ASSERT_TRUE(run.rt->Start().ok());
  int applied = 0;
  for (int round = 0; round < 5; ++round) {
    SleepMs(120);
    // One randomized valid step set per round, over a random operator
    // (the sink stays single-replica so per-word arrival order is
    // observable).
    const int op = static_cast<int>(rng.NextBounded(4));  // spout..counter
    MigrationPlan m;
    const int repl = run.plan.replication(op);
    switch (rng.NextBounded(3)) {
      case 0: {  // move a random replica to a random other socket
        const int replica = static_cast<int>(rng.NextBounded(repl));
        const int from =
            run.plan.SocketOf(run.plan.InstanceId(op, replica));
        const int to =
            (from + 1 + static_cast<int>(rng.NextBounded(kSockets - 1))) %
            kSockets;
        m = Move(run.plan, op, replica, to);
        break;
      }
      case 1: {  // grow
        if (repl >= kMaxRepl) continue;
        m = Grow(run.plan, op, 1, static_cast<int>(rng.NextBounded(kSockets)));
        break;
      }
      default: {  // shrink
        if (repl <= 1) continue;
        m = Shrink(run.plan, op, 1);
        break;
      }
    }
    run.Migrate(m);
    if (::testing::Test::HasFatalFailure()) break;
    ++applied;
  }
  SleepMs(150);
  RunStats stats = run.rt->Stop();
  EXPECT_EQ(stats.migrations, applied);
  EXPECT_GT(applied, 0);
  CheckInvariants(run, stats, 10);
}

// ------------------- injected failures inside the migration protocol
//
// ApplyMigration must be complete-or-rollback: a failure before the
// point of no return leaves the old graph running with zero tuple
// loss; a failure after it declares the job dead (no half-migrated
// zombie), and the supervisor restores it from the last checkpoint.

TEST(MigrationTest, InjectedFailureBeforePauseIsCleanReject) {
  EngineConfig config = TestConfig(ExecutorKind::kWorkerPool);
  config.faults.FailMigration(/*at_phase=*/0);
  WcRun run = MakeWcRun({1, 1, 1, 1, 1}, config, WordCountParams{});
  ASSERT_TRUE(run.rt->Start().ok());
  SleepMs(100);
  const Status st = run.rt->ApplyMigration(Move(run.plan, kSplitter, 0, 1));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("undisturbed"), std::string::npos);
  EXPECT_EQ(run.rt->epoch(), 0);
  const uint64_t before = run.telemetry->count();
  SleepMs(150);
  EXPECT_GT(run.telemetry->count(), before);  // never paused
  RunStats stats = run.rt->Stop();
  EXPECT_EQ(stats.migrations, 0);
  CheckInvariants(run, stats, 10);
}

TEST(MigrationTest, InjectedFailureAfterPauseRollsBackWithoutLoss) {
  EngineConfig config = TestConfig(ExecutorKind::kWorkerPool);
  config.faults.FailMigration(/*at_phase=*/1);
  WordCountParams params;
  params.max_sentences = 4000;  // bounded: the run has an exact answer
  WcRun run = MakeWcRun({1, 1, 2, 2, 1}, config, params);
  ASSERT_TRUE(run.rt->Start().ok());
  SleepMs(60);
  const Status st = run.rt->ApplyMigration(Grow(run.plan, kCounter, 1, 0));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("rolled back"), std::string::npos);
  // Rolled back: old plan, old epoch, still running.
  EXPECT_EQ(run.rt->epoch(), 0);
  EXPECT_EQ(run.rt->plan().replication(kCounter), 2);
  const uint64_t expected = 4000 * 10;
  for (int i = 0; i < 200 && run.telemetry->count() < expected; ++i) {
    SleepMs(50);
  }
  RunStats stats = run.rt->Stop();
  EXPECT_EQ(stats.migrations, 0);
  EXPECT_EQ(run.telemetry->count(), expected);  // zero loss through it
  CheckInvariants(run, stats, 10);
}

TEST(MigrationTest, InjectedFailureAfterRebuildIsRecoveredFromCheckpoint) {
  EngineConfig config = TestConfig(ExecutorKind::kWorkerPool);
  config.faults.FailMigration(/*at_phase=*/2);
  WordCountParams params;
  params.max_sentences = 4000;
  WcRun run = MakeWcRun({1, 1, 2, 2, 1}, config, params);
  ASSERT_TRUE(run.rt->Start().ok());
  SupervisorOptions sup_opts;
  sup_opts.heartbeat_interval_s = 0.02;
  sup_opts.checkpoint_interval_s = 0.03;
  sup_opts.backoff_initial_s = 0.01;
  Supervisor sup(run.rt.get(), sup_opts);
  ASSERT_TRUE(sup.Start().ok());
  SleepMs(80);

  const Status st = run.rt->ApplyMigration(Grow(run.plan, kCounter, 1, 0));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("job down"), std::string::npos);

  // The supervisor notices the dead engine and restores the last
  // checkpoint (taken on the *old* plan); the bounded run completes.
  const uint64_t expected = 4000 * 10;
  auto state_complete = [&run] {
    std::lock_guard<std::mutex> lock(run.log->mu);
    std::map<std::string, int64_t> max_count;
    for (const auto& [word, count] : run.log->entries) {
      int64_t& m = max_count[word];
      if (count > m) m = count;
    }
    uint64_t sum = 0;
    for (const auto& [word, m] : max_count) sum += static_cast<uint64_t>(m);
    return sum;
  };
  for (int i = 0; i < 400 && state_complete() < expected; ++i) {
    SleepMs(50);
  }
  SupervisionReport sup_report = sup.Stop();
  RunStats stats = run.rt->Stop();
  EXPECT_GE(sup_report.restarts, 1);
  EXPECT_GE(stats.restores, 1);

  // Zero tuple loss under replay: gap-free dense counts per word and
  // the exact full-stream total in final state (duplicate deliveries
  // from the replayed window are allowed; lost ones are not).
  std::lock_guard<std::mutex> lock(run.log->mu);
  std::map<std::string, std::set<int64_t>> counts;
  for (const auto& [word, count] : run.log->entries) {
    counts[word].insert(count);
  }
  uint64_t total = 0;
  for (const auto& [word, seen] : counts) {
    const int64_t max = *seen.rbegin();
    EXPECT_EQ(static_cast<int64_t>(seen.size()), max)
        << "word '" << word << "' has gaps in 1.." << max;
    total += static_cast<uint64_t>(max);
  }
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace brisk::engine
