// Unit tests for engine internals: channels, task wiring/routing, and
// the execution-mode configurations.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "engine/channel.h"
#include "engine/config.h"
#include "engine/task.h"

namespace brisk::engine {
namespace {

Tuple WordTuple(const std::string& w) {
  Tuple t;
  t.fields.emplace_back(w);
  return t;
}

TEST(ChannelTest, RoundTripsEnvelopes) {
  Channel ch(0, 1, 4);
  EXPECT_EQ(ch.from_instance(), 0);
  EXPECT_EQ(ch.to_instance(), 1);
  Envelope env;
  env.count = 3;
  env.batch = std::make_unique<JumboTuple>();
  env.batch->tuples.push_back(WordTuple("a"));
  ASSERT_TRUE(ch.TryPush(std::move(env)));
  Envelope out;
  ASSERT_TRUE(ch.TryPop(&out));
  EXPECT_EQ(out.count, 3u);
  ASSERT_NE(out.batch, nullptr);
  EXPECT_EQ(out.batch->tuples[0].GetString(0), "a");
  EXPECT_FALSE(ch.TryPop(&out));
}

TEST(ChannelTest, RecycleReturnsShellsToTheProducerSide) {
  Channel ch(0, 1, 4);
  // Nothing recycled yet.
  JumboTuplePtr shell;
  EXPECT_FALSE(ch.TryPopRecycled(&shell));
  // Consumer hands back two drained shells; producer gets both, FIFO.
  auto a = std::make_unique<JumboTuple>();
  a->batch_seq = 1;
  auto b = std::make_unique<JumboTuple>();
  b->batch_seq = 2;
  ch.Recycle(std::move(a));
  ch.Recycle(std::move(b));
  ASSERT_TRUE(ch.TryPopRecycled(&shell));
  EXPECT_EQ(shell->batch_seq, 1u);
  ASSERT_TRUE(ch.TryPopRecycled(&shell));
  EXPECT_EQ(shell->batch_seq, 2u);
  EXPECT_FALSE(ch.TryPopRecycled(&shell));
}

TEST(ChannelTest, RecycledShellKeepsCapacityAfterReset) {
  Channel ch(0, 1, 4);
  auto batch = std::make_unique<JumboTuple>();
  for (int i = 0; i < 64; ++i) batch->tuples.push_back(WordTuple("w"));
  const size_t cap = batch->tuples.capacity();
  batch->Reset();
  EXPECT_TRUE(batch->empty());
  ch.Recycle(std::move(batch));
  JumboTuplePtr shell;
  ASSERT_TRUE(ch.TryPopRecycled(&shell));
  EXPECT_EQ(shell->tuples.capacity(), cap);  // the point of the pool
}

TEST(ChannelTest, RetryAfterFullPushKeepsEnvelope) {
  Channel ch(0, 1, 2);
  size_t pushed = 0;
  while (true) {
    Envelope env;
    env.count = 1;
    env.batch = std::make_unique<JumboTuple>();
    if (!ch.TryPush(std::move(env))) {
      // The failed envelope must still be intact for a retry.
      ASSERT_NE(env.batch, nullptr);
      break;
    }
    ++pushed;
  }
  EXPECT_GE(pushed, 2u);
}

TEST(EngineConfigTest, FactoriesEncodeSystemTraits) {
  const EngineConfig brisk = EngineConfig::Brisk();
  EXPECT_GT(brisk.batch_size, 1);
  EXPECT_FALSE(brisk.serialize_tuples);
  EXPECT_FALSE(brisk.duplicate_headers);

  const EngineConfig nojumbo = EngineConfig::BriskNoJumbo();
  EXPECT_EQ(nojumbo.batch_size, 1);
  EXPECT_FALSE(nojumbo.serialize_tuples);

  const EngineConfig storm = EngineConfig::StormLike();
  EXPECT_TRUE(storm.serialize_tuples);
  EXPECT_TRUE(storm.duplicate_headers);
  EXPECT_TRUE(storm.extra_condition_checks);
  EXPECT_LT(storm.batch_size, brisk.batch_size);

  const EngineConfig flink = EngineConfig::FlinkLike();
  EXPECT_TRUE(flink.serialize_tuples);
  EXPECT_FALSE(flink.extra_condition_checks);
}

/// Drives a Task directly (no thread) to verify collector routing.
class RoutingFixture : public ::testing::Test {
 protected:
  /// Builds a producer task with one route of `consumers` channels
  /// under the given grouping.
  void Wire(api::GroupingType grouping, int consumers, int batch_size,
            size_t key_field = 0) {
    config_ = EngineConfig::Brisk();
    config_.batch_size = batch_size;
    task_ = std::make_unique<Task>(0, 0, config_, nullptr);
    OutRoute route;
    route.stream_id = 0;
    route.grouping = grouping;
    route.key_field = key_field;
    for (int c = 0; c < consumers; ++c) {
      channels_.push_back(std::make_unique<Channel>(0, c + 1, 64));
      route.channels.push_back(channels_.back().get());
      route.buffer_index.push_back(task_->AddBuffer());
    }
    task_->AddOutRoute(std::move(route));
  }

  /// Pops every batch from channel `c` and returns the tuples,
  /// recycling the drained shells like a consumer task would.
  std::vector<Tuple> Drain(int c) {
    std::vector<Tuple> out;
    Envelope env;
    while (channels_[c]->TryPop(&env)) {
      for (auto& t : env.batch->tuples) out.push_back(t);
      env.batch->Reset();
      channels_[c]->Recycle(std::move(env.batch));
    }
    return out;
  }

  EngineConfig config_;
  std::unique_ptr<Task> task_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

TEST_F(RoutingFixture, ShuffleRoundRobinsAcrossConsumers) {
  Wire(api::GroupingType::kShuffle, 3, /*batch_size=*/2);
  for (int i = 0; i < 12; ++i) task_->EmitTo(0, WordTuple("w"));
  // 12 tuples over 3 consumers round-robin = 4 each (batch size 2 =>
  // every full batch was flushed).
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(Drain(c).size(), 4u) << "consumer " << c;
  }
}

TEST_F(RoutingFixture, FieldsGroupingRoutesSameKeyToSameConsumer) {
  Wire(api::GroupingType::kFields, 4, /*batch_size=*/1);
  const char* words[] = {"alpha", "beta", "gamma", "delta", "alpha",
                         "beta",  "alpha"};
  for (const char* w : words) task_->EmitTo(0, WordTuple(w));
  // Collect word->consumer mapping; each word must map to exactly one.
  std::map<std::string, std::set<int>> where;
  for (int c = 0; c < 4; ++c) {
    for (const auto& t : Drain(c)) {
      where[std::string(t.GetString(0))].insert(c);
    }
  }
  EXPECT_EQ(where.size(), 4u);  // four distinct words
  for (const auto& [word, consumers] : where) {
    EXPECT_EQ(consumers.size(), 1u) << word << " split across consumers";
  }
}

TEST_F(RoutingFixture, BroadcastCopiesToEveryConsumer) {
  Wire(api::GroupingType::kBroadcast, 3, /*batch_size=*/1);
  for (int i = 0; i < 5; ++i) task_->EmitTo(0, WordTuple("b"));
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(Drain(c).size(), 5u) << "consumer " << c;
  }
}

TEST_F(RoutingFixture, GlobalGoesToFirstReplicaOnly) {
  Wire(api::GroupingType::kGlobal, 1, /*batch_size=*/1);
  for (int i = 0; i < 5; ++i) task_->EmitTo(0, WordTuple("g"));
  EXPECT_EQ(Drain(0).size(), 5u);
}

TEST_F(RoutingFixture, PartialBatchesStayBufferedUntilFull) {
  Wire(api::GroupingType::kShuffle, 1, /*batch_size=*/8);
  for (int i = 0; i < 7; ++i) task_->EmitTo(0, WordTuple("p"));
  EXPECT_TRUE(Drain(0).empty());  // below the jumbo size: not flushed
  task_->EmitTo(0, WordTuple("p"));
  EXPECT_EQ(Drain(0).size(), 8u);  // 8th tuple completed the batch
}

TEST_F(RoutingFixture, StatsCountEmissions) {
  Wire(api::GroupingType::kShuffle, 2, /*batch_size=*/2);
  for (int i = 0; i < 10; ++i) task_->EmitTo(0, WordTuple("s"));
  EXPECT_EQ(task_->stats().tuples_out, 10u);
  EXPECT_EQ(task_->stats().batches_out, 4u);  // 2 full batches each side
}

TEST_F(RoutingFixture, FlushReusesRecycledBatchShells) {
  Wire(api::GroupingType::kShuffle, 1, /*batch_size=*/4);
  // First flush: pool empty, shell is allocated.
  for (int i = 0; i < 4; ++i) task_->EmitTo(0, WordTuple("a"));
  EXPECT_EQ(task_->stats().batches_out, 1u);
  EXPECT_EQ(task_->stats().batches_recycled, 0u);
  EXPECT_EQ(Drain(0).size(), 4u);  // drain hands the shell back
  // Every subsequent flush reuses the recycled shell: steady state
  // never touches the allocator.
  for (int round = 1; round <= 3; ++round) {
    for (int i = 0; i < 4; ++i) task_->EmitTo(0, WordTuple("b"));
    EXPECT_EQ(Drain(0).size(), 4u);
    EXPECT_EQ(task_->stats().batches_recycled,
              static_cast<uint64_t>(round));
  }
}

TEST_F(RoutingFixture, RecyclingDisabledStillFlows) {
  config_ = EngineConfig::Brisk();
  config_.batch_size = 2;
  config_.recycle_batches = false;
  task_ = std::make_unique<Task>(0, 0, config_, nullptr);
  OutRoute route;
  route.stream_id = 0;
  route.grouping = api::GroupingType::kShuffle;
  channels_.push_back(std::make_unique<Channel>(0, 1, 64));
  route.channels.push_back(channels_.back().get());
  route.buffer_index.push_back(task_->AddBuffer());
  task_->AddOutRoute(std::move(route));
  for (int i = 0; i < 6; ++i) task_->EmitTo(0, WordTuple("c"));
  EXPECT_EQ(Drain(0).size(), 6u);
  EXPECT_EQ(task_->stats().batches_recycled, 0u);  // pool bypassed
}

/// Two routes on the same stream: every route must see every tuple —
/// earlier routes receive copies, the last one the moved original.
TEST_F(RoutingFixture, MultipleRoutesOnOneStreamAllReceiveTheTuple) {
  config_ = EngineConfig::Brisk();
  config_.batch_size = 1;
  task_ = std::make_unique<Task>(0, 0, config_, nullptr);
  for (int r = 0; r < 2; ++r) {
    OutRoute route;
    route.stream_id = 0;
    route.grouping = api::GroupingType::kGlobal;
    channels_.push_back(std::make_unique<Channel>(0, r + 1, 64));
    route.channels.push_back(channels_.back().get());
    route.buffer_index.push_back(task_->AddBuffer());
    task_->AddOutRoute(std::move(route));
  }
  const std::string long_word(100, 'x');  // heap string: copies must be deep
  for (int i = 0; i < 3; ++i) task_->EmitTo(0, WordTuple(long_word));
  for (int c = 0; c < 2; ++c) {
    const std::vector<Tuple> got = Drain(c);
    ASSERT_EQ(got.size(), 3u) << "route " << c;
    for (const Tuple& t : got) EXPECT_EQ(t.GetString(0), long_word);
  }
}

TEST_F(RoutingFixture, EmitOnStreamWithoutRoutesIsDropped) {
  Wire(api::GroupingType::kShuffle, 1, /*batch_size=*/1);
  task_->EmitTo(7, WordTuple("nowhere"));  // no route on stream 7
  task_->EmitTo(0, WordTuple("routed"));
  EXPECT_EQ(Drain(0).size(), 1u);
  EXPECT_EQ(task_->stats().tuples_out, 2u);
}

}  // namespace
}  // namespace brisk::engine
